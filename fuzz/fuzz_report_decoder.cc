// Fuzz target: ReportDecoder over arbitrary report-codec buffers —
// differential between the two decode paths.
//
// decode() (materializing) and dispatch() (zero-copy replay) share one
// wire format but walk it with different code; the contract is that they
// agree exactly: same accept/reject verdict on every input, and on accept
// the replayed callback stream equals the materialized record list. Any
// divergence is a parser bug, so this target runs both on the same bytes
// and cross-checks, with dispatch()'s validate-before-first-callback
// guarantee checked on the reject side.
#include <cstdint>
#include <span>
#include <string_view>
#include <variant>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "pint/report_codec.h"
#include "pint/sink_report.h"

namespace {

// Records the callback stream shape (which callback, for which context)
// so two replays can be compared event by event.
struct TraceObserver : pint::SinkObserver {
  struct Event {
    bool path_event = false;
    pint::PacketId packet = 0;
    std::uint64_t flow = 0;
    std::size_t query_len = 0;
    std::size_t path_len = 0;

    bool operator==(const Event&) const = default;
  };

  void on_observation(const pint::SinkContext& ctx, std::string_view query,
                      const pint::Observation&) override {
    events.push_back({false, ctx.packet_id, ctx.flow, query.size(), 0});
  }

  void on_path_decoded(const pint::SinkContext& ctx, std::string_view query,
                       const std::vector<pint::SwitchId>& path) override {
    events.push_back(
        {true, ctx.packet_id, ctx.flow, query.size(), path.size()});
  }

  std::vector<Event> events;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  // Path 1: materializing decode.
  pint::ReportDecoder materializing;
  std::vector<pint::StreamRecord> records;
  const bool decode_ok = materializing.decode(bytes, records);
  if (!decode_ok) FUZZ_CHECK(records.empty());  // reject leaves out untouched

  // Path 2: zero-copy dispatch on a fresh decoder (no shared intern state).
  pint::ReportDecoder replaying;
  TraceObserver dispatched;
  pint::SinkObserver* observers[] = {&dispatched};
  std::uint64_t dispatched_records = 0;
  const bool dispatch_ok =
      replaying.dispatch(bytes, observers, &dispatched_records);

  FUZZ_CHECK(decode_ok == dispatch_ok);
  if (!dispatch_ok) {
    // Validate-before-first-callback: a rejected buffer replays nothing.
    FUZZ_CHECK(dispatched.events.empty());
    FUZZ_CHECK(dispatched_records == 0);
    return 0;
  }

  FUZZ_CHECK(dispatched_records == records.size());
  FUZZ_CHECK(dispatched.events.size() == records.size());

  // Replaying the materialized records through the free dispatch() must
  // produce the identical callback stream.
  TraceObserver rematerialized;
  pint::SinkObserver* observers2[] = {&rematerialized};
  pint::dispatch(records, observers2);
  FUZZ_CHECK(rematerialized.events == dispatched.events);

  // Per-record agreement beyond the trace shape.
  for (std::size_t i = 0; i < records.size(); ++i) {
    const pint::StreamRecord& rec = records[i];
    FUZZ_CHECK(rec.path_event == dispatched.events[i].path_event);
    if (rec.path_event) {
      FUZZ_CHECK(rec.path.size() == dispatched.events[i].path_len);
    }
    // Decoded query views must be interned (usable after this call), which
    // at minimum means non-dangling right now.
    FUZZ_CHECK(rec.query.data() != nullptr);
  }

  // Decoding the same buffer again on the warm decoder must be idempotent
  // (interning is append-only; scratch reuse must not leak state).
  std::vector<pint::StreamRecord> again;
  FUZZ_CHECK(materializing.decode(bytes, again));
  FUZZ_CHECK(again.size() == records.size());
  return 0;
}
