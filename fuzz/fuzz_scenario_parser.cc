// Fuzz target: scenario parser over arbitrary .scn text.
//
// parse_scenario() promises it NEVER throws: malformed input must come
// back as typed ScenarioParseErrors with line numbers, and the spec is
// engaged iff the error list is empty. This target feeds arbitrary bytes
// through the parser and checks that contract plus the invariants the
// runner relies on — every error has a printable code and an in-document
// line number, and an accepted spec round-trips through the same limits
// the parser enforced (so the runner can trust the ranges).
#include <algorithm>
#include <cstdint>
#include <exception>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "scenario/scenario_spec.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  pint::scenario::ScenarioParseResult result;
  try {
    result = pint::scenario::parse_scenario(text);
  } catch (const std::exception&) {
    FUZZ_CHECK(false && "parse_scenario threw");
  } catch (...) {
    FUZZ_CHECK(false && "parse_scenario threw a non-exception");
  }

  // Contract: spec engaged iff no errors.
  FUZZ_CHECK(result.ok() == result.errors.empty());
  FUZZ_CHECK(result.spec.has_value() == result.errors.empty());

  if (!result.ok()) {
    const long lines = 1 + std::count(text.begin(), text.end(), '\n');
    for (const pint::scenario::ScenarioParseError& e : result.errors) {
      // Every error names a real code and a line inside the document
      // (0 is reserved for whole-spec errors like a missing section).
      FUZZ_CHECK(pint::scenario::to_string(e.code) != nullptr);
      FUZZ_CHECK(to_string(e.code)[0] != '\0');
      FUZZ_CHECK(e.line >= 0);
      FUZZ_CHECK(e.line <= lines);
      FUZZ_CHECK(!e.message.empty());
    }
    return 0;
  }

  // Accepted specs must sit inside the ranges the parser claims to
  // enforce — the runner sizes simulations off these without re-checking.
  const pint::scenario::ScenarioSpec& spec = *result.spec;
  FUZZ_CHECK(!spec.name.empty());
  FUZZ_CHECK(spec.topology.k >= 2 && spec.topology.k <= 16);
  FUZZ_CHECK(spec.topology.leaves >= 1 && spec.topology.leaves <= 64);
  FUZZ_CHECK(spec.topology.spines >= 1 && spec.topology.spines <= 64);
  FUZZ_CHECK(spec.topology.hosts_per_leaf >= 1 &&
             spec.topology.hosts_per_leaf <= 64);
  FUZZ_CHECK(spec.traffic.load > 0.0 && spec.traffic.load < 1.0);
  FUZZ_CHECK(spec.traffic.zipf_s >= 0.0 && spec.traffic.zipf_s <= 5.0);
  FUZZ_CHECK(spec.sim.duration > 0);
  FUZZ_CHECK(spec.sim.rto > 0);
  FUZZ_CHECK(spec.sim.bit_budget >= 16 && spec.sim.bit_budget <= 64);
  for (const auto& ep : spec.episodes) {
    FUZZ_CHECK(ep.at >= 0);
  }
  for (const auto& [key, value] : spec.tuning) {
    FUZZ_CHECK(!key.empty());
    FUZZ_CHECK(key.find('.') != std::string::npos);
    (void)value;
  }

  // Parsing is a pure function of the text: a second pass must agree on
  // the verdict and on the episode/expect shape (catches stray global or
  // scratch state inside the parser).
  const auto again = pint::scenario::parse_scenario(text);
  FUZZ_CHECK(again.ok());
  FUZZ_CHECK(again.spec->name == spec.name);
  FUZZ_CHECK(again.spec->episodes.size() == spec.episodes.size());
  FUZZ_CHECK(again.spec->expects.size() == spec.expects.size());
  FUZZ_CHECK(again.spec->tuning == spec.tuning);
  return 0;
}
