// Seed-corpus generator for the fuzz targets in this directory.
//
//   make_fuzz_corpus <output-root>
//
// writes <output-root>/{frame,report,wire}/*.bin, one file per seed. The
// seeds are produced by the *real* encoders (FrameWriter, ReportEncoder,
// pack_digests), so the fuzzers start from structurally valid inputs and
// mutate from there — coverage of the deep parse paths from iteration one
// instead of spending the budget rediscovering the magic bytes. The
// checked-in corpus under fuzz/corpus/ is this program's output; rerun it
// after a wire-format change and commit the diff.
#include <sys/stat.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <tuple>
#include <vector>

#include "common/types.h"
#include "pint/frame.h"
#include "pint/report_codec.h"
#include "pint/sink_report.h"
#include "pint/wire_format.h"

namespace {

using Bytes = std::vector<std::uint8_t>;

bool write_seed(const std::string& dir, const std::string& name,
                const Bytes& bytes) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

void append(Bytes& out, const Bytes& more) {
  out.insert(out.end(), more.begin(), more.end());
}

// --- frame seeds -------------------------------------------------------------

// fuzz_frame_reassembler inputs carry one chunk-steering byte up front.
Bytes with_chunking(std::uint8_t chunk_byte, Bytes stream) {
  stream.insert(stream.begin(), chunk_byte);
  return stream;
}

Bytes encoder_buffer() {
  pint::ReportEncoder enc;
  const pint::SinkContext ctx{/*packet_id=*/42, /*flow=*/7,
                              /*path_length=*/5};
  enc.add(ctx, "latency.p99", pint::AggregateObservation{12.5});
  enc.add(ctx, "hop.sample", pint::HopSampleObservation{3, 0.25});
  enc.add(ctx, "path.digest", pint::PathDigestObservation{11, 4, true});
  enc.add_path(ctx, "path.query", {1, 2, 3, 4, 5});
  return enc.finish();
}

bool emit_frame_seeds(const std::string& dir) {
  bool ok = true;

  // One complete single-source epoch: open, two payloads, close.
  {
    pint::FrameWriter writer(/*source=*/1);
    Bytes stream = writer.make_open();
    append(stream, writer.make_payload(encoder_buffer()));
    append(stream, writer.make_payload(Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
    append(stream, writer.make_close());
    ok &= write_seed(dir, "epoch_single_source.bin",
                     with_chunking(0, stream));
    // Same stream fed in tiny chunks (steering byte 0 => chunk size 1).
    ok &= write_seed(dir, "epoch_byte_at_a_time.bin",
                     with_chunking(0, stream));

    // Bit flip in the payload region: the CRC must catch it.
    Bytes flipped = stream;
    flipped[flipped.size() / 2] ^= 0x40;
    ok &= write_seed(dir, "epoch_bit_flip.bin", with_chunking(7, flipped));

    // Truncated mid-frame: finish() must surface kTruncatedStream.
    Bytes truncated(stream.begin(),
                    stream.begin() +
                        static_cast<std::ptrdiff_t>(stream.size() - 9));
    ok &= write_seed(dir, "epoch_truncated.bin", with_chunking(13, truncated));

    // Garbage prefix before a valid frame: resync-on-magic path.
    Bytes garbage{'n', 'o', 't', ' ', 'a', ' ', 'f', 'r', 'a', 'm', 'e'};
    append(garbage, stream);
    ok &= write_seed(dir, "garbage_then_valid.bin",
                     with_chunking(31, garbage));
  }

  // Two sources interleaved on one stream (the fan-in arrangement), with a
  // deliberate gap: source 2's second payload is dropped.
  {
    pint::FrameWriter a(/*source=*/1);
    pint::FrameWriter b(/*source=*/2);
    Bytes stream = a.make_open();
    append(stream, b.make_open());
    append(stream, a.make_payload(Bytes{1, 2, 3}));
    append(stream, b.make_payload(encoder_buffer()));
    std::ignore = b.make_payload(Bytes{9, 9, 9});  // consumed seq, not sent
    b.payload_dropped();
    append(stream, a.make_close());
    append(stream, b.make_close());
    ok &= write_seed(dir, "two_sources_with_gap.bin",
                     with_chunking(19, stream));
  }
  return ok;
}

// --- report seeds ------------------------------------------------------------

bool emit_report_seeds(const std::string& dir) {
  bool ok = true;
  ok &= write_seed(dir, "mixed_records.bin", encoder_buffer());

  {
    pint::ReportEncoder enc;
    ok &= write_seed(dir, "empty.bin", enc.finish());
  }
  {
    // Many records, several interned names, chunked into small buffers.
    pint::ReportEncoder enc;
    for (std::uint64_t i = 0; i < 40; ++i) {
      const pint::SinkContext ctx{/*packet_id=*/i, /*flow=*/i % 3,
                                  /*path_length=*/4};
      enc.add(ctx, i % 2 == 0 ? "even.query" : "odd.query",
              pint::AggregateObservation{static_cast<double>(i)});
    }
    const auto chunks = enc.finish_chunked(/*max_records=*/16);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      ok &= write_seed(dir, "chunked_" + std::to_string(i) + ".bin",
                       chunks[i]);
    }
  }
  {
    // Long path record plus non-finite doubles (raw IEEE bits on the wire).
    pint::ReportEncoder enc;
    const pint::SinkContext ctx{/*packet_id=*/99, /*flow=*/1,
                                /*path_length=*/32};
    std::vector<pint::SwitchId> path;
    for (pint::SwitchId hop = 0; hop < 32; ++hop) path.push_back(hop * 101);
    enc.add_path(ctx, "long.path", path);
    enc.add(ctx, "inf", pint::AggregateObservation{
                            std::numeric_limits<double>::infinity()});
    ok &= write_seed(dir, "long_path_and_inf.bin", enc.finish());
  }
  return ok;
}

// --- wire seeds --------------------------------------------------------------

// fuzz_wire_format inputs: [count][widths...][payload bytes].
Bytes wire_seed(const std::vector<unsigned>& widths,
                const std::vector<pint::Digest>& lanes) {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(widths.size()));
  // The target maps a width byte b to 1 + b % 64; b = w - 1 round-trips.
  for (unsigned w : widths) out.push_back(static_cast<std::uint8_t>(w - 1));
  append(out, pint::pack_digests(lanes, widths));
  return out;
}

bool emit_wire_seeds(const std::string& dir) {
  bool ok = true;
  ok &= write_seed(dir, "single_full_lane.bin",
                   wire_seed({64}, {0x0123456789ABCDEFull}));
  ok &= write_seed(dir, "bit_lanes.bin",
                   wire_seed({1, 1, 1, 1, 1, 1, 1, 1}, {1, 0, 1, 1, 0, 0, 1, 0}));
  ok &= write_seed(
      dir, "mixed_widths.bin",
      wire_seed({3, 13, 64, 7, 1}, {5, 4095, ~pint::Digest{0}, 99, 1}));
  ok &= write_seed(dir, "no_lanes.bin", wire_seed({}, {}));
  ok &= write_seed(dir, "unaligned_total.bin",
                   wire_seed({5, 6, 7}, {17, 33, 100}));
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-root>\n", argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  bool ok = true;
  for (const char* sub : {"", "/frame", "/report", "/wire"}) {
    const std::string dir = root + sub;
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "cannot mkdir %s\n", dir.c_str());
      return 1;
    }
  }
  ok &= emit_frame_seeds(root + "/frame");
  ok &= emit_report_seeds(root + "/report");
  ok &= emit_wire_seeds(root + "/wire");
  if (!ok) return 1;
  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
