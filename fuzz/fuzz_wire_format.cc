// Fuzz target: digest bit-packing (pint/wire_format.h).
//
// The packer sits on the simulated wire: every packet's digest bitstring
// goes through pack_digests/unpack_digests, and both ends must agree on
// the layout bit-for-bit. This target derives a lane-width vector and a
// wire payload from the fuzz input, then checks:
//
//  * unpack on a correctly sized buffer never throws and yields in-range
//    lanes (lane i < 2^widths[i]);
//  * pack(unpack(x)) is a fixed point — repacking decoded lanes and
//    decoding again reproduces them exactly;
//  * the allocation-free *_into variants agree with the allocating ones;
//  * the documented throwing paths (width out of [1,64], wrong buffer
//    size) throw std::invalid_argument and nothing else.
//
// Input layout: byte 0 = lane count (capped), then one byte per lane
// width, then the wire payload.
#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "common/types.h"
#include "fuzz/fuzz_util.h"
#include "pint/wire_format.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pint_fuzz::ParamReader params(data, size);
  const std::size_t lane_count = params.byte() % 17;  // 0..16 lanes
  std::vector<unsigned> widths(lane_count);
  for (unsigned& w : widths) w = 1 + params.byte() % 64;  // valid [1, 64]

  // Wire payload: exactly wire_bytes(widths), taken from the input and
  // zero-padded if the input runs short.
  std::vector<std::uint8_t> wire(pint::wire_bytes(widths), 0);
  const std::size_t avail = std::min(wire.size(), params.rest_size());
  for (std::size_t i = 0; i < avail; ++i) wire[i] = params.rest_data()[i];

  // Well-formed inputs must decode without throwing, in range.
  const std::vector<pint::Digest> lanes = pint::unpack_digests(wire, widths);
  FUZZ_CHECK(lanes.size() == widths.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    FUZZ_CHECK(lanes[i] <= pint::low_bits_mask(widths[i]));
  }

  // pack -> unpack fixed point. (wire itself may differ from the repacked
  // bytes only in the padding bits of the last byte, so the comparison is
  // on lanes, not bytes.)
  const std::vector<std::uint8_t> repacked = pint::pack_digests(lanes, widths);
  FUZZ_CHECK(repacked.size() == wire.size());
  FUZZ_CHECK(pint::unpack_digests(repacked, widths) == lanes);

  // The caller-owned-buffer variants must agree with the allocating ones.
  std::vector<std::uint8_t> packed_into(wire.size(), 0xFF);
  FUZZ_CHECK(pint::pack_digests_into(lanes, widths, packed_into) ==
             repacked.size());
  FUZZ_CHECK(packed_into == repacked);
  std::vector<pint::Digest> unpacked_into(widths.size(), ~pint::Digest{0});
  FUZZ_CHECK(pint::unpack_digests_into(wire, widths, unpacked_into) ==
             lanes.size());
  FUZZ_CHECK(unpacked_into == lanes);

  // Malformed-argument paths: must throw std::invalid_argument, not crash
  // or misparse. Any other exception type escapes and counts as a crash.
  if (!widths.empty()) {
    std::vector<unsigned> bad = widths;
    bad[0] = 65;  // width out of range
    try {
      std::ignore = pint::unpack_digests(wire, bad);
      FUZZ_CHECK(false && "width 65 must throw");
    } catch (const std::invalid_argument&) {
    }
    std::vector<std::uint8_t> short_wire(wire);
    short_wire.pop_back();  // wire_bytes mismatch
    try {
      std::ignore = pint::unpack_digests(short_wire, widths);
      FUZZ_CHECK(false && "short buffer must throw");
    } catch (const std::invalid_argument&) {
    }
  }
  return 0;
}
