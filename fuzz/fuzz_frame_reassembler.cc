// Fuzz target: FrameReassembler over arbitrary byte streams.
//
// The reassembler is the first parser untrusted collector-side input hits
// (transport bytes -> frames), so its contract is the one worth fuzzing
// hardest: feeding arbitrary bytes in arbitrary chunkings must never
// throw, never hand out a payload larger than the configured cap, and
// always terminate — malformed input costs FrameError events, nothing
// else.
//
// Input layout: byte 0 steers the feed chunking (so the fuzzer can explore
// torn-header/torn-payload boundaries), the rest is the stream.
#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>

#include "fuzz/fuzz_util.h"
#include "pint/frame.h"

namespace {

// Small cap so the fuzzer reaches kOversizedPayload with 2-byte lengths.
constexpr std::size_t kMaxPayload = 1u << 16;

void check_event(const pint::FrameViewEvent& event) {
  if (const auto* frame = std::get_if<pint::FrameView>(&event)) {
    FUZZ_CHECK(frame->payload.size() <= kMaxPayload);
    // close_payload_count() must be total for every frame type, including
    // close markers with torn/short payloads that slipped past the CRC.
    const std::uint32_t count = frame->close_payload_count();
    if (frame->type != pint::FrameType::kEpochClose) FUZZ_CHECK(count == 0);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  pint_fuzz::ParamReader params(data, size);
  const std::size_t chunk = 1 + params.byte() % 64;
  std::span<const std::uint8_t> stream(params.rest_data(),
                                       params.rest_size());

  pint::FrameReassembler reasm(kMaxPayload);
  std::uint64_t parsed_before = 0;
  for (std::size_t off = 0; off < stream.size(); off += chunk) {
    reasm.feed(stream.subspan(off, std::min(chunk, stream.size() - off)));
    while (auto event = reasm.next_view()) check_event(*event);
    // Counters are monotone and bounded by what was fed.
    FUZZ_CHECK(reasm.frames_parsed() >= parsed_before);
    parsed_before = reasm.frames_parsed();
    FUZZ_CHECK(reasm.bytes_consumed() <= off + chunk);
  }
  reasm.finish();
  while (auto event = reasm.next_view()) check_event(*event);
  // Drained and finished: the event stream must stay dry (no event can
  // materialize out of nothing).
  FUZZ_CHECK(!reasm.next_view().has_value());
  FUZZ_CHECK(!reasm.next().has_value());
  return 0;
}
