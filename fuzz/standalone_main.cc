// Fallback driver for the fuzz targets when libFuzzer is unavailable
// (non-Clang toolchains: -fsanitize=fuzzer is Clang-only). Linked in by
// fuzz/CMakeLists.txt instead of the fuzzer runtime; the target's
// LLVMFuzzerTestOneInput is unchanged.
//
// Modes:
//   fuzz_x CORPUS_DIR_OR_FILES...              replay every corpus input
//   fuzz_x --mutations=N [--seed=S] CORPUS...  replay, then run N extra
//       iterations of deterministically mutated corpus inputs (bit flips,
//       truncations, splices, random inserts) — a bounded smoke fuzz that
//       needs no fuzzer runtime. The RNG is a fixed-seed xorshift, so a
//       failing run reproduces with the same --seed.
//
// A crashing input aborts the process (FUZZ_CHECK or a sanitizer report),
// which is the failure signal; otherwise the driver prints a summary and
// exits 0.
#include <dirent.h>
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

using Bytes = std::vector<std::uint8_t>;

std::uint64_t rng_state = 0x9E3779B97F4A7C15ull;

std::uint64_t next_rand() {
  // xorshift64: deterministic, seedable, good enough to diversify inputs.
  rng_state ^= rng_state << 13;
  rng_state ^= rng_state >> 7;
  rng_state ^= rng_state << 17;
  return rng_state;
}

bool read_file(const std::string& path, Bytes& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

void collect_inputs(const std::string& path, std::vector<Bytes>& corpus) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "warning: cannot stat %s\n", path.c_str());
    return;
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return;
    while (dirent* entry = ::readdir(dir)) {
      if (entry->d_name[0] == '.') continue;
      collect_inputs(path + "/" + entry->d_name, corpus);
    }
    ::closedir(dir);
    return;
  }
  Bytes bytes;
  if (read_file(path, bytes)) corpus.push_back(std::move(bytes));
}

Bytes mutate(const std::vector<Bytes>& corpus) {
  Bytes input = corpus[next_rand() % corpus.size()];
  const std::size_t ops = 1 + next_rand() % 4;
  for (std::size_t op = 0; op < ops; ++op) {
    switch (next_rand() % 5) {
      case 0:  // bit flip
        if (!input.empty()) {
          input[next_rand() % input.size()] ^=
              static_cast<std::uint8_t>(1u << (next_rand() % 8));
        }
        break;
      case 1:  // overwrite one byte
        if (!input.empty()) {
          input[next_rand() % input.size()] =
              static_cast<std::uint8_t>(next_rand());
        }
        break;
      case 2:  // truncate
        if (!input.empty()) input.resize(next_rand() % input.size());
        break;
      case 3: {  // splice: append a suffix of another corpus input
        const Bytes& other = corpus[next_rand() % corpus.size()];
        if (!other.empty()) {
          const std::size_t from = next_rand() % other.size();
          input.insert(input.end(), other.begin() + from, other.end());
        }
        break;
      }
      default: {  // insert random bytes
        const std::size_t n = next_rand() % 16;
        const std::size_t at = input.empty() ? 0 : next_rand() % input.size();
        Bytes noise(n);
        for (auto& b : noise) b = static_cast<std::uint8_t>(next_rand());
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(at),
                     noise.begin(), noise.end());
        break;
      }
    }
  }
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t mutations = 0;
  std::vector<Bytes> corpus;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutations=", 0) == 0) {
      mutations = std::strtoull(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      rng_state = std::strtoull(arg.c_str() + 7, nullptr, 10);
      if (rng_state == 0) rng_state = 1;  // xorshift fixed point
    } else if (arg.rfind("-", 0) == 0) {
      // Ignore unknown libFuzzer-style flags (-runs=..., -seed=...) so CI
      // recipes written for libFuzzer degrade to a plain corpus replay.
      std::fprintf(stderr, "note: ignoring flag %s\n", arg.c_str());
    } else {
      collect_inputs(arg, corpus);
    }
  }
  std::size_t executed = 0;
  for (const Bytes& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  if (mutations > 0 && corpus.empty()) {
    corpus.push_back(Bytes{});  // mutate from the empty input
  }
  for (std::uint64_t i = 0; i < mutations; ++i) {
    const Bytes input = mutate(corpus);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  }
  std::printf("standalone fuzz driver: %zu inputs executed, 0 crashes\n",
              executed);
  return 0;
}
