// Shared helpers for the libFuzzer targets in this directory.
//
// Every target checks invariants with FUZZ_CHECK: a violation prints the
// condition and aborts, which both libFuzzer and the standalone driver
// (standalone_main.cc) report as a crashing input. assert() is not used
// because fuzz builds are frequently NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>

#define FUZZ_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FUZZ_CHECK failed: %s at %s:%d\n", #cond,     \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

namespace pint_fuzz {

/// Deterministic per-input parameter stream: reads steering bytes off the
/// front of the fuzz input (so the fuzzer can mutate the parameters too)
/// and falls back to fixed defaults when the input is exhausted.
class ParamReader {
 public:
  ParamReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  /// Next steering byte (0 once exhausted); advances the cursor.
  std::uint8_t byte() { return pos_ < size_ ? data_[pos_++] : 0; }

  /// Bytes not consumed as parameters: the payload under test.
  const std::uint8_t* rest_data() const { return data_ + pos_; }
  std::size_t rest_size() const { return size_ - pos_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace pint_fuzz
