#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py.

Run directly (`python3 -m unittest tools.test_check_bench_regression`) or
via ctest, which registers this file as the `bench_regression_tool_test`
suite. The tests drive main() end to end through temp files — the tool's
contract is its exit code plus the report text, so that is what is
asserted, not internals.
"""

import contextlib
import importlib.util
import io
import json
import os
import sys
import tempfile
import unittest

_TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "check_bench_regression.py")
_SPEC = importlib.util.spec_from_file_location("check_bench_regression",
                                               _TOOL)
cbr = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbr)


def doc(results, smoke=False, profile=None):
    out = {"schema": "pint-bench-v1", "results": results}
    if smoke:
        out["smoke"] = True
    if profile is not None:
        out["profile"] = profile
    return out


def series(bench, value, higher_is_better=True, config="default",
           metric="throughput"):
    return {
        "bench": bench,
        "config": config,
        "metric": metric,
        "value": value,
        "higher_is_better": higher_is_better,
    }


class CheckBenchRegressionTest(unittest.TestCase):
    def run_tool(self, baseline, current, threshold=None):
        """Returns (exit_code, stdout_text)."""
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            with open(cur_path, "w") as f:
                json.dump(current, f)
            argv = [base_path, cur_path]
            if threshold is not None:
                argv += ["--threshold", str(threshold)]
            stdout = io.StringIO()
            old_argv = sys.argv
            sys.argv = ["check_bench_regression.py"] + argv
            try:
                with contextlib.redirect_stdout(stdout):
                    code = cbr.main()
            finally:
                sys.argv = old_argv
            return code, stdout.getvalue()

    def test_improvement_passes(self):
        code, out = self.run_tool(doc([series("decode", 100.0)]),
                                  doc([series("decode", 150.0)]))
        self.assertEqual(code, 0)
        self.assertIn("[ok]", out)
        self.assertIn("no regressions", out)

    def test_regression_fails(self):
        code, out = self.run_tool(doc([series("decode", 100.0)]),
                                  doc([series("decode", 50.0)]))
        self.assertEqual(code, 1)
        self.assertIn("[REGRESSION]", out)
        self.assertIn("decode/default/throughput", out)

    def test_lower_is_better_direction(self):
        # Latency going DOWN is an improvement, not a regression.
        base = doc([series("latency", 10.0, higher_is_better=False)])
        code, _ = self.run_tool(base,
                                doc([series("latency", 5.0,
                                            higher_is_better=False)]))
        self.assertEqual(code, 0)
        # ... and going up past the threshold fails.
        code, out = self.run_tool(base,
                                  doc([series("latency", 20.0,
                                              higher_is_better=False)]))
        self.assertEqual(code, 1)
        self.assertIn("[REGRESSION]", out)

    def test_move_within_threshold_passes(self):
        code, out = self.run_tool(doc([series("decode", 100.0)]),
                                  doc([series("decode", 90.0)]),
                                  threshold=0.20)
        self.assertEqual(code, 0)
        self.assertIn("-10.0%", out)

    def test_new_and_gone_series_are_informational(self):
        code, out = self.run_tool(doc([series("old", 100.0)]),
                                  doc([series("new", 100.0)]))
        self.assertEqual(code, 0)
        self.assertIn("[gone]", out)
        self.assertIn("[new]", out)

    def test_smoke_mismatch_checks_structure_only(self):
        # Full baseline vs smoke current: no timing comparison, even for a
        # huge drop — but every baseline series must still exist.
        code, out = self.run_tool(doc([series("decode", 100.0)]),
                                  doc([series("decode", 1.0)], smoke=True))
        self.assertEqual(code, 0)
        self.assertIn("structure check passed", out)
        self.assertNotIn("[REGRESSION]", out)

    def test_smoke_mismatch_missing_series_fails(self):
        code, out = self.run_tool(
            doc([series("decode", 100.0), series("encode", 50.0)]),
            doc([series("decode", 100.0)], smoke=True))
        self.assertEqual(code, 1)
        self.assertIn("[missing]", out)
        self.assertIn("encode/default/throughput", out)

    def test_both_smoke_compares_with_note(self):
        code, out = self.run_tool(doc([series("decode", 100.0)], smoke=True),
                                  doc([series("decode", 50.0)], smoke=True))
        self.assertEqual(code, 1)
        self.assertIn("both runs are smoke mode", out)
        self.assertIn("[REGRESSION]", out)

    def test_zero_baseline_skipped(self):
        code, _ = self.run_tool(doc([series("decode", 0.0)]),
                                doc([series("decode", 1.0)]))
        self.assertEqual(code, 0)

    def test_bad_schema_rejected(self):
        with self.assertRaises(SystemExit) as ctx:
            self.run_tool({"schema": "nonsense", "results": []}, doc([]))
        self.assertIn("not a pint-bench-v1 file", str(ctx.exception))

    def run_tool_multi(self, baselines, current, extra_argv=None):
        """Runs main() with repeatable --baseline flags; returns
        (exit_code, stdout_text)."""
        with tempfile.TemporaryDirectory() as tmp:
            argv = []
            for i, b in enumerate(baselines):
                path = os.path.join(tmp, f"baseline{i}.json")
                with open(path, "w") as f:
                    json.dump(b, f)
                argv += ["--baseline", path]
            cur_path = os.path.join(tmp, "current.json")
            with open(cur_path, "w") as f:
                json.dump(current, f)
            argv.append(cur_path)
            if extra_argv:
                argv += extra_argv
            stdout = io.StringIO()
            old_argv = sys.argv
            sys.argv = ["check_bench_regression.py"] + argv
            try:
                with contextlib.redirect_stdout(stdout):
                    code = cbr.main()
            finally:
                sys.argv = old_argv
            return code, stdout.getvalue()

    def test_single_baseline_flag_matches_positional(self):
        code, out = self.run_tool_multi([doc([series("decode", 100.0)])],
                                        doc([series("decode", 150.0)]))
        self.assertEqual(code, 0)
        self.assertIn("no regressions", out)

    def test_multiple_baselines_all_pass(self):
        code, out = self.run_tool_multi(
            [doc([series("decode", 100.0)]), doc([series("encode", 50.0)])],
            doc([series("decode", 110.0), series("encode", 55.0)]))
        self.assertEqual(code, 0)
        # Each baseline gets its own labeled report section.
        self.assertEqual(out.count("==="), 4)

    def test_multiple_baselines_one_regression_fails(self):
        # A regression against ANY baseline fails, even when the other
        # baseline passes cleanly.
        code, out = self.run_tool_multi(
            [doc([series("decode", 100.0)]), doc([series("encode", 50.0)])],
            doc([series("decode", 110.0), series("encode", 10.0)]))
        self.assertEqual(code, 1)
        self.assertIn("[REGRESSION]", out)
        self.assertIn("encode/default/throughput", out)

    def test_profile_mismatch_skips_baseline(self):
        # A 64-core baseline is not a reference for a 1-core run: the
        # mismatched baseline is skipped (with a note), the matching one
        # is still compared — and a regression against it still fails.
        code, out = self.run_tool_multi(
            [doc([series("decode", 100.0)], profile="64core"),
             doc([series("decode", 100.0)], profile="1core")],
            doc([series("decode", 10.0)], profile="1core"),
            extra_argv=["--profile", "1core"])
        self.assertEqual(code, 1)
        self.assertIn("skipping", out)
        self.assertIn("64core", out)
        self.assertIn("[REGRESSION]", out)

    def test_profile_no_match_errors(self):
        # Every baseline filtered out: comparing nothing must not pass.
        with self.assertRaises(SystemExit) as ctx:
            self.run_tool_multi(
                [doc([series("decode", 100.0)], profile="64core")],
                doc([series("decode", 10.0)], profile="1core"),
                extra_argv=["--profile", "1core"])
        self.assertIn("no baseline matches profile", str(ctx.exception))

    def test_profile_missing_in_baseline_matches_any(self):
        # Pre-profile baselines carry no key and stay comparable.
        code, out = self.run_tool_multi(
            [doc([series("decode", 100.0)])],
            doc([series("decode", 110.0)], profile="1core"),
            extra_argv=["--profile", "1core"])
        self.assertEqual(code, 0)
        self.assertIn("no regressions", out)

    def test_profile_multi_profile_baselines(self):
        # Several per-profile baselines of the same bench: only the
        # matching profile's numbers are enforced; the current run passing
        # against its own profile passes overall despite being far below
        # the other profile's baseline.
        code, out = self.run_tool_multi(
            [doc([series("decode", 1000.0)], profile="64core"),
             doc([series("decode", 100.0)], profile="1core")],
            doc([series("decode", 105.0)], profile="1core"),
            extra_argv=["--profile", "1core"])
        self.assertEqual(code, 0)
        self.assertIn("skipping", out)
        self.assertIn("no regressions", out)

    def test_profile_current_label_mismatch_notes(self):
        # The current file's own label disagreeing with --profile is worth
        # a note (likely a mis-set PINT_BENCH_PROFILE), not a failure.
        code, out = self.run_tool_multi(
            [doc([series("decode", 100.0)], profile="1core")],
            doc([series("decode", 110.0)], profile="8core"),
            extra_argv=["--profile", "1core"])
        self.assertEqual(code, 0)
        self.assertIn("labels itself profile", out)

    def test_mixed_positional_and_flag_rejected(self):
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for name in ("a.json", "b.json", "c.json"):
                path = os.path.join(tmp, name)
                with open(path, "w") as f:
                    json.dump(doc([]), f)
                paths.append(path)
            old_argv = sys.argv
            sys.argv = ["check_bench_regression.py", "--baseline", paths[0],
                        paths[1], paths[2]]
            try:
                with self.assertRaises(SystemExit):
                    with contextlib.redirect_stderr(io.StringIO()):
                        cbr.main()
            finally:
                sys.argv = old_argv


if __name__ == "__main__":
    unittest.main()
