#!/usr/bin/env python3
"""Compare a bench-json result file against one or more checked-in baselines.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.20]
    check_bench_regression.py --baseline a.json --baseline b.json CURRENT.json
    check_bench_regression.py --profile 1core --baseline b.json CURRENT.json

Matches results on (bench, config, metric) and flags entries whose value
moved against their `higher_is_better` direction by more than the
threshold fraction. Exits 1 when any regression is flagged — the CI step
that runs this is non-blocking, so the exit code annotates the job rather
than gating the merge (timing on shared runners is noisy; a smoke-mode
current run is noisier still and is labeled as such).

`--baseline` is repeatable: one current run can be checked against several
baseline files at once (e.g. per-bench baselines, or per-host profiles of
the same bench), each compared independently with its own report section.
The positional BASELINE form is kept for compatibility and is equivalent
to a single `--baseline`.

`--profile KEY` restricts the comparison to baselines measured on the
same host class (bench-json's top-level "profile", e.g. "1core"): a
baseline declaring a different profile is skipped with a note — numbers
from a 64-core box are not a regression reference for a 1-core container
— and a baseline declaring no profile (pre-profile snapshot) matches any
key. It is an error when no baseline survives the filter: a comparison
that silently checked nothing would read as a pass.

Entries present on only one side are reported informationally: new benches
are expected to appear, and retired configs to vanish, without failing the
check.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "pint-bench-v1":
        sys.exit(f"{path}: not a pint-bench-v1 file")
    results = {}
    for r in data.get("results", []):
        results[(r["bench"], r["config"], r["metric"])] = r
    return data, results


def compare(baseline_path, cur_doc, cur, threshold):
    """Compares one baseline file against the current run; returns the
    number of flagged problems (regressions or missing series)."""
    base_doc, base = load(baseline_path)

    if bool(base_doc.get("smoke")) != bool(cur_doc.get("smoke")):
        # Smoke and full runs use different workload sizes; their absolute
        # throughputs are not comparable, and flagging the difference as a
        # regression would turn the check into permanent noise. Verify the
        # structure (every baseline series still exists) and stop there.
        print("note: smoke/full mode mismatch between baseline and current "
              "— timing comparison skipped (workloads differ by design)")
        missing = sorted(set(base) - set(cur))
        for key in missing:
            print(f"  [missing] {'/'.join(key)} (in baseline, not in "
                  f"current run)")
        if missing:
            print(f"\n{len(missing)} baseline series missing from the "
                  "current run")
            return len(missing)
        print("structure check passed: every baseline series is present")
        return 0

    if cur_doc.get("smoke"):
        print("note: both runs are smoke mode — numbers are noisy; treat "
              "flags as prompts for a local full run")

    regressions = []
    for key, b in sorted(base.items()):
        c = cur.get(key)
        name = "/".join(key)
        if c is None:
            print(f"  [gone]  {name} (baseline only)")
            continue
        bv, cv = b["value"], c["value"]
        if bv == 0:
            continue
        change = (cv - bv) / bv
        worse = -change if b.get("higher_is_better", True) else change
        marker = "  [ok]  "
        if worse > threshold:
            marker = "  [REGRESSION]"
            regressions.append(name)
        print(f"{marker} {name}: baseline {bv:.6g} -> current {cv:.6g} "
              f"({change:+.1%})")
    for key in sorted(set(cur) - set(base)):
        print(f"  [new]   {'/'.join(key)} (no baseline)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{threshold:.0%}: " + ", ".join(regressions))
        print("If intentional (machine change, workload change), refresh "
              "the baseline per docs/PERFORMANCE.md.")
        return len(regressions)
    print("\nno regressions beyond threshold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+",
                        help="[BASELINE.json] CURRENT.json — the last file "
                             "is the current run; an optional first file is "
                             "a baseline (legacy positional form)")
    parser.add_argument("--baseline", action="append", default=[],
                        help="baseline file to compare against; repeatable "
                             "(per-bench baselines or per-host profiles)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="flag moves worse than this fraction")
    parser.add_argument("--profile", default=None,
                        help="host-profile key (bench-json 'profile'); "
                             "baselines declaring a different profile are "
                             "skipped, baselines declaring none match any")
    args = parser.parse_args()

    baselines = list(args.baseline)
    if len(args.files) == 2 and not baselines:
        baselines, current = [args.files[0]], args.files[1]
    elif len(args.files) == 1 and baselines:
        current = args.files[0]
    else:
        parser.error("expected either 'BASELINE CURRENT' or "
                     "'--baseline B [--baseline B2 ...] CURRENT'")

    cur_doc, cur = load(current)
    if args.profile:
        cur_profile = cur_doc.get("profile")
        if cur_profile is not None and cur_profile != args.profile:
            print(f"note: current run labels itself profile "
                  f"'{cur_profile}', not '{args.profile}'")
        kept = []
        for baseline in baselines:
            base_profile = load(baseline)[0].get("profile")
            if base_profile is None or base_profile == args.profile:
                kept.append(baseline)
            else:
                print(f"note: skipping {baseline} (profile "
                      f"'{base_profile}' does not match "
                      f"'{args.profile}')")
        if not kept:
            sys.exit(f"no baseline matches profile '{args.profile}' — "
                     "nothing was compared")
        baselines = kept
    problems = 0
    for i, baseline in enumerate(baselines):
        if len(baselines) > 1:
            if i:
                print()
            print(f"=== {baseline} vs {current} ===")
        problems += compare(baseline, cur_doc, cur, args.threshold)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
