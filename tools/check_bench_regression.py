#!/usr/bin/env python3
"""Compare a bench-json result file against the checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--threshold 0.20]

Matches results on (bench, config, metric) and flags entries whose value
moved against their `higher_is_better` direction by more than the
threshold fraction. Exits 1 when any regression is flagged — the CI step
that runs this is non-blocking, so the exit code annotates the job rather
than gating the merge (timing on shared runners is noisy; a smoke-mode
current run is noisier still and is labeled as such).

Entries present on only one side are reported informationally: new benches
are expected to appear, and retired configs to vanish, without failing the
check.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "pint-bench-v1":
        sys.exit(f"{path}: not a pint-bench-v1 file")
    results = {}
    for r in data.get("results", []):
        results[(r["bench"], r["config"], r["metric"])] = r
    return data, results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="flag moves worse than this fraction")
    args = parser.parse_args()

    base_doc, base = load(args.baseline)
    cur_doc, cur = load(args.current)

    if bool(base_doc.get("smoke")) != bool(cur_doc.get("smoke")):
        # Smoke and full runs use different workload sizes; their absolute
        # throughputs are not comparable, and flagging the difference as a
        # regression would turn the check into permanent noise. Verify the
        # structure (every baseline series still exists) and stop there.
        print("note: smoke/full mode mismatch between baseline and current "
              "— timing comparison skipped (workloads differ by design)")
        missing = sorted(set(base) - set(cur))
        for key in missing:
            print(f"  [missing] {'/'.join(key)} (in baseline, not in "
                  f"current run)")
        if missing:
            print(f"\n{len(missing)} baseline series missing from the "
                  "current run")
            return 1
        print("structure check passed: every baseline series is present")
        return 0

    if cur_doc.get("smoke"):
        print("note: both runs are smoke mode — numbers are noisy; treat "
              "flags as prompts for a local full run")

    regressions = []
    for key, b in sorted(base.items()):
        c = cur.get(key)
        name = "/".join(key)
        if c is None:
            print(f"  [gone]  {name} (baseline only)")
            continue
        bv, cv = b["value"], c["value"]
        if bv == 0:
            continue
        change = (cv - bv) / bv
        worse = -change if b.get("higher_is_better", True) else change
        marker = "  [ok]  "
        if worse > args.threshold:
            marker = "  [REGRESSION]"
            regressions.append(name)
        print(f"{marker} {name}: baseline {bv:.6g} -> current {cv:.6g} "
              f"({change:+.1%})")
    for key in sorted(set(cur) - set(base)):
        print(f"  [new]   {'/'.join(key)} (no baseline)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: " + ", ".join(regressions))
        print("If intentional (machine change, workload change), refresh "
              "BENCH_baseline.json per docs/PERFORMANCE.md.")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
