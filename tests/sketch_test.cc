#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "hash/global_hash.h"
#include "sketch/kll.h"
#include "sketch/reservoir.h"
#include "sketch/sliding_window.h"
#include "sketch/space_saving.h"

namespace pint {
namespace {

TEST(Kll, ExactWhenSmall) {
  KllSketch s(200);
  for (int i = 1; i <= 50; ++i) s.add(i);
  EXPECT_NEAR(s.quantile(0.5), 25.0, 1.0);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1.0);
  EXPECT_NEAR(s.quantile(1.0), 50.0, 0.0);
}

class KllRankErrorTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KllRankErrorTest, RankErrorBounded) {
  const std::size_t k_param = GetParam();
  KllSketch s(k_param);
  const int n = 100000;
  Rng rng(1);
  std::vector<double> truth;
  truth.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double v = rng.uniform();
    truth.push_back(v);
    s.add(v);
  }
  std::sort(truth.begin(), truth.end());
  // Rank error should be well below a few percent for k>=64.
  const double tolerance = 4.0 / static_cast<double>(k_param) * n;
  for (double phi : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double est = s.quantile(phi);
    const auto rank = static_cast<double>(
        std::lower_bound(truth.begin(), truth.end(), est) - truth.begin());
    EXPECT_NEAR(rank, phi * n, tolerance) << "phi=" << phi << " k=" << k_param;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KllRankErrorTest,
                         ::testing::Values(64, 128, 256, 512));

TEST(Kll, MemorySublinear) {
  KllSketch s(128);
  for (int i = 0; i < 1000000; ++i) s.add(static_cast<double>(i % 9973));
  EXPECT_EQ(s.count(), 1000000u);
  EXPECT_LT(s.retained(), 2000u);  // far below the million inserts
}

TEST(Kll, MergePreservesQuantiles) {
  KllSketch a(256, 1), b(256, 2);
  Rng rng(3);
  for (int i = 0; i < 50000; ++i) a.add(rng.uniform());
  for (int i = 0; i < 50000; ++i) b.add(rng.uniform());
  a.merge(b);
  EXPECT_EQ(a.count(), 100000u);
  EXPECT_NEAR(a.quantile(0.5), 0.5, 0.05);
  EXPECT_NEAR(a.quantile(0.9), 0.9, 0.05);
}

TEST(Kll, MergeRejectsMismatchedK) {
  KllSketch a(64), b(128);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Kll, SkewedDistribution) {
  KllSketch s(256);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) {
    s.add(std::exp(rng.uniform() * 10.0));  // heavy tail
  }
  const double q99 = s.quantile(0.99);
  const double exact = std::exp(0.99 * 10.0);
  EXPECT_NEAR(q99 / exact, 1.0, 0.15);
}

TEST(Kll, EmptyThrows) {
  KllSketch s(64);
  EXPECT_THROW(s.quantile(0.5), std::runtime_error);
}

TEST(SpaceSaving, ExactWhenUnderCapacity) {
  SpaceSaving ss(16);
  for (int rep = 0; rep < 7; ++rep) {
    for (std::uint64_t v = 0; v < 5; ++v) ss.add(v);
  }
  for (std::uint64_t v = 0; v < 5; ++v) EXPECT_EQ(ss.estimate(v), 7u);
}

TEST(SpaceSaving, OverestimateBounded) {
  const std::size_t cap = 50;
  SpaceSaving ss(cap);
  Rng rng(7);
  std::vector<std::uint64_t> truth(1000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    // Zipf-ish: value j with probability ~ 1/(j+1).
    const auto v = static_cast<std::uint64_t>(
        std::min<double>(999.0, std::floor(std::exp(rng.uniform() * 6.9) - 1)));
    ++truth[v];
    ss.add(v);
  }
  for (std::uint64_t v = 0; v < 1000; ++v) {
    const std::uint64_t est = ss.estimate(v);
    if (est == 0) continue;  // not monitored
    EXPECT_GE(est, truth[v]);
    EXPECT_LE(est, truth[v] + n / cap);
    EXPECT_LE(ss.lower_bound(v), truth[v]);
  }
}

TEST(SpaceSaving, FindsHeavyHitters) {
  SpaceSaving ss(20);
  const int n = 10000;
  Rng rng(9);
  for (int i = 0; i < n; ++i) {
    if (rng.uniform() < 0.4) {
      ss.add(7);  // 40% heavy
    } else {
      ss.add(100 + rng.uniform_int(5000));  // scattered tail
    }
  }
  const auto heavy = ss.frequent(0.3);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], 7u);
}

TEST(Reservoir, UniformInclusion) {
  const std::size_t size = 10;
  const int stream = 200;
  std::vector<int> inclusions(stream, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    Reservoir<int> r(size, 1000 + t);
    for (int i = 0; i < stream; ++i) r.add(i);
    for (int v : r.sample()) ++inclusions[v];
  }
  const double expected = static_cast<double>(trials) * size / stream;
  for (int i = 0; i < stream; ++i) {
    EXPECT_NEAR(inclusions[i], expected, expected * 0.15) << i;
  }
}

TEST(Reservoir, HoldsFirstItems) {
  Reservoir<int> r(5, 1);
  for (int i = 0; i < 3; ++i) r.add(i);
  EXPECT_EQ(r.sample().size(), 3u);
}

TEST(ReservoirReplace, MatchesOneOverI) {
  // The stateless rule used by switches: replace with probability 1/i.
  GlobalHash h(41);
  const int n = 100000;
  for (std::size_t i : {2u, 5u, 10u, 50u}) {
    int hits = 0;
    for (int p = 0; p < n; ++p) {
      hits += reservoir_replace(h.unit2(p, i), i);
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 1.0 / static_cast<double>(i),
                0.01)
        << i;
  }
}

TEST(SlidingWindow, TracksRecentDistribution) {
  SlidingWindowQuantiles w(1000, 10, 128);
  // Old regime: values around 100. New regime: values around 1000.
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) w.add(100.0 + rng.uniform());
  for (int i = 0; i < 1200; ++i) w.add(1000.0 + rng.uniform());
  // The window covers ~1000-1100 most recent items, all from the new regime.
  EXPECT_NEAR(w.quantile(0.5), 1000.5, 5.0);
  EXPECT_GE(w.items_covered(), 1000u);
  EXPECT_LE(w.items_covered(), 1101u);
}

TEST(SlidingWindow, RejectsBadBlocks) {
  EXPECT_THROW(SlidingWindowQuantiles(100, 3), std::invalid_argument);
  EXPECT_THROW(SlidingWindowQuantiles(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pint
