#include <gtest/gtest.h>

#include <set>

#include "topology/fat_tree.h"
#include "topology/graph.h"
#include "topology/isp.h"

namespace pint {
namespace {

TEST(Graph, AddEdgeAndNeighbors) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  g.add_edge(0, 1);  // duplicate ignored
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, RejectsBadEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, BfsDistances) {
  // 0 - 1 - 2 - 3, plus shortcut 0 - 3.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const auto d = g.distances_from(0);
  EXPECT_EQ(d[0], 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], 1);
  EXPECT_EQ(d[4], -1);  // disconnected
}

TEST(Graph, EcmpPathIsShortestAndDeterministic) {
  Graph g(6);
  // Two equal-cost paths 0-1-3 and 0-2-3, then 3-4.
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  GlobalHash h(1);
  const auto p1 = g.ecmp_path(0, 4, 111, h);
  const auto p2 = g.ecmp_path(0, 4, 111, h);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(*p1, *p2);  // same flow -> same path
  EXPECT_EQ(p1->size(), 4u);  // shortest: 3 edges
  EXPECT_EQ(p1->front(), 0u);
  EXPECT_EQ(p1->back(), 4u);
  // Consecutive nodes must be adjacent.
  for (std::size_t i = 1; i < p1->size(); ++i) {
    EXPECT_TRUE(g.has_edge((*p1)[i - 1], (*p1)[i]));
  }
}

TEST(Graph, EcmpSpreadsFlows) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  GlobalHash h(2);
  int via1 = 0;
  const int flows = 2000;
  for (int f = 0; f < flows; ++f) {
    const auto p = g.ecmp_path(0, 3, f, h);
    via1 += ((*p)[1] == 1);
  }
  EXPECT_NEAR(via1, flows / 2, flows / 2 * 0.15);
}

TEST(Graph, EcmpDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  GlobalHash h(3);
  EXPECT_FALSE(g.ecmp_path(0, 2, 1, h).has_value());
}

TEST(FatTree, CanonicalK4Structure) {
  const FatTree ft = make_fat_tree(4);
  EXPECT_EQ(ft.nodes.cores.size(), 4u);   // (k/2)^2
  EXPECT_EQ(ft.nodes.aggs.size(), 8u);    // k * k/2
  EXPECT_EQ(ft.nodes.edges.size(), 8u);
  EXPECT_EQ(ft.nodes.hosts.size(), 16u);  // edges * k/2
}

TEST(FatTree, SwitchDiameterMatchesPaper) {
  // Fig. 10c: a K=8 fat tree has switch-level diameter 5 (ToR-agg-core-
  // agg-ToR when counting switches on a host-to-host path).
  const FatTree ft = make_fat_tree(8);
  GlobalHash h(4);
  unsigned max_switches = 0;
  // Sample host pairs across pods.
  for (int i = 0; i < 50; ++i) {
    const NodeId a = ft.nodes.hosts[i % ft.nodes.hosts.size()];
    const NodeId b =
        ft.nodes.hosts[(i * 37 + 101) % ft.nodes.hosts.size()];
    if (a == b) continue;
    const auto p = ft.graph.ecmp_path(a, b, i, h);
    ASSERT_TRUE(p.has_value());
    unsigned switches = 0;
    for (NodeId n : *p) {
      if (n < ft.nodes.hosts.front()) ++switches;  // hosts are last ids
    }
    max_switches = std::max(max_switches, switches);
  }
  EXPECT_EQ(max_switches, 5u);
}

TEST(FatTree, HostRackAssignment) {
  const FatTree ft = make_fat_tree(4);
  for (std::size_t hi = 0; hi < ft.nodes.hosts.size(); ++hi) {
    const NodeId tor = ft.nodes.edges[ft.host_rack[hi]];
    EXPECT_TRUE(ft.graph.has_edge(ft.nodes.hosts[hi], tor));
  }
}

TEST(FatTree, HpccTopologyCounts) {
  const FatTree ft = make_hpcc_fat_tree(1.0);
  EXPECT_EQ(ft.nodes.cores.size(), 16u);
  EXPECT_EQ(ft.nodes.aggs.size(), 20u);
  EXPECT_EQ(ft.nodes.edges.size(), 20u);
  EXPECT_EQ(ft.nodes.hosts.size(), 320u);
}

TEST(FatTree, ScaledHpccTopology) {
  const FatTree ft = make_hpcc_fat_tree(0.25);
  EXPECT_EQ(ft.nodes.cores.size(), 4u);
  EXPECT_EQ(ft.nodes.edges.size(), 5u);
  EXPECT_EQ(ft.nodes.hosts.size(), 5u * 16);
}

TEST(FatTree, RejectsOddK) {
  EXPECT_THROW(make_fat_tree(5), std::invalid_argument);
}

TEST(Isp, KentuckyDatalinkShape) {
  const IspTopology isp = make_kentucky_datalink();
  EXPECT_EQ(isp.graph.num_nodes(), 753u);
  EXPECT_EQ(isp.diameter, 59u);
  EXPECT_EQ(isp.backbone.size(), 60u);
  // The realized diameter equals the declared one.
  EXPECT_EQ(isp.graph.diameter(40), 59u);
}

TEST(Isp, UsCarrierShape) {
  const IspTopology isp = make_us_carrier();
  EXPECT_EQ(isp.graph.num_nodes(), 157u);
  EXPECT_EQ(isp.graph.diameter(157), 36u);
}

TEST(Isp, BackbonePrefixGivesExactHopCounts) {
  const IspTopology isp = make_us_carrier();
  for (unsigned hops : {1u, 5u, 36u}) {
    const auto path = backbone_prefix(isp, hops);
    EXPECT_EQ(path.size(), hops);
    for (std::size_t i = 1; i < path.size(); ++i) {
      EXPECT_TRUE(isp.graph.has_edge(path[i - 1], path[i]));
    }
  }
  EXPECT_THROW(backbone_prefix(isp, 0), std::invalid_argument);
  EXPECT_THROW(backbone_prefix(isp, 100), std::invalid_argument);
}

TEST(Isp, ConnectedGraph) {
  const IspTopology isp = make_us_carrier();
  const auto d = isp.graph.distances_from(0);
  for (int dist : d) EXPECT_GE(dist, 0);
}

}  // namespace
}  // namespace pint
