// ByteStream transports: both implementations must honor the same
// contract — all-or-nothing writes, in-order bytes, bounded capacity as
// the backpressure signal, and clean end-of-stream — because the fan-in
// pipeline treats them interchangeably.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "transport/io_hooks.h"
#include "transport/stream.h"

namespace pint {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return out;
}

std::vector<std::uint8_t> drain(ByteStream& stream) {
  std::vector<std::uint8_t> got;
  std::uint8_t buf[256];
  for (;;) {
    const std::size_t n = stream.read(buf);
    if (n == 0) break;
    got.insert(got.end(), buf, buf + n);
  }
  return got;
}

class ByteStreamContract : public ::testing::TestWithParam<bool> {
 protected:
  // param false = ring, true = socketpair
  std::unique_ptr<ByteStream> make(std::size_t capacity) {
    if (GetParam()) {
      return std::make_unique<SocketPairStream>(capacity);
    }
    return std::make_unique<SpscRingStream>(capacity);
  }
};

TEST_P(ByteStreamContract, RoundTripsBytesInOrder) {
  auto stream = make(1 << 12);
  const auto first = pattern_bytes(100, 1);
  const auto second = pattern_bytes(333, 91);
  ASSERT_TRUE(stream->try_write(first));
  ASSERT_TRUE(stream->try_write(second));

  std::vector<std::uint8_t> want = first;
  want.insert(want.end(), second.begin(), second.end());
  EXPECT_EQ(drain(*stream), want);
  EXPECT_FALSE(stream->eof());  // empty but not closed
}

TEST_P(ByteStreamContract, EofOnlyAfterCloseAndDrain) {
  auto stream = make(1 << 12);
  ASSERT_TRUE(stream->try_write(pattern_bytes(64, 3)));
  stream->close_write();
  EXPECT_FALSE(stream->eof());  // bytes still buffered
  EXPECT_EQ(drain(*stream).size(), 64u);
  std::uint8_t buf[8];
  EXPECT_EQ(stream->read(buf), 0u);
  EXPECT_TRUE(stream->eof());
}

TEST_P(ByteStreamContract, ChunkedReadsReassembleExactly) {
  auto stream = make(1 << 14);
  const auto want = pattern_bytes(5000, 17);
  ASSERT_TRUE(stream->try_write(want));
  std::vector<std::uint8_t> got;
  std::uint8_t tiny[3];
  for (;;) {
    const std::size_t n = stream->read(tiny);
    if (n == 0) break;
    got.insert(got.end(), tiny, tiny + n);
  }
  EXPECT_EQ(got, want);
}

TEST_P(ByteStreamContract, OversizedChunkThrowsTypedError) {
  // A chunk bigger than the whole pipe could never be accepted; returning
  // false would livelock a kBlock writer retrying forever. Both
  // implementations must throw the typed error instead, and an exact-
  // capacity chunk must still be writable.
  auto stream = make(128);
  const std::size_t cap = stream->capacity();
  const auto too_big = pattern_bytes(cap + 1, 21);
  try {
    (void)stream->try_write(too_big);
    FAIL() << "oversized chunk did not throw";
  } catch (const OversizedChunkError& e) {
    EXPECT_EQ(e.chunk_bytes(), cap + 1);
    EXPECT_EQ(e.capacity_bytes(), cap);
  }
  // The stream stays usable after the rejection.
  EXPECT_TRUE(stream->try_write(pattern_bytes(16, 22)));
  EXPECT_EQ(drain(*stream), pattern_bytes(16, 22));
}

INSTANTIATE_TEST_SUITE_P(Transports, ByteStreamContract, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "SocketPair" : "SpscRing";
                         });

// --- EINTR injection --------------------------------------------------------
//
// The io_hooks seam lets these tests interrupt exactly the syscalls they
// mean to, deterministically — no SIGALRM storms, no timing dependence.
// The regression they pin: SocketPairStream used to treat EINTR as fatal
// in try_write and read, and the close_write flush loop abandoned the
// pending tail on any send() <= 0, EINTR included.

// Hook state (tests are single-threaded while hooks are installed).
std::atomic<int> g_eintr_every_n_sends{0};  // 0 = off
std::atomic<int> g_send_calls{0};
std::atomic<int> g_eintr_every_n_recvs{0};
std::atomic<int> g_recv_calls{0};
std::atomic<int> g_send_byte_cap{0};  // >0: real-send at most this many bytes
std::atomic<int> g_eagain_after_sends{0};  // >0: EAGAIN once budget is spent

ssize_t interrupting_send(int fd, const void* buf, std::size_t len,
                          int flags) {
  const int call = g_send_calls.fetch_add(1) + 1;
  const int every = g_eintr_every_n_sends.load();
  if (every > 0 && call % every == 0) {
    errno = EINTR;
    return -1;
  }
  const int budget = g_eagain_after_sends.load();
  if (budget > 0 && call > budget) {
    errno = EAGAIN;
    return -1;
  }
  std::size_t n = len;
  const int cap = g_send_byte_cap.load();
  if (cap > 0) n = std::min(n, static_cast<std::size_t>(cap));
  return ::send(fd, buf, n, flags);
}

ssize_t interrupting_recv(int fd, void* buf, std::size_t len, int flags) {
  const int call = g_recv_calls.fetch_add(1) + 1;
  const int every = g_eintr_every_n_recvs.load();
  if (every > 0 && call % every == 0) {
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

void reset_injection() {
  g_eintr_every_n_sends = 0;
  g_send_calls = 0;
  g_eintr_every_n_recvs = 0;
  g_recv_calls = 0;
  g_send_byte_cap = 0;
  g_eagain_after_sends = 0;
}

TEST(SocketPairStreamEintr, TryWriteRetriesInterruptedSends) {
  reset_injection();
  SocketPairStream stream(1 << 14);
  const auto want = pattern_bytes(1000, 31);
  {
    // Every second send is interrupted and each accepts at most 100
    // bytes, so one chunk takes many syscalls with EINTR hit on half.
    g_eintr_every_n_sends = 2;
    g_send_byte_cap = 100;
    ScopedIoHooks hooks({&interrupting_send, &interrupting_recv});
    ASSERT_TRUE(stream.try_write(want));
  }
  EXPECT_GT(g_send_calls.load(), 15);  // the cap really split the chunk
  // Small sends carry per-skb kernel accounting, so the stream may have
  // parked a tail after a genuine EAGAIN; drain + close + drain recovers
  // every byte regardless.
  std::vector<std::uint8_t> got = drain(stream);
  stream.close_write();
  const auto rest = drain(stream);
  got.insert(got.end(), rest.begin(), rest.end());
  EXPECT_EQ(got, want);
}

TEST(SocketPairStreamEintr, ReadRetriesInterruptedRecvs) {
  reset_injection();
  SocketPairStream stream(1 << 14);
  const auto want = pattern_bytes(512, 43);
  ASSERT_TRUE(stream.try_write(want));
  // Every read's first recv is interrupted; the retry must deliver the
  // bytes instead of throwing (old behavior) or reporting empty.
  g_eintr_every_n_recvs = 2;
  g_recv_calls = 1;  // phase so call #2, #4, ... (each first try) hit EINTR
  ScopedIoHooks hooks({&interrupting_send, &interrupting_recv});
  EXPECT_EQ(drain(stream), want);
}

TEST(SocketPairStreamEintr, PendingTailDrainRetriesEintr) {
  reset_injection();
  SocketPairStream stream(1 << 14);
  {
    // First write: the hook lets 10 bytes through, then fakes a full
    // kernel buffer — the stream must buffer the 90-byte tail and report
    // the chunk accepted.
    g_send_byte_cap = 10;
    g_eagain_after_sends = 1;
    ScopedIoHooks hooks({&interrupting_send, &interrupting_recv});
    ASSERT_TRUE(stream.try_write(pattern_bytes(100, 57)));
  }
  reset_injection();
  {
    // Second write: draining the pending tail hits EINTR on every other
    // send; the drain must retry through it, then take the new chunk.
    g_eintr_every_n_sends = 2;
    ScopedIoHooks hooks({&interrupting_send, &interrupting_recv});
    ASSERT_TRUE(stream.try_write(pattern_bytes(50, 58)));
  }
  EXPECT_GT(g_send_calls.load(), 1);  // the EINTR really fired
  auto want = pattern_bytes(100, 57);
  const auto second = pattern_bytes(50, 58);
  want.insert(want.end(), second.begin(), second.end());
  std::vector<std::uint8_t> got = drain(stream);
  stream.close_write();
  const auto rest = drain(stream);
  got.insert(got.end(), rest.begin(), rest.end());
  EXPECT_EQ(got, want);
}

TEST(SocketPairStreamEintr, CloseWriteFlushesTailThroughEintr) {
  reset_injection();
  SocketPairStream stream(1 << 14);
  {
    g_send_byte_cap = 10;
    g_eagain_after_sends = 1;
    ScopedIoHooks hooks({&interrupting_send, &interrupting_recv});
    ASSERT_TRUE(stream.try_write(pattern_bytes(100, 71)));  // 90-byte tail
  }
  reset_injection();
  {
    // The flush loop's first send is interrupted. The old code broke out
    // on any n <= 0 and silently abandoned the tail.
    g_eintr_every_n_sends = 2;
    g_send_calls = 1;  // phase: the very next send call hits EINTR
    ScopedIoHooks hooks({&interrupting_send, &interrupting_recv});
    stream.close_write();
  }
  EXPECT_EQ(drain(stream), pattern_bytes(100, 71));
  EXPECT_TRUE(stream.eof());
}

TEST(SpscRingStream, RefusesWritesBeyondCapacityAllOrNothing) {
  SpscRingStream stream(128);  // rounds to 128
  ASSERT_EQ(stream.capacity(), 128u);
  ASSERT_TRUE(stream.try_write(pattern_bytes(100, 5)));
  // 28 bytes free: a 29-byte chunk must be refused wholesale.
  EXPECT_FALSE(stream.try_write(pattern_bytes(29, 6)));
  EXPECT_TRUE(stream.try_write(pattern_bytes(28, 7)));
  EXPECT_FALSE(stream.try_write(pattern_bytes(1, 8)));
  // Draining frees space for a wrap-around write.
  EXPECT_EQ(drain(stream).size(), 128u);
  EXPECT_TRUE(stream.try_write(pattern_bytes(100, 9)));
  EXPECT_EQ(drain(stream), pattern_bytes(100, 9));
}

TEST(SpscRingStream, WrapAroundPreservesBytes) {
  SpscRingStream stream(64);
  Rng rng(0x57A3);
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  // Many small writes/reads cycle the ring several times.
  for (int i = 0; i < 200; ++i) {
    const auto chunk =
        pattern_bytes(1 + rng.uniform_int(40), static_cast<std::uint8_t>(i));
    if (stream.try_write(chunk)) {
      sent.insert(sent.end(), chunk.begin(), chunk.end());
    }
    const auto got = drain(stream);
    received.insert(received.end(), got.begin(), got.end());
  }
  const auto rest = drain(stream);
  received.insert(received.end(), rest.begin(), rest.end());
  EXPECT_EQ(received, sent);
}

TEST(SpscRingStream, CrossThreadHandoff) {
  // One producer, one consumer, 1 MiB through a 4 KiB ring: the
  // acquire/release pairing must hand every byte across intact.
  SpscRingStream stream(1 << 12);
  const std::size_t kTotal = 1 << 20;
  std::thread producer([&] {
    std::vector<std::uint8_t> chunk(257);
    std::size_t sent = 0;
    std::uint8_t value = 0;
    while (sent < kTotal) {
      const std::size_t n = std::min(chunk.size(), kTotal - sent);
      for (std::size_t i = 0; i < n; ++i) {
        chunk[i] = value++;
      }
      while (!stream.try_write(std::span(chunk.data(), n))) {
        std::this_thread::yield();
      }
      sent += n;
    }
    stream.close_write();
  });
  std::size_t got = 0;
  std::uint8_t expected = 0;
  bool ordered = true;
  std::uint8_t buf[509];
  while (!stream.eof()) {
    const std::size_t n = stream.read(buf);
    for (std::size_t i = 0; i < n; ++i) {
      ordered = ordered && buf[i] == expected++;
    }
    got += n;
    if (n == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(got, kTotal);
  EXPECT_TRUE(ordered);
}

TEST(SocketPairStream, BackpressureThenDrainRecoversEveryByte) {
  SocketPairStream stream(4096);
  const auto chunk = pattern_bytes(1024, 11);
  // Fill until the kernel refuses: the refusal is the backpressure signal.
  // An accepted chunk may be split between the kernel buffer and the
  // stream's internal pending tail; after a drain + one more write + a
  // close, every accepted byte must come out exactly once.
  std::size_t accepted = 0;
  while (stream.try_write(chunk)) {
    ++accepted;
    ASSERT_LT(accepted, 10000u) << "socketpair never exerted backpressure";
  }
  EXPECT_GT(accepted, 0u);
  std::vector<std::uint8_t> all = drain(stream);
  ASSERT_TRUE(stream.try_write(chunk));  // space again; flushes any tail
  ++accepted;
  stream.close_write();
  const auto rest = drain(stream);
  all.insert(all.end(), rest.begin(), rest.end());
  EXPECT_EQ(all.size(), accepted * chunk.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], chunk[i % chunk.size()]) << "byte " << i;
  }
  EXPECT_TRUE(stream.eof());
}

}  // namespace
}  // namespace pint
