// ByteStream transports: both implementations must honor the same
// contract — all-or-nothing writes, in-order bytes, bounded capacity as
// the backpressure signal, and clean end-of-stream — because the fan-in
// pipeline treats them interchangeably.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "transport/stream.h"

namespace pint {
namespace {

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return out;
}

std::vector<std::uint8_t> drain(ByteStream& stream) {
  std::vector<std::uint8_t> got;
  std::uint8_t buf[256];
  for (;;) {
    const std::size_t n = stream.read(buf);
    if (n == 0) break;
    got.insert(got.end(), buf, buf + n);
  }
  return got;
}

class ByteStreamContract : public ::testing::TestWithParam<bool> {
 protected:
  // param false = ring, true = socketpair
  std::unique_ptr<ByteStream> make(std::size_t capacity) {
    if (GetParam()) {
      return std::make_unique<SocketPairStream>(capacity);
    }
    return std::make_unique<SpscRingStream>(capacity);
  }
};

TEST_P(ByteStreamContract, RoundTripsBytesInOrder) {
  auto stream = make(1 << 12);
  const auto first = pattern_bytes(100, 1);
  const auto second = pattern_bytes(333, 91);
  ASSERT_TRUE(stream->try_write(first));
  ASSERT_TRUE(stream->try_write(second));

  std::vector<std::uint8_t> want = first;
  want.insert(want.end(), second.begin(), second.end());
  EXPECT_EQ(drain(*stream), want);
  EXPECT_FALSE(stream->eof());  // empty but not closed
}

TEST_P(ByteStreamContract, EofOnlyAfterCloseAndDrain) {
  auto stream = make(1 << 12);
  ASSERT_TRUE(stream->try_write(pattern_bytes(64, 3)));
  stream->close_write();
  EXPECT_FALSE(stream->eof());  // bytes still buffered
  EXPECT_EQ(drain(*stream).size(), 64u);
  std::uint8_t buf[8];
  EXPECT_EQ(stream->read(buf), 0u);
  EXPECT_TRUE(stream->eof());
}

TEST_P(ByteStreamContract, ChunkedReadsReassembleExactly) {
  auto stream = make(1 << 14);
  const auto want = pattern_bytes(5000, 17);
  ASSERT_TRUE(stream->try_write(want));
  std::vector<std::uint8_t> got;
  std::uint8_t tiny[3];
  for (;;) {
    const std::size_t n = stream->read(tiny);
    if (n == 0) break;
    got.insert(got.end(), tiny, tiny + n);
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Transports, ByteStreamContract, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "SocketPair" : "SpscRing";
                         });

TEST(SpscRingStream, RefusesWritesBeyondCapacityAllOrNothing) {
  SpscRingStream stream(128);  // rounds to 128
  ASSERT_EQ(stream.capacity(), 128u);
  ASSERT_TRUE(stream.try_write(pattern_bytes(100, 5)));
  // 28 bytes free: a 29-byte chunk must be refused wholesale.
  EXPECT_FALSE(stream.try_write(pattern_bytes(29, 6)));
  EXPECT_TRUE(stream.try_write(pattern_bytes(28, 7)));
  EXPECT_FALSE(stream.try_write(pattern_bytes(1, 8)));
  // Draining frees space for a wrap-around write.
  EXPECT_EQ(drain(stream).size(), 128u);
  EXPECT_TRUE(stream.try_write(pattern_bytes(100, 9)));
  EXPECT_EQ(drain(stream), pattern_bytes(100, 9));
}

TEST(SpscRingStream, WrapAroundPreservesBytes) {
  SpscRingStream stream(64);
  Rng rng(0x57A3);
  std::vector<std::uint8_t> sent;
  std::vector<std::uint8_t> received;
  // Many small writes/reads cycle the ring several times.
  for (int i = 0; i < 200; ++i) {
    const auto chunk =
        pattern_bytes(1 + rng.uniform_int(40), static_cast<std::uint8_t>(i));
    if (stream.try_write(chunk)) {
      sent.insert(sent.end(), chunk.begin(), chunk.end());
    }
    const auto got = drain(stream);
    received.insert(received.end(), got.begin(), got.end());
  }
  const auto rest = drain(stream);
  received.insert(received.end(), rest.begin(), rest.end());
  EXPECT_EQ(received, sent);
}

TEST(SpscRingStream, CrossThreadHandoff) {
  // One producer, one consumer, 1 MiB through a 4 KiB ring: the
  // acquire/release pairing must hand every byte across intact.
  SpscRingStream stream(1 << 12);
  const std::size_t kTotal = 1 << 20;
  std::thread producer([&] {
    std::vector<std::uint8_t> chunk(257);
    std::size_t sent = 0;
    std::uint8_t value = 0;
    while (sent < kTotal) {
      const std::size_t n = std::min(chunk.size(), kTotal - sent);
      for (std::size_t i = 0; i < n; ++i) {
        chunk[i] = value++;
      }
      while (!stream.try_write(std::span(chunk.data(), n))) {
        std::this_thread::yield();
      }
      sent += n;
    }
    stream.close_write();
  });
  std::size_t got = 0;
  std::uint8_t expected = 0;
  bool ordered = true;
  std::uint8_t buf[509];
  while (!stream.eof()) {
    const std::size_t n = stream.read(buf);
    for (std::size_t i = 0; i < n; ++i) {
      ordered = ordered && buf[i] == expected++;
    }
    got += n;
    if (n == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(got, kTotal);
  EXPECT_TRUE(ordered);
}

TEST(SocketPairStream, BackpressureThenDrainRecoversEveryByte) {
  SocketPairStream stream(4096);
  const auto chunk = pattern_bytes(1024, 11);
  // Fill until the kernel refuses: the refusal is the backpressure signal.
  // An accepted chunk may be split between the kernel buffer and the
  // stream's internal pending tail; after a drain + one more write + a
  // close, every accepted byte must come out exactly once.
  std::size_t accepted = 0;
  while (stream.try_write(chunk)) {
    ++accepted;
    ASSERT_LT(accepted, 10000u) << "socketpair never exerted backpressure";
  }
  EXPECT_GT(accepted, 0u);
  std::vector<std::uint8_t> all = drain(stream);
  ASSERT_TRUE(stream.try_write(chunk));  // space again; flushes any tail
  ++accepted;
  stream.close_write();
  const auto rest = drain(stream);
  all.insert(all.end(), rest.begin(), rest.end());
  EXPECT_EQ(all.size(), accepted * chunk.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i], chunk[i % chunk.size()]) << "byte " << i;
  }
  EXPECT_TRUE(stream.eof());
}

}  // namespace
}  // namespace pint
