#include <gtest/gtest.h>

#include <numeric>

#include "baselines/ams.h"
#include "baselines/int_classic.h"
#include "baselines/ppm.h"
#include "packet/headers.h"

namespace pint {
namespace {

TEST(IntClassic, StackGrowsPerHop) {
  IntStack stack(2);
  EXPECT_EQ(stack.overhead_bytes(), 8);  // instruction header only
  stack.push(1, {10, 20});
  stack.push(2, {11, 21});
  EXPECT_EQ(stack.records().size(), 2u);
  EXPECT_EQ(stack.overhead_bytes(), 8 + 2 * 2 * 4);
}

TEST(IntClassic, PaperOverheadNumbers) {
  // Section 2: 5 hops, one value -> 28B; five values -> 108B.
  IntHeaderSpec one{1};
  EXPECT_EQ(one.overhead_bytes(5), 28);
  IntHeaderSpec five{5};
  EXPECT_EQ(five.overhead_bytes(5), 108);
  // HPCC's 3 values on 5 hops: 8 + 60 = 68B.
  IntHeaderSpec three{3};
  EXPECT_EQ(three.overhead_bytes(5), 68);
}

TEST(PintHeader, ConstantOverhead) {
  PintHeaderSpec spec{16};
  EXPECT_EQ(spec.overhead_bytes(5), 2);
  EXPECT_EQ(spec.overhead_bytes(59), 2);  // independent of path length
  PintHeaderSpec one_bit{1};
  EXPECT_EQ(one_bit.overhead_bytes(), 1);
}

TEST(SerializationDelay, PaperFigures) {
  // Section 2: 48 extra bytes cost ~76ns at 10G (with some switch-dependent
  // slack) and ~6ns at 100G. Check order of magnitude with 64b/66b framing.
  EXPECT_NEAR(serialization_delay_ns(48, 10e9), 39.6, 1.0);
  EXPECT_NEAR(serialization_delay_ns(48, 100e9), 3.96, 0.1);
  // (The paper's 76ns includes 6 clock cycles at 6.4ns on the Xilinx MAC;
  // the wire-time component we model is the 64b/66b serialization.)
}

TEST(Ppm, MarksAreReservoirUniform) {
  PpmTraceback ppm(11);
  const unsigned k = 10;
  std::vector<int> counts(k, 0);
  const int n = 50000;
  for (PacketId p = 1; p <= static_cast<PacketId>(n); ++p) {
    PpmMark mark;
    for (HopIndex i = 1; i <= k; ++i) ppm.mark(p, i, 100 + i, mark);
    ASSERT_GE(mark.distance, 1u);
    ++counts[mark.distance - 1];
  }
  for (int c : counts) EXPECT_NEAR(c, n / k, n / k * 0.1);
}

TEST(Ppm, DecodeCompletes) {
  PpmTraceback ppm(13);
  const unsigned k = 5;
  PpmDecoder dec(k);
  PacketId p = 1;
  while (!dec.complete() && p < 100000) {
    PpmMark mark;
    for (HopIndex i = 1; i <= k; ++i) ppm.mark(p, i, 200 + i, mark);
    dec.add_mark(mark);
    ++p;
  }
  EXPECT_TRUE(dec.complete());
  EXPECT_EQ(dec.missing(), 0u);
}

TEST(Ppm, FragmentBitsDeterministic) {
  EXPECT_EQ(PpmTraceback::fragment_bits(12345, 3),
            PpmTraceback::fragment_bits(12345, 3));
  // Low fragments carry the raw ID bytes.
  EXPECT_EQ(PpmTraceback::fragment_bits(0xAABBCCDD, 0), 0xDD);
  EXPECT_EQ(PpmTraceback::fragment_bits(0xAABBCCDD, 3), 0xAA);
}

TEST(Ams, DecodeIdentifiesPath) {
  const unsigned k = 6;
  AmsTraceback ams(5, 17);
  std::vector<SwitchId> universe(300);
  std::iota(universe.begin(), universe.end(), 1);
  std::vector<SwitchId> path{7, 42, 113, 250, 99, 3};

  AmsDecoder dec(k, ams, universe);
  PacketId p = 1;
  while (!dec.complete() && p < 200000) {
    AmsMark mark;
    for (HopIndex i = 1; i <= k; ++i) ams.mark(p, i, path[i - 1], mark);
    dec.add_mark(mark);
    ++p;
  }
  ASSERT_TRUE(dec.complete());
  for (HopIndex h = 1; h <= k; ++h) {
    const auto cands = dec.candidates(h);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0], path[h - 1]);
  }
}

TEST(Ams, MoreHashesNeedMorePackets) {
  // The m=5 vs m=6 trade-off of Fig. 10: m=6 needs more packets.
  const unsigned k = 8;
  std::vector<SwitchId> universe(500);
  std::iota(universe.begin(), universe.end(), 1);
  std::vector<SwitchId> path{10, 20, 30, 40, 50, 60, 70, 80};

  auto avg_packets = [&](unsigned m) {
    double total = 0.0;
    const int reps = 10;
    for (int rep = 0; rep < reps; ++rep) {
      AmsTraceback ams(m, 500 + rep);
      AmsDecoder dec(k, ams, universe);
      PacketId p = 1;
      while (!dec.all_constraints()) {
        AmsMark mark;
        for (HopIndex i = 1; i <= k; ++i) ams.mark(p, i, path[i - 1], mark);
        dec.add_mark(mark);
        ++p;
      }
      total += static_cast<double>(p - 1);
    }
    return total / reps;
  };
  EXPECT_LT(avg_packets(5), avg_packets(6));
}

TEST(Ams, PartialConstraintsLeaveAmbiguity) {
  const unsigned k = 2;
  AmsTraceback ams(6, 23);
  std::vector<SwitchId> universe(1000);
  std::iota(universe.begin(), universe.end(), 1);
  AmsDecoder dec(k, ams, universe);
  // With no marks, every router is a candidate.
  EXPECT_EQ(dec.candidates(1).size(), universe.size());
  EXPECT_FALSE(dec.complete());
}

}  // namespace
}  // namespace pint
