// Tests for the PINT extensions: wire-format bit packing, path-change
// detection under multipath routing (Section 7), and the bit-vector decode
// fast path (Section 4.2).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "coding/encoder.h"
#include "coding/hashed_decoder.h"
#include "coding/peeling_decoder.h"
#include "common/rng.h"
#include "pint/path_change.h"
#include "pint/wire_format.h"

namespace pint {
namespace {

// --- wire format -------------------------------------------------------------

TEST(WireFormat, RoundTripMixedWidths) {
  const std::vector<unsigned> widths{8, 3, 1, 16, 64, 5};
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Digest> lanes;
    for (unsigned w : widths) lanes.push_back(rng.next() & low_bits_mask(w));
    const auto bytes = pack_digests(lanes, widths);
    EXPECT_EQ(bytes.size(), wire_bytes(widths));
    EXPECT_EQ(unpack_digests(bytes, widths), lanes);
  }
}

TEST(WireFormat, SixteenBitBudgetIsTwoBytes) {
  const std::vector<unsigned> widths{8, 8};
  const std::vector<Digest> lanes{0xAB, 0xCD};
  const auto bytes = pack_digests(lanes, widths);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0xCD);
}

TEST(WireFormat, OddBitsPadToByte) {
  const std::vector<unsigned> widths{3, 4};  // 7 bits -> 1 byte
  EXPECT_EQ(wire_bytes(widths), 1u);
  const auto bytes = pack_digests(std::vector<Digest>{0b101, 0b1100}, widths);
  ASSERT_EQ(bytes.size(), 1u);
  const auto lanes = unpack_digests(bytes, widths);
  EXPECT_EQ(lanes[0], 0b101u);
  EXPECT_EQ(lanes[1], 0b1100u);
}

TEST(WireFormat, RejectsBadInput) {
  EXPECT_THROW(
      pack_digests(std::vector<Digest>{1}, std::vector<unsigned>{1, 2}),
      std::invalid_argument);
  EXPECT_THROW(
      pack_digests(std::vector<Digest>{4}, std::vector<unsigned>{2}),
      std::invalid_argument);  // value exceeds width
  EXPECT_THROW(
      unpack_digests(std::vector<std::uint8_t>{}, std::vector<unsigned>{8}),
      std::invalid_argument);
  EXPECT_THROW(
      pack_digests(std::vector<Digest>{0}, std::vector<unsigned>{0}),
      std::invalid_argument);
}

// --- path change detection ---------------------------------------------------

class PathChangeFixture : public ::testing::Test {
 protected:
  static constexpr unsigned kHops = 6;
  static constexpr unsigned kBits = 8;

  PathChangeFixture()
      : root_(777), scheme_(make_multilayer_scheme(kHops)),
        hashes_(make_instance_hashes(root_, 0)) {}

  Digest encode(PacketId p, const std::vector<SwitchId>& path) const {
    Digest d = 0;
    for (HopIndex i = 1; i <= path.size(); ++i) {
      d = encode_step(scheme_, hashes_, p, i, d, path[i - 1], kBits);
    }
    return d;
  }

  GlobalHash root_;
  SchemeConfig scheme_;
  InstanceHashes hashes_;
};

TEST_F(PathChangeFixture, ConsistentPacketsRaiseNothing) {
  const std::vector<SwitchId> path{1, 2, 3, 4, 5, 6};
  PathChangeDetector det(kHops, scheme_, hashes_, kBits);
  for (HopIndex i = 1; i <= kHops; ++i) det.set_known(i, path[i - 1]);
  for (PacketId p = 1; p <= 5000; ++p) {
    EXPECT_FALSE(det.check(p, encode(p, path)).has_value()) << p;
  }
}

TEST_F(PathChangeFixture, RouteChangeDetectedQuickly) {
  const std::vector<SwitchId> old_path{1, 2, 3, 4, 5, 6};
  const std::vector<SwitchId> new_path{1, 2, 9, 4, 5, 6};  // hop 3 rerouted
  PathChangeDetector det(kHops, scheme_, hashes_, kBits);
  for (HopIndex i = 1; i <= kHops; ++i) det.set_known(i, old_path[i - 1]);

  // Expected detection within a few packets: per-Baseline-packet detection
  // probability is ~ (1/k) * (1 - 2^-8) for the changed hop... but any
  // baseline packet carrying hop 3 mismatches.
  PacketId p = 1;
  std::optional<HopIndex> hit;
  while (!hit && p < 2000) {
    hit = det.check(p, encode(p, new_path));
    ++p;
  }
  ASSERT_TRUE(hit.has_value());
  EXPECT_LT(p, 500u);
}

TEST_F(PathChangeFixture, DetectionProbabilityMatchesPaper) {
  EXPECT_NEAR(
      PathChangeDetector(kHops, scheme_, hashes_, 8).detection_probability(),
      1.0 - 1.0 / 256.0, 1e-12);
  EXPECT_NEAR(
      PathChangeDetector(kHops, scheme_, hashes_, 1).detection_probability(),
      0.5, 1e-12);
}

TEST_F(PathChangeFixture, UnknownHopsAreUninformative) {
  PathChangeDetector det(kHops, scheme_, hashes_, kBits);
  EXPECT_EQ(det.known_hops(), 0u);
  const std::vector<SwitchId> path{1, 2, 3, 4, 5, 6};
  // Nothing known -> nothing can contradict.
  for (PacketId p = 1; p <= 500; ++p) {
    EXPECT_FALSE(det.check(p, encode(p, path)).has_value());
  }
}

// --- bit-vector fast path ----------------------------------------------------

TEST(FastPath, MakeFastRoundsProbabilities) {
  SchemeConfig cfg = make_multilayer_scheme(25);
  const SchemeConfig fast = make_fast(cfg);
  ASSERT_TRUE(fast.use_bit_vectors);
  ASSERT_EQ(fast.layer_rounds.size(), fast.layer_probs.size());
  for (std::size_t l = 0; l < fast.layer_probs.size(); ++l) {
    EXPECT_DOUBLE_EQ(fast.layer_probs[l],
                     std::pow(0.5, fast.layer_rounds[l]));
    // Within sqrt(2) of the original probability (footnote 9).
    EXPECT_LE(fast.layer_probs[l] / cfg.layer_probs[l], 1.5);
    EXPECT_GE(fast.layer_probs[l] / cfg.layer_probs[l], 0.6);
  }
}

TEST(FastPath, EncoderAndDecoderAgreeOnParticipants) {
  const unsigned k = 40;
  const SchemeConfig fast = make_fast(make_multilayer_scheme(k));
  GlobalHash root(31337);
  const InstanceHashes h = make_instance_hashes(root, 0);
  for (PacketId p = 1; p <= 2000; ++p) {
    for (unsigned layer = 1; layer <= fast.num_layers(); ++layer) {
      const auto hops = xor_layer_hops(fast, h, p, k, layer);
      std::vector<HopIndex> via_acts;
      for (HopIndex i = 1; i <= k; ++i) {
        if (xor_layer_acts(fast, h, p, i, layer)) via_acts.push_back(i);
      }
      ASSERT_EQ(hops, via_acts) << "packet " << p << " layer " << layer;
    }
  }
}

TEST(FastPath, ParticipationProbabilityIsPowerOfTwo) {
  const unsigned k = 64;
  SchemeConfig fast = make_fast(make_xor_scheme(16));  // p=1/16 exactly
  ASSERT_EQ(fast.layer_rounds[0], 4u);
  GlobalHash root(99);
  const InstanceHashes h = make_instance_hashes(root, 0);
  std::uint64_t total = 0;
  const int packets = 30000;
  for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
    total += xor_layer_hops(fast, h, p, k, 1).size();
  }
  EXPECT_NEAR(static_cast<double>(total) / (packets * k), 1.0 / 16.0, 0.005);
}

class FastDecodeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FastDecodeTest, PeelingDecodesWithFastScheme) {
  const unsigned k = GetParam();
  const SchemeConfig fast = make_fast(make_multilayer_scheme(k));
  GlobalHash root(4000 + k);
  const InstanceHashes h = make_instance_hashes(root, 0);
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(k * 1000 + i);
  PeelingDecoder dec(k, fast, h);
  PacketId p = 1;
  while (!dec.complete() && p < 100000) {
    dec.add_packet(p, encode_path(fast, h, p, blocks, 0));
    ++p;
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.message(), blocks);
}

INSTANTIATE_TEST_SUITE_P(Ks, FastDecodeTest,
                         ::testing::Values(5u, 25u, 59u, 128u));

TEST(FastPath, HashedDecoderWorksWithFastScheme) {
  const unsigned k = 12;
  std::vector<std::uint64_t> universe(128);
  std::iota(universe.begin(), universe.end(), 500);
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = universe[(i * 11) % 128];
  HashedDecoderConfig cfg;
  cfg.k = k;
  cfg.bits = 8;
  cfg.instances = 1;
  cfg.scheme = make_fast(make_multilayer_scheme(k));
  GlobalHash root(8080);
  HashedPathDecoder dec(cfg, root, universe);
  PacketId p = 1;
  while (!dec.complete() && p < 200000) {
    dec.add_packet(p,
                   encode_path_multi(cfg.scheme, root, 1, p, blocks, 8));
    ++p;
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.path(), blocks);
}

}  // namespace
}  // namespace pint
