// SlabArena / ArenaAllocator (common/arena.h) and the arena-backed
// RecordingStore: pooled nodes must recycle through the free lists, a null
// arena must degrade to the heap, and a store's behavior and accounting
// must be identical with the arena on or off — the arena changes where
// nodes live, never what the store does.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/arena.h"
#include "pint/recording_store.h"

namespace pint {
namespace {

TEST(SlabArena, RecyclesFreedNodesThroughFreeLists) {
  SlabArena arena;
  void* a = arena.allocate(24, 8);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(arena.freelist_reuses(), 0u);
  arena.deallocate(a, 24, 8);
  // Same size class comes back from the free list, not fresh slab space.
  void* b = arena.allocate(24, 8);
  EXPECT_EQ(b, a);
  EXPECT_EQ(arena.freelist_reuses(), 1u);
  arena.deallocate(b, 24, 8);
}

TEST(SlabArena, GrowsSlabsAndServesManySizes) {
  SlabArena arena(1 << 12);
  std::vector<std::pair<void*, std::size_t>> live;
  for (std::size_t i = 1; i <= 400; ++i) {
    const std::size_t bytes = 8 + (i % 13) * 16;
    void* p = arena.allocate(bytes, 8);
    ASSERT_NE(p, nullptr);
    // Pooled memory is 16-aligned by construction.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    live.emplace_back(p, bytes);
  }
  EXPECT_GT(arena.slabs(), 1u);  // forced past one slab
  for (auto& [p, bytes] : live) arena.deallocate(p, bytes, 8);
  // Everything freed: the next wave reuses, no new slabs.
  const std::size_t slabs_before = arena.slabs();
  for (std::size_t i = 1; i <= 400; ++i) {
    const std::size_t bytes = 8 + (i % 13) * 16;
    arena.deallocate(arena.allocate(bytes, 8), bytes, 8);
  }
  EXPECT_EQ(arena.slabs(), slabs_before);
  EXPECT_GT(arena.freelist_reuses(), 0u);
}

TEST(SlabArena, OversizeRequestsFallThroughToHeap) {
  SlabArena arena(1 << 12);  // max pooled = 1 KiB
  const std::size_t big = 64 << 10;
  void* p = arena.allocate(big, 8);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(arena.oversize_allocs(), 1u);
  EXPECT_EQ(arena.slabs(), 0u);  // no slab was cut for it
  arena.deallocate(p, big, 8);
}

TEST(ArenaAllocator, BacksStandardContainers) {
  SlabArena arena;
  using Alloc = ArenaAllocator<std::pair<const std::uint64_t, std::uint64_t>>;
  std::unordered_map<std::uint64_t, std::uint64_t, std::hash<std::uint64_t>,
                     std::equal_to<std::uint64_t>, Alloc>
      map(0, std::hash<std::uint64_t>{}, std::equal_to<std::uint64_t>{},
          Alloc{&arena});
  std::list<std::uint64_t, ArenaAllocator<std::uint64_t>> list{
      ArenaAllocator<std::uint64_t>{&arena}};
  for (std::uint64_t i = 0; i < 1000; ++i) {
    map[i] = i * i;
    list.push_back(i);
  }
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(map[i], i * i);
  EXPECT_EQ(std::accumulate(list.begin(), list.end(), std::uint64_t{0}),
            499500u);
  // Erase half, insert again: the free lists must absorb the churn.
  for (std::uint64_t i = 0; i < 1000; i += 2) map.erase(i);
  const std::uint64_t reuses_before = arena.freelist_reuses();
  for (std::uint64_t i = 0; i < 1000; i += 2) map[i] = i;
  EXPECT_GT(arena.freelist_reuses(), reuses_before);
}

TEST(ArenaAllocator, NullArenaUsesHeap) {
  std::list<int, ArenaAllocator<int>> list;  // default: arena == nullptr
  for (int i = 0; i < 100; ++i) list.push_back(i);
  EXPECT_EQ(list.size(), 100u);
  EXPECT_EQ(list.front(), 0);
  EXPECT_EQ(list.back(), 99);
}

// --- RecordingStore over the arena ------------------------------------------

using Store = RecordingStore<std::vector<std::uint64_t>>;

Store::Factory vec_factory() {
  return [](std::uint64_t key) {
    return std::vector<std::uint64_t>{key};
  };
}

Store::SizeFn vec_size() {
  return [](const std::vector<std::uint64_t>& v) {
    return vector_entry_bytes(v);
  };
}

TEST(RecordingStoreArena, EnabledByDefaultAndUsedByChurn) {
  Store store(4096, vec_factory(), vec_size());
  ASSERT_NE(store.arena(), nullptr);
  for (std::uint64_t f = 0; f < 2000; ++f) store.touch(f);
  EXPECT_GT(store.evictions(), 0u);  // churned through the ceiling
  // Eviction churn at a full ceiling recycles nodes through the arena.
  EXPECT_GT(store.arena()->freelist_reuses(), 0u);
  EXPECT_GT(store.arena()->slabs(), 0u);
}

TEST(RecordingStoreArena, OnAndOffAreBehaviorallyIdentical) {
  Store with_arena(4096, vec_factory(), vec_size());
  Store no_arena(4096, vec_factory(), vec_size());
  no_arena.set_arena(false);
  EXPECT_EQ(no_arena.arena(), nullptr);

  for (std::uint64_t f = 0; f < 3000; ++f) {
    with_arena.touch(f % 700);
    no_arena.touch(f % 700);
  }
  EXPECT_EQ(with_arena.flows(), no_arena.flows());
  EXPECT_EQ(with_arena.used_bytes(), no_arena.used_bytes());
  EXPECT_EQ(with_arena.peak_used_bytes(), no_arena.peak_used_bytes());
  EXPECT_EQ(with_arena.evictions(), no_arena.evictions());
  EXPECT_EQ(with_arena.created(), no_arena.created());
  // Same survivors, same contents.
  for (std::uint64_t f = 0; f < 700; ++f) {
    const auto* a = with_arena.find(f);
    const auto* b = no_arena.find(f);
    ASSERT_EQ(a == nullptr, b == nullptr) << "flow " << f;
    if (a != nullptr) {
      EXPECT_EQ(*a, *b);
    }
  }
}

TEST(RecordingStoreArena, ToggleOnLiveStoreThrows) {
  Store store(0, vec_factory(), vec_size());
  store.touch(7);
  EXPECT_THROW(store.set_arena(false), std::logic_error);
  // Toggling to the current state is a no-op even when non-empty.
  EXPECT_NO_THROW(store.set_arena(true));
}

}  // namespace
}  // namespace pint
