// End-to-end: the full PINT framework (Section 6.4's three-query mix) riding
// on simulated traffic — the deepest integration test in the repo. Traffic
// flows through the discrete-event network; switches encode 2 bytes of
// digest per data packet; the sink's Recording Module accumulates state;
// afterwards the Inference Module must answer all three queries about what
// physically happened in the simulator.
#include <gtest/gtest.h>

#include "packet/headers.h"
#include "pint/report_codec.h"
#include "sim/simulator.h"
#include "topology/fat_tree.h"

namespace pint {
namespace {

struct FullSim {
  FatTree ft = make_fat_tree(4);
  std::unique_ptr<Simulator> sim;
  std::vector<std::uint32_t> flow_ids;

  explicit FullSim(double pint_frequency = 1.0 / 16.0) {
    std::vector<bool> is_host(ft.graph.num_nodes(), false);
    for (NodeId h : ft.nodes.hosts) is_host[h] = true;
    SimConfig cfg;
    cfg.telemetry = TelemetryMode::kPint;
    cfg.pint_full = true;
    cfg.pint_bit_budget = 16;
    cfg.pint_frequency = pint_frequency;
    cfg.transport = TransportKind::kHpcc;
    cfg.host_bandwidth_bps = 10e9;
    cfg.fabric_bandwidth_bps = 40e9;
    cfg.hpcc.base_rtt = 20 * kMicro;
    cfg.seed = 5;
    sim = std::make_unique<Simulator>(ft.graph, is_host, cfg);
  }
};

TEST(SimFramework, DecodesRealPathsFromSimulatedTraffic) {
  FullSim fs;
  // Cross-pod flow: 5 switch hops, long enough to decode.
  const NodeId src = fs.ft.nodes.hosts.front();
  const NodeId dst = fs.ft.nodes.hosts.back();
  const auto id = fs.sim->add_flow(src, dst, 3'000'000, 0);
  fs.sim->run_until(1 * kSecond);
  ASSERT_TRUE(fs.sim->flow_stats()[id].done);

  const PintFramework* fw = fs.sim->framework();
  ASSERT_NE(fw, nullptr);
  const std::uint64_t fkey = fs.sim->framework_flow_key(id);
  const auto path = fw->flow_path(fkey);
  ASSERT_TRUE(path.has_value()) << "progress " << fw->path_progress(fkey);
  // The decoded path must be a real switch path: correct length and
  // alternating tiers (edge, agg, core, agg, edge for cross-pod).
  ASSERT_EQ(path->size(), fs.sim->flow_stats()[id].path_hops);
  // Every decoded node must be adjacent to the next in the topology.
  for (std::size_t i = 1; i < path->size(); ++i) {
    EXPECT_TRUE(fs.ft.graph.has_edge((*path)[i - 1], (*path)[i]))
        << "hop " << i;
  }
}

TEST(SimFramework, LatencyQuantilesReflectSimulatedQueueing) {
  FullSim fs;
  const NodeId src = fs.ft.nodes.hosts.front();
  const NodeId dst = fs.ft.nodes.hosts.back();
  const auto id = fs.sim->add_flow(src, dst, 3'000'000, 0);
  fs.sim->run_until(1 * kSecond);
  const PintFramework* fw = fs.sim->framework();
  const std::uint64_t fkey = fs.sim->framework_flow_key(id);
  const unsigned k = fs.sim->flow_stats()[id].path_hops;
  for (HopIndex hop = 1; hop <= k; ++hop) {
    const auto med = fw->latency_quantile(fkey, hop, 0.5);
    ASSERT_TRUE(med.has_value()) << "hop " << hop;
    // Per-hop latency: at least one serialization time (~0.8us for 1KB at
    // 10G) and below a loose queueing bound.
    EXPECT_GT(*med, 50.0);        // > 50ns
    EXPECT_LT(*med, 5e6);         // < 5ms
  }
}

TEST(SimFramework, HpccFeedbackArrivesAtConfiguredFrequency) {
  FullSim fs(1.0 / 16.0);
  const NodeId src = fs.ft.nodes.hosts.front();
  const NodeId dst = fs.ft.nodes.hosts.back();
  const auto id = fs.sim->add_flow(src, dst, 2'000'000, 0);
  fs.sim->run_until(1 * kSecond);
  EXPECT_TRUE(fs.sim->flow_stats()[id].done);
  // The flow completed under HPCC driven only by 1-in-16-packet compressed
  // feedback — that is the Fig. 8 p=1/16 configuration working end to end.
}

TEST(SimFramework, SixteenBitBudgetOnWire) {
  FullSim fs;
  // Wire accounting: PINT adds exactly 2 bytes per data packet.
  SimConfig cfg;
  cfg.telemetry = TelemetryMode::kPint;
  cfg.pint_bit_budget = 16;
  PintHeaderSpec spec{cfg.pint_bit_budget};
  EXPECT_EQ(spec.overhead_bytes(), 2);
}

TEST(SimFramework, SameSeedByteIdenticalObserverStream) {
  // Seed-determinism regression for the legacy fixed fat-tree path: two
  // identically-configured sims must hand the sink observer the exact same
  // observation stream, byte for byte. Any nondeterminism in event
  // ordering, hashing, or RNG consumption shows up here first.
  const auto run_once = [] {
    FatTree ft = make_fat_tree(4);
    std::vector<bool> is_host(ft.graph.num_nodes(), false);
    for (NodeId h : ft.nodes.hosts) is_host[h] = true;

    ReportEncoder encoder;
    EncodingObserver enc_obs(encoder);
    SimConfig cfg;
    cfg.telemetry = TelemetryMode::kPint;
    cfg.pint_full = true;
    cfg.pint_bit_budget = 16;
    cfg.transport = TransportKind::kTcpReno;
    cfg.seed = 77;
    cfg.framework_builder = [&](const SimConfig& c, const Graph& g,
                                const std::vector<bool>& host_mask) {
      std::vector<std::uint64_t> universe;
      for (NodeId n = 0; n < g.num_nodes(); ++n) {
        if (!host_mask[n]) universe.push_back(n);
      }
      PathTracingConfig path_tuning;
      path_tuning.bits = 8;
      path_tuning.instances = 1;
      path_tuning.d = 5;
      DynamicAggregationConfig queue_tuning;
      queue_tuning.max_value =
          static_cast<double>(c.switch_buffer_bytes);
      PintFramework::Builder builder;
      builder.global_bit_budget(c.pint_bit_budget)
          .seed(c.seed ^ 0x6040)
          .switch_universe(std::move(universe))
          .add_query(make_path_query("path", 8, 1.0, path_tuning))
          .add_query(make_dynamic_query(
              "queue", std::string(extractor::kQueueOccupancy), 8, 0.6,
              queue_tuning))
          .add_observer(&enc_obs);
      return builder;
    };
    Simulator sim(ft.graph, is_host, cfg);
    // A handful of overlapping cross-pod and intra-pod flows.
    sim.add_flow(ft.nodes.hosts[0], ft.nodes.hosts[15], 400'000, 0);
    sim.add_flow(ft.nodes.hosts[3], ft.nodes.hosts[8], 250'000, 100 * kMicro);
    sim.add_flow(ft.nodes.hosts[1], ft.nodes.hosts[2], 150'000, 500 * kMicro);
    sim.run_until(4 * kMilli);
    return encoder.finish();
  };

  const std::vector<std::uint8_t> a = run_once();
  const std::vector<std::uint8_t> b = run_once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pint
