// ShardedSink: the multi-threaded Recording Module must be externally
// indistinguishable from the single-threaded sink. The load-bearing check is
// byte-identical merged SinkReport streams for the paper's three-query mix
// (Section 6.4) at several shard counts, plus merged-inference equality and
// the flow-partition rules.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <thread>
#include <vector>

#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
constexpr std::size_t kFlows = 120;
constexpr std::size_t kPacketsPerFlow = 24;

PintFramework::Builder three_query_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xC0FFEE)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow % 7);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow % 11);
  t.src_port = static_cast<std::uint16_t>(1000 + flow);
  t.dst_port = 80;
  return t;
}

// kFlows flows, each with a fixed kHops-switch path, interleaved round-robin
// (packet j of every flow, then packet j+1) — the order a real sink would
// see concurrent flows in. Digests are encoded by a dedicated "network"
// framework replica.
std::vector<Packet> make_encoded_traffic() {
  const auto network = three_query_builder().build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kFlows * kPacketsPerFlow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < kPacketsPerFlow; ++j) {
    for (std::size_t f = 0; f < kFlows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      packets.push_back(std::move(p));
    }
  }
  for (Packet& p : packets) {
    const std::size_t f = (p.id - 1) % kFlows;
    for (HopIndex i = 1; i <= kHops; ++i) {
      // Flow f's path: switches f%8+1 .. f%8+kHops (within the universe).
      SwitchView view(static_cast<SwitchId>(f % 8 + i));
      view.set(metric::kHopLatencyNs, 100.0 * i + static_cast<double>(f));
      view.set(metric::kLinkUtilization, 0.1 * i + 0.01 * (f % 10));
      network->at_switch(p, i, view);
    }
  }
  return packets;
}

// The merged report stream, canonicalized to bytes: submission order, one
// report per packet.
std::vector<std::uint8_t> stream_bytes(std::span<const Packet> packets,
                                       std::span<const SinkReport> reports) {
  ReportEncoder enc;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    enc.add(packets[i].id, kHops, reports[i]);
  }
  return enc.finish();
}

struct CountingObserver : SinkObserver {
  std::atomic<std::uint64_t> observations{0};
  std::atomic<std::uint64_t> paths_decoded{0};

  void on_observation(const SinkContext&, std::string_view,
                      const Observation&) override {
    ++observations;
  }
  void on_path_decoded(const SinkContext&, std::string_view,
                       const std::vector<SwitchId>&) override {
    ++paths_decoded;
  }
};

TEST(ShardedSink, MergedReportsByteIdenticalToSingleThreaded) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  // Single-threaded reference.
  const auto baseline = builder.build_or_throw();
  std::vector<SinkReport> base_reports(packets.size());
  baseline->at_sink(std::span<const Packet>(packets), kHops, base_reports);
  const std::vector<std::uint8_t> base_bytes =
      stream_bytes(packets, base_reports);
  ASSERT_FALSE(base_bytes.empty());

  for (const unsigned shards : {1u, 2u, 4u}) {
    ShardedSink sink(builder, shards);
    EXPECT_EQ(sink.partition_definition(), FlowDefinition::kFiveTuple);
    std::vector<SinkReport> reports(packets.size());
    // Submit in several batches to exercise the queue, not one giant span.
    const std::size_t half = packets.size() / 2;
    sink.submit(std::span<const Packet>(packets.data(), half), kHops,
                std::span<SinkReport>(reports.data(), half));
    sink.submit(
        std::span<const Packet>(packets.data() + half, packets.size() - half),
        kHops, std::span<SinkReport>(reports.data() + half,
                                     packets.size() - half));
    sink.flush();
    EXPECT_EQ(sink.packets_processed(), packets.size());
    EXPECT_EQ(stream_bytes(packets, reports), base_bytes)
        << "shards=" << shards;
  }
}

TEST(ShardedSink, MergedInferenceMatchesSingleThreaded) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  const auto baseline = builder.build_or_throw();
  baseline->at_sink(std::span<const Packet>(packets), kHops);

  ShardedSink sink(builder, 4);
  sink.submit(packets, kHops);
  sink.flush();

  std::size_t paths_checked = 0;
  for (std::size_t f = 0; f < kFlows; ++f) {
    const FiveTuple tuple = tuple_of_flow(f);
    const std::uint64_t fkey = baseline->flow_key_for("path", tuple);
    EXPECT_EQ(sink.path_progress("path", tuple),
              baseline->path_progress("path", fkey));
    const auto base_path = baseline->flow_path("path", fkey);
    const auto sharded_path = sink.flow_path("path", tuple);
    EXPECT_EQ(sharded_path, base_path);
    if (base_path.has_value()) ++paths_checked;
    for (HopIndex hop = 1; hop <= kHops; ++hop) {
      EXPECT_EQ(sink.latency_quantile("latency", tuple, hop, 0.5),
                baseline->latency_quantile(
                    "latency", baseline->flow_key_for("latency", tuple), hop,
                    0.5));
    }
  }
  // With 24 packets over a 5-hop path, most flows must fully decode.
  EXPECT_GT(paths_checked, kFlows / 2);
}

TEST(ShardedSink, SerializedObserversSeeEveryEvent) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  const auto baseline = builder.build_or_throw();
  CountingObserver reference;
  baseline->add_observer(&reference);
  baseline->at_sink(std::span<const Packet>(packets), kHops);

  ShardedSink sink(builder, 4);
  CountingObserver counter;
  sink.add_observer(&counter);
  sink.submit(packets, kHops);
  sink.flush();

  EXPECT_EQ(counter.observations.load(), reference.observations.load());
  EXPECT_EQ(counter.paths_decoded.load(), reference.paths_decoded.load());
}

TEST(ShardedSink, PartitionUsesCoarsestFlowDefinition) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec by_source = make_dynamic_query(
      "per_source", std::string(extractor::kHopLatency), 8, 1.0, tuning);
  by_source.query.flow_definition = FlowDefinition::kSourceIp;
  std::vector<std::uint64_t> universe{1, 2, 3, 4};
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0))
      .add_query(by_source);

  ShardedSink sink(builder, 4);
  EXPECT_EQ(sink.partition_definition(), FlowDefinition::kSourceIp);
  // Flows sharing a source must land on one shard, whatever the rest of the
  // tuple says — otherwise the per-source recorder state would split.
  FiveTuple a = tuple_of_flow(1);
  FiveTuple b = tuple_of_flow(2);
  b.src_ip = a.src_ip;
  EXPECT_EQ(sink.shard_of(a), sink.shard_of(b));
}

TEST(ShardedSink, RejectsUnpartitionableQueryMix) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec by_source = make_dynamic_query(
      "per_source", std::string(extractor::kHopLatency), 8, 0.5, tuning);
  by_source.query.flow_definition = FlowDefinition::kSourceIp;
  QuerySpec by_dest = make_dynamic_query(
      "per_dest", std::string(extractor::kQueueOccupancy), 8, 0.5, tuning);
  by_dest.query.flow_definition = FlowDefinition::kDestinationIp;
  PintFramework::Builder builder;
  builder.global_bit_budget(16).add_query(by_source).add_query(by_dest);

  EXPECT_THROW(ShardedSink(builder, 2), std::invalid_argument);
  EXPECT_NO_THROW(ShardedSink(builder, 1));  // one shard: nothing to split
}

TEST(ShardedSink, RejectsZeroShardsAndBadBuilder) {
  EXPECT_THROW(ShardedSink(three_query_builder(), 0), std::invalid_argument);
  PintFramework::Builder empty;
  EXPECT_THROW(ShardedSink(empty, 2), std::invalid_argument);
}

// The MPMC front-end under real contention: four producer threads (think
// four NIC queues) each blast their own flows into one sink through small
// queues, so submits regularly hit a full queue and block. The merged
// per-producer report streams must equal a single-producer baseline
// byte-for-byte, and no digest may be lost or duplicated.
TEST(ShardedSink, MpmcFourProducerStressMatchesSingleProducerBaseline) {
  constexpr unsigned kProducers = 4;
  constexpr std::size_t kStressFlows = 500;           // per producer, disjoint
  constexpr std::size_t kStressPacketsPerFlow = 200;  // 100k per producer
  constexpr std::size_t kSubmitBatch = 512;

  const auto builder = three_query_builder();
  const auto network = builder.build_or_throw();
  std::vector<std::vector<Packet>> traffic(kProducers);
  PacketId next_id = 1;
  for (unsigned p = 0; p < kProducers; ++p) {
    std::vector<Packet>& packets = traffic[p];
    packets.reserve(kStressFlows * kStressPacketsPerFlow);
    for (std::size_t j = 0; j < kStressPacketsPerFlow; ++j) {
      for (std::size_t f = 0; f < kStressFlows; ++f) {
        Packet pkt;
        pkt.id = next_id++;
        // Producer p owns flows (p, f): disjoint across producers, so
        // per-flow packet order — the thing that determines reports — is
        // preserved no matter how the producers' submits interleave.
        pkt.tuple.src_ip =
            0x0A000000u + (p << 16) + static_cast<std::uint32_t>(f);
        pkt.tuple.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(f % 64);
        pkt.tuple.src_port = static_cast<std::uint16_t>(f);
        pkt.tuple.dst_port = static_cast<std::uint16_t>(4000 + p);
        packets.push_back(std::move(pkt));
      }
    }
    for (Packet& pkt : packets) {
      const std::uint32_t f = pkt.tuple.src_ip & 0xFFFFu;
      for (HopIndex i = 1; i <= kHops; ++i) {
        SwitchView view(static_cast<SwitchId>((f + p + i) % 8 + 1));
        view.set(metric::kHopLatencyNs,
                 50.0 * i + static_cast<double>(f % 97));
        view.set(metric::kLinkUtilization, 0.02 * i + 0.001 * p);
        network->at_switch(pkt, i, view);
      }
    }
  }

  // Single-producer baseline: the producers' streams processed one after
  // another (flows are disjoint, so cross-producer order is irrelevant to
  // any per-packet report).
  const auto baseline = builder.build_or_throw();
  CountingObserver reference;
  baseline->add_observer(&reference);
  std::vector<std::vector<SinkReport>> base_reports(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    base_reports[p].resize(traffic[p].size());
    baseline->at_sink(std::span<const Packet>(traffic[p]), kHops,
                      base_reports[p]);
  }

  // Small queues force regular backpressure blocking in submit().
  ShardedSink sink(builder, 2, /*queue_depth=*/16);
  CountingObserver counter;
  sink.add_observer(&counter);
  std::vector<std::vector<SinkReport>> reports(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    reports[p].resize(traffic[p].size());
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::span<const Packet> packets(traffic[p]);
      const std::span<SinkReport> out(reports[p]);
      for (std::size_t off = 0; off < packets.size(); off += kSubmitBatch) {
        const std::size_t n = std::min(kSubmitBatch, packets.size() - off);
        sink.submit(packets.subspan(off, n), kHops, out.subspan(off, n));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  sink.flush();

  // No digest lost or duplicated, at three independent layers: the shard
  // counters, the observer stream, and the per-packet report bytes.
  const std::size_t total =
      kProducers * kStressFlows * kStressPacketsPerFlow;
  EXPECT_EQ(sink.packets_processed(), total);
  EXPECT_EQ(counter.observations.load(), reference.observations.load());
  EXPECT_EQ(counter.paths_decoded.load(), reference.paths_decoded.load());
  for (unsigned p = 0; p < kProducers; ++p) {
    EXPECT_EQ(stream_bytes(traffic[p], reports[p]),
              stream_bytes(traffic[p], base_reports[p]))
        << "producer " << p;
  }
}

// Extreme-contention variant: queue depth 2 keeps every producer almost
// permanently in the submit() backoff path (spin -> pause -> yield), the
// exact regime the bounded exponential backoff replaces the raw yield()
// spin in. No submission may be lost or duplicated.
TEST(ShardedSink, ContendedProducersWithTinyQueuesLoseNothing) {
  constexpr unsigned kProducers = 4;
  constexpr std::size_t kPackets = 4000;  // per producer
  constexpr std::size_t kSubmitBatch = 8;

  const auto builder = three_query_builder();
  const auto network = builder.build_or_throw();
  std::vector<std::vector<Packet>> traffic(kProducers);
  PacketId next_id = 1;
  for (unsigned p = 0; p < kProducers; ++p) {
    traffic[p].reserve(kPackets);
    for (std::size_t j = 0; j < kPackets; ++j) {
      Packet pkt;
      pkt.id = next_id++;
      pkt.tuple.src_ip = 0x0A000000u + (p << 12) +
                         static_cast<std::uint32_t>(j % 50);
      pkt.tuple.dst_ip = 0x0B000000u;
      pkt.tuple.src_port = static_cast<std::uint16_t>(j % 50);
      pkt.tuple.dst_port = static_cast<std::uint16_t>(p);
      // One fixed path per flow (p, j % 50): path decoding requires every
      // packet of a flow to traverse the same switches.
      const std::size_t f = p * 50 + j % 50;
      for (HopIndex i = 1; i <= kHops; ++i) {
        SwitchView view(static_cast<SwitchId>((f + i) % 8 + 1));
        view.set(metric::kHopLatencyNs, 10.0 * i);
        view.set(metric::kLinkUtilization, 0.01 * i);
        network->at_switch(pkt, i, view);
      }
      traffic[p].push_back(std::move(pkt));
    }
  }

  const auto baseline = builder.build_or_throw();
  CountingObserver reference;
  baseline->add_observer(&reference);
  for (unsigned p = 0; p < kProducers; ++p) {
    baseline->at_sink(std::span<const Packet>(traffic[p]), kHops);
  }

  ShardedSink sink(builder, 2, /*queue_depth=*/2);
  CountingObserver counter;
  sink.add_observer(&counter);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (unsigned p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const std::span<const Packet> packets(traffic[p]);
      for (std::size_t off = 0; off < packets.size(); off += kSubmitBatch) {
        const std::size_t n = std::min(kSubmitBatch, packets.size() - off);
        sink.submit(packets.subspan(off, n), kHops);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  sink.flush();

  EXPECT_EQ(sink.packets_processed(), kProducers * kPackets);
  EXPECT_EQ(counter.observations.load(), reference.observations.load());
  EXPECT_EQ(counter.paths_decoded.load(), reference.paths_decoded.load());
}

TEST(ShardedSink, SubmitRejectsMismatchedReportBuffer) {
  const std::vector<Packet> packets = make_encoded_traffic();
  ShardedSink sink(three_query_builder(), 2);
  std::vector<SinkReport> too_small(packets.size() - 1);
  EXPECT_THROW(sink.submit(packets, kHops, too_small), std::invalid_argument);
  std::vector<SinkReport> too_big(packets.size() + 1);
  EXPECT_THROW(sink.submit(packets, kHops, too_big), std::invalid_argument);
  // The failed submits enqueued nothing: no partial batches to drain.
  sink.flush();
  EXPECT_EQ(sink.packets_processed(), 0u);
  // A matching buffer (or none) still works on the same sink.
  std::vector<SinkReport> right(packets.size());
  sink.submit(packets, kHops, right);
  sink.flush();
  EXPECT_EQ(sink.packets_processed(), packets.size());
}

}  // namespace
}  // namespace pint
