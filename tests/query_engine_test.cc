#include <gtest/gtest.h>

#include "pint/query_engine.h"

namespace pint {
namespace {

Query make_query(std::string name, unsigned bits, double freq,
                 AggregationType agg = AggregationType::kStaticPerFlow) {
  Query q;
  q.name = std::move(name);
  q.bit_budget = bits;
  q.frequency = freq;
  q.aggregation = agg;
  return q;
}

TEST(QueryEngine, SingleQueryFullFrequency) {
  QueryEngine e({make_query("path", 16, 1.0)}, 16);
  ASSERT_EQ(e.plan().sets.size(), 1u);
  EXPECT_DOUBLE_EQ(e.plan().sets[0].probability, 1.0);
  EXPECT_DOUBLE_EQ(e.plan().query_coverage[0], 1.0);
}

TEST(QueryEngine, PaperSection64Plan) {
  // Paper Section 6.4: three 8-bit queries, 16-bit global budget; path on
  // all packets, latency on 15/16, HPCC on 1/16.
  const double p = 1.0 / 16.0;
  QueryEngine e(
      {make_query("path", 8, 1.0),
       make_query("latency", 8, 1.0 - p, AggregationType::kDynamicPerFlow),
       make_query("hpcc", 8, p, AggregationType::kPerPacket)},
      16);
  ASSERT_EQ(e.plan().sets.size(), 2u);
  // Set {path, latency} with 15/16, {path, hpcc} with 1/16.
  EXPECT_NEAR(e.plan().query_coverage[0], 1.0, 1e-9);
  EXPECT_NEAR(e.plan().query_coverage[1], 1.0 - p, 1e-9);
  EXPECT_NEAR(e.plan().query_coverage[2], p, 1e-9);
  for (const QuerySet& s : e.plan().sets) {
    unsigned bits = 0;
    for (std::size_t qi : s.query_indices) bits += e.queries()[qi].bit_budget;
    EXPECT_LE(bits, 16u);
  }
}

TEST(QueryEngine, PacketSelectionMatchesProbabilities) {
  const double p = 1.0 / 16.0;
  QueryEngine e({make_query("path", 8, 1.0), make_query("hpcc", 8, p)}, 16);
  int hpcc_count = 0, path_count = 0;
  const int n = 200000;
  for (PacketId pk = 0; pk < static_cast<PacketId>(n); ++pk) {
    path_count += e.query_runs(0, pk);
    hpcc_count += e.query_runs(1, pk);
  }
  EXPECT_NEAR(static_cast<double>(path_count) / n, 1.0, 0.001);
  EXPECT_NEAR(static_cast<double>(hpcc_count) / n, p, 0.005);
}

TEST(QueryEngine, AllSwitchesAgree) {
  // The whole point of the global hash: engines built from the same inputs
  // return identical sets per packet.
  const std::vector<Query> qs{make_query("a", 8, 0.7),
                              make_query("b", 8, 0.6)};
  QueryEngine e1(qs, 16, 99), e2(qs, 16, 99);
  for (PacketId p = 0; p < 5000; ++p) {
    EXPECT_EQ(e1.set_for_packet(p).query_indices,
              e2.set_for_packet(p).query_indices);
  }
}

TEST(QueryEngine, FrequenciesBelowOnePackTogether) {
  QueryEngine e({make_query("a", 16, 0.5), make_query("b", 16, 0.5)}, 16);
  // Both need the full budget; they must run on disjoint packet sets.
  EXPECT_NEAR(e.plan().query_coverage[0], 0.5, 1e-9);
  EXPECT_NEAR(e.plan().query_coverage[1], 0.5, 1e-9);
  for (PacketId p = 0; p < 5000; ++p) {
    EXPECT_FALSE(e.query_runs(0, p) && e.query_runs(1, p));
  }
}

TEST(QueryEngine, RejectsOversizedQuery) {
  EXPECT_THROW(QueryEngine({make_query("big", 32, 1.0)}, 16),
               std::invalid_argument);
}

TEST(QueryEngine, RejectsInfeasibleMix) {
  EXPECT_THROW(
      QueryEngine({make_query("a", 16, 1.0), make_query("b", 16, 1.0)}, 16),
      std::invalid_argument);
  EXPECT_THROW(
      QueryEngine({make_query("a", 16, 0.7), make_query("b", 16, 0.7)}, 16),
      std::invalid_argument);
}

TEST(QueryEngine, RejectsBadFrequency) {
  EXPECT_THROW(QueryEngine({make_query("a", 8, 0.0)}, 16),
               std::invalid_argument);
  EXPECT_THROW(QueryEngine({make_query("a", 8, 1.5)}, 16),
               std::invalid_argument);
}

TEST(QueryEngine, SparePacketsCarryNothing) {
  QueryEngine e({make_query("a", 8, 0.25)}, 16);
  int empty = 0;
  const int n = 100000;
  for (PacketId p = 0; p < static_cast<PacketId>(n); ++p) {
    empty += e.set_for_packet(p).query_indices.empty();
  }
  EXPECT_NEAR(static_cast<double>(empty) / n, 0.75, 0.01);
}

}  // namespace
}  // namespace pint
