// Pluggable admission/eviction policies (pint/policy.h) from the unit
// level up: the doorkeeper filter and frequency sketch in isolation, the
// RecordingStore's admission-aware accessors (touch / try_touch / put /
// try_put / refresh) under each policy — including the sole-oversized-flow
// and lowered-ceiling edges and the bounded second-chance eviction pass —
// and the framework integration: per-query policy installation, shed
// packets contributing no observations, exact rejection accounting in the
// memory report, and the priority plumbing the transport layer sheds by.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "pint/framework.h"
#include "pint/policy.h"
#include "pint/recording_store.h"
#include "pint/sink_report.h"

namespace pint {
namespace {

// ---------------------------------------------------------------- units --

TEST(PolicyUnit, ParseAndToStringRoundTrip) {
  for (const StorePolicyKind kind :
       {StorePolicyKind::kLru, StorePolicyKind::kDoorkeeper,
        StorePolicyKind::kTinyLfu}) {
    const auto parsed = parse_store_policy(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_store_policy("mru").has_value());
  EXPECT_FALSE(parse_store_policy("").has_value());
}

TEST(PolicyUnit, FactoryReturnsNullForLru) {
  // "No policy object" IS the LRU policy: the store keeps its original
  // code path with zero per-touch overhead.
  EXPECT_EQ(make_store_policy(StorePolicyKind::kLru, 1), nullptr);
  EXPECT_NE(make_store_policy(StorePolicyKind::kDoorkeeper, 1), nullptr);
  EXPECT_NE(make_store_policy(StorePolicyKind::kTinyLfu, 1), nullptr);
}

TEST(PolicyUnit, DoorkeeperFilterRemembersThenForgets) {
  DoorkeeperFilter filter(0xF00D, /*reset_after=*/64);
  EXPECT_FALSE(filter.test(42));
  filter.insert(42);
  EXPECT_TRUE(filter.test(42));
  // Burn the insertion budget with other keys: the next insert clears the
  // filter first, so 42's mark ages out instead of accreting.
  for (std::uint64_t k = 100; k < 164; ++k) filter.insert(k);
  filter.insert(9999);
  EXPECT_GE(filter.resets(), 1u);
  EXPECT_FALSE(filter.test(42));
}

TEST(PolicyUnit, DoorkeeperAdmitsOnSecondSight) {
  DoorkeeperPolicy policy(0x5EED);
  EXPECT_EQ(policy.on_admit(7), AdmitVerdict::kReject);
  EXPECT_EQ(policy.on_admit(7), AdmitVerdict::kAdmit);
  EXPECT_EQ(policy.stats().doorkeeper_hits, 1u);
  // Eviction stays pure LRU: candidates are never second-chanced.
  EXPECT_EQ(policy.on_evict_candidate(7, 8), EvictVerdict::kEvict);
}

TEST(PolicyUnit, FrequencySketchCountsAndAges) {
  FrequencySketch sketch(0xABC);
  EXPECT_EQ(sketch.estimate(5), 0u);
  EXPECT_FALSE(sketch.record(5));  // first sight: doorkeeper only
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(sketch.record(5));
  const std::uint32_t before = sketch.estimate(5);
  EXPECT_GE(before, 10u);
  // Spend the sample budget on distinct keys: counters halve so the
  // estimate tracks the recent window, not all of history.
  for (std::uint64_t k = 0; k < FrequencySketch::kSampleSize + 1; ++k) {
    (void)sketch.record(0x1'0000'0000ULL + k);
  }
  EXPECT_GE(sketch.ages(), 1u);
  EXPECT_LT(sketch.estimate(5), before);
}

TEST(PolicyUnit, TinyLfuRetainsFrequentCandidateOverRarePressure) {
  TinyLfuPolicy policy(0xCAFE);
  for (int i = 0; i < 16; ++i) policy.on_hit(/*elephant=*/1);
  (void)policy.on_admit(/*mouse=*/2);
  // A frequent LRU-tail flow survives pressure from a rare one...
  EXPECT_EQ(policy.on_evict_candidate(1, 2), EvictVerdict::kRetain);
  // ... but a rare tail loses to frequent pressure, and that decision is
  // counted as a frequency-directed eviction.
  EXPECT_EQ(policy.on_evict_candidate(2, 1), EvictVerdict::kEvict);
  EXPECT_EQ(policy.stats().frequency_evictions, 1u);
}

// ---------------------------------------------------------------- store --

constexpr std::size_t kEntryBytes = 64;

RecordingStore<int> make_store(std::size_t capacity, StorePolicyKind kind,
                               std::uint64_t seed = 0x7E57) {
  RecordingStore<int> store(capacity, [](std::uint64_t key) {
    return static_cast<int>(key);
  }, [](const int&) { return kEntryBytes; });
  store.set_policy(make_store_policy(kind, seed));
  return store;
}

TEST(PolicyStore, SetPolicyOnLiveStoreThrows) {
  auto store = make_store(0, StorePolicyKind::kLru);
  store.touch(1);
  EXPECT_THROW(
      store.set_policy(make_store_policy(StorePolicyKind::kDoorkeeper, 1)),
      std::logic_error);
}

TEST(PolicyStore, PolicyKindReportsInstalledPolicy) {
  EXPECT_EQ(make_store(0, StorePolicyKind::kLru).policy_kind(),
            StorePolicyKind::kLru);
  EXPECT_EQ(make_store(0, StorePolicyKind::kDoorkeeper).policy_kind(),
            StorePolicyKind::kDoorkeeper);
  EXPECT_EQ(make_store(0, StorePolicyKind::kTinyLfu).policy_kind(),
            StorePolicyKind::kTinyLfu);
}

TEST(PolicyStore, TryTouchShedsFirstSightAdmitsSecond) {
  auto store = make_store(0, StorePolicyKind::kDoorkeeper);
  EXPECT_EQ(store.try_touch(1), nullptr);
  EXPECT_EQ(store.flows(), 0u);
  EXPECT_EQ(store.admissions_rejected(), 1u);
  int* state = store.try_touch(1);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(*state, 1);
  EXPECT_EQ(store.flows(), 1u);
  EXPECT_EQ(store.doorkeeper_hits(), 1u);
  // Exactness: every arrival landed in created() or admissions_rejected().
  EXPECT_EQ(store.created(), 1u);
  EXPECT_EQ(store.admissions_rejected(), 1u);
}

TEST(PolicyStore, ForcedTouchIgnoresVerdictButTrainsPolicy) {
  auto store = make_store(0, StorePolicyKind::kDoorkeeper);
  // touch() must return state: the first-sight reject verdict is ignored,
  // but the arrival still trains the doorkeeper...
  store.touch(1) = 7;
  EXPECT_EQ(store.flows(), 1u);
  EXPECT_EQ(store.admissions_rejected(), 0u);
  store.erase(1);
  // ... so the flow's NEXT admission-gated arrival is already known.
  EXPECT_NE(store.try_touch(1), nullptr);
}

TEST(PolicyStore, TryPutShedsNonResidentOverwritesResident) {
  auto store = make_store(0, StorePolicyKind::kDoorkeeper);
  EXPECT_EQ(store.try_put(1, 10), nullptr);  // first sight: shed, dropped
  EXPECT_EQ(store.admissions_rejected(), 1u);
  int* admitted = store.try_put(1, 20);  // second sight: admitted
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(*admitted, 20);
  int* overwritten = store.try_put(1, 30);  // resident: a hit, always lands
  ASSERT_NE(overwritten, nullptr);
  EXPECT_EQ(*overwritten, 30);
  EXPECT_EQ(store.admissions_rejected(), 1u);
}

TEST(PolicyStore, RefreshNeverCreatesAndTrainsHits) {
  auto store = make_store(0, StorePolicyKind::kTinyLfu);
  EXPECT_EQ(store.refresh(1), nullptr);  // not resident: no effect
  store.touch(1);
  for (int i = 0; i < 8; ++i) EXPECT_NE(store.refresh(1), nullptr);
  // The refreshes trained the sketch: flow 1 now outranks a fresh flow at
  // eviction time.
  EXPECT_EQ(store.policy()->stats().doorkeeper_hits, 0u);  // no re-admits
  auto* policy = static_cast<const TinyLfuPolicy*>(store.policy());
  EXPECT_GT(policy->sketch().estimate(1), policy->sketch().estimate(99));
}

TEST(PolicyStore, InterplayAcrossAccessorsUnderEachPolicy) {
  for (const StorePolicyKind kind :
       {StorePolicyKind::kLru, StorePolicyKind::kDoorkeeper,
        StorePolicyKind::kTinyLfu}) {
    SCOPED_TRACE(std::string(to_string(kind)));
    auto store = make_store(0, kind);
    store.touch(1, [] { return 11; });  // forced create
    EXPECT_EQ(store.put(2, 22), 22);  // forced via put
    (void)store.try_touch(3);  // lru: creates; others: first-sight shed
    (void)store.try_put(4, 44);
    const std::uint64_t gated_creates = store.created() - 2;
    EXPECT_EQ(gated_creates + store.admissions_rejected(), 2u);
    // Residents always respond to every accessor, under every policy.
    EXPECT_NE(store.refresh(1), nullptr);
    EXPECT_NE(store.try_touch(2), nullptr);
    EXPECT_EQ(*store.try_put(1, 111), 111);
    EXPECT_EQ(store.flows(), store.created() - store.evictions());
  }
}

TEST(PolicyStore, SoleOversizedFlowStaysResidentUnderPolicy) {
  for (const StorePolicyKind kind :
       {StorePolicyKind::kDoorkeeper, StorePolicyKind::kTinyLfu}) {
    SCOPED_TRACE(std::string(to_string(kind)));
    // Ceiling smaller than one entry: the touched flow is protected, so
    // the store keeps it, flags over_budget, and must not spin retains.
    auto store = make_store(kEntryBytes / 2, kind);
    store.touch(1);
    EXPECT_EQ(store.flows(), 1u);
    EXPECT_TRUE(store.over_budget());
    EXPECT_EQ(store.evictions(), 0u);
    EXPECT_EQ(store.evict_retains(), 0u);
    // Still resident and touchable afterwards.
    EXPECT_NE(store.try_touch(1), nullptr);
  }
}

TEST(PolicyStore, LoweredCeilingEvictsOnNextTouchUnderPolicy) {
  auto store = make_store(kEntryBytes * 8, StorePolicyKind::kDoorkeeper);
  for (std::uint64_t k = 1; k <= 8; ++k) store.touch(k);
  EXPECT_EQ(store.flows(), 8u);
  store.set_capacity_bytes(kEntryBytes * 2);
  EXPECT_EQ(store.flows(), 8u);  // lowering alone does not sweep
  store.touch(8);  // next touch enforces the new ceiling
  EXPECT_EQ(store.flows(), 2u);
  EXPECT_EQ(store.evictions(), 6u);
  EXPECT_EQ(store.flows(), store.created() - store.evictions());
  EXPECT_FALSE(store.over_budget());
}

TEST(PolicyStore, EvictionRetainsAreBoundedPerPass) {
  // A policy that always retains must not livelock eviction: the store
  // caps second chances per pass, then overrules the policy.
  struct AlwaysRetain final : StorePolicy {
    StorePolicyKind kind() const override { return StorePolicyKind::kTinyLfu; }
    AdmitVerdict on_admit(std::uint64_t) override {
      return AdmitVerdict::kAdmit;
    }
    void on_hit(std::uint64_t) override {}
    EvictVerdict on_evict_candidate(std::uint64_t, std::uint64_t) override {
      return EvictVerdict::kRetain;
    }
  };
  RecordingStore<int> store(kEntryBytes * 4, [](std::uint64_t key) {
    return static_cast<int>(key);
  }, [](const int&) { return kEntryBytes; });
  store.set_policy(std::make_unique<AlwaysRetain>());
  for (std::uint64_t k = 1; k <= 4; ++k) store.touch(k);
  store.touch(5);  // over ceiling: one pass, retains capped, then evicts
  EXPECT_LE(store.used_bytes(), store.capacity_bytes());
  EXPECT_LE(store.evict_retains(), 8u);
  EXPECT_GT(store.evictions(), 0u);
  EXPECT_EQ(store.flows(), store.created() - store.evictions());
}

TEST(PolicyStore, TinyLfuProtectsFrequentFlowsThroughMouseChurn) {
  auto store = make_store(kEntryBytes * 10, StorePolicyKind::kTinyLfu);
  // Two elephants train the sketch with many hits.
  for (int round = 0; round < 32; ++round) {
    store.touch(1);
    store.touch(2);
  }
  // Mice churn far past the ceiling (forced touches, so they bypass the
  // admission gate and apply real pressure); the elephants' frequency
  // shields them from the LRU tail.
  for (std::uint64_t mouse = 100; mouse < 400; ++mouse) {
    store.touch(mouse);
  }
  EXPECT_NE(store.find(1), nullptr);
  EXPECT_NE(store.find(2), nullptr);
  EXPECT_GT(store.evict_retains(), 0u);
}

// ------------------------------------------------------------ framework --

constexpr unsigned kHops = 3;

PintFramework::Builder policy_builder(std::size_t ceiling,
                                      StorePolicyKind policy) {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 16; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xBEEF)
      .memory_ceiling_bytes(ceiling)
      .default_store_policy(policy)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    1.0, latency_tuning));
  return builder;
}

Packet encode_one(PintFramework& network, PacketId id, std::uint32_t flow) {
  Packet p;
  p.id = id;
  p.tuple.src_ip = 0x0A000000u + flow;
  p.tuple.dst_ip = 0x0B000000u + flow;
  p.tuple.src_port = 7;
  p.tuple.dst_port = 443;
  for (HopIndex hop = 1; hop <= kHops; ++hop) {
    SwitchView view(static_cast<SwitchId>((flow + hop) % 16 + 1));
    view.set(metric::kHopLatencyNs, 100.0 * hop);
    network.at_switch(p, hop, view);
  }
  return p;
}

TEST(PolicyFramework, DoorkeeperShedsOnePacketFlowsExactly) {
  const auto network =
      policy_builder(0, StorePolicyKind::kLru).build_or_throw();
  const auto sink =
      policy_builder(1u << 20, StorePolicyKind::kDoorkeeper)
          .build_or_throw();
  // 64 one-packet mice: every query's store sheds each at the door.
  std::vector<Packet> packets;
  for (std::uint32_t f = 0; f < 64; ++f) {
    packets.push_back(encode_one(*network, f + 1, f));
  }
  std::vector<SinkReport> reports(packets.size());
  sink->at_sink(std::span<const Packet>(packets), kHops, reports);
  const MemoryReport mem = sink->memory_report();
  EXPECT_EQ(mem.total.flows, 0u);
  EXPECT_GT(mem.total.admissions_rejected, 0u);
  for (const QueryMemoryStats& q : *&mem) {
    EXPECT_EQ(q.policy, StorePolicyKind::kDoorkeeper);
    // Exact per-store accounting: shed arrivals created nothing.
    EXPECT_EQ(q.flows, q.created - q.evictions);
    EXPECT_EQ(q.created, 0u);
    EXPECT_EQ(q.admissions_rejected, 64u);
  }
  // A shed packet contributes no observation for that query.
  for (const SinkReport& r : reports) {
    EXPECT_EQ(r.size(), 0u);
  }
  // The same flows' second packets are admitted and observed.
  std::vector<Packet> second;
  for (std::uint32_t f = 0; f < 64; ++f) {
    second.push_back(encode_one(*network, 100 + f, f));
  }
  std::vector<SinkReport> second_reports(second.size());
  sink->at_sink(std::span<const Packet>(second), kHops, second_reports);
  EXPECT_GT(sink->memory_report().total.flows, 0u);
  EXPECT_GT(second_reports.front().size(), 0u);
  const MemoryReport report = sink->memory_report();
  const QueryMemoryStats* path = report.find("path");
  ASSERT_NE(path, nullptr);
  EXPECT_EQ(path->doorkeeper_hits, 64u);
}

TEST(PolicyFramework, FlowResidencyTracksAdmission) {
  const auto network =
      policy_builder(0, StorePolicyKind::kLru).build_or_throw();
  const auto sink =
      policy_builder(1u << 20, StorePolicyKind::kDoorkeeper)
          .build_or_throw();
  const Packet p = encode_one(*network, 1, 42);
  const std::uint64_t fkey = sink->flow_key_for("path", p.tuple);
  sink->at_sink(std::span<const Packet>(&p, 1), kHops);
  EXPECT_FALSE(sink->flow_resident("path", fkey));  // first sight: shed
  const Packet p2 = encode_one(*network, 2, 42);
  sink->at_sink(std::span<const Packet>(&p2, 1), kHops);
  EXPECT_TRUE(sink->flow_resident("path", fkey));  // second: admitted
  EXPECT_FALSE(sink->flow_resident("path", fkey ^ 1));
  EXPECT_FALSE(sink->flow_resident("no_such_query", fkey));
}

TEST(PolicyFramework, PerQueryOverrideBeatsBuilderDefault) {
  auto latency = make_dynamic_query(
      "latency", std::string(extractor::kHopLatency), 8, 1.0);
  latency.store_policy = StorePolicyKind::kTinyLfu;
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  std::vector<std::uint64_t> universe{1, 2, 3, 4};
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xBEEF)
      .memory_ceiling_bytes(1u << 20)
      .default_store_policy(StorePolicyKind::kDoorkeeper)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(std::move(latency));
  const auto fw = builder.build_or_throw();
  const MemoryReport mem = fw->memory_report();
  const QueryMemoryStats* path = mem.find("path");
  const QueryMemoryStats* lat = mem.find("latency");
  ASSERT_NE(path, nullptr);
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(path->policy, StorePolicyKind::kDoorkeeper);  // builder default
  EXPECT_EQ(lat->policy, StorePolicyKind::kTinyLfu);      // spec override
}

TEST(PolicyFramework, PerPacketQueryRejectsNonLruPolicy) {
  auto cc = make_perpacket_query(
      "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0);
  cc.store_policy = StorePolicyKind::kDoorkeeper;
  PintFramework::Builder builder;
  builder.global_bit_budget(8)
      .switch_universe({1, 2, 3})
      .add_query(std::move(cc));
  const BuildResult result = builder.build();
  ASSERT_FALSE(result.ok());
  ASSERT_TRUE(result.error.has_value());
  EXPECT_EQ(result.error->code, BuildErrorCode::kInconsistentMemoryBudget);
}

TEST(PolicyFramework, MinQueryPriorityIsTheSheddingClass) {
  {
    const auto fw =
        policy_builder(0, StorePolicyKind::kLru).build_or_throw();
    EXPECT_EQ(fw->min_query_priority(), 1u);  // all-default
  }
  {
    PathTracingConfig path_tuning;
    path_tuning.bits = 8;
    path_tuning.instances = 1;
    path_tuning.d = kHops;
    auto path = make_path_query("path", 8, 1.0, path_tuning);
    path.priority = 3;
    auto latency = make_dynamic_query(
        "latency", std::string(extractor::kHopLatency), 8, 1.0);
    latency.priority = 2;
    PintFramework::Builder builder;
    builder.global_bit_budget(16)
        .seed(0xBEEF)
        .switch_universe({1, 2, 3, 4})
        .add_query(std::move(path))
        .add_query(std::move(latency));
    const auto fw = builder.build_or_throw();
    EXPECT_EQ(fw->min_query_priority(), 2u);
    EXPECT_EQ(fw->spec("path")->priority, 3u);
  }
}

}  // namespace
}  // namespace pint
