// Report codec: the sink -> Inference-Module wire format must round-trip
// every observer event byte-exactly (doubles travel as IEEE-754 bits) and
// reject malformed buffers instead of throwing or misparsing.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pint/report_codec.h"

namespace pint {
namespace {

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Exact record equality, NaN-safe.
void expect_equal(const StreamRecord& got, const StreamRecord& want) {
  EXPECT_EQ(got.ctx.packet_id, want.ctx.packet_id);
  EXPECT_EQ(got.ctx.flow, want.ctx.flow);
  EXPECT_EQ(got.ctx.path_length, want.ctx.path_length);
  EXPECT_EQ(got.query, want.query);
  ASSERT_EQ(got.path_event, want.path_event);
  if (want.path_event) {
    EXPECT_EQ(got.path, want.path);
    return;
  }
  ASSERT_EQ(got.observation.index(), want.observation.index());
  if (const auto* agg = std::get_if<AggregateObservation>(&want.observation)) {
    EXPECT_TRUE(same_bits(
        std::get<AggregateObservation>(got.observation).value, agg->value));
  } else if (const auto* hs =
                 std::get_if<HopSampleObservation>(&want.observation)) {
    const auto& g = std::get<HopSampleObservation>(got.observation);
    EXPECT_EQ(g.hop, hs->hop);
    EXPECT_TRUE(same_bits(g.value, hs->value));
  } else {
    const auto& pd = std::get<PathDigestObservation>(want.observation);
    EXPECT_EQ(std::get<PathDigestObservation>(got.observation), pd);
  }
}

double awkward_double(Rng& rng) {
  switch (rng.uniform_int(8)) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return std::numeric_limits<double>::infinity();
    case 3:
      return -std::numeric_limits<double>::infinity();
    case 4:
      return std::numeric_limits<double>::quiet_NaN();
    case 5:
      return std::numeric_limits<double>::denorm_min();
    case 6:
      return -1e308;
    default:
      return rng.uniform(-1e9, 1e9);
  }
}

std::vector<StreamRecord> random_records(Rng& rng, std::size_t count) {
  static const std::string kNames[] = {"path", "latency", "hpcc",
                                       "a-much-longer-query-name", ""};
  std::vector<StreamRecord> records;
  records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    StreamRecord rec;
    rec.ctx.packet_id = rng.next();
    rec.ctx.flow = rng.next();
    rec.ctx.path_length = static_cast<unsigned>(rng.uniform_int(64));
    rec.query = kNames[rng.uniform_int(std::size(kNames))];
    switch (rng.uniform_int(4)) {
      case 0:
        rec.observation = AggregateObservation{awkward_double(rng)};
        break;
      case 1:
        rec.observation = HopSampleObservation{
            static_cast<HopIndex>(rng.uniform_int(1u << 20)),
            awkward_double(rng)};
        break;
      case 2:
        rec.observation = PathDigestObservation{
            static_cast<unsigned>(rng.uniform_int(32)),
            static_cast<unsigned>(rng.uniform_int(32)), rng.bernoulli(0.5)};
        break;
      default: {
        rec.path_event = true;
        const std::size_t hops = rng.uniform_int(12);
        for (std::size_t h = 0; h < hops; ++h) {
          rec.path.push_back(static_cast<SwitchId>(rng.next()));
        }
        break;
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<std::uint8_t> encode_all(
    const std::vector<StreamRecord>& records) {
  ReportEncoder enc;
  for (const StreamRecord& rec : records) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.observation);
    }
  }
  return enc.finish();
}

TEST(ReportCodec, RandomizedRoundTripIsExact) {
  Rng rng(0xC0DEC);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<StreamRecord> want =
        random_records(rng, 1 + rng.uniform_int(200));
    const std::vector<std::uint8_t> bytes = encode_all(want);

    ReportDecoder dec;
    std::vector<StreamRecord> got;
    ASSERT_TRUE(dec.decode(bytes, got)) << "trial " << trial;
    ASSERT_EQ(got.size(), want.size()) << "trial " << trial;
    for (std::size_t i = 0; i < want.size(); ++i) {
      expect_equal(got[i], want[i]);
    }
  }
}

TEST(ReportCodec, EncoderResetsBetweenEpochsAndDecoderInternsNames) {
  SinkContext ctx;
  ctx.packet_id = 7;
  ReportEncoder enc;
  enc.add(ctx, "latency", AggregateObservation{1.0});
  const auto first = enc.finish();
  EXPECT_EQ(enc.records(), 0u);
  enc.add(ctx, "latency", AggregateObservation{2.0});
  enc.add(ctx, "path", AggregateObservation{3.0});
  const auto second = enc.finish();

  ReportDecoder dec;
  std::vector<StreamRecord> records;
  ASSERT_TRUE(dec.decode(first, records));
  ASSERT_TRUE(dec.decode(second, records));
  ASSERT_EQ(records.size(), 3u);
  // Interning: the same name from two buffers is one stable string, so
  // views from different epochs compare equal and point at one storage.
  EXPECT_EQ(records[0].query, records[1].query);
  EXPECT_EQ(records[0].query.data(), records[1].query.data());
}

TEST(ReportCodec, SinkReportEntriesEncodeUnderOnePacketContext) {
  SinkReport report;
  report.add("path", PathDigestObservation{3, 5, false});
  report.add("latency", HopSampleObservation{2, 123.5});
  report.add("hpcc", AggregateObservation{0.75});
  ReportEncoder enc;
  enc.add(/*packet=*/42, /*k=*/5, report);

  ReportDecoder dec;
  std::vector<StreamRecord> records;
  ASSERT_TRUE(dec.decode(enc.finish(), records));
  ASSERT_EQ(records.size(), 3u);
  for (const StreamRecord& rec : records) {
    EXPECT_EQ(rec.ctx.packet_id, 42u);
    EXPECT_EQ(rec.ctx.flow, 0u);  // reports carry no per-query flow keys
    EXPECT_EQ(rec.ctx.path_length, 5u);
  }
  EXPECT_EQ(records[0].query, "path");
  EXPECT_EQ(records[1].query, "latency");
  EXPECT_EQ(records[2].query, "hpcc");
}

TEST(ReportCodec, ChunkedFinishSplitsIntoSelfContainedBuffers) {
  Rng rng(0xC4C4);
  const std::vector<StreamRecord> want = random_records(rng, 157);

  // Whole-buffer reference from an identical record stream.
  ReportEncoder reference;
  for (const StreamRecord& rec : want) {
    if (rec.path_event) {
      reference.add_path(rec.ctx, rec.query, rec.path);
    } else {
      reference.add(rec.ctx, rec.query, rec.observation);
    }
  }
  const std::vector<std::uint8_t> whole = reference.finish();

  ReportEncoder enc;
  for (const StreamRecord& rec : want) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.observation);
    }
  }
  const auto chunks = enc.finish_chunked(25);
  ASSERT_EQ(chunks.size(), (want.size() + 24) / 25);
  EXPECT_EQ(enc.records(), 0u);  // reset, like finish()

  // Every chunk decodes on its own — even with a fresh decoder and even
  // out of order — and the concatenated record stream equals the input.
  {
    ReportDecoder isolated;
    std::vector<StreamRecord> alone;
    ASSERT_TRUE(isolated.decode(chunks.back(), alone));
  }
  ReportDecoder dec;
  std::vector<StreamRecord> got;
  for (const auto& chunk : chunks) {
    ASSERT_TRUE(dec.decode(chunk, got));
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    expect_equal(got[i], want[i]);
  }

  // A single chunk covering everything is byte-identical to finish():
  // the chunked path is the same wire format, not a dialect.
  ReportEncoder enc2;
  for (const StreamRecord& rec : want) {
    if (rec.path_event) {
      enc2.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc2.add(rec.ctx, rec.query, rec.observation);
    }
  }
  const auto one = enc2.finish_chunked(want.size());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], whole);
}

TEST(ReportCodec, FuzzedBitFlipsNeverCrashOrEmitOnFailure) {
  Rng rng(0xF1157);
  for (int trial = 0; trial < 300; ++trial) {
    const std::vector<StreamRecord> want =
        random_records(rng, 1 + rng.uniform_int(60));
    std::vector<std::uint8_t> bytes = encode_all(want);
    // Flip 1-4 random bits anywhere in the buffer.
    const int flips = 1 + static_cast<int>(rng.uniform_int(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at = rng.uniform_int(bytes.size());
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    }
    ReportDecoder dec;
    std::vector<StreamRecord> out;
    // The decoder has no checksum (framing adds that); a flip may decode
    // to different-but-well-formed records or be rejected — either is
    // fine. What it must never do: crash, or emit records AND fail.
    const bool ok = dec.decode(bytes, out);
    if (!ok) {
      EXPECT_TRUE(out.empty()) << "trial " << trial;
    }
  }
}

TEST(ReportCodec, FuzzedSplicesNeverCrash) {
  Rng rng(0x5011CE);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> a =
        encode_all(random_records(rng, 1 + rng.uniform_int(40)));
    const std::vector<std::uint8_t> b =
        encode_all(random_records(rng, 1 + rng.uniform_int(40)));
    // Random cross-splices, truncations, and duplications.
    std::vector<std::uint8_t> spliced(
        a.begin(), a.begin() + rng.uniform_int(a.size() + 1));
    spliced.insert(spliced.end(),
                   b.begin() + rng.uniform_int(b.size()), b.end());
    ReportDecoder dec;
    std::vector<StreamRecord> out;
    const bool ok = dec.decode(spliced, out);
    if (!ok) {
      EXPECT_TRUE(out.empty()) << "trial " << trial;
    }
    // Reuse the same decoder afterwards: a rejected buffer must not
    // poison it for good input.
    std::vector<StreamRecord> fresh;
    EXPECT_TRUE(dec.decode(b, fresh)) << "trial " << trial;
  }
}

TEST(ReportCodec, FuzzedGarbageNeverCrashes) {
  Rng rng(0x6A26A6E);
  ReportDecoder dec;
  std::vector<StreamRecord> out;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(rng.uniform_int(2048));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next());
    // Mostly rejected at the magic check; sometimes prefix a real magic
    // so the inner parse paths get exercised too.
    if (rng.bernoulli(0.5) && garbage.size() >= 4) {
      garbage[0] = 'P';
      garbage[1] = 'R';
      garbage[2] = 'S';
      garbage[3] = '1';
    }
    const bool ok = dec.decode(garbage, out);
    if (!ok) {
      EXPECT_TRUE(out.empty()) << "trial " << trial;
    }
    out.clear();
  }
}

TEST(ReportCodec, RejectsMalformedInput) {
  Rng rng(0xBAD);
  const std::vector<StreamRecord> want = random_records(rng, 40);
  const std::vector<std::uint8_t> bytes = encode_all(want);

  ReportDecoder dec;
  std::vector<StreamRecord> out;

  // Empty and bad-magic buffers.
  EXPECT_FALSE(dec.decode({}, out));
  std::vector<std::uint8_t> bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(dec.decode(bad_magic, out));

  // Every strict prefix is truncated somewhere; none may parse.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        dec.decode(std::span<const std::uint8_t>(bytes.data(), len), out))
        << "prefix " << len;
  }

  // Trailing garbage is rejected too (buffers are framed externally).
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(dec.decode(padded, out));

  EXPECT_TRUE(out.empty());  // failures must not emit partial records
  ASSERT_TRUE(dec.decode(bytes, out));  // the pristine buffer still parses
  EXPECT_EQ(out.size(), want.size());
}

// --- zero-copy dispatch -----------------------------------------------------

// Captures dispatch callbacks as owning StreamRecords so they can be
// compared against decode() output with expect_equal.
struct CapturingObserver : SinkObserver {
  std::vector<StreamRecord> records;

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    StreamRecord rec;
    rec.ctx = ctx;
    rec.query = query;
    rec.observation = obs;
    records.push_back(std::move(rec));
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    StreamRecord rec;
    rec.ctx = ctx;
    rec.query = query;
    rec.path_event = true;
    rec.path = path;
    records.push_back(std::move(rec));
  }
};

TEST(ReportCodec, StreamingDispatchMatchesDecodePlusReplay) {
  Rng rng(0x5EED);
  const std::vector<StreamRecord> want = random_records(rng, 300);
  const std::vector<std::uint8_t> bytes = encode_all(want);

  // Reference: materializing decode, then the free-function replay.
  ReportDecoder ref_dec;
  std::vector<StreamRecord> decoded;
  ASSERT_TRUE(ref_dec.decode(bytes, decoded));
  CapturingObserver replayed;
  SinkObserver* replay_list[] = {&replayed};
  dispatch(decoded, replay_list);

  // Zero-copy streaming dispatch straight off the buffer.
  ReportDecoder dec;
  CapturingObserver streamed;
  SinkObserver* stream_list[] = {&streamed};
  std::uint64_t count = 0;
  ASSERT_TRUE(dec.dispatch(bytes, stream_list, &count));
  EXPECT_EQ(count, want.size());
  ASSERT_EQ(streamed.records.size(), replayed.records.size());
  for (std::size_t i = 0; i < streamed.records.size(); ++i) {
    expect_equal(streamed.records[i], replayed.records[i]);
  }
}

TEST(ReportCodec, StreamingDispatchRejectsWithoutCallbacks) {
  Rng rng(0xD15);
  const std::vector<std::uint8_t> bytes =
      encode_all(random_records(rng, 40));
  ReportDecoder dec;
  CapturingObserver obs;
  SinkObserver* observers[] = {&obs};
  // Truncations and corruptions must fire *no* callbacks: dispatch
  // validates the whole buffer before the first one (a half-replayed
  // frame downstream would be indistinguishable from real records).
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::uint64_t count = 0;
    EXPECT_FALSE(dec.dispatch(
        std::span<const std::uint8_t>(bytes.data(), len), observers, &count))
        << "prefix " << len;
    EXPECT_EQ(count, 0u);
  }
  EXPECT_TRUE(obs.records.empty());
  // The decoder stays usable after rejection.
  EXPECT_TRUE(dec.dispatch(bytes, observers));
  EXPECT_EQ(obs.records.size(), 40u);
}

TEST(ReportCodec, StreamingDispatchReusesScratchAcrossEpochs) {
  Rng rng(0xEC0);
  ReportDecoder dec;
  CapturingObserver obs;
  SinkObserver* observers[] = {&obs};
  std::vector<StreamRecord> all_want;
  // Many epochs through one decoder: interned name views handed to early
  // callbacks must stay valid (and correct) after later buffers reuse the
  // scratch.
  for (int epoch = 0; epoch < 20; ++epoch) {
    const std::vector<StreamRecord> want = random_records(rng, 50);
    const std::vector<std::uint8_t> bytes = encode_all(want);
    ASSERT_TRUE(dec.dispatch(bytes, observers));
    for (const StreamRecord& rec : want) all_want.push_back(rec);
  }
  ASSERT_EQ(obs.records.size(), all_want.size());
  for (std::size_t i = 0; i < all_want.size(); ++i) {
    expect_equal(obs.records[i], all_want[i]);
  }
}

}  // namespace
}  // namespace pint
