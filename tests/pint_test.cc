#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "pint/dynamic_aggregation.h"
#include "pint/framework.h"
#include "pint/loop_detection.h"
#include "pint/perpacket_aggregation.h"
#include "pint/static_aggregation.h"

namespace pint {
namespace {

// --- static aggregation (path tracing) --------------------------------------

TEST(PathTracing, EncodeDecodeRoundTrip) {
  PathTracingConfig cfg;
  cfg.bits = 8;
  cfg.instances = 2;
  cfg.d = 10;
  PathTracingQuery query(cfg, 2024);

  const unsigned k = 10;
  std::vector<std::uint64_t> universe;
  for (SwitchId s = 100; s < 400; ++s) universe.push_back(s);
  std::vector<SwitchId> path(k);
  for (unsigned i = 0; i < k; ++i) path[i] = 100 + i * 17;

  auto decoder = query.make_decoder(k, universe);
  PacketId p = 1;
  while (!decoder.complete() && p < 100000) {
    std::vector<Digest> lanes(cfg.instances, 0);
    for (HopIndex i = 1; i <= k; ++i) {
      query.encode(p, i, path[i - 1], lanes);
    }
    decoder.add_packet(p, lanes);
    ++p;
  }
  ASSERT_TRUE(decoder.complete());
  const auto decoded = decoder.path();
  for (unsigned i = 0; i < k; ++i) EXPECT_EQ(decoded[i], path[i]);
}

TEST(PathTracing, SingleBitBudgetStillDecodes) {
  // Fig. 10 evaluates PINT with a 1-bit budget.
  PathTracingConfig cfg;
  cfg.bits = 1;
  cfg.instances = 1;
  cfg.d = 5;
  PathTracingQuery query(cfg, 77);
  const unsigned k = 5;
  std::vector<std::uint64_t> universe;
  for (SwitchId s = 0; s < 64; ++s) universe.push_back(s);
  std::vector<SwitchId> path{3, 17, 42, 8, 60};

  auto decoder = query.make_decoder(k, universe);
  PacketId p = 1;
  while (!decoder.complete() && p < 2000000) {
    std::vector<Digest> lanes(1, 0);
    for (HopIndex i = 1; i <= k; ++i) query.encode(p, i, path[i - 1], lanes);
    decoder.add_packet(p, lanes);
    ++p;
  }
  ASSERT_TRUE(decoder.complete());
  for (unsigned i = 0; i < k; ++i) EXPECT_EQ(decoder.path()[i], path[i]);
}

TEST(PathTracing, RejectsBadConfig) {
  EXPECT_THROW(PathTracingQuery({0, 1, 5, SchemeVariant::kHybrid}, 1),
               std::invalid_argument);
  EXPECT_THROW(PathTracingQuery({8, 0, 5, SchemeVariant::kHybrid}, 1),
               std::invalid_argument);
}

// --- dynamic aggregation (latency quantiles) ---------------------------------

TEST(DynamicAggregation, SamplesAttributeToCorrectHop) {
  DynamicAggregationConfig cfg;
  cfg.bits = 16;
  cfg.max_value = 1e6;
  DynamicAggregationQuery query(cfg, 31);
  const unsigned k = 8;

  // Hop i always reports value 100 * i; check attribution by value.
  for (PacketId p = 1; p <= 2000; ++p) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      d = query.encode_step(p, i, d, 100.0 * i);
    }
    const auto sample = query.decode(p, d, k);
    ASSERT_GE(sample.hop, 1u);
    ASSERT_LE(sample.hop, k);
    EXPECT_NEAR(sample.value, 100.0 * sample.hop,
                100.0 * sample.hop * 0.01);
  }
}

TEST(DynamicAggregation, UniformHopCoverage) {
  DynamicAggregationConfig cfg;
  cfg.bits = 8;
  cfg.max_value = 1e6;
  DynamicAggregationQuery query(cfg, 37);
  const unsigned k = 10;
  std::vector<int> counts(k, 0);
  const int n = 100000;
  for (PacketId p = 1; p <= static_cast<PacketId>(n); ++p) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) d = query.encode_step(p, i, d, 5.0);
    ++counts[query.decode(p, d, k).hop - 1];
  }
  for (int c : counts) EXPECT_NEAR(c, n / k, n / k * 0.1);
}

TEST(DynamicAggregation, QuantileErrorWithinTheorem1) {
  // Theorem 1 flavour: with O(k eps^-2) packets, each hop's phi-quantile is
  // (phi +- eps)-accurate. Latencies at hop i ~ exponential with mean i.
  const unsigned k = 5;
  const double eps = 0.1;
  const int packets = static_cast<int>(k / (eps * eps)) * 8;

  DynamicAggregationConfig cfg;
  cfg.bits = 12;
  cfg.max_value = 1e6;
  DynamicAggregationQuery query(cfg, 41);
  FlowLatencyRecorder recorder(k, /*sketch_bytes=*/0);

  Rng rng(43);
  std::vector<std::vector<double>> truth(k);
  for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
    Digest d = 0;
    std::vector<double> values(k);
    for (HopIndex i = 1; i <= k; ++i) {
      values[i - 1] = 1.0 + rng.exponential(1.0 / static_cast<double>(i));
      truth[i - 1].push_back(values[i - 1]);
      d = query.encode_step(p, i, d, values[i - 1]);
    }
    recorder.add(query.decode(p, d, k));
  }
  for (HopIndex hop = 1; hop <= k; ++hop) {
    const auto est = recorder.quantile(hop, 0.5);
    ASSERT_TRUE(est.has_value());
    // Rank-accuracy: the estimated median's true rank must be 0.5 +- ~eps.
    auto& t = truth[hop - 1];
    std::sort(t.begin(), t.end());
    const double rank =
        static_cast<double>(std::lower_bound(t.begin(), t.end(), *est) -
                            t.begin()) /
        static_cast<double>(t.size());
    EXPECT_NEAR(rank, 0.5, 2.5 * eps) << "hop " << hop;
  }
}

TEST(DynamicAggregation, SketchedRecorderClose) {
  // PINT_S: sketching the sub-streams loses little accuracy (Fig. 9).
  const unsigned k = 4;
  DynamicAggregationConfig cfg;
  cfg.bits = 10;
  cfg.max_value = 1e6;
  DynamicAggregationQuery query(cfg, 47);
  FlowLatencyRecorder raw(k, 0), sketched(k, /*sketch_bytes=*/4096);

  Rng rng(49);
  for (PacketId p = 1; p <= 20000; ++p) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      d = query.encode_step(p, i, d, 1.0 + rng.exponential(0.1));
    }
    const auto s = query.decode(p, d, k);
    raw.add(s);
    sketched.add(s);
  }
  for (HopIndex hop = 1; hop <= k; ++hop) {
    const double a = *raw.quantile(hop, 0.9);
    const double b = *sketched.quantile(hop, 0.9);
    EXPECT_NEAR(b / a, 1.0, 0.15) << "hop " << hop;
  }
}

TEST(DynamicAggregation, FrequentValues) {
  const unsigned k = 3;
  DynamicAggregationConfig cfg;
  cfg.bits = 16;
  cfg.max_value = 1e6;
  DynamicAggregationQuery query(cfg, 53);
  FlowLatencyRecorder recorder(k);
  Rng rng(55);
  for (PacketId p = 1; p <= 30000; ++p) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      // Hop 2 emits 500 in 60% of packets; others noise.
      const double v = (i == 2 && rng.uniform() < 0.6)
                           ? 500.0
                           : 1.0 + rng.uniform() * 100.0;
      d = query.encode_step(p, i, d, v);
    }
    recorder.add(query.decode(p, d, k));
  }
  const auto frequent = recorder.frequent_values(2, 0.4);
  bool found = false;
  for (std::uint64_t v : frequent) {
    if (std::llabs(static_cast<long long>(v) - 500) < 15) found = true;
  }
  EXPECT_TRUE(found);
}

// --- per-packet aggregation --------------------------------------------------

TEST(PerPacket, MaxTracksBottleneck) {
  PerPacketConfig cfg;
  cfg.bits = 8;
  cfg.eps = 0.025;
  cfg.max_value = 1e6;
  PerPacketQuery query(cfg, 59);
  Rng rng(61);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> utils(6);
    for (auto& u : utils) u = 1.0 + rng.uniform() * 1000.0;
    Digest d = 0;
    const PacketId p = trial + 1;
    for (double u : utils) d = query.encode_step(p, d, u);
    const double truth = *std::max_element(utils.begin(), utils.end());
    const double bound = std::pow(1.0 + cfg.eps, 2.0) * 1.05;
    EXPECT_LE(query.decode(d) / truth, bound);
    EXPECT_GE(query.decode(d) / truth, 1.0 / bound);
  }
}

TEST(PerPacket, RandomizedRoundingUnbiasedAcrossPackets) {
  PerPacketConfig cfg;
  cfg.bits = 8;
  cfg.eps = 0.025;
  cfg.max_value = 1e6;
  PerPacketQuery query(cfg, 63);
  const double value = 777.0;
  double sum = 0.0;
  const int n = 100000;
  for (PacketId p = 1; p <= static_cast<PacketId>(n); ++p) {
    sum += query.decode(query.encode_step(p, 0, value));
  }
  // Zero-mean compression error: the mean decoded value is ~the truth.
  EXPECT_NEAR(sum / n / value, 1.0, 0.005);
}

TEST(PerPacket, MinAndSumOps) {
  PerPacketConfig cfg;
  cfg.bits = 8;
  cfg.eps = 0.025;
  cfg.max_value = 1e6;
  cfg.op = PerPacketOp::kMin;
  PerPacketQuery minq(cfg, 65);
  Digest d = 0;
  d = minq.encode_step(1, d, 100.0);
  d = minq.encode_step(1, d, 10.0);
  d = minq.encode_step(1, d, 50.0);
  EXPECT_NEAR(minq.decode(d), 10.0, 10.0 * 0.1);
}

// --- loop detection ----------------------------------------------------------

TEST(LoopDetection, DetectsRealLoop) {
  LoopDetectionConfig cfg;
  cfg.bits = 15;
  cfg.threshold = 1;
  LoopDetector det(cfg, 67);
  // A packet circling switches 1..4 repeatedly must eventually trip.
  int detected = 0;
  for (PacketId p = 1; p <= 200; ++p) {
    LoopDigest state;
    HopIndex i = 1;
    bool tripped = false;
    for (int cycle = 0; cycle < 20 && !tripped; ++cycle) {
      for (SwitchId s = 1; s <= 4 && !tripped; ++s) {
        tripped = det.process(p, i++, s, state);
      }
    }
    detected += tripped;
  }
  // The first writer re-seen twice trips; nearly every packet detects.
  EXPECT_GT(detected, 190);
}

TEST(LoopDetection, FalsePositiveRateTiny) {
  LoopDetectionConfig cfg;
  cfg.bits = 15;
  cfg.threshold = 1;
  LoopDetector det(cfg, 71);
  int false_alarms = 0;
  const int packets = 20000;
  for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
    LoopDigest state;
    bool tripped = false;
    for (HopIndex i = 1; i <= 32 && !tripped; ++i) {
      tripped = det.process(p, i, 1000 + i, state);  // all distinct switches
    }
    false_alarms += tripped;
  }
  // Paper: b=15, T=1 -> ~5e-7 per packet; 20K packets should see none.
  EXPECT_EQ(false_alarms, 0);
}

TEST(LoopDetection, TotalBits) {
  EXPECT_EQ(LoopDetector({15, 1}, 1).total_bits(), 16u);
  EXPECT_EQ(LoopDetector({14, 3}, 1).total_bits(), 16u);
}

// --- framework ---------------------------------------------------------------

PintFramework::Builder paper_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = 5;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.max_value = 1e6;
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query("hpcc",
                                      std::string(extractor::kLinkUtilization),
                                      8, 1.0 / 16.0, cc_tuning));
  return builder;
}

TEST(Framework, CombinedThreeQueriesWithin16Bits) {
  const unsigned k = 5;
  std::vector<std::uint64_t> universe;
  for (SwitchId s = 1; s <= 80; ++s) universe.push_back(s);
  std::vector<SwitchId> path{4, 18, 33, 47, 71};

  auto fw = paper_builder().switch_universe(universe).build_or_throw();

  FiveTuple tuple;
  tuple.src_ip = 0x0A000001;
  tuple.dst_ip = 0x0A000002;
  tuple.src_port = 1234;
  tuple.dst_port = 80;
  const std::uint64_t fkey = flow_key(tuple, FlowDefinition::kFiveTuple);

  Rng rng(73);
  double last_util = 0.0;
  int cc_reports = 0;
  const int packets = 60000;
  for (int n = 0; n < packets; ++n) {
    Packet pkt;
    pkt.id = 1 + n;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view(path[i - 1]);
      view.set(metric::kHopLatencyNs, 1.0 + rng.exponential(0.001));
      view.set(metric::kLinkUtilization, 100.0 + 10.0 * i);
      fw->at_switch(pkt, i, view);
    }
    const SinkReport rep = fw->at_sink(pkt, k);
    if (const auto util = rep.aggregate_value("hpcc")) {
      ++cc_reports;
      last_util = *util;
    }
  }

  // Query budget respected: CC ran on ~1/16 of packets.
  EXPECT_NEAR(static_cast<double>(cc_reports) / packets, 1.0 / 16.0, 0.01);
  // Bottleneck = hop 5's utilization 150, within compression error.
  EXPECT_NEAR(last_util, 150.0, 150.0 * 0.06);
  // Path fully decoded.
  const auto decoded = fw->flow_path(fkey);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, path);
  EXPECT_DOUBLE_EQ(fw->path_progress(fkey), 1.0);
  // Latency quantiles exist and scale with the per-hop mean.
  const auto q1 = fw->latency_quantile(fkey, 1, 0.5);
  ASSERT_TRUE(q1.has_value());
  EXPECT_GT(*q1, 0.0);
  // Name-based inference matches the convenience overloads.
  EXPECT_EQ(fw->flow_path("path", fkey), decoded);
  EXPECT_EQ(fw->latency_quantile("latency", fkey, 1, 0.5), q1);
}

TEST(Framework, UnknownFlowReportsNothing) {
  auto fw = paper_builder().switch_universe({1, 2, 3}).build_or_throw();
  EXPECT_FALSE(fw->flow_path(12345).has_value());
  EXPECT_EQ(fw->path_progress(12345), 0.0);
  EXPECT_FALSE(fw->latency_quantile(12345, 1, 0.5).has_value());
  EXPECT_FALSE(fw->flow_path("no_such_query", 12345).has_value());
}

}  // namespace
}  // namespace pint

namespace pint {
namespace {

TEST(Framework, MultiInstancePathQueryUsesTwoLanes) {
  // 2 x (b=8) inside a 16-bit budget: the framework must slice two digest
  // lanes for the path query and decode faster than a single instance.
  PathTracingConfig tuning;
  tuning.bits = 8;
  tuning.instances = 2;
  tuning.d = 5;
  std::vector<std::uint64_t> universe;
  for (SwitchId s = 1; s <= 64; ++s) universe.push_back(s);
  auto fw = PintFramework::Builder()
                .global_bit_budget(16)
                .switch_universe(universe)
                .add_query(make_path_query("path", 16, 1.0, tuning))
                .build_or_throw();

  const std::vector<SwitchId> path{7, 21, 42, 56, 11};
  FiveTuple tuple{11, 22, 33, 44, 6};
  const std::uint64_t fkey = flow_key(tuple, FlowDefinition::kFiveTuple);
  int packets_used = 0;
  for (PacketId id = 1; id <= 5000; ++id) {
    Packet pkt;
    pkt.id = id;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= 5; ++i) {
      fw->at_switch(pkt, i, SwitchView(path[i - 1]));
    }
    ASSERT_EQ(pkt.digests.size(), 2u);  // two 8-bit lanes on the wire
    fw->at_sink(pkt, 5);
    ++packets_used;
    if (fw->flow_path(fkey).has_value()) break;
  }
  const auto decoded = fw->flow_path(fkey);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, path);
  EXPECT_LT(packets_used, 200);  // 5 hops decode in tens of packets
}

TEST(Framework, RejectsBudgetBelowInstanceCount) {
  PathTracingConfig tuning;
  tuning.instances = 4;
  const BuildResult result =
      PintFramework::Builder()
          .global_bit_budget(16)
          .switch_universe({1, 2, 3})
          .add_query(make_path_query("path", 2, 1.0, tuning))  // 0 bits each
          .build();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error->code, BuildErrorCode::kBudgetBelowInstanceCount);
}

}  // namespace
}  // namespace pint
