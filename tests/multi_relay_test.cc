// Multi-relay async observer transport (Builder::async_observers with
// relay_threads > 1): shards partitioned round-robin across several relay
// threads, each relay the exclusive consumer of its shards' chunk rings.
// Load-bearing checks, at every relay count:
//  (1) kBlock stays loss-free and the observer stream canonicalizes to
//      exactly the synchronous stream — relays reorder *between* shards
//      only, never within one;
//  (2) the SinkReport result buffers are byte-identical to the
//      single-threaded sink — relay topology moves callbacks, not results;
//  (3) kDropNewest accounts for every shed event exactly (delivered +
//      dropped == the lossless event count);
//  (4) relay_deliveries() decomposes: one total per relay thread, summing
//      to at most the delivered events (the shard worker's inline fast
//      path delivers the remainder itself);
//  (5) per-thread SlabArena churn survives concurrent producers, workers,
//      and relays (this suite runs under TSAN and ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
constexpr std::size_t kFlows = 96;
constexpr std::size_t kPacketsPerFlow = 20;
constexpr unsigned kShards = 4;

PintFramework::Builder three_query_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xC0FFEE)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow % 7);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow % 11);
  t.src_port = static_cast<std::uint16_t>(1000 + flow);
  t.dst_port = 80;
  return t;
}

std::vector<Packet> make_encoded_traffic() {
  const auto network = three_query_builder().build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kFlows * kPacketsPerFlow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < kPacketsPerFlow; ++j) {
    for (std::size_t f = 0; f < kFlows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      packets.push_back(std::move(p));
    }
  }
  for (Packet& p : packets) {
    const std::size_t f = (p.id - 1) % kFlows;
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>(f % 8 + i));
      view.set(metric::kHopLatencyNs, 100.0 * i + static_cast<double>(f));
      view.set(metric::kLinkUtilization, 0.1 * i + 0.01 * (f % 10));
      network->at_switch(p, i, view);
    }
  }
  return packets;
}

// Captures the observer stream. Callbacks arrive under the sink's observer
// mutex whatever the relay topology, so no internal locking is needed —
// that serialization is itself part of what this suite verifies under TSAN.
struct RecordingObserver : SinkObserver {
  struct Rec {
    SinkContext ctx;
    std::string query;
    bool path_event = false;
    Observation obs{};
    std::vector<SwitchId> path;
  };
  std::vector<Rec> records;
  std::chrono::microseconds delay{0};  // simulated per-event observer cost

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    records.push_back({ctx, std::string(query), false, obs, {}});
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    records.push_back({ctx, std::string(query), true, {}, path});
  }
};

std::vector<std::uint8_t> canonical_bytes(
    std::vector<RecordingObserver::Rec> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const auto& a, const auto& b) {
                     return a.ctx.packet_id < b.ctx.packet_id;
                   });
  ReportEncoder enc;
  for (const auto& rec : records) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.obs);
    }
  }
  return enc.finish();
}

// The synchronous (single relay topology is irrelevant) reference stream.
RecordingObserver sync_reference(const std::vector<Packet>& packets,
                                 std::span<SinkReport> reports) {
  RecordingObserver obs;
  ShardedSink sink(three_query_builder(), kShards);
  sink.add_observer(&obs);
  sink.submit(std::span<const Packet>(packets), kHops, reports);
  sink.flush();
  return obs;
}

TEST(MultiRelay, BlockModeLossFreeAtEveryRelayCount) {
  const std::vector<Packet> packets = make_encoded_traffic();
  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs = sync_reference(packets, sync_reports);
  ASSERT_FALSE(sync_obs.records.empty());
  const std::vector<std::uint8_t> reference =
      canonical_bytes(sync_obs.records);

  for (const unsigned relays : {2u, 3u, 4u}) {
    auto builder = three_query_builder();
    // Shallow ring so the workers outrun the relays and exercise chunk
    // sealing, blocking, and cross-relay wakeups — not just the inline
    // fast path.
    builder.async_observers(64, OverflowPolicy::kBlock, relays);
    RecordingObserver obs;
    obs.delay = std::chrono::microseconds{5};
    std::vector<SinkReport> reports(packets.size());
    ShardedSink sink(builder, kShards);
    sink.add_observer(&obs);
    sink.submit(std::span<const Packet>(packets), kHops, reports);
    sink.flush();

    const TransportCounters t = sink.observer_counters();
    EXPECT_EQ(t.observer_drops, 0u) << relays << " relays";
    EXPECT_EQ(obs.records.size(), sync_obs.records.size())
        << relays << " relays";
    EXPECT_EQ(canonical_bytes(obs.records), reference)
        << relays << " relays";

    // relay_deliveries() decomposition: one entry per relay thread; the
    // relays deliver at most every event (the worker's inline path covers
    // the rest), and with a slow observer at least one ring chunk must
    // have gone through a relay.
    const std::vector<std::uint64_t> deliveries = sink.relay_deliveries();
    EXPECT_EQ(deliveries.size(), relays);
    const std::uint64_t relayed = std::accumulate(
        deliveries.begin(), deliveries.end(), std::uint64_t{0});
    EXPECT_LE(relayed, obs.records.size());
    EXPECT_GT(relayed, 0u) << "relays never engaged; weak test";
  }
}

TEST(MultiRelay, BlockModePreservesPerFlowOrder) {
  const std::vector<Packet> packets = make_encoded_traffic();
  for (const unsigned relays : {2u, 4u}) {
    auto builder = three_query_builder();
    builder.async_observers(32, OverflowPolicy::kBlock, relays);
    RecordingObserver obs;
    obs.delay = std::chrono::microseconds{2};
    ShardedSink sink(builder, kShards);
    sink.add_observer(&obs);
    sink.submit(std::span<const Packet>(packets), kHops,
                std::span<SinkReport>{});
    sink.flush();
    ASSERT_FALSE(obs.records.empty());
    // A flow lives on one shard, a shard on one relay: per-flow events
    // must stay in submission (ascending packet-id) order even while
    // relays interleave different shards' chunks.
    std::map<std::uint64_t, PacketId> last_seen;
    for (const auto& rec : obs.records) {
      if (rec.query != "path") continue;
      auto [it, first] =
          last_seen.try_emplace(rec.ctx.flow, rec.ctx.packet_id);
      if (!first) {
        EXPECT_LE(it->second, rec.ctx.packet_id)
            << "flow " << rec.ctx.flow << " reordered under " << relays
            << " relays";
        it->second = rec.ctx.packet_id;
      }
    }
  }
}

TEST(MultiRelay, ReportsByteIdenticalAtEveryRelayCount) {
  const std::vector<Packet> packets = make_encoded_traffic();

  const auto baseline = three_query_builder().build_or_throw();
  std::vector<SinkReport> base_reports(packets.size());
  baseline->at_sink(std::span<const Packet>(packets), kHops, base_reports);
  ReportEncoder base_enc;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    base_enc.add(packets[i].id, kHops, base_reports[i]);
  }
  const std::vector<std::uint8_t> base_bytes = base_enc.finish();

  for (const unsigned relays : {2u, 3u, 4u}) {
    auto builder = three_query_builder();
    builder.async_observers(64, OverflowPolicy::kBlock, relays);
    std::vector<SinkReport> reports(packets.size());
    ShardedSink sink(builder, kShards);
    sink.submit(std::span<const Packet>(packets), kHops, reports);
    sink.flush();
    ReportEncoder enc;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      enc.add(packets[i].id, kHops, reports[i]);
    }
    EXPECT_EQ(enc.finish(), base_bytes) << relays << " relays";
  }
}

TEST(MultiRelay, DropNewestAccountsExactlyAtEveryRelayCount) {
  const std::vector<Packet> packets = make_encoded_traffic();
  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs = sync_reference(packets, sync_reports);
  const std::size_t total_events = sync_obs.records.size();
  ASSERT_GT(total_events, 0u);

  for (const unsigned relays : {2u, 4u}) {
    auto builder = three_query_builder();
    // Starved transport: tiny event budget plus a slow observer force
    // admission-time shedding on every shard.
    builder.async_observers(2, OverflowPolicy::kDropNewest, relays);
    RecordingObserver obs;
    obs.delay = std::chrono::microseconds{100};
    ShardedSink sink(builder, kShards);
    sink.add_observer(&obs);
    sink.submit(std::span<const Packet>(packets), kHops,
                std::span<SinkReport>{});
    sink.flush();

    const TransportCounters t = sink.observer_counters();
    EXPECT_TRUE(t.active);
    EXPECT_EQ(t.observer_events, obs.records.size()) << relays << " relays";
    EXPECT_EQ(t.observer_events + t.observer_drops, total_events)
        << relays << " relays";
    EXPECT_GT(t.observer_drops, 0u)
        << "workload did not pressure the transport; weak test";
  }
}

TEST(MultiRelay, ConcurrentProducersWithArenaChurn) {
  const std::vector<Packet> packets = make_encoded_traffic();
  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs = sync_reference(packets, sync_reports);
  const std::size_t total_events = sync_obs.records.size();

  // Four producer threads push disjoint slices through the MPMC front-end
  // while four shard workers churn their per-thread slab arenas and two
  // relays drain — every concurrency axis of the sink at once. TSAN and
  // ASan/UBSan runs of this suite are what make the "no data races, no
  // arena lifetime bugs" claim checkable.
  auto builder = three_query_builder();
  builder.recording_arena(true);
  builder.async_observers(128, OverflowPolicy::kBlock, /*relay_threads=*/2);
  RecordingObserver obs;
  obs.delay = std::chrono::microseconds{1};
  ShardedSink sink(builder, kShards);
  sink.add_observer(&obs);

  constexpr std::size_t kProducers = 4;
  const std::span<const Packet> all(packets);
  std::vector<std::thread> producers;
  const std::size_t slice = (all.size() + kProducers - 1) / kProducers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    const std::size_t begin = std::min(p * slice, all.size());
    const std::size_t end = std::min(begin + slice, all.size());
    producers.emplace_back([&sink, all, begin, end] {
      // Small bursts maximize interleaving across producers.
      for (std::size_t off = begin; off < end; off += 32) {
        const std::size_t n = std::min<std::size_t>(32, end - off);
        sink.submit(all.subspan(off, n), kHops);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  sink.flush();

  const TransportCounters t = sink.observer_counters();
  EXPECT_EQ(t.observer_drops, 0u);
  EXPECT_EQ(obs.records.size(), total_events);
  // Producer interleaving changes per-flow packet order, so streams are
  // not comparable event-for-event — but per-query totals must hold.
  std::map<std::string, std::size_t> got, want;
  for (const auto& rec : obs.records) ++got[rec.query];
  for (const auto& rec : sync_obs.records) ++want[rec.query];
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace pint
