#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "hash/bit_vectors.h"
#include "hash/global_hash.h"
#include "hash/tabulation.h"

namespace pint {
namespace {

TEST(GlobalHash, DeterministicAcrossInstances) {
  // The coordination property: two "switches" constructing the hash from the
  // same seed agree on every outcome.
  GlobalHash a(42), b(42);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_EQ(a.bits(k), b.bits(k));
    ASSERT_EQ(a.bits2(k, k * 7), b.bits2(k, k * 7));
  }
}

TEST(GlobalHash, SeedsAreIndependent) {
  GlobalHash a(1), b(2);
  int same = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) same += (a.bits(k) == b.bits(k));
  EXPECT_EQ(same, 0);
}

TEST(GlobalHash, UnitInUnitInterval) {
  GlobalHash h(3);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    const double u = h.unit(k);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(GlobalHash, UnitIsUniform) {
  GlobalHash h(5);
  std::vector<int> buckets(10, 0);
  const int n = 200000;
  for (int k = 0; k < n; ++k) {
    ++buckets[static_cast<int>(h.unit(k) * 10)];
  }
  for (int c : buckets) EXPECT_NEAR(c, n / 10, n / 10 * 0.05);
}

TEST(GlobalHash, BelowMatchesProbability) {
  GlobalHash h(7);
  for (double p : {0.01, 0.1, 0.5, 0.9}) {
    int hits = 0;
    const int n = 100000;
    for (int k = 0; k < n; ++k) hits += h.below(k, p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01) << "p=" << p;
  }
}

TEST(GlobalHash, BelowEdgeCases) {
  GlobalHash h(9);
  int zero_hits = 0, one_misses = 0;
  for (int k = 0; k < 10000; ++k) {
    zero_hits += h.below(k, 0.0);
    one_misses += !h.below(k, 1.0);
  }
  EXPECT_EQ(zero_hits, 0);
  EXPECT_EQ(one_misses, 0);
}

TEST(GlobalHash, RangedBounds) {
  GlobalHash h(11);
  for (std::uint64_t n : {1ull, 3ull, 10ull, 1000ull}) {
    for (int k = 0; k < 1000; ++k) ASSERT_LT(h.ranged(k, n), n);
  }
}

TEST(GlobalHash, DigestWidth) {
  GlobalHash h(13);
  for (unsigned b : {1u, 4u, 8u, 16u, 63u}) {
    for (int k = 0; k < 1000; ++k) {
      ASSERT_LE(h.digest(k, b), low_bits_mask(b));
    }
  }
}

TEST(GlobalHash, DigestUniformOverSmallRange) {
  GlobalHash h(15);
  std::vector<int> counts(16, 0);
  const int n = 160000;
  for (int k = 0; k < n; ++k) ++counts[h.digest(k, 4)];
  for (int c : counts) EXPECT_NEAR(c, n / 16, n / 16 * 0.1);
}

TEST(GlobalHash, DeriveGivesIndependentFamilies) {
  GlobalHash root(17);
  GlobalHash d1 = root.derive(1), d2 = root.derive(2);
  GlobalHash d1_again = root.derive(1);
  int same12 = 0;
  for (int k = 0; k < 1000; ++k) {
    ASSERT_EQ(d1.bits(k), d1_again.bits(k));
    same12 += (d1.bits(k) == d2.bits(k));
  }
  EXPECT_EQ(same12, 0);
}

TEST(GlobalHash, AvalancheSingleBitFlip) {
  // Flipping one input bit should flip about half the output bits.
  GlobalHash h(19);
  double total_flips = 0;
  int trials = 0;
  for (std::uint64_t k = 1; k < 1000; ++k) {
    for (int bit : {0, 7, 31, 63}) {
      const std::uint64_t x = h.bits(k);
      const std::uint64_t y = h.bits(k ^ (1ULL << bit));
      total_flips += popcount(x ^ y);
      ++trials;
    }
  }
  EXPECT_NEAR(total_flips / trials, 32.0, 1.0);
}

TEST(Tabulation, DeterministicAndUniform) {
  TabulationHash t(23), t2(23);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int k = 0; k < n; ++k) {
    ASSERT_EQ(t(k), t2(k));
    ++buckets[static_cast<int>(t.unit(k) * 10)];
  }
  for (int c : buckets) EXPECT_NEAR(c, n / 10, n / 10 * 0.07);
}

TEST(BitVectors, ActsMatchesSelect) {
  // The O(log k) per-switch check must agree with the decoder's full vector.
  GlobalHash h(29);
  BitVectorSelector sel(h, 3);  // p = 1/8
  const unsigned k = 200;
  for (PacketId p = 0; p < 500; ++p) {
    const HopBitVector v = sel.select(p);
    for (unsigned i = 0; i < k; ++i) {
      ASSERT_EQ(v.test(i), sel.acts(p, i)) << "packet " << p << " hop " << i;
    }
  }
}

TEST(BitVectors, ProbabilityIsTwoToMinusRounds) {
  GlobalHash h(31);
  for (unsigned rounds : {1u, 2u, 4u}) {
    BitVectorSelector sel(h, rounds);
    const unsigned k = 256;
    std::uint64_t set = 0;
    const int packets = 2000;
    for (PacketId p = 0; p < static_cast<PacketId>(packets); ++p) {
      set += sel.select(p).count(k);
    }
    const double expected = std::pow(0.5, rounds);
    EXPECT_NEAR(static_cast<double>(set) / (packets * k), expected,
                expected * 0.1)
        << "rounds=" << rounds;
  }
}

TEST(BitVectors, SetBitsAscendingAndConsistent) {
  GlobalHash h(37);
  BitVectorSelector sel(h, 2);
  const unsigned k = 100;
  for (PacketId p = 0; p < 200; ++p) {
    const HopBitVector v = sel.select(p);
    const auto bits = v.set_bits(k);
    for (std::size_t i = 1; i < bits.size(); ++i)
      ASSERT_LT(bits[i - 1], bits[i]);
    ASSERT_EQ(bits.size(), v.count(k));
    for (unsigned b : bits) ASSERT_TRUE(v.test(b));
  }
}

}  // namespace
}  // namespace pint
