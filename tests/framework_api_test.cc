// Tests for the registry-driven framework API: Builder validation (typed
// errors), the ValueExtractor registry, the batched hot path's equivalence
// with per-packet processing, SinkObserver delivery, and — the acceptance
// bar for the redesign — registering a brand-new metric + query end to end
// (extractor -> switch encode -> sink decode -> observer callback) without
// modifying anything under src/pint/.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "pint/framework.h"
#include "pint/wire_format.h"

namespace pint {
namespace {

PintFramework::Builder three_query_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = 5;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.max_value = 1e6;
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .switch_universe({1, 2, 3, 4, 5, 6, 7, 8})
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query("hpcc",
                                      std::string(extractor::kLinkUtilization),
                                      8, 1.0 / 16.0, cc_tuning));
  return builder;
}

// --- Builder validation ------------------------------------------------------

TEST(Builder, NoQueriesIsTypedError) {
  const BuildResult r = PintFramework::Builder().build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kNoQueries);
}

TEST(Builder, DuplicateQueryNameIsTypedError) {
  const BuildResult r =
      PintFramework::Builder()
          .global_bit_budget(16)
          .add_query(make_perpacket_query("q", "", 8, 0.5))
          .add_query(make_perpacket_query("q", "", 8, 0.5))
          .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kDuplicateQueryName);
  EXPECT_NE(r.error->message.find("q"), std::string::npos);
}

TEST(Builder, BitBudgetOverflowIsTypedError) {
  const BuildResult r = PintFramework::Builder()
                            .global_bit_budget(16)
                            .add_query(make_perpacket_query("big", "", 24, 1.0))
                            .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kBadBitBudget);
}

TEST(Builder, UnknownExtractorIsTypedError) {
  const BuildResult r =
      PintFramework::Builder()
          .global_bit_budget(16)
          .add_query(make_perpacket_query("q", "no_such_metric", 8, 1.0))
          .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kUnknownExtractor);
  EXPECT_NE(r.error->message.find("no_such_metric"), std::string::npos);
}

TEST(Builder, BadFrequencyIsTypedError) {
  const BuildResult r = PintFramework::Builder()
                            .global_bit_budget(16)
                            .add_query(make_perpacket_query("q", "", 8, 1.5))
                            .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kBadFrequency);
}

TEST(Builder, DuplicateExtractorIsTypedError) {
  const BuildResult r =
      PintFramework::Builder()
          .register_extractor("m", [](const SwitchView&) { return 0.0; })
          .register_extractor("m", [](const SwitchView&) { return 1.0; })
          .add_query(make_perpacket_query("q", "m", 8, 1.0))
          .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kDuplicateExtractor);
}

TEST(Builder, StaticQueryWithoutUniverseIsTypedError) {
  const BuildResult r = PintFramework::Builder()
                            .global_bit_budget(16)
                            .add_query(make_path_query("path", 8, 1.0))
                            .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kEmptySwitchUniverse);
}

TEST(Builder, MemoryBudgetOnPerPacketQueryIsTypedError) {
  QuerySpec spec = make_perpacket_query("hpcc", "", 8, 1.0);
  spec.memory_budget_bytes = 4096;  // per-packet queries keep no sink state
  const BuildResult r = PintFramework::Builder()
                            .global_bit_budget(16)
                            .add_query(spec)
                            .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kInconsistentMemoryBudget);
  EXPECT_NE(r.error->message.find("hpcc"), std::string::npos);
}

TEST(Builder, OvercommittedMemoryBudgetsAreTypedError) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec a = make_dynamic_query("a", std::string(extractor::kHopLatency),
                                   8, 0.5, tuning);
  a.memory_budget_bytes = 800;
  QuerySpec b = make_dynamic_query("b", std::string(extractor::kQueueOccupancy),
                                   8, 0.5, tuning);
  b.memory_budget_bytes = 400;
  const BuildResult r = PintFramework::Builder()
                            .global_bit_budget(16)
                            .memory_ceiling_bytes(1000)  // 800 + 400 > 1000
                            .add_query(a)
                            .add_query(b)
                            .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kInconsistentMemoryBudget);
}

TEST(Builder, CeilingLeavingNoShareIsTypedError) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec greedy = make_dynamic_query(
      "greedy", std::string(extractor::kHopLatency), 8, 0.5, tuning);
  greedy.memory_budget_bytes = 1000;  // consumes the whole ceiling
  const BuildResult r =
      PintFramework::Builder()
          .global_bit_budget(16)
          .memory_ceiling_bytes(1000)
          .add_query(greedy)
          .add_query(make_dynamic_query(
              "starved", std::string(extractor::kQueueOccupancy), 8, 0.5,
              tuning))
          .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kInconsistentMemoryBudget);
  EXPECT_NE(r.error->message.find("unbudgeted"), std::string::npos);
}

TEST(Builder, ConsistentMemoryBudgetsBuild) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec budgeted = make_dynamic_query(
      "budgeted", std::string(extractor::kHopLatency), 8, 0.5, tuning);
  budgeted.memory_budget_bytes = 64 << 10;
  const BuildResult r =
      PintFramework::Builder()
          .global_bit_budget(16)
          .memory_ceiling_bytes(256 << 10)
          .add_query(budgeted)
          .add_query(make_dynamic_query(
              "shared", std::string(extractor::kQueueOccupancy), 8, 0.5,
              tuning))
          .build();
  ASSERT_TRUE(r.ok()) << r.error->message;
  EXPECT_TRUE(r.framework->memory_bounded());
  EXPECT_EQ(r.framework->memory_ceiling_bytes(), 256u << 10);
  const MemoryReport mem = r.framework->memory_report();
  const QueryMemoryStats* budgeted_stats = mem.find("budgeted");
  const QueryMemoryStats* shared_stats = mem.find("shared");
  ASSERT_NE(budgeted_stats, nullptr);
  ASSERT_NE(shared_stats, nullptr);
  EXPECT_EQ(budgeted_stats->capacity_bytes, 64u << 10);
  EXPECT_EQ(shared_stats->capacity_bytes, (256u << 10) - (64u << 10));
}

TEST(Builder, InfeasibleMixIsTypedError) {
  // Two full-frequency 8-bit queries cannot share an 8-bit budget.
  const BuildResult r = PintFramework::Builder()
                            .global_bit_budget(8)
                            .add_query(make_perpacket_query("a", "", 8, 1.0))
                            .add_query(make_perpacket_query("b", "", 8, 1.0))
                            .build();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->code, BuildErrorCode::kInfeasiblePlan);
}

TEST(Builder, BuildOrThrowCarriesMessage) {
  try {
    std::ignore = PintFramework::Builder().build_or_throw();
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no queries"), std::string::npos);
  }
}

TEST(Builder, ValidMixBuildsAndExposesSpecs) {
  auto fw = three_query_builder().build_or_throw();
  ASSERT_NE(fw, nullptr);
  EXPECT_EQ(fw->query_names().size(), 3u);
  ASSERT_NE(fw->spec("latency"), nullptr);
  EXPECT_EQ(fw->spec("latency")->query.bit_budget, 8u);
  EXPECT_EQ(fw->spec("nope"), nullptr);
  // The builder is reusable: a second build produces a fresh framework.
  EXPECT_TRUE(three_query_builder().build().ok());
}

// --- extractor registry ------------------------------------------------------

TEST(ExtractorRegistry, RoundTripAndBuiltins) {
  ValueExtractorRegistry registry;
  for (const auto name :
       {extractor::kSwitchId, extractor::kHopLatency,
        extractor::kLinkUtilization, extractor::kQueueOccupancy,
        extractor::kIngressTimestamp}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  constexpr MetricId kCustom = metric::kFirstCustom + 3;
  EXPECT_TRUE(registry.add(
      "drop_count", [](const SwitchView& v) { return v.get(kCustom); }));
  EXPECT_FALSE(registry.add("drop_count",
                            [](const SwitchView&) { return 0.0; }));

  SwitchView view(7);
  view.set(kCustom, 42.0).set(metric::kHopLatencyNs, 9.0);
  const ValueExtractor* custom = registry.find("drop_count");
  ASSERT_NE(custom, nullptr);
  EXPECT_DOUBLE_EQ((*custom)(view), 42.0);
  EXPECT_DOUBLE_EQ((*registry.find(extractor::kHopLatency))(view), 9.0);
  EXPECT_DOUBLE_EQ((*registry.find(extractor::kSwitchId))(view), 7.0);
  EXPECT_EQ(registry.find("absent"), nullptr);

  const auto names = registry.names();
  EXPECT_EQ(names.size(), 6u);
}

TEST(SwitchViewMetrics, FixedSlotsAndOverflow) {
  SwitchView view(3);
  EXPECT_FALSE(view.has(metric::kQueueOccupancy));
  EXPECT_DOUBLE_EQ(view.get(metric::kQueueOccupancy, -1.0), -1.0);
  view.set(metric::kQueueOccupancy, 5.0);
  view.set(metric::kQueueOccupancy, 6.0);  // overwrite
  EXPECT_DOUBLE_EQ(view.get(metric::kQueueOccupancy), 6.0);
  const MetricId custom = metric::kFirstCustom + 100;
  view.set(custom, 1.0);
  view.set(custom, 2.0);
  EXPECT_TRUE(view.has(custom));
  EXPECT_DOUBLE_EQ(view.get(custom), 2.0);
}

// --- batched hot path --------------------------------------------------------

struct RecordingObserver : SinkObserver {
  struct Entry {
    SinkContext ctx;
    std::string query;
    Observation obs;
  };
  std::vector<Entry> entries;
  std::vector<std::pair<std::uint64_t, std::vector<SwitchId>>> paths;

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    entries.push_back(Entry{ctx, std::string(query), obs});
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    (void)query;
    paths.emplace_back(ctx.flow, path);
  }
};

TEST(BatchedHotPath, BitIdenticalToPerPacketPath) {
  const std::vector<SwitchId> path{1, 4, 6, 2, 8};
  const unsigned k = 5;
  const int batch_size = 64;
  const int batches = 40;

  RecordingObserver scalar_obs, batch_obs;
  auto scalar_fw =
      three_query_builder().add_observer(&scalar_obs).build_or_throw();
  auto batch_fw =
      three_query_builder().add_observer(&batch_obs).build_or_throw();

  Rng rng(99);
  PacketId next_id = 1;
  for (int round = 0; round < batches; ++round) {
    std::vector<Packet> scalar_pkts(batch_size), batch_pkts(batch_size);
    for (int n = 0; n < batch_size; ++n) {
      scalar_pkts[n].id = batch_pkts[n].id = next_id++;
      scalar_pkts[n].tuple = batch_pkts[n].tuple =
          FiveTuple{10, 20, 30, 40, 6};
    }
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view(path[i - 1]);
      view.set(metric::kHopLatencyNs, 50.0 * i + rng.uniform());
      view.set(metric::kLinkUtilization, 10.0 * i + 1.0);
      for (Packet& pkt : scalar_pkts) scalar_fw->at_switch(pkt, i, view);
      batch_fw->at_switch(std::span<Packet>(batch_pkts), i, view);
    }
    // Identical digests, lane for lane, on every packet.
    for (int n = 0; n < batch_size; ++n) {
      ASSERT_EQ(scalar_pkts[n].digests, batch_pkts[n].digests)
          << "packet " << scalar_pkts[n].id;
    }

    std::vector<SinkReport> reports(batch_size);
    for (int n = 0; n < batch_size; ++n) {
      const SinkReport scalar_report = scalar_fw->at_sink(scalar_pkts[n], k);
      (void)scalar_report;
    }
    batch_fw->at_sink(std::span<const Packet>(batch_pkts), k, reports);
  }

  // Same observations, in the same order, through both paths.
  ASSERT_EQ(scalar_obs.entries.size(), batch_obs.entries.size());
  for (std::size_t i = 0; i < scalar_obs.entries.size(); ++i) {
    EXPECT_EQ(scalar_obs.entries[i].ctx.packet_id,
              batch_obs.entries[i].ctx.packet_id);
    EXPECT_EQ(scalar_obs.entries[i].query, batch_obs.entries[i].query);
    EXPECT_TRUE(scalar_obs.entries[i].obs == batch_obs.entries[i].obs) << i;
  }
  ASSERT_EQ(scalar_obs.paths.size(), batch_obs.paths.size());
  ASSERT_FALSE(batch_obs.paths.empty());
  EXPECT_EQ(batch_obs.paths[0].second, path);
}

TEST(BatchedHotPath, MismatchedReportSpanThrows) {
  auto fw = three_query_builder().build_or_throw();
  std::vector<Packet> pkts(4);
  std::vector<SinkReport> reports(3);
  EXPECT_THROW(
      fw->at_sink(std::span<const Packet>(pkts), 5,
                  std::span<SinkReport>(reports)),
      std::invalid_argument);
}

// --- wire format integration -------------------------------------------------

TEST(WireFormat, PackUnpackRoundTripsThroughFramework) {
  auto fw = three_query_builder().build_or_throw();
  const std::vector<SwitchId> path{1, 4, 6, 2, 8};
  Rng rng(5);
  int nonempty = 0;
  for (PacketId id = 1; id <= 200; ++id) {
    Packet pkt;
    pkt.id = id;
    pkt.tuple = FiveTuple{1, 2, 3, 4, 6};
    for (HopIndex i = 1; i <= 5; ++i) {
      SwitchView view(path[i - 1]);
      view.set(metric::kHopLatencyNs, 10.0 + rng.uniform());
      view.set(metric::kLinkUtilization, 3.0);
      fw->at_switch(pkt, i, view);
    }
    const std::vector<std::uint8_t> wire = fw->pack_wire(pkt);
    // Header-free digests: never more than the global budget on the wire.
    EXPECT_LE(wire.size(), (fw->global_bit_budget() + 7) / 8);
    Packet rx;
    rx.id = pkt.id;
    rx.tuple = pkt.tuple;
    fw->unpack_wire(wire, rx);
    EXPECT_EQ(rx.digests, pkt.digests);
    nonempty += !pkt.digests.empty();
  }
  EXPECT_GT(nonempty, 0);
}

// --- end-to-end extensibility ------------------------------------------------

// The acceptance bar: a brand-new metric ("retransmission count") and a
// query over it run end to end — extractor -> switch encode -> sink decode
// -> observer callback — purely through the public Builder API.
TEST(Extensibility, NewMetricAndQueryEndToEndWithoutTouchingFramework) {
  constexpr MetricId kRetransCount = metric::kFirstCustom + 1;
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e4;

  RecordingObserver observer;
  auto fw =
      PintFramework::Builder()
          .global_bit_budget(16)
          .register_extractor(
              "retrans_count",
              [](const SwitchView& v) { return v.get(kRetransCount); })
          .add_query(make_dynamic_query("retrans", "retrans_count", 16, 1.0,
                                        tuning))
          .add_observer(&observer)
          .build_or_throw();

  const unsigned k = 4;
  const FiveTuple tuple{9, 8, 7, 6, 6};
  for (PacketId id = 1; id <= 4000; ++id) {
    Packet pkt;
    pkt.id = id;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view(i);
      view.set(kRetransCount, 10.0 * i);  // hop i reports 10 * i
      fw->at_switch(pkt, i, view);
    }
    fw->at_sink(pkt, k);
  }

  // Every observation decoded back to (hop, ~10 * hop).
  ASSERT_EQ(observer.entries.size(), 4000u);
  std::vector<int> per_hop(k, 0);
  for (const auto& e : observer.entries) {
    EXPECT_EQ(e.query, "retrans");
    const auto* sample = std::get_if<HopSampleObservation>(&e.obs);
    ASSERT_NE(sample, nullptr);
    ASSERT_GE(sample->hop, 1u);
    ASSERT_LE(sample->hop, k);
    EXPECT_NEAR(sample->value, 10.0 * sample->hop,
                10.0 * sample->hop * 0.02);
    ++per_hop[sample->hop - 1];
  }
  // Reservoir sampling covered every hop.
  for (int c : per_hop) EXPECT_GT(c, 0);
  // The generic recorder surface answers quantiles for the new query too.
  const std::uint64_t fkey = fw->flow_key_for("retrans", tuple);
  const auto median = fw->latency_quantile("retrans", fkey, 2, 0.5);
  ASSERT_TRUE(median.has_value());
  EXPECT_NEAR(*median, 20.0, 1.0);
}

// Two queries of the same aggregation family — impossible in the old
// facade — now coexist, each with its own extractor and recorder.
TEST(Extensibility, TwoDynamicQueriesCoexist) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  auto fw = PintFramework::Builder()
                .global_bit_budget(16)
                .add_query(make_dynamic_query(
                    "lat", std::string(extractor::kHopLatency), 8, 1.0,
                    tuning))
                .add_query(make_dynamic_query(
                    "queue", std::string(extractor::kQueueOccupancy), 8, 1.0,
                    tuning))
                .build_or_throw();

  const unsigned k = 3;
  const FiveTuple tuple{1, 1, 1, 1, 6};
  for (PacketId id = 1; id <= 6000; ++id) {
    Packet pkt;
    pkt.id = id;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view(i);
      view.set(metric::kHopLatencyNs, 100.0 * i);
      view.set(metric::kQueueOccupancy, 7.0 * i);
      fw->at_switch(pkt, i, view);
    }
    fw->at_sink(pkt, k);
  }
  const std::uint64_t fkey = fw->flow_key_for("lat", tuple);
  const auto lat = fw->latency_quantile("lat", fkey, 2, 0.5);
  const auto queue = fw->latency_quantile("queue", fkey, 2, 0.5);
  ASSERT_TRUE(lat.has_value());
  ASSERT_TRUE(queue.has_value());
  EXPECT_NEAR(*lat, 200.0, 200.0 * 0.05);
  EXPECT_NEAR(*queue, 14.0, 14.0 * 0.05);
}

// A custom recorder factory controls sink-side retention per query.
TEST(Extensibility, RecorderFactoryControlsRetention) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec spec = make_dynamic_query(
      "lat", std::string(extractor::kHopLatency), 16, 1.0, tuning);
  bool factory_used = false;
  spec.recorder_factory = [&factory_used](unsigned k, std::uint64_t seed) {
    factory_used = true;
    return FlowLatencyRecorder(k, /*sketch_bytes=*/2048, seed);
  };
  auto fw = PintFramework::Builder()
                .global_bit_budget(16)
                .add_query(std::move(spec))
                .build_or_throw();

  const unsigned k = 2;
  Rng rng(3);
  const FiveTuple tuple{2, 2, 2, 2, 6};
  for (PacketId id = 1; id <= 3000; ++id) {
    Packet pkt;
    pkt.id = id;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view(i);
      view.set(metric::kHopLatencyNs, 100.0 + rng.exponential(0.1));
      fw->at_switch(pkt, i, view);
    }
    fw->at_sink(pkt, k);
  }
  EXPECT_TRUE(factory_used);
  const std::uint64_t fkey = fw->flow_key_for("lat", tuple);
  ASSERT_TRUE(fw->latency_quantile("lat", fkey, 1, 0.5).has_value());
}

}  // namespace
}  // namespace pint
