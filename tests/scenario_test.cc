// Scenario tier: every checked-in .scn spec runs end to end through the
// full-framework simulator, and the telemetry apps must DETECT what the
// scenario injected — plus determinism (same spec + seed => byte-identical
// encoded observer streams) and control runs proving the detections are
// caused by the episodes, not the background traffic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pint/policy.h"
#include "scenario/scenario_runner.h"
#include "scenario/scenario_spec.h"

namespace pint::scenario {
namespace {

#ifndef PINT_SCENARIO_DIR
#error "PINT_SCENARIO_DIR must point at tests/scenarios"
#endif

ScenarioSpec load(const std::string& name) {
  const ScenarioParseResult parsed =
      parse_scenario_file(std::string(PINT_SCENARIO_DIR) + "/" + name);
  for (const ScenarioParseError& e : parsed.errors) {
    ADD_FAILURE() << name << " line " << e.line << " [" << to_string(e.code)
                  << "]: " << e.message;
  }
  if (!parsed.ok()) throw std::runtime_error("unparseable scenario " + name);
  return *parsed.spec;
}

void expect_all_pass(const ScenarioResult& result) {
  for (const ExpectOutcome& o : result.outcomes) {
    EXPECT_TRUE(o.passed) << result.name << ": expect " << o.expect.what
                          << " " << o.expect.node << " — " << o.detail;
  }
}

TEST(Scenario, MicroburstStormDetected) {
  const ScenarioSpec spec = load("microburst_storm.scn");
  const ScenarioResult result = run_scenario(spec);
  expect_all_pass(result);
  EXPECT_GT(result.microburst_events, 0u);
}

TEST(Scenario, MicroburstQuietWithoutStorm) {
  // Control: same topology/traffic/seed, episodes suppressed — the burst
  // the detector flags must come from the injected storm.
  const ScenarioSpec spec = load("microburst_storm.scn");
  ScenarioRunOptions options;
  options.suppress_episodes = true;
  const ScenarioResult result = run_scenario(spec, options);
  EXPECT_EQ(result.microburst_events, 0u);
}

TEST(Scenario, LinkFailureLocalized) {
  const ScenarioSpec spec = load("link_failure.scn");
  const ScenarioResult result = run_scenario(spec);
  expect_all_pass(result);
}

TEST(Scenario, LinkFailureControlHasOtherHotspot) {
  // Without the failure the degraded switch must not be the standout
  // hotspot reported with the episode active (same seed, same traffic).
  const ScenarioSpec spec = load("link_failure.scn");
  ScenarioRunOptions options;
  options.suppress_episodes = true;
  const ScenarioResult with_episode = run_scenario(spec);
  const ScenarioResult control = run_scenario(spec, options);
  ASSERT_FALSE(with_episode.hottest_switch.empty());
  EXPECT_NE(control.hottest_switch, with_episode.hottest_switch);
}

TEST(Scenario, LossBurstFiresAnomaly) {
  const ScenarioSpec spec = load("loss_burst.scn");
  const ScenarioResult result = run_scenario(spec);
  expect_all_pass(result);
}

TEST(Scenario, LossBurstControlInjectsNothing) {
  const ScenarioSpec spec = load("loss_burst.scn");
  ScenarioRunOptions options;
  options.suppress_episodes = true;
  const ScenarioResult result = run_scenario(spec, options);
  EXPECT_EQ(result.counters.packets_lost_injected, 0u);
}

TEST(Scenario, LeafSpineLoadTracked) {
  const ScenarioSpec spec = load("leaf_spine_load.scn");
  const ScenarioResult result = run_scenario(spec);
  expect_all_pass(result);
  EXPECT_GT(result.mean_fabric_utilization, 0.0);
}

TEST(Scenario, ReorderFlapSurvivesAndDetects) {
  const ScenarioSpec spec = load("reorder_flap.scn");
  const ScenarioResult result = run_scenario(spec);
  expect_all_pass(result);
  // Reordering must not wedge the transport: flows keep completing.
  EXPECT_GT(result.flows_completed, 0u);
}

TEST(Scenario, MemorySqueezeShedsMiceAndStillDetects) {
  const ScenarioSpec spec = load("memory_squeeze.scn");
  // The symbolic policy knob flattens to its numeric kind.
  const auto it = spec.tuning.find("store.policy");
  ASSERT_NE(it, spec.tuning.end());
  EXPECT_EQ(static_cast<int>(it->second),
            static_cast<int>(StorePolicyKind::kDoorkeeper));
  const ScenarioResult result = run_scenario(spec);
  expect_all_pass(result);
  // The doorkeeper turns one-packet mice away at admission: rejections are
  // counted exactly while the load expectation above still passes.
  EXPECT_GT(result.store_admissions_rejected, 0u);
}

TEST(Scenario, DaemonFanInDetectsSameStorm) {
  // The storm scenario with the observer stream crossing real sockets
  // into a CollectorDaemon: the apps observe the merged collector replay
  // and must reach the same detections, with the transport lossless.
  const ScenarioSpec spec = load("daemon_fanin.scn");
  ASSERT_EQ(spec.sim.fanin, "daemon");
  ASSERT_EQ(spec.sim.fanin_sinks, 3u);
  const ScenarioResult result = run_scenario(spec);
  expect_all_pass(result);
  EXPECT_GT(result.microburst_events, 0u);
  EXPECT_TRUE(result.fanin_transport.active);
  EXPECT_GT(result.fanin_transport.frames_shipped, 0u);
  EXPECT_EQ(result.fanin_transport.frames_dropped, 0u);
  EXPECT_EQ(result.fanin_transport.sender_reconnects, 0u);
  EXPECT_EQ(result.fanin_transport.frames_resync_discarded, 0u);
  EXPECT_EQ(result.fanin_errors, 0u);
  EXPECT_EQ(result.fanin_incomplete_epochs, 0u);
}

TEST(Scenario, FanInKindsAgreeOnDetections) {
  // The same storm detected through every fan-in stream kind — from the
  // in-memory ring to localhost TCP through the daemon. The transport
  // must never change what the apps conclude.
  for (const char* kind : {"spsc", "socketpair", "daemon_tcp"}) {
    ScenarioSpec spec = load("microburst_storm.scn");
    spec.sim.fanin = kind;
    spec.sim.fanin_sinks = 2;
    const ScenarioResult result = run_scenario(spec);
    for (const ExpectOutcome& o : result.outcomes) {
      EXPECT_TRUE(o.passed) << "fanin=" << kind << ": expect "
                            << o.expect.what << " " << o.expect.node << " — "
                            << o.detail;
    }
    EXPECT_TRUE(result.fanin_transport.active) << kind;
    EXPECT_EQ(result.fanin_errors, 0u) << kind;
    EXPECT_EQ(result.fanin_incomplete_epochs, 0u) << kind;
  }
}

TEST(Scenario, RejectsUnknownFanin) {
  const ScenarioParseResult parsed = parse_scenario(
      "scenario bad\nseed 1\n"
      "topology leaf_spine leaves=2 spines=2 hosts_per_leaf=2\n"
      "sim budget=16 transport=tcp duration_ms=1 fanin=carrier_pigeon\n"
      "traffic load=0.1 dist=hadoop\n");
  ASSERT_FALSE(parsed.errors.empty());
  EXPECT_EQ(parsed.errors.front().code, ParseErrorCode::kBadValue);
}

TEST(Scenario, MemorySqueezeRejectsUnknownPolicy) {
  const ScenarioParseResult parsed = parse_scenario(
      "scenario bad\nseed 1\n"
      "topology leaf_spine leaves=2 spines=2 hosts_per_leaf=2\n"
      "sim budget=16 transport=tcp duration_ms=1 buffer_kb=64\n"
      "traffic load=0.1 dist=hadoop\n"
      "tune store policy=mru\n");
  ASSERT_FALSE(parsed.errors.empty());
  EXPECT_EQ(parsed.errors.front().code, ParseErrorCode::kBadValue);
}

TEST(Scenario, SameSeedByteIdenticalReports) {
  // The determinism gate: two runs of the same spec produce byte-identical
  // encoded observer streams, for every checked-in scenario.
  const char* files[] = {"microburst_storm.scn", "link_failure.scn",
                         "loss_burst.scn", "leaf_spine_load.scn",
                         "reorder_flap.scn", "memory_squeeze.scn"};
  for (const char* file : files) {
    const ScenarioSpec spec = load(file);
    const ScenarioResult a = run_scenario(spec);
    const ScenarioResult b = run_scenario(spec);
    ASSERT_FALSE(a.report_bytes.empty()) << file;
    EXPECT_EQ(a.report_bytes, b.report_bytes) << file;
  }
}

TEST(Scenario, DifferentSeedDifferentReports) {
  ScenarioSpec spec = load("leaf_spine_load.scn");
  const ScenarioResult a = run_scenario(spec);
  spec.seed ^= 0x5EED;
  const ScenarioResult b = run_scenario(spec);
  EXPECT_NE(a.report_bytes, b.report_bytes);
}

}  // namespace
}  // namespace pint::scenario
