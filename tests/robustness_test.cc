// Failure-injection and robustness properties: PINT's decoders must work
// from ANY subset of packets in ANY order (loss and reordering change only
// how long decoding takes, never correctness), and results must be stable
// across hash seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "coding/encoder.h"
#include "coding/hashed_decoder.h"
#include "coding/peeling_decoder.h"
#include "common/rng.h"
#include "pint/dynamic_aggregation.h"

namespace pint {
namespace {

class LossTest : public ::testing::TestWithParam<double> {};

TEST_P(LossTest, PeelingDecodesUnderLoss) {
  const double loss = GetParam();
  const unsigned k = 20;
  const SchemeConfig cfg = make_multilayer_scheme(k);
  GlobalHash root(555);
  const InstanceHashes h = make_instance_hashes(root, 0);
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(i + 1);

  Rng drops(31);
  PeelingDecoder dec(k, cfg, h);
  PacketId p = 1;
  std::uint64_t delivered = 0;
  while (!dec.complete() && p < 500000) {
    const Digest d = encode_path(cfg, h, p, blocks, 0);
    if (!drops.bernoulli(loss)) {
      dec.add_packet(p, d);
      ++delivered;
    }
    ++p;
  }
  ASSERT_TRUE(dec.complete()) << "loss=" << loss;
  EXPECT_EQ(dec.message(), blocks);
  // Loss only thins the stream: delivered packets needed is loss-invariant
  // in expectation (each packet is i.i.d. useful). Sanity: within 4x of k.
  EXPECT_LT(delivered, 4000u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9));

TEST(Robustness, ReorderingDoesNotAffectDecodedPath) {
  const unsigned k = 10;
  std::vector<std::uint64_t> universe(64);
  std::iota(universe.begin(), universe.end(), 1);
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = universe[(i * 7) % 64];

  HashedDecoderConfig cfg;
  cfg.k = k;
  cfg.bits = 8;
  cfg.instances = 1;
  cfg.scheme = make_multilayer_scheme(k);
  GlobalHash root(666);

  // Generate a batch big enough to decode, then feed in two different
  // orders; both must produce the same path.
  const unsigned batch = 2000;
  std::vector<std::pair<PacketId, Digest>> packets;
  for (PacketId p = 1; p <= batch; ++p) {
    packets.emplace_back(
        p, encode_path(cfg.scheme, make_instance_hashes(root, 0), p,
                       blocks, 8));
  }
  HashedPathDecoder fwd(cfg, root, universe);
  for (const auto& [p, d] : packets) {
    if (fwd.complete()) break;
    fwd.add_packet(p, std::vector<Digest>{d});
  }
  ASSERT_TRUE(fwd.complete());

  Rng rng(9);
  std::vector<std::pair<PacketId, Digest>> shuffled = packets;
  for (std::size_t i = shuffled.size() - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.uniform_int(i + 1)]);
  }
  HashedPathDecoder rev(cfg, root, universe);
  for (const auto& [p, d] : shuffled) {
    if (rev.complete()) break;
    rev.add_packet(p, std::vector<Digest>{d});
  }
  ASSERT_TRUE(rev.complete());
  EXPECT_EQ(fwd.path(), rev.path());
  EXPECT_EQ(fwd.path(), blocks);
}

TEST(Robustness, DecodingWorksAcrossManySeeds) {
  // No "lucky seed": the decoder must converge for every hash family
  // member. (Catches accidental structure in the hash mixing.)
  const unsigned k = 8;
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = 10 + i;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const SchemeConfig cfg = make_multilayer_scheme(k);
    GlobalHash root(seed);
    const InstanceHashes h = make_instance_hashes(root, 0);
    PeelingDecoder dec(k, cfg, h);
    PacketId p = 1;
    while (!dec.complete() && p < 50000) {
      dec.add_packet(p, encode_path(cfg, h, p, blocks, 0));
      ++p;
    }
    ASSERT_TRUE(dec.complete()) << "seed " << seed;
    ASSERT_EQ(dec.message(), blocks) << "seed " << seed;
  }
}

TEST(Robustness, DuplicatedPacketsAreHarmless) {
  const unsigned k = 6;
  const SchemeConfig cfg = make_hybrid_scheme(k);
  GlobalHash root(777);
  const InstanceHashes h = make_instance_hashes(root, 0);
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(i * 3 + 1);
  PeelingDecoder dec(k, cfg, h);
  PacketId p = 1;
  while (!dec.complete() && p < 50000) {
    const Digest d = encode_path(cfg, h, p, blocks, 0);
    dec.add_packet(p, d);
    dec.add_packet(p, d);  // duplicate delivery (e.g. retransmit)
    ++p;
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.message(), blocks);
}

TEST(Robustness, DynamicAggregationUnderLoss) {
  // Quantile estimation degrades gracefully: with 50% loss the recorder
  // simply sees half the samples but stays unbiased.
  const unsigned k = 4;
  DynamicAggregationConfig cfg;
  cfg.bits = 12;
  cfg.max_value = 1e6;
  DynamicAggregationQuery query(cfg, 888);
  FlowLatencyRecorder rec(k);
  Rng rng(888), drops(999);
  for (PacketId p = 1; p <= 20000; ++p) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      d = query.encode_step(p, i, d, 100.0 * i + rng.uniform() * 10.0);
    }
    if (!drops.bernoulli(0.5)) rec.add(query.decode(p, d, k));
  }
  for (HopIndex hop = 1; hop <= k; ++hop) {
    EXPECT_NEAR(*rec.quantile(hop, 0.5), 100.0 * hop + 5.0, 100.0 * hop * 0.05);
  }
}

}  // namespace
}  // namespace pint
