#include <gtest/gtest.h>

#include <algorithm>

#include "workload/flow_size_dist.h"
#include "workload/traffic_gen.h"

namespace pint {
namespace {

TEST(FlowSizeDist, DecilesMatchSampling) {
  const FlowSizeDist dist = FlowSizeDist::web_search();
  Rng rng(1);
  std::vector<Bytes> samples;
  const int n = 200000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(dist.sample(rng));
  std::sort(samples.begin(), samples.end());
  // Each decile of the sample should approximate the configured decile.
  for (int d = 1; d <= 9; ++d) {
    const Bytes sampled = samples[static_cast<std::size_t>(
        n * (d / 10.0))];
    const Bytes configured = dist.deciles()[d - 1];
    EXPECT_NEAR(static_cast<double>(sampled) / configured, 1.0, 0.1)
        << "decile " << d;
  }
}

TEST(FlowSizeDist, PaperTickMarks) {
  const FlowSizeDist ws = FlowSizeDist::web_search();
  EXPECT_EQ(ws.deciles().front(), 7'000);
  EXPECT_EQ(ws.deciles().back(), 30'000'000);
  const FlowSizeDist hd = FlowSizeDist::hadoop();
  EXPECT_EQ(hd.deciles().front(), 324);
  EXPECT_EQ(hd.deciles().back(), 10'000'000);
}

TEST(FlowSizeDist, HadoopIsMostlySmall) {
  // Facebook Hadoop: >half the flows are sub-KB (paper Section 7 notes many
  // single-packet flows).
  const FlowSizeDist dist = FlowSizeDist::hadoop();
  Rng rng(3);
  int small = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) small += (dist.sample(rng) < 1000);
  EXPECT_GT(small, n / 2);
}

TEST(FlowSizeDist, MeanIsFinite) {
  EXPECT_GT(FlowSizeDist::web_search().mean(), 1e5);  // MB-scale mean
  EXPECT_GT(FlowSizeDist::hadoop().mean(), 100.0);
  EXPECT_LT(FlowSizeDist::hadoop().mean(),
            FlowSizeDist::web_search().mean());
}

TEST(FlowSizeDist, RejectsBadDeciles) {
  EXPECT_THROW(FlowSizeDist("bad", {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDist("bad", {10, 9, 8, 7, 6, 5, 4, 3, 2, 1}),
               std::invalid_argument);
}

TEST(TrafficGen, ArrivalsSortedAndInHorizon) {
  TrafficGenConfig cfg;
  cfg.load = 0.5;
  cfg.num_hosts = 16;
  cfg.duration = 5 * kMilli;
  const auto arrivals = generate_traffic(cfg, FlowSizeDist::hadoop());
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].start, arrivals[i].start);
  }
  for (const auto& fa : arrivals) {
    EXPECT_LT(fa.start, cfg.duration);
    EXPECT_LT(fa.src_host, cfg.num_hosts);
    EXPECT_LT(fa.dst_host, cfg.num_hosts);
    EXPECT_NE(fa.src_host, fa.dst_host);
    EXPECT_GT(fa.size, 0);
  }
}

TEST(TrafficGen, LoadMatchesTarget) {
  TrafficGenConfig cfg;
  cfg.load = 0.4;
  cfg.num_hosts = 64;
  cfg.host_bandwidth_bps = 10e9;
  cfg.duration = 50 * kMilli;
  cfg.seed = 11;
  const FlowSizeDist dist = FlowSizeDist::web_search();
  const auto arrivals = generate_traffic(cfg, dist);
  double bytes = 0.0;
  for (const auto& fa : arrivals) bytes += static_cast<double>(fa.size);
  const double offered_bps =
      bytes * 8.0 / (static_cast<double>(cfg.duration) / 1e9);
  const double capacity = cfg.host_bandwidth_bps * cfg.num_hosts;
  EXPECT_NEAR(offered_bps / capacity, cfg.load, 0.08);
}

TEST(TrafficGen, RejectsBadConfig) {
  TrafficGenConfig cfg;
  cfg.num_hosts = 1;
  EXPECT_THROW(generate_traffic(cfg, FlowSizeDist::hadoop()),
               std::invalid_argument);
  cfg.num_hosts = 4;
  cfg.load = 1.5;
  EXPECT_THROW(generate_traffic(cfg, FlowSizeDist::hadoop()),
               std::invalid_argument);
}

}  // namespace
}  // namespace pint
