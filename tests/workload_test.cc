#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "workload/flow_size_dist.h"
#include "workload/zipf.h"
#include "workload/traffic_gen.h"

namespace pint {
namespace {

TEST(FlowSizeDist, DecilesMatchSampling) {
  const FlowSizeDist dist = FlowSizeDist::web_search();
  Rng rng(1);
  std::vector<Bytes> samples;
  const int n = 200000;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(dist.sample(rng));
  std::sort(samples.begin(), samples.end());
  // Each decile of the sample should approximate the configured decile.
  for (int d = 1; d <= 9; ++d) {
    const Bytes sampled = samples[static_cast<std::size_t>(
        n * (d / 10.0))];
    const Bytes configured = dist.deciles()[d - 1];
    EXPECT_NEAR(static_cast<double>(sampled) / configured, 1.0, 0.1)
        << "decile " << d;
  }
}

TEST(FlowSizeDist, PaperTickMarks) {
  const FlowSizeDist ws = FlowSizeDist::web_search();
  EXPECT_EQ(ws.deciles().front(), 7'000);
  EXPECT_EQ(ws.deciles().back(), 30'000'000);
  const FlowSizeDist hd = FlowSizeDist::hadoop();
  EXPECT_EQ(hd.deciles().front(), 324);
  EXPECT_EQ(hd.deciles().back(), 10'000'000);
}

TEST(FlowSizeDist, HadoopIsMostlySmall) {
  // Facebook Hadoop: >half the flows are sub-KB (paper Section 7 notes many
  // single-packet flows).
  const FlowSizeDist dist = FlowSizeDist::hadoop();
  Rng rng(3);
  int small = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) small += (dist.sample(rng) < 1000);
  EXPECT_GT(small, n / 2);
}

TEST(FlowSizeDist, MeanIsFinite) {
  EXPECT_GT(FlowSizeDist::web_search().mean(), 1e5);  // MB-scale mean
  EXPECT_GT(FlowSizeDist::hadoop().mean(), 100.0);
  EXPECT_LT(FlowSizeDist::hadoop().mean(),
            FlowSizeDist::web_search().mean());
}

TEST(FlowSizeDist, RejectsBadDeciles) {
  EXPECT_THROW(FlowSizeDist("bad", {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(FlowSizeDist("bad", {10, 9, 8, 7, 6, 5, 4, 3, 2, 1}),
               std::invalid_argument);
}

TEST(TrafficGen, ArrivalsSortedAndInHorizon) {
  TrafficGenConfig cfg;
  cfg.load = 0.5;
  cfg.num_hosts = 16;
  cfg.duration = 5 * kMilli;
  const auto arrivals = generate_traffic(cfg, FlowSizeDist::hadoop());
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_LE(arrivals[i - 1].start, arrivals[i].start);
  }
  for (const auto& fa : arrivals) {
    EXPECT_LT(fa.start, cfg.duration);
    EXPECT_LT(fa.src_host, cfg.num_hosts);
    EXPECT_LT(fa.dst_host, cfg.num_hosts);
    EXPECT_NE(fa.src_host, fa.dst_host);
    EXPECT_GT(fa.size, 0);
  }
}

TEST(TrafficGen, LoadMatchesTarget) {
  TrafficGenConfig cfg;
  cfg.load = 0.4;
  cfg.num_hosts = 64;
  cfg.host_bandwidth_bps = 10e9;
  cfg.duration = 50 * kMilli;
  cfg.seed = 11;
  const FlowSizeDist dist = FlowSizeDist::web_search();
  const auto arrivals = generate_traffic(cfg, dist);
  double bytes = 0.0;
  for (const auto& fa : arrivals) bytes += static_cast<double>(fa.size);
  const double offered_bps =
      bytes * 8.0 / (static_cast<double>(cfg.duration) / 1e9);
  const double capacity = cfg.host_bandwidth_bps * cfg.num_hosts;
  EXPECT_NEAR(offered_bps / capacity, cfg.load, 0.08);
}

TEST(TrafficGen, RejectsBadConfig) {
  TrafficGenConfig cfg;
  cfg.num_hosts = 1;
  EXPECT_THROW(generate_traffic(cfg, FlowSizeDist::hadoop()),
               std::invalid_argument);
  cfg.num_hosts = 4;
  cfg.load = 1.5;
  EXPECT_THROW(generate_traffic(cfg, FlowSizeDist::hadoop()),
               std::invalid_argument);
}

// ---- Statistical closeness: the generators must actually produce the
// ---- distributions they claim, not just plausible-looking numbers.

TEST(WorkloadStats, SampledCdfIsKolmogorovCloseToTable) {
  // One-sided empirical check at every table knot: |F_n(size) - F(size)|
  // must stay within a KS-style band. 200k samples put the 1% critical
  // value near 0.0036; 0.01 leaves slack for log-linear interpolation.
  for (const FlowSizeDist& dist :
       {FlowSizeDist::web_search(), FlowSizeDist::hadoop()}) {
    Rng rng(42);
    const int n = 200'000;
    std::vector<Bytes> samples;
    samples.reserve(n);
    for (int i = 0; i < n; ++i) samples.push_back(dist.sample(rng));
    std::sort(samples.begin(), samples.end());
    for (const CdfPoint& knot : dist.cdf()) {
      const auto below = std::upper_bound(samples.begin(), samples.end(),
                                          knot.size) -
                         samples.begin();
      const double empirical = static_cast<double>(below) / n;
      EXPECT_NEAR(empirical, knot.cum_prob, 0.01)
          << dist.name() << " at size " << knot.size;
    }
  }
}

TEST(WorkloadStats, PoissonInterArrivalsAreExponential) {
  // Poisson process => i.i.d. exponential gaps: mean ~= horizon/N and the
  // coefficient of variation ~= 1 (a periodic generator would give ~0, a
  // bursty one >> 1). Both are strong fingerprints at N ~ thousands.
  TrafficGenConfig cfg;
  cfg.load = 0.5;
  cfg.num_hosts = 32;
  cfg.duration = 200 * kMilli;
  cfg.seed = 13;
  const auto arrivals = generate_traffic(cfg, FlowSizeDist::web_search());
  ASSERT_GT(arrivals.size(), 1000u);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(static_cast<double>(arrivals[i].start) -
                   static_cast<double>(arrivals[i - 1].start));
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  const double expected_mean =
      static_cast<double>(cfg.duration) / static_cast<double>(arrivals.size());
  EXPECT_NEAR(mean / expected_mean, 1.0, 0.1);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.1);  // CV of an exponential is 1
}

TEST(WorkloadStats, ZipfRankFrequencySlopeMatchesSkew) {
  // log f(r) vs log r must be a line of slope -s. Least-squares fit over
  // the 20 most popular ranks (each with thousands of hits at N=400k).
  const double s = 1.2;
  const std::uint64_t n = 1000;
  ZipfDist zipf(n, s);
  Rng rng(99);
  std::vector<std::uint64_t> hits(n, 0);
  const int samples = 400'000;
  for (int i = 0; i < samples; ++i) ++hits[zipf.sample(rng) - 1];
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const int top = 20;
  for (int r = 1; r <= top; ++r) {
    ASSERT_GT(hits[r - 1], 100u) << "rank " << r;
    const double x = std::log(static_cast<double>(r));
    const double y = std::log(static_cast<double>(hits[r - 1]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double slope = (top * sxy - sx * sy) / (top * sxx - sx * sx);
  EXPECT_NEAR(slope, -s, 0.1);
}

TEST(WorkloadStats, ZipfPairSkewConcentratesTraffic) {
  // With pair-popularity skew the hottest ordered pair must carry a far
  // larger flow share than the uniform 1/(H*(H-1)) baseline.
  TrafficGenConfig cfg;
  cfg.load = 0.5;
  cfg.num_hosts = 16;
  cfg.duration = 100 * kMilli;
  cfg.seed = 21;
  cfg.zipf_s = 1.2;
  const auto arrivals = generate_traffic(cfg, FlowSizeDist::hadoop());
  ASSERT_GT(arrivals.size(), 500u);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> count;
  for (const auto& fa : arrivals) {
    EXPECT_NE(fa.src_host, fa.dst_host);
    ++count[{fa.src_host, fa.dst_host}];
  }
  std::size_t hottest = 0;
  for (const auto& [pair, c] : count) hottest = std::max(hottest, c);
  const double share =
      static_cast<double>(hottest) / static_cast<double>(arrivals.size());
  const double uniform_share = 1.0 / (16.0 * 15.0);  // ~0.4%
  EXPECT_GT(share, 10.0 * uniform_share);
}

}  // namespace
}  // namespace pint
