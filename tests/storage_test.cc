// Tests for the Recording Module storage manager, the INT-spec wire model,
// and the LT-code comparator.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "baselines/int_spec.h"
#include "coding/lt_code.h"
#include "common/rng.h"
#include "pint/recording_store.h"

namespace pint {
namespace {

// --- recording store ---------------------------------------------------------

struct FakeState {
  std::uint64_t flow = 0;
  std::size_t bytes = 100;
};

RecordingStore<FakeState> make_store(std::size_t capacity) {
  return RecordingStore<FakeState>(
      capacity, [](std::uint64_t f) { return FakeState{f, 100}; },
      [](const FakeState& s) { return s.bytes; });
}

TEST(RecordingStore, CreatesAndFinds) {
  auto store = make_store(0);
  FakeState& s = store.touch(42);
  EXPECT_EQ(s.flow, 42u);
  EXPECT_EQ(store.flows(), 1u);
  EXPECT_NE(store.find(42), nullptr);
  EXPECT_EQ(store.find(43), nullptr);
}

TEST(RecordingStore, EvictsLruWhenOverCapacity) {
  auto store = make_store(250);  // fits two 100B flows
  store.touch(1);
  store.touch(2);
  store.touch(1);  // 1 is now more recent than 2
  store.touch(3);  // must evict 2
  EXPECT_EQ(store.flows(), 2u);
  EXPECT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(2), nullptr);
  EXPECT_NE(store.find(3), nullptr);
  EXPECT_EQ(store.evictions(), 1u);
}

TEST(RecordingStore, GrowingStateReaccounted) {
  auto store = make_store(100'000);  // bounded: sizes refresh per touch
  FakeState& s = store.touch(7);
  EXPECT_EQ(store.used_bytes(), 100u);
  s.bytes = 500;
  store.touch(7);
  EXPECT_EQ(store.used_bytes(), 500u);
  EXPECT_EQ(store.created(), 1u);  // no re-creation
}

TEST(RecordingStore, UnboundedStoreKeepsCreationSizes) {
  // With no capacity there is nothing to evict, so touch() deliberately
  // skips the per-touch size walk (hot-path cost for a disabled feature);
  // used_bytes() reflects creation-time sizes.
  auto store = make_store(0);
  FakeState& s = store.touch(7);
  s.bytes = 500;
  store.touch(7);
  EXPECT_EQ(store.used_bytes(), 100u);
  // put() replaces the entry wholesale and does re-account.
  std::ignore = store.put(7, FakeState{7, 300});
  EXPECT_EQ(store.used_bytes(), 300u);
}

TEST(RecordingStore, ShrinkingStateReaccountedExplicitly) {
  // Regression: the old re-accounting (`used_ += now - bytes`) leaned on
  // unsigned wraparound when a state shrank below its prior size — path
  // decoders do exactly that as candidate sets are filtered.
  auto store = make_store(100'000);
  FakeState& s = store.touch(7);
  EXPECT_EQ(store.used_bytes(), 100u);
  s.bytes = 40;  // state shrank
  store.touch(7);
  EXPECT_EQ(store.used_bytes(), 40u);
  EXPECT_EQ(store.created(), 1u);
  // A second flow keeps summing correctly after the shrink.
  store.touch(8);
  EXPECT_EQ(store.used_bytes(), 140u);
}

TEST(RecordingStore, ShrinkBelowCapacityCancelsEvictionPressure) {
  auto store = make_store(250);
  FakeState& a = store.touch(1);
  store.touch(2);
  a.bytes = 10;
  store.touch(1);  // re-account: 10 + 100
  store.touch(3);  // 210 total: fits, nothing evicted
  EXPECT_EQ(store.flows(), 3u);
  EXPECT_EQ(store.evictions(), 0u);
  EXPECT_EQ(store.used_bytes(), 210u);
}

TEST(RecordingStore, NeverEvictsFlowBeingTouched) {
  RecordingStore<FakeState> store(
      50,  // smaller than a single flow
      [](std::uint64_t f) { return FakeState{f, 100}; },
      [](const FakeState& s) { return s.bytes; });
  store.touch(1);  // over capacity but must survive
  EXPECT_NE(store.find(1), nullptr);
}

TEST(RecordingStore, SoleOversizedFlowKeptAndFlagged) {
  // A single protected entry above the whole ceiling is deliberately kept
  // (evicting the flow being updated would livelock); the condition is
  // surfaced through over_budget() and clears once the state shrinks back.
  RecordingStore<FakeState> store(
      50, [](std::uint64_t f) { return FakeState{f, 100}; },
      [](const FakeState& s) { return s.bytes; });
  FakeState& s = store.touch(1);
  EXPECT_EQ(store.flows(), 1u);
  EXPECT_EQ(store.used_bytes(), 100u);
  EXPECT_TRUE(store.over_budget());
  EXPECT_EQ(store.evictions(), 0u);
  s.bytes = 30;
  store.touch(1);
  EXPECT_FALSE(store.over_budget());
  EXPECT_EQ(store.used_bytes(), 30u);
}

TEST(RecordingStore, PeakExcludesMidTouchTransient) {
  // Degenerate share (smaller than one entry): inserting flow 2 while the
  // oversized flow 1 is still resident transiently accounts both, but the
  // peak is recorded after the eviction pass, so the documented
  // "peak <= capacity + one entry" bound holds even here.
  RecordingStore<FakeState> store(
      50, [](std::uint64_t f) { return FakeState{f, 100}; },
      [](const FakeState& s) { return s.bytes; });
  store.touch(1);
  store.touch(2);  // mid-touch used_ hits 200; flow 1 evicted before peak
  EXPECT_EQ(store.used_bytes(), 100u);
  EXPECT_EQ(store.peak_used_bytes(), 100u);
  EXPECT_LE(store.peak_used_bytes(),
            store.capacity_bytes() + store.max_entry_bytes());
}

TEST(RecordingStore, OversizedNewcomerEvictsRestThenFlags) {
  auto store = make_store(250);
  store.touch(1);
  store.touch(2);
  FakeState& big = store.touch(3);
  big.bytes = 400;
  store.touch(3);  // re-account: over ceiling; 1 and 2 must go
  EXPECT_EQ(store.flows(), 1u);
  EXPECT_EQ(store.evictions(), 2u);
  EXPECT_EQ(store.used_bytes(), 400u);
  EXPECT_TRUE(store.over_budget());
}

TEST(RecordingStore, RefreshBumpsWithoutCreating) {
  auto store = make_store(250);
  EXPECT_EQ(store.refresh(9), nullptr);  // unknown flow: not created
  EXPECT_EQ(store.flows(), 0u);
  store.touch(1);
  store.touch(2);
  EXPECT_NE(store.refresh(1), nullptr);  // 1 is now most recent
  store.touch(3);                        // evicts 2, not 1
  EXPECT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(2), nullptr);
}

TEST(RecordingStore, ThrowingFactoryLeavesStoreUntouched) {
  auto store = make_store(250);
  store.touch(1);
  EXPECT_THROW(store.touch(2,
                           []() -> FakeState {
                             throw std::runtime_error("recorder factory");
                           }),
               std::runtime_error);
  EXPECT_EQ(store.flows(), 1u);
  EXPECT_EQ(store.used_bytes(), 100u);
  // No dangling LRU node: later eviction passes walk only real entries.
  store.touch(3);
  store.touch(4);  // 300 bytes total: evicts 1
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.flows(), 2u);
  // Retrying the failed key works normally.
  EXPECT_EQ(store.touch(2).flow, 2u);
}

TEST(RecordingStore, PutInsertsOrOverwritesWithAccounting) {
  RecordingStore<FakeState> store(0,
                                  [](const FakeState& s) { return s.bytes; });
  std::ignore = store.put(1, FakeState{1, 100});
  EXPECT_EQ(store.used_bytes(), 100u);
  // overwrite re-accounts, no re-create
  std::ignore = store.put(1, FakeState{1, 30});
  EXPECT_EQ(store.used_bytes(), 30u);
  EXPECT_EQ(store.flows(), 1u);
  EXPECT_EQ(store.created(), 1u);
}

TEST(RecordingStore, FactorylessStoreUsesTouchSiteFactory) {
  RecordingStore<FakeState> store(
      0, [](const FakeState& s) { return s.bytes; });
  FakeState& s = store.touch(5, [] { return FakeState{5, 64}; });
  EXPECT_EQ(s.flow, 5u);
  EXPECT_EQ(store.used_bytes(), 64u);
  EXPECT_THROW(store.touch(6), std::logic_error);  // no stored factory
}

TEST(RecordingStore, PeakStaysWithinCeilingPlusOneEntry) {
  // Heavy-tailed churn: sizes vary 40..360 bytes, most keys are one-shot
  // mice. The transient overshoot of the accounting must never exceed the
  // ceiling by more than the largest single entry.
  const std::size_t kCeiling = 5000;
  RecordingStore<FakeState> store(
      kCeiling,
      [](std::uint64_t f) { return FakeState{f, 40 + (f * 17) % 321}; },
      [](const FakeState& s) { return s.bytes; });
  for (std::uint64_t i = 0; i < 20000; ++i) {
    store.touch(1000 + i);               // one-shot mouse
    FakeState& s = store.touch(i % 5);   // hot flows refresh constantly
    if (i % 100 == 0) s.bytes += 8;      // ...and slowly grow
  }
  EXPECT_GT(store.evictions(), 0u);
  EXPECT_LE(store.used_bytes(), kCeiling + store.max_entry_bytes());
  EXPECT_LE(store.peak_used_bytes(), kCeiling + store.max_entry_bytes());
  // The few hot flows survive the churn.
  for (std::uint64_t f = 0; f < 5; ++f) EXPECT_NE(store.find(f), nullptr);
}

TEST(RecordingStore, EraseFreesBytes) {
  auto store = make_store(0);
  store.touch(1);
  store.touch(2);
  EXPECT_TRUE(store.erase(1));
  EXPECT_FALSE(store.erase(1));
  EXPECT_EQ(store.used_bytes(), 100u);
  EXPECT_EQ(store.flows(), 1u);
}

TEST(RecordingStore, ManyFlowsChurn) {
  auto store = make_store(100 * 100);  // 100 flows
  for (std::uint64_t f = 0; f < 1000; ++f) store.touch(f);
  EXPECT_EQ(store.flows(), 100u);
  EXPECT_EQ(store.evictions(), 900u);
  // The survivors are the 100 most recent.
  for (std::uint64_t f = 900; f < 1000; ++f) EXPECT_NE(store.find(f), nullptr);
  EXPECT_EQ(store.find(0), nullptr);
}

// --- INT spec ----------------------------------------------------------------

TEST(IntSpec, BitmapAndValueCount) {
  IntInstructionHeader h;
  h.request(IntInstruction::kSwitchId);
  h.request(IntInstruction::kQueueOccupancy);
  h.request(IntInstruction::kEgressTxUtilization);
  EXPECT_TRUE(h.requests(IntInstruction::kSwitchId));
  EXPECT_FALSE(h.requests(IntInstruction::kHopLatency));
  EXPECT_EQ(h.values_per_hop(), 3u);
}

TEST(IntSpec, PushPopRoundTrip) {
  IntInstructionHeader h;
  h.request(IntInstruction::kSwitchId);
  h.request(IntInstruction::kHopLatency);
  IntPacketState pkt(h);
  for (std::uint32_t hop = 1; hop <= 5; ++hop) {
    IntHopView view;
    view.switch_id = 100 + hop;
    view.hop_latency = 1000 * hop;
    ASSERT_TRUE(pkt.push_hop(view));
  }
  // 8B header + 5 hops * 2 values * 4B = 48B (the paper's Fig. 1 midpoint).
  EXPECT_EQ(pkt.wire_bytes(), 48);
  const auto records = pkt.pop_all();
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), 5u);
  for (std::uint32_t hop = 1; hop <= 5; ++hop) {
    EXPECT_EQ((*records)[hop - 1].values[0], 100 + hop);     // switch id
    EXPECT_EQ((*records)[hop - 1].values[1], 1000 * hop);    // latency
  }
}

TEST(IntSpec, MaxHopsEnforced) {
  IntInstructionHeader h;
  h.request(IntInstruction::kSwitchId);
  h.max_hops = 2;
  IntPacketState pkt(h);
  EXPECT_TRUE(pkt.push_hop({}));
  EXPECT_TRUE(pkt.push_hop({}));
  EXPECT_FALSE(pkt.push_hop({}));  // spec overflow rule: stop appending
  EXPECT_EQ(pkt.header().hop_count, 2u);
}

TEST(IntSpec, OverheadMatchesSection2Numbers) {
  IntInstructionHeader one;
  one.request(IntInstruction::kSwitchId);
  IntPacketState p1(one);
  for (int i = 0; i < 5; ++i) p1.push_hop({});
  EXPECT_EQ(p1.wire_bytes(), 28);  // "minimum space required ... 28 bytes"

  IntInstructionHeader five;
  for (unsigned b = 0; b < 5; ++b) five.request(static_cast<IntInstruction>(b));
  IntPacketState p5(five);
  for (int i = 0; i < 5; ++i) p5.push_hop({});
  EXPECT_EQ(p5.wire_bytes(), 108);
}

// --- LT codes ----------------------------------------------------------------

TEST(LtCode, SolitonCdfIsMonotoneAndComplete) {
  RobustSoliton rs(50);
  const auto& cdf = rs.cdf();
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i], cdf[i - 1]);
  }
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(LtCode, DegreeOneExistsOftenEnough) {
  // The soliton distribution must emit degree-1 packets to bootstrap.
  RobustSoliton rs(50);
  GlobalHash h(1);
  int degree_one = 0;
  for (PacketId p = 0; p < 10000; ++p) degree_one += (rs.degree(h, p) == 1);
  EXPECT_GT(degree_one, 100);
}

TEST(LtCode, DecodesNearOptimal) {
  const unsigned k = 50;
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(900 + i);
  double total = 0.0;
  const int reps = 20;
  for (int r = 0; r < reps; ++r) {
    GlobalHash root(7100 + r);
    LtEncoder enc(k, root);
    LtDecoder dec(k, root);
    PacketId p = 1;
    while (!dec.complete() && p < 10000) {
      dec.add_packet(p, enc.encode(p, blocks));
      ++p;
    }
    ASSERT_TRUE(dec.complete());
    EXPECT_EQ(dec.message(), blocks);
    total += static_cast<double>(p - 1);
  }
  // LT overhead is typically within ~2x of k for small k (asymptotically
  // k + O(sqrt(k) log^2)); the point is it beats coupon collecting (k ln k
  // ~ 196 here) because a single encoder controls the degree distribution.
  EXPECT_LT(total / reps, 150.0);
}

TEST(LtCode, EncoderDecoderAgreeOnNeighbors) {
  GlobalHash root(8200);
  LtEncoder a(30, root), b(30, root);
  for (PacketId p = 1; p <= 500; ++p) {
    EXPECT_EQ(a.neighbors(p), b.neighbors(p));
  }
}

}  // namespace
}  // namespace pint
