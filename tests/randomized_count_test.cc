// Tests for randomized counting (Section 4.3) and collection-overhead
// accounting (Section 2, item 3).
#include <gtest/gtest.h>

#include "pint/collection.h"
#include "pint/randomized_count.h"

namespace pint {
namespace {

TEST(RandomizedCount, UnbiasedAcrossPackets) {
  RandomizedCountConfig cfg;
  cfg.bits = 5;
  cfg.a = 1.5;
  RandomizedCountQuery query(cfg, 42);
  const unsigned k = 20;
  const unsigned true_events = 12;  // hops 1..12 fire
  double sum = 0.0;
  const int packets = 40000;
  for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
    Digest c = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      c = query.encode_step(p, i, c, i <= true_events);
    }
    sum += query.decode(c);
  }
  EXPECT_NEAR(sum / packets, static_cast<double>(true_events),
              true_events * 0.05);
}

TEST(RandomizedCount, ZeroEventsGiveZero) {
  RandomizedCountQuery query({4, 1.5}, 7);
  Digest c = 0;
  for (HopIndex i = 1; i <= 30; ++i) c = query.encode_step(1, i, c, false);
  EXPECT_EQ(c, 0u);
  EXPECT_DOUBLE_EQ(query.decode(0), 0.0);
}

TEST(RandomizedCount, FourBitsCountFarBeyondSixteen) {
  // The point of Morris counting: 4 bits of exponent represent counts far
  // beyond 2^4 (here a=1.5: max ~875).
  RandomizedCountQuery query({4, 1.5}, 9);
  EXPECT_GT(query.max_count(), 500.0);
  // And the estimate is monotone in the exponent.
  double prev = -1.0;
  for (Digest c = 0; c <= 15; ++c) {
    EXPECT_GT(query.decode(c), prev);
    prev = query.decode(c);
  }
}

TEST(RandomizedCount, SaturatesInsteadOfWrapping) {
  RandomizedCountQuery query({2, 1.2}, 11);  // max code 3
  Digest c = 0;
  for (PacketId p = 1; p <= 10; ++p) {
    for (HopIndex i = 1; i <= 200; ++i) c = query.encode_step(p, i, c, true);
  }
  EXPECT_LE(c, 3u);
}

TEST(RandomizedCount, DeterministicPerPacket) {
  RandomizedCountQuery query({4, 1.5}, 13);
  for (PacketId p = 1; p <= 200; ++p) {
    Digest a = 0, b = 0;
    for (HopIndex i = 1; i <= 10; ++i) {
      a = query.encode_step(p, i, a, true);
      b = query.encode_step(p, i, b, true);
    }
    ASSERT_EQ(a, b);
  }
}

TEST(Collection, IntReportsGrowWithPath) {
  CollectorReportSpec spec;
  EXPECT_EQ(int_report_bytes(spec, 5, 3), 16 + 68);
  EXPECT_EQ(int_report_bytes(spec, 10, 3), 16 + 128);
  EXPECT_EQ(pint_report_bytes(spec, 16), 16 + 2);
}

TEST(Collection, AccountantComparesDeployments) {
  CollectionAccountant int_acc, pint_acc;
  for (int i = 0; i < 1000; ++i) {
    int_acc.record_int(/*hops=*/5, /*values=*/3);
    pint_acc.record_pint(/*bits=*/16);
  }
  EXPECT_EQ(int_acc.packets(), 1000u);
  // Paper Section 3.4: "compared with INT, we send fewer bytes from the
  // sink to be analyzed" — here 84B vs 18B per packet.
  EXPECT_GT(int_acc.bytes_per_packet(), 4.0 * pint_acc.bytes_per_packet());
}

}  // namespace
}  // namespace pint
