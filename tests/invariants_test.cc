// Cross-module invariant tests: simulator FIFO ordering, INT-spec random
// round-trips, fragmentation under every scheme family, and the framework's
// frequent-values surface.
#include <gtest/gtest.h>

#include <numeric>

#include "baselines/int_spec.h"
#include "coding/fragmentation.h"
#include "common/rng.h"
#include "pint/framework.h"
#include "sim/simulator.h"
#include "topology/graph.h"

namespace pint {
namespace {

TEST(SimInvariants, SingleFlowDeliversInOrderWithoutDrops) {
  // FIFO queues + single path => no reordering. Verify via the receiver's
  // out-of-order buffer never being needed: the flow completes with zero
  // retransmits and exactly size/mtu packets.
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  SimConfig cfg;
  cfg.host_bandwidth_bps = 10e9;
  cfg.fabric_bandwidth_bps = 10e9;
  cfg.mtu_payload = 1000;
  cfg.transport = TransportKind::kTcpReno;
  Simulator sim(g, {true, true, false, false}, cfg);
  const Bytes size = 500'000;
  const auto id = sim.add_flow(0, 1, size, 0);
  sim.run_until(1 * kSecond);
  const FlowStats& st = sim.flow_stats()[id];
  ASSERT_TRUE(st.done);
  EXPECT_EQ(st.retransmits, 0u);
  EXPECT_EQ(st.packets_sent, static_cast<std::uint64_t>(size / 1000));
  EXPECT_EQ(sim.counters().packets_dropped, 0u);
}

TEST(SimInvariants, TelemetryNeverChangesDeliveredBytes) {
  // Telemetry must be transparent to the transport: same flow completes
  // with the same payload bytes under every mode.
  Graph g(4);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 1);
  for (TelemetryMode mode :
       {TelemetryMode::kNone, TelemetryMode::kInt, TelemetryMode::kPint}) {
    SimConfig cfg;
    cfg.telemetry = mode;
    cfg.transport = TransportKind::kTcpReno;
    Simulator sim(g, {true, true, false, false}, cfg);
    const auto id = sim.add_flow(0, 1, 200'000, 0);
    sim.run_until(1 * kSecond);
    ASSERT_TRUE(sim.flow_stats()[id].done) << static_cast<int>(mode);
  }
}

class IntSpecSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(IntSpecSweep, RandomBitmapRoundTrips) {
  const auto bitmap = static_cast<std::uint8_t>(GetParam());
  IntInstructionHeader h;
  h.instruction_bitmap = bitmap;
  h.max_hops = 32;
  IntPacketState pkt(h);
  Rng rng(bitmap);
  std::vector<IntHopView> views;
  for (int hop = 0; hop < 7; ++hop) {
    IntHopView v;
    v.switch_id = static_cast<std::uint32_t>(rng.next());
    v.hop_latency = static_cast<std::uint32_t>(rng.next());
    v.queue_occupancy = static_cast<std::uint32_t>(rng.next());
    v.egress_tx_utilization = static_cast<std::uint32_t>(rng.next());
    views.push_back(v);
    ASSERT_TRUE(pkt.push_hop(v));
  }
  const auto records = pkt.pop_all();
  ASSERT_TRUE(records.has_value());
  ASSERT_EQ(records->size(), views.size());
  // Spot-check: each record's values match the view in bitmap order.
  for (std::size_t hop = 0; hop < views.size(); ++hop) {
    std::size_t vi = 0;
    for (unsigned b = 0; b < 8; ++b) {
      if (!((bitmap >> b) & 1)) continue;
      EXPECT_EQ((*records)[hop].values[vi],
                views[hop].value_of(static_cast<IntInstruction>(b)));
      ++vi;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bitmaps, IntSpecSweep,
                         ::testing::Values(0x01u, 0x03u, 0x55u, 0xAAu, 0xFFu));

class FragSchemeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FragSchemeSweep, FragmentationUnderEverySchemeFamily) {
  SchemeConfig cfg;
  const unsigned k = 5;
  switch (GetParam()) {
    case 0: cfg = make_baseline_scheme(); break;
    case 1: cfg = make_hybrid_scheme(k); break;
    case 2: cfg = make_multilayer_scheme(k); break;
    case 3: cfg = make_fast(make_multilayer_scheme(k)); break;
    default: FAIL();
  }
  GlobalHash root(6100 + GetParam());
  FragmentedCodec codec(k, /*q=*/32, /*b=*/8, cfg, root);
  std::vector<std::uint64_t> values(k);
  Rng rng(GetParam());
  for (auto& v : values) v = rng.next() & 0xFFFFFFFF;
  PacketId p = 1;
  while (!codec.complete() && p < 300000) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      d = codec.encode_step(p, i, d, values[i - 1]);
    }
    codec.add_packet(p, d);
    ++p;
  }
  ASSERT_TRUE(codec.complete());
  EXPECT_EQ(codec.message(), values);
}

INSTANTIATE_TEST_SUITE_P(Schemes, FragSchemeSweep,
                         ::testing::Values(0, 1, 2, 3));

TEST(FrameworkSurface, FrequentValuesReachable) {
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  auto fw = PintFramework::Builder()
                .global_bit_budget(16)
                .add_query(make_dynamic_query(
                    "latency", std::string(extractor::kHopLatency), 16, 1.0,
                    tuning))
                .build_or_throw();

  FiveTuple tuple{1, 2, 3, 4, 6};
  const std::uint64_t fkey = flow_key(tuple, FlowDefinition::kFiveTuple);
  const unsigned k = 3;
  for (PacketId p = 1; p <= 20000; ++p) {
    Packet pkt;
    pkt.id = p;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view(i);
      view.set(metric::kHopLatencyNs, (i == 2) ? 512.0 : 1.0 + (p % 97));
      fw->at_switch(pkt, i, view);
    }
    fw->at_sink(pkt, k);
  }
  const auto frequent = fw->latency_frequent_values(fkey, 2, 0.5);
  ASSERT_FALSE(frequent.empty());
  // 512 compresses and decodes to within the multiplicative guarantee.
  EXPECT_NEAR(static_cast<double>(frequent[0]), 512.0, 30.0);
  EXPECT_TRUE(fw->latency_frequent_values(999999, 1, 0.5).empty());
}

}  // namespace
}  // namespace pint
