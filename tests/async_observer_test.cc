// Async observer delivery (Builder::async_observers + ShardedSink relay
// thread). Load-bearing checks: (1) under kBlock, delivery is loss-free
// and per-shard ordered — the captured stream canonicalizes to exactly the
// synchronous stream; (2) under kDropNewest with a tiny ring and a slow
// observer, drop counters are exact (delivered + dropped == every event the
// frameworks emitted); (3) the SinkReport buffers stay byte-identical to
// the single-threaded sink — async only moves callbacks, never results;
// (4) flush() drains the relay, so post-flush observer state is complete.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
constexpr std::size_t kFlows = 96;
constexpr std::size_t kPacketsPerFlow = 20;

PintFramework::Builder three_query_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xC0FFEE)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow % 7);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow % 11);
  t.src_port = static_cast<std::uint16_t>(1000 + flow);
  t.dst_port = 80;
  return t;
}

std::vector<Packet> make_encoded_traffic() {
  const auto network = three_query_builder().build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kFlows * kPacketsPerFlow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < kPacketsPerFlow; ++j) {
    for (std::size_t f = 0; f < kFlows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      packets.push_back(std::move(p));
    }
  }
  for (Packet& p : packets) {
    const std::size_t f = (p.id - 1) % kFlows;
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>(f % 8 + i));
      view.set(metric::kHopLatencyNs, 100.0 * i + static_cast<double>(f));
      view.set(metric::kLinkUtilization, 0.1 * i + 0.01 * (f % 10));
      network->at_switch(p, i, view);
    }
  }
  return packets;
}

// Captures the full observer stream. Registered through
// ShardedSink::add_observer, so callbacks arrive serialized (sync mode) or
// from the single relay thread (async mode) — no internal locking needed.
struct RecordingObserver : SinkObserver {
  struct Rec {
    SinkContext ctx;
    std::string query;
    bool path_event = false;
    Observation obs{};
    std::vector<SwitchId> path;
  };
  std::vector<Rec> records;
  std::chrono::microseconds delay{0};  // simulated per-event observer cost

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    records.push_back({ctx, std::string(query), false, obs, {}});
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    records.push_back({ctx, std::string(query), true, {}, path});
  }
};

// Canonical bytes: stable-sorted by packet id (each packet's events come
// from exactly one shard, in order), then re-encoded with the codec.
std::vector<std::uint8_t> canonical_bytes(
    std::vector<RecordingObserver::Rec> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const auto& a, const auto& b) {
                     return a.ctx.packet_id < b.ctx.packet_id;
                   });
  ReportEncoder enc;
  for (const auto& rec : records) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.obs);
    }
  }
  return enc.finish();
}

// Runs the traffic through a ShardedSink built from `builder`, returns the
// captured observer stream (flushed).
RecordingObserver run_sink(const PintFramework::Builder& builder,
                           unsigned shards,
                           std::span<const Packet> packets,
                           std::span<SinkReport> reports,
                           std::chrono::microseconds delay =
                               std::chrono::microseconds{0}) {
  RecordingObserver obs;
  obs.delay = delay;
  ShardedSink sink(builder, shards);
  sink.add_observer(&obs);
  sink.submit(packets, kHops, reports);
  sink.flush();
  if (sink.async_observers()) {
    // Post-flush, the relay has delivered everything it will ever deliver
    // for these packets; counters must agree with what we saw.
    const TransportCounters t = sink.observer_counters();
    EXPECT_EQ(t.observer_events, obs.records.size());
  }
  return obs;
}

TEST(AsyncObservers, BlockModeIsLossFreeAndCanonicallyIdentical) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs =
      run_sink(builder, 2, packets, sync_reports);
  ASSERT_FALSE(sync_obs.records.empty());

  auto async_builder = three_query_builder();
  async_builder.async_observers(64, OverflowPolicy::kBlock);
  for (const unsigned shards : {1u, 2u, 4u}) {
    std::vector<SinkReport> reports(packets.size());
    const RecordingObserver async_obs =
        run_sink(async_builder, shards, packets, reports);
    // Loss-free: same number of events, and the canonicalized streams are
    // byte-identical to synchronous delivery.
    EXPECT_EQ(async_obs.records.size(), sync_obs.records.size());
    EXPECT_EQ(canonical_bytes(async_obs.records),
              canonical_bytes(sync_obs.records))
        << shards << " shards";
  }
}

TEST(AsyncObservers, BlockModePreservesPerShardOrder) {
  const std::vector<Packet> packets = make_encoded_traffic();
  auto builder = three_query_builder();
  builder.async_observers(32, OverflowPolicy::kBlock);
  std::vector<SinkReport> reports(packets.size());
  const RecordingObserver obs = run_sink(builder, 4, packets, reports);
  ASSERT_FALSE(obs.records.empty());
  // All of a flow's packets land on one shard and are submitted in
  // ascending packet-id order, so per-shard FIFO delivery implies
  // non-decreasing packet ids within each flow's event stream.
  std::map<std::uint64_t, PacketId> last_seen;  // flow key -> last packet id
  for (const auto& rec : obs.records) {
    if (rec.query != "path") continue;  // one per-flow query suffices
    auto [it, first] = last_seen.try_emplace(rec.ctx.flow, rec.ctx.packet_id);
    if (!first) {
      EXPECT_LE(it->second, rec.ctx.packet_id)
          << "flow " << rec.ctx.flow << " saw events out of order";
      it->second = rec.ctx.packet_id;
    }
  }
}

TEST(AsyncObservers, ReportBuffersStayByteIdentical) {
  const std::vector<Packet> packets = make_encoded_traffic();

  // Single-threaded reference stream.
  const auto baseline = three_query_builder().build_or_throw();
  std::vector<SinkReport> base_reports(packets.size());
  baseline->at_sink(std::span<const Packet>(packets), kHops, base_reports);
  ReportEncoder base_enc;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    base_enc.add(packets[i].id, kHops, base_reports[i]);
  }
  const std::vector<std::uint8_t> base_bytes = base_enc.finish();

  auto builder = three_query_builder();
  builder.async_observers(16, OverflowPolicy::kDropNewest);
  std::vector<SinkReport> reports(packets.size());
  ShardedSink sink(builder, 2);
  sink.submit(packets, kHops, reports);
  sink.flush();
  ReportEncoder enc;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    enc.add(packets[i].id, kHops, reports[i]);
  }
  // Even when the observer ring drops, the *reports* are untouched: the
  // async stage moves callbacks off the packet path, never results.
  EXPECT_EQ(enc.finish(), base_bytes);
}

TEST(AsyncObservers, DropNewestCountsDropsExactly) {
  const std::vector<Packet> packets = make_encoded_traffic();

  // Deterministic ground truth: total events emitted per workload is the
  // synchronous (lossless) event count.
  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs =
      run_sink(three_query_builder(), 2, packets, sync_reports);
  const std::size_t total_events = sync_obs.records.size();
  ASSERT_GT(total_events, 0u);

  // Tiny ring + slow observer: the relay cannot keep up, so kDropNewest
  // must shed — and account for every shed event.
  auto builder = three_query_builder();
  builder.async_observers(2, OverflowPolicy::kDropNewest);
  RecordingObserver obs;
  obs.delay = std::chrono::microseconds{200};
  ShardedSink sink(builder, 2);
  sink.add_observer(&obs);
  sink.submit(packets, kHops, std::span<SinkReport>{});
  sink.flush();
  const TransportCounters t = sink.observer_counters();
  EXPECT_TRUE(t.active);
  // Exactness: delivered + dropped == emitted, and flush() delivered
  // everything that was published.
  EXPECT_EQ(t.observer_events, obs.records.size());
  EXPECT_EQ(t.observer_events + t.observer_drops, total_events);
  EXPECT_GT(t.observer_drops, 0u) << "workload did not pressure the ring";
}

TEST(AsyncObservers, BlockModeNeverDropsUnderPressure) {
  const std::vector<Packet> packets = make_encoded_traffic();
  auto builder = three_query_builder();
  builder.async_observers(2, OverflowPolicy::kBlock);  // 2-deep: constant
                                                       // overflow pressure
  std::vector<SinkReport> reports(packets.size());
  RecordingObserver obs;
  obs.delay = std::chrono::microseconds{50};
  ShardedSink sink(builder, 2);
  sink.add_observer(&obs);
  sink.submit(packets, kHops, reports);
  sink.flush();
  const TransportCounters t = sink.observer_counters();
  EXPECT_EQ(t.observer_drops, 0u);
  EXPECT_EQ(t.observer_events, obs.records.size());
  EXPECT_GT(t.observer_blocked_waits, 0u) << "ring never filled; weak test";

  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs =
      run_sink(three_query_builder(), 2, packets, sync_reports);
  EXPECT_EQ(obs.records.size(), sync_obs.records.size());
}

TEST(AsyncObservers, DropNewestShedsOnlyMinimumPriorityQueries) {
  const std::vector<Packet> packets = make_encoded_traffic();

  // Ground truth per query from a lossless synchronous run.
  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs =
      run_sink(three_query_builder(), 2, packets, sync_reports);
  std::map<std::string, std::size_t> sync_counts;
  for (const auto& rec : sync_obs.records) ++sync_counts[rec.query];
  ASSERT_GT(sync_counts["hpcc"], 0u);

  // Same mix, but path and latency outrank hpcc: under kDropNewest with a
  // starved ring, ONLY the minimum-priority class (hpcc) may be shed.
  // Higher classes block the publisher instead of dropping.
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  auto path_q = make_path_query("path", 8, 1.0, path_tuning);
  path_q.priority = 2;
  auto latency_q = make_dynamic_query("latency",
                                      std::string(extractor::kHopLatency), 8,
                                      15.0 / 16.0, latency_tuning);
  latency_q.priority = 2;
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xC0FFEE)
      .switch_universe(std::move(universe))
      .add_query(path_q)
      .add_query(latency_q)
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  builder.async_observers(2, OverflowPolicy::kDropNewest);
  builder.memory_report_interval_packets(100);

  struct MemoryCounter : SinkObserver {
    std::uint64_t reports = 0;
    void on_memory_report(const MemoryReport&) override { ++reports; }
  };
  RecordingObserver obs;
  obs.delay = std::chrono::microseconds{200};
  MemoryCounter memory;
  ShardedSink sink(builder, 2);
  sink.add_observer(&obs);
  sink.add_observer(&memory);
  sink.submit(packets, kHops, std::span<SinkReport>{});
  sink.flush();

  std::map<std::string, std::size_t> got_counts;
  for (const auto& rec : obs.records) ++got_counts[rec.query];
  // Protected classes are loss-free even while the ring starves...
  EXPECT_EQ(got_counts["path"], sync_counts["path"]);
  EXPECT_EQ(got_counts["latency"], sync_counts["latency"]);
  // ...and every drop is accounted against the sheddable class.
  const TransportCounters t = sink.observer_counters();
  EXPECT_GT(t.observer_drops, 0u) << "workload did not pressure the ring";
  EXPECT_EQ(got_counts["hpcc"] + t.observer_drops, sync_counts["hpcc"]);
  // Memory heartbeats are never sheddable — the drop accounting itself
  // must survive the shedding it reports.
  EXPECT_GE(memory.reports, packets.size() / 100 / 2);
}

TEST(AsyncObservers, CoalescedWakeupsLoseNothingAcrossFlushCycles) {
  // Regression test for the wakeup-coalescing bug class: the relay sleeps
  // between batches and the worker publishes under a deferred-fold counter
  // protocol, so the dangerous schedule is "tiny batch, flush, repeat" —
  // every cycle forces a sleep/wake (or inline-delivery) transition, and a
  // lost wakeup or a stale fold shows up as a hung flush() or a count that
  // lags the submitted traffic. Run the same cycle-chopped workload with a
  // fast observer (worker keeps up: the inline path delivers) and a slow
  // one (ring path + real relay wakeups); both must stay exact after
  // EVERY cycle, not just at the end.
  const std::vector<Packet> packets = make_encoded_traffic();
  std::vector<SinkReport> sync_reports(packets.size());
  const RecordingObserver sync_obs =
      run_sink(three_query_builder(), 2, packets, sync_reports);
  ASSERT_FALSE(sync_obs.records.empty());

  for (const auto delay :
       {std::chrono::microseconds{0}, std::chrono::microseconds{3}}) {
    auto builder = three_query_builder();
    builder.async_observers(64, OverflowPolicy::kBlock);
    RecordingObserver obs;
    obs.delay = delay;
    ShardedSink sink(builder, 2);
    sink.add_observer(&obs);

    const std::span<const Packet> all(packets);
    constexpr std::size_t kCycle = 7;  // odd and tiny: never batch-aligned
    for (std::size_t off = 0; off < all.size(); off += kCycle) {
      const std::size_t n = std::min(kCycle, all.size() - off);
      sink.submit(all.subspan(off, n), kHops);
      sink.flush();
      // flush() has drained the transport: the published counter and the
      // observer's view must agree exactly, mid-stream.
      const TransportCounters t = sink.observer_counters();
      ASSERT_EQ(t.observer_events, obs.records.size())
          << "after submitting " << (off + n) << " packets (delay "
          << delay.count() << "us)";
      ASSERT_EQ(t.observer_drops, 0u);
    }

    // The chopped-up schedule must still produce the exact synchronous
    // stream: same events, same per-shard order.
    EXPECT_EQ(obs.records.size(), sync_obs.records.size());
    EXPECT_EQ(canonical_bytes(obs.records),
              canonical_bytes(sync_obs.records))
        << "delay " << delay.count() << "us";
    std::map<std::uint64_t, PacketId> last_seen;
    for (const auto& rec : obs.records) {
      if (rec.query != "path") continue;
      auto [it, first] =
          last_seen.try_emplace(rec.ctx.flow, rec.ctx.packet_id);
      if (!first) {
        EXPECT_LE(it->second, rec.ctx.packet_id)
            << "flow " << rec.ctx.flow << " reordered across flush cycles";
        it->second = rec.ctx.packet_id;
      }
    }
  }
}

TEST(AsyncObservers, MemoryReportsRideTheRelay) {
  const std::vector<Packet> packets = make_encoded_traffic();
  auto builder = three_query_builder();
  builder.async_observers(256, OverflowPolicy::kBlock)
      .memory_report_interval_packets(100);

  struct MemoryCounter : SinkObserver {
    std::uint64_t reports = 0;
    void on_memory_report(const MemoryReport&) override { ++reports; }
  };
  MemoryCounter counter;
  ShardedSink sink(builder, 2);
  sink.add_observer(&counter);
  sink.submit(packets, kHops, std::span<SinkReport>{});
  sink.flush();
  // Each shard replica heartbeats on its own packet counter; together the
  // shards saw every packet, so at least floor(total/interval) heartbeats
  // were published (skew across shards can only add reports).
  EXPECT_GE(counter.reports, packets.size() / 100 / 2);
}

}  // namespace
}  // namespace pint
