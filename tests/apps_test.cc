#include <gtest/gtest.h>

#include <numeric>

#include "apps/anomaly_detection.h"
#include "apps/load_analysis.h"
#include "apps/microburst.h"
#include "apps/path_conformance.h"
#include "apps/tomography.h"
#include "common/rng.h"
#include "pint/static_aggregation.h"

namespace pint {
namespace {

// --- path conformance --------------------------------------------------------

class ConformanceFixture : public ::testing::Test {
 protected:
  // Decode a 5-hop path enough to be complete, then check policies.
  HashedPathDecoder make_decoder(const std::vector<SwitchId>& path,
                                 PathTracingQuery& query) {
    std::vector<std::uint64_t> universe;
    for (SwitchId s = 1; s <= 100; ++s) universe.push_back(s);
    auto dec =
        query.make_decoder(static_cast<unsigned>(path.size()), universe);
    PacketId p = 1;
    while (!dec.complete()) {
      std::vector<Digest> lanes(1, 0);
      for (HopIndex i = 1; i <= path.size(); ++i) {
        query.encode(p, i, path[i - 1], lanes);
      }
      dec.add_packet(p, lanes);
      ++p;
    }
    return dec;
  }
};

TEST_F(ConformanceFixture, ConformantPathPasses) {
  PathTracingQuery q({8, 1, 5, SchemeVariant::kHybrid}, 1);
  const std::vector<SwitchId> path{10, 20, 30, 40, 50};
  auto dec = make_decoder(path, q);
  PathPolicy policy;
  policy.required_waypoints = {30};
  policy.forbidden = {99};
  PathConformanceChecker checker(policy);
  EXPECT_EQ(checker.check(dec, 5).verdict, Conformance::kConformant);
}

TEST_F(ConformanceFixture, ForbiddenSwitchViolates) {
  PathTracingQuery q({8, 1, 5, SchemeVariant::kHybrid}, 2);
  const std::vector<SwitchId> path{10, 20, 99, 40, 50};
  auto dec = make_decoder(path, q);
  PathPolicy policy;
  policy.forbidden = {99};
  PathConformanceChecker checker(policy);
  const auto report = checker.check(dec, 5);
  EXPECT_EQ(report.verdict, Conformance::kViolation);
  EXPECT_EQ(report.offending_hop, 3u);
}

TEST_F(ConformanceFixture, MissingWaypointViolates) {
  PathPolicy policy;
  policy.required_waypoints = {77};
  PathConformanceChecker checker(policy);
  const auto report = checker.check_full({1, 2, 3});
  EXPECT_EQ(report.verdict, Conformance::kViolation);
}

TEST_F(ConformanceFixture, RoutingMisconfigurationDetected) {
  PathPolicy policy;
  policy.expected_path = std::vector<SwitchId>{1, 2, 3, 4};
  PathConformanceChecker checker(policy);
  const auto ok = checker.check_full({1, 2, 3, 4});
  EXPECT_EQ(ok.verdict, Conformance::kConformant);
  const auto bad = checker.check_full({1, 2, 9, 4});
  EXPECT_EQ(bad.verdict, Conformance::kViolation);
  EXPECT_EQ(bad.offending_hop, 3u);
}

TEST_F(ConformanceFixture, PartialDecodeCanProveViolationEarly) {
  // A fresh decoder knows nothing -> undetermined; a single resolved
  // forbidden hop -> violation even though the rest is unknown.
  PathTracingQuery q({8, 1, 5, SchemeVariant::kHybrid}, 3);
  std::vector<std::uint64_t> universe;
  for (SwitchId s = 1; s <= 100; ++s) universe.push_back(s);
  auto dec = q.make_decoder(5, universe);
  PathPolicy policy;
  policy.forbidden = {42};
  PathConformanceChecker checker(policy);
  EXPECT_EQ(checker.check(dec, 5).verdict, Conformance::kUndetermined);

  const std::vector<SwitchId> path{10, 42, 30, 40, 50};
  PacketId p = 1;
  while (checker.check(dec, 5).verdict == Conformance::kUndetermined &&
         p < 100000) {
    std::vector<Digest> lanes(1, 0);
    for (HopIndex i = 1; i <= 5; ++i) q.encode(p, i, path[i - 1], lanes);
    dec.add_packet(p, lanes);
    ++p;
  }
  EXPECT_EQ(checker.check(dec, 5).verdict, Conformance::kViolation);
}

// --- microburst --------------------------------------------------------------

TEST(Microburst, DetectsBurstAboveBaseline) {
  MicroburstDetector det(3, {128, 8, 0.9, 4.0, 256}, 7);
  Rng rng(7);
  // Establish a calm baseline on hop 2.
  bool fired = false;
  for (int i = 0; i < 400; ++i) {
    fired = det.add(2, 10.0 + rng.uniform()).has_value() || fired;
  }
  EXPECT_FALSE(fired);
  // Burst: queue jumps 10x.
  std::optional<MicroburstEvent> ev;
  for (int i = 0; i < 200 && !ev; ++i) {
    ev = det.add(2, 100.0 + rng.uniform() * 20.0);
  }
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->hop, 2u);
  EXPECT_GT(ev->recent_quantile, 4.0 * ev->baseline_median);
}

TEST(Microburst, NoFalseAlarmOnStableTraffic) {
  MicroburstDetector det(2, {}, 9);
  Rng rng(9);
  int alarms = 0;
  for (int i = 0; i < 5000; ++i) {
    alarms += det.add(1, 50.0 + rng.exponential(0.2)).has_value();
  }
  EXPECT_EQ(alarms, 0);
}

TEST(Microburst, RejectsBadHop) {
  MicroburstDetector det(2);
  EXPECT_THROW(det.add(0, 1.0), std::out_of_range);
  EXPECT_THROW(det.add(3, 1.0), std::out_of_range);
}

// --- load analysis -----------------------------------------------------------

TEST(LoadAnalysis, RanksAndFairness) {
  LoadAnalyzer la(0.2);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    la.add(1, 0.9 + 0.05 * rng.uniform());   // hot
    la.add(2, 0.1 + 0.05 * rng.uniform());   // cold
    la.add(3, 0.12 + 0.05 * rng.uniform());  // cold
  }
  const auto loads = la.all_loads();
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0].switch_id, 1u);
  EXPECT_LT(la.fairness_index(), 0.75);
  const auto over = la.overloaded(2.0);
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], 1u);
}

TEST(LoadAnalysis, BalancedNetworkIsFair) {
  LoadAnalyzer la;
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    for (SwitchId s = 1; s <= 8; ++s) la.add(s, 0.5 + 0.01 * rng.uniform());
  }
  EXPECT_GT(la.fairness_index(), 0.99);
  EXPECT_TRUE(la.overloaded(1.5).empty());
}

TEST(LoadAnalysis, SleepCandidates) {
  LoadAnalyzer la;
  Rng rng(15);
  for (int i = 0; i < 500; ++i) {
    la.add(1, 0.02 * rng.uniform());  // nearly idle
    la.add(2, 0.6 + 0.1 * rng.uniform());
  }
  const auto sleepers = la.sleep_candidates(0.1, 100);
  ASSERT_EQ(sleepers.size(), 1u);
  EXPECT_EQ(sleepers[0], 1u);
}

TEST(LoadAnalysis, UnknownSwitch) {
  LoadAnalyzer la;
  EXPECT_FALSE(la.load_of(123).has_value());
}

// --- anomaly detection -------------------------------------------------------

TEST(Anomaly, DetectsLatencyShift) {
  LatencyAnomalyDetector det(4, {0.5, 8.0, 64});
  Rng rng(17);
  std::optional<AnomalyEvent> ev;
  for (int i = 0; i < 500 && !ev; ++i) {
    ev = det.add(2, 100.0 + rng.uniform() * 10.0);
  }
  EXPECT_FALSE(ev.has_value());  // stable regime: no alarm
  for (int i = 0; i < 500 && !ev; ++i) {
    ev = det.add(2, 160.0 + rng.uniform() * 10.0);  // +6 sigma shift
  }
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->hop, 2u);
  EXPECT_TRUE(ev->upward);
}

TEST(Anomaly, DetectsDownwardShift) {
  LatencyAnomalyDetector det(1, {0.5, 8.0, 64});
  Rng rng(19);
  std::optional<AnomalyEvent> ev;
  for (int i = 0; i < 300 && !ev; ++i) {
    ev = det.add(1, 200.0 + rng.uniform() * 10);
  }
  for (int i = 0; i < 500 && !ev; ++i) {
    ev = det.add(1, 140.0 + rng.uniform() * 10);
  }
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->upward);
}

TEST(Anomaly, LowFalseAlarmRate) {
  // Heavy-tailed (exponential) noise needs a larger drift allowance and
  // threshold; with drift 1.0 / threshold 12 the expected false-alarm count
  // over 20k samples is well below 1 (ruin-probability bound ~7e-5/cycle).
  LatencyAnomalyDetector det(1, {1.0, 12.0, 64});
  Rng rng(21);
  int alarms = 0;
  for (int i = 0; i < 20000; ++i) {
    alarms += det.add(1, 100.0 + rng.exponential(0.5)).has_value();
  }
  EXPECT_LE(alarms, 2);
}

TEST(Anomaly, RebaselinesAfterAlarm) {
  LatencyAnomalyDetector det(1, {0.5, 8.0, 32});
  Rng rng(23);
  std::optional<AnomalyEvent> ev;
  for (int i = 0; i < 200 && !ev; ++i) ev = det.add(1, 10.0 + rng.uniform());
  for (int i = 0; i < 200 && !ev; ++i) ev = det.add(1, 30.0 + rng.uniform());
  ASSERT_TRUE(ev.has_value());
  // After re-baselining, the new regime should not re-alarm.
  int post_alarms = 0;
  for (int i = 0; i < 500; ++i) {
    post_alarms += det.add(1, 30.0 + rng.uniform()).has_value();
  }
  EXPECT_EQ(post_alarms, 0);
}

// --- tomography --------------------------------------------------------------

TEST(Tomography, RekeysSamplesToSwitches) {
  QueueTomography tomo;
  tomo.register_flow(1, {10, 20, 30});
  tomo.register_flow(2, {40, 20, 50});
  Rng rng(25);
  for (int i = 0; i < 3000; ++i) {
    // Switch 20 is the shared hot spot.
    tomo.add_sample(1, 2, 500.0 + rng.uniform() * 50);
    tomo.add_sample(2, 2, 480.0 + rng.uniform() * 50);
    tomo.add_sample(1, 1, 10.0 + rng.uniform());
    tomo.add_sample(2, 3, 12.0 + rng.uniform());
  }
  // Sampled hops touch switches 10 (flow1 hop1), 20 (both hop2), 50
  // (flow2 hop3); switches 30 and 40 were never sampled.
  EXPECT_EQ(tomo.switches_observed(), 3u);
  const auto hot = tomo.hottest(1);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].switch_id, 20u);
  EXPECT_NEAR(*tomo.queue_quantile(20, 0.5), 505.0, 30.0);
  EXPECT_FALSE(tomo.queue_quantile(99, 0.5).has_value());
}

TEST(Tomography, DropsUnknownFlows) {
  QueueTomography tomo;
  tomo.add_sample(42, 1, 1.0);
  EXPECT_EQ(tomo.dropped_samples(), 1u);
  tomo.register_flow(42, {7});
  tomo.add_sample(42, 2, 1.0);  // hop out of range
  EXPECT_EQ(tomo.dropped_samples(), 2u);
  tomo.add_sample(42, 1, 1.0);
  EXPECT_EQ(tomo.dropped_samples(), 2u);
}

}  // namespace
}  // namespace pint
