// Bounded-memory Recording Module, end to end: a ceilinged framework under
// heavy-tailed traffic must keep decoding the elephants while evicting
// mouse-flow state, its eviction/occupancy counters must agree with the
// underlying RecordingStores, and with the ceiling unset the report stream
// must be byte-identical to the unbounded (seed) behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "apps/anomaly_detection.h"
#include "apps/load_analysis.h"
#include "apps/microburst.h"
#include "apps/tomography.h"
#include "common/rng.h"
#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"
#include "workload/zipf.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
constexpr std::size_t kElephants = 6;
constexpr std::size_t kRounds = 150;
constexpr std::size_t kMicePerRound = 10;

PintFramework::Builder mix_builder(std::size_t ceiling) {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xC0FFEE)
      .memory_ceiling_bytes(ceiling)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow);
  t.src_port = static_cast<std::uint16_t>(1000 + flow % 50000);
  t.dst_port = 80;
  return t;
}

// Heavy-tailed sink workload: every round interleaves one packet from each
// of the kElephants long-lived flows with kMicePerRound brand-new one-shot
// mouse flows (ids starting at 1000). Digests come from a dedicated
// unbounded "network" replica, exactly like a real wire.
std::vector<Packet> make_heavy_tailed_traffic() {
  const auto network = mix_builder(0).build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kRounds * (kElephants + kMicePerRound));
  PacketId next_id = 1;
  std::size_t next_mouse = 1000;
  const auto emit = [&](std::size_t flow) {
    Packet p;
    p.id = next_id++;
    p.tuple = tuple_of_flow(flow);
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>((flow + i) % 8 + 1));
      view.set(metric::kHopLatencyNs,
               100.0 * i + static_cast<double>(flow % 13));
      view.set(metric::kLinkUtilization, 0.1 * i);
      network->at_switch(p, i, view);
    }
    packets.push_back(std::move(p));
  };
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t e = 0; e < kElephants; ++e) emit(e);
    for (std::size_t m = 0; m < kMicePerRound; ++m) emit(next_mouse++);
  }
  return packets;
}

std::vector<std::uint8_t> stream_bytes(std::span<const Packet> packets,
                                       std::span<const SinkReport> reports) {
  ReportEncoder enc;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    enc.add(packets[i].id, kHops, reports[i]);
  }
  return enc.finish();
}

struct MemoryWatcher : SinkObserver {
  std::size_t reports = 0;
  MemoryReport last;

  void on_memory_report(const MemoryReport& report) override {
    ++reports;
    last = report;
  }
};

TEST(MemoryBound, ElephantsDecodeWhileMiceEvict) {
  const std::vector<Packet> packets = make_heavy_tailed_traffic();
  constexpr std::size_t kCeiling = 256u << 10;
  const auto fw = mix_builder(kCeiling).build_or_throw();
  ASSERT_TRUE(fw->memory_bounded());
  fw->at_sink(std::span<const Packet>(packets), kHops);

  // Every long-lived elephant keeps refreshing its decoder, so its path
  // converges despite constant mouse churn around it.
  for (std::size_t e = 0; e < kElephants; ++e) {
    const std::uint64_t fkey = fw->flow_key_for("path", tuple_of_flow(e));
    EXPECT_TRUE(fw->flow_path("path", fkey).has_value()) << "elephant " << e;
  }

  const MemoryReport mem = fw->memory_report();
  const QueryMemoryStats* path_stats = mem.find("path");
  ASSERT_NE(path_stats, nullptr);
  EXPECT_GT(path_stats->evictions, 0u);
  // Far fewer flows resident than ever created (the mice churned through).
  EXPECT_LT(path_stats->flows, kRounds * kMicePerRound / 2);
  EXPECT_GT(path_stats->created, kRounds * kMicePerRound / 2);
  // Early mice are long gone from the store.
  const std::uint64_t mouse_key =
      fw->flow_key_for("path", tuple_of_flow(1000));
  EXPECT_EQ(fw->path_progress("path", mouse_key), 0.0);
  // Accounting invariant per store: peak within ceiling + one entry.
  for (const QueryMemoryStats& q : mem) {
    ASSERT_GT(q.capacity_bytes, 0u) << q.query;
    EXPECT_LE(q.used_bytes, q.capacity_bytes + q.max_entry_bytes) << q.query;
    EXPECT_LE(q.peak_used_bytes, q.capacity_bytes + q.max_entry_bytes)
        << q.query;
  }
}

TEST(MemoryBound, SinkReportCountersMatchMemoryReport) {
  const std::vector<Packet> packets = make_heavy_tailed_traffic();
  const auto fw = mix_builder(256u << 10).build_or_throw();
  std::vector<SinkReport> reports(packets.size());
  fw->at_sink(std::span<const Packet>(packets), kHops, reports);

  const MemoryCounters last = reports.back().memory;
  EXPECT_TRUE(last.bounded);
  const MemoryReport mem = fw->memory_report();
  EXPECT_EQ(last.used_bytes, mem.total.used_bytes);
  EXPECT_EQ(last.flows, mem.total.flows);
  EXPECT_EQ(last.evictions, mem.total.evictions);
  EXPECT_EQ(last.capacity_bytes, fw->memory_ceiling_bytes());
  // The per-query stats sum to the totals.
  std::size_t used = 0;
  std::uint64_t flows = 0, evictions = 0;
  for (const QueryMemoryStats& q : mem) {
    used += q.used_bytes;
    flows += q.flows;
    evictions += q.evictions;
  }
  EXPECT_EQ(used, mem.total.used_bytes);
  EXPECT_EQ(flows, mem.total.flows);
  EXPECT_EQ(evictions, mem.total.evictions);
  // A packet with nothing decodable (no digests) still carries the
  // counters: consumers may branch on report.memory.bounded per report.
  Packet blank;
  blank.id = 0xB1A4C;
  blank.tuple = tuple_of_flow(1);
  SinkReport r;
  fw->at_sink(blank, kHops, r);
  EXPECT_TRUE(r.memory.bounded);
  EXPECT_EQ(r.memory.evictions, mem.total.evictions);
}

TEST(MemoryBound, ObserverReceivesMemoryReportsOnEviction) {
  const std::vector<Packet> packets = make_heavy_tailed_traffic();
  MemoryWatcher watcher;
  auto builder = mix_builder(256u << 10);
  builder.add_observer(&watcher);
  const auto fw = builder.build_or_throw();
  fw->at_sink(std::span<const Packet>(packets), kHops);
  ASSERT_GT(watcher.reports, 0u);
  // The last pushed snapshot agrees with the pull-style accessor.
  const MemoryReport mem = fw->memory_report();
  EXPECT_EQ(watcher.last.total.evictions, mem.total.evictions);
  EXPECT_EQ(watcher.last.query_count, mem.query_count);
}

TEST(MemoryBound, HeartbeatFiresOnPacketInterval) {
  const std::vector<Packet> packets = make_heavy_tailed_traffic();
  constexpr std::uint64_t kInterval = 100;

  // Unbounded + interval: evictions are impossible, so every report the
  // observer sees is a heartbeat — exactly one per interval.
  {
    MemoryWatcher watcher;
    auto builder = mix_builder(0);
    builder.memory_report_interval_packets(kInterval).add_observer(&watcher);
    const auto fw = builder.build_or_throw();
    EXPECT_FALSE(fw->memory_bounded());
    EXPECT_EQ(fw->memory_report_interval(), kInterval);
    fw->at_sink(std::span<const Packet>(packets), kHops);
    EXPECT_EQ(watcher.reports, packets.size() / kInterval);
    EXPECT_FALSE(watcher.last.total.bounded);
    EXPECT_GT(watcher.last.total.flows, 0u);  // occupancy is still visible
  }

  // Bounded + interval: the heartbeat comes *in addition to* the
  // eviction-edge trigger, never instead of it.
  {
    MemoryWatcher edge_only;
    auto eb = mix_builder(256u << 10);
    eb.add_observer(&edge_only);
    eb.build_or_throw()->at_sink(std::span<const Packet>(packets), kHops);
    ASSERT_GT(edge_only.reports, 0u);

    MemoryWatcher both;
    auto bb = mix_builder(256u << 10);
    bb.memory_report_interval_packets(kInterval).add_observer(&both);
    bb.build_or_throw()->at_sink(std::span<const Packet>(packets), kHops);
    EXPECT_GE(both.reports, edge_only.reports);
    EXPECT_GE(both.reports, packets.size() / kInterval);
  }

  // Undecodable packets count toward the interval too: a sink mostly fed
  // junk still reports on schedule.
  {
    MemoryWatcher watcher;
    auto builder = mix_builder(0);
    builder.memory_report_interval_packets(5).add_observer(&watcher);
    const auto fw = builder.build_or_throw();
    Packet blank;
    blank.tuple = tuple_of_flow(1);
    for (int i = 0; i < 12; ++i) {
      blank.id = 0xB1A4C + i;
      fw->at_sink(blank, kHops);
    }
    EXPECT_EQ(watcher.reports, 2u);
  }
}

TEST(MemoryBound, HeartbeatFiresOnTimeInterval) {
  const std::vector<Packet> packets = make_heavy_tailed_traffic();

  // A 1 ns interval has elapsed by every packet (decoding one takes far
  // longer), so the timed heartbeat fires on essentially every packet —
  // and the packet-interval trigger stays off.
  {
    MemoryWatcher watcher;
    auto builder = mix_builder(0);
    builder.memory_report_interval(std::chrono::nanoseconds{1})
        .add_observer(&watcher);
    const auto fw = builder.build_or_throw();
    EXPECT_EQ(fw->memory_report_interval(), 0u);
    EXPECT_EQ(fw->memory_report_interval_time(),
              std::chrono::nanoseconds{1});
    fw->at_sink(std::span<const Packet>(packets), kHops);
    EXPECT_GE(watcher.reports, packets.size() / 2);
  }

  // An hour-long interval fires nothing inside a fast test run.
  {
    MemoryWatcher watcher;
    auto builder = mix_builder(0);
    builder.memory_report_interval(std::chrono::hours{1})
        .add_observer(&watcher);
    builder.build_or_throw()->at_sink(std::span<const Packet>(packets),
                                      kHops);
    EXPECT_EQ(watcher.reports, 0u);
  }

  // Paced batches: each round sleeps past the interval, so every round's
  // first packet reports — a dashboard hears from a mostly-idle sink.
  {
    MemoryWatcher watcher;
    auto builder = mix_builder(0);
    builder.memory_report_interval(std::chrono::milliseconds{5})
        .add_observer(&watcher);
    const auto fw = builder.build_or_throw();
    constexpr int kRounds = 3;
    const std::size_t per_round = packets.size() / kRounds;
    for (int r = 0; r < kRounds; ++r) {
      std::this_thread::sleep_for(std::chrono::milliseconds{6});
      fw->at_sink(std::span<const Packet>(packets.data() + r * per_round,
                                          per_round),
                  kHops);
    }
    EXPECT_GE(watcher.reports, static_cast<std::uint64_t>(kRounds));
  }

  // Both triggers together: the union fires at least as often as either.
  {
    MemoryWatcher both;
    auto builder = mix_builder(0);
    builder.memory_report_interval_packets(100)
        .memory_report_interval(std::chrono::hours{1})
        .add_observer(&both);
    builder.build_or_throw()->at_sink(std::span<const Packet>(packets),
                                      kHops);
    EXPECT_GE(both.reports, packets.size() / 100);
  }
}

TEST(MemoryBound, NoCeilingIsByteIdenticalAndSilent) {
  const std::vector<Packet> packets = make_heavy_tailed_traffic();

  // Plain builder: the seed behavior (no ceiling configured at all).
  const auto plain = mix_builder(0).build_or_throw();
  EXPECT_FALSE(plain->memory_bounded());
  MemoryWatcher watcher;
  plain->add_observer(&watcher);
  std::vector<SinkReport> plain_reports(packets.size());
  plain->at_sink(std::span<const Packet>(packets), kHops, plain_reports);
  EXPECT_EQ(watcher.reports, 0u);  // never fires unbounded
  for (const SinkReport& r : plain_reports) {
    EXPECT_EQ(r.memory, MemoryCounters{});  // untouched: stream unchanged
  }

  // A generous ceiling that never evicts must also be byte-identical:
  // accounting runs, but observations cannot depend on it.
  const auto roomy = mix_builder(64u << 20).build_or_throw();
  std::vector<SinkReport> roomy_reports(packets.size());
  roomy->at_sink(std::span<const Packet>(packets), kHops, roomy_reports);
  EXPECT_EQ(roomy->memory_report().total.evictions, 0u);
  EXPECT_EQ(stream_bytes(packets, roomy_reports),
            stream_bytes(packets, plain_reports));
  // Inference agrees flow by flow.
  for (std::size_t e = 0; e < kElephants; ++e) {
    const std::uint64_t fkey = plain->flow_key_for("path", tuple_of_flow(e));
    EXPECT_EQ(roomy->flow_path("path", fkey), plain->flow_path("path", fkey));
    EXPECT_EQ(roomy->latency_quantile("latency", fkey, 1, 0.5),
              plain->latency_quantile("latency", fkey, 1, 0.5));
  }

  // Naming the default policy explicitly is NOT a behavior change: an
  // explicit kLru builder (with and without a ceiling) must produce the
  // exact report stream of the corresponding implicit-default builder.
  auto lru_builder = mix_builder(0);
  lru_builder.default_store_policy(StorePolicyKind::kLru);
  const auto explicit_lru = lru_builder.build_or_throw();
  std::vector<SinkReport> lru_reports(packets.size());
  explicit_lru->at_sink(std::span<const Packet>(packets), kHops, lru_reports);
  EXPECT_EQ(stream_bytes(packets, lru_reports),
            stream_bytes(packets, plain_reports));

  auto lru_roomy_builder = mix_builder(64u << 20);
  lru_roomy_builder.default_store_policy(StorePolicyKind::kLru);
  const auto lru_roomy = lru_roomy_builder.build_or_throw();
  std::vector<SinkReport> lru_roomy_reports(packets.size());
  lru_roomy->at_sink(std::span<const Packet>(packets), kHops,
                     lru_roomy_reports);
  EXPECT_EQ(lru_roomy->memory_report().total.admissions_rejected, 0u);
  EXPECT_EQ(stream_bytes(packets, lru_roomy_reports),
            stream_bytes(packets, plain_reports));
}

TEST(MemoryBound, ZipfChurnRespectsCeilingAtScale) {
  // A larger randomized churn (Zipf over 50k flows) through a small
  // ceiling: the acceptance invariant — accounting peak stays within
  // ceiling + one entry — must hold for every store.
  const auto network = mix_builder(0).build_or_throw();
  const auto fw = mix_builder(128u << 10).build_or_throw();
  Rng rng(0xBEEF);
  const ZipfDist zipf(50000, 1.05);
  std::vector<Packet> batch(512);
  PacketId next_id = 1;
  for (int chunk = 0; chunk < 30; ++chunk) {
    for (Packet& p : batch) {
      const std::size_t f = static_cast<std::size_t>(zipf.sample(rng)) - 1;
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      p.digests.clear();
      p.hops_traversed = 0;
      for (HopIndex i = 1; i <= kHops; ++i) {
        SwitchView view(static_cast<SwitchId>((f + i) % 8 + 1));
        view.set(metric::kHopLatencyNs, 100.0 * i);
        view.set(metric::kLinkUtilization, 0.1 * i);
        network->at_switch(p, i, view);
      }
    }
    fw->at_sink(std::span<const Packet>(batch), kHops);
  }
  const MemoryReport mem = fw->memory_report();
  EXPECT_GT(mem.total.evictions, 0u);
  for (const QueryMemoryStats& q : mem) {
    EXPECT_LE(q.peak_used_bytes, q.capacity_bytes + q.max_entry_bytes)
        << q.query;
  }
  // The hottest Zipf rank keeps its state resident through the churn.
  const std::uint64_t hot = fw->flow_key_for("path", tuple_of_flow(0));
  EXPECT_GT(fw->path_progress("path", hot), 0.0);
}

TEST(MemoryBound, ShardedSinkSplitsCeilingAcrossShards) {
  const std::vector<Packet> packets = make_heavy_tailed_traffic();
  constexpr std::size_t kCeiling = 1u << 20;
  auto builder = mix_builder(kCeiling);

  ShardedSink sink(builder, 4);
  for (unsigned s = 0; s < 4; ++s) {
    EXPECT_EQ(sink.shard(s).memory_ceiling_bytes(), kCeiling / 4);
    EXPECT_TRUE(sink.shard(s).memory_bounded());
  }
  sink.submit(packets, kHops);
  sink.flush();

  const MemoryReport merged = sink.memory_report();
  EXPECT_EQ(merged.total.capacity_bytes, kCeiling);
  std::size_t used = 0;
  std::uint64_t flows = 0;
  for (unsigned s = 0; s < 4; ++s) {
    const MemoryReport part = sink.shard(s).memory_report();
    used += part.total.used_bytes;
    flows += part.total.flows;
  }
  EXPECT_EQ(merged.total.used_bytes, used);
  EXPECT_EQ(merged.total.flows, flows);
  // Elephants decode on their owning shards through the merged view.
  for (std::size_t e = 0; e < kElephants; ++e) {
    EXPECT_TRUE(sink.flow_path("path", tuple_of_flow(e)).has_value());
  }
}

TEST(MemoryBound, EvictedFlowReannouncesPathOnRedecode) {
  // Decode flow 0, flood mice until its decoder is evicted, then re-decode
  // it: on_path_decoded must fire a second time so bounded downstream
  // consumers (e.g. a ceilinged LoadObserver) can re-learn the path.
  struct PathCounter : SinkObserver {
    std::vector<std::uint64_t> decode_events;
    void on_path_decoded(const SinkContext& ctx, std::string_view,
                         const std::vector<SwitchId>&) override {
      decode_events.push_back(ctx.flow);
    }
  };
  const auto network = mix_builder(0).build_or_throw();
  PathCounter counter;
  auto builder = mix_builder(256u << 10);
  builder.add_observer(&counter);
  const auto fw = builder.build_or_throw();

  PacketId next_id = 1;
  const auto send = [&](std::size_t flow) {
    Packet p;
    p.id = next_id++;
    p.tuple = tuple_of_flow(flow);
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>((flow + i) % 8 + 1));
      view.set(metric::kHopLatencyNs, 100.0 * i);
      view.set(metric::kLinkUtilization, 0.1 * i);
      network->at_switch(p, i, view);
    }
    fw->at_sink(p, kHops);
  };

  for (int j = 0; j < 60; ++j) send(0);  // phase 1: decode flow 0
  const std::uint64_t flow0 = fw->flow_key_for("path", tuple_of_flow(0));
  const auto announced = [&] {
    return static_cast<std::size_t>(
        std::count(counter.decode_events.begin(),
                   counter.decode_events.end(), flow0));
  };
  ASSERT_EQ(announced(), 1u);
  for (std::size_t m = 0; m < 400; ++m) send(5000 + m);  // mice flood
  EXPECT_EQ(fw->path_progress("path", flow0), 0.0);      // evicted
  for (int j = 0; j < 60; ++j) send(0);  // phase 2: re-decode
  EXPECT_EQ(announced(), 2u);
}

TEST(MemoryBound, AppObserversHonorTheirCeilings) {
  // The src/apps/ adapters opt into the same RecordingStore: per-flow
  // detector/path state is LRU-bounded and keeps serving the hot flows.
  AnomalyObserver anomaly("latency", AnomalyConfig{}, 4096);
  MicroburstObserver burst("queue", MicroburstConfig{}, 0xB0257, 64u << 10);
  LoadAnalyzer analyzer;
  LoadObserver load(analyzer, "util", "path", 2048);
  QueueTomography tomography(0x70406, 2048);

  const std::vector<SwitchId> path{1, 2, 3, 4, 5};
  for (std::uint64_t flow = 0; flow < 1000; ++flow) {
    const SinkContext ctx{flow + 1, flow, kHops};
    const Observation sample = HopSampleObservation{1, 100.0};
    anomaly.on_observation(ctx, "latency", sample);
    burst.on_observation(ctx, "queue", sample);
    load.on_path_decoded(ctx, "path", path);
    tomography.register_flow(flow, path);
  }
  EXPECT_LT(anomaly.flows_tracked(), 1000u);
  EXPECT_GT(anomaly.detectors().evictions(), 0u);
  EXPECT_LT(burst.flows_tracked(), 1000u);
  EXPECT_LT(load.path_store().flows(), 1000u);
  EXPECT_LT(tomography.flows_registered(), 1000u);
  // The most recent flows stay resident and attributable.
  load.on_observation(SinkContext{2000, 999, kHops}, "util",
                      Observation{HopSampleObservation{2, 0.5}});
  EXPECT_EQ(load.unattributed(), 0u);
  tomography.add_sample(999, 2, 7.0);
  EXPECT_EQ(tomography.dropped_samples(), 0u);
  // An evicted early flow is dropped / unattributed, not resurrected.
  tomography.add_sample(0, 2, 7.0);
  EXPECT_EQ(tomography.dropped_samples(), 1u);
}

TEST(MemoryBound, WithMemoryDividedFloorsAtOneByte) {
  auto builder = mix_builder(3);  // absurd 3-byte ceiling
  const auto divided = builder.with_memory_divided(8);
  EXPECT_EQ(divided.memory_ceiling(), 1u);  // nonzero never becomes 0
  EXPECT_EQ(builder.with_memory_divided(1).memory_ceiling(), 3u);
}

TEST(MemoryBound, DividedBudgetsNeverOvercommitDividedCeiling) {
  // Regression: clamping divided per-query budgets up to 1 byte could sum
  // past the divided ceiling, so ShardedSink construction rejected a
  // Builder the single-threaded sink accepted. Budgets that divide to
  // zero now fall back to the even split instead.
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec a = make_dynamic_query("a", std::string(extractor::kHopLatency),
                                   8, 0.5, tuning);
  a.memory_budget_bytes = 5;
  QuerySpec b = make_dynamic_query(
      "b", std::string(extractor::kQueueOccupancy), 8, 0.5, tuning);
  b.memory_budget_bytes = 5;
  PintFramework::Builder builder;
  builder.global_bit_budget(16).memory_ceiling_bytes(10).add_query(a)
      .add_query(b);
  ASSERT_TRUE(builder.build().ok());  // valid single-threaded
  // Divided by 2: ceiling 5, budgets 2+2 — still consistent, so the
  // sharded replicas build.
  EXPECT_NO_THROW(ShardedSink(builder, 2));
  // Dividing into more shards than ceiling bytes is genuinely
  // unsatisfiable (each per-flow query needs at least one byte); the
  // replica build must fail loudly rather than mis-account.
  EXPECT_THROW(ShardedSink(builder, 8), std::invalid_argument);
}

TEST(MemoryBound, DividedBudgetWithoutCeilingStaysBounded) {
  // Regression: with no global ceiling there is no remainder to fall back
  // to, so a per-query budget dividing to zero would silently disable
  // eviction; bounded configs must never divide into unbounded ones.
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec tiny = make_dynamic_query(
      "tiny", std::string(extractor::kHopLatency), 8, 1.0, tuning);
  tiny.memory_budget_bytes = 4;
  PintFramework::Builder builder;
  builder.global_bit_budget(16).add_query(tiny);
  ShardedSink sink(builder, 8);  // 4 / 8 would floor to 0
  for (unsigned s = 0; s < 8; ++s) {
    EXPECT_TRUE(sink.shard(s).memory_bounded()) << "shard " << s;
  }
}

}  // namespace
}  // namespace pint
