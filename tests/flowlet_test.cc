// Tests for flowlet-aware tracing (Section 7), the sliding-window recorder
// mode, and the query-to-pipeline compiler.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "dataplane/query_compiler.h"
#include "pint/dynamic_aggregation.h"
#include "pint/flowlet_tracker.h"

namespace pint {
namespace {

// --- flowlet tracking --------------------------------------------------------

struct FlowletFixture : public ::testing::Test {
  static constexpr unsigned kHops = 5;

  FlowletFixture() {
    PathTracingConfig cfg;
    cfg.bits = 8;
    cfg.instances = 1;
    cfg.d = kHops;
    cfg.variant = SchemeVariant::kHybrid;
    query = std::make_unique<PathTracingQuery>(cfg, 3111);
    universe.resize(64);
    std::iota(universe.begin(), universe.end(), 1);
  }

  std::vector<Digest> encode(PacketId p,
                             const std::vector<SwitchId>& path) const {
    std::vector<Digest> lanes(1, 0);
    for (HopIndex i = 1; i <= path.size(); ++i) {
      query->encode(p, i, path[i - 1], lanes);
    }
    return lanes;
  }

  std::unique_ptr<PathTracingQuery> query;
  std::vector<std::uint64_t> universe;
};

TEST_F(FlowletFixture, SingleFlowletDecodesNormally) {
  FlowletTracker tracker(*query, kHops, universe);
  const std::vector<SwitchId> path{3, 14, 27, 41, 58};
  PacketId p = 1;
  while (!tracker.current_complete() && p < 100000) {
    tracker.add_packet(p, encode(p, path));
    ++p;
  }
  ASSERT_TRUE(tracker.current_complete());
  ASSERT_EQ(tracker.completed_paths().size(), 1u);
  EXPECT_EQ(tracker.completed_paths()[0], path);
  EXPECT_EQ(tracker.route_changes(), 0u);
}

TEST_F(FlowletFixture, TracksTwoFlowletsAcrossRouteChange) {
  FlowletTracker tracker(*query, kHops, universe);
  const std::vector<SwitchId> path_a{3, 14, 27, 41, 58};
  const std::vector<SwitchId> path_b{3, 14, 33, 47, 58};  // hops 3,4 rerouted

  // Flowlet A: enough packets to fully decode.
  PacketId p = 1;
  while (!tracker.current_complete() && p < 100000) {
    tracker.add_packet(p, encode(p, path_a));
    ++p;
  }
  ASSERT_TRUE(tracker.current_complete());

  // Flowlet B: keep sending until its path decodes too.
  bool changed = false;
  const PacketId limit = p + 200000;
  while (p < limit) {
    changed = tracker.add_packet(p, encode(p, path_b)) || changed;
    ++p;
    if (tracker.completed_paths().size() == 2) break;
  }
  EXPECT_TRUE(changed);
  EXPECT_GE(tracker.route_changes(), 1u);
  ASSERT_EQ(tracker.completed_paths().size(), 2u);
  EXPECT_EQ(tracker.completed_paths()[0], path_a);
  EXPECT_EQ(tracker.completed_paths()[1], path_b);
}

TEST_F(FlowletFixture, NoFalseChangesOnStableRoute) {
  FlowletTracker tracker(*query, kHops, universe);
  const std::vector<SwitchId> path{5, 10, 15, 20, 25};
  for (PacketId p = 1; p <= 20000; ++p) {
    EXPECT_FALSE(tracker.add_packet(p, encode(p, path))) << p;
  }
  EXPECT_EQ(tracker.route_changes(), 0u);
}

// --- sliding window recorder -------------------------------------------------

TEST(SlidingRecorder, WindowedQuantileTracksRecentRegime) {
  FlowLatencyRecorder rec(2);
  rec.enable_sliding_window(400, 8);
  DynamicAggregationQuery::Sample s;
  s.hop = 1;
  // Old regime 100, new regime 900.
  for (int i = 0; i < 3000; ++i) {
    s.value = 100.0;
    rec.add(s);
  }
  for (int i = 0; i < 450; ++i) {
    s.value = 900.0;
    rec.add(s);
  }
  // All-time median is still the old regime; windowed median is the new one.
  EXPECT_NEAR(*rec.quantile(1, 0.5), 100.0, 1.0);
  EXPECT_NEAR(*rec.windowed_quantile(1, 0.5), 900.0, 1.0);
}

TEST(SlidingRecorder, DisabledWindowReturnsNothing) {
  FlowLatencyRecorder rec(1);
  DynamicAggregationQuery::Sample s{1, 5.0};
  rec.add(s);
  EXPECT_FALSE(rec.windowed_quantile(1, 0.5).has_value());
}

TEST(SlidingRecorder, EnableAfterAddThrows) {
  FlowLatencyRecorder rec(1);
  rec.add({1, 5.0});
  EXPECT_THROW(rec.enable_sliding_window(100), std::logic_error);
}

// --- query compiler ----------------------------------------------------------

Query q(std::string name, AggregationType agg) {
  Query out;
  out.name = std::move(name);
  out.aggregation = agg;
  out.bit_budget = 8;
  return out;
}

TEST(QueryCompiler, PaperMixFitsEightStages) {
  SwitchPipeline hw(8, 8);
  const auto compiled = compile_queries(
      {q("path", AggregationType::kStaticPerFlow),
       q("latency", AggregationType::kDynamicPerFlow),
       q("hpcc", AggregationType::kPerPacket)},
      hw);
  ASSERT_TRUE(compiled.fits);
  EXPECT_EQ(compiled.stages_used, 8u);  // depth = HPCC's 8, not the sum (16)
}

TEST(QueryCompiler, SelectionStageOnlyForMultiQuery) {
  SwitchPipeline hw(8, 2);
  const auto single =
      compile_queries({q("path", AggregationType::kStaticPerFlow)}, hw);
  ASSERT_TRUE(single.fits);
  // Single query: exactly its own ops per stage (no selection lane).
  for (const auto& stage : single.layout.stages) {
    EXPECT_EQ(stage.size(), 1u);
  }
}

TEST(QueryCompiler, RejectsOverDeepHardware) {
  SwitchPipeline hw(6, 8);  // HPCC needs 8 stages
  const auto compiled =
      compile_queries({q("hpcc", AggregationType::kPerPacket)}, hw);
  EXPECT_FALSE(compiled.fits);
}

TEST(QueryCompiler, RejectsOverWideStage) {
  SwitchPipeline hw(8, 2);  // 2 ops/stage; 3 queries + selection need 4
  const auto compiled = compile_queries(
      {q("a", AggregationType::kStaticPerFlow),
       q("b", AggregationType::kDynamicPerFlow),
       q("c", AggregationType::kPerPacket)},
      hw);
  EXPECT_FALSE(compiled.fits);
}

}  // namespace
}  // namespace pint
