#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace pint {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.uniform_int(n), n);
  }
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 10 * 0.1);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GeometricMean) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.geometric(0.25));
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Bitops, MsbIndex) {
  EXPECT_EQ(msb_index(1), 0u);
  EXPECT_EQ(msb_index(2), 1u);
  EXPECT_EQ(msb_index(3), 1u);
  EXPECT_EQ(msb_index(0x8000000000000000ULL), 63u);
}

TEST(Bitops, NextPowerOfTwo) {
  EXPECT_EQ(next_power_of_two(0), 1u);
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(1024), 1024u);
  EXPECT_EQ(next_power_of_two(1025), 2048u);
}

TEST(Bitops, ExtractBits) {
  EXPECT_EQ(extract_bits(0xABCD, 4, 8), 0xBCu);
  EXPECT_EQ(extract_bits(~0ull, 0, 64), ~0ull);
}

TEST(Types, LowBitsMask) {
  EXPECT_EQ(low_bits_mask(0), 0u);
  EXPECT_EQ(low_bits_mask(1), 1u);
  EXPECT_EQ(low_bits_mask(8), 0xFFu);
  EXPECT_EQ(low_bits_mask(64), ~std::uint64_t{0});
}

TEST(Stats, PercentileExact) {
  std::vector<int> v{5, 1, 4, 2, 3};
  EXPECT_EQ(percentile(v, 0.5), 3);
  EXPECT_EQ(percentile(v, 0.0), 1);
  EXPECT_EQ(percentile(v, 1.0), 5);
}

TEST(Stats, PercentileThrowsOnEmpty) {
  EXPECT_THROW(percentile(std::vector<int>{}, 0.5), std::invalid_argument);
}

TEST(Stats, RunningStats) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Stats, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(0, 0), 0.0);
}

}  // namespace
}  // namespace pint
