#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "dataplane/fixed_point.h"
#include "dataplane/log_exp.h"
#include "dataplane/pipeline.h"

namespace pint {
namespace {

TEST(FixedPoint, RoundTripResolution) {
  FixedPoint fp(2.0, 16);
  for (double x : {0.0, 0.5, 1.0, 1.19, 1.999}) {
    EXPECT_NEAR(fp.to_real(fp.from_real(x)), x, fp.resolution());
  }
}

TEST(FixedPoint, PaperExample) {
  // Paper Appendix C: range [0,2], m=16, encoding 39131 represents ~1.19.
  FixedPoint fp(2.0, 16);
  EXPECT_NEAR(fp.to_real(39131), 1.19, 0.01);
}

TEST(FixedPoint, SaturatesAtRange) {
  FixedPoint fp(1.0, 8);
  EXPECT_EQ(fp.from_real(5.0), 255u);
  EXPECT_EQ(fp.from_real(-1.0), 0u);
  EXPECT_EQ(fp.add(200, 200), 255u);
  EXPECT_EQ(fp.sub_saturating(10, 20), 0u);
}

TEST(LogExp, LogAccuracyAtQ8) {
  // Paper claim: q = 8 keeps the log error around 1.44 * 2^-8 ~ 0.6%.
  LogExpTables t(8);
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t x = 1 + rng.uniform_int((1ull << 40) - 1);
    const double approx = t.log2(x);
    const double exact = std::log2(static_cast<double>(x));
    EXPECT_NEAR(approx, exact, 0.006) << x;
  }
}

TEST(LogExp, ExpAccuracyAtQ8) {
  LogExpTables t(8);
  Rng rng(79);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0.0, 30.0);
    const double approx = t.exp2(x);
    const double exact = std::exp2(x);
    EXPECT_NEAR(approx / exact, 1.0, 0.01) << x;
  }
}

TEST(LogExp, MultiplyWithinOnePercent) {
  LogExpTables t(8);
  Rng rng(81);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = 1 + rng.uniform_int(1ull << 20);
    const std::uint64_t y = 1 + rng.uniform_int(1ull << 20);
    const double exact = static_cast<double>(x) * static_cast<double>(y);
    EXPECT_NEAR(t.multiply(x, y) / exact, 1.0, 0.02) << x << "*" << y;
  }
}

TEST(LogExp, DivideWithinOnePercent) {
  LogExpTables t(8);
  Rng rng(83);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = 1 + rng.uniform_int(1ull << 20);
    const std::uint64_t y = 1 + rng.uniform_int(1ull << 20);
    const double exact = static_cast<double>(x) / static_cast<double>(y);
    EXPECT_NEAR(t.divide(x, y) / exact, 1.0, 0.02) << x << "/" << y;
  }
}

TEST(LogExp, HigherQIsMoreAccurate) {
  LogExpTables t4(4), t12(12);
  double err4 = 0, err12 = 0;
  Rng rng(85);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = 2 + rng.uniform_int(1ull << 30);
    const double exact = std::log2(static_cast<double>(x));
    err4 += std::abs(t4.log2(x) - exact);
    err12 += std::abs(t12.log2(x) - exact);
  }
  EXPECT_LT(err12, err4 / 10);
}

TEST(LogExp, EdgeCases) {
  LogExpTables t(8);
  EXPECT_THROW(t.log2(0), std::invalid_argument);
  EXPECT_THROW(t.divide(1, 0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(t.multiply(0, 5), 0.0);
  EXPECT_NEAR(t.log2(1), 0.0, 1e-9);
  EXPECT_NEAR(t.log2(1024), 10.0, 0.01);
}

TEST(Pipeline, PaperStageCounts) {
  EXPECT_EQ(SwitchPipeline::path_tracing_plan().depth(), 4u);
  EXPECT_EQ(SwitchPipeline::latency_quantile_plan().depth(), 4u);
  EXPECT_EQ(SwitchPipeline::hpcc_plan().depth(), 8u);
}

TEST(Pipeline, Fig6CombinationFitsEightStages) {
  // Section 5: all three queries (plus query-subset selection) fit the same
  // 8 stages HPCC alone needs, because independent queries parallelize.
  SwitchPipeline hw(8, 8);
  const std::vector<StagePlan> mix{
      SwitchPipeline::hpcc_plan(), SwitchPipeline::path_tracing_plan(),
      SwitchPipeline::latency_quantile_plan(),
      SwitchPipeline::query_selection_plan()};
  EXPECT_TRUE(hw.fits(mix));
  const PipelineLayout layout = hw.layout(mix);
  EXPECT_EQ(layout.depth(), 8u);  // depth = max over queries, not the sum
}

TEST(Pipeline, RejectsTooDeepMix) {
  SwitchPipeline hw(4, 8);
  EXPECT_FALSE(hw.fits({SwitchPipeline::hpcc_plan()}));
  EXPECT_THROW(hw.layout({SwitchPipeline::hpcc_plan()}), std::runtime_error);
}

TEST(Pipeline, RejectsTooWideStage) {
  SwitchPipeline hw(8, 1);  // one op per stage
  EXPECT_FALSE(hw.fits({SwitchPipeline::path_tracing_plan(),
                        SwitchPipeline::latency_quantile_plan()}));
}

}  // namespace
}  // namespace pint
