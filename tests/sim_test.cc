#include <gtest/gtest.h>

#include <cmath>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "topology/fat_tree.h"
#include "transport/hpcc.h"
#include "transport/tcp_reno.h"

namespace pint {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.at(10, [&] { order.push_back(2); });
  q.at(5, [&] { order.push_back(1); });
  q.at(10, [&] { order.push_back(3); });  // same time: insertion order
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.at(10, [&] { ++fired; });
  q.at(20, [&] { ++fired; });
  q.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15);
  q.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NestedScheduling) {
  EventQueue q;
  int depth = 0;
  q.at(1, [&] {
    q.after(1, [&] {
      q.after(1, [&] { depth = 3; });
    });
  });
  q.run();
  EXPECT_EQ(depth, 3);
}

// A tiny dumbbell: h0 - s2 - s3 - h1 (hosts at 0,1; switches 2,3).
struct Dumbbell {
  Graph g{4};
  std::vector<bool> is_host{true, true, false, false};
  Dumbbell() {
    g.add_edge(0, 2);
    g.add_edge(2, 3);
    g.add_edge(3, 1);
  }
};

SimConfig fast_config() {
  SimConfig cfg;
  cfg.host_bandwidth_bps = 10e9;
  cfg.fabric_bandwidth_bps = 10e9;
  cfg.link_delay = 1 * kMicro;
  cfg.mtu_payload = 1000;
  cfg.transport = TransportKind::kTcpReno;
  return cfg;
}

TEST(Simulator, SingleFlowCompletes) {
  Dumbbell d;
  Simulator sim(d.g, d.is_host, fast_config());
  const auto id = sim.add_flow(0, 1, 100'000, 0);
  sim.run_until(1 * kSecond);
  const FlowStats& st = sim.flow_stats()[id];
  ASSERT_TRUE(st.done);
  EXPECT_GT(st.fct(), 0);
  EXPECT_EQ(st.path_hops, 2u);
  EXPECT_EQ(sim.counters().packets_dropped, 0u);
}

TEST(Simulator, FctBoundedBelowBySerialization) {
  Dumbbell d;
  SimConfig cfg = fast_config();
  Simulator sim(d.g, d.is_host, cfg);
  const Bytes size = 1'000'000;
  const auto id = sim.add_flow(0, 1, size, 0);
  sim.run_until(1 * kSecond);
  const FlowStats& st = sim.flow_stats()[id];
  ASSERT_TRUE(st.done);
  // Lower bound: payload bytes at line rate (headers make it strictly worse).
  const double min_ns = static_cast<double>(size) * 8.0 / 10e9 * 1e9;
  EXPECT_GT(static_cast<double>(st.fct()), min_ns);
  // And within 3x of ideal for a solo flow.
  EXPECT_LT(static_cast<double>(st.fct()), 3.0 * min_ns + 1e6);
}

TEST(Simulator, HigherOverheadSlowsFlows) {
  // The Fig. 1/2 mechanism: extra header bytes inflate completion time.
  Dumbbell d;
  auto fct_with_overhead = [&](Bytes overhead) {
    SimConfig cfg = fast_config();
    cfg.extra_overhead_bytes = overhead;
    Simulator sim(d.g, d.is_host, cfg);
    const auto id = sim.add_flow(0, 1, 2'000'000, 0);
    sim.run_until(1 * kSecond);
    return sim.flow_stats()[id].fct();
  };
  const TimeNs base = fct_with_overhead(0);
  const TimeNs heavy = fct_with_overhead(108);
  ASSERT_GT(base, 0);
  ASSERT_GT(heavy, 0);
  EXPECT_GT(heavy, base);
  // 108B on 1040B wire ~ 10% inflation; allow slack.
  EXPECT_NEAR(static_cast<double>(heavy) / base, 1.10, 0.06);
}

TEST(Simulator, DropsWhenBufferTiny) {
  Dumbbell d;
  SimConfig cfg = fast_config();
  cfg.switch_buffer_bytes = 5'000;  // a few packets
  cfg.fabric_bandwidth_bps = 1e9;   // bottleneck in the middle
  Simulator sim(d.g, d.is_host, cfg);
  sim.add_flow(0, 1, 1'000'000, 0);
  sim.run_until(2 * kSecond);
  EXPECT_GT(sim.counters().packets_dropped, 0u);
  // Reliability still completes the flow.
  EXPECT_TRUE(sim.flow_stats()[0].done);
  EXPECT_GT(sim.flow_stats()[0].retransmits, 0u);
}

TEST(Simulator, TwoFlowsShareBottleneck) {
  Dumbbell d;
  SimConfig cfg = fast_config();
  Simulator sim(d.g, d.is_host, cfg);
  const Bytes size = 2'000'000;
  sim.add_flow(0, 1, size, 0);
  sim.add_flow(0, 1, size, 0);
  sim.run_until(2 * kSecond);
  ASSERT_TRUE(sim.flow_stats()[0].done);
  ASSERT_TRUE(sim.flow_stats()[1].done);
  // Sharing: each flow takes at least ~1.5x its solo time.
  const double solo_ns = static_cast<double>(size) * 8.0 / 10e9 * 1e9;
  EXPECT_GT(static_cast<double>(sim.flow_stats()[0].fct()), 1.3 * solo_ns);
}

TEST(Simulator, IntModeCarriesPerHopStack) {
  Dumbbell d;
  SimConfig cfg = fast_config();
  cfg.telemetry = TelemetryMode::kInt;
  cfg.int_values_per_hop = 3;
  cfg.transport = TransportKind::kHpcc;
  cfg.host_bandwidth_bps = 10e9;
  cfg.hpcc.base_rtt = 20 * kMicro;
  Simulator sim(d.g, d.is_host, cfg);
  sim.add_flow(0, 1, 500'000, 0);
  sim.run_until(1 * kSecond);
  EXPECT_TRUE(sim.flow_stats()[0].done);
  EXPECT_GT(sim.counters().telemetry_bytes_total, 0u);
}

TEST(Simulator, PintUtilizationMatchesLinkState) {
  Dumbbell d;
  SimConfig cfg = fast_config();
  cfg.telemetry = TelemetryMode::kPint;
  cfg.pint_bit_budget = 8;
  cfg.transport = TransportKind::kHpcc;
  cfg.hpcc.base_rtt = 20 * kMicro;
  Simulator sim(d.g, d.is_host, cfg);
  sim.add_flow(0, 1, 2'000'000, 0);
  sim.run_until(50 * kMilli);
  // While the flow runs, the bottleneck EWMA utilization approaches ~1.
  const double u = sim.link_utilization(2, 3);
  EXPECT_GT(u, 0.3);
  EXPECT_LT(u, 1.5);
  sim.run_until(2 * kSecond);
  EXPECT_TRUE(sim.flow_stats()[0].done);
}

TEST(Simulator, HpccKeepsQueuesShorterThanReno) {
  // HPCC's design goal: near-zero queues. Compare drops/retransmits against
  // TCP on a constrained buffer.
  Dumbbell d;
  auto run = [&](TransportKind t, TelemetryMode m) {
    SimConfig cfg = fast_config();
    cfg.transport = t;
    cfg.telemetry = m;
    cfg.switch_buffer_bytes = 60'000;
    cfg.hpcc.base_rtt = 20 * kMicro;
    Simulator sim(d.g, d.is_host, cfg);
    sim.add_flow(0, 1, 3'000'000, 0);
    sim.add_flow(0, 1, 3'000'000, 100 * kMicro);
    sim.run_until(3 * kSecond);
    EXPECT_TRUE(sim.flow_stats()[0].done);
    EXPECT_TRUE(sim.flow_stats()[1].done);
    return sim.counters().packets_dropped;
  };
  const auto reno_drops = run(TransportKind::kTcpReno, TelemetryMode::kNone);
  const auto hpcc_drops = run(TransportKind::kHpcc, TelemetryMode::kInt);
  EXPECT_LE(hpcc_drops, reno_drops);
}

TEST(HpccSender, WindowRespondsToCongestion) {
  HpccParams params;
  params.nic_bandwidth_bps = 10e9;
  params.base_rtt = 20 * kMicro;
  HpccSender sender(params);
  const Bytes initial = sender.window_bytes();

  // Feed ACKs reporting an over-utilized bottleneck.
  for (int i = 0; i < 50; ++i) {
    AckFeedback fb;
    fb.ack_time = i * 20 * kMicro;
    fb.pint_feedback = AggregateObservation{1.5};
    sender.on_ack(fb);
  }
  EXPECT_LT(sender.window_bytes(), initial);

  // Now an idle network: window recovers.
  for (int i = 50; i < 300; ++i) {
    AckFeedback fb;
    fb.ack_time = i * 20 * kMicro;
    fb.pint_feedback = AggregateObservation{0.05};
    sender.on_ack(fb);
  }
  EXPECT_GT(sender.window_bytes(), initial / 2);
}

TEST(HpccSender, IgnoresAcksWithoutTelemetry) {
  HpccParams params;
  HpccSender sender(params);
  const Bytes before = sender.window_bytes();
  AckFeedback fb;
  fb.ack_time = 1000;
  sender.on_ack(fb);  // no INT, no PINT
  EXPECT_EQ(sender.window_bytes(), before);
}

TEST(TcpReno, SlowStartDoubles) {
  TcpRenoParams params;
  params.mss = 1000;
  params.initial_cwnd = 2000;
  TcpRenoSender tcp(params);
  AckFeedback fb;
  fb.acked_bytes = 2000;
  tcp.on_ack(fb);
  EXPECT_EQ(tcp.window_bytes(), 4000);
}

TEST(TcpReno, LossHalvesFastRecovery) {
  TcpRenoParams params;
  params.mss = 1000;
  params.initial_cwnd = 16000;
  TcpRenoSender tcp(params);
  tcp.on_loss(0, /*timeout=*/false);
  EXPECT_EQ(tcp.window_bytes(), 8000);
  tcp.on_loss(0, /*timeout=*/true);
  EXPECT_EQ(tcp.window_bytes(), 1000);
}

}  // namespace
}  // namespace pint
