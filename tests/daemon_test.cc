// Cross-process collector daemon: real sockets, real processes.
//
// Load-bearing checks: (1) N=4 forked sink processes shipping over
// unix-domain and localhost-TCP sockets produce a merged record stream
// byte-identical to a monolithic sink fed the same packets — the same
// acceptance bar the in-process fan-in holds; (2) a sink SIGKILLed
// mid-epoch surfaces as an incomplete epoch for exactly that source while
// the survivors' epochs all close complete; (3) a sender that loses its
// daemon reconnects with backoff and resynchronizes at the next epoch
// boundary, with the shed frames counted exactly and the torn epoch typed
// incomplete — never spliced; (4) FanInPipeline's daemon stream kinds
// (listener thread + socket senders) match the monolithic baseline and
// keep priority classes intact across the wire.
//
// Fork discipline: the parent never spawns a thread before fork() — the
// daemon is driven by poll_once() on the main thread — so these tests are
// safe under TSAN; children may spawn ShardedSink workers freely.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pint/frame.h"
#include "sim/fanin.h"
#include "transport/collector_daemon.h"
#include "transport/sender.h"

namespace pint {
namespace {

using std::chrono::milliseconds;
using std::chrono::seconds;
using std::chrono::steady_clock;

constexpr unsigned kHops = 5;
constexpr std::size_t kFlows = 120;
constexpr std::size_t kPacketsPerFlow = 24;
constexpr unsigned kSinks = 4;

// Captures the full record stream so two sides can be compared exactly.
struct RecordingObserver : SinkObserver {
  struct Rec {
    SinkContext ctx;
    std::string query;
    bool path_event = false;
    Observation obs{};
    std::vector<SwitchId> path;
  };
  std::vector<Rec> records;

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    records.push_back({ctx, std::string(query), false, obs, {}});
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    records.push_back({ctx, std::string(query), true, {}, path});
  }
};

// Canonical bytes of a record stream: stable-sorted by packet id (each
// packet's records come from exactly one sink process, in order, so this
// is a total order on both streams), then re-encoded with the report
// codec — insertion-ordered name interning makes the encoding
// deterministic across processes.
std::vector<std::uint8_t> canonical_bytes(
    std::vector<RecordingObserver::Rec> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const auto& a, const auto& b) {
                     return a.ctx.packet_id < b.ctx.packet_id;
                   });
  ReportEncoder enc;
  for (const auto& rec : records) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.obs);
    }
  }
  return enc.finish();
}

PintFramework::Builder three_query_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xFA41)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow % 13);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow % 17);
  t.src_port = static_cast<std::uint16_t>(1000 + flow);
  t.dst_port = 443;
  return t;
}

std::vector<Packet> make_encoded_traffic() {
  const auto network = three_query_builder().build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kFlows * kPacketsPerFlow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < kPacketsPerFlow; ++j) {
    for (std::size_t f = 0; f < kFlows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      packets.push_back(std::move(p));
    }
  }
  for (Packet& p : packets) {
    const std::size_t f = (p.id - 1) % kFlows;
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>(f % 8 + i));
      view.set(metric::kHopLatencyNs, 100.0 * i + static_cast<double>(f));
      view.set(metric::kLinkUtilization, 0.1 * i + 0.01 * (f % 10));
      network->at_switch(p, i, view);
    }
  }
  return packets;
}

std::string test_socket_path(const char* tag) {
  return "/tmp/pint-daemon-test-" + std::to_string(::getpid()) + "-" + tag +
         ".sock";
}

// One forked sink process: builds its own FanInSender replica (the exact
// shipping code the in-process pipeline runs), connects a
// SocketSenderStream to the parent's daemon, delivers its share of the
// traffic in two epochs, and exits 0. As the victim it ships its second
// epoch's open+payloads without the close, signals readiness through
// `signal_fd`, and waits to be SIGKILLed. Child code returns exit codes
// instead of using gtest assertions (the child never returns to the test
// runner).
int run_child_sink(const std::vector<Packet>& packets, unsigned sink_index,
                   const SocketSenderConfig& socket_cfg, bool victim,
                   int signal_fd) {
  try {
    const auto builder = three_query_builder();
    auto stream = std::make_unique<SocketSenderStream>(socket_cfg);
    SocketSenderStream* raw = stream.get();
    FanInSender::Config cfg;
    cfg.shards = 2;
    cfg.batch_size = 64;
    cfg.max_frame_records = 128;
    FanInSender sender(builder, socket_cfg.source, std::move(stream), cfg);
    if (!raw->wait_connected(seconds(10))) return 2;
    const FlowDefinition partition = sender.sink().partition_definition();
    const std::size_t half = packets.size() / 2;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (i == half) sender.ship_epoch();
      const Packet& p = packets[i];
      if (FanInPipeline::route_sink(p.tuple, partition, kSinks) ==
          sink_index) {
        sender.deliver(p, kHops);
      }
    }
    if (victim) {
      // Mid-epoch death: open + payloads on the wire, no close marker.
      sender.ship_epoch(/*send_close=*/false);
      const char byte = 'x';
      if (::write(signal_fd, &byte, 1) != 1) return 3;
      for (;;) ::pause();  // parent SIGKILLs us here
    }
    sender.ship_epoch();
    sender.close();
    return 0;
  } catch (...) {
    return 9;
  }
}

struct ReapResult {
  bool exited = false;
  int exit_code = -1;
  bool signaled = false;
  int signal = 0;
};

ReapResult reap(pid_t pid) {
  ReapResult r;
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return r;
  if (WIFEXITED(status)) {
    r.exited = true;
    r.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    r.signaled = true;
    r.signal = WTERMSIG(status);
  }
  return r;
}

// --- handshake + peek unit tests --------------------------------------------

TEST(DaemonHello, RoundTripsAndRejectsMalformed) {
  const auto hello = encode_hello(0xDEADBEEF);
  const auto decoded =
      decode_hello(std::span<const std::uint8_t, kHelloBytes>(hello));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, 0xDEADBEEFu);

  auto bad_magic = hello;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(
      decode_hello(std::span<const std::uint8_t, kHelloBytes>(bad_magic)));
  auto bad_version = hello;
  bad_version[4] = 99;
  EXPECT_FALSE(
      decode_hello(std::span<const std::uint8_t, kHelloBytes>(bad_version)));
  const auto zero_source = encode_hello(0);
  EXPECT_FALSE(decode_hello(
      std::span<const std::uint8_t, kHelloBytes>(zero_source)));
}

TEST(PeekFrameType, ClassifiesChunksWithoutValidation) {
  FrameWriter writer(3);
  const auto open = writer.make_open();
  const auto payload = writer.make_payload(std::vector<std::uint8_t>(8, 7));
  const auto close = writer.make_close();
  EXPECT_EQ(peek_frame_type(open), FrameType::kEpochOpen);
  EXPECT_EQ(peek_frame_type(payload), FrameType::kPayload);
  EXPECT_EQ(peek_frame_type(close), FrameType::kEpochClose);

  EXPECT_FALSE(peek_frame_type(std::vector<std::uint8_t>(8, 0)));  // short
  auto corrupt = open;
  corrupt[0] ^= 0xFF;  // bad magic
  EXPECT_FALSE(peek_frame_type(corrupt));
  corrupt = open;
  corrupt[5] = 42;  // bad type byte
  EXPECT_FALSE(peek_frame_type(corrupt));
}

// --- fork-based multi-process integration ------------------------------------

void run_forked_byte_identity(bool tcp) {
  const std::vector<Packet> packets = make_encoded_traffic();

  FanInCollector collector;
  RecordingObserver central;
  collector.add_observer(&central);
  CollectorDaemonConfig dc;
  if (tcp) {
    dc.tcp = true;  // ephemeral port
  } else {
    dc.unix_path = test_socket_path("identity");
  }
  CollectorDaemon daemon(collector, dc);

  std::vector<pid_t> pids;
  for (unsigned i = 0; i < kSinks; ++i) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
      SocketSenderConfig sc;
      sc.unix_path = dc.unix_path;
      sc.tcp_port = daemon.tcp_port();
      sc.source = i + 1;
      sc.buffer_hint_bytes = 1 << 18;
      ::_exit(run_child_sink(packets, i, sc, /*victim=*/false,
                             /*signal_fd=*/-1));
    }
    pids.push_back(pid);
  }

  // Single-threaded event loop: the daemon drains all four sockets until
  // every sink's stream reaches its orderly end.
  const auto deadline = steady_clock::now() + seconds(60);
  while (daemon.sources_ended() < kSinks &&
         steady_clock::now() < deadline) {
    daemon.poll_once(10);
  }
  const bool all_ended = daemon.sources_ended() == kSinks;
  for (const pid_t pid : pids) {
    if (!all_ended) ::kill(pid, SIGKILL);
    const ReapResult r = reap(pid);
    EXPECT_TRUE(r.exited) << "child did not exit cleanly";
    EXPECT_EQ(r.exit_code, 0);
  }
  ASSERT_TRUE(all_ended) << "daemon never saw all sinks end";

  EXPECT_EQ(daemon.connections_accepted(), kSinks);
  EXPECT_EQ(daemon.handshake_failures(), 0u);
  EXPECT_EQ(collector.errors_total(), 0u);
  EXPECT_EQ(collector.incomplete_epochs(), 0u);
  for (unsigned i = 0; i < kSinks; ++i) {
    const auto* status = collector.source_status(i + 1);
    ASSERT_NE(status, nullptr) << "sink " << i;
    EXPECT_EQ(status->epochs_completed, 2u) << "sink " << i;
    EXPECT_TRUE(status->ended) << "sink " << i;
    EXPECT_EQ(status->frames_missed, 0u) << "sink " << i;
  }

  // The merged cross-process stream is byte-identical to one monolithic
  // sink fed the same packets (built after the fork window closed).
  const auto mono = three_query_builder().build_or_throw();
  RecordingObserver mono_records;
  mono->add_observer(&mono_records);
  mono->at_sink(std::span<const Packet>(packets), kHops);
  const auto mono_bytes = canonical_bytes(mono_records.records);
  ASSERT_FALSE(mono_bytes.empty());
  EXPECT_EQ(canonical_bytes(central.records), mono_bytes);
}

TEST(DaemonForkedSinks, ByteIdenticalToMonolithicOverUnixSocket) {
  run_forked_byte_identity(/*tcp=*/false);
}

TEST(DaemonForkedSinks, ByteIdenticalToMonolithicOverTcpSocket) {
  run_forked_byte_identity(/*tcp=*/true);
}

TEST(DaemonForkedSinks, SigkilledSinkMidEpochReportedIncomplete) {
  const std::vector<Packet> packets = make_encoded_traffic();

  FanInCollector collector;
  RecordingObserver central;
  collector.add_observer(&central);
  CollectorDaemonConfig dc;
  dc.unix_path = test_socket_path("sigkill");
  CollectorDaemon daemon(collector, dc);

  int ready_pipe[2];
  ASSERT_EQ(::pipe(ready_pipe), 0);
  ASSERT_EQ(::fcntl(ready_pipe[0], F_SETFL, O_NONBLOCK), 0);

  constexpr unsigned kVictim = 0;
  std::vector<pid_t> pids;
  for (unsigned i = 0; i < kSinks; ++i) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
      ::close(ready_pipe[0]);
      SocketSenderConfig sc;
      sc.unix_path = dc.unix_path;
      sc.source = i + 1;
      sc.buffer_hint_bytes = 1 << 18;
      ::_exit(run_child_sink(packets, i, sc, /*victim=*/(i == kVictim),
                             ready_pipe[1]));
    }
    pids.push_back(pid);
  }
  ::close(ready_pipe[1]);

  // Drive the daemon until the victim reports "mid-epoch bytes shipped,
  // close withheld", then kill -9 it. The kernel delivers the buffered
  // bytes first and the EOF after — exactly what a crashed sink looks
  // like on the wire.
  bool victim_killed = false;
  const auto deadline = steady_clock::now() + seconds(60);
  while (daemon.sources_ended() < kSinks &&
         steady_clock::now() < deadline) {
    daemon.poll_once(10);
    if (!victim_killed) {
      char byte = 0;
      if (::read(ready_pipe[0], &byte, 1) == 1) {
        ::kill(pids[kVictim], SIGKILL);
        victim_killed = true;
      }
    }
  }
  ::close(ready_pipe[0]);
  const bool all_ended = daemon.sources_ended() == kSinks;
  for (unsigned i = 0; i < kSinks; ++i) {
    if (!all_ended) ::kill(pids[i], SIGKILL);
    const ReapResult r = reap(pids[i]);
    if (i == kVictim) {
      EXPECT_TRUE(r.signaled);
      EXPECT_EQ(r.signal, SIGKILL);
    } else {
      EXPECT_TRUE(r.exited);
      EXPECT_EQ(r.exit_code, 0);
    }
  }
  ASSERT_TRUE(victim_killed) << "victim never signaled readiness";
  ASSERT_TRUE(all_ended) << "daemon never saw all sinks end";

  // The victim: first epoch complete, the one it died inside incomplete.
  const auto* victim = collector.source_status(kVictim + 1);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->epochs_completed, 1u);
  EXPECT_EQ(victim->epochs_incomplete, 1u);
  EXPECT_TRUE(victim->ended);
  EXPECT_GT(victim->payload_frames, 0u);  // its mid-epoch payloads arrived

  // Survivors: both epochs complete, nothing missed, records delivered.
  for (unsigned i = 0; i < kSinks; ++i) {
    if (i == kVictim) continue;
    const auto* status = collector.source_status(i + 1);
    ASSERT_NE(status, nullptr) << "sink " << i;
    EXPECT_EQ(status->epochs_completed, 2u) << "sink " << i;
    EXPECT_EQ(status->epochs_incomplete, 0u) << "sink " << i;
    EXPECT_EQ(status->frames_missed, 0u) << "sink " << i;
    EXPECT_TRUE(status->ended) << "sink " << i;
  }
  EXPECT_EQ(collector.incomplete_epochs(), 1u);
  EXPECT_GT(central.records.size(), 0u);
}

// --- sender reconnect --------------------------------------------------------

void pump_until(CollectorDaemon& daemon,
                const std::function<bool()>& done, milliseconds timeout) {
  const auto deadline = steady_clock::now() + timeout;
  while (!done() && steady_clock::now() < deadline) {
    daemon.poll_once(1);
  }
}

bool write_retrying(SocketSenderStream& stream,
                    std::span<const std::uint8_t> bytes,
                    CollectorDaemon* daemon, milliseconds timeout) {
  const auto deadline = steady_clock::now() + timeout;
  while (steady_clock::now() < deadline) {
    if (stream.try_write(bytes)) return true;
    if (daemon != nullptr) daemon->poll_once(1);
    std::this_thread::sleep_for(milliseconds(1));
  }
  return false;
}

TEST(SenderReconnect, ResumesAtEpochBoundaryWithExactAccounting) {
  const std::string path = test_socket_path("reconnect");
  constexpr std::uint32_t kSource = 7;

  FanInCollector collector;
  CollectorDaemonConfig dc;
  dc.unix_path = path;
  // Reconnect topology: a closed connection is a disconnect, not the end
  // of the source.
  dc.end_stream_on_disconnect = false;
  auto daemon = std::make_unique<CollectorDaemon>(collector, dc);

  SocketSenderConfig sc;
  sc.unix_path = path;
  sc.source = kSource;
  sc.backoff_initial = milliseconds(1);
  sc.backoff_max = milliseconds(10);
  SocketSenderStream sender(sc);
  FrameWriter writer(kSource);
  const std::vector<std::uint8_t> payload(64, 0x5A);

  // Epoch 1 completes normally.
  ASSERT_TRUE(write_retrying(sender, writer.make_open(), daemon.get(),
                             seconds(10)));
  ASSERT_TRUE(sender.try_write(writer.make_payload(payload)));
  ASSERT_TRUE(sender.try_write(writer.make_close()));
  pump_until(
      *daemon,
      [&] {
        const auto* s = collector.source_status(kSource);
        return s != nullptr && s->epochs_completed == 1;
      },
      seconds(10));
  ASSERT_NE(collector.source_status(kSource), nullptr);
  ASSERT_EQ(collector.source_status(kSource)->epochs_completed, 1u);

  // Epoch 2 gets its open and one payload onto the wire...
  ASSERT_TRUE(sender.try_write(writer.make_open()));
  ASSERT_TRUE(sender.try_write(writer.make_payload(payload)));
  pump_until(
      *daemon,
      [&] { return collector.source_status(kSource)->epoch_open; },
      seconds(10));
  // ...then the daemon dies mid-epoch. Its teardown reports the torn
  // epoch through disconnect_stream: incomplete, reassembler reset.
  daemon.reset();
  EXPECT_EQ(collector.source_status(kSource)->epochs_incomplete, 1u);
  EXPECT_EQ(collector.source_status(kSource)->disconnects, 1u);
  EXPECT_FALSE(collector.source_status(kSource)->ended);

  // The sender discovers the loss on its next writes. The rest of epoch 2
  // is shed — resuming it mid-epoch on a new connection would splice two
  // half-epochs — and every shed frame is counted.
  std::uint64_t shed = 0;
  for (int i = 0; i < 3; ++i) {
    // First attempt may surface the EPIPE (refused, not shed); once the
    // sender knows, mid-epoch chunks are accepted-and-shed.
    if (sender.try_write(writer.make_payload(payload))) continue;
    ASSERT_TRUE(write_retrying(sender, writer.make_payload(payload), nullptr,
                               seconds(5)));
  }
  ASSERT_TRUE(write_retrying(sender, writer.make_close(), nullptr,
                             seconds(5)));
  shed = sender.frames_resync_discarded();
  EXPECT_GE(shed, 3u);  // at least the 3 retried payloads + the close land
                        // in the resync window (the EPIPE probe may add 1)

  // A new daemon comes up on the same endpoint; the same collector keeps
  // the ledger. The next epoch-open ends the resync window: the sender
  // reconnects and the stream resumes cleanly at the boundary.
  daemon = std::make_unique<CollectorDaemon>(collector, dc);
  ASSERT_TRUE(write_retrying(sender, writer.make_open(), daemon.get(),
                             seconds(10)));
  ASSERT_TRUE(write_retrying(sender, writer.make_payload(payload),
                             daemon.get(), seconds(10)));
  ASSERT_TRUE(write_retrying(sender, writer.make_close(), daemon.get(),
                             seconds(10)));
  sender.close_write();
  pump_until(
      *daemon,
      [&] { return collector.source_status(kSource)->ended; },
      seconds(10));

  const auto* status = collector.source_status(kSource);
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->epochs_completed, 2u);   // epochs 1 and 3
  EXPECT_EQ(status->epochs_incomplete, 1u);  // the torn epoch 2
  EXPECT_EQ(status->disconnects, 1u);
  EXPECT_TRUE(status->ended);
  // No corruption anywhere: the torn epoch is typed accounting, not a
  // frame error, and the resumed stream raised no gap/truncation events.
  EXPECT_EQ(collector.errors_total(), 0u);
  EXPECT_EQ(sender.reconnects(), 1u);
  EXPECT_EQ(sender.frames_resync_discarded(), shed);  // open/close of epoch
                                                      // 3 shed nothing
}

TEST(CollectorDaemon, RejectsSecondConnectionForLiveSource) {
  const std::string path = test_socket_path("duplicate");
  FanInCollector collector;
  CollectorDaemonConfig dc;
  dc.unix_path = path;
  CollectorDaemon daemon(collector, dc);

  SocketSenderConfig sc;
  sc.unix_path = path;
  sc.source = 5;
  SocketSenderStream first(sc);
  FrameWriter writer_a(5);
  ASSERT_TRUE(write_retrying(first, writer_a.make_open(), &daemon,
                             seconds(10)));
  pump_until(
      daemon, [&] { return collector.source_status(5) != nullptr; },
      seconds(10));

  // A second connection claiming the same live source is rejected at the
  // handshake — two frame streams for one source would interleave.
  SocketSenderStream second(sc);
  FrameWriter writer_b(5);
  (void)write_retrying(second, writer_b.make_open(), &daemon, seconds(2));
  pump_until(
      daemon, [&] { return daemon.handshake_failures() >= 1; }, seconds(10));
  EXPECT_GE(daemon.handshake_failures(), 1u);
  // The original connection is unaffected.
  ASSERT_TRUE(write_retrying(first, writer_a.make_close(), &daemon,
                             seconds(10)));
  first.close_write();
  pump_until(
      daemon, [&] { return collector.source_status(5)->ended; }, seconds(10));
  EXPECT_TRUE(collector.source_status(5)->ended);
  EXPECT_EQ(collector.source_status(5)->epochs_completed, 1u);
}

// --- FanInPipeline daemon stream kinds ---------------------------------------

TEST(DaemonPipeline, ByteIdenticalToMonolithicOverDaemonTransport) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  const auto mono = builder.build_or_throw();
  RecordingObserver mono_records;
  mono->add_observer(&mono_records);
  mono->at_sink(std::span<const Packet>(packets), kHops);
  const std::vector<std::uint8_t> mono_bytes =
      canonical_bytes(mono_records.records);
  ASSERT_FALSE(mono_bytes.empty());

  for (const StreamKind stream :
       {StreamKind::kDaemonUnix, StreamKind::kDaemonTcp}) {
    FanInConfig cfg;
    cfg.num_sinks = kSinks;
    cfg.shards_per_sink = 2;
    cfg.batch_size = 64;
    cfg.stream = stream;
    cfg.max_frame_records = 128;  // several payload frames per epoch
    FanInPipeline pipeline(builder, cfg);
    RecordingObserver central;
    pipeline.collector().add_observer(&central);

    // Three epochs plus the shutdown flush, like the in-process matrix.
    const std::size_t third = packets.size() / 3;
    for (std::size_t i = 0; i < packets.size(); ++i) {
      pipeline.deliver(packets[i], kHops);
      if (i + 1 == third || i + 1 == 2 * third) pipeline.ship_epoch();
    }
    pipeline.shutdown();

    const std::string label =
        stream == StreamKind::kDaemonUnix ? "daemon-unix" : "daemon-tcp";
    const TransportCounters t = pipeline.transport_counters();
    EXPECT_EQ(t.frames_dropped, 0u) << label;
    EXPECT_EQ(t.sender_reconnects, 0u) << label;
    EXPECT_EQ(t.frames_resync_discarded, 0u) << label;
    EXPECT_EQ(pipeline.collector().errors_total(), 0u) << label;
    EXPECT_EQ(pipeline.collector().incomplete_epochs(), 0u) << label;
    ASSERT_NE(pipeline.daemon(), nullptr) << label;
    EXPECT_EQ(pipeline.daemon()->sources_ended(), kSinks) << label;
    for (unsigned s = 0; s < kSinks; ++s) {
      const auto* status =
          pipeline.collector().source_status(pipeline.source_id(s));
      ASSERT_NE(status, nullptr) << label;
      EXPECT_EQ(status->epochs_completed, 3u) << label << " sink " << s;
      EXPECT_TRUE(status->ended) << label;
    }
    EXPECT_EQ(canonical_bytes(central.records), mono_bytes) << label;
  }
}

TEST(DaemonPipeline, KilledSourceMidEpochOverTheWire) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  FanInConfig cfg;
  cfg.num_sinks = 2;
  cfg.shards_per_sink = 1;
  cfg.batch_size = 32;
  cfg.stream = StreamKind::kDaemonUnix;
  FanInPipeline pipeline(builder, cfg);

  const std::size_t half = packets.size() / 2;
  for (std::size_t i = 0; i < half; ++i) pipeline.deliver(packets[i], kHops);
  pipeline.ship_epoch();
  pipeline.kill_source_mid_epoch(0);
  for (std::size_t i = half; i < packets.size(); ++i) {
    pipeline.deliver(packets[i], kHops);
  }
  pipeline.ship_epoch();
  pipeline.shutdown();

  const auto* dead = pipeline.collector().source_status(pipeline.source_id(0));
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->epochs_completed, 1u);
  EXPECT_EQ(dead->epochs_incomplete, 1u);
  EXPECT_TRUE(dead->ended);
  const auto* alive =
      pipeline.collector().source_status(pipeline.source_id(1));
  ASSERT_NE(alive, nullptr);
  EXPECT_EQ(alive->epochs_incomplete, 0u);
  EXPECT_EQ(alive->epochs_completed, 3u);
  EXPECT_TRUE(alive->ended);
}

TEST(DaemonPipeline, PriorityClassesSurviveTheWire) {
  const std::vector<Packet> packets = make_encoded_traffic();

  // hpcc outranks path and latency (see fanin_test's priority matrix);
  // here the check is that the class structure crosses the socket: a
  // lossless daemon run merges to the exact monolithic per-query record
  // set, with the per-epoch class regrouping canonicalized away.
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  auto cc_q = make_perpacket_query(
      "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
      cc_tuning);
  cc_q.priority = 2;
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xFA41)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(cc_q);

  const auto mono = builder.build_or_throw();
  RecordingObserver mono_records;
  mono->add_observer(&mono_records);
  mono->at_sink(std::span<const Packet>(packets), kHops);

  const auto per_query_bytes = [](std::vector<RecordingObserver::Rec> recs) {
    std::stable_sort(recs.begin(), recs.end(),
                     [](const auto& a, const auto& b) {
                       if (a.ctx.packet_id != b.ctx.packet_id) {
                         return a.ctx.packet_id < b.ctx.packet_id;
                       }
                       return a.query < b.query;
                     });
    ReportEncoder enc;
    for (const auto& rec : recs) {
      if (rec.path_event) {
        enc.add_path(rec.ctx, rec.query, rec.path);
      } else {
        enc.add(rec.ctx, rec.query, rec.obs);
      }
    }
    return enc.finish();
  };

  FanInConfig cfg;
  cfg.num_sinks = 2;
  cfg.shards_per_sink = 1;
  cfg.batch_size = 64;
  cfg.stream = StreamKind::kDaemonUnix;
  cfg.max_frame_records = 64;
  FanInPipeline pipeline(builder, cfg);
  RecordingObserver central;
  pipeline.collector().add_observer(&central);
  for (const Packet& packet : packets) pipeline.deliver(packet, kHops);
  pipeline.ship_epoch();
  pipeline.shutdown();

  EXPECT_EQ(pipeline.transport_counters().frames_dropped, 0u);
  EXPECT_EQ(pipeline.collector().errors_total(), 0u);
  EXPECT_EQ(per_query_bytes(central.records),
            per_query_bytes(mono_records.records));
}

}  // namespace
}  // namespace pint
