// Epoch framing: the frame codec must round-trip exactly, and the
// reassembler must turn every kind of wire damage — truncation, bit
// flips, splices, drops, reordering, garbage — into typed FrameErrors,
// never into a crash, a hang, or a silently misparsed frame.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "pint/frame.h"

namespace pint {
namespace {

std::vector<std::uint8_t> random_payload(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.uniform_int(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// One source's stream: `epochs` epochs, each with `payloads` payload
// frames of random content. Returns the concatenated wire bytes and the
// payload contents in order.
struct TestStream {
  std::vector<std::uint8_t> wire;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::vector<std::size_t> boundaries;  // offsets where a frame starts/ends
  std::size_t frame_count = 0;

  bool is_boundary(std::size_t offset) const {
    return std::find(boundaries.begin(), boundaries.end(), offset) !=
           boundaries.end();
  }
};

TestStream make_stream(Rng& rng, std::uint32_t source, unsigned epochs,
                       unsigned payloads, std::size_t max_payload = 200) {
  TestStream ts;
  ts.boundaries.push_back(0);
  FrameWriter writer(source);
  const auto append = [&](std::vector<std::uint8_t> bytes) {
    ts.wire.insert(ts.wire.end(), bytes.begin(), bytes.end());
    ts.boundaries.push_back(ts.wire.size());
    ++ts.frame_count;
  };
  for (unsigned e = 0; e < epochs; ++e) {
    append(writer.make_open());
    for (unsigned p = 0; p < payloads; ++p) {
      auto payload = random_payload(rng, max_payload);
      append(writer.make_payload(payload));
      ts.payloads.push_back(std::move(payload));
    }
    append(writer.make_close());
  }
  return ts;
}

// Feeds `bytes` in random-sized chunks and collects every event.
struct Collected {
  std::vector<Frame> frames;
  std::vector<FrameError> errors;
};

Collected collect(Rng& rng, std::span<const std::uint8_t> bytes,
                  bool finish = true) {
  FrameReassembler reassembler;
  Collected out;
  std::size_t off = 0;
  const auto pump = [&] {
    while (auto event = reassembler.next()) {
      if (auto* frame = std::get_if<Frame>(&*event)) {
        out.frames.push_back(std::move(*frame));
      } else {
        out.errors.push_back(std::get<FrameError>(*event));
      }
    }
  };
  while (off < bytes.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.uniform_int(97), bytes.size() - off);
    reassembler.feed(bytes.subspan(off, n));
    off += n;
    pump();
  }
  if (finish) {
    reassembler.finish();
    pump();
  }
  return out;
}

TEST(Frame, RoundTripsThroughArbitraryChunking) {
  Rng rng(0xF4A3E);
  for (int trial = 0; trial < 20; ++trial) {
    const auto ts = make_stream(rng, /*source=*/7, /*epochs=*/3,
                                /*payloads=*/4);
    const Collected got = collect(rng, ts.wire);
    EXPECT_TRUE(got.errors.empty()) << "trial " << trial;
    ASSERT_EQ(got.frames.size(), ts.frame_count) << "trial " << trial;
    std::size_t payload_idx = 0;
    std::uint32_t expected_seq = 0;
    for (const Frame& frame : got.frames) {
      EXPECT_EQ(frame.source, 7u);
      EXPECT_EQ(frame.seq, expected_seq++);
      if (frame.type == FrameType::kPayload) {
        ASSERT_LT(payload_idx, ts.payloads.size());
        EXPECT_EQ(frame.payload, ts.payloads[payload_idx++]);
      }
    }
    EXPECT_EQ(payload_idx, ts.payloads.size());
  }
}

TEST(Frame, SingleByteFeedsWork) {
  Rng rng(0x1B);
  const auto ts = make_stream(rng, 3, 1, 3);
  FrameReassembler reassembler;
  std::size_t frames = 0;
  for (const std::uint8_t byte : ts.wire) {
    reassembler.feed(std::span(&byte, 1));
    while (auto event = reassembler.next()) {
      frames += std::holds_alternative<Frame>(*event) ? 1 : 0;
      EXPECT_TRUE(std::holds_alternative<Frame>(*event));
    }
  }
  EXPECT_EQ(frames, ts.frame_count);
}

TEST(Frame, EveryTruncationIsTypedNeverSilent) {
  Rng rng(0x7241C);
  const auto ts = make_stream(rng, 9, 2, 3, /*max_payload=*/40);
  // Cut the stream at every prefix length: the parse must terminate, and
  // a cut inside a frame must surface kTruncatedStream (a cut exactly on
  // a frame boundary is a clean short stream: no error).
  for (std::size_t cut = 0; cut <= ts.wire.size(); ++cut) {
    const Collected got =
        collect(rng, std::span(ts.wire.data(), cut));
    std::size_t bytes_of_frames = 0;
    for (const Frame& f : got.frames) {
      bytes_of_frames += kFrameHeaderBytes + f.payload.size();
    }
    if (bytes_of_frames == cut) {
      EXPECT_TRUE(got.errors.empty()) << "cut " << cut;
    } else {
      ASSERT_EQ(got.errors.size(), 1u) << "cut " << cut;
      EXPECT_EQ(got.errors[0].code, FrameErrorCode::kTruncatedStream)
          << "cut " << cut;
      EXPECT_EQ(got.errors[0].detail, cut - bytes_of_frames)
          << "cut " << cut;
    }
  }
}

TEST(Frame, BitFlipsAreDetectedAndParsingRecovers) {
  Rng rng(0xB17F11);
  for (int trial = 0; trial < 200; ++trial) {
    const auto ts = make_stream(rng, 1, 2, 3, /*max_payload=*/60);
    std::vector<std::uint8_t> corrupt = ts.wire;
    const std::size_t at = rng.uniform_int(corrupt.size());
    corrupt[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));

    const Collected got = collect(rng, corrupt);
    // Every byte of the wire is covered by a frame CRC (or is header
    // structure), so one flipped bit must cost at least one typed error
    // and at most a few frames — and must never fabricate extra frames
    // whose bytes don't check out.
    EXPECT_FALSE(got.errors.empty()) << "trial " << trial << " at " << at;
    EXPECT_LT(got.frames.size(), ts.frame_count) << "trial " << trial;
    for (const Frame& frame : got.frames) {
      EXPECT_EQ(frame.source, 1u);  // source is CRC-protected
    }
  }
}

TEST(Frame, SplicedStreamsSurfaceErrorsAndRecover) {
  Rng rng(0x5B11CE);
  std::size_t trials_with_errors = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = make_stream(rng, 1, 2, 2, 50);
    const auto b = make_stream(rng, 2, 2, 2, 50);
    // Prefix of A torn mid-frame, then a suffix of B starting mid-frame:
    // the classic reconnect-after-crash splice.
    const std::size_t cut_a = 1 + rng.uniform_int(a.wire.size() - 1);
    const std::size_t cut_b = 1 + rng.uniform_int(b.wire.size() - 1);
    std::vector<std::uint8_t> spliced(a.wire.begin(),
                                      a.wire.begin() + cut_a);
    spliced.insert(spliced.end(), b.wire.begin() + cut_b, b.wire.end());

    const Collected got = collect(rng, spliced);
    trials_with_errors += got.errors.empty() ? 0 : 1;
    // No crash, and every delivered frame is genuine: its bytes existed
    // in A or B (CRC makes fabrication vanishingly unlikely), so sources
    // can only be 1 or 2.
    std::size_t frame_bytes = 0;
    for (const Frame& frame : got.frames) {
      EXPECT_TRUE(frame.source == 1 || frame.source == 2);
      frame_bytes += kFrameHeaderBytes + frame.payload.size();
    }
    // The load-bearing property: no byte vanishes silently. Either the
    // splice happened to reconstruct a fully valid stream (possible when
    // both cuts fall the same few bytes past a boundary — magic and
    // version are frame-invariant, so A's torn prefix can complete B's
    // torn header) and every byte is accounted to a validated frame, or
    // the damage surfaced as typed errors.
    if (got.errors.empty()) {
      EXPECT_EQ(frame_bytes, spliced.size()) << "trial " << trial;
    }
  }
  // Random cuts overwhelmingly tear for real; the detector must fire for
  // nearly all of them, not just a lucky few.
  EXPECT_GT(trials_with_errors, 80u);
}

TEST(Frame, PureGarbageNeverCrashesOrYieldsFrames) {
  Rng rng(0x6A4BA6E);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> garbage(1 + rng.uniform_int(4096));
    for (auto& byte : garbage) byte = static_cast<std::uint8_t>(rng.next());
    const Collected got = collect(rng, garbage);
    EXPECT_TRUE(got.frames.empty()) << "trial " << trial;
    EXPECT_FALSE(got.errors.empty()) << "trial " << trial;
  }
}

TEST(Frame, DroppedFrameShowsAsSequenceGap) {
  Rng rng(0xD209);
  FrameWriter writer(4);
  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(writer.make_open());
  for (int i = 0; i < 3; ++i) {
    frames.push_back(writer.make_payload(random_payload(rng, 30)));
  }
  frames.push_back(writer.make_close());

  std::vector<std::uint8_t> wire;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i == 2) continue;  // drop the middle payload frame
    wire.insert(wire.end(), frames[i].begin(), frames[i].end());
  }
  const Collected got = collect(rng, wire);
  ASSERT_EQ(got.errors.size(), 1u);
  EXPECT_EQ(got.errors[0].code, FrameErrorCode::kSequenceGap);
  EXPECT_EQ(got.errors[0].source, 4u);
  EXPECT_EQ(got.errors[0].detail, 1u);  // exactly one frame missing
  EXPECT_EQ(got.frames.size(), frames.size() - 1);
}

TEST(Frame, ReorderedFramesShowAsReversal) {
  Rng rng(0x2E02D);
  FrameWriter writer(6);
  std::vector<std::vector<std::uint8_t>> frames;
  frames.push_back(writer.make_open());
  frames.push_back(writer.make_payload(random_payload(rng, 30)));
  frames.push_back(writer.make_payload(random_payload(rng, 30)));
  frames.push_back(writer.make_close());
  std::swap(frames[1], frames[2]);

  std::vector<std::uint8_t> wire;
  for (const auto& f : frames) wire.insert(wire.end(), f.begin(), f.end());
  const Collected got = collect(rng, wire);
  EXPECT_EQ(got.frames.size(), 4u);  // all frames still delivered
  ASSERT_EQ(got.errors.size(), 2u);
  EXPECT_EQ(got.errors[0].code, FrameErrorCode::kSequenceGap);
  EXPECT_EQ(got.errors[1].code, FrameErrorCode::kSequenceReversal);
}

TEST(Frame, WriterEnforcesEpochProtocol) {
  FrameWriter writer(1);
  EXPECT_THROW(writer.make_payload({}), std::logic_error);
  EXPECT_THROW(writer.make_close(), std::logic_error);
  (void)writer.make_open();
  EXPECT_THROW(writer.make_open(), std::logic_error);
  EXPECT_THROW(writer.payload_dropped(), std::logic_error);
}

TEST(Frame, CloseMarkerCountsOnlyShippedPayloads) {
  Rng rng(0xC0);
  FrameWriter writer(2);
  std::vector<std::uint8_t> wire = writer.make_open();
  for (int i = 0; i < 4; ++i) {
    const auto frame = writer.make_payload(random_payload(rng, 20));
    if (i % 2 == 0) {
      wire.insert(wire.end(), frame.begin(), frame.end());
    } else {
      writer.payload_dropped();  // backpressure dropped it
    }
  }
  const auto close = writer.make_close();
  wire.insert(wire.end(), close.begin(), close.end());
  EXPECT_EQ(writer.frames_dropped(), 2u);

  const Collected got = collect(rng, wire);
  std::size_t payloads = 0;
  std::uint32_t close_count = 0;
  for (const Frame& frame : got.frames) {
    if (frame.type == FrameType::kPayload) ++payloads;
    if (frame.type == FrameType::kEpochClose) {
      close_count = frame.close_payload_count();
    }
  }
  // The receiver can reconcile: close says 2 shipped, 2 arrived — the
  // epoch is complete despite the (counted, sequence-visible) drops.
  EXPECT_EQ(payloads, 2u);
  EXPECT_EQ(close_count, 2u);
  std::size_t gap_frames = 0;
  for (const FrameError& error : got.errors) {
    if (error.code == FrameErrorCode::kSequenceGap) {
      gap_frames += error.detail;
    }
  }
  EXPECT_EQ(gap_frames, 2u);
}

TEST(Frame, OversizedDeclaredPayloadIsRejected) {
  Rng rng(0x0E);
  FrameReassembler reassembler(/*max_payload_bytes=*/64);
  FrameWriter writer(1);
  std::vector<std::uint8_t> wire = writer.make_open();
  const auto big = writer.make_payload(std::vector<std::uint8_t>(128, 0xAB));
  wire.insert(wire.end(), big.begin(), big.end());
  reassembler.feed(wire);
  reassembler.finish();
  bool saw_oversize = false;
  std::size_t frames = 0;
  while (auto event = reassembler.next()) {
    if (auto* error = std::get_if<FrameError>(&*event)) {
      saw_oversize |= error->code == FrameErrorCode::kOversizedPayload;
    } else {
      ++frames;
    }
  }
  EXPECT_TRUE(saw_oversize);
  EXPECT_EQ(frames, 1u);  // the open marker still parses
}

TEST(Frame, ZeroCopyViewsMatchMaterializedFrames) {
  Rng rng(0x2E0C);
  const TestStream ts = make_stream(rng, /*source=*/9, /*epochs=*/3,
                                    /*payloads=*/5);

  // Reference pass: owning frames.
  Collected ref = collect(rng, ts.wire);
  ASSERT_EQ(ref.frames.size(), ts.frame_count);

  // View pass: same chunked feeding, zero-copy next_view(). Views are
  // consumed (compared/copied) before the next feed, per the contract.
  FrameReassembler reassembler;
  std::vector<Frame> viewed;
  std::size_t off = 0;
  const auto pump = [&] {
    while (auto event = reassembler.next_view()) {
      if (auto* view = std::get_if<FrameView>(&*event)) {
        Frame copy;
        copy.type = view->type;
        copy.source = view->source;
        copy.epoch = view->epoch;
        copy.seq = view->seq;
        copy.payload.assign(view->payload.begin(), view->payload.end());
        if (view->type == FrameType::kEpochClose) {
          EXPECT_EQ(view->close_payload_count(), copy.close_payload_count());
        }
        viewed.push_back(std::move(copy));
      }
    }
  };
  while (off < ts.wire.size()) {
    const std::size_t n = std::min<std::size_t>(1 + rng.uniform_int(53),
                                                ts.wire.size() - off);
    reassembler.feed(
        std::span<const std::uint8_t>(ts.wire.data() + off, n));
    off += n;
    pump();
  }
  reassembler.finish();
  pump();

  ASSERT_EQ(viewed.size(), ref.frames.size());
  for (std::size_t i = 0; i < viewed.size(); ++i) {
    EXPECT_EQ(static_cast<int>(viewed[i].type),
              static_cast<int>(ref.frames[i].type));
    EXPECT_EQ(viewed[i].source, ref.frames[i].source);
    EXPECT_EQ(viewed[i].epoch, ref.frames[i].epoch);
    EXPECT_EQ(viewed[i].seq, ref.frames[i].seq);
    EXPECT_EQ(viewed[i].payload, ref.frames[i].payload);
  }
}

}  // namespace
}  // namespace pint
