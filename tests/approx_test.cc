#include <gtest/gtest.h>

#include <cmath>

#include "approx/morris.h"
#include "approx/value_compression.h"
#include "common/rng.h"
#include "hash/global_hash.h"

namespace pint {
namespace {

TEST(Multiplicative, RoundTripWithinGuarantee) {
  const double eps = 0.01;
  MultiplicativeCompressor c(eps, 1e9);
  const double bound = (1.0 + eps) * (1.0 + eps);
  for (double v : {1.0, 2.0, 10.0, 1234.5, 9.9e8}) {
    const double back = c.decode(c.encode(v));
    EXPECT_LE(back / v, bound) << v;
    EXPECT_GE(back / v, 1.0 / bound) << v;
  }
}

TEST(Multiplicative, ZeroReserved) {
  MultiplicativeCompressor c(0.05, 1e6);
  EXPECT_EQ(c.encode(0.0), 0u);
  EXPECT_EQ(c.decode(0), 0.0);
  EXPECT_GT(c.encode(1.0), 0u);
}

TEST(Multiplicative, MonotoneEncoding) {
  MultiplicativeCompressor c(0.02, 1e9);
  std::uint64_t prev = 0;
  for (double v = 1.0; v < 1e9; v *= 1.7) {
    const std::uint64_t code = c.encode(v);
    EXPECT_GE(code, prev);
    prev = code;
  }
}

TEST(Multiplicative, EpsForPaperExample) {
  // Paper Section 4.3: compressing 32-bit values into 16 bits admits
  // eps ~= 0.0025.
  const double eps = MultiplicativeCompressor::eps_for(
      std::pow(2.0, 32.0), 16);
  EXPECT_NEAR(eps, 0.00017, 0.0002);  // 2^16 codes is generous
  // And the tighter paper-style accounting: the compressor built from it
  // must fit in 16 bits.
  MultiplicativeCompressor c(std::max(eps, 1e-5), std::pow(2.0, 32.0));
  EXPECT_LE(c.bits_needed(), 16u);
}

TEST(Multiplicative, EightBitUtilizationExample) {
  // Paper: 8 bits support eps = 0.025 for HPCC's utilization range.
  MultiplicativeCompressor c(0.025, 1e5);
  EXPECT_LE(c.bits_needed(), 8u);
}

TEST(Multiplicative, RandomizedRoundingIsUnbiasedInLogDomain) {
  const double eps = 0.05;
  MultiplicativeCompressor c(eps, 1e9);
  GlobalHash h(99);
  const double v = 12345.678;
  const double exact_log =
      std::log(v) / (2.0 * std::log1p(eps));
  double sum_codes = 0.0;
  const int n = 200000;
  for (PacketId p = 0; p < static_cast<PacketId>(n); ++p) {
    sum_codes += static_cast<double>(c.encode_randomized(v, h, p)) - 1.0;
  }
  EXPECT_NEAR(sum_codes / n, exact_log, 0.01);
}

TEST(Multiplicative, RejectsBadArguments) {
  EXPECT_THROW(MultiplicativeCompressor(0.0, 10), std::invalid_argument);
  EXPECT_THROW(MultiplicativeCompressor(1.5, 10), std::invalid_argument);
  MultiplicativeCompressor c(0.1, 100);
  EXPECT_THROW(c.encode(-1.0), std::invalid_argument);
}

TEST(Additive, RoundTripWithinDelta) {
  const double delta = 16.0;
  AdditiveCompressor c(delta);
  for (double v : {0.0, 5.0, 100.0, 1234.0, 99999.0}) {
    EXPECT_NEAR(c.decode(c.encode(v)), v, delta + 1e-9) << v;
  }
}

TEST(Additive, SavesExpectedBits) {
  // Values up to 2^20 with delta = 2^6 need codes up to 2^13: 7 bits saved.
  AdditiveCompressor c(64.0);
  EXPECT_LE(c.encode(std::pow(2.0, 20.0)), 1u << 13);
}

TEST(Morris, EstimateWithinRelativeError) {
  Rng rng(123);
  const double a = 1.08;
  const int truth = 100000;
  double sum = 0.0;
  const int reps = 50;
  for (int r = 0; r < reps; ++r) {
    MorrisCounter m(a);
    for (int i = 0; i < truth; ++i) m.increment(rng);
    sum += m.estimate();
  }
  EXPECT_NEAR(sum / reps / truth, 1.0, 0.1);
}

TEST(Morris, BitsNeededIsLogLog) {
  // Counting to 2^30 with a=2 takes a ~5-bit exponent.
  EXPECT_LE(MorrisCounter::bits_needed(2.0, std::pow(2.0, 30.0)), 6u);
}

TEST(Morris, MergeMaxTakesLarger) {
  Rng rng(5);
  MorrisCounter a, b;
  for (int i = 0; i < 1000; ++i) a.increment(rng);
  for (int i = 0; i < 10; ++i) b.increment(rng);
  const auto exp_a = a.exponent();
  b.merge_max(a);
  EXPECT_EQ(b.exponent(), exp_a);
}

}  // namespace
}  // namespace pint
