// Multi-sink scale-out, end to end: simulated fat-tree traffic encodes
// digests at real switches; a sink_tap mirrors the delivered stream into a
// FanInPipeline (several ShardedSink hosts feeding one collector through
// the report codec); the fan-in's merged inference must match the
// simulator's own monolithic sink exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "sim/fanin.h"
#include "sim/simulator.h"
#include "topology/fat_tree.h"

namespace pint {
namespace {

struct CountingObserver : SinkObserver {
  std::uint64_t observations = 0;
  std::uint64_t paths = 0;

  void on_observation(const SinkContext&, std::string_view,
                      const Observation&) override {
    ++observations;
  }
  void on_path_decoded(const SinkContext&, std::string_view,
                       const std::vector<SwitchId>&) override {
    ++paths;
  }
};

// Mirrors Simulator::framework_flow_key's tuple synthesis so the test can
// address the same flow in the fan-in pipeline.
FiveTuple sim_flow_tuple(NodeId src, NodeId dst, std::uint32_t flow_id) {
  FiveTuple tuple;
  tuple.src_ip = src;
  tuple.dst_ip = dst;
  tuple.src_port = static_cast<std::uint16_t>(flow_id & 0xFFFF);
  tuple.dst_port = static_cast<std::uint16_t>(flow_id >> 16);
  return tuple;
}

TEST(FanIn, MatchesMonolithicSinkOnSimulatedTraffic) {
  FatTree ft = make_fat_tree(4);
  std::vector<bool> is_host(ft.graph.num_nodes(), false);
  for (NodeId h : ft.nodes.hosts) is_host[h] = true;

  SimConfig cfg;
  cfg.telemetry = TelemetryMode::kPint;
  cfg.pint_full = true;
  cfg.pint_bit_budget = 16;
  cfg.pint_frequency = 1.0 / 16.0;
  cfg.transport = TransportKind::kHpcc;
  cfg.hpcc.base_rtt = 20 * kMicro;
  cfg.seed = 5;

  // The fan-in builds its sink replicas from the simulator's own builder,
  // so decoding is bit-for-bit the monolithic sink's.
  FanInConfig fan_cfg;
  fan_cfg.num_sinks = 2;
  fan_cfg.shards_per_sink = 2;
  fan_cfg.batch_size = 64;
  FanInPipeline pipeline(
      Simulator::full_framework_builder(cfg, ft.graph, is_host), fan_cfg);
  CountingObserver central;
  pipeline.collector().add_observer(&central);

  std::uint64_t tapped = 0;
  cfg.sink_tap = [&](const Packet& packet, unsigned switch_hops) {
    ++tapped;
    pipeline.deliver(packet, switch_hops);
  };

  Simulator sim(ft.graph, is_host, cfg);
  struct FlowRef {
    NodeId src, dst;
    std::uint32_t id;
  };
  std::vector<FlowRef> flows;
  // A mix of cross-pod (5 switch hops) and same-pod flows.
  const auto& hosts = ft.nodes.hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    const NodeId src = hosts[i];
    const NodeId dst = hosts[hosts.size() - 1 - i];
    flows.push_back({src, dst, sim.add_flow(src, dst, 1'500'000, 0)});
  }
  sim.run_until(1 * kSecond);
  pipeline.ship_epoch();

  ASSERT_GT(tapped, 0u);
  EXPECT_GT(pipeline.bytes_shipped(), 0u);
  EXPECT_GT(central.observations, 0u);
  EXPECT_GT(central.paths, 0u);

  // Every sink host processed its share; nothing was lost or duplicated.
  std::uint64_t processed = 0;
  for (unsigned s = 0; s < pipeline.num_sinks(); ++s) {
    processed += pipeline.sink(s).packets_processed();
  }
  EXPECT_EQ(processed, tapped);

  const PintFramework* mono = sim.framework();
  ASSERT_NE(mono, nullptr);
  for (const FlowRef& flow : flows) {
    ASSERT_TRUE(sim.flow_stats()[flow.id].done) << "flow " << flow.id;
    const FiveTuple tuple = sim_flow_tuple(flow.src, flow.dst, flow.id);
    const std::uint64_t fkey = sim.framework_flow_key(flow.id);

    // Path tracing: identical decode state.
    EXPECT_EQ(pipeline.sink(pipeline.sink_of(tuple))
                  .path_progress("path", tuple),
              mono->path_progress("path", fkey));
    const auto mono_path = mono->flow_path(fkey);
    ASSERT_TRUE(mono_path.has_value());
    EXPECT_EQ(pipeline.sink(pipeline.sink_of(tuple)).flow_path("path", tuple),
              mono_path);

    // Latency quantiles: identical recorder state at every hop.
    const unsigned k = sim.flow_stats()[flow.id].path_hops;
    for (HopIndex hop = 1; hop <= k; ++hop) {
      EXPECT_EQ(pipeline.sink(pipeline.sink_of(tuple))
                    .latency_quantile("latency", tuple, hop, 0.5),
                mono->latency_quantile(fkey, hop, 0.5))
          << "hop " << hop;
    }
  }
}

TEST(FanIn, ValidatesConfiguration) {
  std::vector<std::uint64_t> universe{1, 2, 3};
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0));
  EXPECT_THROW(FanInPipeline(builder, FanInConfig{.num_sinks = 0}),
               std::invalid_argument);
}

TEST(FanIn, RejectsUnpartitionableMixAcrossSinks) {
  // Source- + destination-keyed queries cannot be split across sink hosts
  // consistently, even with one shard per sink (where ShardedSink itself
  // has nothing to enforce).
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec by_source = make_dynamic_query(
      "per_source", std::string(extractor::kHopLatency), 8, 0.5, tuning);
  by_source.query.flow_definition = FlowDefinition::kSourceIp;
  QuerySpec by_dest = make_dynamic_query(
      "per_dest", std::string(extractor::kQueueOccupancy), 8, 0.5, tuning);
  by_dest.query.flow_definition = FlowDefinition::kDestinationIp;
  PintFramework::Builder builder;
  builder.global_bit_budget(16).add_query(by_source).add_query(by_dest);

  EXPECT_THROW(
      FanInPipeline(builder,
                    FanInConfig{.num_sinks = 2, .shards_per_sink = 1}),
      std::invalid_argument);
  EXPECT_NO_THROW(
      FanInPipeline(builder,
                    FanInConfig{.num_sinks = 1, .shards_per_sink = 1}));
}

}  // namespace
}  // namespace pint
