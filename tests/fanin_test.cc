// Multi-sink fan-in over the framed streaming transport.
//
// Load-bearing checks: (1) over both stream implementations (SPSC ring and
// unix socketpair), at 1/2/4 sinks x 1/2/4 shards, the collector's merged
// record stream is byte-identical to the monolithic sink's when no frames
// are dropped; (2) drop-newest backpressure reports exact dropped-frame
// counts (writer counter == receiver sequence gaps == SinkReport
// TransportCounters); (3) a source killed mid-epoch is reported as an
// incomplete epoch while the surviving sources keep decoding; (4) the
// original end-to-end simulator path still matches the monolithic sink.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/fanin.h"
#include "sim/simulator.h"
#include "topology/fat_tree.h"

namespace pint {
namespace {

constexpr unsigned kHops = 5;
constexpr std::size_t kFlows = 120;
constexpr std::size_t kPacketsPerFlow = 24;

struct CountingObserver : SinkObserver {
  std::uint64_t observations = 0;
  std::uint64_t paths = 0;

  void on_observation(const SinkContext&, std::string_view,
                      const Observation&) override {
    ++observations;
  }
  void on_path_decoded(const SinkContext&, std::string_view,
                       const std::vector<SwitchId>&) override {
    ++paths;
  }
};

// Captures the full record stream so two sides can be compared exactly.
struct RecordingObserver : SinkObserver {
  struct Rec {
    SinkContext ctx;
    std::string query;
    bool path_event = false;
    Observation obs{};
    std::vector<SwitchId> path;
  };
  std::vector<Rec> records;

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    records.push_back({ctx, std::string(query), false, obs, {}});
  }
  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    records.push_back({ctx, std::string(query), true, {}, path});
  }
};

// Canonical bytes of a record stream: stable-sorted by packet id (each
// packet's records come from exactly one sink, in order, so this is a
// total order on both the monolithic and the fan-in stream), then
// re-encoded with the report codec.
std::vector<std::uint8_t> canonical_bytes(
    std::vector<RecordingObserver::Rec> records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const auto& a, const auto& b) {
                     return a.ctx.packet_id < b.ctx.packet_id;
                   });
  ReportEncoder enc;
  for (const auto& rec : records) {
    if (rec.path_event) {
      enc.add_path(rec.ctx, rec.query, rec.path);
    } else {
      enc.add(rec.ctx, rec.query, rec.obs);
    }
  }
  return enc.finish();
}

PintFramework::Builder three_query_builder() {
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = kHops;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .seed(0xFA41)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    15.0 / 16.0, latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8, 1.0 / 16.0,
          cc_tuning));
  return builder;
}

FiveTuple tuple_of_flow(std::size_t flow) {
  FiveTuple t;
  t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(flow % 13);
  t.dst_ip = 0x0B000000u + static_cast<std::uint32_t>(flow % 17);
  t.src_port = static_cast<std::uint16_t>(1000 + flow);
  t.dst_port = 443;
  return t;
}

std::vector<Packet> make_encoded_traffic() {
  const auto network = three_query_builder().build_or_throw();
  std::vector<Packet> packets;
  packets.reserve(kFlows * kPacketsPerFlow);
  PacketId next_id = 1;
  for (std::size_t j = 0; j < kPacketsPerFlow; ++j) {
    for (std::size_t f = 0; f < kFlows; ++f) {
      Packet p;
      p.id = next_id++;
      p.tuple = tuple_of_flow(f);
      packets.push_back(std::move(p));
    }
  }
  for (Packet& p : packets) {
    const std::size_t f = (p.id - 1) % kFlows;
    for (HopIndex i = 1; i <= kHops; ++i) {
      SwitchView view(static_cast<SwitchId>(f % 8 + i));
      view.set(metric::kHopLatencyNs, 100.0 * i + static_cast<double>(f));
      view.set(metric::kLinkUtilization, 0.1 * i + 0.01 * (f % 10));
      network->at_switch(p, i, view);
    }
  }
  return packets;
}

// Mirrors Simulator::framework_flow_key's tuple synthesis so the test can
// address the same flow in the fan-in pipeline.
FiveTuple sim_flow_tuple(NodeId src, NodeId dst, std::uint32_t flow_id) {
  FiveTuple tuple;
  tuple.src_ip = src;
  tuple.dst_ip = dst;
  tuple.src_port = static_cast<std::uint16_t>(flow_id & 0xFFFF);
  tuple.dst_port = static_cast<std::uint16_t>(flow_id >> 16);
  return tuple;
}

// The acceptance matrix: both stream implementations, 1/2/4 sources x
// 1/2/4 shards, several epochs — merged records must be byte-identical to
// the monolithic sink's stream whenever nothing is dropped.
TEST(FanIn, ByteIdenticalToMonolithicAcrossStreamsSinksShards) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  const auto mono = builder.build_or_throw();
  RecordingObserver mono_records;
  mono->add_observer(&mono_records);
  mono->at_sink(std::span<const Packet>(packets), kHops);
  const std::vector<std::uint8_t> mono_bytes =
      canonical_bytes(mono_records.records);
  ASSERT_FALSE(mono_bytes.empty());

  for (const StreamKind stream :
       {StreamKind::kSpscRing, StreamKind::kSocketPair}) {
    for (const unsigned sinks : {1u, 2u, 4u}) {
      for (const unsigned shards : {1u, 2u, 4u}) {
        FanInConfig cfg;
        cfg.num_sinks = sinks;
        cfg.shards_per_sink = shards;
        cfg.batch_size = 64;
        cfg.stream = stream;
        cfg.max_frame_records = 128;  // several payload frames per epoch
        FanInPipeline pipeline(builder, cfg);
        RecordingObserver central;
        pipeline.collector().add_observer(&central);

        // Three epochs plus the shutdown flush.
        const std::size_t third = packets.size() / 3;
        for (std::size_t i = 0; i < packets.size(); ++i) {
          pipeline.deliver(packets[i], kHops);
          if (i + 1 == third || i + 1 == 2 * third) pipeline.ship_epoch();
        }
        pipeline.shutdown();

        const std::string label = std::string("stream=") +
                                  (stream == StreamKind::kSpscRing
                                       ? "ring"
                                       : "socketpair") +
                                  " sinks=" + std::to_string(sinks) +
                                  " shards=" + std::to_string(shards);
        // Lossless transport: nothing dropped, nothing missed, every
        // epoch closed complete.
        EXPECT_EQ(pipeline.transport_counters().frames_dropped, 0u) << label;
        EXPECT_EQ(pipeline.collector().errors_total(), 0u) << label;
        EXPECT_EQ(pipeline.collector().incomplete_epochs(), 0u) << label;
        for (unsigned s = 0; s < sinks; ++s) {
          const auto* status =
              pipeline.collector().source_status(pipeline.source_id(s));
          ASSERT_NE(status, nullptr) << label;
          EXPECT_EQ(status->epochs_completed, 3u) << label << " sink " << s;
          EXPECT_TRUE(status->ended) << label;
        }
        EXPECT_EQ(canonical_bytes(central.records), mono_bytes) << label;
      }
    }
  }
}

// Drop-newest backpressure: a deliberately tiny ring forces drops, and the
// dropped-frame count must be exact and visible everywhere it is promised:
// the writer-side TransportCounters (via SinkReport), the receiver-side
// sequence gaps, and the epoch accounting (epochs still complete, because
// the close marker counts only shipped frames).
TEST(FanIn, DropNewestReportsExactDropCounts) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  FanInConfig cfg;
  cfg.num_sinks = 2;
  cfg.shards_per_sink = 1;
  cfg.batch_size = 64;
  cfg.stream = StreamKind::kSpscRing;
  cfg.backpressure = BackpressurePolicy::kDropNewest;
  cfg.stream_capacity_bytes = 8192;  // holds only a few frames
  cfg.max_frame_records = 64;
  FanInPipeline pipeline(builder, cfg);
  CountingObserver central;
  pipeline.collector().add_observer(&central);

  for (const Packet& packet : packets) pipeline.deliver(packet, kHops);
  pipeline.ship_epoch();
  pipeline.shutdown();

  const SinkReport report = pipeline.epoch_report();
  ASSERT_TRUE(report.transport.active);
  EXPECT_GT(report.transport.frames_dropped, 0u)
      << "config did not force drops; shrink the ring";
  // Writer-side drop count == receiver-side missing-frame count.
  std::uint64_t missed = 0;
  std::uint64_t payload_frames = 0;
  for (unsigned s = 0; s < pipeline.num_sinks(); ++s) {
    const auto* status =
        pipeline.collector().source_status(pipeline.source_id(s));
    ASSERT_NE(status, nullptr);
    missed += status->frames_missed;
    payload_frames += status->payload_frames;
    // Deliberate drops are reconciled by the close marker: epochs close
    // as complete, with the loss explicit in the counters instead.
    EXPECT_EQ(status->epochs_incomplete, 0u) << "sink " << s;
  }
  EXPECT_EQ(missed, report.transport.frames_dropped);
  EXPECT_EQ(payload_frames, report.transport.frames_shipped);
  // What did arrive decoded fine (partial delivery, not corruption): the
  // only frame-layer events are the sequence gaps the drops created.
  EXPECT_GT(central.observations, 0u);
  EXPECT_GT(pipeline.collector().errors_total(), 0u);
  for (const FrameError& error : pipeline.collector().errors()) {
    EXPECT_EQ(error.code, FrameErrorCode::kSequenceGap);
  }
}

// Priority classes over the fan-in transport. A builder with distinct
// QuerySpec::priority values ships one record stream per class, highest
// first, and only the lowest class's payload frames are droppable: under a
// starved drop-newest ring, high-priority queries arrive loss-free while
// every dropped record is accounted against the lowest class.
TEST(FanIn, PriorityClassesShedOnlyLowestClassUnderDrops) {
  const std::vector<Packet> packets = make_encoded_traffic();

  // hpcc outranks path and latency (which keep the default priority 1).
  // The droppable class must carry real volume to pressure the ring, so
  // the two high-rate queries are the ones left at the minimum priority.
  const auto prioritized_builder = [] {
    PathTracingConfig path_tuning;
    path_tuning.bits = 8;
    path_tuning.instances = 1;
    path_tuning.d = kHops;
    DynamicAggregationConfig latency_tuning;
    latency_tuning.max_value = 1e6;
    PerPacketConfig cc_tuning;
    cc_tuning.eps = 0.025;
    cc_tuning.max_value = 1e6;
    std::vector<std::uint64_t> universe;
    for (std::uint64_t s = 1; s <= 32; ++s) universe.push_back(s);
    auto cc_q = make_perpacket_query("hpcc",
                                     std::string(extractor::kLinkUtilization),
                                     8, 1.0 / 16.0, cc_tuning);
    cc_q.priority = 2;
    PintFramework::Builder builder;
    builder.global_bit_budget(16)
        .seed(0xFA41)
        .switch_universe(std::move(universe))
        .add_query(make_path_query("path", 8, 1.0, path_tuning))
        .add_query(make_dynamic_query("latency",
                                      std::string(extractor::kHopLatency), 8,
                                      15.0 / 16.0, latency_tuning))
        .add_query(cc_q);
    return builder;
  }();

  // Monolithic ground truth per query (priorities do not change what a
  // local sink observes, only what the transport may shed).
  const auto mono = prioritized_builder.build_or_throw();
  RecordingObserver mono_records;
  mono->add_observer(&mono_records);
  mono->at_sink(std::span<const Packet>(packets), kHops);
  std::map<std::string, std::size_t> mono_counts;
  for (const auto& rec : mono_records.records) ++mono_counts[rec.query];
  ASSERT_GT(mono_counts["hpcc"], 0u);

  // Lossless transport first: a multi-class epoch stream still merges to
  // the exact monolithic record set. Classes regroup records *within* a
  // packet (the high class ships first), so the comparison canonicalizes
  // on (packet, query) — under that order the streams are byte-identical.
  const auto per_query_bytes = [](std::vector<RecordingObserver::Rec> recs) {
    std::stable_sort(recs.begin(), recs.end(),
                     [](const auto& a, const auto& b) {
                       if (a.ctx.packet_id != b.ctx.packet_id) {
                         return a.ctx.packet_id < b.ctx.packet_id;
                       }
                       return a.query < b.query;
                     });
    ReportEncoder enc;
    for (const auto& rec : recs) {
      if (rec.path_event) {
        enc.add_path(rec.ctx, rec.query, rec.path);
      } else {
        enc.add(rec.ctx, rec.query, rec.obs);
      }
    }
    return enc.finish();
  };
  {
    FanInConfig cfg;
    cfg.num_sinks = 2;
    cfg.shards_per_sink = 1;
    cfg.batch_size = 64;
    cfg.stream = StreamKind::kSpscRing;
    cfg.max_frame_records = 64;
    FanInPipeline pipeline(prioritized_builder, cfg);
    RecordingObserver central;
    pipeline.collector().add_observer(&central);
    for (const Packet& packet : packets) pipeline.deliver(packet, kHops);
    pipeline.ship_epoch();
    pipeline.shutdown();
    EXPECT_EQ(pipeline.transport_counters().frames_dropped, 0u);
    EXPECT_EQ(per_query_bytes(central.records),
              per_query_bytes(mono_records.records));
  }

  // Starved ring: drops are forced, and they land exclusively on the
  // lowest class.
  {
    FanInConfig cfg;
    cfg.num_sinks = 2;
    cfg.shards_per_sink = 1;
    cfg.batch_size = 64;
    cfg.stream = StreamKind::kSpscRing;
    cfg.backpressure = BackpressurePolicy::kDropNewest;
    cfg.stream_capacity_bytes = 8192;  // holds only a few frames
    cfg.max_frame_records = 64;
    FanInPipeline pipeline(prioritized_builder, cfg);
    RecordingObserver central;
    pipeline.collector().add_observer(&central);
    for (const Packet& packet : packets) pipeline.deliver(packet, kHops);
    pipeline.ship_epoch();
    pipeline.shutdown();

    const SinkReport report = pipeline.epoch_report();
    ASSERT_TRUE(report.transport.active);
    EXPECT_GT(report.transport.frames_dropped, 0u)
        << "config did not force drops; shrink the ring";
    std::map<std::string, std::size_t> got_counts;
    for (const auto& rec : central.records) ++got_counts[rec.query];
    // The high class is loss-free even while the ring sheds...
    EXPECT_EQ(got_counts["hpcc"], mono_counts["hpcc"]);
    // ...so every missing record belongs to the droppable (minimum
    // priority) class.
    EXPECT_LT(got_counts["path"] + got_counts["latency"],
              mono_counts["path"] + mono_counts["latency"]);
  }
}

// Fault injection: one source dies between its epoch-open and epoch-close.
// The collector must report that epoch incomplete, and the surviving
// source's flows must keep decoding normally.
TEST(FanIn, KilledSourceMidEpochIsReportedAndOthersKeepDecoding) {
  const std::vector<Packet> packets = make_encoded_traffic();
  const auto builder = three_query_builder();

  FanInConfig cfg;
  cfg.num_sinks = 2;
  cfg.shards_per_sink = 2;
  cfg.batch_size = 32;
  FanInPipeline pipeline(builder, cfg);
  RecordingObserver central;
  pipeline.collector().add_observer(&central);

  // Epoch 1 completes normally for both sources.
  const std::size_t half = packets.size() / 2;
  for (std::size_t i = 0; i < half; ++i) pipeline.deliver(packets[i], kHops);
  pipeline.ship_epoch();
  const std::size_t records_after_epoch1 = central.records.size();
  ASSERT_GT(records_after_epoch1, 0u);

  // Source 0 dies mid-epoch 2; the rest of the traffic keeps flowing.
  const unsigned dead = 0;
  const unsigned alive = 1;
  pipeline.kill_source_mid_epoch(dead);
  for (std::size_t i = half; i < packets.size(); ++i) {
    pipeline.deliver(packets[i], kHops);
  }
  pipeline.ship_epoch();
  pipeline.shutdown();

  const auto* dead_status =
      pipeline.collector().source_status(pipeline.source_id(dead));
  ASSERT_NE(dead_status, nullptr);
  EXPECT_EQ(dead_status->epochs_completed, 1u);
  EXPECT_EQ(dead_status->epochs_incomplete, 1u);  // the one it died inside
  EXPECT_TRUE(dead_status->ended);
  EXPECT_EQ(pipeline.collector().incomplete_epochs(), 1u);

  const auto* alive_status =
      pipeline.collector().source_status(pipeline.source_id(alive));
  ASSERT_NE(alive_status, nullptr);
  EXPECT_EQ(alive_status->epochs_incomplete, 0u);
  EXPECT_EQ(alive_status->epochs_completed, 3u);  // 2 epochs + shutdown
  EXPECT_TRUE(alive_status->ended);

  // The survivor's flows decoded end to end: its post-kill records
  // arrived, and its merged inference matches a monolithic sink fed the
  // same packets.
  EXPECT_GT(central.records.size(), records_after_epoch1);
  const auto mono = builder.build_or_throw();
  mono->at_sink(std::span<const Packet>(packets), kHops);
  std::size_t surviving_flows = 0;
  for (std::size_t f = 0; f < kFlows; ++f) {
    const FiveTuple tuple = tuple_of_flow(f);
    if (pipeline.sink_of(tuple) != alive) continue;
    ++surviving_flows;
    const std::uint64_t fkey = mono->flow_key_for("path", tuple);
    EXPECT_EQ(pipeline.sink(alive).flow_path("path", tuple),
              mono->flow_path("path", fkey));
    EXPECT_EQ(pipeline.sink(alive).path_progress("path", tuple),
              mono->path_progress("path", fkey));
  }
  EXPECT_GT(surviving_flows, 0u);
}

TEST(FanIn, MatchesMonolithicSinkOnSimulatedTraffic) {
  FatTree ft = make_fat_tree(4);
  std::vector<bool> is_host(ft.graph.num_nodes(), false);
  for (NodeId h : ft.nodes.hosts) is_host[h] = true;

  SimConfig cfg;
  cfg.telemetry = TelemetryMode::kPint;
  cfg.pint_full = true;
  cfg.pint_bit_budget = 16;
  cfg.pint_frequency = 1.0 / 16.0;
  cfg.transport = TransportKind::kHpcc;
  cfg.hpcc.base_rtt = 20 * kMicro;
  cfg.seed = 5;

  // The fan-in builds its sink replicas from the simulator's own builder,
  // so decoding is bit-for-bit the monolithic sink's.
  FanInConfig fan_cfg;
  fan_cfg.num_sinks = 2;
  fan_cfg.shards_per_sink = 2;
  fan_cfg.batch_size = 64;
  FanInPipeline pipeline(
      Simulator::full_framework_builder(cfg, ft.graph, is_host), fan_cfg);
  CountingObserver central;
  pipeline.collector().add_observer(&central);

  std::uint64_t tapped = 0;
  cfg.sink_tap = [&](const Packet& packet, unsigned switch_hops) {
    ++tapped;
    pipeline.deliver(packet, switch_hops);
  };

  Simulator sim(ft.graph, is_host, cfg);
  struct FlowRef {
    NodeId src, dst;
    std::uint32_t id;
  };
  std::vector<FlowRef> flows;
  // A mix of cross-pod (5 switch hops) and same-pod flows.
  const auto& hosts = ft.nodes.hosts;
  for (std::size_t i = 0; i < 4; ++i) {
    const NodeId src = hosts[i];
    const NodeId dst = hosts[hosts.size() - 1 - i];
    flows.push_back({src, dst, sim.add_flow(src, dst, 1'500'000, 0)});
  }
  sim.run_until(1 * kSecond);
  pipeline.ship_epoch();

  ASSERT_GT(tapped, 0u);
  EXPECT_GT(pipeline.bytes_shipped(), 0u);
  EXPECT_GT(central.observations, 0u);
  EXPECT_GT(central.paths, 0u);
  EXPECT_EQ(pipeline.collector().errors_total(), 0u);
  EXPECT_EQ(pipeline.transport_counters().frames_dropped, 0u);

  // Every sink host processed its share; nothing was lost or duplicated.
  std::uint64_t processed = 0;
  for (unsigned s = 0; s < pipeline.num_sinks(); ++s) {
    processed += pipeline.sink(s).packets_processed();
  }
  EXPECT_EQ(processed, tapped);

  const PintFramework* mono = sim.framework();
  ASSERT_NE(mono, nullptr);
  for (const FlowRef& flow : flows) {
    ASSERT_TRUE(sim.flow_stats()[flow.id].done) << "flow " << flow.id;
    const FiveTuple tuple = sim_flow_tuple(flow.src, flow.dst, flow.id);
    const std::uint64_t fkey = sim.framework_flow_key(flow.id);

    // Path tracing: identical decode state.
    EXPECT_EQ(pipeline.sink(pipeline.sink_of(tuple))
                  .path_progress("path", tuple),
              mono->path_progress("path", fkey));
    const auto mono_path = mono->flow_path(fkey);
    ASSERT_TRUE(mono_path.has_value());
    EXPECT_EQ(pipeline.sink(pipeline.sink_of(tuple)).flow_path("path", tuple),
              mono_path);

    // Latency quantiles: identical recorder state at every hop.
    const unsigned k = sim.flow_stats()[flow.id].path_hops;
    for (HopIndex hop = 1; hop <= k; ++hop) {
      EXPECT_EQ(pipeline.sink(pipeline.sink_of(tuple))
                    .latency_quantile("latency", tuple, hop, 0.5),
                mono->latency_quantile(fkey, hop, 0.5))
          << "hop " << hop;
    }
  }
}

TEST(FanIn, ValidatesConfiguration) {
  std::vector<std::uint64_t> universe{1, 2, 3};
  PintFramework::Builder builder;
  builder.global_bit_budget(16)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0));
  EXPECT_THROW(FanInPipeline(builder, FanInConfig{.num_sinks = 0}),
               std::invalid_argument);
}

TEST(FanIn, RejectsUnpartitionableMixAcrossSinks) {
  // Source- + destination-keyed queries cannot be split across sink hosts
  // consistently, even with one shard per sink (where ShardedSink itself
  // has nothing to enforce).
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  QuerySpec by_source = make_dynamic_query(
      "per_source", std::string(extractor::kHopLatency), 8, 0.5, tuning);
  by_source.query.flow_definition = FlowDefinition::kSourceIp;
  QuerySpec by_dest = make_dynamic_query(
      "per_dest", std::string(extractor::kQueueOccupancy), 8, 0.5, tuning);
  by_dest.query.flow_definition = FlowDefinition::kDestinationIp;
  PintFramework::Builder builder;
  builder.global_bit_budget(16).add_query(by_source).add_query(by_dest);

  EXPECT_THROW(
      FanInPipeline(builder,
                    FanInConfig{.num_sinks = 2, .shards_per_sink = 1}),
      std::invalid_argument);
  EXPECT_NO_THROW(
      FanInPipeline(builder,
                    FanInConfig{.num_sinks = 1, .shards_per_sink = 1}));
}

// Epoch-based collector GC: once a source's stream ends, its reassembler
// and sequence ledger are freed — a long-running fan-in that rotates
// through many sources keeps memory proportional to *live* sources, while
// the compact per-source status stays queryable.
TEST(FanIn, CollectorDropsDeadSourceStateButKeepsStatus) {
  constexpr std::uint32_t kSources = 200;
  FanInCollector collector;
  CountingObserver obs;
  collector.add_observer(&obs);

  // One valid payload buffer, reused for every source's single epoch.
  ReportEncoder enc;
  SinkContext ctx{42, 7, 5};
  enc.add(ctx, "latency", Observation{HopSampleObservation{2, 123.5}});
  const std::vector<std::uint8_t> payload = enc.finish();

  for (std::uint32_t src = 1; src <= kSources; ++src) {
    FrameWriter writer(src);
    std::vector<std::uint8_t> wire = writer.make_open();
    const std::vector<std::uint8_t> pf = writer.make_payload(payload);
    wire.insert(wire.end(), pf.begin(), pf.end());
    const std::vector<std::uint8_t> close = writer.make_close();
    wire.insert(wire.end(), close.begin(), close.end());
    collector.ingest_stream(src, wire);
    EXPECT_EQ(collector.live_sources(), 1u);  // only the current source
    collector.end_stream(src);
    EXPECT_EQ(collector.live_sources(), 0u);  // GC'd immediately
  }

  // Every dead source's summary survives the GC.
  EXPECT_EQ(collector.sources_tracked(), kSources);
  for (std::uint32_t src = 1; src <= kSources; ++src) {
    const auto* status = collector.source_status(src);
    ASSERT_NE(status, nullptr) << "source " << src;
    EXPECT_TRUE(status->ended);
    EXPECT_EQ(status->epochs_completed, 1u);
    EXPECT_EQ(status->epochs_incomplete, 0u);
    EXPECT_EQ(status->payload_frames, 1u);
  }
  EXPECT_EQ(obs.observations, kSources);

  // Bytes for an ended source are ignored, not reassembled.
  FrameWriter writer(1);
  const std::vector<std::uint8_t> late = writer.make_open();
  collector.ingest_stream(1, late);
  EXPECT_EQ(collector.live_sources(), 0u);
  EXPECT_EQ(collector.source_status(1)->epochs_completed, 1u);
}

}  // namespace
}  // namespace pint
