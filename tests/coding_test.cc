#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "coding/encoder.h"
#include "coding/fragmentation.h"
#include "coding/hashed_decoder.h"
#include "coding/lnc.h"
#include "coding/peeling_decoder.h"
#include "coding/scheme.h"
#include "common/rng.h"

namespace pint {
namespace {

std::vector<std::uint64_t> make_blocks(unsigned k, std::uint64_t tag) {
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = mix64(tag * 1000 + i);
  return blocks;
}

TEST(Scheme, ETower) {
  EXPECT_DOUBLE_EQ(e_tower(0), 1.0);
  EXPECT_NEAR(e_tower(1), std::exp(1.0), 1e-12);
  EXPECT_NEAR(e_tower(2), std::exp(std::exp(1.0)), 1e-9);
}

TEST(Scheme, LogStar) {
  // log*_e counts ln applications until the value drops to <= 1.
  EXPECT_EQ(log_star(1.0), 0u);
  EXPECT_EQ(log_star(2.0), 1u);   // ln 2 = 0.69
  EXPECT_EQ(log_star(15.0), 2u);  // 15 -> 2.7 -> 0.996
  EXPECT_EQ(log_star(3.8e6), 3u); // -> 15.1 -> 2.7 -> 0.996
  EXPECT_EQ(log_star(25.0), 3u);  // 25 -> 3.2 -> 1.17 -> 0.16
}

TEST(Scheme, MultiLayerLayerCount) {
  // Paper: L = 1 for d <= 15, L = 2 for 16 <= d <= e^e^e.
  EXPECT_EQ(make_multilayer_scheme(5).num_layers(), 1u);
  EXPECT_EQ(make_multilayer_scheme(15).num_layers(), 1u);
  EXPECT_EQ(make_multilayer_scheme(16).num_layers(), 2u);
  EXPECT_EQ(make_multilayer_scheme(59).num_layers(), 2u);
  EXPECT_EQ(make_multilayer_scheme(1000).num_layers(), 2u);
}

TEST(Scheme, LayerProbsAreETowerOverD) {
  const auto cfg = make_multilayer_scheme(25);
  ASSERT_EQ(cfg.layer_probs.size(), 2u);
  EXPECT_NEAR(cfg.layer_probs[0], 1.0 / 25.0, 1e-12);
  EXPECT_NEAR(cfg.layer_probs[1], std::exp(1.0) / 25.0, 1e-12);
}

TEST(Scheme, LayerSelectionMatchesDistribution) {
  const auto cfg = make_multilayer_scheme(25);
  GlobalHash h(7);
  const int n = 200000;
  std::vector<int> counts(cfg.num_layers() + 1, 0);
  for (PacketId p = 0; p < static_cast<PacketId>(n); ++p) {
    ++counts[select_layer(cfg, h, p)];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, cfg.tau, 0.01);
  const double per_layer = (1.0 - cfg.tau) / cfg.num_layers();
  for (std::size_t l = 1; l < counts.size(); ++l) {
    EXPECT_NEAR(static_cast<double>(counts[l]) / n, per_layer, 0.01);
  }
}

TEST(Scheme, BaselineCarrierIsUniform) {
  // The reservoir process must land on each hop with probability 1/k.
  GlobalHash g(11);
  const unsigned k = 12;
  std::vector<int> counts(k, 0);
  const int n = 120000;
  for (PacketId p = 0; p < static_cast<PacketId>(n); ++p) {
    ++counts[baseline_carrier(g, p, k) - 1];
  }
  for (unsigned i = 0; i < k; ++i) {
    EXPECT_NEAR(counts[i], n / k, n / k * 0.1) << "hop " << i + 1;
  }
}

TEST(Scheme, XorParticipationMatchesP) {
  GlobalHash g(13);
  const unsigned k = 40;
  const double p = 0.1;
  std::uint64_t total = 0;
  const int n = 20000;
  for (PacketId pk = 0; pk < static_cast<PacketId>(n); ++pk) {
    total += xor_participants(g, pk, k, p).size();
  }
  EXPECT_NEAR(static_cast<double>(total) / (n * k), p, 0.01);
}

// --- full-block peeling decoder over all scheme variants -------------------

struct VariantCase {
  const char* name;
  SchemeConfig (*make)(unsigned);
  unsigned k;
};

class PeelingVariantTest
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(PeelingVariantTest, DecodesFullMessage) {
  const auto [variant, k] = GetParam();
  SchemeConfig cfg;
  switch (variant) {
    case 0: cfg = make_baseline_scheme(); break;
    case 1: cfg = make_xor_scheme(k); break;
    case 2: cfg = make_hybrid_scheme(k); break;
    case 3: cfg = make_multilayer_scheme(k); break;
    default: FAIL();
  }
  GlobalHash root(1234 + variant * 100 + k);
  const InstanceHashes hashes = make_instance_hashes(root, 0);
  const auto blocks = make_blocks(k, 7);
  PeelingDecoder dec(k, cfg, hashes);
  PacketId p = 1;
  const PacketId limit = 200000;
  while (!dec.complete() && p < limit) {
    const Digest d = encode_path(cfg, hashes, p, blocks, /*bits=*/0);
    dec.add_packet(p, d);
    ++p;
  }
  ASSERT_TRUE(dec.complete()) << "variant " << variant << " k " << k;
  EXPECT_EQ(dec.message(), blocks);
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndK, PeelingVariantTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1u, 2u, 5u, 25u, 59u)));

TEST(Peeling, HybridBeatsBaselineAtK25) {
  // Fig. 5 headline: interleaving converges with fewer packets than pure
  // Baseline. Compare median packets-to-decode over repetitions.
  const unsigned k = 25;
  auto median_packets = [&](const SchemeConfig& cfg, std::uint64_t seed_base) {
    std::vector<std::uint64_t> needed;
    for (int rep = 0; rep < 40; ++rep) {
      GlobalHash root(seed_base + rep);
      const InstanceHashes h = make_instance_hashes(root, 0);
      const auto blocks = make_blocks(k, rep);
      PeelingDecoder dec(k, cfg, h);
      PacketId p = 1;
      while (!dec.complete()) {
        dec.add_packet(p, encode_path(cfg, h, p, blocks, 0));
        ++p;
      }
      needed.push_back(p - 1);
    }
    std::sort(needed.begin(), needed.end());
    return needed[needed.size() / 2];
  };
  const auto baseline = median_packets(make_baseline_scheme(), 10000);
  const auto hybrid = median_packets(make_hybrid_scheme(k), 20000);
  // Paper: baseline median ~89, hybrid ~41 at k=25.
  EXPECT_GT(baseline, 60u);
  EXPECT_LT(hybrid, baseline);
}

TEST(Peeling, RejectsZeroHops) {
  GlobalHash root(5);
  EXPECT_THROW(
      PeelingDecoder(0, make_baseline_scheme(), make_instance_hashes(root, 0)),
      std::invalid_argument);
}

TEST(Peeling, MessageBeforeCompleteThrows) {
  GlobalHash root(6);
  PeelingDecoder dec(4, make_baseline_scheme(), make_instance_hashes(root, 0));
  EXPECT_THROW(dec.message(), std::runtime_error);
}

// --- hashed decoder ---------------------------------------------------------

class HashedDecoderTest
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, unsigned>> {
};

TEST_P(HashedDecoderTest, DecodesPathOverUniverse) {
  const auto [bits, instances, k] = GetParam();
  const unsigned universe_size = 100;
  std::vector<std::uint64_t> universe(universe_size);
  std::iota(universe.begin(), universe.end(), 1000);

  // The true path: an arbitrary distinct selection from the universe.
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) {
    blocks[i] = universe[(i * 13) % universe_size];
  }

  HashedDecoderConfig cfg;
  cfg.k = k;
  cfg.bits = bits;
  cfg.instances = instances;
  cfg.scheme = make_multilayer_scheme(k);

  GlobalHash root(777 + bits * 10 + instances + k);
  HashedPathDecoder dec(cfg, root, universe);
  PacketId p = 1;
  const PacketId limit = 500000;
  while (!dec.complete() && p < limit) {
    const auto lanes =
        encode_path_multi(cfg.scheme, root, instances, p, blocks, bits);
    dec.add_packet(p, lanes);
    ++p;
  }
  ASSERT_TRUE(dec.complete())
      << "bits=" << bits << " inst=" << instances << " k=" << k;
  EXPECT_EQ(dec.path(), blocks);
}

INSTANTIATE_TEST_SUITE_P(
    BitsInstancesK, HashedDecoderTest,
    ::testing::Combine(::testing::Values(1u, 4u, 8u),
                       ::testing::Values(1u, 2u),
                       ::testing::Values(3u, 10u, 25u)));

TEST(HashedDecoder, PartialKnowledgeExposed) {
  const unsigned k = 10;
  std::vector<std::uint64_t> universe(50);
  std::iota(universe.begin(), universe.end(), 1);
  HashedDecoderConfig cfg;
  cfg.k = k;
  cfg.bits = 8;
  cfg.instances = 1;
  cfg.scheme = make_multilayer_scheme(k);
  GlobalHash root(3131);
  HashedPathDecoder dec(cfg, root, universe);
  EXPECT_EQ(dec.resolved_count(), 0u);
  EXPECT_FALSE(dec.value_at(1).has_value());
  EXPECT_THROW(dec.path(), std::runtime_error);
}

TEST(HashedDecoder, TwoInstancesBeatOneAtSameBudget) {
  // Section 4.2 "Improving Performance via Multiple Instantiations":
  // 2 x (b=8) should decode with fewer packets than 1 x (b=16).
  const unsigned k = 25;
  std::vector<std::uint64_t> universe(200);
  std::iota(universe.begin(), universe.end(), 5000);
  std::vector<std::uint64_t> blocks(k);
  for (unsigned i = 0; i < k; ++i) blocks[i] = universe[(i * 7) % 200];

  auto avg_packets = [&](unsigned bits, unsigned instances) {
    double total = 0.0;
    const int reps = 15;
    for (int rep = 0; rep < reps; ++rep) {
      HashedDecoderConfig cfg;
      cfg.k = k;
      cfg.bits = bits;
      cfg.instances = instances;
      cfg.scheme = make_multilayer_scheme(k);
      GlobalHash root(91000 + rep * 7 + bits);
      HashedPathDecoder dec(cfg, root, universe);
      PacketId p = 1;
      while (!dec.complete()) {
        dec.add_packet(
            p, encode_path_multi(cfg.scheme, root, instances, p, blocks, bits));
        ++p;
      }
      total += static_cast<double>(p - 1);
    }
    return total / reps;
  };
  EXPECT_LT(avg_packets(8, 2), avg_packets(16, 1) * 1.05);
}

// --- fragmentation -----------------------------------------------------------

class FragmentationTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(FragmentationTest, ReassemblesWideValues) {
  const auto [q, b] = GetParam();
  const unsigned k = 6;
  std::vector<std::uint64_t> values(k);
  Rng rng(q * 100 + b);
  for (auto& v : values) v = rng.next() & low_bits_mask(q);

  GlobalHash root(4242 + q + b);
  FragmentedCodec codec(k, q, b, make_hybrid_scheme(k), root);
  EXPECT_EQ(codec.num_fragments(), (q + b - 1) / b);

  PacketId p = 1;
  const PacketId limit = 300000;
  while (!codec.complete() && p < limit) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      d = codec.encode_step(p, i, d, values[i - 1]);
    }
    codec.add_packet(p, d);
    ++p;
  }
  ASSERT_TRUE(codec.complete()) << "q=" << q << " b=" << b;
  EXPECT_EQ(codec.message(), values);
}

INSTANTIATE_TEST_SUITE_P(QB, FragmentationTest,
                         ::testing::Values(std::make_tuple(32u, 8u),
                                           std::make_tuple(32u, 16u),
                                           std::make_tuple(16u, 4u),
                                           std::make_tuple(10u, 3u)));

// --- linear network coding ---------------------------------------------------

TEST(Lnc, DecodesNearK) {
  // Paper: LNC needs ~ k + log2(k) packets.
  const unsigned k = 32;
  const auto blocks = make_blocks(k, 3);
  double total = 0.0;
  const int reps = 25;
  for (int rep = 0; rep < reps; ++rep) {
    GlobalHash root(606 + rep);
    LncEncoder enc(root);
    LncDecoder dec(k, root);
    PacketId p = 1;
    while (!dec.complete()) {
      dec.add_packet(p, enc.encode(p, blocks));
      ++p;
    }
    EXPECT_EQ(dec.message(), blocks);
    total += static_cast<double>(p - 1);
  }
  const double avg = total / reps;
  EXPECT_GE(avg, k);
  EXPECT_LE(avg, k + 15);  // k + log2(k) ~ 37 plus slack
}

TEST(Lnc, RankMonotonicAndBounded) {
  const unsigned k = 16;
  const auto blocks = make_blocks(k, 9);
  GlobalHash root(17);
  LncEncoder enc(root);
  LncDecoder dec(k, root);
  unsigned prev = 0;
  for (PacketId p = 1; p <= 100; ++p) {
    dec.add_packet(p, enc.encode(p, blocks));
    EXPECT_GE(dec.rank(), prev);
    EXPECT_LE(dec.rank(), k);
    prev = dec.rank();
  }
  EXPECT_TRUE(dec.complete());
}

TEST(Lnc, MessageBeforeCompleteThrows) {
  GlobalHash root(18);
  LncDecoder dec(8, root);
  EXPECT_THROW(dec.message(), std::runtime_error);
}

}  // namespace
}  // namespace pint
