// Routing-loop detection (paper Appendix A.4): a PINT extension that catches
// looping packets on the fly with a 16-bit header and a tunable
// false-positive/latency trade-off.
//
//   $ ./examples/loop_detection_demo
#include <cstdio>

#include "pint/loop_detection.h"

using namespace pint;

namespace {

// Run `packets` packets over a healthy path of `k` distinct switches,
// and the same number around a loop of `loop_len` switches. Returns
// {false positives, detections, mean hops-to-detect}.
struct Outcome {
  int false_positives = 0;
  int detections = 0;
  double mean_hops_to_detect = 0.0;
};

Outcome evaluate(const LoopDetector& det, unsigned k, unsigned loop_len,
                 int packets) {
  Outcome out;
  // Healthy traffic.
  for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
    LoopDigest state;
    for (HopIndex i = 1; i <= k; ++i) {
      if (det.process(p, i, 5000 + i, state)) {
        ++out.false_positives;
        break;
      }
    }
  }
  // Looping traffic.
  double hops_total = 0.0;
  for (PacketId p = 1; p <= static_cast<PacketId>(packets); ++p) {
    LoopDigest state;
    HopIndex i = 1;
    bool caught = false;
    for (int cycle = 0; cycle < 64 && !caught; ++cycle) {
      for (SwitchId s = 1; s <= loop_len && !caught; ++s) {
        caught = det.process(1000000 + p, i++, s, state);
      }
    }
    if (caught) {
      ++out.detections;
      hops_total += static_cast<double>(i);
    }
  }
  if (out.detections > 0) out.mean_hops_to_detect = hops_total / out.detections;
  return out;
}

}  // namespace

int main() {
  std::printf("== on-the-fly routing loop detection (16 header bits) ==\n\n");
  std::printf("%-14s %8s %12s %12s %14s\n", "config", "bits", "false-pos",
              "detected", "hops-to-catch");
  const int packets = 30000;
  struct Cfg {
    const char* name;
    LoopDetectionConfig cfg;
  } configs[] = {
      {"b=16, T=0", {16, 0}},
      {"b=15, T=1", {15, 1}},
      {"b=14, T=3", {14, 3}},
  };
  for (const auto& [name, c] : configs) {
    LoopDetector det(c, 777);
    const Outcome o = evaluate(det, /*k=*/32, /*loop_len=*/6, packets);
    std::printf("%-14s %8u %9d/%d %9d/%d %14.1f\n", name, det.total_bits(),
                o.false_positives, packets, o.detections, packets,
                o.mean_hops_to_detect);
  }
  std::printf(
      "\nlarger T trades detection latency (more loop cycles) for a\n"
      "drastically lower false-positive rate (paper Appendix A.4).\n");
  return 0;
}
