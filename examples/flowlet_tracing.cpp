// Tracing a flow across route changes (paper Section 7): flowlet load
// balancing moves the flow between two ECMP paths; the FlowletTracker
// detects each change from digest inconsistencies and recovers both paths.
//
//   $ ./examples/flowlet_tracing
#include <cstdio>
#include <numeric>

#include "pint/flowlet_tracker.h"

using namespace pint;

int main() {
  const unsigned k = 5;
  PathTracingConfig cfg;
  cfg.bits = 8;
  cfg.instances = 1;
  cfg.d = k;
  cfg.variant = SchemeVariant::kHybrid;
  PathTracingQuery query(cfg, 1234);

  std::vector<std::uint64_t> universe(64);
  std::iota(universe.begin(), universe.end(), 1);

  // Two ECMP paths differing in the middle (different core switch).
  const std::vector<SwitchId> path_a{4, 12, 33, 21, 9};
  const std::vector<SwitchId> path_b{4, 12, 47, 21, 9};

  FlowletTracker tracker(query, k, universe);

  auto send = [&](PacketId p, const std::vector<SwitchId>& path) {
    std::vector<Digest> lanes(1, 0);
    for (HopIndex i = 1; i <= k; ++i) query.encode(p, i, path[i - 1], lanes);
    return tracker.add_packet(p, lanes);
  };

  std::printf("== flowlet-aware path tracing (Section 7) ==\n\n");
  PacketId p = 1;
  // Flowlet 1 on path A...
  for (; p <= 400; ++p) send(p, path_a);
  std::printf("after 400 packets on path A : %zu path(s) decoded, "
              "%llu change(s)\n",
              tracker.completed_paths().size(),
              (unsigned long long)tracker.route_changes());
  // ...the load balancer moves the flow to path B...
  for (; p <= 1200; ++p) send(p, path_b);
  std::printf("after 800 packets on path B : %zu path(s) decoded, "
              "%llu change(s)\n",
              tracker.completed_paths().size(),
              (unsigned long long)tracker.route_changes());

  for (std::size_t f = 0; f < tracker.completed_paths().size(); ++f) {
    std::printf("  flowlet %zu path:", f + 1);
    for (SwitchId s : tracker.completed_paths()[f]) std::printf(" %u", s);
    std::printf("\n");
  }
  std::printf(
      "\na digest inconsistent with the partially-decoded path proves the\n"
      "route changed (probability 1 - 2^-8 per checkable packet); each\n"
      "flowlet's path is then decoded independently.\n");
  return 0;
}
