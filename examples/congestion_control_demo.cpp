// HPCC over INT vs HPCC over PINT (the paper's Section 6.1 use case), on a
// small fat-tree with web-search traffic. PINT carries one 8-bit compressed
// bottleneck value instead of a 12-byte-per-hop INT stack; flows finish
// comparably fast while header bytes drop dramatically.
//
//   $ ./examples/congestion_control_demo
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "sim/simulator.h"
#include "topology/fat_tree.h"
#include "workload/flow_size_dist.h"
#include "workload/traffic_gen.h"

using namespace pint;

namespace {

struct RunResult {
  double mean_fct_ms = 0.0;
  double p95_slowdown = 0.0;
  double telemetry_mb = 0.0;
  std::size_t completed = 0;
};

RunResult run(TelemetryMode mode) {
  const FatTree ft = make_fat_tree(4);
  std::vector<bool> is_host(ft.graph.num_nodes(), false);
  for (NodeId h : ft.nodes.hosts) is_host[h] = true;

  SimConfig cfg;
  cfg.transport = TransportKind::kHpcc;
  cfg.telemetry = mode;
  cfg.int_values_per_hop = 3;  // HPCC needs ts + txBytes + qlen
  cfg.pint_bit_budget = 8;
  cfg.host_bandwidth_bps = 10e9;
  cfg.fabric_bandwidth_bps = 40e9;
  cfg.hpcc.base_rtt = 20 * kMicro;
  cfg.seed = 1;

  Simulator sim(ft.graph, is_host, cfg);

  TrafficGenConfig tg;
  tg.load = 0.5;
  tg.num_hosts = static_cast<std::uint32_t>(ft.nodes.hosts.size());
  tg.host_bandwidth_bps = cfg.host_bandwidth_bps;
  tg.duration = 20 * kMilli;
  tg.seed = 99;
  const auto arrivals = generate_traffic(tg, FlowSizeDist::web_search());
  for (const auto& fa : arrivals) {
    sim.add_flow(ft.nodes.hosts[fa.src_host], ft.nodes.hosts[fa.dst_host],
                 fa.size, fa.start);
  }
  sim.run_until(200 * kMilli);

  RunResult out;
  std::vector<double> fcts, slowdowns;
  for (const FlowStats& st : sim.flow_stats()) {
    if (!st.done) continue;
    ++out.completed;
    fcts.push_back(static_cast<double>(st.fct()) / 1e6);
    const double ideal_ns =
        static_cast<double>(st.size) * 8.0 / cfg.host_bandwidth_bps * 1e9 +
        2.0 * static_cast<double>(st.path_hops + 1) *
            static_cast<double>(cfg.link_delay);
    slowdowns.push_back(static_cast<double>(st.fct()) / ideal_ns);
  }
  out.mean_fct_ms = mean(fcts);
  out.p95_slowdown = percentile(slowdowns, 0.95);
  out.telemetry_mb =
      static_cast<double>(sim.counters().telemetry_bytes_total) / 1e6;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "== HPCC congestion control: INT stack vs 8-bit PINT digest ==\n");
  std::printf("(K=4 fat tree, 10G hosts, web-search flows at 50%% load)\n\n");
  const RunResult int_run = run(TelemetryMode::kInt);
  const RunResult pint_run = run(TelemetryMode::kPint);
  std::printf("%-18s %12s %12s\n", "", "HPCC(INT)", "HPCC(PINT)");
  std::printf("%-18s %12zu %12zu\n", "flows completed", int_run.completed,
              pint_run.completed);
  std::printf("%-18s %12.2f %12.2f\n", "mean FCT [ms]", int_run.mean_fct_ms,
              pint_run.mean_fct_ms);
  std::printf("%-18s %12.2f %12.2f\n", "95th slowdown", int_run.p95_slowdown,
              pint_run.p95_slowdown);
  std::printf("%-18s %12.2f %12.2f\n", "INT bytes on wire [MB]",
              int_run.telemetry_mb, pint_run.telemetry_mb);
  std::printf(
      "\nPINT keeps HPCC's behaviour while replacing the per-hop stack with\n"
      "a single byte per packet (paper Fig. 7).\n");
  return 0;
}
