// Path tracing across a large ISP topology (the paper's Section 6.3
// scenario): trace a flow crossing the synthetic US Carrier network
// (157 switches, diameter 36) with different per-packet bit budgets and
// report how many packets the Inference Module needed.
//
//   $ ./examples/path_tracing_isp
#include <cstdio>
#include <numeric>
#include <vector>

#include "pint/static_aggregation.h"
#include "topology/isp.h"

using namespace pint;

namespace {

std::uint64_t trace_path(const std::vector<NodeId>& path,
                         const std::vector<std::uint64_t>& universe,
                         unsigned bits, unsigned instances,
                         std::uint64_t seed) {
  PathTracingConfig cfg;
  cfg.bits = bits;
  cfg.instances = instances;
  cfg.d = 10;  // paper's choice for the ISP topologies
  cfg.variant = SchemeVariant::kMultiLayer;
  PathTracingQuery query(cfg, seed);

  const auto k = static_cast<unsigned>(path.size());
  auto decoder = query.make_decoder(k, universe);
  PacketId p = 1;
  while (!decoder.complete()) {
    std::vector<Digest> lanes(instances, 0);
    for (HopIndex i = 1; i <= k; ++i) {
      query.encode(p, i, static_cast<SwitchId>(path[i - 1]), lanes);
    }
    decoder.add_packet(p, lanes);
    ++p;
  }
  return p - 1;
}

}  // namespace

int main() {
  const IspTopology isp = make_us_carrier();
  std::printf("== tracing flows across %s (%zu switches, diameter %u) ==\n\n",
              isp.name.c_str(), isp.graph.num_nodes(), isp.diameter);

  std::vector<std::uint64_t> universe(isp.graph.num_nodes());
  std::iota(universe.begin(), universe.end(), 0);

  std::printf("%-10s %-14s %-14s %-14s\n", "hops", "PINT b=1", "PINT b=4",
              "PINT 2x(b=8)");
  for (unsigned hops : {4u, 8u, 16u, 24u, 36u}) {
    const auto path = backbone_prefix(isp, hops);
    double avg1 = 0, avg4 = 0, avg88 = 0;
    const int reps = 5;
    for (int r = 0; r < reps; ++r) {
      avg1 += static_cast<double>(trace_path(path, universe, 1, 1, 100 + r));
      avg4 += static_cast<double>(trace_path(path, universe, 4, 1, 200 + r));
      avg88 += static_cast<double>(trace_path(path, universe, 8, 2, 300 + r));
    }
    std::printf("%-10u %-14.0f %-14.0f %-14.0f\n", hops, avg1 / reps,
                avg4 / reps, avg88 / reps);
  }
  std::printf(
      "\npackets needed grow ~linearly in path length; even a 1-bit digest\n"
      "traces a 36-hop ISP path (paper Fig. 10).\n");
  return 0;
}
