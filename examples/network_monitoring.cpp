// Network-wide monitoring from PINT telemetry (paper Table 2): tomography,
// load imbalance, power management and anomaly detection built on the same
// 8-bit dynamic-aggregation digests, across many flows of a fat tree.
//
//   $ ./examples/network_monitoring
#include <cstdio>
#include <numeric>

#include "apps/anomaly_detection.h"
#include "apps/load_analysis.h"
#include "apps/tomography.h"
#include "common/rng.h"
#include "pint/dynamic_aggregation.h"
#include "topology/fat_tree.h"

using namespace pint;

int main() {
  const FatTree ft = make_fat_tree(4, /*with_hosts=*/false);
  const auto num_switches = ft.graph.num_nodes();
  GlobalHash ecmp(17);
  Rng rng(23);

  // A congested core switch and an idle edge switch to find.
  const SwitchId hot = static_cast<SwitchId>(ft.nodes.cores[1]);
  const SwitchId idle = static_cast<SwitchId>(ft.nodes.edges[7]);

  DynamicAggregationConfig qcfg;
  qcfg.bits = 8;
  qcfg.max_value = 1e6;
  DynamicAggregationQuery query(qcfg, 29);

  QueueTomography tomo;
  LoadAnalyzer load;
  LatencyAnomalyDetector anomaly(8, {1.0, 12.0, 128});

  // 200 flows between random edge switches; their per-packet digests carry
  // one hop's queue depth each.
  int flows_registered = 0;
  for (std::uint64_t fkey = 1; fkey <= 200; ++fkey) {
    const NodeId src = ft.nodes.edges[rng.uniform_int(ft.nodes.edges.size())];
    NodeId dst = src;
    while (dst == src)
      dst = ft.nodes.edges[rng.uniform_int(ft.nodes.edges.size())];
    const auto path = ft.graph.ecmp_path(src, dst, fkey, ecmp);
    if (!path) continue;
    std::vector<SwitchId> sw_path(path->begin(), path->end());
    tomo.register_flow(fkey, sw_path);
    ++flows_registered;

    const auto k = static_cast<unsigned>(sw_path.size());
    for (PacketId p = fkey * 100000; p < fkey * 100000 + 300; ++p) {
      Digest d = 0;
      for (HopIndex i = 1; i <= k; ++i) {
        const bool is_hot = sw_path[i - 1] == hot;
        const double qdepth =
            (is_hot ? 800.0 : 20.0) + rng.exponential(is_hot ? 0.01 : 0.5);
        d = query.encode_step(p, i, d, qdepth);
        const double util = sw_path[i - 1] == idle
                                ? 0.01 + 0.01 * rng.uniform()
                                : 0.3 + 0.4 * rng.uniform() *
                                          (is_hot ? 1.5 : 1.0);
        load.add(sw_path[i - 1], util);
      }
      const auto sample = query.decode(p, d, k);
      tomo.add_sample(fkey, sample.hop, sample.value);
    }
  }

  std::printf("== network monitoring from 1-byte PINT digests ==\n");
  std::printf("(%d flows across a K=4 fat tree, %zu switches)\n\n",
              flows_registered, num_switches);

  std::printf("-- tomography: hottest queues (truth: switch %u) --\n", hot);
  for (const auto& h : tomo.hottest(3)) {
    std::printf("  switch %-4u median queue %8.0f   (%zu samples)\n",
                h.switch_id, h.median_queue, h.samples);
  }

  std::printf("\n-- load imbalance --\n");
  std::printf("  Jain fairness index: %.3f\n", load.fairness_index());
  const auto over = load.overloaded(1.4);
  std::printf("  overloaded switches:");
  for (SwitchId s : over) std::printf(" %u", s);
  std::printf("\n");

  std::printf("\n-- power management (truth: switch %u idle) --\n", idle);
  const auto sleepers = load.sleep_candidates(0.1, 50);
  std::printf("  sleep candidates:");
  for (SwitchId s : sleepers) std::printf(" %u", s);
  std::printf("\n");

  std::printf("\n-- anomaly detection on a flow's hop latency --\n");
  // A flow whose hop 3 latency shifts +8x mid-stream.
  bool alarmed = false;
  for (int i = 0; i < 3000 && !alarmed; ++i) {
    const double base = i < 1500 ? 100.0 : 800.0;
    const auto ev = anomaly.add(3, base + rng.uniform() * 20.0);
    if (ev) {
      std::printf("  latency change detected at hop %u (sample %d, %s)\n",
                  ev->hop, i, ev->upward ? "increase" : "decrease");
      alarmed = true;
    }
  }
  if (!alarmed) std::printf("  (no alarm — unexpected)\n");
  return 0;
}
