// Network-wide monitoring from PINT telemetry (paper Table 2): tomography,
// load imbalance, power management and anomaly detection — all driven by one
// PintFramework over a fat tree, with the applications subscribed as
// SinkObservers. Nothing polls framework internals: decoded paths and
// per-hop samples arrive as callbacks.
//
//   $ ./examples/example_network_monitoring
#include <cstdio>
#include <numeric>

#include "apps/anomaly_detection.h"
#include "apps/load_analysis.h"
#include "apps/tomography.h"
#include "common/rng.h"
#include "pint/framework.h"
#include "topology/fat_tree.h"

using namespace pint;

int main() {
  const FatTree ft = make_fat_tree(4, /*with_hosts=*/false);
  const auto num_switches = ft.graph.num_nodes();
  GlobalHash ecmp(17);
  Rng rng(23);

  // A congested core switch and an idle edge switch to find.
  const SwitchId hot = static_cast<SwitchId>(ft.nodes.cores[1]);
  const SwitchId idle = static_cast<SwitchId>(ft.nodes.edges[7]);

  // One framework, three queries in 16 bits: path tracing on every packet
  // (8b), queue occupancy and link utilization each on half the packets
  // (8b) — the Query Engine packs them into two equal-probability sets.
  DynamicAggregationConfig tuning;
  tuning.max_value = 1e6;
  std::vector<std::uint64_t> universe;
  for (NodeId n = 0; n < num_switches; ++n) universe.push_back(n);

  QueueTomography tomo;
  LoadAnalyzer load;
  TomographyObserver tomo_obs(tomo, "queue", "path");
  LoadObserver load_obs(load, "util", "path");
  AnomalyObserver anomaly_obs("queue", AnomalyConfig{1.0, 10.0, 32});

  auto pint =
      PintFramework::Builder()
          .global_bit_budget(16)
          .switch_universe(universe)
          .add_query(make_path_query("path", 8, 1.0))
          .add_query(make_dynamic_query(
              "queue", std::string(extractor::kQueueOccupancy), 8, 0.5,
              tuning))
          .add_query(make_dynamic_query(
              "util", std::string(extractor::kLinkUtilization), 8, 0.5,
              tuning))
          .add_observer(&tomo_obs)
          .add_observer(&load_obs)
          .add_observer(&anomaly_obs)
          .build_or_throw();

  // 200 flows between random edge switches; switches fill in queue depth
  // and utilization (in percent — digest-friendly dynamic range) as each
  // packet passes. Halfway through, the hot core's queue jumps 4x — the
  // anomaly detector should notice.
  int flows_registered = 0;
  PacketId next_packet = 1;
  for (std::uint32_t f = 1; f <= 200; ++f) {
    const NodeId src = ft.nodes.edges[rng.uniform_int(ft.nodes.edges.size())];
    NodeId dst = src;
    while (dst == src)
      dst = ft.nodes.edges[rng.uniform_int(ft.nodes.edges.size())];
    const auto path = ft.graph.ecmp_path(src, dst, f, ecmp);
    if (!path) continue;
    ++flows_registered;

    FiveTuple tuple{src, dst, static_cast<std::uint16_t>(f), 443, 6};
    const auto k = static_cast<unsigned>(path->size());
    for (int n = 0; n < 600; ++n) {
      Packet pkt;
      pkt.id = next_packet++;
      pkt.tuple = tuple;
      for (HopIndex i = 1; i <= k; ++i) {
        const SwitchId sid = static_cast<SwitchId>((*path)[i - 1]);
        const bool is_hot = sid == hot;
        const double base = is_hot ? (n < 300 ? 800.0 : 3200.0) : 20.0;
        SwitchView view(sid);
        view.set(metric::kQueueOccupancy,
                 base + rng.exponential(is_hot ? 0.01 : 0.5));
        view.set(metric::kLinkUtilization,  // percent of line rate
                 sid == idle ? 1.0 + 1.0 * rng.uniform()
                             : 30.0 + 40.0 * rng.uniform() *
                                          (is_hot ? 1.5 : 1.0));
        pint->at_switch(pkt, i, view);
      }
      pint->at_sink(pkt, k);
    }
  }

  std::printf("== network monitoring from 2-byte PINT digests ==\n");
  std::printf("(%d flows across a K=4 fat tree, %zu switches, one framework,"
              " three apps subscribed)\n\n",
              flows_registered, num_switches);

  std::printf("-- tomography: hottest queues (truth: switch %u) --\n", hot);
  for (const auto& h : tomo.hottest(3)) {
    std::printf("  switch %-4u median queue %8.0f   (%zu samples)\n",
                h.switch_id, h.median_queue, h.samples);
  }

  std::printf("\n-- load imbalance --\n");
  std::printf("  Jain fairness index: %.3f\n", load.fairness_index());
  const auto over = load.overloaded(1.4);
  std::printf("  overloaded switches:");
  for (SwitchId s : over) std::printf(" %u", s);
  std::printf("\n  (%zu samples arrived before their flow's path decoded)\n",
              load_obs.unattributed());

  std::printf("\n-- power management (truth: switch %u idle) --\n", idle);
  const auto sleepers = load.sleep_candidates(10.0, 50);  // < 10% at p95
  std::printf("  sleep candidates:");
  for (SwitchId s : sleepers) std::printf(" %u", s);
  std::printf("\n");

  std::printf("\n-- anomaly detection on queue occupancy --\n");
  std::printf("  flows tracked: %zu, alarms: %zu (hot switch drives bursts"
              " on flows crossing it)\n",
              anomaly_obs.flows_tracked(), anomaly_obs.events().size());
  return 0;
}
