// Network troubleshooting with dynamic per-flow aggregation (the paper's
// Section 6.2 use case): estimate the median and 99th-percentile latency of
// every hop of a flow from 8-bit digests, with and without KLL sketching at
// the Recording Module, and spot the misbehaving hop.
//
//   $ ./examples/latency_troubleshooting
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "pint/dynamic_aggregation.h"

using namespace pint;

int main() {
  const unsigned k = 8;
  DynamicAggregationConfig cfg;
  cfg.bits = 8;
  cfg.max_value = 1e7;
  DynamicAggregationQuery query(cfg, 2718);

  // Recording module twice: raw samples vs a 256-byte sketch (PINT_S).
  FlowLatencyRecorder raw(k, 0);
  FlowLatencyRecorder sketched(k, 256);

  // Ground truth: hop 6 suffers from a microburst-prone queue: 10x median
  // and occasional 100x spikes.
  Rng rng(3141);
  std::vector<std::vector<double>> truth(k);
  const int packets = 50000;
  for (PacketId p = 1; p <= packets; ++p) {
    Digest d = 0;
    for (HopIndex i = 1; i <= k; ++i) {
      double lat = 200.0 + rng.exponential(1.0 / 50.0);
      if (i == 6) {
        lat = 2000.0 + rng.exponential(1.0 / 500.0);
        if (rng.bernoulli(0.01)) lat += 20000.0;  // microburst tail
      }
      truth[i - 1].push_back(lat);
      d = query.encode_step(p, i, d, lat);
    }
    const auto sample = query.decode(p, d, k);
    raw.add(sample);
    sketched.add(sample);
  }

  std::printf("== per-hop latency quantiles from 8-bit digests ==\n");
  std::printf(
      "(%d packets; every packet carries ONE hop's compressed value)\n\n",
              packets);
  std::printf("%-5s %10s %10s %10s | %10s %10s\n", "hop", "true p50",
              "PINT p50", "PINT_S p50", "true p99", "PINT p99");
  for (HopIndex i = 1; i <= k; ++i) {
    const double t50 = percentile(truth[i - 1], 0.5);
    const double t99 = percentile(truth[i - 1], 0.99);
    std::printf("%-5u %10.0f %10.0f %10.0f | %10.0f %10.0f %s\n", i, t50,
                raw.quantile(i, 0.5).value_or(-1),
                sketched.quantile(i, 0.5).value_or(-1), t99,
                raw.quantile(i, 0.99).value_or(-1),
                i == 6 ? " <- slow hop found" : "");
  }
  std::printf("\nsamples per hop: ~%zu (uniform reservoir over %u hops)\n",
              raw.samples_at(1), k);
  return 0;
}
