// Quickstart: run all three PINT queries concurrently on a 5-hop path with a
// 16-bit global budget (the paper's Section 6.4 configuration) and read the
// answers back.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "pint/framework.h"

using namespace pint;

int main() {
  // 1. Declare the queries: <value, aggregation, bit budget, frequency>.
  Query path_q;
  path_q.name = "path";
  path_q.value_type = ValueType::kSwitchId;
  path_q.aggregation = AggregationType::kStaticPerFlow;
  path_q.bit_budget = 8;
  path_q.frequency = 1.0;

  Query latency_q;
  latency_q.name = "latency";
  latency_q.value_type = ValueType::kHopLatency;
  latency_q.aggregation = AggregationType::kDynamicPerFlow;
  latency_q.bit_budget = 8;
  latency_q.frequency = 15.0 / 16.0;

  Query cc_q;
  cc_q.name = "congestion";
  cc_q.value_type = ValueType::kLinkUtilization;
  cc_q.aggregation = AggregationType::kPerPacket;
  cc_q.bit_budget = 8;
  cc_q.frequency = 1.0 / 16.0;

  // 2. Build the framework: 16 bits per packet, network of 64 switches.
  FrameworkConfig config;
  config.global_bit_budget = 16;
  config.path.d = 5;  // typical path length in this network
  config.latency.max_value = 1e6;
  config.perpacket.max_value = 1e6;
  std::vector<std::uint64_t> switch_ids;
  for (SwitchId s = 1; s <= 64; ++s) switch_ids.push_back(s);

  PintFramework pint(config, {path_q, latency_q, cc_q}, switch_ids);

  // 3. A flow crossing five switches. Hop 3 is congested: high latency and
  //    high egress utilization.
  const std::vector<SwitchId> true_path{12, 7, 33, 51, 24};
  const unsigned k = 5;
  FiveTuple tuple{0x0A000001, 0x0A000002, 40000, 443, 6};
  const std::uint64_t fkey = flow_key(tuple, FlowDefinition::kFiveTuple);

  Rng rng(7);
  double last_bottleneck = 0.0;
  for (PacketId id = 1; id <= 30000; ++id) {
    Packet pkt;
    pkt.id = id;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view;
      view.id = true_path[i - 1];
      view.hop_latency_ns =
          (i == 3 ? 5000.0 : 100.0) + rng.exponential(0.01);
      view.link_utilization = (i == 3 ? 9500.0 : 1200.0);
      pint.at_switch(pkt, i, view);
    }
    const SinkReport report = pint.at_sink(pkt, k);
    if (report.bottleneck_utilization) {
      last_bottleneck = *report.bottleneck_utilization;
    }
  }

  // 4. Ask the Inference Module.
  std::printf("== PINT quickstart (16-bit global budget) ==\n\n");
  const auto decoded = pint.flow_path(fkey);
  std::printf("path tracing   : ");
  if (decoded) {
    for (SwitchId s : *decoded) std::printf("%u ", s);
    std::printf("(decoded, truth:");
    for (SwitchId s : true_path) std::printf(" %u", s);
    std::printf(")\n");
  } else {
    std::printf("still ambiguous (%.0f%% resolved)\n",
                100.0 * pint.path_progress(fkey));
  }

  std::printf("hop latencies  : ");
  for (HopIndex i = 1; i <= k; ++i) {
    const auto med = pint.latency_quantile(fkey, i, 0.5);
    std::printf("hop%u=%.0fns ", i, med.value_or(-1.0));
  }
  std::printf(" <- hop 3 stands out\n");

  std::printf("bottleneck util: %.0f (true congested value 9500)\n",
              last_bottleneck);
  return 0;
}
