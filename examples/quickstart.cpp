// Quickstart: run all three PINT queries concurrently on a 5-hop path with a
// 16-bit global budget (the paper's Section 6.4 configuration) and read the
// answers back — built through the Builder API, with a SinkObserver watching
// congestion feedback arrive.
//
//   $ ./examples/example_quickstart
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "pint/framework.h"

using namespace pint;

namespace {

// Observers subscribe to query results; no polling of framework internals.
struct BottleneckWatcher : SinkObserver {
  double last = 0.0;
  int reports = 0;
  void on_observation(const SinkContext&, std::string_view query,
                      const Observation& obs) override {
    if (query != "congestion") return;
    if (const auto* agg = std::get_if<AggregateObservation>(&obs)) {
      last = agg->value;
      ++reports;
    }
  }
};

}  // namespace

int main() {
  // 1. Tune the per-family modules (digest widths come from each query's
  //    bit budget at build time).
  PathTracingConfig path_tuning;
  path_tuning.d = 5;  // typical path length in this network
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e6;
  PerPacketConfig congestion_tuning;
  congestion_tuning.max_value = 1e6;

  // 2. Declare the queries — <value extractor, aggregation, bits,
  //    frequency> — and build: 16 bits per packet, 64 switches. Bit budgets
  //    and extractor names are validated here; errors are typed, not silent.
  std::vector<std::uint64_t> switch_ids;
  for (SwitchId s = 1; s <= 64; ++s) switch_ids.push_back(s);

  BottleneckWatcher watcher;
  auto pint =
      PintFramework::Builder()
          .global_bit_budget(16)
          .switch_universe(switch_ids)
          .add_query(make_path_query("path", 8, 1.0, path_tuning))
          .add_query(make_dynamic_query("latency",
                                        std::string(extractor::kHopLatency),
                                        8, 15.0 / 16.0, latency_tuning))
          .add_query(make_perpacket_query(
              "congestion", std::string(extractor::kLinkUtilization), 8,
              1.0 / 16.0, congestion_tuning))
          .add_observer(&watcher)
          .build_or_throw();

  // 3. A flow crossing five switches. Hop 3 is congested: high latency and
  //    high egress utilization.
  const std::vector<SwitchId> true_path{12, 7, 33, 51, 24};
  const unsigned k = 5;
  FiveTuple tuple{0x0A000001, 0x0A000002, 40000, 443, 6};
  const std::uint64_t fkey = pint->flow_key_for("path", tuple);

  Rng rng(7);
  for (PacketId id = 1; id <= 30000; ++id) {
    Packet pkt;
    pkt.id = id;
    pkt.tuple = tuple;
    for (HopIndex i = 1; i <= k; ++i) {
      SwitchView view(true_path[i - 1]);
      view.set(metric::kHopLatencyNs,
               (i == 3 ? 5000.0 : 100.0) + rng.exponential(0.01));
      view.set(metric::kLinkUtilization, i == 3 ? 9500.0 : 1200.0);
      pint->at_switch(pkt, i, view);
    }
    pint->at_sink(pkt, k);
  }

  // 4. Ask the Inference Module.
  std::printf("== PINT quickstart (16-bit global budget) ==\n\n");
  const auto decoded = pint->flow_path(fkey);
  std::printf("path tracing   : ");
  if (decoded) {
    for (SwitchId s : *decoded) std::printf("%u ", s);
    std::printf("(decoded, truth:");
    for (SwitchId s : true_path) std::printf(" %u", s);
    std::printf(")\n");
  } else {
    std::printf("still ambiguous (%.0f%% resolved)\n",
                100.0 * pint->path_progress(fkey));
  }

  std::printf("hop latencies  : ");
  for (HopIndex i = 1; i <= k; ++i) {
    const auto med = pint->latency_quantile(fkey, i, 0.5);
    std::printf("hop%u=%.0fns ", i, med.value_or(-1.0));
  }
  std::printf(" <- hop 3 stands out\n");

  std::printf("bottleneck util: %.0f over %d reports (true congested value "
              "9500)\n",
              watcher.last, watcher.reports);
  return 0;
}
