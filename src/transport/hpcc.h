// HPCC: High Precision Congestion Control (Li et al., SIGCOMM 2019 — paper
// reference [46]), re-implemented from the published algorithm.
//
// HPCC maintains a byte window W updated from in-network telemetry. With INT
// feedback it computes each link's normalized inflight
//     u_j = qlen/(B*T) + txRate/B
// from consecutive per-hop reports and takes U = max_j u_j. With PINT
// feedback (Section 4.3, Example #3) the switches already maintain the EWMA
// utilization; the packet carries only the compressed bottleneck value,
// which the sender uses directly.
//
// Window update (HPCC Alg. 1, recommended setting maxStage = 0):
//     if U >= eta or inc_stage >= maxStage:  W = Wc * eta / U + W_AI
//     else:                                  W = Wc + W_AI
// with the reference window Wc frozen for an RTT to avoid overreaction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "transport/cc_interface.h"

namespace pint {

struct HpccParams {
  double eta = 0.95;       // target utilization
  TimeNs base_rtt = 13 * kMicro;  // T
  Bytes w_ai = 80;         // additive increase per update
  unsigned max_stage = 0;  // paper's recommended setting
  double nic_bandwidth_bps = 100e9;
  double ewma_gain = 0.9;  // sender-side smoothing of U (INT mode)
};

class HpccSender : public CongestionControl {
 public:
  explicit HpccSender(HpccParams params);

  Bytes window_bytes() const override { return static_cast<Bytes>(window_); }
  void on_ack(const AckFeedback& ack) override;
  void on_loss(TimeNs now, bool timeout) override;

  double utilization_estimate() const { return u_; }

 private:
  double measure_inflight_int(const AckFeedback& ack);
  void compute_window(double u, bool update_wc);

  HpccParams params_;
  double window_;      // W, bytes
  double reference_;   // Wc, bytes
  double u_ = 0.0;     // smoothed inflight estimate
  unsigned inc_stage_ = 0;
  TimeNs last_wc_update_ = -1;
  std::uint64_t last_update_bytes_ = 0;
  std::vector<HpccHopInfo> prev_hops_;
};

}  // namespace pint
