/// \file
/// Byte-stream transport for the sink -> collector fan-in path.
///
/// The fan-in pipeline (sim/fanin.h) used to hand codec buffers to the
/// collector as in-process vectors; a real deployment ships them over a
/// network. `ByteStream` is the seam: an ordered, bounded, *lossless* byte
/// pipe with a non-blocking writer — when the pipe is full, `try_write`
/// refuses the whole chunk instead of blocking or truncating, which is the
/// hook the fan-in's explicit backpressure policies (block / drop-newest)
/// act on. Two implementations:
///
///  * `SpscRingStream` — an in-memory single-producer/single-consumer ring
///    (power-of-two capacity, acquire/release atomics, no locks). The
///    default for tests and benches; also the shape a shared-memory
///    transport between pinned threads would take.
///  * `SocketPairStream` — a connected `socketpair(AF_UNIX, SOCK_STREAM)`
///    with both ends non-blocking, exercising a real kernel transport:
///    bounded send buffers, partial reads, EAGAIN backpressure. The fan-in
///    behaves identically over either (tests/fanin_test.cc verifies).
///
/// Writers and readers transfer raw bytes with no message boundaries;
/// pint/frame.h layers epoch/sequence framing on top so torn and truncated
/// streams are detected rather than misparsed.
#pragma once

#include <cstdint>
#include <cstddef>
#include <atomic>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pint {

/// Transport-layer failure surfaced as a typed exception: socket setup
/// errors, unexpected syscall failures, and contract violations a caller
/// can act on by name instead of string-matching what().
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A chunk no `try_write` on this stream could *ever* accept — it is
/// larger than the pipe itself. Returning false would invite a livelock
/// (a kBlock writer retries forever against a refusal that can never
/// clear), so the streams throw this instead. The fix is configuration:
/// raise the stream capacity or shrink the chunking
/// (`FanInConfig::max_frame_records`).
class OversizedChunkError final : public TransportError {
 public:
  OversizedChunkError(std::size_t chunk_bytes, std::size_t capacity_bytes)
      : TransportError("chunk of " + std::to_string(chunk_bytes) +
                       " bytes exceeds stream capacity of " +
                       std::to_string(capacity_bytes) +
                       " bytes and can never be written; raise the stream "
                       "capacity or lower max_frame_records"),
        chunk_bytes_(chunk_bytes),
        capacity_bytes_(capacity_bytes) {}

  std::size_t chunk_bytes() const { return chunk_bytes_; }
  std::size_t capacity_bytes() const { return capacity_bytes_; }

 private:
  std::size_t chunk_bytes_;
  std::size_t capacity_bytes_;
};

/// Ordered, bounded byte pipe between one writer and one reader.
///
/// Contract (both implementations):
///  * `try_write` is all-or-nothing: it returns false — and consumes no
///    bytes — unless the whole chunk was accepted. Interleaving partial
///    chunks would tear frames, so the transport never does it.
///  * `read` returns up to `out.size()` bytes (possibly 0) without
///    blocking; bytes arrive in write order, unmodified.
///  * `close_write()` signals end-of-stream: once the pipe drains,
///    `read` returns 0 and `eof()` turns true. A torn frame at that point
///    is the *frame* layer's truncation error, not silent loss.
///  * One writer thread and one reader thread; the two may differ.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Accepts the whole chunk or none of it (false = pipe full).
  [[nodiscard]] virtual bool try_write(
      std::span<const std::uint8_t> bytes) = 0;

  /// Up to `out.size()` bytes, in order; 0 when empty (or drained + closed).
  [[nodiscard]] virtual std::size_t read(std::span<std::uint8_t> out) = 0;

  /// No more writes will come (idempotent).
  virtual void close_write() = 0;

  /// True once the writer closed and every byte was read.
  [[nodiscard]] virtual bool eof() const = 0;

  /// Bytes a single try_write can ever accept (capacity of the pipe).
  virtual std::size_t capacity() const = 0;
};

/// Lock-free single-producer/single-consumer ring buffer stream.
///
/// Capacity is rounded up to a power of two. The producer owns `head_`,
/// the consumer owns `tail_`; each publishes with release and observes the
/// other with acquire, so data written before a head bump is visible to a
/// reader that sees the bump — the textbook SPSC contract, TSAN-clean.
class SpscRingStream final : public ByteStream {
 public:
  /// \param capacity_bytes usable capacity; rounded up to a power of two
  ///   (minimum 64). A try_write larger than this can never succeed.
  explicit SpscRingStream(std::size_t capacity_bytes);

  [[nodiscard]] bool try_write(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::size_t read(std::span<std::uint8_t> out) override;
  void close_write() override;
  [[nodiscard]] bool eof() const override;
  std::size_t capacity() const override { return buffer_.size(); }

 private:
  std::vector<std::uint8_t> buffer_;  // size is a power of two
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};  // total bytes ever written
  std::atomic<std::size_t> tail_{0};  // total bytes ever read
  std::atomic<bool> write_closed_{false};
};

/// Unix-domain socketpair stream: a real kernel byte pipe.
///
/// Both fds are non-blocking. `try_write` refuses the chunk when the send
/// buffer cannot take all of it at once (probed with MSG_PEEK-free
/// best-effort: a short `send` is rolled back by buffering the remainder
/// internally — see stream.cc — so the all-or-nothing contract holds).
/// `close_write` shuts down the writer half so the reader sees EOF.
class SocketPairStream final : public ByteStream {
 public:
  /// \param buffer_hint_bytes requested SO_SNDBUF/SO_RCVBUF; the kernel
  ///   may round it. Throws std::runtime_error if socketpair() fails.
  explicit SocketPairStream(std::size_t buffer_hint_bytes = 1 << 16);
  ~SocketPairStream() override;

  SocketPairStream(const SocketPairStream&) = delete;
  SocketPairStream& operator=(const SocketPairStream&) = delete;

  [[nodiscard]] bool try_write(std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] std::size_t read(std::span<std::uint8_t> out) override;
  void close_write() override;
  [[nodiscard]] bool eof() const override;
  std::size_t capacity() const override { return capacity_; }

 private:
  // Threading contract (no locks; the kernel socket is the only shared
  // state): write_fd_/pending_/write_closed_ are touched only by the single
  // writer thread, read_fd_/saw_eof_ only by the single reader thread —
  // ByteStream's one-writer/one-reader rule partitions the members by
  // thread, so there is nothing for a mutex to guard. A second writer (or
  // reader) would race on pending_ unsynchronized; that usage is outside
  // the interface contract, and TSAN's fanin/transport suites would flag it.
  int write_fd_ = -1;   // writer thread only
  int read_fd_ = -1;    // reader thread only
  std::size_t capacity_ = 0;  // immutable after construction
  // Tail of a chunk the kernel only partially accepted: drained before any
  // new chunk so the byte order (and the all-or-nothing contract as seen
  // by callers) is preserved. Writer thread only.
  std::vector<std::uint8_t> pending_;
  bool write_closed_ = false;  // writer thread only
  bool saw_eof_ = false;       // reader thread only
};

}  // namespace pint
