#include "transport/collector_daemon.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "transport/io_hooks.h"
#include "transport/stream.h"

namespace pint {

namespace {

constexpr std::array<std::uint8_t, 4> kHelloMagic = {'P', 'N', 'T', 'H'};
constexpr std::uint8_t kHelloVersion = 1;

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(std::string(what) + ": " + std::strerror(errno));
}

int checked(int rc, const char* what) {
  if (rc < 0) throw_errno(what);
  return rc;
}

}  // namespace

std::array<std::uint8_t, kHelloBytes> encode_hello(std::uint32_t source) {
  std::array<std::uint8_t, kHelloBytes> out{};
  std::copy(kHelloMagic.begin(), kHelloMagic.end(), out.begin());
  out[4] = kHelloVersion;
  // out[5..7] reserved, zero.
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<std::uint8_t>(source >> (8 * i));
  }
  return out;
}

std::optional<std::uint32_t> decode_hello(
    std::span<const std::uint8_t, kHelloBytes> bytes) {
  if (!std::equal(kHelloMagic.begin(), kHelloMagic.end(), bytes.begin())) {
    return std::nullopt;
  }
  if (bytes[4] != kHelloVersion) return std::nullopt;
  std::uint32_t source = 0;
  for (int i = 0; i < 4; ++i) {
    source |= static_cast<std::uint32_t>(bytes[8 + i]) << (8 * i);
  }
  if (source == 0) return std::nullopt;
  return source;
}

CollectorDaemon::CollectorDaemon(StreamIngest& ingest,
                                 CollectorDaemonConfig config)
    : ingest_(ingest), config_(std::move(config)) {
  if (config_.unix_path.empty() && !config_.tcp) {
    throw TransportError(
        "CollectorDaemon needs a unix path and/or a TCP listener");
  }
  if (config_.read_chunk_bytes == 0) config_.read_chunk_bytes = 1 << 16;
  read_buf_.resize(config_.read_chunk_bytes);
  epoll_fd_ = checked(::epoll_create1(EPOLL_CLOEXEC), "epoll_create1");
  wake_fd_ = checked(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK), "eventfd");
  try {
    add_to_epoll(wake_fd_);
    if (!config_.unix_path.empty()) setup_unix_listener();
    if (config_.tcp) setup_tcp_listener();
  } catch (...) {
    // Partially constructed: the destructor will not run, so release
    // whatever was opened before rethrowing.
    if (unix_listen_fd_ >= 0) ::close(unix_listen_fd_);
    if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw;
  }
}

CollectorDaemon::~CollectorDaemon() {
  // Live connections are torn down through the normal policy so a daemon
  // destroyed mid-stream surfaces every open epoch as incomplete instead
  // of leaking silently half-merged sources.
  while (!connections_.empty()) {
    close_connection(connections_.begin()->first, /*orderly=*/false);
  }
  if (unix_listen_fd_ >= 0) {
    ::close(unix_listen_fd_);
    ::unlink(config_.unix_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void CollectorDaemon::setup_unix_listener() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("unix socket path too long: " + config_.unix_path);
  }
  std::memcpy(addr.sun_path, config_.unix_path.c_str(),
              config_.unix_path.size() + 1);
  unix_listen_fd_ = checked(
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0),
      "socket(AF_UNIX)");
  ::unlink(config_.unix_path.c_str());  // replace a stale socket file
  checked(::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)),
          "bind(unix)");
  checked(::listen(unix_listen_fd_, SOMAXCONN), "listen(unix)");
  add_to_epoll(unix_listen_fd_);
}

void CollectorDaemon::setup_tcp_listener() {
  tcp_listen_fd_ = checked(
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0),
      "socket(AF_INET)");
  const int one = 1;
  checked(::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one)),
          "setsockopt(SO_REUSEADDR)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.tcp_port);
  checked(::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)),
          "bind(tcp)");
  checked(::listen(tcp_listen_fd_, SOMAXCONN), "listen(tcp)");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  checked(::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                        &len),
          "getsockname");
  bound_tcp_port_ = ntohs(bound.sin_port);
  add_to_epoll(tcp_listen_fd_);
}

void CollectorDaemon::add_to_epoll(int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  checked(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev), "epoll_ctl(ADD)");
}

void CollectorDaemon::run() {
  while (!stop_.load(std::memory_order_acquire)) {
    poll_once(-1);
  }
}

bool CollectorDaemon::poll_once(int timeout_ms) {
  std::array<epoll_event, 64> events;
  int n;
  do {
    n = ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) throw_errno("epoll_wait");
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    if (fd == wake_fd_) {
      std::uint64_t tok = 0;
      // Drain the eventfd so a later stop() can poke again.
      while (::read(wake_fd_, &tok, sizeof(tok)) > 0) {
      }
      continue;
    }
    if (fd == unix_listen_fd_ || fd == tcp_listen_fd_) {
      accept_ready(fd);
      continue;
    }
    // The fd may have been closed by an earlier event in this same batch.
    if (connections_.find(fd) != connections_.end()) connection_ready(fd);
  }
  return n > 0;
}

void CollectorDaemon::stop() {
  stop_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  // Best-effort poke; EINTR retried, a full eventfd already wakes the loop.
  ssize_t rc;
  do {
    rc = ::write(wake_fd_, &one, sizeof(one));
  } while (rc < 0 && errno == EINTR);
}

void CollectorDaemon::accept_ready(int listener_fd) {
  for (;;) {
    const int fd =
        ::accept4(listener_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // Transient accept failures (aborted handshakes, fd pressure) must
      // not kill the loop — the listener stays armed.
      return;
    }
    connections_.emplace(fd, Connection{fd});
    add_to_epoll(fd);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    live_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool CollectorDaemon::consume_hello(Connection& conn,
                                    std::span<const std::uint8_t>& bytes) {
  const std::size_t want = kHelloBytes - conn.hello_got;
  const std::size_t take = std::min(want, bytes.size());
  std::copy_n(bytes.begin(), take, conn.hello.begin() + conn.hello_got);
  conn.hello_got += take;
  bytes = bytes.subspan(take);
  if (conn.hello_got < kHelloBytes) return true;  // need more bytes
  const auto source =
      decode_hello(std::span<const std::uint8_t, kHelloBytes>(conn.hello));
  if (!source.has_value()) {
    handshake_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (live_source_fds_.find(*source) != live_source_fds_.end()) {
    // Another live connection already speaks for this source; splicing a
    // second one in would interleave two frame streams. Reject the
    // newcomer.
    handshake_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  conn.source = *source;
  live_source_fds_.emplace(*source, conn.fd);
  return true;
}

void CollectorDaemon::connection_ready(int fd) {
  for (;;) {
    const ssize_t n = io_hooks().recv(fd, read_buf_.data(), read_buf_.size(),
                                      MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_connection(fd, /*orderly=*/false);
      return;
    }
    if (n == 0) {
      close_connection(fd, /*orderly=*/true);
      return;
    }
    bytes_received_.fetch_add(static_cast<std::uint64_t>(n),
                              std::memory_order_relaxed);
    Connection& conn = connections_.at(fd);
    std::span<const std::uint8_t> bytes(read_buf_.data(),
                                        static_cast<std::size_t>(n));
    if (conn.source == 0) {
      if (!consume_hello(conn, bytes)) {
        close_connection(fd, /*orderly=*/false);
        return;
      }
    }
    if (!bytes.empty()) ingest_.ingest_stream(conn.source, bytes);
  }
}

void CollectorDaemon::close_connection(int fd, bool orderly) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  const std::uint32_t source = it->second.source;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  live_connections_.fetch_sub(1, std::memory_order_relaxed);
  if (source == 0) return;  // never attributed: nothing to report
  live_source_fds_.erase(source);
  if (config_.end_stream_on_disconnect) {
    // One connection per source per run: EOF (orderly or not) is the end
    // of the source. A mid-epoch death is the collector's ledger to call.
    ingest_.end_stream(source);
    sources_ended_.fetch_add(1, std::memory_order_relaxed);
  } else if (orderly) {
    ingest_.end_stream(source);
    sources_ended_.fetch_add(1, std::memory_order_relaxed);
  } else {
    ingest_.disconnect_stream(source);
  }
}

}  // namespace pint
