// Congestion-control interface between the discrete-event simulator and the
// transport algorithms (HPCC with INT or PINT feedback; TCP Reno).
//
// The simulator delivers ACKs annotated with whatever telemetry the network
// collected; the algorithm answers with a byte window. Keeping the feedback
// channel explicit is the point of the Fig. 7/8 experiments: HPCC(INT) reads
// a per-hop stack, HPCC(PINT) reads one compressed bottleneck value.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "pint/sink_report.h"

namespace pint {

// One hop's INT report as HPCC consumes it (timestamp, egress tx bytes,
// queue occupancy, link bandwidth — Section 2 of the paper).
struct HpccHopInfo {
  double tx_bytes = 0.0;     // cumulative bytes sent on the egress link
  double qlen_bytes = 0.0;   // queue length at dequeue
  TimeNs timestamp = 0;
  double bandwidth_bps = 0.0;
};

struct AckFeedback {
  std::uint64_t acked_bytes = 0;  // cumulative
  TimeNs ack_time = 0;
  TimeNs rtt_sample_ns = 0;

  // INT mode: per-hop stack echoed by the receiver.
  std::vector<HpccHopInfo> int_hops;

  // PINT mode: the sink's structured observation for the congestion-control
  // query — the decoded bottleneck utilization (absent when the packet did
  // not carry that query — the p < 1 case of Fig. 8).
  std::optional<AggregateObservation> pint_feedback;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Current allowed bytes in flight.
  virtual Bytes window_bytes() const = 0;

  virtual void on_ack(const AckFeedback& ack) = 0;

  // Loss signal (triple-dup-ack or timeout); `timeout` distinguishes them.
  virtual void on_loss(TimeNs now, bool timeout) = 0;
};

}  // namespace pint
