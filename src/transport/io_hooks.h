/// \file
/// Syscall indirection for the socket transports — a test seam.
///
/// Every send/recv the transport layer issues goes through these pointers,
/// which default to the real syscalls. Tests swap in wrappers that inject
/// EINTR (or short writes) deterministically, so the retry discipline in
/// `SocketPairStream`, `SocketSenderStream`, and `CollectorDaemon` is
/// exercised without depending on signal-delivery timing.
///
/// Contract: the hooks are process-global and NOT synchronized. Swap them
/// only while no transport object is active on another thread (tests
/// install before spawning their threads and restore after joining).
#pragma once

#include <sys/types.h>

#include <cstddef>

namespace pint {

struct IoHooks {
  ssize_t (*send)(int fd, const void* buf, std::size_t len, int flags);
  ssize_t (*recv)(int fd, void* buf, std::size_t len, int flags);
};

/// The process-wide hook table (defaults to the real syscalls).
IoHooks& io_hooks();

/// RAII installer: swaps the table in, restores the previous one on exit.
class ScopedIoHooks {
 public:
  explicit ScopedIoHooks(IoHooks hooks) : saved_(io_hooks()) {
    io_hooks() = hooks;
  }
  ~ScopedIoHooks() { io_hooks() = saved_; }

  ScopedIoHooks(const ScopedIoHooks&) = delete;
  ScopedIoHooks& operator=(const ScopedIoHooks&) = delete;

 private:
  IoHooks saved_;
};

}  // namespace pint
