#include "transport/io_hooks.h"

#include <sys/socket.h>

namespace pint {

namespace {

ssize_t real_send(int fd, const void* buf, std::size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}

ssize_t real_recv(int fd, void* buf, std::size_t len, int flags) {
  return ::recv(fd, buf, len, flags);
}

}  // namespace

IoHooks& io_hooks() {
  static IoHooks hooks{&real_send, &real_recv};
  return hooks;
}

}  // namespace pint
