#include "transport/hpcc.h"

#include <algorithm>
#include <cmath>

namespace pint {

HpccSender::HpccSender(HpccParams params) : params_(params) {
  // Start at one bandwidth-delay product.
  window_ = params_.nic_bandwidth_bps / 8.0 *
            (static_cast<double>(params_.base_rtt) / 1e9);
  reference_ = window_;
}

double HpccSender::measure_inflight_int(const AckFeedback& ack) {
  // First report from each hop only seeds the per-hop baseline.
  double u_max = 0.0;
  const double T = static_cast<double>(params_.base_rtt) / 1e9;
  if (prev_hops_.size() == ack.int_hops.size()) {
    for (std::size_t j = 0; j < ack.int_hops.size(); ++j) {
      const HpccHopInfo& cur = ack.int_hops[j];
      const HpccHopInfo& prev = prev_hops_[j];
      const double dt =
          static_cast<double>(cur.timestamp - prev.timestamp) / 1e9;
      if (dt <= 0.0 || cur.bandwidth_bps <= 0.0) continue;
      const double tx_rate_bps = (cur.tx_bytes - prev.tx_bytes) * 8.0 / dt;
      // Use the smaller queue of the two reports (HPCC's qlen min) to avoid
      // double counting transient bursts.
      const double qlen = std::min(cur.qlen_bytes, prev.qlen_bytes);
      const double u_j =
          qlen * 8.0 / (cur.bandwidth_bps * T) +
          tx_rate_bps / cur.bandwidth_bps;
      u_max = std::max(u_max, u_j);
    }
  }
  prev_hops_ = ack.int_hops;
  return u_max;
}

void HpccSender::compute_window(double u_new, bool update_wc) {
  // Sender-side EWMA smoothing (HPCC's per-ACK filter).
  u_ = params_.ewma_gain * u_ + (1.0 - params_.ewma_gain) * u_new;
  const double w_ai = static_cast<double>(params_.w_ai);
  double w;
  if (u_ >= params_.eta || inc_stage_ >= params_.max_stage) {
    w = reference_ * (params_.eta / std::max(u_, 1e-3)) + w_ai;
    if (update_wc) {
      inc_stage_ = 0;
      reference_ = w;
    }
  } else {
    w = reference_ + w_ai;
    if (update_wc) {
      ++inc_stage_;
      reference_ = w;
    }
  }
  // Clamp to [1 MTU, 2 BDP] like the reference implementation.
  const double bdp = params_.nic_bandwidth_bps / 8.0 *
                     (static_cast<double>(params_.base_rtt) / 1e9);
  window_ = std::clamp(w, 1500.0, 2.0 * bdp);
}

void HpccSender::on_ack(const AckFeedback& ack) {
  double u;
  if (!ack.int_hops.empty()) {
    u = measure_inflight_int(ack);
  } else if (ack.pint_feedback.has_value()) {
    u = ack.pint_feedback->value;
  } else {
    return;  // no telemetry on this ACK (PINT running at p < 1)
  }
  // Update Wc at most once per RTT (reference-window rule).
  const bool update_wc =
      last_wc_update_ < 0 ||
      ack.ack_time - last_wc_update_ >= params_.base_rtt;
  if (update_wc) last_wc_update_ = ack.ack_time;
  compute_window(u, update_wc);
}

void HpccSender::on_loss(TimeNs /*now*/, bool timeout) {
  // HPCC networks are expected lossless; on the rare drop, back off hard.
  if (timeout) {
    window_ = 1500.0;
    reference_ = window_;
  } else {
    window_ = std::max(1500.0, window_ / 2.0);
    reference_ = window_;
  }
}

}  // namespace pint
