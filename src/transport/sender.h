/// \file
/// Sink-side socket sender: a `ByteStream` whose far end is a
/// CollectorDaemon in another process.
///
/// `SocketSenderStream` connects (unix-domain or localhost TCP), sends the
/// attribution hello, and then carries framed bytes with the same
/// all-or-nothing `try_write` contract the in-process streams keep — so
/// `FanInSender`/`FanInPipeline` ship over it unchanged, priority classes
/// and drop accounting included.
///
/// What real sockets add, and how the sender keeps it typed:
///
///  * **Nonblocking connect.** Construction never blocks; the first
///    writes return false (backpressure) until the connect completes.
///    `wait_connected()` is the impatient caller's bounded wait.
///  * **Reconnect with backoff.** A lost connection (daemon restart, RST)
///    schedules an exponential-backoff reconnect; `try_write` keeps
///    refusing (false) or shedding (below) meanwhile, never throws for
///    connection loss.
///  * **Epoch-boundary resynchronization.** A connection that dies with
///    epoch bytes in flight leaves a torn epoch the collector already
///    counts incomplete (`disconnect_stream`). Resuming mid-epoch would
///    splice two half-epochs together, so the sender *discards* every
///    chunk until the next epoch-open frame, counting each discarded
///    payload frame (`frames_resync_discarded`). Discarded chunks return
///    true — they are accepted-and-shed, exactly like a drop-newest drop,
///    and their sequence numbers stay consumed so nothing is silently
///    renumbered. The epoch-open that ends the resync window is never
///    discarded: if it cannot be sent yet it returns false, so a kBlock
///    writer retries it until the reconnect lands and the stream resumes
///    cleanly at an epoch boundary. Reconnect therefore surfaces as a
///    typed incomplete epoch plus exact shed counts — never corruption.
///
/// One writer thread, as every ByteStream. `read()` is always 0: the
/// collector protocol is one-directional.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "transport/stream.h"

namespace pint {

/// Where and how a SocketSenderStream connects.
struct SocketSenderConfig {
  /// Non-empty: connect to this unix-domain path (takes precedence).
  std::string unix_path;
  /// Otherwise: connect to 127.0.0.1:tcp_port.
  std::uint16_t tcp_port = 0;
  /// Source id announced in the hello; must be nonzero and match the
  /// FrameWriter feeding this stream.
  std::uint32_t source = 0;
  /// SO_SNDBUF hint and the stream's advertised capacity().
  std::size_t buffer_hint_bytes = 1 << 18;
  /// Reconnect after a lost connection (false: stay down, keep refusing).
  bool reconnect = true;
  std::chrono::milliseconds backoff_initial{1};
  std::chrono::milliseconds backoff_max{200};
  /// How long close_write() may spend flushing buffered bytes.
  std::chrono::milliseconds close_flush_timeout{2000};
};

/// ByteStream over a client socket to a CollectorDaemon.
class SocketSenderStream final : public ByteStream {
 public:
  /// Validates config and starts the first nonblocking connect attempt.
  /// Throws TransportError only for configuration errors (no endpoint,
  /// zero source); a daemon that is not up yet is a retry, not an error.
  explicit SocketSenderStream(SocketSenderConfig config);
  ~SocketSenderStream() override;

  SocketSenderStream(const SocketSenderStream&) = delete;
  SocketSenderStream& operator=(const SocketSenderStream&) = delete;

  /// All-or-nothing, like every ByteStream, with two sender-specific
  /// outcomes: false while disconnected/backing off (backpressure — retry
  /// later), and true-but-shed for mid-epoch chunks inside a resync
  /// window (counted in frames_resync_discarded / bytes_discarded).
  [[nodiscard]] bool try_write(std::span<const std::uint8_t> bytes) override;

  /// Always 0 — the sender never reads; reports flow one way.
  [[nodiscard]] std::size_t read(std::span<std::uint8_t> out) override;

  /// Flushes buffered bytes (bounded by close_flush_timeout), half-closes
  /// the socket so the daemon sees an orderly EOF, then closes.
  void close_write() override;

  /// Never true: there is no read side to drain.
  [[nodiscard]] bool eof() const override { return false; }

  std::size_t capacity() const override { return config_.buffer_hint_bytes; }

  /// Blocks up to `timeout` for the connection (and hello) to be
  /// flushable; true if connected. Convenience for startup sequencing.
  bool wait_connected(std::chrono::milliseconds timeout);

  [[nodiscard]] bool connected() const { return state_ == State::kConnected; }

  /// Successful re-establishments after the first connect.
  std::uint64_t reconnects() const { return reconnects_; }
  /// Whole frames shed while waiting for an epoch boundary after a
  /// reconnect (payload and close frames; the next open ends the window).
  std::uint64_t frames_resync_discarded() const {
    return frames_resync_discarded_;
  }
  std::uint64_t bytes_discarded() const { return bytes_discarded_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  enum class State : std::uint8_t {
    kDisconnected,  // between attempts (backoff) or before the first
    kConnecting,    // nonblocking connect in flight
    kConnected,
  };

  void start_connect();
  /// Advances the connection state machine; true when writable.
  bool ensure_connected();
  void handle_disconnect();
  /// Sends as much of `buf` as the socket takes (EINTR retried); returns
  /// bytes consumed, or -1 after a connection loss (state already moved
  /// to disconnected).
  ssize_t send_some(const std::uint8_t* data, std::size_t len);
  /// Drains hello_pending_ then pending_; true when both are empty.
  bool flush_buffers();

  SocketSenderConfig config_;
  int fd_ = -1;
  State state_ = State::kDisconnected;
  bool write_closed_ = false;
  bool in_epoch_ = false;     // an epoch-open was sent, its close was not
  bool need_resync_ = false;  // shed until the next epoch-open chunk
  std::vector<std::uint8_t> hello_pending_;
  std::vector<std::uint8_t> pending_;  // tail of a partially sent chunk
  std::chrono::steady_clock::time_point next_attempt_{};
  std::chrono::milliseconds backoff_{0};
  std::uint64_t reconnects_ = 0;
  std::uint64_t frames_resync_discarded_ = 0;
  std::uint64_t bytes_discarded_ = 0;
  std::uint64_t bytes_sent_ = 0;
  bool ever_connected_ = false;
};

}  // namespace pint
