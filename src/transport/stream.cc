#include "transport/stream.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "transport/io_hooks.h"

namespace pint {

// --- SpscRingStream ---------------------------------------------------------

SpscRingStream::SpscRingStream(std::size_t capacity_bytes) {
  const std::size_t size =
      std::bit_ceil(std::max<std::size_t>(capacity_bytes, 64));
  buffer_.resize(size);
  mask_ = size - 1;
}

bool SpscRingStream::try_write(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > buffer_.size()) {
    // A refusal here could never clear — a kBlock writer would spin forever.
    throw OversizedChunkError(bytes.size(), buffer_.size());
  }
  const std::size_t head = head_.load(std::memory_order_relaxed);
  const std::size_t tail = tail_.load(std::memory_order_acquire);
  if (buffer_.size() - (head - tail) < bytes.size()) return false;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    buffer_[(head + i) & mask_] = bytes[i];
  }
  head_.store(head + bytes.size(), std::memory_order_release);
  return true;
}

std::size_t SpscRingStream::read(std::span<std::uint8_t> out) {
  const std::size_t tail = tail_.load(std::memory_order_relaxed);
  const std::size_t head = head_.load(std::memory_order_acquire);
  const std::size_t n = std::min(out.size(), head - tail);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = buffer_[(tail + i) & mask_];
  }
  tail_.store(tail + n, std::memory_order_release);
  return n;
}

void SpscRingStream::close_write() {
  write_closed_.store(true, std::memory_order_release);
}

bool SpscRingStream::eof() const {
  // Order matters: check closed before emptiness, so a concurrent
  // write+close cannot present as "closed and empty" mid-write.
  if (!write_closed_.load(std::memory_order_acquire)) return false;
  return head_.load(std::memory_order_acquire) ==
         tail_.load(std::memory_order_acquire);
}

// --- SocketPairStream -------------------------------------------------------

SocketPairStream::SocketPairStream(std::size_t buffer_hint_bytes) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw TransportError(std::string("socketpair: ") + std::strerror(errno));
  }
  write_fd_ = fds[0];
  read_fd_ = fds[1];
  const int hint = static_cast<int>(
      std::min<std::size_t>(buffer_hint_bytes, 1 << 30));
  if (::setsockopt(write_fd_, SOL_SOCKET, SO_SNDBUF, &hint, sizeof(hint)) !=
          0 ||
      ::setsockopt(read_fd_, SOL_SOCKET, SO_RCVBUF, &hint, sizeof(hint)) !=
          0) {
    const int err = errno;
    ::close(write_fd_);
    ::close(read_fd_);
    write_fd_ = read_fd_ = -1;
    throw TransportError(std::string("setsockopt: ") + std::strerror(err));
  }
  capacity_ = buffer_hint_bytes;
  // Non-blocking behavior comes from MSG_DONTWAIT on every send/recv: a
  // full send buffer surfaces as EAGAIN (the backpressure signal), an
  // empty receive buffer as a 0-byte read.
}

SocketPairStream::~SocketPairStream() {
  if (write_fd_ >= 0) ::close(write_fd_);
  if (read_fd_ >= 0) ::close(read_fd_);
}

bool SocketPairStream::try_write(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > capacity_) {
    throw OversizedChunkError(bytes.size(), capacity_);
  }
  if (write_closed_) return false;
  // Drain any remainder of a previously accepted chunk first: bytes must
  // leave in write order, and a refusal here means the pipe is still full.
  while (!pending_.empty()) {
    const ssize_t n = io_hooks().send(write_fd_, pending_.data(),
                                      pending_.size(),
                                      MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not full: retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
      throw TransportError(std::string("send: ") + std::strerror(errno));
    }
    pending_.erase(pending_.begin(), pending_.begin() + n);
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = io_hooks().send(write_fd_, bytes.data() + sent,
                                      bytes.size() - sent,
                                      MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not full: retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (sent == 0) return false;  // nothing consumed: clean refusal
        // The kernel took a prefix; the chunk is committed. Buffer the
        // tail so the all-or-nothing contract holds for the *caller* (the
        // chunk was accepted) and for the wire (no interleaving: the tail
        // flushes before any later chunk). Bounded by one chunk.
        pending_.assign(bytes.begin() + static_cast<std::ptrdiff_t>(sent),
                        bytes.end());
        return true;
      }
      throw TransportError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::size_t SocketPairStream::read(std::span<std::uint8_t> out) {
  if (out.empty() || saw_eof_) return 0;
  for (;;) {
    const ssize_t n =
        io_hooks().recv(read_fd_, out.data(), out.size(), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not empty: retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
      throw TransportError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      saw_eof_ = true;  // writer shut down and the pipe is drained
      return 0;
    }
    return static_cast<std::size_t>(n);
  }
}

void SocketPairStream::close_write() {
  if (write_closed_) return;
  // Best-effort flush of a partially sent chunk tail. Blocking here could
  // deadlock a single-threaded pipeline (nobody drains the reader while we
  // block), so an undeliverable tail is abandoned: the reader then hits
  // end-of-stream mid-frame and the frame layer reports a typed
  // truncation error instead of anything silent. EINTR is a retry, not an
  // abandonment — only EAGAIN/real errors stop the flush.
  while (!pending_.empty()) {
    const ssize_t n = io_hooks().send(write_fd_, pending_.data(),
                                      pending_.size(),
                                      MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending_.erase(pending_.begin(), pending_.begin() + n);
  }
  write_closed_ = true;
  ::shutdown(write_fd_, SHUT_WR);
}

bool SocketPairStream::eof() const { return saw_eof_; }

}  // namespace pint
