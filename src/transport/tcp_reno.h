// TCP Reno-style congestion control for the Section 2 overhead experiments
// (Figs. 1 and 2 use "standard ECMP routing with TCP Reno").
//
// Byte-based cwnd with slow start, congestion avoidance, fast retransmit
// (triple duplicate ACK halves the window) and timeout (window collapses to
// one segment). This is deliberately classic: the experiment measures how
// telemetry header bytes inflate FCT, not transport sophistication.
#pragma once

#include <algorithm>

#include "common/types.h"
#include "transport/cc_interface.h"

namespace pint {

struct TcpRenoParams {
  Bytes mss = 1000;
  Bytes initial_cwnd = 2 * 1000;
  Bytes max_cwnd = 1 << 24;
};

class TcpRenoSender : public CongestionControl {
 public:
  explicit TcpRenoSender(TcpRenoParams params)
      : params_(params),
        cwnd_(static_cast<double>(params.initial_cwnd)),
        ssthresh_(static_cast<double>(params.max_cwnd)) {}

  Bytes window_bytes() const override { return static_cast<Bytes>(cwnd_); }

  void on_ack(const AckFeedback& ack) override {
    const double mss = static_cast<double>(params_.mss);
    const auto newly = static_cast<double>(
        ack.acked_bytes > last_acked_ ? ack.acked_bytes - last_acked_ : 0);
    last_acked_ = std::max(last_acked_, ack.acked_bytes);
    if (newly == 0) return;  // duplicate; loss handling is the sim's job
    if (cwnd_ < ssthresh_) {
      cwnd_ += newly;  // slow start: grow by bytes acked
    } else {
      cwnd_ += mss * newly / cwnd_;  // congestion avoidance: ~1 MSS per RTT
    }
    cwnd_ = std::min(cwnd_, static_cast<double>(params_.max_cwnd));
  }

  void on_loss(TimeNs /*now*/, bool timeout) override {
    const double mss = static_cast<double>(params_.mss);
    if (timeout) {
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss);
      cwnd_ = mss;
    } else {  // fast retransmit
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * mss);
      cwnd_ = ssthresh_;
    }
  }

 private:
  TcpRenoParams params_;
  double cwnd_;
  double ssthresh_;
  std::uint64_t last_acked_ = 0;
};

}  // namespace pint
