#include "transport/sender.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

#include "pint/frame.h"
#include "transport/collector_daemon.h"
#include "transport/io_hooks.h"

namespace pint {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

SocketSenderStream::SocketSenderStream(SocketSenderConfig config)
    : config_(std::move(config)) {
  if (config_.unix_path.empty() && config_.tcp_port == 0) {
    throw TransportError(
        "SocketSenderStream needs a unix path or a TCP port");
  }
  if (config_.source == 0) {
    throw TransportError("SocketSenderStream needs a nonzero source id");
  }
  if (config_.backoff_initial.count() <= 0) {
    config_.backoff_initial = std::chrono::milliseconds(1);
  }
  if (config_.backoff_max < config_.backoff_initial) {
    config_.backoff_max = config_.backoff_initial;
  }
  next_attempt_ = Clock::now();
  start_connect();
}

SocketSenderStream::~SocketSenderStream() {
  if (fd_ >= 0) ::close(fd_);
}

void SocketSenderStream::start_connect() {
  const bool unix_domain = !config_.unix_path.empty();
  fd_ = ::socket(unix_domain ? AF_UNIX : AF_INET,
                 SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw TransportError(std::string("socket: ") + std::strerror(errno));
  }
  const int hint = static_cast<int>(
      std::min<std::size_t>(config_.buffer_hint_bytes, 1 << 30));
  if (::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &hint, sizeof(hint)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw TransportError(std::string("setsockopt(SO_SNDBUF): ") +
                         std::strerror(err));
  }
  int rc;
  if (unix_domain) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd_);
      fd_ = -1;
      throw TransportError("unix socket path too long: " + config_.unix_path);
    }
    std::memcpy(addr.sun_path, config_.unix_path.c_str(),
                config_.unix_path.size() + 1);
    do {
      rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(config_.tcp_port);
    do {
      rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  }
  if (rc == 0) {
    // Connected synchronously (the usual unix-domain outcome).
    state_ = State::kConnecting;  // the shared completion path finishes it
    return;
  }
  if (errno == EINPROGRESS || errno == EAGAIN) {
    state_ = State::kConnecting;
    return;
  }
  // Daemon not up (ECONNREFUSED, ENOENT, ...): schedule a retry.
  ::close(fd_);
  fd_ = -1;
  state_ = State::kDisconnected;
  backoff_ = backoff_.count() == 0
                 ? config_.backoff_initial
                 : std::min(backoff_ * 2, config_.backoff_max);
  next_attempt_ = Clock::now() + backoff_;
}

bool SocketSenderStream::ensure_connected() {
  if (state_ == State::kConnected) return true;
  if (state_ == State::kDisconnected) {
    if (ever_connected_ && !config_.reconnect) return false;
    if (Clock::now() < next_attempt_) return false;
    start_connect();
    if (state_ != State::kConnecting) return false;
  }
  // kConnecting: a nonblocking connect completes when the fd turns
  // writable; SO_ERROR says whether it succeeded.
  pollfd pfd{fd_, POLLOUT, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, 0);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return false;  // still in flight
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    ::close(fd_);
    fd_ = -1;
    state_ = State::kDisconnected;
    backoff_ = backoff_.count() == 0
                   ? config_.backoff_initial
                   : std::min(backoff_ * 2, config_.backoff_max);
    next_attempt_ = Clock::now() + backoff_;
    return false;
  }
  state_ = State::kConnected;
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  backoff_ = std::chrono::milliseconds(0);
  const auto hello = encode_hello(config_.source);
  hello_pending_.assign(hello.begin(), hello.end());
  return true;
}

void SocketSenderStream::handle_disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  state_ = State::kDisconnected;
  // A torn chunk tail or an unfinished epoch on the dead connection means
  // the stream must resume at the next epoch boundary, not mid-epoch.
  need_resync_ = need_resync_ || in_epoch_ || !pending_.empty();
  in_epoch_ = false;
  pending_.clear();
  hello_pending_.clear();
  backoff_ = config_.backoff_initial;
  next_attempt_ = Clock::now() + backoff_;
}

ssize_t SocketSenderStream::send_some(const std::uint8_t* data,
                                      std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = io_hooks().send(fd_, data + sent, len - sent,
                                      MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // EPIPE/ECONNRESET/...: the connection is gone.
      handle_disconnect();
      return -1;
    }
    sent += static_cast<std::size_t>(n);
    bytes_sent_ += static_cast<std::uint64_t>(n);
  }
  return static_cast<ssize_t>(sent);
}

bool SocketSenderStream::flush_buffers() {
  if (!hello_pending_.empty()) {
    const ssize_t n = send_some(hello_pending_.data(), hello_pending_.size());
    if (n < 0) return false;
    hello_pending_.erase(hello_pending_.begin(), hello_pending_.begin() + n);
    if (!hello_pending_.empty()) return false;
  }
  if (!pending_.empty()) {
    const ssize_t n = send_some(pending_.data(), pending_.size());
    if (n < 0) return false;
    pending_.erase(pending_.begin(), pending_.begin() + n);
    if (!pending_.empty()) return false;
  }
  return true;
}

bool SocketSenderStream::try_write(std::span<const std::uint8_t> bytes) {
  if (bytes.size() > capacity()) {
    throw OversizedChunkError(bytes.size(), capacity());
  }
  if (write_closed_) return false;
  const std::optional<FrameType> type = peek_frame_type(bytes);
  if (need_resync_) {
    if (type != FrameType::kEpochOpen) {
      // Inside the resync window everything up to the next epoch-open is
      // shed: the epoch it belonged to is already incomplete at the
      // collector, and splicing its tail onto a fresh connection would be
      // corruption. Accepted-and-counted, like a drop-newest drop.
      ++frames_resync_discarded_;
      bytes_discarded_ += bytes.size();
      return true;
    }
    // The epoch-open that ends the window takes the normal path; if it
    // cannot go out yet the caller sees false and retries it.
  }
  if (!ensure_connected()) return false;
  if (!flush_buffers()) return false;  // pipe still full, or just died
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = send_some(bytes.data() + sent, bytes.size() - sent);
    if (n < 0) {
      if (sent > 0) need_resync_ = true;  // the chunk is torn on the wire
      return false;
    }
    sent += static_cast<std::size_t>(n);
    if (sent < bytes.size()) {
      if (sent == 0) return false;  // clean refusal: nothing consumed
      // Kernel took a prefix: the chunk is committed; buffer the tail so
      // write order (and the all-or-nothing contract) is preserved.
      pending_.assign(bytes.begin() + static_cast<std::ptrdiff_t>(sent),
                      bytes.end());
      break;
    }
  }
  if (type == FrameType::kEpochOpen) {
    in_epoch_ = true;
    need_resync_ = false;
  } else if (type == FrameType::kEpochClose) {
    in_epoch_ = false;
  }
  return true;
}

std::size_t SocketSenderStream::read(std::span<std::uint8_t> out) {
  (void)out;
  return 0;
}

bool SocketSenderStream::wait_connected(std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  for (;;) {
    if (ensure_connected() && flush_buffers()) return true;
    if (Clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void SocketSenderStream::close_write() {
  if (write_closed_) return;
  // Bounded best-effort flush: the daemon should see every byte the
  // caller was told was accepted, but a dead peer must not wedge
  // shutdown. An unflushed tail surfaces at the collector as a typed
  // truncation/incomplete epoch, never as silence.
  const auto deadline = Clock::now() + config_.close_flush_timeout;
  while (Clock::now() < deadline) {
    if (ensure_connected() && flush_buffers()) break;
    if (state_ == State::kConnected && fd_ >= 0) {
      pollfd pfd{fd_, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, 10);
      } while (rc < 0 && errno == EINTR);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  write_closed_ = true;
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);  // orderly EOF at the daemon
}

}  // namespace pint
