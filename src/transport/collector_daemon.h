/// \file
/// Cross-process collector daemon: a socket listener + epoll event loop
/// that feeds remote sink connections into a frame-stream consumer.
///
/// This is the first piece of the repo that crosses a process boundary.
/// The fan-in pipeline (sim/fanin.h) was transport-ready — framed streams,
/// per-source epoch ledgers, mid-epoch-death semantics — but pumped its
/// bytes in-process. The daemon replaces the pump with real sockets:
///
///   sink proc 1: FanInSender -> SocketSenderStream --(unix/tcp)--+
///   sink proc 2: FanInSender -> SocketSenderStream --(unix/tcp)--+--> epoll
///   sink proc N: FanInSender -> SocketSenderStream --(unix/tcp)--+    loop
///                                                                     |
///                                           StreamIngest (FanInCollector)
///
/// The daemon listens on a unix-domain path, a localhost TCP port, or
/// both. Each accepted connection identifies itself with a fixed 12-byte
/// hello (magic, version, source id); every byte after the hello goes to
/// `StreamIngest::ingest_stream` for that source — the existing
/// `FrameReassembler` path, so loss, truncation, and corruption semantics
/// are exactly the in-process ones. A connection that closes is either an
/// orderly end-of-stream (`end_stream`: the source is done, a still-open
/// epoch is a mid-epoch death) or a disconnect (`disconnect_stream`: the
/// open epoch is incomplete but the source may reconnect and resume at the
/// next epoch boundary) — governed by `end_stream_on_disconnect`. A
/// SIGKILLed sink and a cleanly finished one both surface as kernel EOF;
/// the *collector's* epoch ledger tells them apart: died-mid-epoch means
/// the epoch-open had no close, and that is reported, never merged.
///
/// Threading: the daemon's sockets and every `StreamIngest` call live on
/// the one thread driving `run()` or `poll_once()` — the ingest target
/// keeps its single-threaded contract. `stop()` and the counters are safe
/// from any thread. `run()` on a dedicated thread plus `stop()`+join is
/// the in-process embedding (FanInPipeline daemon mode); a `poll_once()`
/// loop on the main thread is the fork-safe embedding (no threads exist
/// when child processes fork off — TSAN-clean).
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pint {

/// The receiving side of a framed stream transport — what a listener
/// needs from a collector. FanInCollector implements this; the daemon
/// depends only on the interface, so transport stays below sim in the
/// layering.
class StreamIngest {
 public:
  virtual ~StreamIngest() = default;

  /// Raw stream bytes from `source`, in connection arrival order.
  virtual void ingest_stream(std::uint32_t source,
                             std::span<const std::uint8_t> bytes) = 0;

  /// The source finished for good (orderly end-of-stream). An epoch still
  /// open is a mid-epoch death.
  virtual void end_stream(std::uint32_t source) = 0;

  /// The source's connection dropped but it may come back: an open epoch
  /// is counted incomplete and reassembly state is reset so a reconnected
  /// stream starts from a clean frame boundary — never spliced onto the
  /// torn tail of the old connection.
  virtual void disconnect_stream(std::uint32_t source) = 0;
};

/// Connection hello: the first bytes a sender writes, identifying which
/// source id the connection carries. Fixed width so the daemon can parse
/// it without framing.
inline constexpr std::size_t kHelloBytes = 12;

/// Serializes a hello for `source` (source 0 is invalid — it is the
/// frame layer's "unattributable" sentinel).
std::array<std::uint8_t, kHelloBytes> encode_hello(std::uint32_t source);

/// Parses a hello; nullopt on bad magic/version or a zero source id.
std::optional<std::uint32_t> decode_hello(
    std::span<const std::uint8_t, kHelloBytes> bytes);

/// Listener configuration. At least one of `unix_path` / `tcp` must be
/// set; both may be (sinks pick either endpoint).
struct CollectorDaemonConfig {
  /// Filesystem path for the unix-domain listener; empty = no unix
  /// listener. A stale socket file at the path is replaced. Unlinked on
  /// destruction.
  std::string unix_path;
  /// Listen on 127.0.0.1 TCP. Port 0 binds an ephemeral port — read it
  /// back with `tcp_port()`.
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  /// true: a closed connection ends its source for good (`end_stream` —
  /// one connection per source per run; what FanInPipeline daemon mode
  /// uses, so shutdown can wait on `sources_ended()`).
  /// false: a closed connection is a `disconnect_stream` — the source may
  /// reconnect and resume at the next epoch boundary.
  bool end_stream_on_disconnect = true;
  /// recv() buffer size per readiness callback.
  std::size_t read_chunk_bytes = 1 << 16;
};

/// The listener + event loop. Construction binds and listens (throws
/// TransportError on failure); no thread is spawned — the caller chooses
/// the driving thread via `run()` or `poll_once()`.
class CollectorDaemon {
 public:
  CollectorDaemon(StreamIngest& ingest, CollectorDaemonConfig config);

  /// Closes every socket; still-live connections are torn down through
  /// the same end/disconnect policy a runtime close takes. Must run on
  /// the driving thread (or after it has been joined).
  ~CollectorDaemon();

  CollectorDaemon(const CollectorDaemon&) = delete;
  CollectorDaemon& operator=(const CollectorDaemon&) = delete;

  /// Event loop: blocks dispatching socket events until `stop()`.
  void run();

  /// One bounded event-loop step: waits up to `timeout_ms` (0 = just
  /// poll) and dispatches whatever is ready. Returns true if any event
  /// was handled. The fork-safe way to drive the daemon from a thread
  /// that has other work (e.g. waitpid bookkeeping).
  bool poll_once(int timeout_ms);

  /// Requests `run()` to return; safe from any thread, idempotent.
  void stop();

  /// Bound TCP port (0 when no TCP listener) — the ephemeral-port
  /// answer. Safe from any thread after construction.
  std::uint16_t tcp_port() const { return bound_tcp_port_; }

  const std::string& unix_path() const { return config_.unix_path; }

  // Counters, safe from any thread (relaxed atomics; exact values are
  // settled once the driving thread is joined).
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_closed() const {
    return connections_closed_.load(std::memory_order_relaxed);
  }
  /// Sources whose streams reached an orderly end (end_stream delivered).
  std::uint64_t sources_ended() const {
    return sources_ended_.load(std::memory_order_relaxed);
  }
  /// Connections dropped before attribution: bad hello, or a hello
  /// claiming a source id another live connection already holds.
  std::uint64_t handshake_failures() const {
    return handshake_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t live_connections() const {
    return live_connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    int fd = -1;
    std::uint32_t source = 0;  // 0 until the hello completes
    std::array<std::uint8_t, kHelloBytes> hello{};
    std::size_t hello_got = 0;
  };

  void setup_unix_listener();
  void setup_tcp_listener();
  void add_to_epoll(int fd);
  void accept_ready(int listener_fd);
  void connection_ready(int fd);
  /// Tears one connection down. `orderly` = the peer half-closed (EOF);
  /// anything else (recv error, daemon shutdown) is a drop. Both routes
  /// go through the end/disconnect policy when the source was attributed.
  void close_connection(int fd, bool orderly);
  bool consume_hello(Connection& conn, std::span<const std::uint8_t>& bytes);

  StreamIngest& ingest_;
  CollectorDaemonConfig config_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: stop() pokes the epoll_wait awake
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  std::uint16_t bound_tcp_port_ = 0;
  std::unordered_map<int, Connection> connections_;          // by fd
  std::unordered_map<std::uint32_t, int> live_source_fds_;  // source -> fd
  std::vector<std::uint8_t> read_buf_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_closed_{0};
  std::atomic<std::uint64_t> sources_ended_{0};
  std::atomic<std::uint64_t> handshake_failures_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> live_connections_{0};
};

}  // namespace pint
