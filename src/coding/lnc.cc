#include "coding/lnc.h"

#include <bit>
#include <stdexcept>

namespace pint {

bool LncDecoder::add_packet(PacketId packet, Digest digest) {
  ++packets_;
  Row row{0, digest};
  for (HopIndex i = 1; i <= k_; ++i) {
    if (g_.below2(packet, i, 0.5)) row.coeffs |= std::uint64_t{1} << (i - 1);
  }
  // Reduce against existing pivots.
  while (row.coeffs != 0) {
    const unsigned j = static_cast<unsigned>(std::countr_zero(row.coeffs));
    if (pivot_rows_[j].coeffs == 0) {
      pivot_rows_[j] = row;
      ++rank_;
      return true;
    }
    row.coeffs ^= pivot_rows_[j].coeffs;
    row.rhs ^= pivot_rows_[j].rhs;
  }
  return false;
}

std::vector<std::uint64_t> LncDecoder::message() const {
  if (!complete()) throw std::runtime_error("system not full rank");
  // Back-substitute from the highest pivot down.
  std::vector<Row> rows(pivot_rows_);
  std::vector<std::uint64_t> out(k_, 0);
  for (int j = static_cast<int>(k_) - 1; j >= 0; --j) {
    Row row = rows[j];
    // Eliminate higher unknowns (already solved).
    for (unsigned h = j + 1; h < k_; ++h) {
      if ((row.coeffs >> h) & 1) {
        row.rhs ^= out[h];
        row.coeffs ^= std::uint64_t{1} << h;
      }
    }
    out[j] = row.rhs;
  }
  return out;
}

}  // namespace pint
