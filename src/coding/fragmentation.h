// Fragmentation (paper Section 4.2, "Reducing the Bit-overhead using
// Fragmentation").
//
// When a q-bit value must fit a b < q bit digest and the value universe is
// unknown (so hashing cannot be used), each value is split into F = ceil(q/b)
// fragments. A global hash assigns every packet a fragment number; the
// distributed encoding scheme then runs independently per fragment, as if
// the path had k*F hops. The decoder demultiplexes packets by fragment
// number and reassembles values once every fragment of a hop is known.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "coding/peeling_decoder.h"
#include "coding/scheme.h"
#include "common/types.h"

namespace pint {

class FragmentedCodec {
 public:
  // q = value width in bits, b = digest budget in bits.
  FragmentedCodec(unsigned k, unsigned q, unsigned b, SchemeConfig cfg,
                  const GlobalHash& root);

  unsigned num_fragments() const { return fragments_; }

  // Fragment number assigned to a packet (same on switch and decoder).
  unsigned fragment_of(PacketId packet) const {
    return static_cast<unsigned>(frag_hash_.ranged(packet, fragments_));
  }

  // Switch side: hop i updates the digest with its fragment of `value`.
  Digest encode_step(PacketId packet, HopIndex i, Digest cur,
                     std::uint64_t value) const;

  // Decoder side: consume a packet digest.
  void add_packet(PacketId packet, Digest digest);

  bool complete() const;
  std::optional<std::uint64_t> value_at(HopIndex hop) const;
  std::vector<std::uint64_t> message() const;

 private:
  std::uint64_t fragment_bits(std::uint64_t value, unsigned frag) const {
    return (value >> (frag * b_)) & low_bits_mask(b_);
  }

  unsigned k_;
  unsigned q_;
  unsigned b_;
  unsigned fragments_;
  SchemeConfig cfg_;
  GlobalHash frag_hash_;
  InstanceHashes hashes_;
  // Per-fragment derived hash families, shared by encoder and decoder sides.
  std::vector<InstanceHashes> frag_hashes_;
  // One full-block peeling decoder per fragment index (blocks are the b-bit
  // fragment values).
  std::vector<PeelingDecoder> decoders_;
};

}  // namespace pint
