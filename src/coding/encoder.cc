#include "coding/encoder.h"

namespace pint {

std::vector<Digest> encode_path_multi(const SchemeConfig& cfg,
                                      const GlobalHash& root,
                                      unsigned instances, PacketId packet,
                                      std::span<const std::uint64_t> blocks,
                                      unsigned bits) {
  std::vector<Digest> out;
  out.reserve(instances);
  for (unsigned inst = 0; inst < instances; ++inst) {
    const InstanceHashes h = make_instance_hashes(root, inst);
    out.push_back(encode_path(cfg, h, packet, blocks, bits));
  }
  return out;
}

}  // namespace pint
