// Switch-side distributed encoding step (paper Fig. 4 + Algorithm 1).
//
// Each packet carries a b-bit digest, initially 0. Encoder i (the i'th hop)
// may modify the digest based only on global hashes of (packet id, i) — no
// state, no inter-switch communication. Two digest representations:
//   * full-block mode  — the digest holds the value itself (used by the
//     Fig. 5 experiments and when b >= value width);
//   * hashed mode      — the digest holds h(value, packet) truncated to b
//     bits (Section 4.2, "Reducing the Bit-overhead using Hashing").
//
// "Multiple instantiations" (Section 4.2) run `instances` fully independent
// copies of the scheme, each with its own derived hash family and its own
// digest lane; a packet carries the concatenation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coding/scheme.h"
#include "common/types.h"
#include "hash/bit_vectors.h"
#include "hash/global_hash.h"

namespace pint {

// Independent hash family for one scheme instance, derived deterministically
// from a root seed so switches and the decoder agree.
struct InstanceHashes {
  GlobalHash layer;  // H(packet): layer selection
  GlobalHash g;      // g(packet, hop): per-hop decisions
  GlobalHash value;  // h(value, packet): value compression
};

inline InstanceHashes make_instance_hashes(const GlobalHash& root,
                                           unsigned instance) {
  return InstanceHashes{root.derive(instance * 16 + 1),
                        root.derive(instance * 16 + 2),
                        root.derive(instance * 16 + 3)};
}

// The value representation written/xored into the digest by hop i.
// bits == 0 selects full-block mode.
inline Digest value_repr(const InstanceHashes& h, PacketId packet,
                         std::uint64_t block, unsigned bits) {
  if (bits == 0) return block;
  return h.value.digest2(block, packet, bits);
}

// XOR-layer participation with either evaluation strategy: per-hop hashing
// (exact probability) or the bit-vector fast path (power-of-two probability,
// O(log 1/p) per switch, O(log k) for the decoder's whole set).
inline bool xor_layer_acts(const SchemeConfig& cfg, const InstanceHashes& h,
                           PacketId packet, HopIndex i, unsigned layer) {
  if (cfg.use_bit_vectors) {
    const BitVectorSelector sel(h.g.derive(0xB170 + layer),
                                cfg.layer_rounds[layer - 1]);
    return sel.acts(packet, i - 1);
  }
  return xor_participates(h.g, packet, i, cfg.layer_probs[layer - 1]);
}

inline std::vector<HopIndex> xor_layer_hops(const SchemeConfig& cfg,
                                            const InstanceHashes& h,
                                            PacketId packet, unsigned k,
                                            unsigned layer) {
  if (cfg.use_bit_vectors) {
    const BitVectorSelector sel(h.g.derive(0xB170 + layer),
                                cfg.layer_rounds[layer - 1]);
    std::vector<HopIndex> out;
    for (unsigned b : sel.select(packet).set_bits(k)) out.push_back(b + 1);
    return out;
  }
  return xor_participants(h.g, packet, k, cfg.layer_probs[layer - 1]);
}

// One switch's digest update (Algorithm 1): returns the new digest.
// `i` is the 1-based hop number; `cur` the incoming digest.
inline Digest encode_step(const SchemeConfig& cfg, const InstanceHashes& h,
                          PacketId packet, HopIndex i, Digest cur,
                          std::uint64_t block, unsigned bits) {
  const unsigned layer = select_layer(cfg, h.layer, packet);
  if (layer == 0) {
    if (baseline_writes(h.g, packet, i)) {
      return value_repr(h, packet, block, bits);
    }
    return cur;
  }
  if (xor_layer_acts(cfg, h, packet, i, layer)) {
    return cur ^ value_repr(h, packet, block, bits);
  }
  return cur;
}

// Convenience: run the whole k-hop chain for one packet.
// blocks[i-1] is hop i's message block.
inline Digest encode_path(const SchemeConfig& cfg, const InstanceHashes& h,
                          PacketId packet,
                          std::span<const std::uint64_t> blocks,
                          unsigned bits) {
  Digest dig = 0;
  for (HopIndex i = 1; i <= blocks.size(); ++i) {
    dig = encode_step(cfg, h, packet, i, dig, blocks[i - 1], bits);
  }
  return dig;
}

// Multi-instance chain: one digest per instance (caller concatenates for
// wire format; we keep lanes separate for clarity).
std::vector<Digest> encode_path_multi(const SchemeConfig& cfg,
                                      const GlobalHash& root,
                                      unsigned instances, PacketId packet,
                                      std::span<const std::uint64_t> blocks,
                                      unsigned bits);

}  // namespace pint
