#include "coding/lt_code.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pint {

RobustSoliton::RobustSoliton(unsigned k, double c, double delta) : k_(k) {
  if (k == 0) throw std::invalid_argument("k > 0");
  const double kd = static_cast<double>(k);
  const double R = c * std::log(kd / delta) * std::sqrt(kd);
  std::vector<double> rho(k + 1, 0.0), tau(k + 1, 0.0);
  rho[1] = 1.0 / kd;
  for (unsigned d = 2; d <= k; ++d) {
    rho[d] = 1.0 / (static_cast<double>(d) * (d - 1.0));
  }
  const auto spike = static_cast<unsigned>(std::max(1.0, kd / R));
  for (unsigned d = 1; d <= k; ++d) {
    if (d < spike) {
      tau[d] = R / (static_cast<double>(d) * kd);
    } else if (d == spike) {
      tau[d] = R * std::log(R / delta) / kd;
    }
  }
  double z = 0.0;
  for (unsigned d = 1; d <= k; ++d) z += rho[d] + tau[d];
  cdf_.resize(k);
  double acc = 0.0;
  for (unsigned d = 1; d <= k; ++d) {
    acc += (rho[d] + tau[d]) / z;
    cdf_[d - 1] = acc;
  }
  cdf_[k - 1] = 1.0;  // guard against rounding
}

unsigned RobustSoliton::degree(const GlobalHash& hash, PacketId packet) const {
  const double u = hash.unit(packet);
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<unsigned>(it - cdf_.begin()) + 1;
}

std::vector<HopIndex> LtEncoder::neighbors(PacketId packet) const {
  const unsigned d = std::min(soliton_.degree(degree_hash_, packet), k_);
  // Sample d distinct blocks via successive hashing (deterministic, shared
  // with the decoder).
  std::vector<HopIndex> out;
  out.reserve(d);
  std::uint64_t salt = 0;
  while (out.size() < d) {
    const auto idx = static_cast<HopIndex>(
        neighbor_hash_.ranged2(packet, salt++, k_) + 1);
    if (std::find(out.begin(), out.end(), idx) == out.end()) {
      out.push_back(idx);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Digest LtEncoder::encode(PacketId packet,
                         const std::vector<std::uint64_t>& blocks) const {
  Digest d = 0;
  for (HopIndex i : neighbors(packet)) d ^= blocks[i - 1];
  return d;
}

unsigned LtDecoder::add_packet(PacketId packet, Digest digest) {
  Record rec;
  rec.residual = digest;
  for (HopIndex i : encoder_.neighbors(packet)) {
    if (known_[i - 1].has_value()) {
      rec.residual ^= *known_[i - 1];
    } else {
      rec.unknown.push_back(i);
    }
  }
  if (rec.unknown.empty()) return 0;
  if (rec.unknown.size() == 1) return resolve(rec.unknown[0], rec.residual);
  const std::size_t idx = records_.size();
  records_.push_back(std::move(rec));
  for (HopIndex i : records_[idx].unknown) hop_to_records_[i].push_back(idx);
  return 0;
}

unsigned LtDecoder::resolve(HopIndex hop, std::uint64_t value) {
  unsigned newly = 0;
  std::vector<std::pair<HopIndex, std::uint64_t>> queue{{hop, value}};
  while (!queue.empty()) {
    auto [h, v] = queue.back();
    queue.pop_back();
    if (known_[h - 1].has_value()) continue;
    known_[h - 1] = v;
    ++resolved_;
    ++newly;
    auto it = hop_to_records_.find(h);
    if (it == hop_to_records_.end()) continue;
    for (std::size_t idx : it->second) {
      Record& rec = records_[idx];
      auto pos = std::find(rec.unknown.begin(), rec.unknown.end(), h);
      if (pos == rec.unknown.end()) continue;
      rec.unknown.erase(pos);
      rec.residual ^= v;
      if (rec.unknown.size() == 1 && !known_[rec.unknown[0] - 1].has_value()) {
        queue.emplace_back(rec.unknown[0], rec.residual);
      }
    }
    hop_to_records_.erase(it);
  }
  return newly;
}

std::vector<std::uint64_t> LtDecoder::message() const {
  if (!complete()) throw std::runtime_error("message not fully decoded");
  std::vector<std::uint64_t> out;
  out.reserve(k_);
  for (const auto& b : known_) out.push_back(*b);
  return out;
}

}  // namespace pint
