// Linear Network Coding comparator (paper Section 4.2, "Comparison with
// Linear Network Coding"; Ho et al., ISIT 2003).
//
// Each packet's digest is a random GF(2) linear combination of the k message
// blocks: block i is xored in with probability 1/2, chosen by the global
// hash so the receiver knows the coefficient vector without extra bits. The
// receiver solves the k x k system by incremental Gaussian elimination; in
// expectation ~ k + log2(k) packets give full rank. The trade-offs vs PINT's
// multi-layer scheme (O(k^3)-style decoding, incompatibility with hashing)
// are what bench_ablation_coding quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

class LncEncoder {
 public:
  explicit LncEncoder(const GlobalHash& root) : g_(root.derive(0x17C)) {}

  // Coefficient of block (1-based hop) i for this packet.
  bool coefficient(PacketId packet, HopIndex i) const {
    return g_.below2(packet, i, 0.5);
  }

  // Digest for a packet given all blocks (switch-side equivalent: hop i
  // xors blocks[i-1] in when coefficient() is true).
  Digest encode(PacketId packet,
                const std::vector<std::uint64_t>& blocks) const {
    Digest d = 0;
    for (HopIndex i = 1; i <= blocks.size(); ++i) {
      if (coefficient(packet, i)) d ^= blocks[i - 1];
    }
    return d;
  }

 private:
  GlobalHash g_;
};

// Incremental GF(2) Gaussian elimination over coefficient rows of width
// k <= 64 with a 64-bit right-hand side (the digest).
class LncDecoder {
 public:
  LncDecoder(unsigned k, const GlobalHash& root)
      : k_(k), g_(root.derive(0x17C)) {}

  // Returns true if the packet increased the rank.
  bool add_packet(PacketId packet, Digest digest);

  bool complete() const { return rank_ == k_; }
  unsigned rank() const { return rank_; }
  std::uint64_t packets_consumed() const { return packets_; }

  // Back-substituted message, hop order; requires complete().
  std::vector<std::uint64_t> message() const;

 private:
  struct Row {
    std::uint64_t coeffs;  // bit i-1 = coefficient of hop i
    Digest rhs;
  };

  unsigned k_;
  GlobalHash g_;
  unsigned rank_ = 0;
  std::uint64_t packets_ = 0;
  // pivot_rows_[j] has its lowest set coefficient bit at position j.
  std::vector<Row> pivot_rows_ = std::vector<Row>(64, Row{0, 0});
};

}  // namespace pint
