#include "coding/peeling_decoder.h"

#include <algorithm>
#include <stdexcept>

namespace pint {

PeelingDecoder::PeelingDecoder(unsigned k, SchemeConfig cfg,
                               InstanceHashes hashes)
    : k_(k), cfg_(std::move(cfg)), hashes_(hashes), known_(k) {
  if (k == 0) throw std::invalid_argument("k > 0");
}

unsigned PeelingDecoder::add_packet(PacketId packet, Digest digest) {
  ++packets_;
  const unsigned layer = select_layer(cfg_, hashes_.layer, packet);
  if (layer == 0) {
    const HopIndex carrier = baseline_carrier(hashes_.g, packet, k_);
    if (known_[carrier - 1].has_value()) return 0;
    return resolve(carrier, digest);
  }

  XorRecord rec;
  rec.residual = digest;
  for (HopIndex i : xor_layer_hops(cfg_, hashes_, packet, k_, layer)) {
    if (known_[i - 1].has_value()) {
      rec.residual ^= *known_[i - 1];
    } else {
      rec.unknown.push_back(i);
    }
  }
  if (rec.unknown.empty()) return 0;  // nothing new
  if (rec.unknown.size() == 1) return resolve(rec.unknown[0], rec.residual);

  const std::size_t idx = records_.size();
  records_.push_back(std::move(rec));
  for (HopIndex i : records_[idx].unknown) hop_to_records_[i].push_back(idx);
  return 0;
}

unsigned PeelingDecoder::resolve(HopIndex hop, std::uint64_t value) {
  // Iterative peeling: resolving one hop can make stored XOR records usable.
  unsigned newly = 0;
  std::vector<std::pair<HopIndex, std::uint64_t>> queue{{hop, value}};
  while (!queue.empty()) {
    auto [h, v] = queue.back();
    queue.pop_back();
    if (known_[h - 1].has_value()) continue;
    known_[h - 1] = v;
    ++resolved_;
    ++newly;
    auto it = hop_to_records_.find(h);
    if (it == hop_to_records_.end()) continue;
    for (std::size_t idx : it->second) {
      XorRecord& rec = records_[idx];
      // Remove h from the record's unknown set.
      auto pos = std::find(rec.unknown.begin(), rec.unknown.end(), h);
      if (pos == rec.unknown.end()) continue;
      rec.unknown.erase(pos);
      rec.residual ^= v;
      if (rec.unknown.size() == 1 && !known_[rec.unknown[0] - 1].has_value()) {
        queue.emplace_back(rec.unknown[0], rec.residual);
      }
    }
    hop_to_records_.erase(it);
  }
  return newly;
}

std::vector<std::uint64_t> PeelingDecoder::message() const {
  if (!complete()) throw std::runtime_error("message not fully decoded");
  std::vector<std::uint64_t> out;
  out.reserve(k_);
  for (const auto& b : known_) out.push_back(*b);
  return out;
}

}  // namespace pint
