// Hashed-value path decoder (paper Section 4.2, "Reducing the Bit-overhead
// using Hashing").
//
// When the digest is narrower than a value, hop i writes h(M_i, packet)
// instead of M_i. The decoder knows the finite value universe V (e.g. all
// switch IDs in the network) and keeps, per hop, the set of candidate values
// consistent with every Baseline packet observed from that hop. A hop is
// resolved when exactly one candidate survives. XOR packets are stored and
// peeled: once all-but-one of a packet's participant hops are resolved, the
// residual digest acts like one more Baseline observation for the remaining
// hop.
//
// Multiple instantiations (Section 4.2) run `instances` independent scheme
// copies whose observations all narrow the *shared* per-hop candidate sets,
// which is why 2 x (b=8) outperforms 1 x (b=16) in packets-to-decode.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "coding/encoder.h"
#include "coding/scheme.h"
#include "common/types.h"

namespace pint {

struct HashedDecoderConfig {
  unsigned k = 0;          // path length
  unsigned bits = 8;       // digest bits per instance (1..64)
  unsigned instances = 1;  // independent scheme copies
  SchemeConfig scheme;
};

class HashedPathDecoder {
 public:
  // `universe` = all possible block values (e.g. every switch ID).
  HashedPathDecoder(HashedDecoderConfig cfg, const GlobalHash& root,
                    std::vector<std::uint64_t> universe);

  // Feed one packet; `digests` has one lane per instance.
  // Returns the number of hops newly resolved.
  unsigned add_packet(PacketId packet, std::span<const Digest> digests);

  bool complete() const { return resolved_ == cfg_.k; }
  unsigned resolved_count() const { return resolved_; }
  unsigned k() const { return cfg_.k; }

  std::optional<std::uint64_t> value_at(HopIndex hop) const;
  std::vector<std::uint64_t> path() const;  // requires complete()

  std::uint64_t packets_consumed() const { return packets_; }

  // Approximate heap + object footprint in bytes, for the Recording
  // Module's memory accounting. Shrinks as candidate sets are filtered and
  // grows with buffered XOR records.
  std::size_t approx_bytes() const;

 private:
  struct XorRecord {
    PacketId packet;
    unsigned instance;
    Digest residual;
    std::vector<HopIndex> unknown;
  };

  // Keep only candidates v of `hop` with h(v, packet) == digest under
  // instance `inst`; returns resolved hops triggered (cascade).
  unsigned filter_hop(HopIndex hop, unsigned inst, PacketId packet,
                      Digest digest);
  unsigned on_resolved(HopIndex hop);

  HashedDecoderConfig cfg_;
  std::vector<InstanceHashes> hashes_;
  std::vector<std::vector<std::uint64_t>> candidates_;  // per hop (1-based-1)
  unsigned resolved_ = 0;
  std::uint64_t packets_ = 0;
  std::vector<XorRecord> records_;
  std::unordered_map<HopIndex, std::vector<std::size_t>> hop_to_records_;
};

}  // namespace pint
