// Distributed encoding scheme configuration (paper Section 4.2, Algorithm 1).
//
// A scheme is a probability distribution over *layers*:
//   layer 0  — Baseline: reservoir sampling; the digest ends up carrying the
//              value of one uniformly random hop.
//   layer >0 — XOR: every hop xors its value in independently with the
//              layer's probability p_ell.
// Each packet is assigned a layer by the global hash H(packet); within the
// layer, per-hop decisions come from g(packet, hop). Switches and the decoder
// evaluate the same hashes, so no coordination bits are spent.
//
// Factories construct the paper's variants: pure Baseline, pure XOR(1/d),
// the Fig. 5 "Hybrid" interleaving, and the multi-layer scheme of
// Algorithm 1 whose layer probabilities are p_ell = (e tower (ell-1)) / d.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

struct SchemeConfig {
  // Probability that a packet runs the Baseline (reservoir) layer. The
  // remaining probability mass is split evenly across the XOR layers.
  double tau = 1.0;
  // XOR probability per layer; empty means Baseline-only.
  std::vector<double> layer_probs;

  // Decode fast path (Section 4.2, "Reducing the Decoding Complexity"):
  // round each layer probability to a power of two and derive per-hop
  // decisions from O(log 1/p) pseudo-random bit vectors, so the decoder
  // recovers a packet's participant set in O(log k) word operations instead
  // of O(k) hash evaluations. layer_rounds[l] = log2(1/p_l) after rounding.
  bool use_bit_vectors = false;
  std::vector<unsigned> layer_rounds;

  std::size_t num_layers() const { return layer_probs.size(); }
};

// Convert a scheme to its bit-vector fast-path variant: probabilities are
// rounded to the nearest power of two (at worst a sqrt(2)-factor change,
// which the multi-layer analysis absorbs — paper footnote 9).
SchemeConfig make_fast(SchemeConfig cfg);

// Iterated-exponential helper: e tower n = e^(e^(...)) n times; tower(0) = 1.
double e_tower(unsigned n);

// log*_e d: number of ln applications until the value drops to <= 1.
unsigned log_star(double d);

// --- Scheme factories (d = typical path length known to the encoders) ----

// Pure reservoir-sampling scheme (coupon collector behaviour, ~k ln k).
SchemeConfig make_baseline_scheme();

// Pure XOR scheme with probability p = 1/d (Fig. 5 "XOR").
SchemeConfig make_xor_scheme(unsigned d);

// Fig. 5 "Hybrid": Baseline with probability tau = 3/4, otherwise one XOR
// layer with probability log(log d)/log d (or 1/log d when d <= 15, per
// footnote 8).
SchemeConfig make_hybrid_scheme(unsigned d);

// Algorithm 1 multi-layer scheme: L = number of XOR layers needed for d
// (L=1 when d <= 15, L=2 up to e^e^e, ...), p_ell = e_tower(ell-1)/d, and
// tau = loglog*(d) / (1 + loglog*(d)) per the appendix (clamped so tau is
// always in (0, 1)).
SchemeConfig make_multilayer_scheme(unsigned d);

// Appendix A.3 revision: tau' = (1 + loglog* d) / (2 + loglog* d), which
// strictly improves the lower-order term.
SchemeConfig make_multilayer_scheme_revised(unsigned d);

// --- Per-packet evaluation -------------------------------------------------

// Layer selected for a packet: 0 = Baseline, 1..L = XOR layers.
// Mirrors Algorithm 1 lines 1-6.
unsigned select_layer(const SchemeConfig& cfg, const GlobalHash& layer_hash,
                      PacketId packet);

// Baseline-layer reservoir decision for 1-based hop i (Algorithm 1 line 3).
bool baseline_writes(const GlobalHash& g, PacketId packet, HopIndex i);

// XOR-layer participation for 1-based hop i (Algorithm 1 line 7).
bool xor_participates(const GlobalHash& g, PacketId packet, HopIndex i,
                      double p_ell);

// The hop (1-based) whose value a Baseline packet carries after traversing
// k hops: the last hop whose reservoir decision fired. Always >= 1 because
// hop 1 fires with probability 1/1.
HopIndex baseline_carrier(const GlobalHash& g, PacketId packet, unsigned k);

// All hops (1-based) that xor into a packet at XOR layer probability p_ell.
std::vector<HopIndex> xor_participants(const GlobalHash& g, PacketId packet,
                                       unsigned k, double p_ell);

}  // namespace pint
