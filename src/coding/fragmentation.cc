#include "coding/fragmentation.h"

#include <stdexcept>

namespace pint {

FragmentedCodec::FragmentedCodec(unsigned k, unsigned q, unsigned b,
                                 SchemeConfig cfg, const GlobalHash& root)
    : k_(k),
      q_(q),
      b_(b),
      fragments_((q + b - 1) / b),
      cfg_(std::move(cfg)),
      frag_hash_(root.derive(0xF7A6)),
      hashes_(make_instance_hashes(root, 0)) {
  if (k == 0 || q == 0 || b == 0 || b > 64 || q > 64)
    throw std::invalid_argument("bad fragmentation parameters");
  decoders_.reserve(fragments_);
  frag_hashes_.reserve(fragments_);
  for (unsigned f = 0; f < fragments_; ++f) {
    // Each fragment stream gets its own derived hash family so the per-
    // fragment reservoir/XOR processes are independent. The same derivation
    // is used by encode_step, keeping switch and decoder in agreement.
    frag_hashes_.push_back(make_instance_hashes(root, 1000 + f));
    decoders_.emplace_back(k_, cfg_, frag_hashes_.back());
  }
}

Digest FragmentedCodec::encode_step(PacketId packet, HopIndex i, Digest cur,
                                    std::uint64_t value) const {
  const unsigned frag = fragment_of(packet);
  // Full-block mode: the digest carries the b-bit fragment itself.
  return pint::encode_step(cfg_, frag_hashes_[frag], packet, i, cur,
                           fragment_bits(value, frag), /*bits=*/0);
}

void FragmentedCodec::add_packet(PacketId packet, Digest digest) {
  decoders_[fragment_of(packet)].add_packet(packet, digest);
}

bool FragmentedCodec::complete() const {
  for (const auto& d : decoders_) {
    if (!d.complete()) return false;
  }
  return true;
}

std::optional<std::uint64_t> FragmentedCodec::value_at(HopIndex hop) const {
  std::uint64_t v = 0;
  for (unsigned f = 0; f < fragments_; ++f) {
    const auto part = decoders_[f].block(hop);
    if (!part.has_value()) return std::nullopt;
    v |= (*part) << (f * b_);
  }
  return v;
}

std::vector<std::uint64_t> FragmentedCodec::message() const {
  std::vector<std::uint64_t> out;
  out.reserve(k_);
  for (HopIndex i = 1; i <= k_; ++i) {
    const auto v = value_at(i);
    if (!v.has_value()) throw std::runtime_error("message not fully decoded");
    out.push_back(*v);
  }
  return out;
}

}  // namespace pint
