// LT (Luby Transform) fountain code comparator.
//
// The paper's distributed-coding section argues that classic rateless codes
// assume a *single* encoder owning all message blocks — which switches are
// not. This module implements that idealized single-encoder setting (degree
// sampled from the robust soliton distribution, neighbours chosen by the
// global hash) as a *lower-bound reference* for the ablation bench: the gap
// between LT and PINT's multi-layer scheme is the price of distributing the
// encoder across stateless switches.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/peeling_decoder.h"
#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

// Robust soliton degree distribution over {1..k}.
class RobustSoliton {
 public:
  // c and delta are the usual robust-soliton parameters.
  RobustSoliton(unsigned k, double c = 0.1, double delta = 0.5);

  // Degree for a packet, sampled via the global hash (decoder replays it).
  unsigned degree(const GlobalHash& hash, PacketId packet) const;

  const std::vector<double>& cdf() const { return cdf_; }

 private:
  unsigned k_;
  std::vector<double> cdf_;  // cdf_[d-1] = P(degree <= d)
};

class LtEncoder {
 public:
  LtEncoder(unsigned k, const GlobalHash& root)
      : k_(k), soliton_(k), degree_hash_(root.derive(0x17A)),
        neighbor_hash_(root.derive(0x17B)) {}

  // The neighbour set (1-based block indices) of a packet.
  std::vector<HopIndex> neighbors(PacketId packet) const;

  Digest encode(PacketId packet,
                const std::vector<std::uint64_t>& blocks) const;

 private:
  unsigned k_;
  RobustSoliton soliton_;
  GlobalHash degree_hash_;
  GlobalHash neighbor_hash_;
};

// Peeling decoder for LT packets (same cascade structure as PINT's).
class LtDecoder {
 public:
  LtDecoder(unsigned k, const GlobalHash& root)
      : k_(k), encoder_(k, root), known_(k) {}

  unsigned add_packet(PacketId packet, Digest digest);

  bool complete() const { return resolved_ == k_; }
  unsigned resolved_count() const { return resolved_; }
  std::vector<std::uint64_t> message() const;

 private:
  struct Record {
    Digest residual;
    std::vector<HopIndex> unknown;
  };

  unsigned resolve(HopIndex hop, std::uint64_t value);

  unsigned k_;
  LtEncoder encoder_;
  std::vector<std::optional<std::uint64_t>> known_;
  unsigned resolved_ = 0;
  std::vector<Record> records_;
  std::unordered_map<HopIndex, std::vector<std::size_t>> hop_to_records_;
};

}  // namespace pint
