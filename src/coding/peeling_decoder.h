// Full-block peeling decoder (paper Section 4.2; used for the Fig. 5
// experiments where a digest holds an entire message block).
//
// Baseline packets resolve their carrier hop immediately. XOR packets whose
// participant set contains exactly one unknown hop yield that hop's block by
// xoring out the known ones; resolving a hop may unlock further XOR packets
// (peeling cascade), exactly like LT/fountain-code decoding.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "coding/encoder.h"
#include "coding/scheme.h"
#include "common/types.h"

namespace pint {

class PeelingDecoder {
 public:
  // `k` = path length (number of encoders); hashes must match the encoder's.
  PeelingDecoder(unsigned k, SchemeConfig cfg, InstanceHashes hashes);

  // Feed one received packet; returns number of newly resolved hops.
  unsigned add_packet(PacketId packet, Digest digest);

  bool complete() const { return resolved_ == k_; }
  unsigned resolved_count() const { return resolved_; }
  unsigned missing_count() const { return k_ - resolved_; }

  // Resolved block for 1-based hop i, if known.
  std::optional<std::uint64_t> block(HopIndex i) const {
    return known_[i - 1];
  }

  // Full message once complete (blocks in hop order).
  std::vector<std::uint64_t> message() const;

  std::uint64_t packets_consumed() const { return packets_; }

 private:
  struct XorRecord {
    Digest residual;
    std::vector<HopIndex> unknown;
  };

  unsigned resolve(HopIndex hop, std::uint64_t value);

  unsigned k_;
  SchemeConfig cfg_;
  InstanceHashes hashes_;
  std::vector<std::optional<std::uint64_t>> known_;
  unsigned resolved_ = 0;
  std::uint64_t packets_ = 0;
  std::vector<XorRecord> records_;
  std::unordered_map<HopIndex, std::vector<std::size_t>> hop_to_records_;
};

}  // namespace pint
