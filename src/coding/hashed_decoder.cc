#include "coding/hashed_decoder.h"

#include <algorithm>
#include <stdexcept>

namespace pint {

HashedPathDecoder::HashedPathDecoder(HashedDecoderConfig cfg,
                                     const GlobalHash& root,
                                     std::vector<std::uint64_t> universe)
    : cfg_(cfg) {
  if (cfg.k == 0) throw std::invalid_argument("k > 0");
  if (cfg.bits == 0 || cfg.bits > 64)
    throw std::invalid_argument("bits in [1,64]");
  if (cfg.instances == 0) throw std::invalid_argument("instances > 0");
  if (universe.empty()) throw std::invalid_argument("universe nonempty");
  hashes_.reserve(cfg.instances);
  for (unsigned inst = 0; inst < cfg.instances; ++inst) {
    hashes_.push_back(make_instance_hashes(root, inst));
  }
  candidates_.assign(cfg.k, universe);
  if (universe.size() == 1) resolved_ = cfg.k;  // degenerate: nothing to learn
}

unsigned HashedPathDecoder::add_packet(PacketId packet,
                                       std::span<const Digest> digests) {
  if (digests.size() != cfg_.instances)
    throw std::invalid_argument("one digest lane per instance expected");
  ++packets_;
  unsigned newly = 0;
  for (unsigned inst = 0; inst < cfg_.instances; ++inst) {
    const InstanceHashes& h = hashes_[inst];
    const unsigned layer = select_layer(cfg_.scheme, h.layer, packet);
    if (layer == 0) {
      const HopIndex carrier = baseline_carrier(h.g, packet, cfg_.k);
      newly += filter_hop(carrier, inst, packet, digests[inst]);
      continue;
    }
    XorRecord rec;
    rec.packet = packet;
    rec.instance = inst;
    rec.residual = digests[inst];
    for (HopIndex i : xor_layer_hops(cfg_.scheme, h, packet, cfg_.k, layer)) {
      if (candidates_[i - 1].size() == 1) {
        rec.residual ^= h.value.digest2(candidates_[i - 1][0], packet,
                                        cfg_.bits);
      } else {
        rec.unknown.push_back(i);
      }
    }
    if (rec.unknown.empty()) continue;
    if (rec.unknown.size() == 1) {
      newly += filter_hop(rec.unknown[0], inst, packet, rec.residual);
      continue;
    }
    const std::size_t idx = records_.size();
    records_.push_back(std::move(rec));
    for (HopIndex i : records_[idx].unknown) hop_to_records_[i].push_back(idx);
  }
  return newly;
}

unsigned HashedPathDecoder::filter_hop(HopIndex hop, unsigned inst,
                                       PacketId packet, Digest digest) {
  auto& cands = candidates_[hop - 1];
  if (cands.size() == 1) return 0;  // already resolved
  const InstanceHashes& h = hashes_[inst];
  std::erase_if(cands, [&](std::uint64_t v) {
    return h.value.digest2(v, packet, cfg_.bits) != digest;
  });
  if (cands.empty()) {
    throw std::runtime_error(
        "inconsistent digests: no candidate survives (wrong universe, path "
        "length, or corrupted packets)");
  }
  if (cands.size() == 1) return on_resolved(hop);
  return 0;
}

unsigned HashedPathDecoder::on_resolved(HopIndex hop) {
  unsigned newly = 1;
  ++resolved_;
  const std::uint64_t value = candidates_[hop - 1][0];
  auto it = hop_to_records_.find(hop);
  if (it == hop_to_records_.end()) return newly;
  const std::vector<std::size_t> affected = it->second;
  hop_to_records_.erase(it);
  for (std::size_t idx : affected) {
    XorRecord& rec = records_[idx];
    auto pos = std::find(rec.unknown.begin(), rec.unknown.end(), hop);
    if (pos == rec.unknown.end()) continue;
    rec.unknown.erase(pos);
    rec.residual ^=
        hashes_[rec.instance].value.digest2(value, rec.packet, cfg_.bits);
    if (rec.unknown.size() == 1) {
      newly += filter_hop(rec.unknown[0], rec.instance, rec.packet,
                          rec.residual);
    }
  }
  return newly;
}

std::optional<std::uint64_t> HashedPathDecoder::value_at(HopIndex hop) const {
  const auto& cands = candidates_[hop - 1];
  if (cands.size() == 1) return cands[0];
  return std::nullopt;
}

std::size_t HashedPathDecoder::approx_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += hashes_.capacity() * sizeof(InstanceHashes);
  for (const auto& cands : candidates_) {
    bytes += sizeof(cands) + cands.capacity() * sizeof(std::uint64_t);
  }
  bytes += records_.capacity() * sizeof(XorRecord);
  for (const XorRecord& rec : records_) {
    bytes += rec.unknown.capacity() * sizeof(HopIndex);
  }
  for (const auto& [hop, idxs] : hop_to_records_) {
    bytes += kMapNodeOverheadBytes + idxs.capacity() * sizeof(std::size_t);
  }
  return bytes;
}

std::vector<std::uint64_t> HashedPathDecoder::path() const {
  if (!complete()) throw std::runtime_error("path not fully decoded");
  std::vector<std::uint64_t> out;
  out.reserve(cfg_.k);
  for (const auto& cands : candidates_) out.push_back(cands[0]);
  return out;
}

}  // namespace pint
