#include "coding/scheme.h"

#include <cmath>
#include <stdexcept>

namespace pint {

double e_tower(unsigned n) {
  double v = 1.0;
  for (unsigned i = 0; i < n; ++i) v = std::exp(v);
  return v;
}

unsigned log_star(double d) {
  unsigned n = 0;
  while (d > 1.0) {
    d = std::log(d);
    ++n;
  }
  return n;
}

SchemeConfig make_fast(SchemeConfig cfg) {
  cfg.use_bit_vectors = true;
  cfg.layer_rounds.clear();
  for (double& p : cfg.layer_probs) {
    const double exact = -std::log2(p);
    auto rounds = static_cast<unsigned>(std::lround(exact));
    if (rounds == 0) rounds = 1;  // p = 1 is not useful for XOR layers
    if (rounds > 30) rounds = 30;
    cfg.layer_rounds.push_back(rounds);
    p = std::pow(0.5, rounds);  // the probability actually realized
  }
  return cfg;
}

SchemeConfig make_baseline_scheme() {
  SchemeConfig cfg;
  cfg.tau = 1.0;
  return cfg;
}

SchemeConfig make_xor_scheme(unsigned d) {
  if (d == 0) throw std::invalid_argument("d > 0");
  SchemeConfig cfg;
  cfg.tau = 0.0;
  cfg.layer_probs = {1.0 / static_cast<double>(d)};
  return cfg;
}

SchemeConfig make_hybrid_scheme(unsigned d) {
  if (d == 0) throw std::invalid_argument("d > 0");
  const double log_d = std::log(static_cast<double>(d));
  // Footnote 8: if d <= 15 then loglog d < 1; use 1/log d instead.
  double p;
  if (d <= 15) {
    p = log_d > 1.0 ? 1.0 / log_d : 1.0;
  } else {
    p = std::log(log_d) / log_d;
  }
  SchemeConfig cfg;
  cfg.tau = 0.75;
  cfg.layer_probs = {p};
  return cfg;
}

namespace {

// Number of XOR layers Algorithm 1 uses for typical length d:
// smallest L with d <= floor(e tower (L+1)); L=1 covers d <= 15,
// L=2 covers d up to e^e^e ~ 3.8M, so practical networks use 1 or 2.
unsigned num_layers_for(unsigned d) {
  unsigned L = 1;
  while (static_cast<double>(d) > std::floor(e_tower(L + 1))) ++L;
  return L;
}

SchemeConfig make_multilayer(unsigned d, bool revised) {
  if (d == 0) throw std::invalid_argument("d > 0");
  const unsigned L = num_layers_for(d);
  // tau from loglog*(d); log*(d) can be <= 2 for tiny d making loglog* <= 0,
  // so clamp to keep a sane Baseline share.
  const double lls = std::log(
      std::max(1.0 + 1e-9, static_cast<double>(log_star(d))));
  double tau = revised ? (1.0 + lls) / (2.0 + lls) : lls / (1.0 + lls);
  if (tau < 0.5) tau = 0.5;
  SchemeConfig cfg;
  cfg.tau = tau;
  cfg.layer_probs.resize(L);
  for (unsigned ell = 1; ell <= L; ++ell) {
    double p = e_tower(ell - 1) / static_cast<double>(d);
    cfg.layer_probs[ell - 1] = p > 1.0 ? 1.0 : p;
  }
  return cfg;
}

}  // namespace

SchemeConfig make_multilayer_scheme(unsigned d) {
  return make_multilayer(d, /*revised=*/false);
}

SchemeConfig make_multilayer_scheme_revised(unsigned d) {
  return make_multilayer(d, /*revised=*/true);
}

unsigned select_layer(const SchemeConfig& cfg, const GlobalHash& layer_hash,
                      PacketId packet) {
  if (cfg.num_layers() == 0) return 0;
  const double h = layer_hash.unit(packet);
  if (h < cfg.tau) return 0;
  // Split (tau, 1] evenly across layers 1..L (Algorithm 1 line 6).
  const double rescaled = (h - cfg.tau) / (1.0 - cfg.tau);
  auto layer = static_cast<unsigned>(
      std::ceil(static_cast<double>(cfg.num_layers()) * rescaled));
  if (layer == 0) layer = 1;
  if (layer > cfg.num_layers()) layer = static_cast<unsigned>(cfg.num_layers());
  return layer;
}

bool baseline_writes(const GlobalHash& g, PacketId packet, HopIndex i) {
  return g.below2(packet, i, 1.0 / static_cast<double>(i));
}

bool xor_participates(const GlobalHash& g, PacketId packet, HopIndex i,
                      double p_ell) {
  return g.below2(packet, i, p_ell);
}

HopIndex baseline_carrier(const GlobalHash& g, PacketId packet, unsigned k) {
  HopIndex carrier = 1;  // hop 1 always writes (probability 1/1)
  for (HopIndex i = 2; i <= k; ++i) {
    if (baseline_writes(g, packet, i)) carrier = i;
  }
  return carrier;
}

std::vector<HopIndex> xor_participants(const GlobalHash& g, PacketId packet,
                                       unsigned k, double p_ell) {
  std::vector<HopIndex> out;
  for (HopIndex i = 1; i <= k; ++i) {
    if (xor_participates(g, packet, i, p_ell)) out.push_back(i);
  }
  return out;
}

}  // namespace pint
