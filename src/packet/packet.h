// Telemetry-facing packet abstraction.
//
// This is the packet as PINT's encoding/recording modules see it: a unique
// id (Section 4.1 derives it from IPID/TCP fields; our simulator assigns one
// explicitly), the flow it belongs to, its wire size, and the digest lanes it
// carries. The discrete-event simulator wraps this with queueing metadata.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "packet/flow.h"

namespace pint {

struct Packet {
  PacketId id = 0;
  FiveTuple tuple;
  Bytes payload_bytes = 1000;
  std::uint8_t ttl = 64;

  // PINT digest lanes (one per running query instance); total width is the
  // global bit budget. Lanes are kept separate for clarity; the wire format
  // would concatenate them.
  std::vector<Digest> digests;

  // Per-packet bookkeeping the sink uses (not on the wire).
  HopIndex hops_traversed = 0;
};

}  // namespace pint
