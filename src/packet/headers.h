// Telemetry header models and overhead arithmetic (paper Section 2).
//
// Classic INT: an 8-byte instruction header plus one 4-byte word per
// requested metadata value per hop — overhead grows linearly in both.
// PINT: a fixed-width digest whose size is the user's global bit budget,
// independent of path length.
//
// Also models the 64b/66b serialization cost (IEEE 802.3) that Section 2
// uses to quantify per-switch processing latency.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace pint {

// Metadata values a switch can export (paper Table 1).
enum class IntMetadata : std::uint8_t {
  kSwitchId,
  kIngressPort,
  kIngressTimestamp,
  kEgressPort,
  kHopLatency,
  kEgressTxUtilization,
  kQueueOccupancy,
  kQueueCongestionStatus,
};

struct IntHeaderSpec {
  unsigned values_per_hop = 1;  // how many Table-1 values each hop appends
  static constexpr Bytes kInstructionHeaderBytes = 8;
  static constexpr Bytes kBytesPerValue = 4;

  // Total on-wire overhead for a path of `hops` hops (Section 2: 5 hops and
  // one value -> 28B; five values -> 108B).
  Bytes overhead_bytes(unsigned hops) const {
    return kInstructionHeaderBytes +
           static_cast<Bytes>(values_per_hop) * kBytesPerValue * hops;
  }
};

struct PintHeaderSpec {
  unsigned global_bit_budget = 16;

  // PINT adds no instruction header (Section 3.4); the digest is padded to
  // whole bytes on the wire.
  Bytes overhead_bytes(unsigned /*hops*/ = 0) const {
    return (global_bit_budget + 7) / 8;
  }
};

// Serialization-time increase for `extra` additional bytes on a link of
// `bits_per_second`, including the 64b/66b line encoding overhead
// (Section 2, item 2: 48B at 10G ~ 76ns less queueing effects).
inline double serialization_delay_ns(Bytes extra, double bits_per_second) {
  const double line_bits = static_cast<double>(extra) * 8.0 * (66.0 / 64.0);
  return line_bits / bits_per_second * 1e9;
}

}  // namespace pint
