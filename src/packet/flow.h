// Flow identification (paper Section 3.3: the query's flow definition).
#pragma once

#include <cstdint>
#include <functional>

#include "hash/global_hash.h"

namespace pint {

// Classic 5-tuple. PINT queries may aggregate by any subset (the flow
// definition); we provide the common ones.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // TCP

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;

  std::uint64_t key() const {
    std::uint64_t a = (std::uint64_t{src_ip} << 32) | dst_ip;
    std::uint64_t b = (std::uint64_t{src_port} << 32) |
                      (std::uint64_t{dst_port} << 16) | protocol;
    return hash_combine(mix64(a), mix64(b));
  }
};

enum class FlowDefinition {
  kFiveTuple,
  kSourceIp,
  kDestinationIp,
  kIpPair,
};

// Flow key under a given definition; keys from different definitions are
// domain-separated so they never collide in shared tables.
inline std::uint64_t flow_key(const FiveTuple& t, FlowDefinition def) {
  switch (def) {
    case FlowDefinition::kFiveTuple:
      return t.key();
    case FlowDefinition::kSourceIp:
      return mix64(0xA100000000000000ULL | t.src_ip);
    case FlowDefinition::kDestinationIp:
      return mix64(0xA200000000000000ULL | t.dst_ip);
    case FlowDefinition::kIpPair:
      return mix64(0xA300000000000000ULL ^
                   ((std::uint64_t{t.src_ip} << 32) | t.dst_ip));
  }
  return 0;
}

}  // namespace pint

template <>
struct std::hash<pint::FiveTuple> {
  std::size_t operator()(const pint::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(t.key());
  }
};
