// INT dataplane specification model (paper Section 2, reference [75]).
//
// A closer model of the INT-MD wire format than baselines/int_classic.h:
// the 8-byte instruction header carries a bitmap of requested metadata
// (Table 1); each transit hop appends one 4-byte word per set bit; the sink
// pops the stack and emits a telemetry report. Used by the overhead
// arithmetic and as the INT comparison point that actually round-trips
// through bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "packet/headers.h"

namespace pint {

// Instruction bitmap bit positions (one per Table-1 metadata value).
enum class IntInstruction : std::uint8_t {
  kSwitchId = 0,
  kIngressPort = 1,
  kIngressTimestamp = 2,
  kEgressPort = 3,
  kHopLatency = 4,
  kEgressTxUtilization = 5,
  kQueueOccupancy = 6,
  kQueueCongestionStatus = 7,
};

struct IntInstructionHeader {
  std::uint8_t version = 2;
  std::uint8_t instruction_bitmap = 0;  // bit i = IntInstruction(i) requested
  std::uint8_t max_hops = 16;
  std::uint8_t hop_count = 0;

  void request(IntInstruction ins) {
    instruction_bitmap |=
        static_cast<std::uint8_t>(1u << static_cast<unsigned>(ins));
  }
  bool requests(IntInstruction ins) const {
    return (instruction_bitmap >> static_cast<unsigned>(ins)) & 1;
  }
  unsigned values_per_hop() const {
    unsigned n = 0;
    for (unsigned b = 0; b < 8; ++b) n += (instruction_bitmap >> b) & 1;
    return n;
  }
};

// What one switch can report (values for every possible instruction).
struct IntHopView {
  std::uint32_t switch_id = 0;
  std::uint32_t ingress_port = 0;
  std::uint32_t ingress_timestamp = 0;
  std::uint32_t egress_port = 0;
  std::uint32_t hop_latency = 0;
  std::uint32_t egress_tx_utilization = 0;
  std::uint32_t queue_occupancy = 0;
  std::uint32_t queue_congestion_status = 0;

  std::uint32_t value_of(IntInstruction ins) const;
};

// The on-packet INT state: header + the metadata stack as raw bytes.
class IntPacketState {
 public:
  explicit IntPacketState(IntInstructionHeader header) : header_(header) {}

  // Transit hop behaviour: append the requested values. Returns false (and
  // appends nothing) once max_hops is reached — the spec's overflow rule.
  bool push_hop(const IntHopView& view);

  // Sink behaviour: parse the stack back into per-hop values, innermost
  // (first) hop first. Returns nullopt on a malformed stack.
  struct HopRecord {
    std::vector<std::uint32_t> values;  // in instruction-bit order
  };
  std::optional<std::vector<HopRecord>> pop_all() const;

  Bytes wire_bytes() const {
    return IntHeaderSpec::kInstructionHeaderBytes +
           static_cast<Bytes>(stack_.size());
  }
  const IntInstructionHeader& header() const { return header_; }

 private:
  IntInstructionHeader header_;
  std::vector<std::uint8_t> stack_;
};

}  // namespace pint
