#include "baselines/int_spec.h"

namespace pint {

std::uint32_t IntHopView::value_of(IntInstruction ins) const {
  switch (ins) {
    case IntInstruction::kSwitchId:
      return switch_id;
    case IntInstruction::kIngressPort:
      return ingress_port;
    case IntInstruction::kIngressTimestamp:
      return ingress_timestamp;
    case IntInstruction::kEgressPort:
      return egress_port;
    case IntInstruction::kHopLatency:
      return hop_latency;
    case IntInstruction::kEgressTxUtilization:
      return egress_tx_utilization;
    case IntInstruction::kQueueOccupancy:
      return queue_occupancy;
    case IntInstruction::kQueueCongestionStatus:
      return queue_congestion_status;
  }
  return 0;
}

bool IntPacketState::push_hop(const IntHopView& view) {
  if (header_.hop_count >= header_.max_hops) return false;
  for (unsigned b = 0; b < 8; ++b) {
    if (!((header_.instruction_bitmap >> b) & 1)) continue;
    const std::uint32_t v = view.value_of(static_cast<IntInstruction>(b));
    // Network byte order (big endian) per the spec.
    stack_.push_back(static_cast<std::uint8_t>(v >> 24));
    stack_.push_back(static_cast<std::uint8_t>(v >> 16));
    stack_.push_back(static_cast<std::uint8_t>(v >> 8));
    stack_.push_back(static_cast<std::uint8_t>(v));
  }
  ++header_.hop_count;
  return true;
}

std::optional<std::vector<IntPacketState::HopRecord>>
IntPacketState::pop_all() const {
  const unsigned per_hop = header_.values_per_hop();
  const std::size_t expect =
      static_cast<std::size_t>(header_.hop_count) * per_hop * 4;
  if (stack_.size() != expect) return std::nullopt;
  std::vector<HopRecord> out;
  out.reserve(header_.hop_count);
  std::size_t pos = 0;
  for (unsigned h = 0; h < header_.hop_count; ++h) {
    HopRecord rec;
    rec.values.reserve(per_hop);
    for (unsigned v = 0; v < per_hop; ++v) {
      const std::uint32_t value = (std::uint32_t{stack_[pos]} << 24) |
                                  (std::uint32_t{stack_[pos + 1]} << 16) |
                                  (std::uint32_t{stack_[pos + 2]} << 8) |
                                  std::uint32_t{stack_[pos + 3]};
      rec.values.push_back(value);
      pos += 4;
    }
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace pint
