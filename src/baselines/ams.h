// AMS2: Advanced Marking Scheme II (Song & Perrig, INFOCOM 2001 — paper
// reference [70]), with the Reservoir Sampling improvement [63], as used by
// the paper's Fig. 10 baselines (m = 5 and m = 6).
//
// Each router owns m independent 11-bit hashes of its ID. A marking packet
// carries (distance, hash index f, h_f(ID)) in its 16-bit field. The
// receiver, knowing the router universe, identifies the router at each
// distance once enough hash values are collected to leave a single
// candidate; larger m needs more packets but has fewer false positives
// (multiple candidate routers surviving), matching the paper's description
// of the m=5 / m=6 trade-off.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/scheme.h"
#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

struct AmsMark {
  HopIndex distance = 0;
  std::uint8_t hash_index = 0;   // f in [0, m)
  std::uint16_t value = 0;       // h_f(router) (11 bits used)
};

class AmsTraceback {
 public:
  static constexpr unsigned kHashBits = 11;

  AmsTraceback(unsigned m, std::uint64_t seed)
      : m_(m),
        g_(GlobalHash(seed).derive(0xA35)),
        idx_hash_(GlobalHash(seed).derive(0xA36)),
        value_hash_(GlobalHash(seed).derive(0xA37)) {}

  void mark(PacketId packet, HopIndex i, SwitchId rid, AmsMark& field) const {
    if (!baseline_writes(g_, packet, i)) return;
    const auto f = static_cast<std::uint8_t>(idx_hash_.ranged(packet, m_));
    field.distance = i;
    field.hash_index = f;
    field.value = hash_value(rid, f);
  }

  std::uint16_t hash_value(SwitchId rid, std::uint8_t f) const {
    return static_cast<std::uint16_t>(
        value_hash_.digest2(rid, f, kHashBits));
  }

  unsigned m() const { return m_; }

 private:
  unsigned m_;
  GlobalHash g_;
  GlobalHash idx_hash_;
  GlobalHash value_hash_;
};

// Receiver: per distance, the set of (f, value) constraints; a router is a
// candidate if it matches every constraint collected so far. Decoding is
// complete when every distance has all m constraints AND exactly one
// candidate (the AMS completeness condition; with several candidates the
// trace is ambiguous — a false positive risk the paper notes for m=5).
class AmsDecoder {
 public:
  AmsDecoder(unsigned k, const AmsTraceback& scheme,
             std::vector<SwitchId> universe)
      : k_(k), scheme_(scheme), universe_(std::move(universe)),
        seen_(k, std::vector<bool>(scheme.m(), false)),
        values_(k, std::vector<std::uint16_t>(scheme.m(), 0)),
        missing_(k, scheme.m()) {}

  void add_mark(const AmsMark& mark) {
    ++packets_;
    if (mark.distance == 0 || mark.distance > k_) return;
    const unsigned d = mark.distance - 1;
    if (seen_[d][mark.hash_index]) return;
    seen_[d][mark.hash_index] = true;
    values_[d][mark.hash_index] = mark.value;
    --missing_[d];
  }

  // All m hash values collected for every hop.
  bool all_constraints() const {
    for (unsigned c : missing_) {
      if (c != 0) return false;
    }
    return true;
  }

  // Candidates at a hop given current constraints.
  std::vector<SwitchId> candidates(HopIndex hop) const {
    const unsigned d = hop - 1;
    std::vector<SwitchId> out;
    for (SwitchId rid : universe_) {
      bool ok = true;
      for (unsigned f = 0; f < scheme_.m() && ok; ++f) {
        if (seen_[d][f] &&
            scheme_.hash_value(rid, static_cast<std::uint8_t>(f)) !=
                values_[d][f]) {
          ok = false;
        }
      }
      if (ok) out.push_back(rid);
    }
    return out;
  }

  // Complete: constraints full and unambiguous everywhere.
  bool complete() const {
    if (!all_constraints()) return false;
    for (HopIndex h = 1; h <= k_; ++h) {
      if (candidates(h).size() != 1) return false;
    }
    return true;
  }

  std::uint64_t packets_consumed() const { return packets_; }

 private:
  unsigned k_;
  AmsTraceback scheme_;
  std::vector<SwitchId> universe_;
  std::vector<std::vector<bool>> seen_;
  std::vector<std::vector<std::uint16_t>> values_;
  std::vector<unsigned> missing_;
  std::uint64_t packets_ = 0;
};

}  // namespace pint
