// Probabilistic Packet Marking traceback (Savage et al., SIGCOMM 2000 —
// paper reference [65]), improved with Reservoir Sampling per Sattari [63],
// as the paper's Fig. 10 baseline.
//
// A 32-bit router ID is split into 8 fragments; a packet's 16-bit marking
// field carries (fragment index, fragment bits, distance). With the
// reservoir-sampling improvement, the marking router is uniform over the
// path (instead of geometrically biased), and the receiver reconstructs the
// path once it has collected all 8 fragments of every hop — a coupon
// collector over k*8 coupons, which is why PPM needs orders of magnitude
// more packets than PINT (Fig. 10).
#pragma once

#include <cstdint>
#include <vector>

#include "coding/scheme.h"
#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

struct PpmMark {
  HopIndex distance = 0;   // hop that marked (1-based)
  std::uint8_t fragment = 0;  // fragment index in [0, 8)
  std::uint8_t bits = 0;      // the 8 fragment bits (8 * 8 = 64 > 32; the
                              // scheme interleaves ID and a hash for
                              // error-detection; we model the 8-fragment
                              // layout of the original paper)
};

class PpmTraceback {
 public:
  static constexpr unsigned kFragments = 8;

  explicit PpmTraceback(std::uint64_t seed)
      : g_(GlobalHash(seed).derive(0x99A)),
        frag_hash_(GlobalHash(seed).derive(0x99B)) {}

  // Switch side: hop i (1-based) of router `rid` possibly re-marks the
  // packet (reservoir rule). The mark's fragment index is chosen by hash so
  // the whole pipeline stays deterministic per packet.
  void mark(PacketId packet, HopIndex i, SwitchId rid, PpmMark& field) const {
    if (!baseline_writes(g_, packet, i)) return;
    const auto frag =
        static_cast<std::uint8_t>(frag_hash_.ranged(packet, kFragments));
    field.distance = i;
    field.fragment = frag;
    field.bits = fragment_bits(rid, frag);
  }

  static std::uint8_t fragment_bits(SwitchId rid, std::uint8_t frag) {
    // 32-bit ID interleaved with its hash to fill 8 fragments of 8 bits
    // (Savage et al. Section 4.2 layout, simplified: ID||hash(ID)).
    const std::uint64_t wide =
        (static_cast<std::uint64_t>(mix64(rid) & 0xFFFFFFFF) << 32) | rid;
    return static_cast<std::uint8_t>((wide >> (8 * frag)) & 0xFF);
  }

 private:
  GlobalHash g_;
  GlobalHash frag_hash_;
};

// Receiver: collects fragments per (distance, fragment index); the path is
// decoded when every hop has all fragments.
class PpmDecoder {
 public:
  explicit PpmDecoder(unsigned k)
      : k_(k), have_(k, std::vector<bool>(PpmTraceback::kFragments, false)),
        remaining_(k * PpmTraceback::kFragments) {}

  void add_mark(const PpmMark& m) {
    ++packets_;
    if (m.distance == 0 || m.distance > k_) return;
    if (!have_[m.distance - 1][m.fragment]) {
      have_[m.distance - 1][m.fragment] = true;
      --remaining_;
    }
  }

  bool complete() const { return remaining_ == 0; }
  unsigned missing() const { return remaining_; }
  std::uint64_t packets_consumed() const { return packets_; }

 private:
  unsigned k_;
  std::vector<std::vector<bool>> have_;
  unsigned remaining_;
  std::uint64_t packets_ = 0;
};

}  // namespace pint
