// Classic In-band Network Telemetry (paper Section 2; INT spec [75]).
//
// Every INT-capable hop appends one 4-byte word per requested metadata value
// after the 8-byte instruction header, so overhead grows linearly with path
// length and with the number of values. The sink pops the whole stack —
// perfect per-packet-per-hop visibility at maximal header cost. This is the
// comparison point for every PINT experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "packet/headers.h"

namespace pint {

struct IntHopRecord {
  SwitchId switch_id = 0;
  std::vector<std::uint32_t> values;  // one per requested metadata
};

// The INT stack carried on one packet.
class IntStack {
 public:
  explicit IntStack(unsigned values_per_hop) : spec_{values_per_hop} {}

  // Switch side: push this hop's record (INT "transit" behaviour).
  void push(SwitchId sid, const std::vector<std::uint32_t>& values) {
    records_.push_back(IntHopRecord{sid, values});
  }

  // Sink side: the full per-hop data (INT needs only one packet per path).
  const std::vector<IntHopRecord>& records() const { return records_; }

  Bytes overhead_bytes() const {
    return spec_.overhead_bytes(static_cast<unsigned>(records_.size()));
  }
  const IntHeaderSpec& spec() const { return spec_; }

 private:
  IntHeaderSpec spec_;
  std::vector<IntHopRecord> records_;
};

}  // namespace pint
