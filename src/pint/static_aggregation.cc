#include "pint/static_aggregation.h"

#include <stdexcept>

namespace pint {

SchemeConfig make_scheme(SchemeVariant variant, unsigned d) {
  switch (variant) {
    case SchemeVariant::kBaseline:
      return make_baseline_scheme();
    case SchemeVariant::kXor:
      return make_xor_scheme(d);
    case SchemeVariant::kHybrid:
      return make_hybrid_scheme(d);
    case SchemeVariant::kMultiLayer:
      return make_multilayer_scheme(d);
    case SchemeVariant::kMultiLayerRevised:
      return make_multilayer_scheme_revised(d);
  }
  throw std::invalid_argument("unknown scheme variant");
}

PathTracingQuery::PathTracingQuery(PathTracingConfig config,
                                   std::uint64_t seed)
    : config_(config),
      scheme_(make_scheme(config.variant, config.d)),
      root_(seed) {
  if (config.bits == 0 || config.bits > 64)
    throw std::invalid_argument("bits in [1,64]");
  if (config.instances == 0) throw std::invalid_argument("instances > 0");
  hashes_.reserve(config.instances);
  for (unsigned inst = 0; inst < config.instances; ++inst) {
    hashes_.push_back(make_instance_hashes(root_, inst));
  }
}

void PathTracingQuery::encode(PacketId packet, HopIndex i, SwitchId sid,
                              std::span<Digest> lanes) const {
  if (lanes.size() != config_.instances)
    throw std::invalid_argument("one lane per instance expected");
  for (unsigned inst = 0; inst < config_.instances; ++inst) {
    lanes[inst] = encode_step(scheme_, hashes_[inst], packet, i, lanes[inst],
                              sid, config_.bits);
  }
}

HashedPathDecoder PathTracingQuery::make_decoder(
    unsigned k, std::vector<std::uint64_t> universe) const {
  HashedDecoderConfig cfg;
  cfg.k = k;
  cfg.bits = config_.bits;
  cfg.instances = config_.instances;
  cfg.scheme = scheme_;
  return HashedPathDecoder(cfg, root_, std::move(universe));
}

}  // namespace pint
