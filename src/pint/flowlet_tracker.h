/// \file
/// Flowlet-aware path tracing (paper Section 7, "Tracing flows with multipath
/// routing").
///
/// Under flowlet load balancing a flow's route changes over time. The tracker
/// runs a HashedPathDecoder for the current flowlet and a PathChangeDetector
/// armed with every hop resolved so far. A packet that contradicts known hops
/// signals a route change: the current decoder is archived and a fresh one
/// starts for the new flowlet. Each flowlet's path is recovered provided
/// enough of its packets reach the sink — exactly the paper's claim.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "coding/hashed_decoder.h"
#include "pint/path_change.h"
#include "pint/static_aggregation.h"

namespace pint {

class FlowletTracker {
 public:
  FlowletTracker(const PathTracingQuery& query, unsigned k,
                 std::vector<std::uint64_t> universe);

  /// Feed one packet's digest lanes. Returns true if a route change was
  /// detected (a new flowlet decoder was started).
  bool add_packet(PacketId packet, std::span<const Digest> lanes);

  /// Paths of fully decoded flowlets, oldest first.
  const std::vector<std::vector<SwitchId>>& completed_paths() const {
    return completed_;
  }

  /// Current flowlet's decoding progress.
  unsigned current_resolved() const { return decoder_->resolved_count(); }
  bool current_complete() const { return decoder_->complete(); }
  std::uint64_t route_changes() const { return route_changes_; }

 private:
  void start_flowlet();
  void sync_detector();

  PathTracingConfig config_;
  SchemeConfig scheme_;
  GlobalHash root_;
  InstanceHashes hashes0_;  // instance 0 drives change detection
  unsigned k_;
  std::vector<std::uint64_t> universe_;

  std::unique_ptr<HashedPathDecoder> decoder_;
  std::unique_ptr<PathChangeDetector> detector_;
  unsigned synced_hops_ = 0;
  bool archived_current_ = false;
  std::vector<std::vector<SwitchId>> completed_;
  std::uint64_t route_changes_ = 0;
};

}  // namespace pint
