/// \file
/// Epoch/sequence framing for sink -> collector report streams.
///
/// The report codec (pint/report_codec.h) produces self-contained buffers,
/// but a byte stream (transport/stream.h) has no message boundaries and a
/// real network adds loss, truncation, and corruption. This layer makes
/// multi-source streams mergeable and loss-detectable — the in-network
/// ordering lesson: every buffer travels as a *frame* with
///
///   * a fixed header: magic, version, type, source id, epoch number,
///     per-source sequence number, payload length, CRC-32 over header and
///     payload;
///   * epoch open/close marker frames bracketing each reporting interval
///     (the close marker carries the number of payload frames shipped in
///     the epoch, so a receiver can tell "all arrived" from "some lost"
///     without trusting sequence numbers alone);
///   * monotonically increasing per-source sequence numbers across *all*
///     frames, so any gap — a dropped frame, deliberate (backpressure
///     drop-newest) or not — is visible at the receiver.
///
/// `FrameReassembler` consumes the raw byte stream in arbitrary chunks and
/// yields typed events: complete validated frames, or `FrameError`s for
/// torn, truncated, bit-flipped, spliced, or reordered input. It never
/// throws on malformed bytes and resynchronizes on the next magic after
/// corruption, so one flipped bit costs one frame, not the stream.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <unordered_map>
#include <variant>
#include <vector>

namespace pint {

/// What a frame carries.
enum class FrameType : std::uint8_t {
  kEpochOpen = 0,   ///< marker: the source starts epoch `epoch` (no payload)
  kPayload = 1,     ///< one self-contained report-codec buffer
  kEpochClose = 2,  ///< marker: epoch done; payload = u32 LE payload count
};

/// Typed decode failures; the reassembler reports these instead of
/// misparsing or crashing.
enum class FrameErrorCode : std::uint8_t {
  kBadMagic,          ///< resynced past bytes that are not a frame header
  kBadVersion,        ///< header magic ok, unknown version
  kBadType,           ///< header ok, unknown frame type
  kOversizedPayload,  ///< declared length above the reassembler's limit
  kChecksumMismatch,  ///< header/payload CRC failed (bit flip in transit)
  kSequenceGap,       ///< frames missing before this one (detail = count)
  kSequenceReversal,  ///< sequence went backwards (reorder or replay)
  kTruncatedStream,   ///< stream ended inside a frame (detail = bytes)
};

const char* to_string(FrameErrorCode code);

/// One validated frame.
struct Frame {
  FrameType type = FrameType::kPayload;
  std::uint32_t source = 0;
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;

  /// Payload-frame count carried by an epoch-close marker (0 otherwise).
  [[nodiscard]] std::uint32_t close_payload_count() const;
};

/// One decode failure, with enough context to attribute it.
struct FrameError {
  FrameErrorCode code = FrameErrorCode::kBadMagic;
  std::uint32_t source = 0;  ///< 0 when the source could not be parsed
  std::uint64_t detail = 0;  ///< code-specific: gap size, bytes skipped, ...
};

/// A reassembler event: a frame, or a typed error.
using FrameEvent = std::variant<Frame, FrameError>;

/// A validated frame whose payload is a view into the reassembler's parse
/// buffer — the zero-copy sibling of `Frame`. Valid until the next
/// `feed()` or `finish()` on the owning reassembler (draining events via
/// `next()`/`next_view()` does not invalidate it); consume before feeding.
struct FrameView {
  FrameType type = FrameType::kPayload;
  std::uint32_t source = 0;
  std::uint32_t epoch = 0;
  std::uint32_t seq = 0;
  std::span<const std::uint8_t> payload{};

  /// Payload-frame count carried by an epoch-close marker (0 otherwise).
  [[nodiscard]] std::uint32_t close_payload_count() const;
};

/// A zero-copy reassembler event: a frame view, or a typed error.
using FrameViewEvent = std::variant<FrameView, FrameError>;

/// Serialized size of a frame header on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 26;

/// Default cap a reassembler puts on declared payload lengths.
inline constexpr std::size_t kDefaultMaxFramePayload = 1u << 24;

/// Appends one complete frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t source, std::uint32_t epoch, std::uint32_t seq,
                  std::span<const std::uint8_t> payload);

/// Reads the frame type out of a buffer that starts with a frame header
/// (magic + version checked; CRC is *not* — this is a cheap peek, not a
/// validation). nullopt if the buffer is too short, misaligned, or not a
/// frame. The socket sender uses this to classify chunks it is about to
/// write (epoch-open vs payload vs close) for reconnect resynchronization.
[[nodiscard]] std::optional<FrameType> peek_frame_type(
    std::span<const std::uint8_t> bytes);

/// Per-source frame emitter: tracks the epoch/sequence state machine so
/// call sites cannot emit out-of-protocol streams. Not thread-safe.
class FrameWriter {
 public:
  explicit FrameWriter(std::uint32_t source) : source_(source) {}

  /// Opens the next epoch (first call opens epoch 1). Must not already be
  /// in an epoch.
  [[nodiscard]] std::vector<std::uint8_t> make_open();

  /// One payload frame inside the open epoch. The sequence number is
  /// consumed even if the caller then drops the frame (so receivers see
  /// the gap); a dropped frame must be reported via payload_dropped() to
  /// keep the epoch-close count equal to frames actually shipped.
  [[nodiscard]] std::vector<std::uint8_t> make_payload(
      std::span<const std::uint8_t> bytes);

  /// Tells the writer the frame from the last make_payload() was dropped
  /// instead of written (backpressure drop-newest).
  void payload_dropped();

  /// Closes the open epoch; the marker carries the shipped-payload count.
  [[nodiscard]] std::vector<std::uint8_t> make_close();

  std::uint32_t source() const { return source_; }
  std::uint32_t epoch() const { return epoch_; }
  bool epoch_open() const { return epoch_open_; }
  std::uint64_t frames_dropped() const { return dropped_; }

 private:
  std::uint32_t source_;
  std::uint32_t epoch_ = 0;
  std::uint32_t seq_ = 0;
  std::uint32_t epoch_payloads_ = 0;
  std::uint64_t dropped_ = 0;
  bool epoch_open_ = false;
};

/// Incremental frame parser over a torn byte stream.
///
/// feed() raw bytes in any chunking (single bytes are fine); next() yields
/// events until it returns nullopt (more bytes needed). After the
/// transport reports end-of-stream, call finish(): leftover bytes inside a
/// frame become a kTruncatedStream error. Malformed input costs events,
/// never exceptions; parsing always advances, so feeding arbitrary bytes
/// terminates.
class FrameReassembler {
 public:
  explicit FrameReassembler(
      std::size_t max_payload_bytes = kDefaultMaxFramePayload)
      : max_payload_(max_payload_bytes) {}

  /// Appends raw stream bytes to the parse buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Next parsed event, or nullopt when the buffered bytes hold no
  /// complete frame (and no pending error). The frame's payload is an
  /// owning copy; prefer `next_view()` on hot paths.
  [[nodiscard]] std::optional<FrameEvent> next();

  /// Zero-copy variant of `next()`: the frame's payload is a view into
  /// the reassembler's parse buffer, valid until the next `feed()` or
  /// `finish()`. The fan-in collector drains frames through this, so a
  /// payload crosses from transport bytes to the report decoder without
  /// an intermediate copy.
  [[nodiscard]] std::optional<FrameViewEvent> next_view();

  /// Marks end-of-stream: a partially buffered frame is surfaced as
  /// kTruncatedStream by the following next() calls.
  void finish();

  std::uint64_t frames_parsed() const { return frames_parsed_; }
  std::uint64_t bytes_consumed() const { return bytes_consumed_; }

 private:
  // Parsed frames reference the payload by position in buffer_ (offset is
  // absolute); materialization — as a copying Frame or a borrowed
  // FrameView — happens at next()/next_view() time. feed() compacts the
  // buffer only while no events are pending, so stored offsets stay valid.
  struct ParsedFrame {
    FrameType type = FrameType::kPayload;
    std::uint32_t source = 0;
    std::uint32_t epoch = 0;
    std::uint32_t seq = 0;
    std::size_t payload_offset = 0;
    std::size_t payload_len = 0;
  };
  using ParsedEvent = std::variant<ParsedFrame, FrameError>;

  void parse_more();  // moves bytes from buffer_ into events_
  std::optional<ParsedEvent> next_parsed();

  std::size_t max_payload_;
  std::vector<std::uint8_t> buffer_;
  std::size_t cursor_ = 0;  // consumed prefix of buffer_
  std::deque<ParsedEvent> events_;
  std::unordered_map<std::uint32_t, std::uint32_t> next_seq_;  // per source
  std::uint64_t frames_parsed_ = 0;
  std::uint64_t bytes_consumed_ = 0;
  std::uint64_t skipped_since_sync_ = 0;  // bad bytes pending one kBadMagic
  bool finished_ = false;
  bool truncation_reported_ = false;
};

}  // namespace pint
