/// \file
/// Pluggable admission & eviction policies for Recording-Module stores.
///
/// BASEL (PAPERS.md) argues that what a bounded buffer does under pressure
/// should be a declarative *specification* — explicit admit/process/evict
/// verdicts — rather than policy baked into the data structure. This header
/// is that specification surface for RecordingStore: a small StorePolicy
/// interface consulted at the three decision points every bounded store
/// has, plus two concrete policies aimed at the paper's regime ("oftentimes
/// one mostly cares about tracing large flows"):
///
///  * kLru — the default. No policy object is installed at all, so the
///    store runs the exact pre-policy code path: admit everything, evict
///    the least-recently-updated flow. Byte-identical to the seed behavior
///    (the identity tests assert this).
///  * kDoorkeeper — admit-on-second-packet. A small aging Bloom filter
///    remembers which flows have been seen once; a flow's first packet is
///    rejected (no per-flow state is created) and its second admits it.
///    One-packet mice — the bulk of a heavy-tailed flow count — never cost
///    an entry, so elephant state survives mouse floods.
///  * kTinyLfu — frequency-aware admission *and* eviction, TinyLFU-style:
///    a doorkeeper Bloom filter fronts a count-min sketch of approximate
///    flow frequencies. Admission is admit-on-second-packet (the
///    doorkeeper); eviction gives the LRU tail a bounded second chance
///    when its estimated frequency beats the flow applying the pressure,
///    so a momentarily idle elephant outlives a burst of fresh mice.
///
/// Policies see only opaque 64-bit flow keys and keep a fixed, small
/// auxiliary footprint (the doorkeeper is 8 KiB, the count-min sketch
/// 64 KiB) that is deliberately *not* charged against the store's byte
/// ceiling: it is a constant, not per-flow state.
///
/// Threading: a policy belongs to exactly one store, which belongs to one
/// execution context (see recording_store.h) — no locks, by design.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "hash/global_hash.h"

namespace pint {

/// Which admission/eviction policy a Recording-Module store runs. kLru is
/// the default everywhere and installs no policy object (the store's
/// original code path, preserved byte-identically).
enum class StorePolicyKind : std::uint8_t {
  kLru,
  kDoorkeeper,
  kTinyLfu,
};

const char* to_string(StorePolicyKind kind);

/// Parses "lru" / "doorkeeper" / "tinylfu" (the `.scn` and QuerySpec
/// spellings); nullopt for anything else.
std::optional<StorePolicyKind> parse_store_policy(std::string_view name);

/// Verdict on a flow that is not resident and wants state created.
enum class AdmitVerdict : std::uint8_t {
  kAdmit,   ///< create per-flow state
  kReject,  ///< shed: no state is created, the caller gets nullptr
};

/// Verdict on the LRU-tail flow an over-ceiling store proposes to evict.
enum class EvictVerdict : std::uint8_t {
  kEvict,   ///< evict it (the LRU default)
  kRetain,  ///< give it a bounded second chance (rotated to most-recent)
};

/// Counters a policy maintains about its own decisions; surfaced through
/// RecordingStore and relayed into MemoryReport per query (and per shard).
/// Rejections and retains are counted by the *store* — the store is the
/// arbiter of what actually happened — so this struct carries only the
/// facts the policy alone knows.
struct StorePolicyStats {
  std::uint64_t doorkeeper_hits = 0;  ///< admits because the key was known
  std::uint64_t frequency_evictions = 0;  ///< evicts decided by frequency
};

/// The BASEL-style buffering specification: three verdict hooks, called by
/// RecordingStore at its three decision points. Implementations are
/// infallible and allocation-free on every hook — these sit on the sink's
/// decode hot path.
class StorePolicy {
 public:
  virtual ~StorePolicy() = default;

  virtual StorePolicyKind kind() const = 0;

  /// A non-resident flow arrived. kReject sheds it: the store creates no
  /// state and the admission-aware accessors return nullptr. Called for
  /// *forced* creations too (touch()/put(), which must return state) — the
  /// verdict is then ignored but the arrival still trains the policy.
  virtual AdmitVerdict on_admit(std::uint64_t flow_key) = 0;

  /// A resident flow was touched (hit). Trains frequency state.
  virtual void on_hit(std::uint64_t flow_key) = 0;

  /// The store is over its ceiling and `candidate` (the LRU tail) is up
  /// for eviction while `pressure` (the just-touched, protected flow)
  /// drives the pass. kRetain rotates the candidate to most-recent instead
  /// of evicting; the store bounds retains per pass so eviction always
  /// terminates.
  virtual EvictVerdict on_evict_candidate(std::uint64_t candidate,
                                          std::uint64_t pressure) = 0;

  const StorePolicyStats& stats() const { return stats_; }

 protected:
  StorePolicyStats stats_;
};

/// Fixed-size aging Bloom filter over flow keys: the "doorkeeper" both
/// concrete policies use. Two probes per key; resets itself after
/// `reset_after` insertions so stale mice age out instead of accreting
/// into false positives.
class DoorkeeperFilter {
 public:
  static constexpr std::size_t kBits = 1u << 16;  // 8 KiB

  explicit DoorkeeperFilter(std::uint64_t seed, std::uint64_t reset_after)
      : seed_(seed), reset_after_(reset_after == 0 ? 1 : reset_after) {}

  bool test(std::uint64_t key) const {
    const std::uint64_t h = mix64(key ^ seed_);
    return bit(h & (kBits - 1)) && bit((h >> 32) & (kBits - 1));
  }

  /// Inserts `key`; ages (clears) the filter first when the insertion
  /// budget is spent, so membership never outlives ~reset_after inserts.
  void insert(std::uint64_t key) {
    if (inserts_ >= reset_after_) {
      bits_.fill(0);
      inserts_ = 0;
      ++resets_;
    }
    const std::uint64_t h = mix64(key ^ seed_);
    set(h & (kBits - 1));
    set((h >> 32) & (kBits - 1));
    ++inserts_;
  }

  std::uint64_t resets() const { return resets_; }

 private:
  bool bit(std::uint64_t i) const {
    return (bits_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::uint64_t i) { bits_[i >> 6] |= std::uint64_t{1} << (i & 63); }

  std::uint64_t seed_;
  std::uint64_t reset_after_;
  std::uint64_t inserts_ = 0;
  std::uint64_t resets_ = 0;
  std::array<std::uint64_t, kBits / 64> bits_{};
};

/// Admit-on-second-packet. First sight of a flow is rejected (and
/// remembered in the doorkeeper); a flow seen again while its mark is
/// still live is admitted. Eviction stays pure LRU.
class DoorkeeperPolicy final : public StorePolicy {
 public:
  /// `reset_after` bounds doorkeeper staleness (inserts between clears).
  /// The default caps the filter at 1/16 load (two probes over 64 Ki
  /// bits), i.e. ~0.4% false-positive rate: a false positive ADMITS a
  /// one-packet mouse, and under a sustained mouse flood every falsely
  /// admitted mouse evicts an idle elephant — the FP rate, not the mean
  /// residency, is what bounds how well elephants survive churn.
  explicit DoorkeeperPolicy(std::uint64_t seed,
                            std::uint64_t reset_after = 2048)
      : filter_(mix64(seed ^ 0xD0D0'4B33ULL), reset_after) {}

  StorePolicyKind kind() const override { return StorePolicyKind::kDoorkeeper; }

  AdmitVerdict on_admit(std::uint64_t flow_key) override {
    if (filter_.test(flow_key)) {
      ++stats_.doorkeeper_hits;
      return AdmitVerdict::kAdmit;
    }
    filter_.insert(flow_key);
    return AdmitVerdict::kReject;
  }

  void on_hit(std::uint64_t) override {}

  EvictVerdict on_evict_candidate(std::uint64_t, std::uint64_t) override {
    return EvictVerdict::kEvict;
  }

  const DoorkeeperFilter& filter() const { return filter_; }

 private:
  DoorkeeperFilter filter_;
};

/// TinyLFU-style frequency sketch: a doorkeeper Bloom filter absorbing
/// first occurrences, backed by a 4-row count-min sketch of saturating
/// 8-bit counters. When the sample budget is spent every counter is
/// halved and the doorkeeper cleared (the classic aging step), so
/// estimates track the recent window rather than all of history.
class FrequencySketch {
 public:
  static constexpr std::size_t kRows = 4;
  static constexpr std::size_t kWidth = 1u << 14;  // 16 Ki counters/row
  static constexpr std::uint64_t kSampleSize = 1u << 17;

  explicit FrequencySketch(std::uint64_t seed)
      : seed_(seed), doorkeeper_(mix64(seed ^ 0x7F41'D00CULL),
                                 // Low-load doorkeeper (1/8 of the bits):
                                 // a false positive here both admits a
                                 // mouse and credits it a count, so the
                                 // FP rate stays well under the aging
                                 // period's worth of first-sights.
                                 /*reset_after=*/4096) {}

  /// Records one occurrence of `key`. The first occurrence in the current
  /// window lands in the doorkeeper; later ones increment the sketch.
  /// Returns true when the key was already known (doorkeeper or sketch).
  bool record(std::uint64_t key) {
    maybe_age();
    ++samples_;
    if (!doorkeeper_.test(key)) {
      doorkeeper_.insert(key);
      return false;
    }
    const std::uint64_t h = mix64(key ^ seed_);
    for (std::size_t r = 0; r < kRows; ++r) {
      std::uint8_t& c = rows_[r][index(h, r)];
      if (c < 255) ++c;
    }
    return true;
  }

  /// Approximate occurrence count of `key` in the recent window.
  std::uint32_t estimate(std::uint64_t key) const {
    const std::uint64_t h = mix64(key ^ seed_);
    std::uint32_t est = 255;
    for (std::size_t r = 0; r < kRows; ++r) {
      est = std::min<std::uint32_t>(est, rows_[r][index(h, r)]);
    }
    return est + (doorkeeper_.test(key) ? 1u : 0u);
  }

  std::uint64_t ages() const { return ages_; }

 private:
  static std::size_t index(std::uint64_t h, std::size_t row) {
    // Four probes carved from two mixes of the same key hash.
    const std::uint64_t h2 = mix64(h + 0x9E3779B97F4A7C15ULL);
    const std::uint64_t probe = row < 2 ? h : h2;
    return static_cast<std::size_t>((probe >> (16 * (row & 1))) &
                                    (kWidth - 1));
  }

  void maybe_age() {
    if (samples_ < kSampleSize) return;
    for (auto& row : rows_) {
      for (std::uint8_t& c : row) c = static_cast<std::uint8_t>(c >> 1);
    }
    samples_ /= 2;  // halving counters halves the represented sample mass
    ++ages_;
  }

  std::uint64_t seed_;
  std::uint64_t samples_ = 0;
  std::uint64_t ages_ = 0;
  DoorkeeperFilter doorkeeper_;
  std::array<std::array<std::uint8_t, kWidth>, kRows> rows_{};
};

/// Frequency-aware admission and eviction. Admission is admit-on-second-
/// packet (the sketch's doorkeeper); eviction compares the LRU tail's
/// estimated frequency against the flow applying the pressure and retains
/// the tail when it is strictly more frequent — a momentarily idle
/// elephant beats a fresh mouse.
class TinyLfuPolicy final : public StorePolicy {
 public:
  explicit TinyLfuPolicy(std::uint64_t seed) : sketch_(mix64(seed)) {}

  StorePolicyKind kind() const override { return StorePolicyKind::kTinyLfu; }

  AdmitVerdict on_admit(std::uint64_t flow_key) override {
    if (sketch_.record(flow_key)) {
      ++stats_.doorkeeper_hits;
      return AdmitVerdict::kAdmit;
    }
    return AdmitVerdict::kReject;
  }

  void on_hit(std::uint64_t flow_key) override {
    // Resident hits train the sketch too: an elephant's frequency must
    // reflect every access, not just the misses that re-admitted it.
    (void)sketch_.record(flow_key);
  }

  EvictVerdict on_evict_candidate(std::uint64_t candidate,
                                  std::uint64_t pressure) override {
    if (sketch_.estimate(candidate) > sketch_.estimate(pressure)) {
      return EvictVerdict::kRetain;
    }
    ++stats_.frequency_evictions;
    return EvictVerdict::kEvict;
  }

  const FrequencySketch& sketch() const { return sketch_; }

 private:
  FrequencySketch sketch_;
};

/// Policy factory. kLru returns nullptr by design: "no policy object" IS
/// the LRU policy — the store then runs its original, byte-identical code
/// path with zero per-touch overhead.
std::unique_ptr<StorePolicy> make_store_policy(StorePolicyKind kind,
                                               std::uint64_t seed);

}  // namespace pint
