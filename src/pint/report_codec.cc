#include "pint/report_codec.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <iterator>

namespace pint {

// Wire layout (all integers LEB128 varints unless noted):
//
//   magic "PRS1" (4 bytes)
//   name_count, then per name: length + raw bytes
//   record_count, then per record:
//     name_index
//     tag byte: 0 = AggregateObservation   (payload: fixed8 value bits)
//               1 = HopSampleObservation   (payload: hop, fixed8 value bits)
//               2 = PathDigestObservation  (payload: resolved, length, flag)
//               3 = path-decoded event     (payload: count, count * SwitchId)
//     packet_id
//     flow (fixed 8 bytes LE: flow keys are hashes, varints would expand)
//     path_length (k)
//     payload per tag
//
// Doubles are encoded as their IEEE-754 bit pattern (fixed 8 bytes LE), so
// encode/decode round-trips are byte-exact.

namespace {

constexpr std::uint8_t kMagic[4] = {'P', 'R', 'S', '1'};

constexpr std::uint8_t kTagAggregate = 0;
constexpr std::uint8_t kTagHopSample = 1;
constexpr std::uint8_t kTagPathDigest = 2;
constexpr std::uint8_t kTagPathEvent = 3;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_fixed64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// Bounded reader over the input buffer; every get_* returns false on
// truncation so decode() can reject malformed input without throwing.
struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  bool get_varint(std::uint64_t& v) {
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return true;
    }
    return false;  // varint longer than 64 bits
  }

  bool get_fixed64(std::uint64_t& v) {
    if (end - p < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    return true;
  }

  bool get_byte(std::uint8_t& b) {
    if (p == end) return false;
    b = *p++;
    return true;
  }

  bool get_bytes(std::string_view& s, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) return false;
    s = std::string_view(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }
};

}  // namespace

// --- ReportEncoder ----------------------------------------------------------

std::uint32_t ReportEncoder::intern(std::string_view name) {
  auto it = name_index_.find(name);
  if (it != name_index_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), index);
  return index;
}

void ReportEncoder::add(const SinkContext& ctx, std::string_view query,
                        const Observation& obs) {
  Record r;
  r.ctx = ctx;
  r.name_index = intern(query);
  if (const auto* agg = std::get_if<AggregateObservation>(&obs)) {
    r.tag = kTagAggregate;
    r.a = std::bit_cast<std::uint64_t>(agg->value);
  } else if (const auto* hs = std::get_if<HopSampleObservation>(&obs)) {
    r.tag = kTagHopSample;
    r.a = hs->hop;
    r.b = std::bit_cast<std::uint64_t>(hs->value);
  } else {
    const auto& pd = std::get<PathDigestObservation>(obs);
    r.tag = kTagPathDigest;
    r.a = pd.resolved_hops;
    r.b = pd.path_length;
    r.flag = pd.complete ? 1 : 0;
  }
  records_.push_back(std::move(r));
}

void ReportEncoder::add_path(const SinkContext& ctx, std::string_view query,
                             const std::vector<SwitchId>& path) {
  Record r;
  r.ctx = ctx;
  r.name_index = intern(query);
  r.tag = kTagPathEvent;
  r.path = path;
  records_.push_back(std::move(r));
}

void ReportEncoder::add(PacketId packet, unsigned k,
                        const SinkReport& report) {
  SinkContext ctx;
  ctx.packet_id = packet;
  ctx.flow = 0;  // a report does not carry per-query flow keys
  ctx.path_length = k;
  for (const QueryObservation& entry : report) {
    add(ctx, entry.query, entry.observation);
  }
}

// Serializes records [lo, hi) into one self-contained buffer. The name
// table is rebuilt per range (only the names the range uses, in first-use
// order), so for the full range the output is byte-identical to the
// historical single-buffer format.
std::vector<std::uint8_t> ReportEncoder::encode_range(std::size_t lo,
                                                      std::size_t hi) const {
  constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;
  std::vector<std::uint32_t> local_of(names_.size(), kUnmapped);
  std::vector<std::uint32_t> used;  // global name indices, first-use order
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint32_t g = records_[i].name_index;
    if (local_of[g] == kUnmapped) {
      local_of[g] = static_cast<std::uint32_t>(used.size());
      used.push_back(g);
    }
  }

  std::vector<std::uint8_t> out;
  out.reserve(64 + 32 * (hi - lo));  // rough; avoids early regrowth
  for (std::uint8_t byte : kMagic) out.push_back(byte);
  put_varint(out, used.size());
  for (const std::uint32_t g : used) {
    const std::string& name = names_[g];
    put_varint(out, name.size());
    out.insert(out.end(), name.begin(), name.end());
  }
  put_varint(out, hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    const Record& r = records_[i];
    put_varint(out, local_of[r.name_index]);
    out.push_back(r.tag);
    put_varint(out, r.ctx.packet_id);
    put_fixed64(out, r.ctx.flow);
    put_varint(out, r.ctx.path_length);
    switch (r.tag) {
      case kTagAggregate:
        put_fixed64(out, r.a);
        break;
      case kTagHopSample:
        put_varint(out, r.a);
        put_fixed64(out, r.b);
        break;
      case kTagPathDigest:
        put_varint(out, r.a);
        put_varint(out, r.b);
        out.push_back(r.flag);
        break;
      case kTagPathEvent:
        put_varint(out, r.path.size());
        for (SwitchId sid : r.path) put_varint(out, sid);
        break;
    }
  }
  return out;
}

void ReportEncoder::reset() {
  names_.clear();
  name_index_.clear();
  records_.clear();
}

std::vector<std::uint8_t> ReportEncoder::finish() {
  std::vector<std::uint8_t> out = encode_range(0, records_.size());
  reset();
  return out;
}

std::vector<std::vector<std::uint8_t>> ReportEncoder::finish_chunked(
    std::size_t max_records) {
  if (max_records == 0) max_records = 1;
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t lo = 0; lo < records_.size(); lo += max_records) {
    out.push_back(encode_range(lo, std::min(lo + max_records,
                                            records_.size())));
  }
  reset();
  return out;
}

// --- ReportDecoder ----------------------------------------------------------

std::string_view ReportDecoder::intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  interned_.emplace_back(name);
  const std::string_view stable = interned_.back();
  index_.emplace(stable, stable);
  return stable;
}

bool ReportDecoder::decode(std::span<const std::uint8_t> bytes,
                           std::vector<StreamRecord>& out) {
  Reader in{bytes.data(), bytes.data() + bytes.size()};
  std::string_view magic;
  if (!in.get_bytes(magic, 4) ||
      std::memcmp(magic.data(), kMagic, 4) != 0) {
    return false;
  }

  // Counts come off the wire: cap speculative reserves so a corrupt header
  // cannot force a huge allocation before parsing fails.
  constexpr std::uint64_t kReserveCap = 4096;

  // Names stay as views into `bytes` until the whole buffer validates;
  // interning rejected buffers would let malformed input grow the
  // decoder's name storage without bound.
  std::uint64_t name_count = 0;
  if (!in.get_varint(name_count)) return false;
  std::vector<std::string_view> names;
  names.reserve(std::min(name_count, kReserveCap));
  for (std::uint64_t i = 0; i < name_count; ++i) {
    std::uint64_t len = 0;
    std::string_view raw;
    if (!in.get_varint(len) || !in.get_bytes(raw, len)) return false;
    names.push_back(raw);
  }

  std::uint64_t record_count = 0;
  if (!in.get_varint(record_count)) return false;
  std::vector<StreamRecord> parsed;
  parsed.reserve(std::min(record_count, kReserveCap));
  std::vector<std::uint32_t> record_names;
  record_names.reserve(std::min(record_count, kReserveCap));
  for (std::uint64_t i = 0; i < record_count; ++i) {
    std::uint64_t name_index = 0;
    std::uint8_t tag = 0;
    StreamRecord rec;
    std::uint64_t packet_id = 0;
    std::uint64_t k = 0;
    if (!in.get_varint(name_index) || name_index >= names.size() ||
        !in.get_byte(tag) || !in.get_varint(packet_id) ||
        !in.get_fixed64(rec.ctx.flow) || !in.get_varint(k)) {
      return false;
    }
    record_names.push_back(static_cast<std::uint32_t>(name_index));
    rec.ctx.packet_id = packet_id;
    rec.ctx.path_length = static_cast<unsigned>(k);
    switch (tag) {
      case kTagAggregate: {
        std::uint64_t bits = 0;
        if (!in.get_fixed64(bits)) return false;
        rec.observation = AggregateObservation{std::bit_cast<double>(bits)};
        break;
      }
      case kTagHopSample: {
        std::uint64_t hop = 0;
        std::uint64_t bits = 0;
        if (!in.get_varint(hop) || !in.get_fixed64(bits)) return false;
        rec.observation = HopSampleObservation{
            static_cast<HopIndex>(hop), std::bit_cast<double>(bits)};
        break;
      }
      case kTagPathDigest: {
        std::uint64_t resolved = 0;
        std::uint64_t length = 0;
        std::uint8_t complete = 0;
        if (!in.get_varint(resolved) || !in.get_varint(length) ||
            !in.get_byte(complete)) {
          return false;
        }
        rec.observation = PathDigestObservation{
            static_cast<unsigned>(resolved), static_cast<unsigned>(length),
            complete != 0};
        break;
      }
      case kTagPathEvent: {
        std::uint64_t count = 0;
        if (!in.get_varint(count)) return false;
        rec.path_event = true;
        rec.path.reserve(std::min(count, kReserveCap));
        for (std::uint64_t j = 0; j < count; ++j) {
          std::uint64_t sid = 0;
          if (!in.get_varint(sid)) return false;
          rec.path.push_back(static_cast<SwitchId>(sid));
        }
        break;
      }
      default:
        return false;
    }
    parsed.push_back(std::move(rec));
  }
  if (in.p != in.end) return false;  // trailing bytes: not one of our buffers
  // Fully validated: intern the names and point the records at the stable
  // storage.
  std::vector<std::string_view> stable;
  stable.reserve(names.size());
  for (std::string_view name : names) stable.push_back(intern(name));
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    parsed[i].query = stable[record_names[i]];
  }
  out.insert(out.end(), std::make_move_iterator(parsed.begin()),
             std::make_move_iterator(parsed.end()));
  return true;
}

// --- dispatch ---------------------------------------------------------------

void dispatch(std::span<const StreamRecord> records,
              std::span<SinkObserver* const> observers) {
  for (const StreamRecord& rec : records) {
    if (rec.path_event) {
      for (SinkObserver* o : observers) {
        o->on_path_decoded(rec.ctx, rec.query, rec.path);
      }
    } else {
      for (SinkObserver* o : observers) {
        o->on_observation(rec.ctx, rec.query, rec.observation);
      }
    }
  }
}

}  // namespace pint
