#include "pint/report_codec.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <iterator>

namespace pint {

// Wire layout (all integers LEB128 varints unless noted):
//
//   magic "PRS1" (4 bytes)
//   name_count, then per name: length + raw bytes
//   record_count, then per record:
//     name_index
//     tag byte: 0 = AggregateObservation   (payload: fixed8 value bits)
//               1 = HopSampleObservation   (payload: hop, fixed8 value bits)
//               2 = PathDigestObservation  (payload: resolved, length, flag)
//               3 = path-decoded event     (payload: count, count * SwitchId)
//     packet_id
//     flow (fixed 8 bytes LE: flow keys are hashes, varints would expand)
//     path_length (k)
//     payload per tag
//
// Doubles are encoded as their IEEE-754 bit pattern (fixed 8 bytes LE), so
// encode/decode round-trips are byte-exact.

namespace {

constexpr std::uint8_t kMagic[4] = {'P', 'R', 'S', '1'};

constexpr std::uint8_t kTagAggregate = 0;
constexpr std::uint8_t kTagHopSample = 1;
constexpr std::uint8_t kTagPathDigest = 2;
constexpr std::uint8_t kTagPathEvent = 3;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_fixed64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// Bounded reader over the input buffer; every get_* returns false on
// truncation so decode() can reject malformed input without throwing.
struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  bool get_varint(std::uint64_t& v) {
    v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (p == end) return false;
      const std::uint8_t byte = *p++;
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return true;
    }
    return false;  // varint longer than 64 bits
  }

  bool get_fixed64(std::uint64_t& v) {
    if (end - p < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    p += 8;
    return true;
  }

  bool get_byte(std::uint8_t& b) {
    if (p == end) return false;
    b = *p++;
    return true;
  }

  bool get_bytes(std::string_view& s, std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) return false;
    s = std::string_view(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }
};

}  // namespace

// --- ReportEncoder ----------------------------------------------------------

std::uint32_t ReportEncoder::intern(std::string_view name) {
  auto it = name_index_.find(name);
  if (it != name_index_.end()) return it->second;
  const auto index = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_index_.emplace(names_.back(), index);
  return index;
}

void ReportEncoder::add(const SinkContext& ctx, std::string_view query,
                        const Observation& obs) {
  Record r;
  r.ctx = ctx;
  r.name_index = intern(query);
  if (const auto* agg = std::get_if<AggregateObservation>(&obs)) {
    r.tag = kTagAggregate;
    r.a = std::bit_cast<std::uint64_t>(agg->value);
  } else if (const auto* hs = std::get_if<HopSampleObservation>(&obs)) {
    r.tag = kTagHopSample;
    r.a = hs->hop;
    r.b = std::bit_cast<std::uint64_t>(hs->value);
  } else {
    const auto& pd = std::get<PathDigestObservation>(obs);
    r.tag = kTagPathDigest;
    r.a = pd.resolved_hops;
    r.b = pd.path_length;
    r.flag = pd.complete ? 1 : 0;
  }
  records_.push_back(std::move(r));
}

void ReportEncoder::add_path(const SinkContext& ctx, std::string_view query,
                             const std::vector<SwitchId>& path) {
  Record r;
  r.ctx = ctx;
  r.name_index = intern(query);
  r.tag = kTagPathEvent;
  r.path = path;
  records_.push_back(std::move(r));
}

void ReportEncoder::add(PacketId packet, unsigned k,
                        const SinkReport& report) {
  SinkContext ctx;
  ctx.packet_id = packet;
  ctx.flow = 0;  // a report does not carry per-query flow keys
  ctx.path_length = k;
  for (const QueryObservation& entry : report) {
    add(ctx, entry.query, entry.observation);
  }
}

// Serializes records [lo, hi) into one self-contained buffer. The name
// table is rebuilt per range (only the names the range uses, in first-use
// order), so for the full range the output is byte-identical to the
// historical single-buffer format.
std::vector<std::uint8_t> ReportEncoder::encode_range(std::size_t lo,
                                                      std::size_t hi) const {
  constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;
  std::vector<std::uint32_t> local_of(names_.size(), kUnmapped);
  std::vector<std::uint32_t> used;  // global name indices, first-use order
  for (std::size_t i = lo; i < hi; ++i) {
    const std::uint32_t g = records_[i].name_index;
    if (local_of[g] == kUnmapped) {
      local_of[g] = static_cast<std::uint32_t>(used.size());
      used.push_back(g);
    }
  }

  std::vector<std::uint8_t> out;
  out.reserve(64 + 32 * (hi - lo));  // rough; avoids early regrowth
  for (std::uint8_t byte : kMagic) out.push_back(byte);
  put_varint(out, used.size());
  for (const std::uint32_t g : used) {
    const std::string& name = names_[g];
    put_varint(out, name.size());
    out.insert(out.end(), name.begin(), name.end());
  }
  put_varint(out, hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    const Record& r = records_[i];
    put_varint(out, local_of[r.name_index]);
    out.push_back(r.tag);
    put_varint(out, r.ctx.packet_id);
    put_fixed64(out, r.ctx.flow);
    put_varint(out, r.ctx.path_length);
    switch (r.tag) {
      case kTagAggregate:
        put_fixed64(out, r.a);
        break;
      case kTagHopSample:
        put_varint(out, r.a);
        put_fixed64(out, r.b);
        break;
      case kTagPathDigest:
        put_varint(out, r.a);
        put_varint(out, r.b);
        out.push_back(r.flag);
        break;
      case kTagPathEvent:
        put_varint(out, r.path.size());
        for (SwitchId sid : r.path) put_varint(out, sid);
        break;
    }
  }
  return out;
}

void ReportEncoder::reset() {
  names_.clear();
  name_index_.clear();
  records_.clear();
}

std::vector<std::uint8_t> ReportEncoder::finish() {
  std::vector<std::uint8_t> out = encode_range(0, records_.size());
  reset();
  return out;
}

std::vector<std::vector<std::uint8_t>> ReportEncoder::finish_chunked(
    std::size_t max_records) {
  if (max_records == 0) max_records = 1;
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t lo = 0; lo < records_.size(); lo += max_records) {
    out.push_back(encode_range(lo, std::min(lo + max_records,
                                            records_.size())));
  }
  reset();
  return out;
}

// --- ReportDecoder ----------------------------------------------------------

std::string_view ReportDecoder::intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  interned_.emplace_back(name);
  const std::string_view stable = interned_.back();
  index_.emplace(stable, stable);
  return stable;
}

// Validating zero-copy parse: names stay views into `bytes`, records land
// in flyweight scratch, path elements pack into one pooled vector. Nothing
// is interned and no observer sees anything until the whole buffer
// validates — interning rejected buffers would let malformed input grow
// the decoder's name storage without bound, and partial dispatch would
// leak phantom records downstream.
bool ReportDecoder::parse(std::span<const std::uint8_t> bytes) {
  names_scratch_.clear();
  records_scratch_.clear();
  path_pool_.clear();

  Reader in{bytes.data(), bytes.data() + bytes.size()};
  std::string_view magic;
  if (!in.get_bytes(magic, 4) ||
      std::memcmp(magic.data(), kMagic, 4) != 0) {
    return false;
  }

  // Counts come off the wire: cap speculative reserves so a corrupt header
  // cannot force a huge allocation before parsing fails.
  constexpr std::uint64_t kReserveCap = 4096;

  std::uint64_t name_count = 0;
  if (!in.get_varint(name_count)) return false;
  names_scratch_.reserve(std::min(name_count, kReserveCap));
  for (std::uint64_t i = 0; i < name_count; ++i) {
    std::uint64_t len = 0;
    std::string_view raw;
    if (!in.get_varint(len) || !in.get_bytes(raw, len)) return false;
    names_scratch_.push_back(raw);
  }

  std::uint64_t record_count = 0;
  if (!in.get_varint(record_count)) return false;
  records_scratch_.reserve(std::min(record_count, kReserveCap));
  for (std::uint64_t i = 0; i < record_count; ++i) {
    std::uint64_t name_index = 0;
    CompactRecord rec;
    std::uint64_t packet_id = 0;
    std::uint64_t k = 0;
    if (!in.get_varint(name_index) || name_index >= names_scratch_.size() ||
        !in.get_byte(rec.tag) || !in.get_varint(packet_id) ||
        !in.get_fixed64(rec.ctx.flow) || !in.get_varint(k)) {
      return false;
    }
    rec.name = static_cast<std::uint32_t>(name_index);
    rec.ctx.packet_id = packet_id;
    rec.ctx.path_length = static_cast<unsigned>(k);
    switch (rec.tag) {
      case kTagAggregate:
        if (!in.get_fixed64(rec.a)) return false;
        break;
      case kTagHopSample:
        if (!in.get_varint(rec.a) || !in.get_fixed64(rec.b)) return false;
        break;
      case kTagPathDigest:
        if (!in.get_varint(rec.a) || !in.get_varint(rec.b) ||
            !in.get_byte(rec.flag)) {
          return false;
        }
        break;
      case kTagPathEvent: {
        std::uint64_t count = 0;
        if (!in.get_varint(count)) return false;
        rec.path_off = static_cast<std::uint32_t>(path_pool_.size());
        for (std::uint64_t j = 0; j < count; ++j) {
          std::uint64_t sid = 0;
          if (!in.get_varint(sid)) return false;
          path_pool_.push_back(static_cast<SwitchId>(sid));
        }
        rec.path_len = static_cast<std::uint32_t>(count);
        break;
      }
      default:
        return false;
    }
    records_scratch_.push_back(rec);
  }
  return in.p == in.end;  // trailing bytes: not one of our buffers
}

namespace {

Observation make_observation(std::uint8_t tag, std::uint64_t a,
                             std::uint64_t b, std::uint8_t flag) {
  switch (tag) {
    case kTagHopSample:
      return HopSampleObservation{static_cast<HopIndex>(a),
                                  std::bit_cast<double>(b)};
    case kTagPathDigest:
      return PathDigestObservation{static_cast<unsigned>(a),
                                   static_cast<unsigned>(b), flag != 0};
    default:  // kTagAggregate (parse() admits no other tag here)
      return AggregateObservation{std::bit_cast<double>(a)};
  }
}

}  // namespace

bool ReportDecoder::decode(std::span<const std::uint8_t> bytes,
                           std::vector<StreamRecord>& out) {
  if (!parse(bytes)) return false;
  // Fully validated: intern the names and materialize owning records.
  stable_scratch_.clear();
  stable_scratch_.reserve(names_scratch_.size());
  for (std::string_view name : names_scratch_) {
    stable_scratch_.push_back(intern(name));
  }
  out.reserve(out.size() + records_scratch_.size());
  for (const CompactRecord& rec : records_scratch_) {
    StreamRecord sr;
    sr.ctx = rec.ctx;
    sr.query = stable_scratch_[rec.name];
    if (rec.tag == kTagPathEvent) {
      sr.path_event = true;
      sr.path.assign(path_pool_.begin() + rec.path_off,
                     path_pool_.begin() + rec.path_off + rec.path_len);
    } else {
      sr.observation = make_observation(rec.tag, rec.a, rec.b, rec.flag);
    }
    out.push_back(std::move(sr));
  }
  return true;
}

bool ReportDecoder::dispatch(std::span<const std::uint8_t> bytes,
                             std::span<SinkObserver* const> observers,
                             std::uint64_t* records_out) {
  if (!parse(bytes)) return false;
  // Validated: intern the (few) names, then replay straight from scratch —
  // the only per-record work is the callback itself.
  stable_scratch_.clear();
  stable_scratch_.reserve(names_scratch_.size());
  for (std::string_view name : names_scratch_) {
    stable_scratch_.push_back(intern(name));
  }
  for (const CompactRecord& rec : records_scratch_) {
    const std::string_view query = stable_scratch_[rec.name];
    if (rec.tag == kTagPathEvent) {
      // on_path_decoded takes a vector; refill one reused buffer (no
      // allocation once its capacity covers the longest path).
      path_call_.assign(path_pool_.begin() + rec.path_off,
                        path_pool_.begin() + rec.path_off + rec.path_len);
      for (SinkObserver* o : observers) {
        o->on_path_decoded(rec.ctx, query, path_call_);
      }
    } else {
      const Observation obs =
          make_observation(rec.tag, rec.a, rec.b, rec.flag);
      for (SinkObserver* o : observers) {
        o->on_observation(rec.ctx, query, obs);
      }
    }
  }
  if (records_out != nullptr) *records_out += records_scratch_.size();
  return true;
}

// --- dispatch ---------------------------------------------------------------

void dispatch(std::span<const StreamRecord> records,
              std::span<SinkObserver* const> observers) {
  for (const StreamRecord& rec : records) {
    if (rec.path_event) {
      for (SinkObserver* o : observers) {
        o->on_path_decoded(rec.ctx, rec.query, rec.path);
      }
    } else {
      for (SinkObserver* o : observers) {
        o->on_observation(rec.ctx, rec.query, rec.observation);
      }
    }
  }
}

}  // namespace pint
