/// \file
/// Static per-flow aggregation: path tracing (paper Example #2, Section 4.2).
///
/// Every (flow, switch) value is fixed — here, the switch ID — so the
/// distributed coding schemes spread the path over many packets. The encoder
/// runs on switches; the decoder lives in the Inference Module and needs the
/// flow's hop count (from TTL) and the network's switch-ID universe.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coding/encoder.h"
#include "coding/hashed_decoder.h"
#include "coding/scheme.h"
#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

enum class SchemeVariant : std::uint8_t {
  kBaseline,
  kXor,
  kHybrid,
  kMultiLayer,
  kMultiLayerRevised,
};

SchemeConfig make_scheme(SchemeVariant variant, unsigned d);

struct PathTracingConfig {
  unsigned bits = 8;        // digest bits per instance
  unsigned instances = 1;   // independent repetitions (Section 4.2)
  unsigned d = 10;          // assumed typical path length
  SchemeVariant variant = SchemeVariant::kMultiLayer;
};

/// Switch- and sink-side logic for one path-tracing query. Copyable; every
/// switch constructs it from the same (config, seed) pair.
class PathTracingQuery {
 public:
  PathTracingQuery(PathTracingConfig config, std::uint64_t seed);

  unsigned total_bits() const { return config_.bits * config_.instances; }
  const PathTracingConfig& config() const { return config_; }

  /// Switch side: hop `i` (1-based) updates all digest lanes with its ID.
  /// `lanes` must have config().instances entries. Encodes in place — no
  /// allocation, so the framework's batched hot path can run it per packet.
  void encode(PacketId packet, HopIndex i, SwitchId sid,
              std::span<Digest> lanes) const;
  void encode(PacketId packet, HopIndex i, SwitchId sid,
              std::vector<Digest>& lanes) const {
    encode(packet, i, sid, std::span<Digest>(lanes));
  }

  /// Sink side: a per-flow decoder for a k-hop flow over the given switch-ID
  /// universe.
  HashedPathDecoder make_decoder(unsigned k,
                                 std::vector<std::uint64_t> universe) const;

  /// Shared-protocol accessors (used by FlowletTracker / PathChangeDetector,
  /// which must evaluate the same hashes the switches do).
  const SchemeConfig& scheme() const { return scheme_; }
  const GlobalHash& root() const { return root_; }
  const InstanceHashes& instance_hashes(unsigned inst) const {
    return hashes_.at(inst);
  }

 private:
  PathTracingConfig config_;
  SchemeConfig scheme_;
  GlobalHash root_;
  std::vector<InstanceHashes> hashes_;
};

}  // namespace pint
