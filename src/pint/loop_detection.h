/// \file
/// Routing-loop detection extension (paper Appendix A.4, Algorithm 2).
///
/// A switch that sees its own hash already in the digest may be witnessing a
/// loop. To suppress false positives, packets carry a small counter c; the
/// digest is frozen once c > 0 and a loop is reported only after T + 1
/// matches. The FP probability per packet is roughly (k-1) * 2^-b(T+1) for a
/// k-hop path, e.g. b=14, T=3 gives ~5e-13 (paper's numbers; validated in
/// bench_loop_detection).
#pragma once

#include <cstdint>
#include <optional>

#include "coding/scheme.h"
#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

struct LoopDetectionConfig {
  unsigned bits = 15;   // digest width b
  unsigned threshold = 1;  // T: matches tolerated before reporting
};

/// Per-packet telemetry state for the loop-detection query.
struct LoopDigest {
  Digest digest = 0;
  std::uint32_t counter = 0;
};

class LoopDetector {
 public:
  LoopDetector(LoopDetectionConfig config, std::uint64_t seed)
      : config_(config),
        g_(GlobalHash(seed).derive(0x100D)),
        h_(GlobalHash(seed).derive(0x100E)) {}

  /// Algorithm 2: process packet at switch `sid`, hop `i`. Returns true if
  /// the switch reports LOOP.
  bool process(PacketId packet, HopIndex i, SwitchId sid,
               LoopDigest& state) const {
    const Digest mine = h_.digest2(sid, packet, config_.bits);
    if (state.digest == mine && state.counter <= config_.threshold) {
      if (state.counter == config_.threshold) return true;
      ++state.counter;
      return false;
    }
    if (state.counter == 0 && baseline_writes(g_, packet, i)) {
      state.digest = mine;
    }
    return false;
  }

  /// Extra header bits this query consumes: b + ceil(log2(T+1)).
  unsigned total_bits() const {
    unsigned counter_bits = 0;
    while ((1u << counter_bits) < config_.threshold + 1) ++counter_bits;
    return config_.bits + counter_bits;
  }

  const LoopDetectionConfig& config() const { return config_; }

 private:
  LoopDetectionConfig config_;
  GlobalHash g_;
  GlobalHash h_;
};

}  // namespace pint
