/// \file
/// Wire format for PINT digests.
///
/// On the wire, a packet carries a single bitstring whose width is the global
/// bit budget (padded to whole bytes at the link layer); internally we keep
/// one Digest per query lane. This module bit-packs lanes into bytes and back,
/// given the lane widths implied by the packet's query set — which both ends
/// derive from the packet id, so no lane metadata is transmitted.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/types.h"

namespace pint {

/// Pack lanes (lane i occupying widths[i] low bits) LSB-first into bytes.
[[nodiscard]] std::vector<std::uint8_t> pack_digests(
    std::span<const Digest> lanes, std::span<const unsigned> widths);

/// Inverse of pack_digests.
[[nodiscard]] std::vector<Digest> unpack_digests(
    std::span<const std::uint8_t> bytes, std::span<const unsigned> widths);

/// Allocation-free variants for the batched hot path: the caller owns the
/// buffers. `out` must hold wire_bytes(widths) / widths.size() entries;
/// returns the bytes / lanes written.
std::size_t pack_digests_into(std::span<const Digest> lanes,
                              std::span<const unsigned> widths,
                              std::span<std::uint8_t> out);
std::size_t unpack_digests_into(std::span<const std::uint8_t> bytes,
                                std::span<const unsigned> widths,
                                std::span<Digest> out);

/// Total wire bytes for a set of lane widths.
constexpr std::size_t wire_bytes(std::span<const unsigned> widths) {
  std::size_t bits = 0;
  for (unsigned w : widths) bits += w;
  return (bits + 7) / 8;
}

}  // namespace pint
