#include "pint/flowlet_tracker.h"

namespace pint {

FlowletTracker::FlowletTracker(const PathTracingQuery& query, unsigned k,
                               std::vector<std::uint64_t> universe)
    : config_(query.config()),
      scheme_(query.scheme()),
      root_(query.root()),
      hashes0_(query.instance_hashes(0)),
      k_(k),
      universe_(std::move(universe)) {
  start_flowlet();
}

void FlowletTracker::start_flowlet() {
  HashedDecoderConfig cfg;
  cfg.k = k_;
  cfg.bits = config_.bits;
  cfg.instances = config_.instances;
  cfg.scheme = scheme_;
  decoder_ = std::make_unique<HashedPathDecoder>(cfg, root_, universe_);
  detector_ = std::make_unique<PathChangeDetector>(k_, scheme_, hashes0_,
                                                   config_.bits);
  synced_hops_ = 0;
  archived_current_ = false;
}

void FlowletTracker::sync_detector() {
  if (decoder_->resolved_count() == synced_hops_) return;
  for (HopIndex i = 1; i <= k_; ++i) {
    const auto v = decoder_->value_at(i);
    if (v.has_value()) detector_->set_known(i, static_cast<SwitchId>(*v));
  }
  synced_hops_ = decoder_->resolved_count();
}

bool FlowletTracker::add_packet(PacketId packet,
                                std::span<const Digest> lanes) {
  // Change detection first: a contradiction means this packet belongs to a
  // NEW flowlet and must not pollute the current decoder. (Detection uses
  // instance 0's lane; all instances share layer/g decisions per instance,
  // so one lane suffices to prove a change.)
  if (detector_->check(packet, lanes[0]).has_value()) {
    ++route_changes_;
    if (decoder_->complete() && !archived_current_) {
      std::vector<SwitchId> path;
      for (std::uint64_t v : decoder_->path())
        path.push_back(static_cast<SwitchId>(v));
      completed_.push_back(std::move(path));
      archived_current_ = true;
    }
    start_flowlet();
    // The contradicting packet seeds the new flowlet's decoder.
    decoder_->add_packet(packet, lanes);
    sync_detector();
    return true;
  }
  if (!decoder_->complete()) {
    try {
      decoder_->add_packet(packet, lanes);
    } catch (const std::runtime_error&) {
      // "No candidate survives" — packets from two routes were mixed into
      // one decoder before any hop resolved. That too proves a change;
      // restart cleanly from this packet.
      ++route_changes_;
      start_flowlet();
      decoder_->add_packet(packet, lanes);
      sync_detector();
      return true;
    }
    sync_detector();
    if (decoder_->complete() && !archived_current_) {
      std::vector<SwitchId> path;
      for (std::uint64_t v : decoder_->path())
        path.push_back(static_cast<SwitchId>(v));
      completed_.push_back(std::move(path));
      archived_current_ = true;
    }
  }
  return false;
}

}  // namespace pint
