/// \file
/// QuerySpec: everything the framework needs to run one query.
///
/// The Query (query.h) is the paper's declarative tuple; a QuerySpec adds the
/// per-module tuning for whichever aggregation type the query uses, plus an
/// optional factory for the sink-side recorder so applications control how
/// dynamic samples are retained (raw, sketched, windowed...) without the
/// framework knowing the difference. The Builder keeps a registry of specs
/// keyed by query name.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "pint/dynamic_aggregation.h"
#include "pint/perpacket_aggregation.h"
#include "pint/policy.h"
#include "pint/query.h"
#include "pint/static_aggregation.h"

namespace pint {

/// Builds the per-flow recorder for a dynamic per-flow query. `k` is the
/// flow's path length, `seed` is derived per (query, flow).
using RecorderFactory =
    std::function<FlowLatencyRecorder(unsigned k, std::uint64_t seed)>;

struct QuerySpec {
  Query query;

  /// Module tuning; only the struct matching query.aggregation is used. The
  /// digest widths inside are synced to query.bit_budget at build time.
  PathTracingConfig path;
  DynamicAggregationConfig dynamic;
  PerPacketConfig perpacket;

  /// Optional; defaults to FlowLatencyRecorder(k, query.space_budget_bytes,
  /// seed). Only consulted for dynamic per-flow queries.
  RecorderFactory recorder_factory;

  /// Optional Recording-Module storage budget (bytes) for this query's
  /// per-flow state across *all* flows; 0 means "share the Builder's
  /// memory_ceiling_bytes() remainder" (or stay unbounded when no ceiling is
  /// set either). Setting it on a per-packet query — which keeps no sink
  /// state — or over-committing the ceiling is a kInconsistentMemoryBudget
  /// build error.
  std::size_t memory_budget_bytes = 0;

  /// Admission/eviction policy for this query's sink-side stores
  /// (pint/policy.h). Unset inherits the Builder's default_store_policy()
  /// (itself kLru unless overridden); kLru is the original byte-identical
  /// path. A non-LRU policy on a per-packet query — which keeps no sink
  /// state to admit or evict — is a kInconsistentMemoryBudget build error,
  /// like a memory budget on one.
  std::optional<StorePolicyKind> store_policy;

  /// Relative delivery priority under transport pressure. When a bounded
  /// observer ring (ShardedSink) or fan-in frame budget must shed, only
  /// events/frames of the *lowest* registered priority are droppable;
  /// higher classes take the blocking path instead. All queries default to
  /// the same priority, so with no explicit priorities nothing changes —
  /// a single class behaves exactly like the pre-priority code.
  unsigned priority = 1;
};

/// Convenience constructors for the three aggregation families.
inline QuerySpec make_path_query(std::string name, unsigned bit_budget,
                                 double frequency,
                                 PathTracingConfig tuning = {}) {
  QuerySpec spec;
  spec.query.name = std::move(name);
  spec.query.aggregation = AggregationType::kStaticPerFlow;
  spec.query.bit_budget = bit_budget;
  spec.query.frequency = frequency;
  spec.path = tuning;
  return spec;
}

inline QuerySpec make_dynamic_query(std::string name, std::string extractor,
                                    unsigned bit_budget, double frequency,
                                    DynamicAggregationConfig tuning = {}) {
  QuerySpec spec;
  spec.query.name = std::move(name);
  spec.query.extractor = std::move(extractor);
  spec.query.aggregation = AggregationType::kDynamicPerFlow;
  spec.query.bit_budget = bit_budget;
  spec.query.frequency = frequency;
  spec.dynamic = tuning;
  return spec;
}

inline QuerySpec make_perpacket_query(std::string name, std::string extractor,
                                      unsigned bit_budget, double frequency,
                                      PerPacketConfig tuning = {}) {
  QuerySpec spec;
  spec.query.name = std::move(name);
  spec.query.extractor = std::move(extractor);
  spec.query.aggregation = AggregationType::kPerPacket;
  spec.query.bit_budget = bit_budget;
  spec.query.frequency = frequency;
  spec.perpacket = tuning;
  return spec;
}

}  // namespace pint
