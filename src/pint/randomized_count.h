/// \file
/// Randomized counting per-packet aggregation (paper Section 4.3,
/// "Randomized counting"; Morris [55]).
///
/// Counting events along the path (e.g. how many hops exceeded a latency
/// threshold) exactly needs log2(k) bits; a Morris-style counter does it in
/// O(log log k + log 1/eps) bits. Each participating hop increments the
/// counter probabilistically — the coin is the global hash of
/// (packet id, hop, current counter value), so the sink can replay nothing
/// but still gets an unbiased estimate from the final exponent.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

struct RandomizedCountConfig {
  unsigned bits = 4;   // digest bits for the exponent
  double a = 1.5;      // Morris base: smaller = more accurate, more bits
};

class RandomizedCountQuery {
 public:
  RandomizedCountQuery(RandomizedCountConfig config, std::uint64_t seed)
      : config_(config), coin_(GlobalHash(seed).derive(0xC027)) {}

  /// Largest count representable before the exponent saturates.
  double max_count() const {
    const double max_exp =
        static_cast<double>((std::uint64_t{1} << config_.bits) - 1);
    return (std::pow(config_.a, max_exp) - 1.0) / (config_.a - 1.0);
  }

  /// Switch side: hop i increments the counter iff its event fired.
  /// Increment happens with probability a^-counter (Morris), decided by the
  /// deterministic per-(packet, hop) coin.
  Digest encode_step(PacketId packet, HopIndex i, Digest counter,
                     bool event) const {
    if (!event) return counter;
    const double p = std::pow(config_.a, -static_cast<double>(counter));
    if (coin_.below2(packet, i, p)) {
      const Digest max_code = low_bits_mask(config_.bits);
      if (counter < max_code) return counter + 1;
    }
    return counter;
  }

  /// Sink side: unbiased estimate of the number of events on the path.
  double decode(Digest counter) const {
    return (std::pow(config_.a, static_cast<double>(counter)) - 1.0) /
           (config_.a - 1.0);
  }

  const RandomizedCountConfig& config() const { return config_; }

 private:
  RandomizedCountConfig config_;
  GlobalHash coin_;
};

}  // namespace pint
