/// \file
/// Open switch-metric surface for PINT queries.
///
/// The paper (Section 3, Table 1) lets a query aggregate *any* value v(p, s)
/// the data plane can compute. The seed hardcoded the three evaluated metrics
/// as struct fields; this header replaces that with an open key/value map so
/// new metrics can back queries without editing the framework. The Table-1
/// metrics keep fast fixed slots (branch-free array reads on the hot path);
/// anything else spills into a small overflow vector.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"

namespace pint {

/// Identifies one metric a switch can report. Ids below metric::kFirstCustom
/// are fixed slots; user metrics start at metric::kFirstCustom.
using MetricId = std::uint16_t;

namespace metric {

/// Fixed slots: the INT-compatible metrics of Table 1.
inline constexpr MetricId kHopLatencyNs = 0;
inline constexpr MetricId kLinkUtilization = 1;  // egress port of the packet
inline constexpr MetricId kQueueOccupancy = 2;
inline constexpr MetricId kIngressTimestampNs = 3;
inline constexpr MetricId kEgressTimestampNs = 4;
inline constexpr MetricId kTxBytes = 5;
inline constexpr MetricId kBufferOccupancy = 6;
inline constexpr MetricId kEgressBandwidthBps = 7;

inline constexpr std::size_t kNumFixedSlots = 8;
inline constexpr MetricId kFirstCustom = kNumFixedSlots;

}  // namespace metric

/// What a switch tells PINT about itself when a packet passes. The switch id
/// stays a first-class field (it identifies the reporter; path tracing encodes
/// it); every other metric is a (MetricId -> double) entry.
class SwitchView {
 public:
  SwitchView() = default;
  explicit SwitchView(SwitchId sid) : id(sid) {}

  SwitchId id = 0;

  SwitchView& set(MetricId m, double value) {
    if (m < metric::kNumFixedSlots) {
      fixed_[m] = value;
      present_ |= 1u << m;
    } else {
      for (auto& kv : extras_) {
        if (kv.first == m) {
          kv.second = value;
          return *this;
        }
      }
      extras_.emplace_back(m, value);
    }
    return *this;
  }

  double get(MetricId m, double fallback = 0.0) const {
    if (m < metric::kNumFixedSlots) {
      return (present_ >> m) & 1u ? fixed_[m] : fallback;
    }
    for (const auto& kv : extras_) {
      if (kv.first == m) return kv.second;
    }
    return fallback;
  }

  bool has(MetricId m) const {
    if (m < metric::kNumFixedSlots) return (present_ >> m) & 1u;
    for (const auto& kv : extras_) {
      if (kv.first == m) return true;
    }
    return false;
  }

 private:
  std::array<double, metric::kNumFixedSlots> fixed_{};
  std::uint32_t present_ = 0;
  std::vector<std::pair<MetricId, double>> extras_;  // custom metrics (rare)
};

}  // namespace pint
