/// \file
/// Per-packet aggregation: bottleneck statistics for congestion control
/// (paper Example #3, Sections 4.3 and 6.1).
///
/// Instead of INT's per-hop stack, each switch folds its value into a single
/// running aggregate on the packet — for HPCC, the *maximum* link utilization
/// (the bottleneck). Values are compressed with randomized multiplicative
/// rounding so 8 bits suffice for eps = 0.025 and the systematic error
/// cancels across packets.
#pragma once

#include <algorithm>
#include <cstdint>

#include "approx/value_compression.h"
#include "common/types.h"
#include "hash/global_hash.h"

namespace pint {

enum class PerPacketOp : std::uint8_t { kMax, kMin, kSum };

struct PerPacketConfig {
  unsigned bits = 8;
  double eps = 0.025;       // paper: 8 bits support eps = 0.025
  double max_value = 1e6;   // largest aggregate that must be representable
  PerPacketOp op = PerPacketOp::kMax;
};

class PerPacketQuery {
 public:
  PerPacketQuery(PerPacketConfig config, std::uint64_t seed)
      : config_(config),
        compressor_(config.eps, config.max_value),
        rounding_(GlobalHash(seed).derive(0xBEEF)) {}

  /// Switch side: fold `value` into the digest. Max/min compare in code
  /// space, which is order-preserving because the compressor is monotone.
  Digest encode_step(PacketId packet, Digest cur, double value) const {
    const Digest code =
        compressor_.encode_randomized(value, rounding_, packet);
    switch (config_.op) {
      case PerPacketOp::kMax:
        return std::max(cur, code);
      case PerPacketOp::kMin:
        // Digest starts at 0, which would always win a min; reserve 0 for
        // "empty" by treating it as +infinity.
        return cur == 0 ? code : std::min(cur, code);
      case PerPacketOp::kSum:
        // Sum cannot be folded exactly in code space; the randomized code is
        // summed and decoded per-hop by the sink on average. (Exact sums
        // would use Morris counting; see approx/morris.h.)
        return cur + code;
    }
    return cur;
  }

  double decode(Digest digest) const { return compressor_.decode(digest); }

  unsigned bits() const { return config_.bits; }
  const PerPacketConfig& config() const { return config_; }

 private:
  PerPacketConfig config_;
  MultiplicativeCompressor compressor_;
  GlobalHash rounding_;
};

}  // namespace pint
