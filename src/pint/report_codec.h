/// \file
/// Compact serialization of sink observer streams (SinkReport <-> bytes).
///
/// Multi-sink scale-out splits the Recording Module across processes: each
/// sink decodes its share of the digests locally and ships the *results* —
/// its observer stream of (context, query, observation) events — to one
/// central Inference Module. This codec defines that wire format:
///
///  * `ReportEncoder` accumulates events (or whole SinkReports) and
///    `finish()`es them into one self-contained buffer: a magic/version
///    header, an interned query-name table, then varint-packed records.
///    Doubles travel as raw IEEE-754 bits, so a round trip is byte-exact.
///  * `ReportDecoder` parses buffers from any number of sinks; it returns
///    false on malformed input instead of throwing, and interns query names
///    so decoded `string_view`s stay valid for the decoder's lifetime.
///  * `dispatch()` replays decoded records into ordinary SinkObservers, so
///    the `src/apps/` adapters work unchanged behind a fan-in.
///  * `EncodingObserver` is the sink-side adapter: subscribe it (via
///    `ShardedSink::add_observer` for serialized delivery) and every
///    callback lands in an encoder.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "pint/sink_report.h"

namespace pint {

/// One decoded observer event: an observation, or (when `path_event` is
/// true) a completed path decode carrying `path`.
struct StreamRecord {
  SinkContext ctx{};
  std::string_view query;
  Observation observation{};
  bool path_event = false;
  std::vector<SwitchId> path{};
};

/// Accumulates observer events and serializes them into one buffer.
///
/// Not thread-safe: serialize access (ShardedSink's observer relay already
/// does). `finish()` resets the encoder for the next epoch, so one encoder
/// can emit a stream of buffers.
class ReportEncoder {
 public:
  /// Records one `SinkObserver::on_observation` event.
  void add(const SinkContext& ctx, std::string_view query,
           const Observation& obs);

  /// Records one `SinkObserver::on_path_decoded` event.
  void add_path(const SinkContext& ctx, std::string_view query,
                const std::vector<SwitchId>& path);

  /// Records every entry of a SinkReport under one packet context. The
  /// report does not carry per-query flow keys, so `ctx.flow` is encoded
  /// as 0 for these records.
  void add(PacketId packet, unsigned k, const SinkReport& report);

  /// Events recorded since the last finish().
  std::size_t records() const { return records_.size(); }

  /// Serializes everything recorded so far and resets the encoder.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  /// Like finish(), but splits the pending records into buffers of at most
  /// `max_records` records each, in record order. Every buffer is
  /// self-contained (own magic + name table), so each can be framed,
  /// shipped, and decoded independently — losing one frame costs only that
  /// frame's records, not the epoch. Resets the encoder.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> finish_chunked(
      std::size_t max_records);

 private:
  struct Record {
    SinkContext ctx;
    std::uint32_t name_index = 0;
    std::uint8_t tag = 0;
    // Payload union by tag (see report_codec.cc for the wire layout).
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint8_t flag = 0;
    std::vector<SwitchId> path;
  };

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::uint32_t intern(std::string_view name);
  std::vector<std::uint8_t> encode_range(std::size_t lo, std::size_t hi) const;
  void reset();

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      name_index_;
  std::vector<Record> records_;
};

/// Parses buffers produced by ReportEncoder::finish().
///
/// A decoder may ingest buffers from many sinks; query names are interned
/// once and every decoded `StreamRecord::query` view stays valid for the
/// decoder's lifetime.
///
/// The hot path is `dispatch()`: it reads varints and name-table views
/// directly off the input bytes into reusable scratch (no per-record
/// vectors, no string materialization — steady-state decoding allocates
/// nothing once the scratch is warm) and replays the records straight into
/// observers. `decode()` shares the same zero-copy parse and then
/// materializes owning StreamRecords for callers that want them.
class ReportDecoder {
 public:
  /// Appends the buffer's records to `out`. Returns false (leaving `out`
  /// untouched) if the buffer is truncated, has a bad magic/version, or
  /// references an out-of-range name.
  [[nodiscard]] bool decode(std::span<const std::uint8_t> bytes,
                            std::vector<StreamRecord>& out);

  /// Zero-copy replay: parses `bytes` and fires the records into
  /// `observers` in record order, reading straight from the input span.
  /// The buffer is fully validated *before* the first callback, so a
  /// malformed buffer returns false and dispatches nothing — exactly
  /// decode()'s rejection behavior. `records_out`, if non-null, is
  /// incremented by the number of records replayed. Query-name views
  /// passed to callbacks are interned and stay valid for the decoder's
  /// lifetime.
  ///
  /// Not reentrant: callbacks replay out of this decoder's reused
  /// scratch, so an observer must not call back into the *same* decoder
  /// (or the FanInCollector that owns it) — mirroring SinkObserver's
  /// no-reentry contract toward the framework. Observers that forward
  /// into another pipeline must buffer and replay after dispatch()
  /// returns (or use a separate decoder).
  [[nodiscard]] bool dispatch(std::span<const std::uint8_t> bytes,
                              std::span<SinkObserver* const> observers,
                              std::uint64_t* records_out = nullptr);

 private:
  // One parsed record, flyweight: names are indices into names_scratch_,
  // path elements live in path_pool_ — nothing owns heap of its own, so
  // the scratch vectors are reused buffer after buffer.
  struct CompactRecord {
    SinkContext ctx{};
    std::uint32_t name = 0;
    std::uint8_t tag = 0;
    std::uint8_t flag = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t path_off = 0;
    std::uint32_t path_len = 0;
  };

  std::string_view intern(std::string_view name);
  /// Validating zero-copy parse into the scratch members; false on any
  /// malformed input (scratch contents are then meaningless).
  bool parse(std::span<const std::uint8_t> bytes);

  std::deque<std::string> interned_;  // stable storage for query names
  std::unordered_map<std::string_view, std::string_view> index_;
  // Reused across calls: cleared, never shrunk.
  std::vector<std::string_view> names_scratch_;  // views into the input
  std::vector<std::string_view> stable_scratch_;  // interned counterparts
  std::vector<CompactRecord> records_scratch_;
  std::vector<SwitchId> path_pool_;   // all path records' elements, packed
  std::vector<SwitchId> path_call_;   // one path, for the callback signature
};

/// Replays decoded records into observers, in record order: observation
/// records fire `on_observation`, path events fire `on_path_decoded`.
void dispatch(std::span<const StreamRecord> records,
              std::span<SinkObserver* const> observers);

/// Sink-side adapter: every observer callback is recorded into `encoder`.
/// The encoder must outlive the observer. Register through
/// `ShardedSink::add_observer` so calls arrive serialized.
class EncodingObserver : public SinkObserver {
 public:
  explicit EncodingObserver(ReportEncoder& encoder) : encoder_(encoder) {}

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    encoder_.add(ctx, query, obs);
  }

  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    encoder_.add_path(ctx, query, path);
  }

 private:
  ReportEncoder& encoder_;
};

}  // namespace pint
