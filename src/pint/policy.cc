#include "pint/policy.h"

namespace pint {

const char* to_string(StorePolicyKind kind) {
  switch (kind) {
    case StorePolicyKind::kLru:
      return "lru";
    case StorePolicyKind::kDoorkeeper:
      return "doorkeeper";
    case StorePolicyKind::kTinyLfu:
      return "tinylfu";
  }
  return "unknown";
}

std::optional<StorePolicyKind> parse_store_policy(std::string_view name) {
  if (name == "lru") return StorePolicyKind::kLru;
  if (name == "doorkeeper") return StorePolicyKind::kDoorkeeper;
  if (name == "tinylfu") return StorePolicyKind::kTinyLfu;
  return std::nullopt;
}

std::unique_ptr<StorePolicy> make_store_policy(StorePolicyKind kind,
                                               std::uint64_t seed) {
  switch (kind) {
    case StorePolicyKind::kLru:
      return nullptr;  // no policy object = the store's native LRU path
    case StorePolicyKind::kDoorkeeper:
      return std::make_unique<DoorkeeperPolicy>(seed);
    case StorePolicyKind::kTinyLfu:
      return std::make_unique<TinyLfuPolicy>(seed);
  }
  return nullptr;
}

}  // namespace pint
