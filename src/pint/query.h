/// \file
/// PINT query language (paper Section 3.3).
///
/// A query is the tuple <value, aggregation type, bit budget, optional: space
/// budget, flow definition, frequency>. The value is named by a ValueExtractor
/// registered with the framework (extractor.h) — any metric computable from a
/// SwitchView can back a query; nothing is hardcoded. The Query Engine
/// (query_engine.h) compiles a set of queries plus a global per-packet bit
/// budget into an execution plan.
#pragma once

#include <cstdint>
#include <string>

#include "packet/flow.h"

namespace pint {

/// Paper Section 3.1.
enum class AggregationType : std::uint8_t {
  kPerPacket,       // e.g. max link utilization along the path (HPCC)
  kStaticPerFlow,   // e.g. path tracing (value fixed per (flow, switch))
  kDynamicPerFlow,  // e.g. per-hop latency quantiles
};

struct Query {
  std::string name;

  /// Name of the ValueExtractor producing v(p, s). Empty selects the
  /// aggregation type's canonical Table-1 metric: switch_id for static
  /// per-flow, hop_latency for dynamic per-flow, link_utilization for
  /// per-packet.
  std::string extractor;

  AggregationType aggregation = AggregationType::kStaticPerFlow;

  /// Per-packet bits this query needs when it runs on a packet.
  unsigned bit_budget = 8;

  /// Optional per-flow storage allowed at the Recording Module (0 = default).
  std::size_t space_budget_bytes = 0;

  FlowDefinition flow_definition = FlowDefinition::kFiveTuple;

  /// Fraction of packets that should carry this query's digest, in (0, 1].
  double frequency = 1.0;
};

}  // namespace pint
