/// \file
/// Sink-to-collector telemetry reporting (paper Section 2, item 3 and
/// Section 3.4).
///
/// INT sinks forward variable-size per-hop stacks to the analysis cluster —
/// report size grows with path length, and fixed-header processors like
/// Confluo [43] cannot batch them efficiently. PINT's sink forwards only the
/// fixed-width digest plus a small fixed header, so collection traffic is
/// constant per packet and smaller. This module models both report formats
/// and accounts the collection traffic each generates.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "packet/headers.h"

namespace pint {

struct CollectorReportSpec {
  /// Fixed report envelope (flow key, timestamps, sink id...).
  Bytes envelope_bytes = 16;
};

/// Collection bytes for one packet's telemetry, INT vs PINT.
inline Bytes int_report_bytes(const CollectorReportSpec& spec, unsigned hops,
                              unsigned values_per_hop) {
  const IntHeaderSpec int_spec{values_per_hop};
  return spec.envelope_bytes + int_spec.overhead_bytes(hops);
}

inline Bytes pint_report_bytes(const CollectorReportSpec& spec,
                               unsigned global_bit_budget) {
  const PintHeaderSpec pint_spec{global_bit_budget};
  return spec.envelope_bytes + pint_spec.overhead_bytes();
}

/// Running accountant for a deployment's collection traffic.
class CollectionAccountant {
 public:
  explicit CollectionAccountant(CollectorReportSpec spec = {}) : spec_(spec) {}

  void record_int(unsigned hops, unsigned values_per_hop) {
    ++packets_;
    bytes_ += int_report_bytes(spec_, hops, values_per_hop);
  }

  void record_pint(unsigned global_bit_budget) {
    ++packets_;
    bytes_ += pint_report_bytes(spec_, global_bit_budget);
  }

  std::uint64_t packets() const { return packets_; }
  Bytes bytes() const { return bytes_; }
  double bytes_per_packet() const {
    return packets_ == 0 ? 0.0
                         : static_cast<double>(bytes_) /
                               static_cast<double>(packets_);
  }

 private:
  CollectorReportSpec spec_;
  std::uint64_t packets_ = 0;
  Bytes bytes_ = 0;
};

}  // namespace pint
