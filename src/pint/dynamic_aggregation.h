/// \file
/// Dynamic per-flow aggregation: per-hop latency quantiles
/// (paper Example #1, Section 4.1; Theorems 1 and 2).
///
/// Each packet carries the (compressed) value of one uniformly chosen hop,
/// selected by distributed reservoir sampling: hop i overwrites the digest
/// when g(packet, i) <= 1/i. The Recording Module re-runs the same hashes to
/// attribute every digest to its hop, producing per-(flow, hop) sub-streams;
/// quantiles come from raw samples or a KLL sketch (the paper's PINT_S).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "approx/value_compression.h"
#include "coding/scheme.h"
#include "common/types.h"
#include "hash/global_hash.h"
#include "sketch/kll.h"
#include "sketch/sliding_window.h"
#include "sketch/space_saving.h"

namespace pint {

struct DynamicAggregationConfig {
  unsigned bits = 8;          // digest bit budget
  double max_value = 1 << 30; // largest value that must be representable
  /// When true, use the zero-mean randomized rounding of Section 4.3.
  bool randomized_rounding = false;
};

class DynamicAggregationQuery {
 public:
  DynamicAggregationQuery(DynamicAggregationConfig config, std::uint64_t seed);

  /// Switch side: hop i overwrites the digest with its compressed value iff
  /// its reservoir decision fires.
  Digest encode_step(PacketId packet, HopIndex i, Digest cur,
                     double value) const;

  /// Sink side: which hop's value this packet carries (k = path length), and
  /// the decompressed value.
  struct Sample {
    HopIndex hop;
    double value;
  };
  Sample decode(PacketId packet, Digest digest, unsigned k) const;

  double decompress(Digest digest) const { return compressor_.decode(digest); }
  const DynamicAggregationConfig& config() const { return config_; }

 private:
  DynamicAggregationConfig config_;
  MultiplicativeCompressor compressor_;
  GlobalHash g_;
  GlobalHash rounding_;
};

/// Recording + Inference for one flow: per-hop sub-streams held either as raw
/// samples (exact, linear space) or as KLL sketches (paper's PINT_S,
/// O(eps^-1) space). Space budget, when given, is split evenly across the k
/// hops (Section 4.1). An optional sliding window (Section 4.1: "we can use a
/// sliding-window sketch to reflect only the most recent measurements")
/// answers windowed quantile queries alongside the all-time ones.
class FlowLatencyRecorder {
 public:
  /// sketch_bytes = 0 keeps raw samples; otherwise each hop gets a KLL sketch
  /// sized to about sketch_bytes / k bytes. `bytes_per_item` is the storage
  /// cost of one retained identifier — the paper's Recording Module stores
  /// b-bit compressed codes, so pass (bits+7)/8 to model Fig. 9's
  /// 100-300 byte sketches faithfully (default: raw 8-byte doubles).
  FlowLatencyRecorder(unsigned k, std::size_t sketch_bytes = 0,
                      std::uint64_t seed = 0x4C415245C0DE,
                      std::size_t bytes_per_item = 8);

  void add(const DynamicAggregationQuery::Sample& sample);

  /// phi-quantile of the sub-stream observed at `hop` (1-based).
  std::optional<double> quantile(HopIndex hop, double phi) const;

  /// Enable per-hop sliding windows over the most recent `window` samples
  /// (must be called before the first add()).
  void enable_sliding_window(std::size_t window, std::size_t blocks = 8);

  /// phi-quantile over the recent window at `hop`; nullopt if windows are
  /// disabled or empty.
  std::optional<double> windowed_quantile(HopIndex hop, double phi) const;

  /// Values appearing in at least a theta fraction at `hop` (Theorem 2),
  /// values keyed by their compressed code.
  std::vector<std::uint64_t> frequent_values(HopIndex hop, double theta) const;

  std::size_t samples_at(HopIndex hop) const;
  unsigned k() const { return k_; }

  /// Approximate heap + object footprint in bytes, for the Recording
  /// Module's memory accounting. Grows with raw samples (or sketch
  /// compactions) and the frequent-value counters.
  std::size_t approx_bytes() const;

 private:
  unsigned k_;
  bool use_sketch_;
  std::vector<std::vector<double>> raw_;       // per hop, when !use_sketch_
  std::vector<KllSketch> sketches_;            // per hop, when use_sketch_
  std::vector<SpaceSaving> frequents_;         // per hop (codes)
  std::vector<std::size_t> counts_;
  std::vector<SlidingWindowQuantiles> windows_;  // per hop, when enabled
};

}  // namespace pint
