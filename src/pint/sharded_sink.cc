#include "pint/sharded_sink.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "hash/global_hash.h"

namespace pint {

// Partitioning by P is correct iff each query's flow key is a function of
// P's key (all packets sharing a query key must share a shard). Five-tuple
// refines ip-pair, which refines source-ip and destination-ip; source and
// destination are incomparable, so a mix of both has no common partition.
std::optional<FlowDefinition> common_flow_partition(const PintFramework& fw) {
  bool has_src = false;
  bool has_dst = false;
  bool has_pair = false;
  for (std::string_view name : fw.query_names()) {
    const QuerySpec* spec = fw.spec(name);
    if (spec->query.aggregation == AggregationType::kPerPacket) {
      continue;  // stateless at the sink: any shard may decode it
    }
    switch (spec->query.flow_definition) {
      case FlowDefinition::kFiveTuple:
        break;
      case FlowDefinition::kIpPair:
        has_pair = true;
        break;
      case FlowDefinition::kSourceIp:
        has_src = true;
        break;
      case FlowDefinition::kDestinationIp:
        has_dst = true;
        break;
    }
  }
  if (has_src && has_dst) return std::nullopt;
  if (has_src) return FlowDefinition::kSourceIp;
  if (has_dst) return FlowDefinition::kDestinationIp;
  if (has_pair) return FlowDefinition::kIpPair;
  return FlowDefinition::kFiveTuple;
}

// Registered on one shard's framework replica; runs on that shard's worker
// thread. Sync mode forwards inline under the observer mutex (the pre-async
// behavior); async mode captures the callback as an ObserverEvent and
// publishes it to the shard's SPSC ring for the shard's relay thread.
class ShardedSink::ShardRelay : public SinkObserver {
 public:
  ShardRelay(ShardedSink& parent, Shard& shard)
      : parent_(parent), shard_(shard) {}

  // The async branches fill a transport slot in place (begin_publish
  // returns the chunk-resident event, or nullptr when kDropNewest shed
  // it): the event is constructed exactly once, where the relay will read
  // it — no intermediate ObserverEvent moves on the packet path.

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    if (parent_.async_mode_) {
      ObserverEvent* slot = parent_.begin_publish(
          shard_, ObserverEvent::Kind::kObservation, query);
      if (slot != nullptr) {
        slot->ctx = ctx;
        slot->query = query;
        slot->obs = obs;
      }
      return;
    }
    MutexLock lock(parent_.observer_mutex_);
    for (SinkObserver* o : parent_.observers_) {
      o->on_observation(ctx, query, obs);
    }
  }

  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    if (parent_.async_mode_) {
      ObserverEvent* slot = parent_.begin_publish(
          shard_, ObserverEvent::Kind::kPath, query);
      if (slot != nullptr) {
        slot->ctx = ctx;
        slot->query = query;
        slot->set_path(path);
      }
      return;
    }
    MutexLock lock(parent_.observer_mutex_);
    for (SinkObserver* o : parent_.observers_) {
      o->on_path_decoded(ctx, query, path);
    }
  }

  // Per-shard snapshots: each covers the reporting shard's stores only
  // (shards hold disjoint flows); use ShardedSink::memory_report() for the
  // merged view.
  void on_memory_report(const MemoryReport& report) override {
    if (parent_.async_mode_) {
      ObserverEvent* slot = parent_.begin_publish(
          shard_, ObserverEvent::Kind::kMemory, /*query=*/{});
      if (slot != nullptr) {
        slot->overflow = std::make_unique<ObserverEvent::Overflow>();
        slot->overflow->memory = std::make_unique<MemoryReport>(report);
      }
      return;
    }
    MutexLock lock(parent_.observer_mutex_);
    for (SinkObserver* o : parent_.observers_) {
      o->on_memory_report(report);
    }
  }

 private:
  ShardedSink& parent_;
  Shard& shard_;
};

ShardedSink::ShardedSink(const PintFramework::Builder& builder,
                         unsigned num_shards, std::size_t queue_depth) {
  // The hot counter groups must start on private cache lines (see the
  // layout comments in the header); these fire if a refactor repacks
  // them. Inside the ctor because the nested types are private.
  PINT_ASSERT_CACHELINE_ALIGNED(Shard);
  PINT_ASSERT_CACHELINE_ALIGNED(RelayThread);
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedSink needs at least one shard");
  }
  if (queue_depth == 0) {
    throw std::invalid_argument("ShardedSink needs a nonzero queue depth");
  }
  async_mode_ = builder.async_observer_depth() > 0;
  async_policy_ = builder.async_observer_policy();
  // Each shard holds 1/num_shards of the flows, so it gets 1/num_shards of
  // every Recording-Module budget; with no budgets set this is a no-op copy.
  const PintFramework::Builder replica_builder =
      num_shards > 1 ? builder.with_memory_divided(num_shards)
                     : PintFramework::Builder(builder);
  shards_.reserve(num_shards);
  shard_relays_.reserve(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>(queue_depth);
    shard->fw = replica_builder.build_or_throw();
    if (async_mode_) {
      // Chunked transport sizing: the configured depth is an *event*
      // budget. Chunk capacity shrinks with small depths (depth/4, so a
      // depth-2 ring still blocks after ~2 events, as the per-event ring
      // did) and caps at kEventChunkCapacity for large ones; the chunk
      // ring holds enough chunks to cover the depth. The recycle ring is
      // sized past the total chunk population so returning a buffer
      // cannot fail.
      const std::size_t depth = builder.async_observer_depth();
      shard->chunk_capacity = std::min<std::size_t>(
          kEventChunkCapacity, std::max<std::size_t>(1, depth / 4));
      const std::size_t chunks =
          (depth + shard->chunk_capacity - 1) / shard->chunk_capacity;
      shard->obs_ring =
          std::make_unique<SpscQueue<std::unique_ptr<EventChunk>>>(chunks);
      shard->obs_recycle =
          std::make_unique<SpscQueue<std::unique_ptr<EventChunk>>>(
              shard->obs_ring->capacity() + 2);
      shard->open_chunk = std::make_unique<EventChunk>();
      shard->open_chunk->reserve(shard->chunk_capacity);
      // Pre-populate the recycle ring with the full chunk population, each
      // buffer already reserved. The transport is then zero-allocation from
      // the first event — without this, a worker that outruns its relay
      // (the common case while the relay sleeps) would malloc and
      // first-touch every chunk on the hot path before recycling starts.
      for (std::size_t c = 0; c < shard->obs_ring->capacity() + 1; ++c) {
        auto chunk = std::make_unique<EventChunk>();
        chunk->reserve(shard->chunk_capacity);
        if (!shard->obs_recycle->try_push(std::move(chunk))) break;
      }
      shard->wake_occupancy =
          std::max<std::size_t>(1, shard->obs_ring->capacity() / 2);
    }
    shard_relays_.push_back(
        std::make_unique<ShardRelay>(*this, *shard));
    shard->fw->add_observer(shard_relays_.back().get());
    shards_.push_back(std::move(shard));
  }
  // Priority shedding classes, from any replica (identical specs): a
  // query's events are droppable iff it sits at the minimum registered
  // priority. All-default priorities put every query in the droppable
  // class — kDropNewest then behaves exactly as before priorities existed.
  {
    const PintFramework& fw0 = *shards_[0]->fw;
    const unsigned min_priority = fw0.min_query_priority();
    for (std::string_view name : fw0.query_names()) {
      sheddable_.emplace(name, fw0.spec(name)->priority == min_priority);
    }
  }
  const std::optional<FlowDefinition> def =
      common_flow_partition(*shards_[0]->fw);
  if (!def.has_value()) {
    if (num_shards > 1) {
      throw std::invalid_argument(
          "queries aggregate by both source and destination IP: no flow "
          "partition keeps both consistent across shards");
    }
    partition_def_ = FlowDefinition::kFiveTuple;  // single shard: moot
  } else {
    partition_def_ = *def;
  }
  if (async_mode_) {
    // Relay sharding: relay t exclusively owns shards s % relays == t, so
    // every ring keeps exactly one consumer. More relays than shards would
    // only add idle threads — clamp. The assignment must exist before any
    // worker starts (workers publish through shard->relay).
    const unsigned relay_count =
        std::min<unsigned>(std::max(1u, builder.async_relay_threads()),
                           num_shards);
    relays_.reserve(relay_count);
    for (unsigned t = 0; t < relay_count; ++t) {
      relays_.push_back(std::make_unique<RelayThread>());
    }
    for (unsigned s = 0; s < num_shards; ++s) {
      RelayThread& relay = *relays_[s % relay_count];
      shards_[s]->relay = &relay;
      relay.shards.push_back(shards_[s].get());
    }
    for (auto& relay : relays_) {
      relay->thread =
          std::thread([this, r = relay.get()] { relay_loop(*r); });
    }
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
}

ShardedSink::~ShardedSink() {
  for (auto& shard : shards_) {
    {
      MutexLock lock(shard->mutex);
      shard->stop.store(true, std::memory_order_release);
    }
    // Unconditional (not try_wake): the worker re-checks stop on every
    // wake, and a once-per-lifetime mutex+notify is not worth a protocol.
    shard->wake.notify_one();
  }
  // Discard batches no worker has started: they hold pointers into caller
  // buffers that are only guaranteed alive through the next flush(), and
  // destruction without a flush() (early exit, unwind) must not touch
  // them. The queue is multi-consumer, so draining here races the workers
  // safely and empties the backlog before they could process it (workers
  // re-check stop between batches); a batch a worker grabbed concurrently
  // counts as already being processed. Destroying a Batch only frees its
  // item vector.
  for (auto& shard : shards_) {
    Batch batch;
    while (shard->queue.try_pop(batch)) {
    }
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (!relays_.empty()) {
    // Workers are gone, so no more events can be published; each relay
    // drains what remains of its own rings (kBlock stays loss-free
    // through destruction) and exits.
    relay_stop_.store(true, std::memory_order_seq_cst);
    for (auto& relay : relays_) {
      {
        MutexLock lock(relay->mutex);
      }
      relay->wake.notify_one();
    }
    for (auto& relay : relays_) {
      if (relay->thread.joinable()) relay->thread.join();
    }
  }
}

unsigned ShardedSink::shard_of(const FiveTuple& tuple) const {
  const std::uint64_t key = flow_key(tuple, partition_def_);
  return static_cast<unsigned>(mix64(key) % shards_.size());
}

void ShardedSink::submit(std::span<const Packet> packets, unsigned k,
                         std::span<SinkReport> reports) {
  if (!reports.empty() && reports.size() != packets.size()) {
    throw std::invalid_argument("reports must be empty or match packets");
  }
  const std::size_t num_shards = shards_.size();
  std::vector<Batch> staged(num_shards);
  // First touch of a shard reserves for the expected share of the burst
  // (x2 slack absorbs ordinary skew); a pathological single-flow burst
  // regrows once or twice, an even spread never does.
  const std::size_t reserve_hint =
      num_shards == 1 ? packets.size()
                      : std::min(packets.size(),
                                 packets.size() * 2 / num_shards + 8);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    // Hash each packet's partition flow key exactly once: the same value
    // routes the packet to its shard here and rides along as a
    // FlowKeyHint so the worker's at_sink() skips the rehash.
    const std::uint64_t pkey = flow_key(packets[i].tuple, partition_def_);
    Batch& b = staged[mix64(pkey) % num_shards];
    if (b.items.empty()) b.items.reserve(reserve_hint);
    b.items.push_back(Item{&packets[i], pkey,
                           reports.empty() ? nullptr : &reports[i]});
  }
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (staged[s].items.empty()) continue;
    staged[s].k = k;
    Shard& shard = *shards_[s];
    // pending goes up before the batch is visible anywhere, so a flush()
    // racing this submit can never observe "all done" mid-handoff.
    shard.pending_batches.fetch_add(1, std::memory_order_seq_cst);
    // Bounded queue full = backpressure: this producer waits with bounded
    // exponential backoff (spin -> pause -> yield; the batch is already
    // partitioned, and blocking here is the kBlock policy — the sink
    // never grows an unbounded backlog).
    Backoff backoff;
    while (!shard.queue.try_push(std::move(staged[s]))) {
      backoff.wait();
    }
    // Publish after the push: a worker that observes queued > 0 is
    // guaranteed to find the batch (the seq_cst increment pairs with the
    // worker's seq_cst predicate load — see the wakeup protocol comment
    // below).
    shard.queued.fetch_add(1, std::memory_order_seq_cst);
    try_wake(shard.wake_state, shard.mutex, shard.wake);
  }
}

void ShardedSink::flush() {
  for (auto& shard : shards_) {
    // The waiter count gates the worker's idle notify: when nobody is
    // flushing (the common case), batch completion costs the worker no
    // mutex and no notify at all.
    shard->flush_waiters.fetch_add(1, std::memory_order_seq_cst);
    {
      MutexLock lock(shard->mutex);
      shard->idle.wait(shard->mutex, [&] {
        return shard->pending_batches.load(std::memory_order_seq_cst) == 0;
      });
    }
    shard->flush_waiters.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (!async_mode_) return;
  // Every flushed packet's events are published (workers publish inside
  // at_sink, before marking the batch done); wait for the relays to
  // deliver them so post-flush reads of observer state are race-free.
  // consumed is bumped with release *after* each batch's callbacks return,
  // so the acquire loads here order those callbacks before flush()'s
  // return.
  for (auto& shard : shards_) {
    Backoff backoff;
    while (shard->obs_consumed.load(std::memory_order_acquire) <
           shard->obs_published.load(std::memory_order_acquire)) {
      try_wake(shard->relay->state, shard->relay->mutex, shard->relay->wake);
      backoff.wait();
    }
  }
}

void ShardedSink::add_observer(SinkObserver* observer) {
  MutexLock lock(observer_mutex_);
  observers_.push_back(observer);
}

// --- sleep/wake protocol ----------------------------------------------------
//
// Both the shard workers and the relay threads sleep through the same
// edge-coalesced handshake, built from a tri-state word per sleeper
// (WakeState) plus a CV:
//
//  * The sleeper re-arms `state = kSleeping` (seq_cst) *before every*
//    predicate evaluation — including after spurious wakes — then blocks on
//    the raw CV wait if the predicate is false, and stores kAwake once it
//    leaves the loop.
//  * A producer makes work visible first (seq_cst counter bump), then loads
//    `state`. Only a kSleeping read leads anywhere: the producer CASes
//    kSleeping -> kNotified, and only the CAS winner pays the
//    mutex+notify. Reads of kAwake or kNotified cost one uncontended load.
//
// No missed wakeups: all four accesses are seq_cst, so they have one total
// order. If the producer's state load does NOT return kSleeping, that load
// precedes the sleeper's next kSleeping re-arm in the total order; the
// producer's counter bump precedes its load (program order), hence
// precedes the re-arm, hence precedes the predicate read that follows the
// re-arm — the predicate sees the work and the sleeper does not block.
// If the load DOES return kSleeping, exactly one producer wins the CAS and
// notifies under the mutex (so the notify cannot fall between the
// sleeper's predicate check and its block).
//
// Coalescing: once a producer has won the CAS, the word reads kNotified
// until the sleeper wakes — every later producer in the same sleep episode
// skips the mutex+notify entirely. On a busy system the word reads kAwake
// and *no* producer ever touches the mutex. This is what fixes kBlock
// async losing to sync on one core: the old code paid a mutex+notify per
// event the entire time the relay was runnable but not yet scheduled.

void ShardedSink::try_wake(std::atomic<WakeState>& state, Mutex& mutex,
                           CondVar& cv) {
  if (state.load(std::memory_order_seq_cst) != WakeState::kSleeping) {
    return;  // awake, or this sleep episode was already signalled
  }
  WakeState expected = WakeState::kSleeping;
  if (!state.compare_exchange_strong(expected, WakeState::kNotified,
                                     std::memory_order_seq_cst)) {
    return;  // another producer won the episode's CAS
  }
  {
    // Empty critical section: the sleeper either holds the mutex and is
    // about to re-check its predicate, or is already blocked and the
    // notify below lands after it released the mutex.
    MutexLock lock(mutex);
  }
  cv.notify_one();
}

// Priority admission: only minimum-priority query events may be shed, and
// memory reports never are — they carry the drop accounting an operator
// needs to *see* the shedding. Consulted only on the full-transport slow
// path, so the common (not-full) publish stays map-free.
bool ShardedSink::event_sheddable(ObserverEvent::Kind kind,
                                  std::string_view query) const {
  if (kind == ObserverEvent::Kind::kMemory) return false;
  const auto it = sheddable_.find(query);
  return it != sheddable_.end() && it->second;
}

bool ShardedSink::try_seal_open_chunk(Shard& shard) {
  if (shard.open_chunk->empty()) return true;
  const std::size_t sealed = shard.open_chunk->size();
  // try_push leaves the value untouched on a full ring, so a failed seal
  // keeps the chunk (and its events) exactly where they were.
  if (!shard.obs_ring->try_push(std::move(shard.open_chunk))) return false;
  shard.obs_sealed += sealed;
  if (!shard.obs_recycle->try_pop(shard.open_chunk) ||
      shard.open_chunk == nullptr) {
    // Startup only: once every buffer exists, the recycle ring (sized past
    // the chunk population) always has one.
    shard.open_chunk = std::make_unique<EventChunk>();
    shard.open_chunk->reserve(shard.chunk_capacity);
  }
  return true;
}

ShardedSink::ObserverEvent* ShardedSink::begin_publish(
    Shard& shard, ObserverEvent::Kind kind, std::string_view query) {
  if (shard.open_chunk->size() >= shard.chunk_capacity &&
      !try_seal_open_chunk(shard)) {
    // Transport full: the open chunk is at capacity and the chunk ring
    // has no slot. Shed the *incoming* event if the policy and its
    // priority class allow (exact accounting: every emitted event lands
    // in published or dropped, never both, never neither)...
    if (async_policy_ == OverflowPolicy::kDropNewest &&
        event_sheddable(kind, query)) {
      shard.obs_dropped.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    // ...otherwise block — kBlock, or a protected (higher-priority /
    // memory-report) event under kDropNewest: bounded exponential backoff
    // until the relay frees a chunk slot. The relay's sleep predicate is
    // ring occupancy, and a full ring is as occupied as it gets —
    // try_wake coalesces the retries to at most one mutex+notify per
    // relay sleep episode.
    RelayThread& relay = *shard.relay;
    shard.obs_blocked.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    do {
      try_wake(relay.state, relay.mutex, relay.wake);
      backoff.wait();
    } while (!try_seal_open_chunk(shard));
  }
  // The fast path: append a default-constructed slot to the open chunk and
  // hand it to the caller to fill in place. No atomic RMW, no wake probe,
  // no event moves. The count folds into obs_published — and the relay
  // gets its (single, coalesced) wake — in flush_published(), once per
  // MPMC batch, which also seals the partial chunk so every counted event
  // is poppable.
  shard.open_chunk->emplace_back();
  ++shard.obs_batched;
  ObserverEvent* slot = &shard.open_chunk->back();
  slot->kind = kind;
  return slot;
}

void ShardedSink::flush_published(Shard& shard) {
  if (shard.obs_batched == 0) return;
  // Inline-delivery fast path: when the relay has delivered every event
  // this shard ever sealed and holds nothing in flight (consumed ==
  // sealed + inline — all three monotonic, the right side worker-exact),
  // the worker delivers the open chunk itself under one observer-mutex
  // acquisition. The events are still hot in this core's cache, the ring
  // round-trip and the relay's wake/context-switch disappear, and
  // per-shard FIFO is preserved: the equality proves every earlier event
  // was already delivered. Under load the relay falls behind, the
  // equality fails, and the pipelined ring path below takes over — the
  // sink degrades from "combiner" to "pipeline" exactly when a second
  // core has work to steal. The acquire load pairs with the relay's
  // release bump after its callbacks, ordering those callbacks before
  // the inline ones.
  //
  // kBlock only: kDropNewest's contract is that the packet path sheds
  // observer work rather than slow down for it — a worker that delivered
  // inline would stall on the very callbacks the policy said to drop,
  // silently inverting the policy (and collapsing the shedding config's
  // packet throughput). Under kDropNewest every event takes the ring and
  // its admission-time drop accounting.
  if (async_policy_ == OverflowPolicy::kBlock &&
      shard.obs_consumed.load(std::memory_order_acquire) ==
          shard.obs_sealed + shard.obs_inline) {
    const std::size_t n = shard.open_chunk->size();
    if (n > 0) {
      MutexLock lock(observer_mutex_);
      for (const ObserverEvent& e : *shard.open_chunk) {
        deliver_event(e, shard.path_scratch);
      }
    }
    shard.open_chunk->clear();
    shard.obs_inline += n;
    // obs_batched can exceed n: chunks sealed mid-batch were already
    // delivered (and counted in consumed) by the relay, but their fold
    // waited for this call. published += batched and consumed += n then
    // land on the same total.
    shard.obs_published.fetch_add(shard.obs_batched,
                                  std::memory_order_seq_cst);
    shard.obs_batched = 0;
    shard.obs_consumed.fetch_add(n, std::memory_order_release);
    return;
  }
  // Seal the partial chunk *before* folding the count: flush() waits for
  // consumed == published, and the relay can only consume events that
  // reached the ring — a counted event stranded in the open chunk would
  // deadlock that wait.
  if (!shard.open_chunk->empty() && !try_seal_open_chunk(shard)) {
    if (async_policy_ == OverflowPolicy::kDropNewest) {
      // A full ring under kDropNewest means the transport said "shed":
      // blocking here would stall the packet path once per batch waiting
      // for the relay — on a busy single core that forces a worker→relay
      // handoff per batch and silently converts the shedding policy into
      // a delivery policy at packet-throughput cost. Shed the open
      // chunk's sheddable events instead (they are the newest admitted),
      // un-counting them from the pending fold; protected classes and
      // memory heartbeats stay and, if any remain, take the blocking
      // seal below — exactly the admission path's contract.
      EventChunk& chunk = *shard.open_chunk;
      std::size_t kept = 0;
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        if (event_sheddable(chunk[i].kind, chunk[i].query)) continue;
        if (kept != i) chunk[kept] = std::move(chunk[i]);
        ++kept;
      }
      const std::size_t shed = chunk.size() - kept;
      chunk.resize(kept);
      if (shed > 0) {
        shard.obs_batched -= shed;
        shard.obs_dropped.fetch_add(shed, std::memory_order_relaxed);
      }
    }
    if (!shard.open_chunk->empty()) {
      RelayThread& relay = *shard.relay;
      shard.obs_blocked.fetch_add(1, std::memory_order_relaxed);
      Backoff backoff;
      do {
        try_wake(relay.state, relay.mutex, relay.wake);
        backoff.wait();
      } while (!try_seal_open_chunk(shard));
    }
  }
  if (shard.obs_batched == 0) return;  // everything shed; nothing to fold
  shard.obs_published.fetch_add(shard.obs_batched,
                                std::memory_order_seq_cst);
  shard.obs_batched = 0;
  // Fence-paired with the relay's fence after its kSleeping re-arm
  // (store-buffer litmus): when a wake is issued below, either the
  // relay's predicate sees this batch's ring pushes (release stores,
  // program-ordered before this fence), or try_wake sees kSleeping and
  // pays the notify. The fence also runs when the wake is *skipped*, so
  // any later unconditional wake (worker going idle, blocked path,
  // flush(), destructor) finds a relay whose predicate will see these
  // pushes.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Wake hysteresis: don't pull the relay in for every batch — let work
  // pile to half the ring first, so worker and relay each run long
  // stretches instead of trading the core (and their cache residency)
  // per batch. A sub-threshold tail is never stranded: the worker wakes
  // the relay unconditionally when it goes idle, as do the blocked path
  // and flush().
  if (shard.obs_ring->approx_size() >= shard.wake_occupancy) {
    try_wake(shard.relay->state, shard.relay->mutex, shard.relay->wake);
  }
}

void ShardedSink::deliver_event(const ObserverEvent& event,
                                std::vector<SwitchId>& path_scratch) {
  switch (event.kind) {
    case ObserverEvent::Kind::kObservation:
      for (SinkObserver* o : observers_) {
        o->on_observation(event.ctx, event.query, event.obs);
      }
      break;
    case ObserverEvent::Kind::kPath: {
      // Bridge the inline hop buffer to the observer API's vector without
      // allocating: assign() reuses the scratch vector's capacity.
      const std::vector<SwitchId>* path;
      if (event.overflow == nullptr) {
        path_scratch.assign(event.path.begin(),
                            event.path.begin() + event.path_len);
        path = &path_scratch;
      } else {
        path = &event.overflow->path;
      }
      for (SinkObserver* o : observers_) {
        o->on_path_decoded(event.ctx, event.query, *path);
      }
      break;
    }
    case ObserverEvent::Kind::kMemory:
      for (SinkObserver* o : observers_) {
        o->on_memory_report(*event.overflow->memory);
      }
      break;
  }
}

std::size_t ShardedSink::drain_rings(RelayThread& relay) {
  std::size_t delivered = 0;
  for (Shard* shard : relay.shards) {
    // One chunk per shard per pass keeps the round-robin fair. Popping
    // the chunk frees its ring slot immediately (the slot held only the
    // owner pointer), so a blocked kBlock producer can seal its next
    // chunk while this one is still being delivered. One observer-mutex
    // acquisition covers the whole chunk; per-shard FIFO is preserved
    // (chunks are sealed and popped in one order).
    std::unique_ptr<EventChunk> chunk;
    if (!shard->obs_ring->try_pop(chunk) || chunk == nullptr) continue;
    {
      MutexLock lock(observer_mutex_);
      for (const ObserverEvent& e : *chunk) {
        deliver_event(e, relay.path_scratch);
      }
    }
    const std::size_t n = chunk->size();
    // Hand the emptied buffer back to the worker. clear() keeps capacity,
    // so steady state recirculates the same allocations; the recycle ring
    // is sized past the chunk population, but if a push ever failed the
    // unique_ptr would simply free the buffer.
    chunk->clear();
    (void)shard->obs_recycle->try_push(std::move(chunk));
    // After the callbacks: flush()'s acquire read of consumed must order
    // the callbacks' side effects before flush() returns.
    shard->obs_consumed.fetch_add(n, std::memory_order_release);
    relay.delivered.fetch_add(n, std::memory_order_relaxed);
    delivered += n;
  }
  return delivered;
}

void ShardedSink::relay_loop(RelayThread& relay) {
  // Work is "a ring with something in it" — not the published/consumed
  // counters, which lag the ring by up to a batch (flush_published folds
  // them per MPMC batch). Ring occupancy is also never *ahead* of real
  // work the way a counter could appear to be: a false positive here
  // would spin the relay against a core the worker needs.
  const auto work_pending = [&relay] {
    for (Shard* shard : relay.shards) {
      if (shard->obs_ring->approx_size() > 0) return true;
    }
    return false;
  };
  for (;;) {
    if (drain_rings(relay) > 0) continue;
    bool stopping = false;
    {
      MutexLock lock(relay.mutex);
      for (;;) {
        // Re-arm before *every* predicate check (see the protocol
        // comment): a wake consumes the kNotified episode, and sleeping
        // again without re-arming would let producers skip the notify.
        relay.state.store(WakeState::kSleeping, std::memory_order_seq_cst);
        // Paired with flush_published()'s fence: orders this re-arm
        // before the predicate's ring reads, so a producer whose
        // try_wake misses kSleeping is one whose ring pushes the
        // predicate must see.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (relay_stop_.load(std::memory_order_acquire)) {
          stopping = true;
          break;
        }
        if (work_pending()) break;
        relay.wake.wait(relay.mutex);
      }
      relay.state.store(WakeState::kAwake, std::memory_order_seq_cst);
    }
    if (stopping) {
      // Stop is only set after the workers joined: one final drain makes
      // kBlock delivery loss-free through destruction.
      while (drain_rings(relay) > 0) {
      }
      return;
    }
  }
}

TransportCounters ShardedSink::observer_counters() const {
  TransportCounters t;
  t.active = async_mode_;
  for (const auto& shard : shards_) {
    t.observer_events +=
        shard->obs_published.load(std::memory_order_acquire);
    t.observer_drops += shard->obs_dropped.load(std::memory_order_acquire);
    t.observer_blocked_waits +=
        shard->obs_blocked.load(std::memory_order_acquire);
  }
  return t;
}

std::vector<std::uint64_t> ShardedSink::relay_deliveries() const {
  std::vector<std::uint64_t> totals;
  totals.reserve(relays_.size());
  for (const auto& relay : relays_) {
    totals.push_back(relay->delivered.load(std::memory_order_acquire));
  }
  return totals;
}

std::uint64_t ShardedSink::packets_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->processed.load(std::memory_order_acquire);
  }
  return total;
}

MemoryReport ShardedSink::memory_report() const {
  MemoryReport merged = shards_[0]->fw->memory_report();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const MemoryReport part = shards_[s]->fw->memory_report();
    // Replicas are built from one Builder: same queries, same order.
    for (std::size_t q = 0; q < merged.query_count; ++q) {
      QueryMemoryStats& into = merged.queries[q];
      const QueryMemoryStats& from = part.queries[q];
      into.used_bytes += from.used_bytes;
      into.capacity_bytes += from.capacity_bytes;
      into.peak_used_bytes += from.peak_used_bytes;
      into.max_entry_bytes = std::max(into.max_entry_bytes,
                                      from.max_entry_bytes);
      into.flows += from.flows;
      into.evictions += from.evictions;
      into.created += from.created;
      into.admissions_rejected += from.admissions_rejected;
      into.doorkeeper_hits += from.doorkeeper_hits;
      into.frequency_evictions += from.frequency_evictions;
      into.over_budget = into.over_budget || from.over_budget;
    }
    merged.total.used_bytes += part.total.used_bytes;
    merged.total.capacity_bytes += part.total.capacity_bytes;
    merged.total.flows += part.total.flows;
    merged.total.evictions += part.total.evictions;
    merged.total.admissions_rejected += part.total.admissions_rejected;
    merged.total.over_budget =
        merged.total.over_budget || part.total.over_budget;
  }
  return merged;
}

void ShardedSink::worker_loop(Shard& shard) {
  SinkReport scratch;
  for (;;) {
    // Checked between batches, not just when idle: once destruction sets
    // stop, the remaining backlog must be discarded (by ~ShardedSink),
    // not processed against possibly-dead caller buffers.
    if (shard.stop.load(std::memory_order_acquire)) return;
    Batch batch;
    if (shard.queue.try_pop(batch)) {
      shard.queued.fetch_sub(1, std::memory_order_relaxed);
      for (const Item& item : batch.items) {
        SinkReport& out = item.report ? *item.report : scratch;
        // Reuse the partition key submit() hashed for shard routing.
        shard.fw->at_sink(*item.packet, batch.k, out,
                          FlowKeyHint{partition_def_, item.key});
      }
      shard.processed.fetch_add(batch.items.size(),
                                std::memory_order_release);
      // Fold this batch's event count and wake the relay — once per
      // batch, before the batch stops counting as pending (flush()'s
      // ordering depends on it).
      if (shard.relay != nullptr) flush_published(shard);
      if (shard.pending_batches.fetch_sub(1, std::memory_order_seq_cst) ==
              1 &&
          shard.flush_waiters.load(std::memory_order_seq_cst) > 0) {
        // Last outstanding batch with a flush() in progress: wake it.
        // Taking the mutex orders this notify after any flush() entered
        // its predicate check; with no waiter registered the notify (and
        // the mutex) are skipped — flush()'s seq_cst waiter increment
        // before its predicate read pairs with the seq_cst fetch_sub
        // here, so one side always sees the other.
        MutexLock lock(shard.mutex);
        shard.idle.notify_all();
      }
      continue;
    }
    // Going idle with events still in the ring: wake the relay
    // unconditionally. This is the liveness half of flush_published()'s
    // wake hysteresis — a sub-threshold tail is delivered as soon as the
    // worker has nothing more to add to it, not when the next burst
    // happens to arrive.
    if (shard.relay != nullptr && shard.obs_ring->approx_size() > 0) {
      try_wake(shard.relay->state, shard.relay->mutex, shard.relay->wake);
    }
    MutexLock lock(shard.mutex);
    for (;;) {
      // Same re-armed tri-state sleep as the relay (protocol comment
      // above): producers coalesce to at most one notify per episode.
      shard.wake_state.store(WakeState::kSleeping,
                             std::memory_order_seq_cst);
      if (shard.stop.load(std::memory_order_acquire) ||
          shard.queued.load(std::memory_order_seq_cst) > 0) {
        break;
      }
      shard.wake.wait(shard.mutex);
    }
    shard.wake_state.store(WakeState::kAwake, std::memory_order_seq_cst);
    if (shard.stop.load(std::memory_order_acquire)) return;
  }
}

// --- merged inference -------------------------------------------------------

std::optional<std::vector<SwitchId>> ShardedSink::flow_path(
    std::string_view query, const FiveTuple& tuple) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.flow_path(query, fw.flow_key_for(query, tuple));
}

double ShardedSink::path_progress(std::string_view query,
                                  const FiveTuple& tuple) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.path_progress(query, fw.flow_key_for(query, tuple));
}

std::optional<double> ShardedSink::latency_quantile(std::string_view query,
                                                    const FiveTuple& tuple,
                                                    HopIndex hop,
                                                    double phi) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.latency_quantile(query, fw.flow_key_for(query, tuple), hop, phi);
}

std::vector<std::uint64_t> ShardedSink::latency_frequent_values(
    std::string_view query, const FiveTuple& tuple, HopIndex hop,
    double theta) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.latency_frequent_values(query, fw.flow_key_for(query, tuple), hop,
                                    theta);
}

}  // namespace pint
