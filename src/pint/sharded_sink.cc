#include "pint/sharded_sink.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "hash/global_hash.h"

namespace pint {

// Partitioning by P is correct iff each query's flow key is a function of
// P's key (all packets sharing a query key must share a shard). Five-tuple
// refines ip-pair, which refines source-ip and destination-ip; source and
// destination are incomparable, so a mix of both has no common partition.
std::optional<FlowDefinition> common_flow_partition(const PintFramework& fw) {
  bool has_src = false;
  bool has_dst = false;
  bool has_pair = false;
  for (std::string_view name : fw.query_names()) {
    const QuerySpec* spec = fw.spec(name);
    if (spec->query.aggregation == AggregationType::kPerPacket) {
      continue;  // stateless at the sink: any shard may decode it
    }
    switch (spec->query.flow_definition) {
      case FlowDefinition::kFiveTuple:
        break;
      case FlowDefinition::kIpPair:
        has_pair = true;
        break;
      case FlowDefinition::kSourceIp:
        has_src = true;
        break;
      case FlowDefinition::kDestinationIp:
        has_dst = true;
        break;
    }
  }
  if (has_src && has_dst) return std::nullopt;
  if (has_src) return FlowDefinition::kSourceIp;
  if (has_dst) return FlowDefinition::kDestinationIp;
  if (has_pair) return FlowDefinition::kIpPair;
  return FlowDefinition::kFiveTuple;
}

// Registered on one shard's framework replica; runs on that shard's worker
// thread. Sync mode forwards inline under the observer mutex (the pre-async
// behavior); async mode captures the callback as an ObserverEvent and
// publishes it to the shard's SPSC ring for the relay thread.
class ShardedSink::ShardRelay : public SinkObserver {
 public:
  ShardRelay(ShardedSink& parent, Shard& shard)
      : parent_(parent), shard_(shard) {}

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    if (parent_.async_mode_) {
      ObserverEvent ev;
      ev.kind = ObserverEvent::Kind::kObservation;
      ev.ctx = ctx;
      ev.query = query;
      ev.obs = obs;
      parent_.publish_event(shard_, std::move(ev));
      return;
    }
    MutexLock lock(parent_.observer_mutex_);
    for (SinkObserver* o : parent_.observers_) {
      o->on_observation(ctx, query, obs);
    }
  }

  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    if (parent_.async_mode_) {
      ObserverEvent ev;
      ev.kind = ObserverEvent::Kind::kPath;
      ev.ctx = ctx;
      ev.query = query;
      ev.path = path;
      parent_.publish_event(shard_, std::move(ev));
      return;
    }
    MutexLock lock(parent_.observer_mutex_);
    for (SinkObserver* o : parent_.observers_) {
      o->on_path_decoded(ctx, query, path);
    }
  }

  // Per-shard snapshots: each covers the reporting shard's stores only
  // (shards hold disjoint flows); use ShardedSink::memory_report() for the
  // merged view.
  void on_memory_report(const MemoryReport& report) override {
    if (parent_.async_mode_) {
      ObserverEvent ev;
      ev.kind = ObserverEvent::Kind::kMemory;
      ev.memory = std::make_unique<MemoryReport>(report);
      parent_.publish_event(shard_, std::move(ev));
      return;
    }
    MutexLock lock(parent_.observer_mutex_);
    for (SinkObserver* o : parent_.observers_) {
      o->on_memory_report(report);
    }
  }

 private:
  ShardedSink& parent_;
  Shard& shard_;
};

ShardedSink::ShardedSink(const PintFramework::Builder& builder,
                         unsigned num_shards, std::size_t queue_depth) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedSink needs at least one shard");
  }
  if (queue_depth == 0) {
    throw std::invalid_argument("ShardedSink needs a nonzero queue depth");
  }
  async_mode_ = builder.async_observer_depth() > 0;
  async_policy_ = builder.async_observer_policy();
  // Each shard holds 1/num_shards of the flows, so it gets 1/num_shards of
  // every Recording-Module budget; with no budgets set this is a no-op copy.
  const PintFramework::Builder replica_builder =
      num_shards > 1 ? builder.with_memory_divided(num_shards)
                     : PintFramework::Builder(builder);
  shards_.reserve(num_shards);
  shard_relays_.reserve(num_shards);
  for (unsigned s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>(queue_depth);
    shard->fw = replica_builder.build_or_throw();
    if (async_mode_) {
      shard->obs_ring = std::make_unique<SpscQueue<ObserverEvent>>(
          builder.async_observer_depth());
    }
    shard_relays_.push_back(
        std::make_unique<ShardRelay>(*this, *shard));
    shard->fw->add_observer(shard_relays_.back().get());
    shards_.push_back(std::move(shard));
  }
  // Priority shedding classes, from any replica (identical specs): a
  // query's events are droppable iff it sits at the minimum registered
  // priority. All-default priorities put every query in the droppable
  // class — kDropNewest then behaves exactly as before priorities existed.
  {
    const PintFramework& fw0 = *shards_[0]->fw;
    const unsigned min_priority = fw0.min_query_priority();
    for (std::string_view name : fw0.query_names()) {
      sheddable_.emplace(name, fw0.spec(name)->priority == min_priority);
    }
  }
  const std::optional<FlowDefinition> def =
      common_flow_partition(*shards_[0]->fw);
  if (!def.has_value()) {
    if (num_shards > 1) {
      throw std::invalid_argument(
          "queries aggregate by both source and destination IP: no flow "
          "partition keeps both consistent across shards");
    }
    partition_def_ = FlowDefinition::kFiveTuple;  // single shard: moot
  } else {
    partition_def_ = *def;
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
  if (async_mode_) {
    relay_thread_ = std::thread([this] { relay_loop(); });
  }
}

ShardedSink::~ShardedSink() {
  for (auto& shard : shards_) {
    {
      MutexLock lock(shard->mutex);
      shard->stop.store(true, std::memory_order_release);
    }
    shard->wake.notify_one();
  }
  // Discard batches no worker has started: they hold pointers into caller
  // buffers that are only guaranteed alive through the next flush(), and
  // destruction without a flush() (early exit, unwind) must not touch
  // them. The queue is multi-consumer, so draining here races the workers
  // safely and empties the backlog before they could process it (workers
  // re-check stop between batches); a batch a worker grabbed concurrently
  // counts as already being processed. Destroying a Batch only frees its
  // pointer vectors.
  for (auto& shard : shards_) {
    Batch batch;
    while (shard->queue.try_pop(batch)) {
    }
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  if (relay_thread_.joinable()) {
    // Workers are gone, so no more events can be published; the relay
    // drains what remains (kBlock stays loss-free through destruction)
    // and exits.
    relay_stop_.store(true, std::memory_order_seq_cst);
    wake_relay();
    relay_thread_.join();
  }
}

unsigned ShardedSink::shard_of(const FiveTuple& tuple) const {
  const std::uint64_t key = flow_key(tuple, partition_def_);
  return static_cast<unsigned>(mix64(key) % shards_.size());
}

void ShardedSink::submit(std::span<const Packet> packets, unsigned k,
                         std::span<SinkReport> reports) {
  if (!reports.empty() && reports.size() != packets.size()) {
    throw std::invalid_argument("reports must be empty or match packets");
  }
  std::vector<Batch> staged(shards_.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    // Hash each packet's partition flow key exactly once: the same value
    // routes the packet to its shard here and rides along as a
    // FlowKeyHint so the worker's at_sink() skips the rehash.
    const std::uint64_t pkey = flow_key(packets[i].tuple, partition_def_);
    Batch& b = staged[mix64(pkey) % shards_.size()];
    b.packets.push_back(&packets[i]);
    b.keys.push_back(pkey);
    if (!reports.empty()) b.reports.push_back(&reports[i]);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (staged[s].packets.empty()) continue;
    staged[s].k = k;
    Shard& shard = *shards_[s];
    // pending goes up before the batch is visible anywhere, so a flush()
    // racing this submit can never observe "all done" mid-handoff.
    shard.pending_batches.fetch_add(1, std::memory_order_acq_rel);
    // Bounded queue full = backpressure: this producer waits with bounded
    // exponential backoff (spin -> pause -> yield; the batch is already
    // partitioned, and blocking here is the kBlock policy — the sink
    // never grows an unbounded backlog).
    Backoff backoff;
    while (!shard.queue.try_push(std::move(staged[s]))) {
      backoff.wait();
    }
    // Publish after the push: a worker that observes queued > 0 is
    // guaranteed to find the batch (release pairs with the worker's
    // acquire load).
    shard.queued.fetch_add(1, std::memory_order_release);
    {
      // Empty critical section: the worker either holds the mutex and is
      // about to re-check its predicate, or is already asleep and the
      // notify below lands after it released the mutex.
      MutexLock lock(shard.mutex);
    }
    shard.wake.notify_one();
  }
}

void ShardedSink::flush() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    shard->idle.wait(shard->mutex, [&] {
      return shard->pending_batches.load(std::memory_order_acquire) == 0;
    });
  }
  if (!async_mode_) return;
  // Every flushed packet's events are published (workers publish inside
  // at_sink, before marking the batch done); wait for the relay to deliver
  // them so post-flush reads of observer state are race-free. consumed is
  // bumped with release *after* each callback returns, so the acquire
  // loads here order those callbacks before flush()'s return.
  for (auto& shard : shards_) {
    Backoff backoff;
    while (shard->obs_consumed.load(std::memory_order_acquire) <
           shard->obs_published.load(std::memory_order_acquire)) {
      if (relay_sleeping_.load(std::memory_order_seq_cst)) wake_relay();
      backoff.wait();
    }
  }
}

void ShardedSink::add_observer(SinkObserver* observer) {
  MutexLock lock(observer_mutex_);
  observers_.push_back(observer);
}

// --- async observer relay ---------------------------------------------------
//
// Wakeup handshake: producers bump obs_published (seq_cst) then load
// relay_sleeping_ (seq_cst) and only notify when it reads true; the relay
// stores relay_sleeping_ = true (seq_cst) before its wait predicate reads
// the counters. In the seq_cst total order, a producer that misses the
// sleeping flag must have published before the relay's predicate read, so
// the predicate sees the event — no missed wakeups, and the fast path
// (relay awake) costs the producer one uncontended atomic load, no mutex.

void ShardedSink::wake_relay() {
  {
    // Empty critical section, same reasoning as the worker wakeup above:
    // the relay either holds the mutex and is about to re-check its
    // predicate, or is asleep and the notify lands after it released it.
    MutexLock lock(relay_mutex_);
  }
  relay_wake_.notify_one();
}

// Priority admission: only minimum-priority query events may be shed, and
// memory reports never are — they carry the drop accounting an operator
// needs to *see* the shedding. Consulted only on the full-ring slow path,
// so the common (not-full) publish stays map-free.
bool ShardedSink::event_sheddable(const ObserverEvent& event) const {
  if (event.kind == ObserverEvent::Kind::kMemory) return false;
  const auto it = sheddable_.find(event.query);
  return it != sheddable_.end() && it->second;
}

void ShardedSink::publish_event(Shard& shard, ObserverEvent&& event) {
  if (!shard.obs_ring->try_push(std::move(event))) {
    if (async_policy_ == OverflowPolicy::kDropNewest &&
        event_sheddable(event)) {
      // Exact accounting: every emitted event lands in published or
      // dropped, never both, never neither.
      shard.obs_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // kBlock — or a protected (higher-priority / memory-report) event
    // under kDropNewest: bounded exponential backoff until the relay
    // frees a slot. Wake the relay only if it is actually asleep — taking
    // relay_mutex_ on every retry would contend with the thread doing the
    // draining.
    shard.obs_blocked.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    do {
      if (relay_sleeping_.load(std::memory_order_seq_cst)) wake_relay();
      backoff.wait();
    } while (!shard.obs_ring->try_push(std::move(event)));
  }
  shard.obs_published.fetch_add(1, std::memory_order_seq_cst);
  if (relay_sleeping_.load(std::memory_order_seq_cst)) wake_relay();
}

void ShardedSink::deliver_event(const ObserverEvent& event) {
  MutexLock lock(observer_mutex_);
  switch (event.kind) {
    case ObserverEvent::Kind::kObservation:
      for (SinkObserver* o : observers_) {
        o->on_observation(event.ctx, event.query, event.obs);
      }
      break;
    case ObserverEvent::Kind::kPath:
      for (SinkObserver* o : observers_) {
        o->on_path_decoded(event.ctx, event.query, event.path);
      }
      break;
    case ObserverEvent::Kind::kMemory:
      for (SinkObserver* o : observers_) {
        o->on_memory_report(*event.memory);
      }
      break;
  }
}

std::size_t ShardedSink::drain_rings() {
  std::size_t delivered = 0;
  for (auto& shard : shards_) {
    ObserverEvent event;
    while (shard->obs_ring->try_pop(event)) {
      deliver_event(event);
      // After the callback: flush()'s acquire read of consumed must order
      // the callback's side effects before flush() returns.
      shard->obs_consumed.fetch_add(1, std::memory_order_release);
      ++delivered;
    }
  }
  return delivered;
}

void ShardedSink::relay_loop() {
  const auto work_pending = [&] {
    for (auto& shard : shards_) {
      if (shard->obs_published.load(std::memory_order_seq_cst) !=
          shard->obs_consumed.load(std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  };
  for (;;) {
    if (drain_rings() > 0) continue;
    MutexLock lock(relay_mutex_);
    relay_sleeping_.store(true, std::memory_order_seq_cst);
    relay_wake_.wait(relay_mutex_, [&] {
      return relay_stop_.load(std::memory_order_acquire) || work_pending();
    });
    relay_sleeping_.store(false, std::memory_order_seq_cst);
    if (relay_stop_.load(std::memory_order_acquire)) {
      lock.unlock();
      // Stop is only set after the workers joined: one final drain makes
      // kBlock delivery loss-free through destruction.
      drain_rings();
      return;
    }
  }
}

TransportCounters ShardedSink::observer_counters() const {
  TransportCounters t;
  t.active = async_mode_;
  for (const auto& shard : shards_) {
    t.observer_events +=
        shard->obs_published.load(std::memory_order_acquire);
    t.observer_drops += shard->obs_dropped.load(std::memory_order_acquire);
    t.observer_blocked_waits +=
        shard->obs_blocked.load(std::memory_order_acquire);
  }
  return t;
}

std::uint64_t ShardedSink::packets_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->processed.load(std::memory_order_acquire);
  }
  return total;
}

MemoryReport ShardedSink::memory_report() const {
  MemoryReport merged = shards_[0]->fw->memory_report();
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    const MemoryReport part = shards_[s]->fw->memory_report();
    // Replicas are built from one Builder: same queries, same order.
    for (std::size_t q = 0; q < merged.query_count; ++q) {
      QueryMemoryStats& into = merged.queries[q];
      const QueryMemoryStats& from = part.queries[q];
      into.used_bytes += from.used_bytes;
      into.capacity_bytes += from.capacity_bytes;
      into.peak_used_bytes += from.peak_used_bytes;
      into.max_entry_bytes = std::max(into.max_entry_bytes,
                                      from.max_entry_bytes);
      into.flows += from.flows;
      into.evictions += from.evictions;
      into.created += from.created;
      into.admissions_rejected += from.admissions_rejected;
      into.doorkeeper_hits += from.doorkeeper_hits;
      into.frequency_evictions += from.frequency_evictions;
      into.over_budget = into.over_budget || from.over_budget;
    }
    merged.total.used_bytes += part.total.used_bytes;
    merged.total.capacity_bytes += part.total.capacity_bytes;
    merged.total.flows += part.total.flows;
    merged.total.evictions += part.total.evictions;
    merged.total.admissions_rejected += part.total.admissions_rejected;
    merged.total.over_budget =
        merged.total.over_budget || part.total.over_budget;
  }
  return merged;
}

void ShardedSink::worker_loop(Shard& shard) {
  SinkReport scratch;
  for (;;) {
    // Checked between batches, not just when idle: once destruction sets
    // stop, the remaining backlog must be discarded (by ~ShardedSink),
    // not processed against possibly-dead caller buffers.
    if (shard.stop.load(std::memory_order_acquire)) return;
    Batch batch;
    if (shard.queue.try_pop(batch)) {
      shard.queued.fetch_sub(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < batch.packets.size(); ++i) {
        SinkReport& out = batch.reports.empty() ? scratch : *batch.reports[i];
        // Reuse the partition key submit() hashed for shard routing.
        shard.fw->at_sink(*batch.packets[i], batch.k, out,
                          FlowKeyHint{partition_def_, batch.keys[i]});
      }
      shard.processed.fetch_add(batch.packets.size(),
                                std::memory_order_release);
      if (shard.pending_batches.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        // Last outstanding batch: wake flush(). Taking the mutex orders
        // this notify after any flush() entered its predicate check.
        MutexLock lock(shard.mutex);
        shard.idle.notify_all();
      }
      continue;
    }
    MutexLock lock(shard.mutex);
    shard.wake.wait(shard.mutex, [&] {
      return shard.stop.load(std::memory_order_acquire) ||
             shard.queued.load(std::memory_order_acquire) > 0;
    });
    if (shard.stop.load(std::memory_order_acquire)) return;
  }
}

// --- merged inference -------------------------------------------------------

std::optional<std::vector<SwitchId>> ShardedSink::flow_path(
    std::string_view query, const FiveTuple& tuple) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.flow_path(query, fw.flow_key_for(query, tuple));
}

double ShardedSink::path_progress(std::string_view query,
                                  const FiveTuple& tuple) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.path_progress(query, fw.flow_key_for(query, tuple));
}

std::optional<double> ShardedSink::latency_quantile(std::string_view query,
                                                    const FiveTuple& tuple,
                                                    HopIndex hop,
                                                    double phi) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.latency_quantile(query, fw.flow_key_for(query, tuple), hop, phi);
}

std::vector<std::uint64_t> ShardedSink::latency_frequent_values(
    std::string_view query, const FiveTuple& tuple, HopIndex hop,
    double theta) const {
  const PintFramework& fw = shard(shard_of(tuple));
  return fw.latency_frequent_values(query, fw.flow_key_for(query, tuple), hop,
                                    theta);
}

}  // namespace pint
