#include "pint/framework.h"

#include <stdexcept>

namespace pint {

PintFramework::PintFramework(FrameworkConfig config,
                             std::vector<Query> queries,
                             std::vector<std::uint64_t> switch_ids)
    : config_(config), switch_ids_(std::move(switch_ids)) {
  engine_ = std::make_unique<QueryEngine>(queries, config.global_bit_budget,
                                          config.seed);
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& q = queries[qi];
    unsigned lanes = 1;
    switch (q.aggregation) {
      case AggregationType::kStaticPerFlow: {
        if (path_query_.has_value())
          throw std::invalid_argument("one static query supported");
        PathTracingConfig pc = config_.path;
        // Respect the query's bit budget: instances * bits must fit it.
        if (pc.bits * pc.instances != q.bit_budget) {
          pc.bits = q.bit_budget / pc.instances;
          if (pc.bits == 0)
            throw std::invalid_argument("bit budget below instance count");
        }
        path_query_.emplace(pc, config_.seed ^ 0x57A71C);
        lanes = pc.instances;
        break;
      }
      case AggregationType::kDynamicPerFlow: {
        if (latency_query_.has_value())
          throw std::invalid_argument("one dynamic query supported");
        DynamicAggregationConfig dc = config_.latency;
        dc.bits = q.bit_budget;
        latency_query_.emplace(dc, config_.seed ^ 0xD14A);
        break;
      }
      case AggregationType::kPerPacket: {
        if (perpacket_query_.has_value())
          throw std::invalid_argument("one per-packet query supported");
        PerPacketConfig pp = config_.perpacket;
        pp.bits = q.bit_budget;
        perpacket_query_.emplace(pp, config_.seed ^ 0xCC);
        break;
      }
    }
    bindings_.push_back(QueryBinding{q, qi, lanes});
  }
}

std::size_t PintFramework::lanes_for_set(const QuerySet& set) const {
  std::size_t lanes = 0;
  for (std::size_t qi : set.query_indices) lanes += bindings_[qi].lanes;
  return lanes;
}

void PintFramework::at_switch(Packet& packet, HopIndex i,
                              const SwitchView& view) {
  const QuerySet& set = engine_->set_for_packet(packet.id);
  const std::size_t lanes_needed = lanes_for_set(set);
  if (packet.digests.size() != lanes_needed) {
    // First hop (PINT Source) sizes the digest; all later hops agree because
    // the set is a function of the packet id alone.
    packet.digests.assign(lanes_needed, 0);
  }
  std::size_t lane = 0;
  for (std::size_t qi : set.query_indices) {
    const QueryBinding& b = bindings_[qi];
    switch (b.query.aggregation) {
      case AggregationType::kStaticPerFlow: {
        std::vector<Digest> sub(packet.digests.begin() + lane,
                                packet.digests.begin() + lane + b.lanes);
        path_query_->encode(packet.id, i, view.id, sub);
        std::copy(sub.begin(), sub.end(), packet.digests.begin() + lane);
        break;
      }
      case AggregationType::kDynamicPerFlow:
        packet.digests[lane] = latency_query_->encode_step(
            packet.id, i, packet.digests[lane], view.hop_latency_ns);
        break;
      case AggregationType::kPerPacket:
        packet.digests[lane] = perpacket_query_->encode_step(
            packet.id, packet.digests[lane], view.link_utilization);
        break;
    }
    lane += b.lanes;
  }
  ++packet.hops_traversed;
}

SinkReport PintFramework::at_sink(const Packet& packet, unsigned k) {
  SinkReport report;
  const QuerySet& set = engine_->set_for_packet(packet.id);
  if (packet.digests.size() != lanes_for_set(set)) return report;  // no digest
  const std::uint64_t fkey = flow_key(packet.tuple, FlowDefinition::kFiveTuple);
  flow_hops_[fkey] = k;
  std::size_t lane = 0;
  for (std::size_t qi : set.query_indices) {
    const QueryBinding& b = bindings_[qi];
    switch (b.query.aggregation) {
      case AggregationType::kStaticPerFlow: {
        auto it = path_decoders_.find(fkey);
        if (it == path_decoders_.end()) {
          it = path_decoders_
                   .emplace(fkey, path_query_->make_decoder(k, switch_ids_))
                   .first;
        }
        if (!it->second.complete()) {
          std::span<const Digest> lanes(packet.digests.data() + lane,
                                        b.lanes);
          it->second.add_packet(packet.id, lanes);
        }
        report.path_digest_recorded = true;
        break;
      }
      case AggregationType::kDynamicPerFlow: {
        auto it = latency_recorders_.find(fkey);
        if (it == latency_recorders_.end()) {
          it = latency_recorders_
                   .emplace(fkey,
                            FlowLatencyRecorder(
                                k, b.query.space_budget_bytes,
                                config_.seed ^ fkey))
                   .first;
        }
        it->second.add(
            latency_query_->decode(packet.id, packet.digests[lane], k));
        report.latency_sample_recorded = true;
        break;
      }
      case AggregationType::kPerPacket:
        report.bottleneck_utilization =
            perpacket_query_->decode(packet.digests[lane]);
        break;
    }
    lane += b.lanes;
  }
  return report;
}

std::optional<std::vector<SwitchId>> PintFramework::flow_path(
    std::uint64_t fkey) const {
  auto it = path_decoders_.find(fkey);
  if (it == path_decoders_.end() || !it->second.complete())
    return std::nullopt;
  std::vector<SwitchId> out;
  for (std::uint64_t v : it->second.path())
    out.push_back(static_cast<SwitchId>(v));
  return out;
}

double PintFramework::path_progress(std::uint64_t fkey) const {
  auto it = path_decoders_.find(fkey);
  if (it == path_decoders_.end()) return 0.0;
  auto hops = flow_hops_.find(fkey);
  const unsigned k = hops == flow_hops_.end() ? 0 : hops->second;
  if (k == 0) return 0.0;
  return static_cast<double>(it->second.resolved_count()) / k;
}

std::optional<double> PintFramework::latency_quantile(std::uint64_t fkey,
                                                      HopIndex hop,
                                                      double phi) const {
  auto it = latency_recorders_.find(fkey);
  if (it == latency_recorders_.end()) return std::nullopt;
  return it->second.quantile(hop, phi);
}

std::vector<std::uint64_t> PintFramework::latency_frequent_values(
    std::uint64_t fkey, HopIndex hop, double theta) const {
  auto it = latency_recorders_.find(fkey);
  if (it == latency_recorders_.end()) return {};
  return it->second.frequent_values(hop, theta);
}

}  // namespace pint
