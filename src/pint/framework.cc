#include "pint/framework.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "pint/wire_format.h"

namespace pint {

namespace {

// Per-aggregation hash salts. The first query of each family derives the
// exact seed the pre-Builder facade used, so the Section 6.4 three-query mix
// behaves identically; later same-family queries mix in their ordinal.
std::uint64_t aggregation_salt(AggregationType aggregation) {
  switch (aggregation) {
    case AggregationType::kStaticPerFlow:
      return 0x57A71C;
    case AggregationType::kDynamicPerFlow:
      return 0xD14A;
    case AggregationType::kPerPacket:
      return 0xCC;
  }
  return 0;
}

std::uint64_t binding_seed(std::uint64_t seed, AggregationType aggregation,
                           unsigned family_ordinal) {
  return seed ^ aggregation_salt(aggregation) ^
         (static_cast<std::uint64_t>(family_ordinal) * 0x9E3779B97F4A7C15ULL);
}

std::string_view default_extractor(AggregationType aggregation) {
  switch (aggregation) {
    case AggregationType::kStaticPerFlow:
      return extractor::kSwitchId;
    case AggregationType::kDynamicPerFlow:
      return extractor::kHopLatency;
    case AggregationType::kPerPacket:
      return extractor::kLinkUtilization;
  }
  return extractor::kSwitchId;
}

}  // namespace

const char* to_string(BuildErrorCode code) {
  switch (code) {
    case BuildErrorCode::kNoQueries:
      return "no queries registered";
    case BuildErrorCode::kEmptyQueryName:
      return "query name empty";
    case BuildErrorCode::kDuplicateQueryName:
      return "duplicate query name";
    case BuildErrorCode::kDuplicateExtractor:
      return "duplicate extractor name";
    case BuildErrorCode::kUnknownExtractor:
      return "unknown extractor";
    case BuildErrorCode::kBadBitBudget:
      return "query bit budget outside the global budget";
    case BuildErrorCode::kBadFrequency:
      return "query frequency outside (0, 1]";
    case BuildErrorCode::kBudgetBelowInstanceCount:
      return "bit budget below instance count";
    case BuildErrorCode::kEmptySwitchUniverse:
      return "static per-flow query needs a switch universe";
    case BuildErrorCode::kInfeasiblePlan:
      return "query mix infeasible within the global bit budget";
    case BuildErrorCode::kTooManyConcurrentQueries:
      return "execution plan set exceeds SinkReport capacity";
    case BuildErrorCode::kInconsistentMemoryBudget:
      return "inconsistent Recording-Module memory budget";
  }
  return "unknown build error";
}

// --- Builder ----------------------------------------------------------------

PintFramework::Builder::Builder() = default;
PintFramework::Builder::~Builder() = default;
PintFramework::Builder::Builder(Builder&&) noexcept = default;
PintFramework::Builder& PintFramework::Builder::operator=(Builder&&) noexcept =
    default;
PintFramework::Builder::Builder(const Builder&) = default;
PintFramework::Builder& PintFramework::Builder::operator=(const Builder&) =
    default;

PintFramework::Builder& PintFramework::Builder::global_bit_budget(
    unsigned bits) {
  budget_ = bits;
  return *this;
}

PintFramework::Builder& PintFramework::Builder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

PintFramework::Builder& PintFramework::Builder::memory_ceiling_bytes(
    std::size_t bytes) {
  memory_ceiling_ = bytes;
  return *this;
}

PintFramework::Builder& PintFramework::Builder::memory_report_interval_packets(
    std::uint64_t packets) {
  memory_report_interval_ = packets;
  return *this;
}

PintFramework::Builder& PintFramework::Builder::memory_report_interval(
    std::chrono::nanoseconds interval) {
  memory_report_interval_time_ =
      interval.count() < 0 ? std::chrono::nanoseconds{0} : interval;
  return *this;
}

PintFramework::Builder& PintFramework::Builder::async_observers(
    std::size_t depth, OverflowPolicy policy, unsigned relay_threads) {
  if (relay_threads == 0) {
    throw std::invalid_argument("async_observers needs >= 1 relay thread");
  }
  async_depth_ = depth;
  async_policy_ = policy;
  async_relay_threads_ = relay_threads;
  return *this;
}

PintFramework::Builder& PintFramework::Builder::recording_arena(bool enabled) {
  recording_arena_ = enabled;
  return *this;
}

PintFramework::Builder& PintFramework::Builder::default_store_policy(
    StorePolicyKind kind) {
  default_policy_ = kind;
  return *this;
}

PintFramework::Builder PintFramework::Builder::with_memory_divided(
    unsigned parts) const {
  if (parts == 0) throw std::invalid_argument("parts > 0");
  Builder out(*this);
  // The ceiling never rounds from bounded down to "unbounded" (0). A
  // per-query budget, however, must not be clamped up: budgets rounded up
  // could sum past the divided ceiling and fail a build the undivided
  // Builder accepts. A budget that divides to zero instead falls back to
  // "share the remainder", which can never over-commit.
  if (memory_ceiling_ != 0) {
    out.memory_ceiling_ = std::max<std::size_t>(1, memory_ceiling_ / parts);
  }
  for (QuerySpec& spec : out.specs_) {
    if (spec.memory_budget_bytes == 0) continue;
    spec.memory_budget_bytes = spec.memory_budget_bytes / parts;
    if (spec.memory_budget_bytes == 0 && memory_ceiling_ == 0) {
      // Without a ceiling there is no remainder to fall back to, and a
      // zero budget would mean *unbounded* — a bounded config must never
      // divide into an unbounded one. With no ceiling there is also
      // nothing to over-commit, so clamping up is safe.
      spec.memory_budget_bytes = 1;
    }
  }
  return out;
}

PintFramework::Builder& PintFramework::Builder::switch_universe(
    std::vector<std::uint64_t> ids) {
  universe_ = std::move(ids);
  return *this;
}

PintFramework::Builder& PintFramework::Builder::register_extractor(
    std::string name, ValueExtractor fn) {
  if (!registry_.add(name, std::move(fn)) &&
      !duplicate_extractor_.has_value()) {
    duplicate_extractor_ = std::move(name);
  }
  return *this;
}

PintFramework::Builder& PintFramework::Builder::add_query(QuerySpec spec) {
  specs_.push_back(std::move(spec));
  return *this;
}

PintFramework::Builder& PintFramework::Builder::add_observer(
    SinkObserver* observer) {
  observers_.push_back(observer);
  return *this;
}

BuildResult PintFramework::Builder::build() const {
  const auto fail = [](BuildErrorCode code, std::string detail) {
    BuildResult r;
    std::string message = to_string(code);
    if (!detail.empty()) message += ": " + detail;
    r.error = BuildError{code, std::move(message)};
    return r;
  };

  if (duplicate_extractor_.has_value()) {
    return fail(BuildErrorCode::kDuplicateExtractor, *duplicate_extractor_);
  }
  if (specs_.empty()) return fail(BuildErrorCode::kNoQueries, "");

  std::unordered_set<std::string_view> names;
  std::unordered_map<AggregationType, unsigned> family_counts;
  auto fw = std::unique_ptr<PintFramework>(new PintFramework());
  fw->seed_ = seed_;
  fw->switch_ids_ = universe_;
  fw->observers_ = observers_;

  std::vector<Query> engine_queries;
  engine_queries.reserve(specs_.size());

  for (const QuerySpec& spec : specs_) {
    const Query& q = spec.query;
    if (q.name.empty()) return fail(BuildErrorCode::kEmptyQueryName, "");
    if (!names.insert(q.name).second) {
      return fail(BuildErrorCode::kDuplicateQueryName, q.name);
    }
    if (q.bit_budget == 0 || q.bit_budget > budget_) {
      return fail(BuildErrorCode::kBadBitBudget, q.name);
    }
    if (q.frequency <= 0.0 || q.frequency > 1.0) {
      return fail(BuildErrorCode::kBadFrequency, q.name);
    }
    const std::string_view extractor_name =
        q.extractor.empty() ? default_extractor(q.aggregation)
                            : std::string_view(q.extractor);
    const ValueExtractor* extract = registry_.find(extractor_name);
    if (extract == nullptr) {
      return fail(BuildErrorCode::kUnknownExtractor,
                  "'" + std::string(extractor_name) + "' for query '" +
                      q.name + "'");
    }

    Binding b;
    b.spec = spec;
    b.extract = *extract;
    const unsigned ordinal = family_counts[q.aggregation]++;
    b.recorder_salt =
        static_cast<std::uint64_t>(ordinal) * 0x9E3779B97F4A7C15ULL;
    const std::uint64_t module_seed =
        binding_seed(seed_, q.aggregation, ordinal);
    switch (q.aggregation) {
      case AggregationType::kStaticPerFlow: {
        if (universe_.empty()) {
          return fail(BuildErrorCode::kEmptySwitchUniverse, q.name);
        }
        PathTracingConfig pc = b.spec.path;
        // Respect the query's bit budget: instances * bits must fit it.
        if (pc.bits * pc.instances != q.bit_budget) {
          pc.bits = pc.instances == 0 ? 0 : q.bit_budget / pc.instances;
          if (pc.bits == 0) {
            return fail(BuildErrorCode::kBudgetBelowInstanceCount, q.name);
          }
        }
        b.spec.path = pc;
        b.path.emplace(pc, module_seed);
        b.lanes = pc.instances;
        break;
      }
      case AggregationType::kDynamicPerFlow: {
        DynamicAggregationConfig dc = b.spec.dynamic;
        dc.bits = q.bit_budget;
        b.spec.dynamic = dc;
        b.dynamic.emplace(dc, module_seed);
        break;
      }
      case AggregationType::kPerPacket: {
        PerPacketConfig pp = b.spec.perpacket;
        pp.bits = q.bit_budget;
        b.spec.perpacket = pp;
        b.perpacket.emplace(pp, module_seed);
        break;
      }
    }
    fw->bindings_.push_back(std::move(b));
    engine_queries.push_back(q);
  }

  // Recording-Module budgets: explicit per-query budgets carve shares out
  // of the ceiling; the remainder splits evenly across the unbudgeted
  // per-flow queries. Per-packet queries keep no sink state and may not
  // carry a budget.
  std::size_t explicit_total = 0;
  std::size_t unbudgeted_per_flow = 0;
  for (const Binding& b : fw->bindings_) {
    const Query& q = b.spec.query;
    if (q.aggregation == AggregationType::kPerPacket) {
      if (b.spec.memory_budget_bytes > 0) {
        return fail(BuildErrorCode::kInconsistentMemoryBudget,
                    "'" + q.name +
                        "' is per-packet and keeps no per-flow sink state");
      }
      if (b.spec.store_policy.has_value() &&
          *b.spec.store_policy != StorePolicyKind::kLru) {
        return fail(BuildErrorCode::kInconsistentMemoryBudget,
                    "'" + q.name +
                        "' is per-packet and keeps no per-flow sink state "
                        "for a store policy to govern");
      }
      continue;
    }
    if (b.spec.memory_budget_bytes > 0) {
      explicit_total += b.spec.memory_budget_bytes;
    } else {
      ++unbudgeted_per_flow;
    }
  }
  std::size_t share = 0;
  if (memory_ceiling_ > 0) {
    if (explicit_total > memory_ceiling_) {
      return fail(BuildErrorCode::kInconsistentMemoryBudget,
                  std::string("per-query budgets total ") +
                      std::to_string(explicit_total) + " bytes, above the " +
                      std::to_string(memory_ceiling_) + "-byte ceiling");
    }
    if (unbudgeted_per_flow > 0) {
      share = (memory_ceiling_ - explicit_total) / unbudgeted_per_flow;
      if (share == 0) {
        return fail(BuildErrorCode::kInconsistentMemoryBudget,
                    std::string("ceiling leaves no budget for ") +
                        std::to_string(unbudgeted_per_flow) +
                        " unbudgeted per-flow query(ies)");
      }
    }
  }
  for (Binding& b : fw->bindings_) {
    const Query& q = b.spec.query;
    if (!recording_arena_) {
      // Stores default to arena-backed nodes; flip to the heap before any
      // flow is recorded (the toggle requires an empty store).
      b.decoders.set_arena(false);
      b.recorders.set_arena(false);
    }
    if (q.aggregation == AggregationType::kPerPacket) continue;
    const std::size_t cap =
        b.spec.memory_budget_bytes > 0 ? b.spec.memory_budget_bytes : share;
    // Per-query policy (Builder default unless the spec overrides it).
    // kLru yields a nullptr from make_store_policy — no policy object, the
    // store's original code path. Each store gets its own policy instance
    // seeded per binding so same-policy queries keep independent sketch
    // randomness.
    const StorePolicyKind policy_kind =
        b.spec.store_policy.value_or(default_policy_);
    const std::uint64_t policy_seed =
        seed_ ^ 0xB0'11C1ULL ^ b.recorder_salt;
    if (q.aggregation == AggregationType::kStaticPerFlow) {
      b.decoders.set_capacity_bytes(cap);
      b.decoders.set_policy(make_store_policy(policy_kind, policy_seed));
    } else {
      b.recorders.set_capacity_bytes(cap);
      b.recorders.set_policy(make_store_policy(policy_kind, policy_seed));
    }
  }
  fw->memory_ceiling_ = memory_ceiling_;
  fw->memory_bounded_ = memory_ceiling_ > 0 || explicit_total > 0;
  // The transport shedding class: only queries at the minimum registered
  // priority are droppable under pressure. All-default priorities put
  // every query in it — shedding then matches the priority-free behavior.
  fw->min_priority_ = fw->bindings_.front().spec.priority;
  for (const Binding& b : fw->bindings_) {
    fw->min_priority_ = std::min(fw->min_priority_, b.spec.priority);
  }
  fw->memory_report_interval_ = memory_report_interval_;
  fw->memory_report_interval_time_ = memory_report_interval_time_;
  fw->last_timed_memory_report_ = std::chrono::steady_clock::now();

  try {
    fw->engine_ =
        std::make_unique<QueryEngine>(std::move(engine_queries), budget_,
                                      seed_);
  } catch (const std::invalid_argument& e) {
    return fail(BuildErrorCode::kInfeasiblePlan, e.what());
  }

  for (const QuerySet& set : fw->engine_->plan().sets) {
    if (set.query_indices.size() > SinkReport::kMaxQueriesPerPacket) {
      return fail(BuildErrorCode::kTooManyConcurrentQueries, "");
    }
    fw->max_lanes_ = std::max(fw->max_lanes_, fw->lanes_for_set(set));
  }
  fw->extract_scratch_.resize(fw->bindings_.size());

  BuildResult r;
  r.framework = std::move(fw);
  return r;
}

std::unique_ptr<PintFramework> PintFramework::Builder::build_or_throw() const {
  BuildResult r = build();
  if (!r.ok()) throw std::invalid_argument(r.error->message);
  return std::move(r.framework);
}

// --- switch side ------------------------------------------------------------

std::size_t PintFramework::lanes_for_set(const QuerySet& set) const {
  std::size_t lanes = 0;
  for (std::size_t qi : set.query_indices) lanes += bindings_[qi].lanes;
  return lanes;
}

void PintFramework::encode_one(Packet& packet, HopIndex i,
                               const SwitchView* view,
                               const double* hoisted) {
  const QuerySet& set = engine_->set_for_packet(packet.id);
  const std::size_t lanes_needed = lanes_for_set(set);
  if (packet.digests.size() != lanes_needed) {
    // First hop (PINT Source) sizes the digest; all later hops agree because
    // the set is a function of the packet id alone.
    packet.digests.assign(lanes_needed, 0);
  }
  std::size_t lane = 0;
  for (std::size_t qi : set.query_indices) {
    Binding& b = bindings_[qi];
    const double value = hoisted != nullptr ? hoisted[qi] : b.extract(*view);
    switch (b.spec.query.aggregation) {
      case AggregationType::kStaticPerFlow:
        b.path->encode(packet.id, i, static_cast<SwitchId>(value),
                       std::span<Digest>(packet.digests.data() + lane,
                                         b.lanes));
        break;
      case AggregationType::kDynamicPerFlow:
        packet.digests[lane] =
            b.dynamic->encode_step(packet.id, i, packet.digests[lane], value);
        break;
      case AggregationType::kPerPacket:
        packet.digests[lane] =
            b.perpacket->encode_step(packet.id, packet.digests[lane], value);
        break;
    }
    lane += b.lanes;
  }
  ++packet.hops_traversed;
}

void PintFramework::at_switch(Packet& packet, HopIndex i,
                              const SwitchView& view) {
  encode_one(packet, i, &view, nullptr);
}

void PintFramework::at_switch(std::span<Packet> packets, HopIndex i,
                              const SwitchView& view) {
  // The view is constant across the batch: evaluate each extractor once,
  // not once per packet.
  for (std::size_t qi = 0; qi < bindings_.size(); ++qi) {
    extract_scratch_[qi] = bindings_[qi].extract(view);
  }
  for (Packet& packet : packets) {
    encode_one(packet, i, nullptr, extract_scratch_.data());
  }
}

// --- sink side --------------------------------------------------------------

void PintFramework::sink_one(const Packet& packet, unsigned k,
                             SinkReport& report, const FlowKeyHint* hint) {
  report.clear();
  const QuerySet& set = engine_->set_for_packet(packet.id);
  if (set.query_indices.empty() ||
      packet.digests.size() != lanes_for_set(set)) {  // no digest to decode
    // Still stamp the counters: a bounded framework's reports must carry
    // them on every packet, decodable or not.
    if (memory_bounded_) fill_memory_counters(report.memory);
    heartbeat_tick();
    return;
  }
  // Queries usually share a flow definition: hash the tuple at most once
  // per definition per packet — and not at all for a definition the caller
  // already hashed (ShardedSink's shard-routing key arrives as `hint`).
  constexpr std::size_t kNumFlowDefs = 4;
  std::array<std::uint64_t, kNumFlowDefs> key_cache;
  std::uint8_t key_computed = 0;
  if (hint != nullptr) {
    const auto d = static_cast<std::size_t>(hint->def);
    key_cache[d] = hint->key;
    key_computed = static_cast<std::uint8_t>(1u << d);
  }
  const auto cached_flow_key = [&](FlowDefinition def) {
    const auto d = static_cast<std::size_t>(def);
    if (!((key_computed >> d) & 1u)) {
      key_cache[d] = flow_key(packet.tuple, def);
      key_computed |= static_cast<std::uint8_t>(1u << d);
    }
    return key_cache[d];
  };
  std::size_t lane = 0;
  for (std::size_t qi : set.query_indices) {
    Binding& b = bindings_[qi];
    const std::string_view name = b.spec.query.name;
    const std::uint64_t fkey = cached_flow_key(b.spec.query.flow_definition);
    const SinkContext ctx{packet.id, fkey, k};
    Observation obs;
    switch (b.spec.query.aggregation) {
      case AggregationType::kStaticPerFlow: {
        // Admission-aware: a policy that rejects the (non-resident) flow
        // sheds this query's digest at the store door — no observation, no
        // observer callback, exactly one admissions_rejected count. With
        // no policy installed try_touch never returns nullptr.
        HashedPathDecoder* decoder_p = b.decoders.try_touch(
            fkey, [&] { return b.path->make_decoder(k, switch_ids_); });
        if (decoder_p == nullptr) {
          lane += b.lanes;
          continue;
        }
        HashedPathDecoder& decoder = *decoder_p;
        const bool was_complete = decoder.complete();
        if (!was_complete) {
          decoder.add_packet(
              packet.id,
              std::span<const Digest>(packet.digests.data() + lane, b.lanes));
        }
        obs = PathDigestObservation{decoder.resolved_count(), decoder.k(),
                                    decoder.complete()};
        // Incomplete->complete edge: once per decoder residency. A flow
        // evicted and rebuilt under a memory ceiling announces again on
        // re-completion (see the Binding comment).
        if (!was_complete && decoder.complete()) {
          std::vector<SwitchId> path;
          path.reserve(decoder.k());
          for (std::uint64_t v : decoder.path()) {
            path.push_back(static_cast<SwitchId>(v));
          }
          for (SinkObserver* o : observers_) {
            o->on_path_decoded(ctx, name, path);
          }
        }
        break;
      }
      case AggregationType::kDynamicPerFlow: {
        FlowLatencyRecorder* recorder_p = b.recorders.try_touch(fkey, [&] {
          const std::uint64_t recorder_seed = seed_ ^ fkey ^ b.recorder_salt;
          return b.spec.recorder_factory
                     ? b.spec.recorder_factory(k, recorder_seed)
                     : FlowLatencyRecorder(k, b.spec.query.space_budget_bytes,
                                           recorder_seed);
        });
        if (recorder_p == nullptr) {  // shed by the admission policy
          lane += b.lanes;
          continue;
        }
        FlowLatencyRecorder& recorder = *recorder_p;
        const DynamicAggregationQuery::Sample sample =
            b.dynamic->decode(packet.id, packet.digests[lane], k);
        recorder.add(sample);
        obs = HopSampleObservation{sample.hop, sample.value};
        break;
      }
      case AggregationType::kPerPacket:
        obs = AggregateObservation{b.perpacket->decode(packet.digests[lane])};
        break;
    }
    report.add(name, obs);
    for (SinkObserver* o : observers_) o->on_observation(ctx, name, obs);
    lane += b.lanes;
  }
  if (memory_bounded_) {
    fill_memory_counters(report.memory);
    if (report.memory.evictions != last_reported_evictions_) {
      last_reported_evictions_ = report.memory.evictions;
      if (!observers_.empty()) {
        const MemoryReport mem = memory_report();
        for (SinkObserver* o : observers_) o->on_memory_report(mem);
      }
    }
  }
  heartbeat_tick();
}

void PintFramework::heartbeat_tick() {
  bool fire = false;
  if (memory_report_interval_ != 0 &&
      ++packets_since_memory_report_ >= memory_report_interval_) {
    packets_since_memory_report_ = 0;
    fire = true;
  }
  if (memory_report_interval_time_.count() > 0) {
    // Clock reads happen only with the time heartbeat configured, so the
    // default hot path stays syscall-free.
    const auto now = std::chrono::steady_clock::now();
    if (now - last_timed_memory_report_ >= memory_report_interval_time_) {
      last_timed_memory_report_ = now;
      fire = true;
    }
  }
  if (!fire || observers_.empty()) return;
  const MemoryReport mem = memory_report();
  for (SinkObserver* o : observers_) o->on_memory_report(mem);
}

SinkReport PintFramework::at_sink(const Packet& packet, unsigned k) {
  SinkReport report;
  sink_one(packet, k, report, nullptr);
  return report;
}

void PintFramework::at_sink(const Packet& packet, unsigned k,
                            SinkReport& report) {
  sink_one(packet, k, report, nullptr);
}

void PintFramework::at_sink(const Packet& packet, unsigned k,
                            SinkReport& report, const FlowKeyHint& hint) {
  sink_one(packet, k, report, &hint);
}

void PintFramework::at_sink(std::span<const Packet> packets, unsigned k,
                            std::span<SinkReport> reports) {
  if (!reports.empty() && reports.size() != packets.size()) {
    throw std::invalid_argument("reports must be empty or match packets");
  }
  SinkReport scratch;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    sink_one(packets[i], k, reports.empty() ? scratch : reports[i], nullptr);
  }
}

void PintFramework::add_observer(SinkObserver* observer) {
  observers_.push_back(observer);
}

// --- memory accounting ------------------------------------------------------

namespace {

// The per-flow stores differ only in state type; every counter read is
// shared. `visit_store` routes a binding's active store (if any) through
// one generic callable so the stat-filling logic exists once.
template <typename Binding, typename Fn>
void visit_store(const Binding& b, Fn&& fn) {
  switch (b.spec.query.aggregation) {
    case AggregationType::kStaticPerFlow:
      fn(b.decoders);
      break;
    case AggregationType::kDynamicPerFlow:
      fn(b.recorders);
      break;
    case AggregationType::kPerPacket:
      break;  // stateless at the sink
  }
}

}  // namespace

void PintFramework::fill_memory_counters(MemoryCounters& out) const {
  out = MemoryCounters{};
  out.bounded = memory_bounded_;
  out.capacity_bytes = memory_ceiling_;
  for (const Binding& b : bindings_) {
    visit_store(b, [&](const auto& store) {
      out.used_bytes += store.used_bytes();
      out.flows += store.flows();
      out.evictions += store.evictions();
      out.admissions_rejected += store.admissions_rejected();
      out.over_budget = out.over_budget || store.over_budget();
      if (memory_ceiling_ == 0) out.capacity_bytes += store.capacity_bytes();
    });
  }
}

MemoryReport PintFramework::memory_report() const {
  MemoryReport out;
  fill_memory_counters(out.total);
  for (const Binding& b : bindings_) {
    if (b.spec.query.aggregation == AggregationType::kPerPacket) continue;
    if (out.query_count == MemoryReport::kMaxQueries) break;
    QueryMemoryStats& q = out.queries[out.query_count++];
    q.query = b.spec.query.name;
    visit_store(b, [&](const auto& store) {
      q.used_bytes = store.used_bytes();
      q.capacity_bytes = store.capacity_bytes();
      q.peak_used_bytes = store.peak_used_bytes();
      q.max_entry_bytes = store.max_entry_bytes();
      q.flows = store.flows();
      q.evictions = store.evictions();
      q.created = store.created();
      q.over_budget = store.over_budget();
      q.policy = store.policy_kind();
      q.admissions_rejected = store.admissions_rejected();
      q.doorkeeper_hits = store.doorkeeper_hits();
      q.frequency_evictions = store.frequency_evictions();
    });
  }
  return out;
}

// --- wire format ------------------------------------------------------------

std::size_t PintFramework::lane_widths(PacketId packet,
                                       std::span<unsigned> out) const {
  const QuerySet& set = engine_->set_for_packet(packet);
  const std::size_t count = lanes_for_set(set);
  if (out.empty()) return count;
  if (out.size() < count) throw std::invalid_argument("lane buffer too small");
  std::size_t lane = 0;
  for (std::size_t qi : set.query_indices) {
    const Binding& b = bindings_[qi];
    const unsigned width = b.spec.query.aggregation ==
                                   AggregationType::kStaticPerFlow
                               ? b.spec.path.bits
                               : b.spec.query.bit_budget;
    for (unsigned inst = 0; inst < b.lanes; ++inst) out[lane++] = width;
  }
  return count;
}

std::vector<std::uint8_t> PintFramework::pack_wire(
    const Packet& packet) const {
  std::vector<unsigned> widths(max_lanes_);
  const std::size_t count = lane_widths(packet.id, widths);
  widths.resize(count);
  if (packet.digests.size() != count) {
    throw std::invalid_argument("packet digests do not match its query set");
  }
  return pack_digests(packet.digests, widths);
}

void PintFramework::unpack_wire(std::span<const std::uint8_t> bytes,
                                Packet& packet) const {
  std::vector<unsigned> widths(max_lanes_);
  const std::size_t count = lane_widths(packet.id, widths);
  widths.resize(count);
  packet.digests = unpack_digests(bytes, widths);
}

// --- introspection ----------------------------------------------------------

const PintFramework::Binding* PintFramework::find_binding(
    std::string_view query) const {
  for (const Binding& b : bindings_) {
    if (b.spec.query.name == query) return &b;
  }
  return nullptr;
}

const PintFramework::Binding* PintFramework::find_binding(
    AggregationType aggregation) const {
  for (const Binding& b : bindings_) {
    if (b.spec.query.aggregation == aggregation) return &b;
  }
  return nullptr;
}

const QuerySpec* PintFramework::spec(std::string_view query) const {
  const Binding* b = find_binding(query);
  return b == nullptr ? nullptr : &b->spec;
}

std::vector<std::string_view> PintFramework::query_names() const {
  std::vector<std::string_view> out;
  out.reserve(bindings_.size());
  for (const Binding& b : bindings_) out.push_back(b.spec.query.name);
  return out;
}

bool PintFramework::flow_resident(std::string_view query,
                                  std::uint64_t fkey) const {
  const Binding* b = find_binding(query);
  if (b == nullptr) return false;
  bool resident = false;
  visit_store(*b, [&](const auto& store) {
    resident = store.find(fkey) != nullptr;
  });
  return resident;
}

std::uint64_t PintFramework::flow_key_for(std::string_view query,
                                          const FiveTuple& tuple) const {
  const Binding* b = find_binding(query);
  return flow_key(tuple, b == nullptr ? FlowDefinition::kFiveTuple
                                      : b->spec.query.flow_definition);
}

// --- inference --------------------------------------------------------------

namespace {

std::optional<std::vector<SwitchId>> binding_flow_path(
    const RecordingStore<HashedPathDecoder>& decoders, std::uint64_t fkey) {
  const HashedPathDecoder* decoder = decoders.find(fkey);
  if (decoder == nullptr || !decoder->complete()) return std::nullopt;
  std::vector<SwitchId> out;
  out.reserve(decoder->k());
  for (std::uint64_t v : decoder->path()) {
    out.push_back(static_cast<SwitchId>(v));
  }
  return out;
}

}  // namespace

std::optional<std::vector<SwitchId>> PintFramework::flow_path(
    std::string_view query, std::uint64_t fkey) const {
  const Binding* b = find_binding(query);
  if (b == nullptr) return std::nullopt;
  return binding_flow_path(b->decoders, fkey);
}

std::optional<std::vector<SwitchId>> PintFramework::flow_path(
    std::uint64_t fkey) const {
  const Binding* b = find_binding(AggregationType::kStaticPerFlow);
  if (b == nullptr) return std::nullopt;
  return binding_flow_path(b->decoders, fkey);
}

double PintFramework::path_progress(std::string_view query,
                                    std::uint64_t fkey) const {
  const Binding* b = find_binding(query);
  if (b == nullptr) return 0.0;
  const HashedPathDecoder* decoder = b->decoders.find(fkey);
  if (decoder == nullptr || decoder->k() == 0) return 0.0;
  return static_cast<double>(decoder->resolved_count()) / decoder->k();
}

double PintFramework::path_progress(std::uint64_t fkey) const {
  const Binding* b = find_binding(AggregationType::kStaticPerFlow);
  return b == nullptr ? 0.0 : path_progress(b->spec.query.name, fkey);
}

std::optional<double> PintFramework::latency_quantile(std::string_view query,
                                                      std::uint64_t fkey,
                                                      HopIndex hop,
                                                      double phi) const {
  const Binding* b = find_binding(query);
  if (b == nullptr) return std::nullopt;
  const FlowLatencyRecorder* recorder = b->recorders.find(fkey);
  if (recorder == nullptr) return std::nullopt;
  return recorder->quantile(hop, phi);
}

std::optional<double> PintFramework::latency_quantile(std::uint64_t fkey,
                                                      HopIndex hop,
                                                      double phi) const {
  const Binding* b = find_binding(AggregationType::kDynamicPerFlow);
  if (b == nullptr) return std::nullopt;
  return latency_quantile(b->spec.query.name, fkey, hop, phi);
}

std::vector<std::uint64_t> PintFramework::latency_frequent_values(
    std::string_view query, std::uint64_t fkey, HopIndex hop,
    double theta) const {
  const Binding* b = find_binding(query);
  if (b == nullptr) return {};
  const FlowLatencyRecorder* recorder = b->recorders.find(fkey);
  if (recorder == nullptr) return {};
  return recorder->frequent_values(hop, theta);
}

std::vector<std::uint64_t> PintFramework::latency_frequent_values(
    std::uint64_t fkey, HopIndex hop, double theta) const {
  const Binding* b = find_binding(AggregationType::kDynamicPerFlow);
  if (b == nullptr) return {};
  return latency_frequent_values(b->spec.query.name, fkey, hop, theta);
}

}  // namespace pint
