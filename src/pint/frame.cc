#include "pint/frame.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace pint {

// Wire layout (all multi-byte integers little-endian, fixed width):
//
//   0  magic "PFR1" (4 bytes)
//   4  version (1 byte, currently 1)
//   5  type (1 byte: FrameType)
//   6  source id (u32)
//   10 epoch (u32)
//   14 sequence number (u32, per source, across all frame types)
//   18 payload length (u32)
//   22 CRC-32 over bytes [0, 22) and the payload (u32)
//   26 payload bytes
//
// Fixed-width fields (rather than varints) keep the header
// self-delimiting before validation: a reassembler can bound-check a
// candidate header without trusting any of its content.

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'P', 'F', 'R', '1'};
constexpr std::uint8_t kVersion = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

std::uint32_t crc32_update(std::uint32_t crc, const std::uint8_t* data,
                           std::size_t len) {
  const auto& table = crc_table();
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

std::uint32_t frame_crc(const std::uint8_t* header,
                        const std::uint8_t* payload, std::size_t payload_len) {
  std::uint32_t crc = 0xFFFFFFFFu;
  crc = crc32_update(crc, header, 22);
  crc = crc32_update(crc, payload, payload_len);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

const char* to_string(FrameErrorCode code) {
  switch (code) {
    case FrameErrorCode::kBadMagic:
      return "bytes are not a frame header";
    case FrameErrorCode::kBadVersion:
      return "unknown frame version";
    case FrameErrorCode::kBadType:
      return "unknown frame type";
    case FrameErrorCode::kOversizedPayload:
      return "declared payload above the reassembler limit";
    case FrameErrorCode::kChecksumMismatch:
      return "frame checksum mismatch";
    case FrameErrorCode::kSequenceGap:
      return "frames missing before this sequence number";
    case FrameErrorCode::kSequenceReversal:
      return "sequence number went backwards";
    case FrameErrorCode::kTruncatedStream:
      return "stream ended inside a frame";
  }
  return "unknown frame error";
}

std::uint32_t Frame::close_payload_count() const {
  if (type != FrameType::kEpochClose || payload.size() != 4) return 0;
  return read_u32(payload.data());
}

std::uint32_t FrameView::close_payload_count() const {
  if (type != FrameType::kEpochClose || payload.size() != 4) return 0;
  return read_u32(payload.data());
}

std::optional<FrameType> peek_frame_type(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) return std::nullopt;
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    return std::nullopt;
  }
  if (bytes[4] != kVersion) return std::nullopt;
  const std::uint8_t type = bytes[5];
  if (type > static_cast<std::uint8_t>(FrameType::kEpochClose)) {
    return std::nullopt;
  }
  return static_cast<FrameType>(type);
}

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint32_t source, std::uint32_t epoch, std::uint32_t seq,
                  std::span<const std::uint8_t> payload) {
  const std::size_t header_at = out.size();
  out.insert(out.end(), kMagic.begin(), kMagic.end());
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, source);
  put_u32(out, epoch);
  put_u32(out, seq);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  // CRC covers the header written so far plus the payload; write payload
  // after the checksum field.
  const std::uint32_t crc =
      frame_crc(out.data() + header_at, payload.data(), payload.size());
  put_u32(out, crc);
  out.insert(out.end(), payload.begin(), payload.end());
}

// --- FrameWriter ------------------------------------------------------------

std::vector<std::uint8_t> FrameWriter::make_open() {
  if (epoch_open_) {
    // Protocol misuse on our own side is a programming error, not wire
    // corruption; fail loudly.
    throw std::logic_error("FrameWriter: epoch already open");
  }
  ++epoch_;
  epoch_open_ = true;
  epoch_payloads_ = 0;
  std::vector<std::uint8_t> out;
  append_frame(out, FrameType::kEpochOpen, source_, epoch_, seq_++, {});
  return out;
}

std::vector<std::uint8_t> FrameWriter::make_payload(
    std::span<const std::uint8_t> bytes) {
  if (!epoch_open_) throw std::logic_error("FrameWriter: no open epoch");
  ++epoch_payloads_;
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderBytes + bytes.size());
  append_frame(out, FrameType::kPayload, source_, epoch_, seq_++, bytes);
  return out;
}

void FrameWriter::payload_dropped() {
  if (epoch_payloads_ == 0) {
    throw std::logic_error("FrameWriter: no payload to drop");
  }
  --epoch_payloads_;  // the close marker counts frames actually shipped
  ++dropped_;
}

std::vector<std::uint8_t> FrameWriter::make_close() {
  if (!epoch_open_) throw std::logic_error("FrameWriter: no open epoch");
  epoch_open_ = false;
  std::vector<std::uint8_t> count;
  put_u32(count, epoch_payloads_);
  std::vector<std::uint8_t> out;
  append_frame(out, FrameType::kEpochClose, source_, epoch_, seq_++, count);
  return out;
}

// --- FrameReassembler -------------------------------------------------------

void FrameReassembler::feed(std::span<const std::uint8_t> bytes) {
  // Reclaim the consumed prefix before growing; amortized O(1) per byte.
  // Only while no events are pending: parsed frames (and outstanding
  // FrameViews) reference payload bytes by absolute buffer offset, and
  // compaction would shift them.
  if (events_.empty() && cursor_ > 4096 && cursor_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(cursor_));
    cursor_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void FrameReassembler::finish() { finished_ = true; }

std::optional<FrameReassembler::ParsedEvent> FrameReassembler::next_parsed() {
  if (events_.empty()) parse_more();
  if (events_.empty()) return std::nullopt;
  // Swap-out instead of move-construct: dodges a GCC 12 spurious
  // -Wmaybe-uninitialized on moving a variant out of the deque.
  ParsedEvent event{FrameError{}};
  std::swap(event, events_.front());
  events_.pop_front();
  return event;
}

std::optional<FrameEvent> FrameReassembler::next() {
  std::optional<ParsedEvent> parsed = next_parsed();
  if (!parsed.has_value()) return std::nullopt;
  if (const auto* error = std::get_if<FrameError>(&*parsed)) return *error;
  const ParsedFrame& pf = std::get<ParsedFrame>(*parsed);
  Frame frame;
  frame.type = pf.type;
  frame.source = pf.source;
  frame.epoch = pf.epoch;
  frame.seq = pf.seq;
  frame.payload.assign(
      buffer_.begin() + static_cast<std::ptrdiff_t>(pf.payload_offset),
      buffer_.begin() +
          static_cast<std::ptrdiff_t>(pf.payload_offset + pf.payload_len));
  return frame;
}

std::optional<FrameViewEvent> FrameReassembler::next_view() {
  std::optional<ParsedEvent> parsed = next_parsed();
  if (!parsed.has_value()) return std::nullopt;
  if (const auto* error = std::get_if<FrameError>(&*parsed)) return *error;
  const ParsedFrame& pf = std::get<ParsedFrame>(*parsed);
  FrameView view;
  view.type = pf.type;
  view.source = pf.source;
  view.epoch = pf.epoch;
  view.seq = pf.seq;
  view.payload = std::span<const std::uint8_t>(
      buffer_.data() + pf.payload_offset, pf.payload_len);
  return view;
}

void FrameReassembler::parse_more() {
  const auto flush_skipped = [&] {
    if (skipped_since_sync_ > 0) {
      events_.push_back(FrameError{FrameErrorCode::kBadMagic, 0,
                                   skipped_since_sync_});
      skipped_since_sync_ = 0;
    }
  };

  while (events_.empty()) {
    // Resynchronize: skip bytes until a full magic prefix lines up.
    while (cursor_ < buffer_.size()) {
      const std::size_t available = buffer_.size() - cursor_;
      const std::size_t check = std::min(available, kMagic.size());
      if (std::memcmp(buffer_.data() + cursor_, kMagic.data(), check) == 0) {
        break;  // full or partial magic match at cursor_
      }
      ++cursor_;
      ++bytes_consumed_;
      ++skipped_since_sync_;
    }
    const std::size_t available = buffer_.size() - cursor_;
    if (available < kFrameHeaderBytes) {
      if (!finished_) return;  // need more bytes
      // End of stream. Leftover bytes are either resync garbage or a torn
      // header; report and consume them.
      if (available > 0 && !truncation_reported_) {
        flush_skipped();
        events_.push_back(
            FrameError{FrameErrorCode::kTruncatedStream, 0, available});
        truncation_reported_ = true;
        bytes_consumed_ += available;
        cursor_ = buffer_.size();
        continue;
      }
      flush_skipped();
      return;
    }

    const std::uint8_t* h = buffer_.data() + cursor_;
    const std::uint8_t version = h[4];
    const std::uint8_t type = h[5];
    const std::uint32_t source = read_u32(h + 6);
    const std::uint32_t epoch = read_u32(h + 10);
    const std::uint32_t seq = read_u32(h + 14);
    const std::uint32_t payload_len = read_u32(h + 18);
    const std::uint32_t wire_crc = read_u32(h + 22);

    // Header sanity before trusting payload_len. A bad field could be a
    // corrupted header *or* payload bytes that happen to contain the
    // magic; either way, advance one byte and let the scanner resync.
    if (version != kVersion) {
      flush_skipped();
      events_.push_back(FrameError{FrameErrorCode::kBadVersion, 0, version});
      ++cursor_;
      ++bytes_consumed_;
      continue;
    }
    if (type > static_cast<std::uint8_t>(FrameType::kEpochClose)) {
      flush_skipped();
      events_.push_back(FrameError{FrameErrorCode::kBadType, source, type});
      ++cursor_;
      ++bytes_consumed_;
      continue;
    }
    if (payload_len > max_payload_) {
      flush_skipped();
      events_.push_back(
          FrameError{FrameErrorCode::kOversizedPayload, source, payload_len});
      ++cursor_;
      ++bytes_consumed_;
      continue;
    }
    const std::size_t frame_size = kFrameHeaderBytes + payload_len;
    if (available < frame_size) {
      if (!finished_) return;  // need more bytes
      if (!truncation_reported_) {
        flush_skipped();
        events_.push_back(
            FrameError{FrameErrorCode::kTruncatedStream, source, available});
        truncation_reported_ = true;
      }
      bytes_consumed_ += available;
      cursor_ = buffer_.size();
      continue;
    }

    const std::uint8_t* payload = h + kFrameHeaderBytes;
    if (frame_crc(h, payload, payload_len) != wire_crc) {
      flush_skipped();
      events_.push_back(
          FrameError{FrameErrorCode::kChecksumMismatch, source, seq});
      // The declared length was covered by the (failed) CRC, but skipping
      // it re-locks instantly when only payload bits flipped; if the
      // length itself was corrupt, the magic scanner recovers.
      cursor_ += frame_size;
      bytes_consumed_ += frame_size;
      continue;
    }

    flush_skipped();

    // Sequence accounting per source, across every frame type.
    auto [it, first] = next_seq_.try_emplace(source, seq);
    if (!first) {
      const std::uint32_t expected = it->second;
      if (seq > expected) {
        events_.push_back(
            FrameError{FrameErrorCode::kSequenceGap, source, seq - expected});
      } else if (seq < expected) {
        events_.push_back(FrameError{FrameErrorCode::kSequenceReversal, source,
                                     expected - seq});
      }
    }
    if (seq + 1 > it->second) it->second = seq + 1;

    ParsedFrame frame;
    frame.type = static_cast<FrameType>(type);
    frame.source = source;
    frame.epoch = epoch;
    frame.seq = seq;
    frame.payload_offset = cursor_ + kFrameHeaderBytes;
    frame.payload_len = payload_len;
    events_.push_back(frame);
    ++frames_parsed_;
    cursor_ += frame_size;
    bytes_consumed_ += frame_size;
  }
}

}  // namespace pint
