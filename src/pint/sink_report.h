/// \file
/// Structured sink-side results and the observer interface.
///
/// The sink's Recording Module learns one thing per query that ran on a
/// packet; instead of three fixed struct fields, a SinkReport is a small
/// inline list of per-query observations (variant-typed, allocation-free up
/// to kMaxQueriesPerPacket entries — enough for any feasible execution plan,
/// which the Builder enforces). Applications normally do not poll reports at
/// all: they register a SinkObserver and receive every observation — plus
/// path-decoded events — as callbacks.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <variant>
#include <vector>

#include "common/types.h"
#include "pint/policy.h"

namespace pint {

/// One per-packet aggregate (e.g. the decoded bottleneck utilization).
struct AggregateObservation {
  double value = 0.0;
  bool operator==(const AggregateObservation&) const = default;
};

/// One dynamic per-flow sample: the hop this packet's digest carried and the
/// decompressed value.
struct HopSampleObservation {
  HopIndex hop = 0;
  double value = 0.0;
  bool operator==(const HopSampleObservation&) const = default;
};

/// Progress of a static per-flow (distributed coding) decode.
struct PathDigestObservation {
  unsigned resolved_hops = 0;
  unsigned path_length = 0;
  bool complete = false;
  bool operator==(const PathDigestObservation&) const = default;
};

using Observation = std::variant<AggregateObservation, HopSampleObservation,
                                 PathDigestObservation>;

/// (query name, observation) pair; the name view points at the framework's
/// registered QuerySpec and stays valid for the framework's lifetime.
struct QueryObservation {
  std::string_view query;
  Observation observation;
};

/// Aggregate Recording-Module storage accounting, summed over every
/// per-flow query's store. Attached to each SinkReport when memory bounding
/// is enabled (`bounded` set); with no ceiling configured it stays
/// all-zeros, so unbounded report streams are unchanged. Not part of the
/// report codec's wire stream.
struct MemoryCounters {
  std::size_t used_bytes = 0;
  std::size_t capacity_bytes = 0;
  std::uint64_t flows = 0;      // resident per-flow states
  std::uint64_t evictions = 0;  // cumulative LRU evictions
  /// Cumulative admissions shed by store policies (pint/policy.h); 0 under
  /// the default (LRU) policy, which admits everything.
  std::uint64_t admissions_rejected = 0;
  bool bounded = false;
  bool over_budget = false;  // some store's sole flow exceeds its ceiling
  bool operator==(const MemoryCounters&) const = default;
};

/// What a bounded stage does when its buffer cannot take the next item —
/// BASEL-style explicit admission: the overflow behavior of the async
/// observer ring (ShardedSink) is a specified policy, not an accident of
/// queue growth. Mirrors the fan-in's BackpressurePolicy one layer down.
enum class OverflowPolicy : std::uint8_t {
  kBlock,       ///< the producer waits for the consumer (lossless)
  kDropNewest,  ///< the new item is dropped and counted (bounded latency)
};

/// Fan-in transport accounting: what happened to the framed report stream
/// between this pipeline's sinks and the collector. All-zeros
/// (`active == false`) everywhere except reports stamped by a fan-in
/// pipeline (sim/fanin.h), so local-sink report streams are unchanged.
/// `frames_dropped` counts payload frames the drop-newest backpressure
/// policy refused to ship (BASEL-style: admission under pressure is an
/// explicit, observable policy, not an accident of queue growth).
///
/// The `observer_*` fields account the async observer stage (ShardedSink
/// with `Builder::async_observers`): events relayed off the packet path,
/// and events the kDropNewest overflow policy refused — exact counts, so
/// published + dropped equals every event the frameworks emitted.
struct TransportCounters {
  std::uint64_t frames_shipped = 0;  ///< payload frames written to streams
  std::uint64_t frames_dropped = 0;  ///< payload frames dropped (drop-newest)
  std::uint64_t bytes_shipped = 0;   ///< framed bytes written to streams
  std::uint64_t blocked_waits = 0;   ///< writer stalls under kBlock policy
  std::uint64_t observer_events = 0;  ///< events published to the relay ring
  std::uint64_t observer_drops = 0;   ///< events dropped (kDropNewest ring)
  /// Full-ring stalls async-observer producers sat through (kBlock) —
  /// kept separate from `blocked_waits` so ring pressure (remedy: deeper
  /// ring / cheaper observers) and stream pressure (remedy: larger
  /// stream capacity) stay attributable.
  std::uint64_t observer_blocked_waits = 0;
  /// Socket-sender connection re-establishments (daemon transport only;
  /// zero for in-process streams, which cannot lose a connection).
  std::uint64_t sender_reconnects = 0;
  /// Whole frames shed by senders resynchronizing to an epoch boundary
  /// after a reconnect — kept separate from `frames_dropped` (a
  /// backpressure decision) because the remedy differs: resync sheds call
  /// for a steadier collector, drops for more capacity or lower priority
  /// traffic.
  std::uint64_t frames_resync_discarded = 0;
  bool active = false;
  bool operator==(const TransportCounters&) const = default;
};

/// One per-flow query's Recording-Module storage stats (see
/// RecordingStore); `query` points at the framework's registered spec.
struct QueryMemoryStats {
  std::string_view query;
  std::size_t used_bytes = 0;
  std::size_t capacity_bytes = 0;  // 0 = unbounded
  std::size_t peak_used_bytes = 0;
  std::size_t max_entry_bytes = 0;  // largest single flow ever accounted
  std::uint64_t flows = 0;
  std::uint64_t evictions = 0;
  std::uint64_t created = 0;
  /// Admission/eviction policy the store runs (pint/policy.h) and its
  /// decision counters — all-zeros under kLru, which admits everything
  /// and never second-guesses an eviction.
  StorePolicyKind policy = StorePolicyKind::kLru;
  std::uint64_t admissions_rejected = 0;  ///< arrivals shed at the door
  std::uint64_t doorkeeper_hits = 0;      ///< admits on a known key
  std::uint64_t frequency_evictions = 0;  ///< evicts decided by frequency
  bool over_budget = false;
};

/// Everything the sink learned from one packet. Fixed inline capacity so the
/// batched hot path fills reports without allocating.
class SinkReport {
 public:
  static constexpr std::size_t kMaxQueriesPerPacket = 16;

  void clear() {
    count_ = 0;
    memory = MemoryCounters{};
    transport = TransportCounters{};
  }
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  void add(std::string_view query, Observation obs) {
    if (count_ < kMaxQueriesPerPacket) {
      entries_[count_++] = QueryObservation{query, obs};
    }
  }

  const QueryObservation* begin() const { return entries_.data(); }
  const QueryObservation* end() const { return entries_.data() + count_; }

  /// The observation of `query`, if it ran on this packet.
  const Observation* find(std::string_view query) const {
    for (std::size_t i = 0; i < count_; ++i) {
      if (entries_[i].query == query) return &entries_[i].observation;
    }
    return nullptr;
  }

  /// Convenience: the decoded per-packet aggregate of `query`, if present.
  std::optional<double> aggregate_value(std::string_view query) const {
    const Observation* obs = find(query);
    if (obs == nullptr) return std::nullopt;
    if (const auto* agg = std::get_if<AggregateObservation>(obs)) {
      return agg->value;
    }
    return std::nullopt;
  }

  /// Recording-Module occupancy after this packet was recorded; all-zeros
  /// (`bounded == false`) unless the framework was built with a memory
  /// ceiling or per-query budgets.
  MemoryCounters memory;

  /// Fan-in transport accounting; all-zeros (`active == false`) unless
  /// stamped by a FanInPipeline (see `FanInPipeline::epoch_report`).
  TransportCounters transport;

 private:
  std::array<QueryObservation, kMaxQueriesPerPacket> entries_{};
  std::size_t count_ = 0;
};

/// Snapshot of the Recording Module's per-query storage, delivered through
/// SinkObserver::on_memory_report after any packet whose processing evicted
/// at least one flow, and available on demand from
/// PintFramework::memory_report(). Holds up to kMaxQueries per-flow query
/// entries (further queries are still summed into `total`).
struct MemoryReport {
  static constexpr std::size_t kMaxQueries = SinkReport::kMaxQueriesPerPacket;

  std::array<QueryMemoryStats, kMaxQueries> queries{};
  std::size_t query_count = 0;
  MemoryCounters total;

  const QueryMemoryStats* begin() const { return queries.data(); }
  const QueryMemoryStats* end() const { return queries.data() + query_count; }

  /// Stats of `query`, if it is a per-flow query within capacity.
  const QueryMemoryStats* find(std::string_view query) const {
    for (std::size_t i = 0; i < query_count; ++i) {
      if (queries[i].query == query) return &queries[i];
    }
    return nullptr;
  }
};

/// Per-packet context handed to observers alongside each observation.
struct SinkContext {
  PacketId packet_id = 0;
  std::uint64_t flow = 0;        // flow key under the query's flow definition
  unsigned path_length = 0;      // k
};

/// Subscribe to sink-side query results. Callbacks fire synchronously from
/// at_sink(), in query-set order; implementations must not re-enter the
/// framework. Observers are non-owning: the caller keeps them alive for the
/// framework's lifetime.
class SinkObserver {
 public:
  virtual ~SinkObserver() = default;

  /// Every observation of every query (including partial path-decode
  /// progress).
  virtual void on_observation(const SinkContext& ctx, std::string_view query,
                              const Observation& obs) {
    (void)ctx;
    (void)query;
    (void)obs;
  }

  /// Fired once per (query, flow) when a static per-flow decode completes.
  virtual void on_path_decoded(const SinkContext& ctx, std::string_view query,
                               const std::vector<SwitchId>& path) {
    (void)ctx;
    (void)query;
    (void)path;
  }

  /// Fired after any packet whose processing evicted at least one flow
  /// from a Recording-Module store, and — when
  /// `Builder::memory_report_interval_packets` is set — every N sink
  /// packets as a heartbeat (the heartbeat fires with bounding off too).
  /// With neither eviction nor a configured interval it never fires.
  virtual void on_memory_report(const MemoryReport& report) { (void)report; }
};

}  // namespace pint
