/// \file
/// Path-change detection for multipath / flowlet routing (paper Section 7,
/// "Tracing flows with multipath routing").
///
/// Once (part of) a flow's path is known, every further Baseline packet is a
/// consistency check: a packet whose digest disagrees with h(known switch,
/// packet) proves the flow's route changed (with per-packet detection
/// probability 1 - 2^-q when the full path is known). On detection, the
/// caller typically forks a fresh decoder for the new flowlet path.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "coding/encoder.h"
#include "coding/scheme.h"
#include "common/types.h"

namespace pint {

class PathChangeDetector {
 public:
  /// Hashes/config must mirror the encoding side (same as the decoder's).
  PathChangeDetector(unsigned k, SchemeConfig scheme, InstanceHashes hashes,
                     unsigned bits)
      : k_(k), scheme_(std::move(scheme)), hashes_(hashes), bits_(bits),
        known_(k) {}

  /// Record a resolved hop (e.g. from HashedPathDecoder).
  void set_known(HopIndex hop, SwitchId sid) { known_[hop - 1] = sid; }
  std::size_t known_hops() const {
    std::size_t n = 0;
    for (const auto& v : known_) n += v.has_value();
    return n;
  }

  /// Check one packet against current knowledge. Returns the hop whose
  /// digest contradicts the known switch (proving a route change), or
  /// nullopt if the packet is consistent / uninformative.
  std::optional<HopIndex> check(PacketId packet, Digest digest) const {
    const unsigned layer = select_layer(scheme_, hashes_.layer, packet);
    if (layer != 0) {
      // XOR packets: only a fully-known participant set is checkable.
      const auto hops = xor_layer_hops(scheme_, hashes_, packet, k_, layer);
      Digest expect = 0;
      for (HopIndex i : hops) {
        if (!known_[i - 1].has_value()) return std::nullopt;
        expect ^= hashes_.value.digest2(*known_[i - 1], packet, bits_);
      }
      // A mismatch proves *some* participant changed; report the first.
      if (expect != digest && !hops.empty()) return hops.front();
      return std::nullopt;
    }
    const HopIndex carrier = baseline_carrier(hashes_.g, packet, k_);
    if (!known_[carrier - 1].has_value()) return std::nullopt;
    const Digest expect =
        hashes_.value.digest2(*known_[carrier - 1], packet, bits_);
    if (expect != digest) return carrier;
    return std::nullopt;
  }

  /// Detection probability for a single Baseline packet when the whole path
  /// is known: 1 - 2^-q (paper Section 7).
  double detection_probability() const {
    return 1.0 - 1.0 / static_cast<double>(std::uint64_t{1} << bits_);
  }

 private:
  unsigned k_;
  SchemeConfig scheme_;
  InstanceHashes hashes_;
  unsigned bits_;
  std::vector<std::optional<SwitchId>> known_;
};

}  // namespace pint
