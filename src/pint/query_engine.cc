#include "pint/query_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace pint {

namespace {
constexpr double kProbEpsilon = 1e-9;
}

QueryEngine::QueryEngine(std::vector<Query> queries,
                         unsigned global_bit_budget, std::uint64_t seed)
    : queries_(std::move(queries)),
      global_budget_(global_bit_budget),
      selection_hash_(GlobalHash(seed).derive(0x5E7EC7)) {
  if (queries_.empty()) throw std::invalid_argument("no queries");
  for (const Query& q : queries_) {
    if (q.bit_budget == 0 || q.bit_budget > global_budget_) {
      throw std::invalid_argument("query '" + q.name +
                                  "' bit budget outside global budget");
    }
    if (q.frequency <= 0.0 || q.frequency > 1.0) {
      throw std::invalid_argument("query '" + q.name +
                                  "' frequency outside (0,1]");
    }
  }
  compile();
}

void QueryEngine::compile() {
  std::vector<double> residual(queries_.size());
  for (std::size_t i = 0; i < queries_.size(); ++i)
    residual[i] = queries_[i].frequency;

  plan_.sets.clear();
  // Each iteration builds one query set and peels off probability mass.
  // Greedy: consider queries by descending residual, add while bits fit.
  while (true) {
    std::vector<std::size_t> order(queries_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return residual[a] > residual[b];
    });
    QuerySet set;
    unsigned bits = 0;
    for (std::size_t qi : order) {
      if (residual[qi] <= kProbEpsilon) continue;
      if (bits + queries_[qi].bit_budget > global_budget_) continue;
      set.query_indices.push_back(qi);
      bits += queries_[qi].bit_budget;
    }
    if (set.query_indices.empty()) break;  // all residuals satisfied
    // Largest probability usable by this set: the smallest member residual —
    // but if some *excluded* query still has residual, cap so that the next
    // iteration can serve it (its mass must come from sets without us).
    double p = 1.0;
    for (std::size_t qi : set.query_indices) p = std::min(p, residual[qi]);
    // Total mass already assigned plus what remains to assign cannot
    // exceed 1; cap by remaining headroom.
    double assigned = 0.0;
    for (const QuerySet& s : plan_.sets) assigned += s.probability;
    p = std::min(p, 1.0 - assigned);
    if (p <= kProbEpsilon) {
      throw std::invalid_argument(
          "query mix infeasible within the global bit budget");
    }
    set.probability = p;
    for (std::size_t qi : set.query_indices) residual[qi] -= p;
    plan_.sets.push_back(std::move(set));
    const double max_residual =
        *std::max_element(residual.begin(), residual.end());
    if (max_residual <= kProbEpsilon) break;
  }

  // Coverage diagnostics + feasibility check.
  plan_.query_coverage.assign(queries_.size(), 0.0);
  for (const QuerySet& s : plan_.sets) {
    for (std::size_t qi : s.query_indices)
      plan_.query_coverage[qi] += s.probability;
  }
  for (std::size_t i = 0; i < queries_.size(); ++i) {
    if (plan_.query_coverage[i] + 1e-6 < queries_[i].frequency) {
      throw std::invalid_argument("query '" + queries_[i].name +
                                  "' cannot reach its frequency within the "
                                  "global bit budget");
    }
  }

  cumulative_.clear();
  double acc = 0.0;
  for (const QuerySet& s : plan_.sets) {
    acc += s.probability;
    cumulative_.push_back(acc);
  }
  // Note: acc may be < 1; packets hashing above acc carry no digest (spare
  // capacity). That is intentional: frequencies < 1 leave idle packets.
}

const QuerySet& QueryEngine::set_for_packet(PacketId packet) const {
  static const QuerySet kEmpty{};
  const double h = selection_hash_.unit(packet);
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (h < cumulative_[i]) return plan_.sets[i];
  }
  return kEmpty;
}

bool QueryEngine::query_runs(std::size_t query_index, PacketId packet) const {
  const QuerySet& s = set_for_packet(packet);
  return std::find(s.query_indices.begin(), s.query_indices.end(),
                   query_index) != s.query_indices.end();
}

}  // namespace pint
