/// \file
/// Sharded, multi-threaded sink: the Recording Module scaled across cores.
///
/// PINT's sink-side work (paper Section 3.4: the Recording and Inference
/// Modules) is embarrassingly parallel per flow — every recorder and path
/// decoder is keyed by a flow key, and packets of different flows never
/// share state. A ShardedSink exploits this: incoming digests are
/// partitioned by `hash(flow_key) % num_shards`, each shard owns a private
/// PintFramework replica (identical build, identical seeds, so decoding is
/// bit-for-bit the seed behavior), and one worker thread per shard drains
/// batches through the framework's `at_sink` hot path with no locks on the
/// decode path.
///
/// Because all of a flow's packets land on the same shard and each shard
/// preserves submission order, the per-packet SinkReports are identical to
/// the single-threaded sink's — only cross-flow observer interleaving
/// differs. The merged Inference-Module view routes each query to the shard
/// that owns the flow.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/mutex.h"
#include "common/spsc_queue.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "packet/flow.h"
#include "packet/packet.h"
#include "pint/framework.h"
#include "pint/sink_report.h"

namespace pint {

/// The coarsest flow definition that keeps every registered per-flow query
/// consistent under partitioning, or nullopt if none exists (a mix of
/// source-IP- and destination-IP-keyed queries). Used by ShardedSink for
/// its shard key and by fan-in pipelines for sink homing.
std::optional<FlowDefinition> common_flow_partition(const PintFramework& fw);

/// A sink whose Recording Module is partitioned across worker threads.
///
/// Construction builds `num_shards` identical PintFramework instances from
/// one Builder (the Builder is reusable, and identical seeds make every
/// replica decode identically). Threading contract:
///
///  * `submit()` is multi-producer: any number of threads — NIC queues, in
///    practice — may call it concurrently. Each shard fronts its worker
///    with a bounded lock-free MPMC queue (common/mpmc_queue.h); when a
///    shard's queue is full, submit blocks (yield-spin) until the worker
///    drains it — explicit backpressure instead of unbounded queue growth.
///    Per-flow determinism is preserved whenever each flow's packets are
///    submitted by one producer in order (the queue keeps per-producer
///    FIFO); packets of one flow spread across racing producers arrive in
///    a nondeterministic order, exactly as they would from racing NIC
///    queues. Submitted packets (and the optional report buffer) must stay
///    alive and unmodified until the next `flush()` returns.
///  * Observers registered through `add_observer()` are invoked from shard
///    worker threads but serialized under an internal mutex, so ordinary
///    single-threaded observers (the `src/apps/` adapters) work unchanged.
///    With `Builder::async_observers(depth, policy)` the callbacks instead
///    leave the packet path entirely: each shard worker publishes events
///    into a per-shard SPSC ring and one dedicated relay thread delivers
///    them (still serialized, still per-shard FIFO). A full ring applies
///    the explicit OverflowPolicy — kBlock (lossless backpressure with
///    bounded exponential backoff) or kDropNewest (drop the event, count
///    it exactly — see `observer_counters()`). Under kDropNewest only
///    events of *sheddable* queries are dropped: those at the minimum
///    registered QuerySpec::priority (with all-default priorities that is
///    every query — the pre-priority behavior). Higher-priority events and
///    memory reports (the operator's view of the shedding itself) instead
///    take the blocking path, counted in `observer_blocked_waits`.
///    Observers registered on the Builder itself bypass all of this and
///    must be thread-safe — prefer `add_observer()` here.
///  * `flush()` waits for every batch submitted *before* the call — and, in
///    async-observer mode, for the relay to drain every event those batches
///    published. Quiesce (join or barrier) producer threads first if
///    "everything" must mean their batches too.
///  * The merged inference accessors and `shard()` must only be called when
///    the sink is quiescent (after `flush()`, before the next `submit()`).
class ShardedSink {
 public:
  /// Batches a shard's MPMC queue can hold before submit() blocks.
  static constexpr std::size_t kDefaultQueueDepth = 256;

  /// Builds `num_shards` framework replicas and starts one worker per shard.
  ///
  /// When the Builder carries Recording-Module budgets
  /// (`memory_ceiling_bytes()` / per-query `memory_budget_bytes`), each
  /// replica is built with those budgets divided by `num_shards`, so the
  /// shards' stores together stay within the configured totals (flows are
  /// partitioned, not duplicated). Eviction *timing* then differs from a
  /// single-threaded sink with the undivided ceiling — identical merged
  /// output is only guaranteed with bounding off.
  ///
  /// Throws `std::invalid_argument` if the Builder fails validation, if
  /// `num_shards` is zero, or if `num_shards > 1` and the registered
  /// queries' flow definitions admit no common partition key (source-IP and
  /// destination-IP aggregation cannot be partitioned consistently at one
  /// sink — split them across sinks instead, see `docs/ARCHITECTURE.md`).
  ShardedSink(const PintFramework::Builder& builder, unsigned num_shards,
              std::size_t queue_depth = kDefaultQueueDepth);
  ~ShardedSink();

  ShardedSink(const ShardedSink&) = delete;
  ShardedSink& operator=(const ShardedSink&) = delete;

  /// Partitions `packets` by flow and enqueues each group on its shard.
  ///
  /// Safe to call concurrently from several producer threads (see the
  /// class contract). `k` is the flows' path length in switches (as in
  /// `PintFramework::at_sink`). If `reports` is non-empty it must have one
  /// entry per packet; entry `i` is overwritten with packet `i`'s
  /// SinkReport, so after `flush()` the buffer holds the merged report
  /// stream in submission order — byte-identical to the single-threaded
  /// sink's output for the same input. Destroying the sink without a
  /// flush() discards batches no worker has started (a batch already being
  /// processed still needs its buffers alive until the destructor joins).
  ///
  /// \throws std::invalid_argument if `reports` is non-empty and
  ///   `reports.size() != packets.size()` — a silently mismatched buffer
  ///   would scribble reports at wrong indices, so it fails loudly before
  ///   anything is enqueued (no partial submission).
  void submit(std::span<const Packet> packets, unsigned k,
              std::span<SinkReport> reports = {});

  /// Blocks until every submitted packet has been processed.
  void flush();

  /// Serialized observer delivery (see the class contract). Must be called
  /// before the first `submit()`.
  void add_observer(SinkObserver* observer) PINT_EXCLUDES(observer_mutex_);

  /// True when the Builder enabled `async_observers`.
  bool async_observers() const { return async_mode_; }

  /// Async observer-stage accounting (`active` only in async mode):
  /// `observer_events` = events published to the relay rings (== events
  /// delivered once `flush()` returns), `observer_drops` = events the
  /// kDropNewest overflow policy refused (exact: published + dropped is
  /// every event the shard frameworks emitted),
  /// `observer_blocked_waits` = full-ring stalls a kBlock producer sat
  /// through. Safe to call any time; exact when quiescent.
  TransportCounters observer_counters() const;

  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// The flow definition packets are partitioned by: the coarsest
  /// definition among the registered per-flow queries.
  FlowDefinition partition_definition() const { return partition_def_; }

  /// Which shard owns flows with this tuple.
  unsigned shard_of(const FiveTuple& tuple) const;

  /// Shard `s`'s framework replica (for inspection; quiescent only).
  const PintFramework& shard(unsigned s) const { return *shards_[s]->fw; }

  /// Total packets decoded across all shards (quiescent only).
  std::uint64_t packets_processed() const;

  /// Merged Recording-Module storage stats: per-query counters summed
  /// across every shard's store (capacities sum back to roughly the
  /// Builder's configured budgets — each shard received budget/num_shards).
  /// `peak_used_bytes` sums per-shard peaks that need not have coincided,
  /// so it is an upper bound on any simultaneous total: the per-store
  /// "peak <= share + one entry" invariant merges to at most
  /// ceiling + num_shards entries, not ceiling + one. Quiescent only.
  MemoryReport memory_report() const;

  /// \name Merged Inference-Module view
  /// Each call routes to the shard that owns the flow, so results match the
  /// single-threaded framework exactly. Quiescent only.
  ///@{
  std::optional<std::vector<SwitchId>> flow_path(std::string_view query,
                                                 const FiveTuple& tuple) const;
  double path_progress(std::string_view query, const FiveTuple& tuple) const;
  std::optional<double> latency_quantile(std::string_view query,
                                         const FiveTuple& tuple, HopIndex hop,
                                         double phi) const;
  std::vector<std::uint64_t> latency_frequent_values(std::string_view query,
                                                     const FiveTuple& tuple,
                                                     HopIndex hop,
                                                     double theta) const;
  ///@}

 private:
  // One unit of handoff: pointers into the caller's submit() spans, plus
  // the partition flow key submit() already hashed per packet — forwarded
  // to the framework as a FlowKeyHint so the digest is hashed exactly once
  // (shard routing and store lookup share the result).
  struct Batch {
    std::vector<const Packet*> packets;
    std::vector<std::uint64_t> keys;   // one per packet (partition def)
    std::vector<SinkReport*> reports;  // empty, or one per packet
    unsigned k = 0;
  };

  // One observer callback, captured for relay off the packet path. Query
  // names point at the shard framework's registered specs (alive for the
  // sink's lifetime); paths and memory reports are copied.
  struct ObserverEvent {
    enum class Kind : std::uint8_t { kObservation, kPath, kMemory };

    Kind kind = Kind::kObservation;
    SinkContext ctx{};
    std::string_view query{};
    Observation obs{};
    std::vector<SwitchId> path{};
    std::unique_ptr<MemoryReport> memory{};
  };

  struct Shard {
    explicit Shard(std::size_t queue_depth) : queue(queue_depth) {}

    std::unique_ptr<PintFramework> fw;
    MpmcQueue<Batch> queue;  // multi-producer front-end, worker consumes
    // Async observer stage (null in sync mode): the shard worker is the
    // sole producer, the relay thread the sole consumer.
    std::unique_ptr<SpscQueue<ObserverEvent>> obs_ring;
    std::atomic<std::uint64_t> obs_published{0};
    std::atomic<std::uint64_t> obs_consumed{0};
    std::atomic<std::uint64_t> obs_dropped{0};
    std::atomic<std::uint64_t> obs_blocked{0};
    // queued counts published batches (sleep/wake signal): pushes that
    // completed their post-push increment, minus pops. A worker can pop a
    // batch before its producer's increment lands, so the counter is
    // signed and transiently negative — the sleep predicate treats <= 0
    // as "nothing published" and the producer's notify-after-increment
    // keeps liveness. pending counts batches not yet fully processed
    // (flush signal).
    std::atomic<std::ptrdiff_t> queued{0};
    std::atomic<std::size_t> pending_batches{0};
    std::atomic<std::uint64_t> processed{0};
    // The mutex guards no plain data (the predicates above are atomics):
    // it exists so the cv sleep/notify pairs are race-free. Annotated
    // anyway so the analysis checks every wait holds it.
    Mutex mutex;
    CondVar wake;  // worker waits for work / stop
    CondVar idle;  // flush() waits for pending == 0
    // atomic: the worker re-checks it between batches without the mutex,
    // so destruction stops the drain instead of processing a backlog of
    // batches whose caller buffers may already be gone.
    std::atomic<bool> stop{false};
    std::thread worker;
  };

  // Per-shard framework observer: forwards callbacks to observers_ under
  // observer_mutex_ (sync mode) or publishes them to the shard's ring
  // (async mode).
  class ShardRelay;

  void worker_loop(Shard& shard) PINT_EXCLUDES(observer_mutex_);
  bool event_sheddable(const ObserverEvent& event) const;
  void publish_event(Shard& shard, ObserverEvent&& event)
      PINT_EXCLUDES(relay_mutex_);
  void deliver_event(const ObserverEvent& event)
      PINT_EXCLUDES(observer_mutex_);
  void relay_loop() PINT_EXCLUDES(relay_mutex_, observer_mutex_);
  std::size_t drain_rings() PINT_EXCLUDES(observer_mutex_);
  void wake_relay() PINT_EXCLUDES(relay_mutex_);

  std::vector<std::unique_ptr<Shard>> shards_;
  FlowDefinition partition_def_ = FlowDefinition::kFiveTuple;
  // Priority shedding classes: query name -> whether its observer events
  // are droppable under kDropNewest (priority == the minimum registered).
  // Keys view shard 0's registered specs (alive for the sink's lifetime);
  // lookups hash by content, so any shard's name views match. Immutable
  // after construction, read from shard workers without a lock.
  std::unordered_map<std::string_view, bool> sheddable_;
  std::vector<std::unique_ptr<ShardRelay>> shard_relays_;
  Mutex observer_mutex_;
  std::vector<SinkObserver*> observers_ PINT_GUARDED_BY(observer_mutex_);
  // Async observer stage.
  bool async_mode_ = false;
  OverflowPolicy async_policy_ = OverflowPolicy::kBlock;
  Mutex relay_mutex_;     // guards only the relay's cv sleep (see .cc)
  CondVar relay_wake_;
  std::atomic<bool> relay_sleeping_{false};  // seq_cst handshake, see .cc
  std::atomic<bool> relay_stop_{false};
  std::thread relay_thread_;
};

}  // namespace pint
