/// \file
/// Sharded, multi-threaded sink: the Recording Module scaled across cores.
///
/// PINT's sink-side work (paper Section 3.4: the Recording and Inference
/// Modules) is embarrassingly parallel per flow — every recorder and path
/// decoder is keyed by a flow key, and packets of different flows never
/// share state. A ShardedSink exploits this: incoming digests are
/// partitioned by `hash(flow_key) % num_shards`, each shard owns a private
/// PintFramework replica (identical build, identical seeds, so decoding is
/// bit-for-bit the seed behavior), and one worker thread per shard drains
/// batches through the framework's `at_sink` hot path with no locks on the
/// decode path.
///
/// Because all of a flow's packets land on the same shard and each shard
/// preserves submission order, the per-packet SinkReports are identical to
/// the single-threaded sink's — only cross-flow observer interleaving
/// differs. The merged Inference-Module view routes each query to the shard
/// that owns the flow.
///
/// Cache-line discipline (see common/cacheline.h): every hot counter below
/// is single-writer — shard workers own the publish/drop/processed
/// totals, relay threads own the consumed totals — and each writer class
/// starts on its own `alignas(kCacheLineBytes)` boundary, so per-thread
/// accumulators are merged on read (observer_counters(),
/// packets_processed()) instead of ping-ponging a shared line between
/// writers. The multi-writer words (MPMC cursors, pending/queued, the
/// sleep handshakes) are contended by design and get their own lines so
/// that contention stays theirs alone.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cacheline.h"
#include "common/mpmc_queue.h"
#include "common/mutex.h"
#include "common/spsc_queue.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "packet/flow.h"
#include "packet/packet.h"
#include "pint/framework.h"
#include "pint/sink_report.h"

namespace pint {

/// The coarsest flow definition that keeps every registered per-flow query
/// consistent under partitioning, or nullopt if none exists (a mix of
/// source-IP- and destination-IP-keyed queries). Used by ShardedSink for
/// its shard key and by fan-in pipelines for sink homing.
std::optional<FlowDefinition> common_flow_partition(const PintFramework& fw);

/// A sink whose Recording Module is partitioned across worker threads.
///
/// Construction builds `num_shards` identical PintFramework instances from
/// one Builder (the Builder is reusable, and identical seeds make every
/// replica decode identically). Threading contract:
///
///  * `submit()` is multi-producer: any number of threads — NIC queues, in
///    practice — may call it concurrently. Each call partitions its span by
///    flow once (one hash per packet, reused downstream as a FlowKeyHint)
///    and hands each shard a single batch through that shard's bounded
///    lock-free MPMC queue (common/mpmc_queue.h), so the per-packet cost of
///    the front-end — queue CAS, worker wakeup — is amortized over the
///    burst. When a shard's queue is full, submit blocks (yield-spin) until
///    the worker drains it — explicit backpressure instead of unbounded
///    queue growth. Per-flow determinism is preserved whenever each flow's
///    packets are submitted by one producer in order (the queue keeps
///    per-producer FIFO); packets of one flow spread across racing
///    producers arrive in a nondeterministic order, exactly as they would
///    from racing NIC queues. Submitted packets (and the optional report
///    buffer) must stay alive and unmodified until the next `flush()`
///    returns.
///  * Observers registered through `add_observer()` are invoked from shard
///    worker threads but serialized under an internal mutex, so ordinary
///    single-threaded observers (the `src/apps/` adapters) work unchanged.
///    With `Builder::async_observers(depth, policy, relay_threads)` the
///    callbacks instead leave the packet path entirely: each shard worker
///    publishes events into a per-shard SPSC ring, and `relay_threads`
///    dedicated relay threads deliver them (still serialized under one
///    mutex, still per-shard FIFO). Relay thread `t` exclusively owns the
///    rings of shards `s % relay_threads == t`, drains them in batches,
///    and producers coalesce wakeups — at most one CV signal per relay
///    sleep episode, not one per event. A full ring applies the explicit
///    OverflowPolicy — kBlock (lossless backpressure with bounded
///    exponential backoff) or kDropNewest (drop the event, count it
///    exactly — see `observer_counters()`). Under kDropNewest only events
///    of *sheddable* queries are dropped: those at the minimum registered
///    QuerySpec::priority (with all-default priorities that is every query
///    — the pre-priority behavior). Higher-priority events and memory
///    reports (the operator's view of the shedding itself) instead take
///    the blocking path, counted in `observer_blocked_waits`. Observers
///    registered on the Builder itself bypass all of this and must be
///    thread-safe — prefer `add_observer()` here.
///  * `flush()` waits for every batch submitted *before* the call — and, in
///    async-observer mode, for the relays to drain every event those
///    batches published. Quiesce (join or barrier) producer threads first
///    if "everything" must mean their batches too.
///  * The merged inference accessors and `shard()` must only be called when
///    the sink is quiescent (after `flush()`, before the next `submit()`).
class ShardedSink {
 public:
  /// Batches a shard's MPMC queue can hold before submit() blocks.
  static constexpr std::size_t kDefaultQueueDepth = 256;

  /// Upper bound on the events one transport chunk carries (= the events
  /// delivered per observer-mutex acquisition, by the relay or by the
  /// worker's inline fast path). Sized to swallow a full submit burst
  /// (~a thousand events) so a worker that keeps up never seals
  /// mid-batch — which is what keeps the inline-delivery proof alive.
  /// The actual chunk capacity scales down with small ring depths so the
  /// configured depth — not the chunk size — sets when backpressure
  /// engages.
  static constexpr std::size_t kEventChunkCapacity = 1024;

  /// Builds `num_shards` framework replicas and starts one worker per shard.
  ///
  /// When the Builder carries Recording-Module budgets
  /// (`memory_ceiling_bytes()` / per-query `memory_budget_bytes`), each
  /// replica is built with those budgets divided by `num_shards`, so the
  /// shards' stores together stay within the configured totals (flows are
  /// partitioned, not duplicated). Eviction *timing* then differs from a
  /// single-threaded sink with the undivided ceiling — identical merged
  /// output is only guaranteed with bounding off.
  ///
  /// Throws `std::invalid_argument` if the Builder fails validation, if
  /// `num_shards` is zero, or if `num_shards > 1` and the registered
  /// queries' flow definitions admit no common partition key (source-IP and
  /// destination-IP aggregation cannot be partitioned consistently at one
  /// sink — split them across sinks instead, see `docs/ARCHITECTURE.md`).
  ShardedSink(const PintFramework::Builder& builder, unsigned num_shards,
              std::size_t queue_depth = kDefaultQueueDepth);
  ~ShardedSink();

  ShardedSink(const ShardedSink&) = delete;
  ShardedSink& operator=(const ShardedSink&) = delete;

  /// Partitions `packets` by flow and enqueues each group on its shard.
  ///
  /// Safe to call concurrently from several producer threads (see the
  /// class contract). `k` is the flows' path length in switches (as in
  /// `PintFramework::at_sink`). If `reports` is non-empty it must have one
  /// entry per packet; entry `i` is overwritten with packet `i`'s
  /// SinkReport, so after `flush()` the buffer holds the merged report
  /// stream in submission order — byte-identical to the single-threaded
  /// sink's output for the same input. Destroying the sink without a
  /// flush() discards batches no worker has started (a batch already being
  /// processed still needs its buffers alive until the destructor joins).
  ///
  /// \throws std::invalid_argument if `reports` is non-empty and
  ///   `reports.size() != packets.size()` — a silently mismatched buffer
  ///   would scribble reports at wrong indices, so it fails loudly before
  ///   anything is enqueued (no partial submission).
  void submit(std::span<const Packet> packets, unsigned k,
              std::span<SinkReport> reports = {});

  /// Blocks until every submitted packet has been processed.
  void flush();

  /// Serialized observer delivery (see the class contract). Must be called
  /// before the first `submit()`.
  void add_observer(SinkObserver* observer) PINT_EXCLUDES(observer_mutex_);

  /// True when the Builder enabled `async_observers`.
  bool async_observers() const { return async_mode_; }

  /// Relay threads actually running: the Builder's `relay_threads` clamped
  /// to the shard count (async mode), or 0 in sync mode.
  unsigned relay_threads() const {
    return static_cast<unsigned>(relays_.size());
  }

  /// Async observer-stage accounting (`active` only in async mode):
  /// `observer_events` = events published to the relay rings (== events
  /// delivered once `flush()` returns), `observer_drops` = events the
  /// kDropNewest overflow policy refused (exact: published + dropped is
  /// every event the shard frameworks emitted),
  /// `observer_blocked_waits` = full-ring stalls a kBlock producer sat
  /// through. Every term is a sum of single-writer per-thread counters —
  /// merged here, on the read side. Safe to call any time; exact when
  /// quiescent.
  TransportCounters observer_counters() const;

  /// Events each relay thread has delivered (index = relay id), for load
  /// inspection. Sums to at most the published total: a shard worker that
  /// stays ahead of its relay delivers inline itself (see
  /// `flush_published`), and those events appear in no relay's count. Safe
  /// any time; exact when quiescent. Empty in sync mode.
  std::vector<std::uint64_t> relay_deliveries() const;

  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }

  /// The flow definition packets are partitioned by: the coarsest
  /// definition among the registered per-flow queries.
  FlowDefinition partition_definition() const { return partition_def_; }

  /// Which shard owns flows with this tuple.
  unsigned shard_of(const FiveTuple& tuple) const;

  /// Shard `s`'s framework replica (for inspection; quiescent only).
  const PintFramework& shard(unsigned s) const { return *shards_[s]->fw; }

  /// Total packets decoded across all shards (quiescent only).
  std::uint64_t packets_processed() const;

  /// Merged Recording-Module storage stats: per-query counters summed
  /// across every shard's store (capacities sum back to roughly the
  /// Builder's configured budgets — each shard received budget/num_shards).
  /// `peak_used_bytes` sums per-shard peaks that need not have coincided,
  /// so it is an upper bound on any simultaneous total: the per-store
  /// "peak <= share + one entry" invariant merges to at most
  /// ceiling + num_shards entries, not ceiling + one. Quiescent only.
  MemoryReport memory_report() const;

  /// \name Merged Inference-Module view
  /// Each call routes to the shard that owns the flow, so results match the
  /// single-threaded framework exactly. Quiescent only.
  ///@{
  std::optional<std::vector<SwitchId>> flow_path(std::string_view query,
                                                 const FiveTuple& tuple) const;
  double path_progress(std::string_view query, const FiveTuple& tuple) const;
  std::optional<double> latency_quantile(std::string_view query,
                                         const FiveTuple& tuple, HopIndex hop,
                                         double phi) const;
  std::vector<std::uint64_t> latency_frequent_values(std::string_view query,
                                                     const FiveTuple& tuple,
                                                     HopIndex hop,
                                                     double theta) const;
  ///@}

 private:
  // Sleep/notify handshake word for the edge-coalesced wakeups (see the
  // .cc protocol comment). kSleeping = the sleeper re-armed and is (about
  // to be) blocked on its CV; kNotified = a producer already paid the
  // mutex+notify for this sleep episode, later producers skip it; kAwake =
  // the fast path, producers pay one atomic load and nothing else.
  enum class WakeState : std::uint8_t { kAwake, kSleeping, kNotified };

  // One unit of handoff: per-packet entries pointing into the caller's
  // submit() spans, plus the partition flow key submit() already hashed —
  // forwarded to the framework as a FlowKeyHint so the digest is hashed
  // exactly once (shard routing and store lookup share the result). One
  // vector per shard, not three: a third of the allocations and one
  // contiguous stream for the worker to walk.
  struct Item {
    const Packet* packet = nullptr;
    std::uint64_t key = 0;        // partition-definition flow key
    SinkReport* report = nullptr;  // null when the caller passed no buffer
  };
  struct Batch {
    std::vector<Item> items;
    unsigned k = 0;
  };

  // One observer callback, captured for relay off the packet path. Query
  // names point at the shard framework's registered specs (alive for the
  // sink's lifetime); paths and memory reports are copied.
  //
  // Path events dominated the async overhead when this struct held a
  // std::vector: every decoded path paid a malloc on the shard worker and
  // a free on the relay (glibc's cross-thread-free slow path), per event.
  // Typical paths now live inline in the event, and every byte here is
  // deliberate: the transport writes and reads sizeof(ObserverEvent) per
  // event, so struct size is directly memory traffic between the worker's
  // and relay's cache footprints. The two rare payloads (a path deeper
  // than the inline buffer, a memory-report copy) share one boxed pointer
  // instead of carrying a vector and a unique_ptr each.
  struct ObserverEvent {
    enum class Kind : std::uint8_t { kObservation, kPath, kMemory };

    /// Hop capacity of the inline path buffer (32 bytes — covers the 5–8
    /// hop diameters PINT targets; deeper paths box into Overflow).
    static constexpr std::size_t kInlinePathHops = 8;

    /// Boxed cold payloads: at most one of the members is ever active
    /// (a kPath event never carries a memory report and vice versa).
    struct Overflow {
      std::vector<SwitchId> path;
      std::unique_ptr<MemoryReport> memory;
    };

    Kind kind = Kind::kObservation;
    std::uint8_t path_len = 0;  // inline hops used (kPath, inline case)
    // Deliberately not value-initialized: the worker assigns ctx for every
    // observation/path event, and memory events never read it — zeroing it
    // per emplace would be a dead store on the hot path. Same for `path`:
    // only hops [0, path_len) are ever read.
    SinkContext ctx;
    std::string_view query{};
    Observation obs{};
    std::array<SwitchId, kInlinePathHops> path;  // inline hop storage
    // Null for the overwhelming majority of events; see Overflow.
    std::unique_ptr<Overflow> overflow{};

    void set_path(const std::vector<SwitchId>& hops) {
      if (hops.size() <= kInlinePathHops) {
        path_len = static_cast<std::uint8_t>(hops.size());
        std::copy(hops.begin(), hops.end(), path.begin());
      } else {
        overflow = std::make_unique<Overflow>();
        overflow->path = hops;
      }
    }
  };

  // Unit of worker->relay transport: a reusable buffer of events, passed
  // through the rings by owner pointer (see Shard::obs_ring).
  using EventChunk = std::vector<ObserverEvent>;

  struct Shard;

  // One relay thread: exclusively drains the SPSC rings of the shards
  // assigned to it at construction (`shards`, immutable afterwards — ring
  // consumption stays single-consumer by construction, no lock needed).
  struct RelayThread {
    // Producer<->relay sleep handshake: shard workers load/CAS it, the
    // relay stores it around its CV wait. Own cache line so the handshake
    // word never collides with this relay's counters or a neighboring
    // RelayThread in the owning vector.
    alignas(kCacheLineBytes) std::atomic<WakeState> state{WakeState::kAwake};
    // Single-writer (this relay) delivery total, merged on read by
    // relay_deliveries(); own line so the relay's increments don't
    // invalidate the producers' handshake line.
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> delivered{0};
    // Cold / read-mostly tail. The mutex guards no plain data (the sleep
    // predicate reads atomics): it exists so the CV sleep/notify pairs are
    // race-free.
    alignas(kCacheLineBytes) Mutex mutex;
    CondVar wake;
    std::vector<Shard*> shards;  // fixed at construction (ctor only)
    // Reused bridge from an event's inline path buffer to the observer
    // API's vector parameter: assign() into retained capacity, so inline
    // path delivery allocates exactly once per relay lifetime.
    std::vector<SwitchId> path_scratch;
    std::thread thread;
  };

  struct Shard {
    explicit Shard(std::size_t queue_depth) : queue(queue_depth) {}

    std::unique_ptr<PintFramework> fw;
    MpmcQueue<Batch> queue;  // multi-producer front-end, worker consumes
    // Async observer transport (null in sync mode). Events travel in
    // *chunks* — pointer-sized ring payloads — not one ring slot per
    // event: the worker constructs each event exactly once, in place, in
    // its open chunk, seals the chunk into obs_ring (an 8-byte move), and
    // the relay delivers the whole chunk under one observer-mutex
    // acquisition, then hands the emptied buffer back through obs_recycle.
    // After warmup the event path touches the allocator zero times. The
    // per-event ring this replaces paid four member-wise ObserverEvent
    // moves per event (~100ns/event of pure memcpy and cell resets) — the
    // dominant term in async-vs-sync on one core.
    //
    // The shard worker is the sole producer of obs_ring and sole consumer
    // of obs_recycle; its relay (fixed at construction) is the reverse.
    std::unique_ptr<SpscQueue<std::unique_ptr<EventChunk>>> obs_ring;
    std::unique_ptr<SpscQueue<std::unique_ptr<EventChunk>>> obs_recycle;
    RelayThread* relay = nullptr;

    // -- shard-worker-written counters (single writer; others read) -----
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> obs_published{0};
    std::atomic<std::uint64_t> obs_dropped{0};
    std::atomic<std::uint64_t> obs_blocked{0};
    std::atomic<std::uint64_t> processed{0};
    // Events published (appended to the open chunk or sealed into the
    // ring) but not yet added to obs_published: the worker accumulates
    // here (plain, worker-thread-only) and folds into the atomic once per
    // MPMC batch — the publish fast path touches no atomic counter at all.
    // Folded before pending_batches is decremented, so flush()'s
    // pending==0 wait orders every fold before its consumed-vs-published
    // comparison.
    std::uint64_t obs_batched = 0;
    // Worker-only transport state (same single-writer sharing class as the
    // counters above): the chunk being filled, and the per-chunk event
    // capacity — min(kEventChunkCapacity, max(1, depth/4)), so small
    // configured depths still mean "backpressure after ~depth events", not
    // "after kEventChunkCapacity * ring slots".
    std::unique_ptr<EventChunk> open_chunk;
    std::size_t chunk_capacity = kEventChunkCapacity;
    // Wake hysteresis (chunks): flush_published() only wakes the relay
    // once the ring holds this many chunks (half its capacity). On few
    // cores this is what keeps worker and relay from ping-ponging every
    // batch — each runs a longer stretch with its working set (flow
    // stores vs. observer/encoder state) resident. Liveness never
    // depends on it: the blocked path, flush(), and the worker's
    // going-idle path all wake unconditionally.
    std::size_t wake_occupancy = 1;
    // Worker-exact transport totals (plain: written and read only by the
    // shard worker): events sealed into obs_ring, and events the worker
    // delivered inline (flush_published()'s fast path). Their sum equals
    // obs_consumed exactly when the relay has delivered every chunk this
    // shard ever sealed and holds none in flight — the proof the inline
    // path rests on.
    std::uint64_t obs_sealed = 0;
    std::uint64_t obs_inline = 0;
    // Worker-side twin of RelayThread::path_scratch, for inline delivery.
    std::vector<SwitchId> path_scratch;

    // -- delivery total (relay-written; worker-written when provably
    //    relay-idle) ----------------------------------------------------
    // Not in the worker group above: the relay bumps it per delivered
    // chunk, and sharing its line would put that bump in the worker's
    // publish path (false sharing). The worker's inline-delivery path
    // also bumps it, but only having proved consumed == sealed + inline —
    // i.e. the relay has nothing left that could make it write — so the
    // two writers never contend on the line.
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> obs_consumed{0};

    // -- multi-writer coordination words (contended by design) ----------
    // queued counts published batches (sleep/wake signal): pushes that
    // completed their post-push increment, minus pops. A worker can pop a
    // batch before its producer's increment lands, so the counter is
    // signed and transiently negative — the sleep predicate treats <= 0
    // as "nothing published" and the producer's notify-after-increment
    // keeps liveness. pending counts batches not yet fully processed
    // (flush signal); flush_waiters gates the idle notify so workers skip
    // the mutex when nobody is flushing.
    alignas(kCacheLineBytes) std::atomic<std::ptrdiff_t> queued{0};
    std::atomic<std::size_t> pending_batches{0};
    std::atomic<WakeState> wake_state{WakeState::kAwake};
    std::atomic<int> flush_waiters{0};
    // atomic: the worker re-checks it between batches without the mutex,
    // so destruction stops the drain instead of processing a backlog of
    // batches whose caller buffers may already be gone.
    std::atomic<bool> stop{false};

    // -- cold tail ------------------------------------------------------
    // The mutex guards no plain data (the predicates above are atomics):
    // it exists so the cv sleep/notify pairs are race-free. Annotated
    // anyway so the analysis checks every wait holds it.
    alignas(kCacheLineBytes) Mutex mutex;
    CondVar wake;  // worker waits for work / stop
    CondVar idle;  // flush() waits for pending == 0
    std::thread worker;
  };

  // Per-shard framework observer: forwards callbacks to observers_ under
  // observer_mutex_ (sync mode) or publishes them to the shard's ring
  // (async mode).
  class ShardRelay;

  void worker_loop(Shard& shard) PINT_EXCLUDES(observer_mutex_);
  bool event_sheddable(ObserverEvent::Kind kind, std::string_view query) const;
  // Admits one event into the shard's transport and returns the in-place
  // slot for the caller (the shard worker) to fill — or nullptr when the
  // transport is full and kDropNewest shed the event (already counted).
  // Seals and pushes the open chunk when it reaches capacity, blocking
  // with backoff for non-sheddable events under a full ring.
  ObserverEvent* begin_publish(Shard& shard, ObserverEvent::Kind kind,
                               std::string_view query);
  // Pushes the (non-empty) open chunk into the ring and replaces it with a
  // recycled or fresh buffer; false when the ring is full (chunk intact).
  bool try_seal_open_chunk(Shard& shard);
  // End-of-batch publish: folds obs_batched into obs_published and either
  // delivers the open chunk inline (kBlock only, relay provably idle: one
  // mutex acquisition while the events are still cache-hot, no ring
  // round-trip) or seals it into the ring and wakes the relay. Called by
  // the shard worker once per drained MPMC batch.
  void flush_published(Shard& shard) PINT_EXCLUDES(observer_mutex_);
  void deliver_event(const ObserverEvent& event,
                     std::vector<SwitchId>& path_scratch)
      PINT_REQUIRES(observer_mutex_);
  void relay_loop(RelayThread& relay) PINT_EXCLUDES(observer_mutex_);
  std::size_t drain_rings(RelayThread& relay) PINT_EXCLUDES(observer_mutex_);
  // Edge-coalesced CV signal: notifies only when it wins the
  // kSleeping -> kNotified transition (at most one mutex+notify per sleep
  // episode; see the .cc protocol comment).
  static void try_wake(std::atomic<WakeState>& state, Mutex& mutex,
                       CondVar& cv);

  std::vector<std::unique_ptr<Shard>> shards_;
  FlowDefinition partition_def_ = FlowDefinition::kFiveTuple;
  // Priority shedding classes: query name -> whether its observer events
  // are droppable under kDropNewest (priority == the minimum registered).
  // Keys view shard 0's registered specs (alive for the sink's lifetime);
  // lookups hash by content, so any shard's name views match. Immutable
  // after construction, read from shard workers without a lock.
  std::unordered_map<std::string_view, bool> sheddable_;
  std::vector<std::unique_ptr<ShardRelay>> shard_relays_;
  Mutex observer_mutex_;
  std::vector<SinkObserver*> observers_ PINT_GUARDED_BY(observer_mutex_);
  // Async observer stage. relays_ is fixed at construction (shard->relay
  // assignment is immutable); relay_stop_ is the only cross-relay word and
  // flips exactly once, in the destructor.
  bool async_mode_ = false;
  OverflowPolicy async_policy_ = OverflowPolicy::kBlock;
  std::vector<std::unique_ptr<RelayThread>> relays_;
  std::atomic<bool> relay_stop_{false};
};

}  // namespace pint
