/// \file
/// PINT end-to-end framework facade (paper Fig. 3).
///
/// Wires the Query Engine, the per-query encoding logic (switch side), and
/// the Recording/Inference modules (sink side) into one object, around an
/// open, registry-driven core:
///
///   * Queries name the value they aggregate via a ValueExtractor registry
///     (extractor.h): any metric computable from a SwitchView can back a
///     query — nothing is hardcoded, and several queries may share an
///     aggregation type.
///   * A PintFramework is constructed only through PintFramework::Builder,
///     which registers QuerySpecs, extractors, per-query recorder factories
///     and observers, validates bit budgets and extractor names at build
///     time, and returns typed BuildErrors instead of silently
///     misconfiguring.
///   * The sink emits a generic SinkReport of per-query observations
///     (sink_report.h) and notifies registered SinkObservers, so
///     applications subscribe to query results instead of poking framework
///     internals.
///   * Batched overloads at_switch(span<Packet>) / at_sink(span<const
///     Packet>) process packets with no per-packet allocation on the steady
///     path — the hook for sharding and multi-sink scale-out.
///
/// Wire model (unchanged from the paper): a packet's digest lanes hold, for
/// each query in its selected query set (in set order), that query's lanes
/// (path tracing may use several instances). The sink recomputes the set
/// from the packet id, so no lane metadata travels on the wire — exactly how
/// PINT stays header-free.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "coding/hashed_decoder.h"
#include "common/types.h"
#include "packet/packet.h"
#include "pint/dynamic_aggregation.h"
#include "pint/extractor.h"
#include "pint/perpacket_aggregation.h"
#include "pint/query.h"
#include "pint/query_engine.h"
#include "pint/query_spec.h"
#include "pint/recording_store.h"
#include "pint/sink_report.h"
#include "pint/static_aggregation.h"

namespace pint {

enum class BuildErrorCode : std::uint8_t {
  kNoQueries,
  kEmptyQueryName,
  kDuplicateQueryName,
  kDuplicateExtractor,
  kUnknownExtractor,
  kBadBitBudget,        // zero, or above the global budget
  kBadFrequency,        // outside (0, 1]
  kBudgetBelowInstanceCount,
  kEmptySwitchUniverse,  // static query with no switch universe
  kInfeasiblePlan,       // query mix cannot meet frequencies in the budget
  kTooManyConcurrentQueries,  // a plan set exceeds SinkReport capacity
  kInconsistentMemoryBudget,  // per-query budgets over-commit the ceiling,
                              // leave a per-flow query with nothing, or sit
                              // on a stateless per-packet query
};

const char* to_string(BuildErrorCode code);

struct BuildError {
  BuildErrorCode code;
  std::string message;
};

class PintFramework;

/// A flow key a caller already computed for one flow definition, handed
/// into `at_sink` so the framework does not hash the tuple again for
/// queries using that definition. ShardedSink hashes each packet once for
/// shard routing and forwards the result here, so the digest's flow key is
/// computed exactly once end to end.
struct FlowKeyHint {
  FlowDefinition def = FlowDefinition::kFiveTuple;
  std::uint64_t key = 0;
};

/// Result of Builder::build(): exactly one of framework/error is set.
struct BuildResult {
  std::unique_ptr<PintFramework> framework;
  std::optional<BuildError> error;

  bool ok() const { return framework != nullptr; }
  explicit operator bool() const { return ok(); }
};

class PintFramework {
 public:
  class Builder {
   public:
    Builder();
    ~Builder();
    Builder(Builder&&) noexcept;
    Builder& operator=(Builder&&) noexcept;
    Builder(const Builder&);
    Builder& operator=(const Builder&);

    Builder& global_bit_budget(unsigned bits);
    Builder& seed(std::uint64_t seed);

    /// Total Recording-Module storage (bytes) across every per-flow
    /// query's decoders/recorders; 0 (the default) keeps the seed
    /// behavior — unbounded maps, no eviction, byte-identical output.
    /// With a ceiling set, per-query QuerySpec::memory_budget_bytes carve
    /// out explicit shares and the remainder is split evenly across the
    /// unbudgeted per-flow queries; least-recently-updated flows are
    /// evicted when a store crosses its share (see pint/recording_store.h).
    Builder& memory_ceiling_bytes(std::size_t bytes);
    std::size_t memory_ceiling() const { return memory_ceiling_; }

    /// Emit `on_memory_report` every `packets` sink packets (0, the
    /// default, disables the heartbeat). Complements the eviction-edge
    /// trigger: an operator dashboard hears about occupancy even while
    /// nothing is being evicted — and, unlike the edge trigger, the
    /// heartbeat fires with memory bounding off too (occupancy figures
    /// are then the unbounded stores' creation-time estimates). Inside a
    /// ShardedSink every replica counts its own packets, so expect one
    /// report per shard per interval.
    Builder& memory_report_interval_packets(std::uint64_t packets);
    std::uint64_t memory_report_interval() const {
      return memory_report_interval_;
    }

    /// Time-based heartbeat: emit `on_memory_report` whenever at least
    /// `interval` has elapsed since the last report (checked as packets
    /// pass the sink, so an idle sink stays silent — this is a telemetry
    /// cadence, not a timer thread). Zero (the default) disables it.
    /// Composes with the packet-interval trigger; inside a ShardedSink
    /// every shard replica keeps its own clock, so expect one report per
    /// shard per interval.
    Builder& memory_report_interval(std::chrono::nanoseconds interval);
    std::chrono::nanoseconds memory_report_interval_time() const {
      return memory_report_interval_time_;
    }

    /// Opt-in asynchronous observer delivery for ShardedSink: each shard
    /// worker publishes observer events into a `depth`-deep SPSC ring
    /// consumed by dedicated relay threads, so expensive observer
    /// callbacks leave the packet path. `policy` decides what a full ring
    /// does to the worker: kBlock (lossless, bounded-memory backpressure)
    /// or kDropNewest (events dropped and counted exactly — see
    /// `ShardedSink::observer_counters`). Per-shard event order is
    /// preserved either way. `depth` 0 (the default) keeps the serialized
    /// synchronous delivery. A plain PintFramework ignores this: its
    /// observers always run inline in at_sink().
    ///
    /// `relay_threads` shards the relay stage itself: relay thread `t`
    /// exclusively owns the rings of shards `s` with
    /// `s % relay_threads == t`, so ring consumption stays single-consumer
    /// while heavy observer work spreads across cores. Delivery to the
    /// registered observers remains serialized (one event at a time, under
    /// one mutex) regardless of the count, so observers never need to be
    /// thread-safe and the default of 1 is behavior-identical to the
    /// single-relay design. Values above the shard count are clamped —
    /// a relay with no rings would be a no-op thread. 0 is invalid.
    Builder& async_observers(std::size_t depth,
                             OverflowPolicy policy = OverflowPolicy::kBlock,
                             unsigned relay_threads = 1);
    std::size_t async_observer_depth() const { return async_depth_; }
    OverflowPolicy async_observer_policy() const { return async_policy_; }
    unsigned async_relay_threads() const { return async_relay_threads_; }

    /// Whether Recording-Module stores draw their per-flow nodes from a
    /// slab arena (common/arena.h). On by default — fewer mallocs and
    /// better locality under eviction churn, with identical behavior and
    /// accounting; off reverts to the global heap (the bench's arena
    /// on/off comparison).
    Builder& recording_arena(bool enabled);
    bool recording_arena_enabled() const { return recording_arena_; }

    /// Copy of this builder with the memory ceiling and every per-query
    /// budget divided by `parts`. Bounded never becomes unbounded: the
    /// ceiling floors at 1 byte, and under a ceiling a per-query budget
    /// that divides to zero falls back to sharing the remainder (so
    /// divided budgets cannot over-commit the divided ceiling), while
    /// without a ceiling it floors at 1 byte. ShardedSink builds its
    /// per-shard replicas through this so that the shard budgets sum to
    /// (at most) the configured ceiling. A ceiling below one byte per
    /// per-flow query per part is unsatisfiable and still fails the
    /// replica build loudly (kInconsistentMemoryBudget).
    Builder with_memory_divided(unsigned parts) const;

    /// Default admission/eviction policy for every per-flow query's
    /// Recording-Module stores (pint/policy.h); individual queries
    /// override via QuerySpec::store_policy. kLru (the default) installs
    /// no policy object and keeps the stores on their original
    /// byte-identical code path.
    Builder& default_store_policy(StorePolicyKind kind);
    StorePolicyKind default_store_policy() const {
      return default_policy_;
    }

    /// Universe of switch IDs for static per-flow (path) decoding.
    Builder& switch_universe(std::vector<std::uint64_t> ids);

    /// Register a custom metric extractor; duplicate names surface as a
    /// kDuplicateExtractor build error.
    Builder& register_extractor(std::string name, ValueExtractor fn);

    /// Register one query (spec registry keyed by query.name).
    Builder& add_query(QuerySpec spec);

    /// Non-owning; must outlive the framework.
    Builder& add_observer(SinkObserver* observer);

    /// Validates and constructs. The builder can be reused afterwards.
    [[nodiscard]] BuildResult build() const;

    /// Throws std::invalid_argument with the BuildError message on failure.
    [[nodiscard]] std::unique_ptr<PintFramework> build_or_throw() const;

   private:
    unsigned budget_ = 16;
    std::uint64_t seed_ = 0x50494E54;  // "PINT"
    std::size_t memory_ceiling_ = 0;   // 0 = unbounded (seed behavior)
    std::uint64_t memory_report_interval_ = 0;  // 0 = no heartbeat
    std::chrono::nanoseconds memory_report_interval_time_{0};  // 0 = off
    std::size_t async_depth_ = 0;  // 0 = synchronous observer delivery
    OverflowPolicy async_policy_ = OverflowPolicy::kBlock;
    unsigned async_relay_threads_ = 1;
    bool recording_arena_ = true;
    StorePolicyKind default_policy_ = StorePolicyKind::kLru;
    std::vector<std::uint64_t> universe_;
    ValueExtractorRegistry registry_;
    std::optional<std::string> duplicate_extractor_;
    std::vector<QuerySpec> specs_;
    std::vector<SinkObserver*> observers_;
  };

  // --- switch side ---------------------------------------------------------
  /// Called by every switch in path order; `i` is the 1-based hop number.
  void at_switch(Packet& packet, HopIndex i, const SwitchView& view);

  /// Batched hot path: every packet in `packets` crosses this switch at hop
  /// `i` under the same view. Allocation-free per packet on the steady path
  /// (a packet's own digest lanes are sized once, at its first hop).
  void at_switch(std::span<Packet> packets, HopIndex i,
                 const SwitchView& view);

  // --- sink side -----------------------------------------------------------
  /// Extracts the digest, updates recorders, notifies observers, and returns
  /// what was learned. `k` = the flow's path length in switches (from TTL).
  SinkReport at_sink(const Packet& packet, unsigned k);

  /// Scalar hot path: like the returning overload, but fills a caller-owned
  /// report (cleared first) — no 400-byte return copy. ShardedSink workers
  /// drain their queues through this.
  void at_sink(const Packet& packet, unsigned k, SinkReport& report);

  /// Scalar hot path with a precomputed flow key: `hint.key` must equal
  /// `flow_key(packet.tuple, hint.def)` — the framework seeds its per-packet
  /// key cache with it instead of rehashing. ShardedSink forwards the key it
  /// hashed for shard routing through this overload.
  void at_sink(const Packet& packet, unsigned k, SinkReport& report,
               const FlowKeyHint& hint);

  /// Batched hot path. `reports` must be empty (observer-only delivery) or
  /// have one entry per packet; entries are overwritten, not appended, so a
  /// caller-owned buffer makes the loop allocation-free.
  void at_sink(std::span<const Packet> packets, unsigned k,
               std::span<SinkReport> reports = {});

  /// Non-owning; must outlive the framework.
  void add_observer(SinkObserver* observer);

  // --- wire format ---------------------------------------------------------
  /// Lane widths (bits) of the packet's query set, in wire order. Returns the
  /// lane count; `out` (if non-empty) receives the widths and must hold at
  /// least max_lanes() entries.
  std::size_t lane_widths(PacketId packet, std::span<unsigned> out) const;
  std::size_t max_lanes() const { return max_lanes_; }

  /// Bit-pack the packet's digest lanes into wire bytes, and back. Both ends
  /// derive the lane layout from the packet id alone (header-free).
  std::vector<std::uint8_t> pack_wire(const Packet& packet) const;
  void unpack_wire(std::span<const std::uint8_t> bytes, Packet& packet) const;

  // --- introspection -------------------------------------------------------
  const QueryEngine& engine() const { return *engine_; }
  unsigned global_bit_budget() const { return engine_->global_bit_budget(); }

  /// True when a memory ceiling or any per-query budget is configured.
  bool memory_bounded() const { return memory_bounded_; }
  std::size_t memory_ceiling_bytes() const { return memory_ceiling_; }

  /// Packets between heartbeat memory reports (0 = heartbeat off).
  std::uint64_t memory_report_interval() const {
    return memory_report_interval_;
  }

  /// Minimum elapsed time between timed heartbeat reports (0 = off).
  std::chrono::nanoseconds memory_report_interval_time() const {
    return memory_report_interval_time_;
  }

  /// Snapshot of every per-flow query's Recording-Module storage
  /// (occupancy, peak, evictions). Cheap. While bounding is enabled the
  /// sizes are refreshed on every touch; an unbounded store deliberately
  /// sizes entries only at creation (hot-path economics — see
  /// recording_store.h), so unbounded used/peak figures understate state
  /// that grows after creation. Pushed automatically to observers
  /// (on_memory_report) after packets that evicted flows.
  MemoryReport memory_report() const;
  std::size_t lanes_for_set(const QuerySet& set) const;
  const QuerySpec* spec(std::string_view query) const;
  std::vector<std::string_view> query_names() const;

  /// Lowest QuerySpec::priority registered across all queries. Transport
  /// layers (ShardedSink rings, fan-in frames) may shed only this class
  /// under pressure; with all-default priorities every query is in it, so
  /// shedding degenerates to the original priority-free behavior.
  unsigned min_query_priority() const { return min_priority_; }

  /// Whether a per-flow query currently holds Recording-Module state for
  /// `flow_key` (no LRU effect). False for unknown/per-packet queries —
  /// the bench's residency probe for policy comparisons.
  bool flow_resident(std::string_view query, std::uint64_t flow_key) const;

  /// Flow key of `tuple` under a query's flow definition.
  std::uint64_t flow_key_for(std::string_view query,
                             const FiveTuple& tuple) const;

  // --- inference -----------------------------------------------------------
  // By query name; the name-free overloads resolve the unique (first
  // declared) query of the matching aggregation type — convenient for the
  // common one-query-per-family mix.

  /// Path of a flow, if fully decoded.
  std::optional<std::vector<SwitchId>> flow_path(std::string_view query,
                                                 std::uint64_t flow_key) const;
  std::optional<std::vector<SwitchId>> flow_path(std::uint64_t flow_key) const;

  /// Fraction of hops resolved for a flow (0 if unseen).
  double path_progress(std::string_view query, std::uint64_t flow_key) const;
  double path_progress(std::uint64_t flow_key) const;

  /// Latency quantile for (flow, hop), if samples exist.
  std::optional<double> latency_quantile(std::string_view query,
                                         std::uint64_t flow_key, HopIndex hop,
                                         double phi) const;
  std::optional<double> latency_quantile(std::uint64_t flow_key, HopIndex hop,
                                         double phi) const;

  /// Values appearing in at least a theta-fraction of (flow, hop)'s samples
  /// (Theorem 2); empty if the flow is unknown.
  std::vector<std::uint64_t> latency_frequent_values(std::string_view query,
                                                     std::uint64_t flow_key,
                                                     HopIndex hop,
                                                     double theta) const;
  std::vector<std::uint64_t> latency_frequent_values(std::uint64_t flow_key,
                                                     HopIndex hop,
                                                     double theta) const;

 private:
  friend class Builder;

  struct Binding {
    QuerySpec spec;
    ValueExtractor extract;
    unsigned lanes = 1;  // digest lanes this query occupies

    // Mixed into per-flow recorder seeds so same-family queries keep
    // independent sketch randomness (0 for the first of each family,
    // preserving the pre-Builder seeds).
    std::uint64_t recorder_salt = 0;

    // Exactly one engaged, per spec.query.aggregation.
    std::optional<PathTracingQuery> path;
    std::optional<DynamicAggregationQuery> dynamic;
    std::optional<PerPacketQuery> perpacket;

    // Recording module state (off-switch storage), keyed by flow and held
    // in LRU-evicting stores. Unsynchronized, like the rest of the
    // binding: mutated only inside at_sink()/at_sink_batch(), whose caller
    // provides the serialization (one shard worker per framework instance
    // under ShardedSink). Capacity 0 (no ceiling) keeps every flow —
    // the seed behavior. The Builder assigns capacities after validating
    // the memory budgets; only the store matching the aggregation type is
    // ever populated. on_path_decoded fires on each decoder's
    // incomplete->complete edge — once per flow unbounded; under a ceiling
    // a flow whose decoder was evicted announces again when its rebuilt
    // decoder re-completes, so bounded downstream consumers can re-learn
    // evicted paths (dedupe downstream if duplicates matter).
    RecordingStore<HashedPathDecoder> decoders{
        0, [](const HashedPathDecoder& d) { return d.approx_bytes(); }};
    RecordingStore<FlowLatencyRecorder> recorders{
        0, [](const FlowLatencyRecorder& r) { return r.approx_bytes(); }};
  };

  PintFramework() = default;

  /// `view` extracts per call; `hoisted` (one value per binding) takes
  /// precedence when non-null — the batched path evaluates each extractor
  /// once per batch instead of once per packet.
  void encode_one(Packet& packet, HopIndex i, const SwitchView* view,
                  const double* hoisted);
  void sink_one(const Packet& packet, unsigned k, SinkReport& report,
                const FlowKeyHint* hint);
  void heartbeat_tick();  // periodic on_memory_report, counted per packet

  const Binding* find_binding(std::string_view query) const;
  const Binding* find_binding(AggregationType aggregation) const;

  /// Sums the per-binding store counters into `out` (sets `bounded`).
  void fill_memory_counters(MemoryCounters& out) const;

  std::uint64_t seed_ = 0;
  std::unique_ptr<QueryEngine> engine_;
  std::vector<Binding> bindings_;  // in engine order
  std::vector<std::uint64_t> switch_ids_;
  std::vector<SinkObserver*> observers_;
  std::size_t max_lanes_ = 0;
  std::vector<double> extract_scratch_;  // batched at_switch hoisting
  bool memory_bounded_ = false;
  std::size_t memory_ceiling_ = 0;
  unsigned min_priority_ = 1;
  std::uint64_t last_reported_evictions_ = 0;  // on_memory_report edge
  std::uint64_t memory_report_interval_ = 0;   // heartbeat period (packets)
  std::uint64_t packets_since_memory_report_ = 0;
  std::chrono::nanoseconds memory_report_interval_time_{0};  // 0 = off
  std::chrono::steady_clock::time_point last_timed_memory_report_{};
};

}  // namespace pint
