// PINT end-to-end framework facade (paper Fig. 3).
//
// Wires the Query Engine, the per-query encoding logic (switch side), and
// the Recording/Inference modules (sink side) into one object. The examples
// and the combined experiment (Fig. 11) use this API; individual modules
// remain usable standalone.
//
// Wire model: a packet's digest lanes hold, for each query in its selected
// query set (in set order), that query's lanes (path tracing may use several
// instances). The sink recomputes the set from the packet id, so no lane
// metadata travels on the wire — exactly how PINT stays header-free.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "coding/hashed_decoder.h"
#include "common/types.h"
#include "packet/packet.h"
#include "pint/dynamic_aggregation.h"
#include "pint/perpacket_aggregation.h"
#include "pint/query.h"
#include "pint/query_engine.h"
#include "pint/static_aggregation.h"

namespace pint {

// What a switch tells PINT about itself when a packet passes (a subset of
// Table 1, enough for the three evaluated use cases).
struct SwitchView {
  SwitchId id = 0;
  double hop_latency_ns = 0.0;
  double link_utilization = 0.0;  // of the packet's egress port
  double queue_occupancy = 0.0;
};

// Everything the sink learned from one packet.
struct SinkReport {
  std::optional<double> bottleneck_utilization;  // per-packet query, if ran
  bool latency_sample_recorded = false;
  bool path_digest_recorded = false;
};

struct FrameworkConfig {
  unsigned global_bit_budget = 16;
  std::uint64_t seed = 0x50494E54;  // "PINT"

  // Per-use-case knobs (active only if the matching query is registered).
  PathTracingConfig path;
  DynamicAggregationConfig latency;
  PerPacketConfig perpacket;
};

class PintFramework {
 public:
  // `queries` entries must use distinct names; aggregation type selects the
  // module. `switch_ids` is the universe for path decoding.
  PintFramework(FrameworkConfig config, std::vector<Query> queries,
                std::vector<std::uint64_t> switch_ids);

  // --- switch side ---------------------------------------------------------
  // Called by every switch in path order; `i` is the 1-based hop number.
  void at_switch(Packet& packet, HopIndex i, const SwitchView& view);

  // --- sink side -----------------------------------------------------------
  // Extracts the digest, updates recorders, returns what was learned.
  // `k` = the flow's path length in switches (from TTL).
  SinkReport at_sink(const Packet& packet, unsigned k);

  // --- inference -----------------------------------------------------------
  const QueryEngine& engine() const { return *engine_; }

  // Path of a flow, if fully decoded.
  std::optional<std::vector<SwitchId>> flow_path(std::uint64_t flow_key) const;
  // Fraction of hops resolved for a flow (0 if unseen).
  double path_progress(std::uint64_t flow_key) const;

  // Latency quantile for (flow, hop), if samples exist.
  std::optional<double> latency_quantile(std::uint64_t flow_key, HopIndex hop,
                                         double phi) const;

  // Values appearing in at least a theta-fraction of (flow, hop)'s samples
  // (Theorem 2); empty if the flow is unknown.
  std::vector<std::uint64_t> latency_frequent_values(std::uint64_t flow_key,
                                                     HopIndex hop,
                                                     double theta) const;

  std::size_t lanes_for_set(const QuerySet& set) const;

 private:
  struct QueryBinding {
    Query query;
    std::size_t index;  // in engine order
    unsigned lanes;     // digest lanes this query occupies
  };

  FrameworkConfig config_;
  std::unique_ptr<QueryEngine> engine_;
  std::vector<QueryBinding> bindings_;
  std::vector<std::uint64_t> switch_ids_;

  std::optional<PathTracingQuery> path_query_;
  std::optional<DynamicAggregationQuery> latency_query_;
  std::optional<PerPacketQuery> perpacket_query_;

  // Recording module state (off-switch storage).
  std::unordered_map<std::uint64_t, HashedPathDecoder> path_decoders_;
  std::unordered_map<std::uint64_t, FlowLatencyRecorder> latency_recorders_;
  std::unordered_map<std::uint64_t, unsigned> flow_hops_;
};

}  // namespace pint
