#include "pint/dynamic_aggregation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.h"

namespace pint {

namespace {
// KLL parameter from an item budget: total retained items across levels is
// about 1.5x the top-level capacity k.
std::size_t kll_k_for_items(std::size_t items) {
  return std::max<std::size_t>(8, items * 2 / 3);
}
}  // namespace

DynamicAggregationQuery::DynamicAggregationQuery(
    DynamicAggregationConfig config, std::uint64_t seed)
    : config_(config),
      compressor_(MultiplicativeCompressor::eps_for(config.max_value,
                                                    config.bits),
                  config.max_value),
      g_(GlobalHash(seed).derive(0xD1A)),
      rounding_(GlobalHash(seed).derive(0xD1B)) {
  if (config.bits == 0 || config.bits > 64)
    throw std::invalid_argument("bits in [1,64]");
}

Digest DynamicAggregationQuery::encode_step(PacketId packet, HopIndex i,
                                            Digest cur, double value) const {
  if (!baseline_writes(g_, packet, i)) return cur;
  if (config_.randomized_rounding) {
    return compressor_.encode_randomized(value, rounding_, packet);
  }
  return compressor_.encode(value);
}

DynamicAggregationQuery::Sample DynamicAggregationQuery::decode(
    PacketId packet, Digest digest, unsigned k) const {
  const HopIndex hop = baseline_carrier(g_, packet, k);
  return Sample{hop, compressor_.decode(digest)};
}

FlowLatencyRecorder::FlowLatencyRecorder(unsigned k, std::size_t sketch_bytes,
                                         std::uint64_t seed,
                                         std::size_t bytes_per_item)
    : k_(k), use_sketch_(sketch_bytes > 0), counts_(k, 0) {
  if (k == 0) throw std::invalid_argument("k > 0");
  if (bytes_per_item == 0) throw std::invalid_argument("bytes_per_item > 0");
  if (use_sketch_) {
    const std::size_t items_per_hop =
        std::max<std::size_t>(12, sketch_bytes / k / bytes_per_item);
    sketches_.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
      sketches_.emplace_back(kll_k_for_items(items_per_hop), seed ^ (i + 1));
    }
  } else {
    raw_.resize(k);
  }
  // Frequent-values tracking is cheap; keep 64 counters per hop.
  frequents_.reserve(k);
  for (unsigned i = 0; i < k; ++i) frequents_.emplace_back(64);
}

void FlowLatencyRecorder::add(const DynamicAggregationQuery::Sample& sample) {
  if (sample.hop == 0 || sample.hop > k_)
    throw std::out_of_range("hop out of range");
  const unsigned idx = sample.hop - 1;
  ++counts_[idx];
  if (use_sketch_) {
    sketches_[idx].add(sample.value);
  } else {
    raw_[idx].push_back(sample.value);
  }
  if (!windows_.empty()) windows_[idx].add(sample.value);
  frequents_[idx].add(
      static_cast<std::uint64_t>(std::llround(sample.value)));
}

void FlowLatencyRecorder::enable_sliding_window(std::size_t window,
                                                std::size_t blocks) {
  for (std::size_t c : counts_) {
    if (c != 0)
      throw std::logic_error("enable_sliding_window before first add()");
  }
  windows_.clear();
  windows_.reserve(k_);
  for (unsigned i = 0; i < k_; ++i) {
    windows_.emplace_back(window, blocks, 64, 0x51DE ^ (i + 1));
  }
}

std::optional<double> FlowLatencyRecorder::windowed_quantile(
    HopIndex hop, double phi) const {
  if (hop == 0 || hop > k_) throw std::out_of_range("hop out of range");
  if (windows_.empty() || windows_[hop - 1].items_covered() == 0)
    return std::nullopt;
  return windows_[hop - 1].quantile(phi);
}

std::optional<double> FlowLatencyRecorder::quantile(HopIndex hop,
                                                    double phi) const {
  if (hop == 0 || hop > k_) throw std::out_of_range("hop out of range");
  const unsigned idx = hop - 1;
  if (counts_[idx] == 0) return std::nullopt;
  if (use_sketch_) return sketches_[idx].quantile(phi);
  return percentile(raw_[idx], phi);
}

std::vector<std::uint64_t> FlowLatencyRecorder::frequent_values(
    HopIndex hop, double theta) const {
  if (hop == 0 || hop > k_) throw std::out_of_range("hop out of range");
  return frequents_[hop - 1].frequent(theta);
}

std::size_t FlowLatencyRecorder::samples_at(HopIndex hop) const {
  if (hop == 0 || hop > k_) throw std::out_of_range("hop out of range");
  return counts_[hop - 1];
}

std::size_t FlowLatencyRecorder::approx_bytes() const {
  std::size_t bytes = sizeof(*this) + counts_.capacity() * sizeof(std::size_t);
  for (const auto& hop_samples : raw_) {
    bytes += sizeof(hop_samples) + hop_samples.capacity() * sizeof(double);
  }
  for (const KllSketch& sketch : sketches_) bytes += sketch.size_bytes();
  for (const SpaceSaving& freq : frequents_) bytes += freq.size_bytes();
  for (const SlidingWindowQuantiles& win : windows_) bytes += win.size_bytes();
  return bytes;
}

}  // namespace pint
