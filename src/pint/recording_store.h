/// \file
/// Recording Module storage manager (paper Sections 3.3-3.4).
///
/// The Recording Module sits off-switch and stores per-flow state (decoders,
/// sketches). Queries carry an optional per-flow space budget, and an
/// operator-level memory ceiling bounds the total. This manager owns the
/// per-flow entries, tracks an approximate byte accounting, and evicts the
/// least-recently-updated flows when over the ceiling — the paper's
/// observation that "oftentimes one mostly cares about tracing large flows"
/// makes LRU the natural policy: active (large) flows keep refreshing.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <stdexcept>
#include <unordered_map>

namespace pint {

template <typename PerFlowState>
class RecordingStore {
 public:
  using SizeFn = std::function<std::size_t(const PerFlowState&)>;
  using Factory = std::function<PerFlowState(std::uint64_t flow_key)>;

  /// `capacity_bytes` = 0 disables eviction. `size_of` reports a state's
  /// approximate footprint (re-evaluated on every touch).
  RecordingStore(std::size_t capacity_bytes, Factory factory, SizeFn size_of)
      : capacity_(capacity_bytes), factory_(std::move(factory)),
        size_of_(std::move(size_of)) {
    if (!factory_ || !size_of_) {
      throw std::invalid_argument("callbacks required");
    }
  }

  /// Get or create the state for a flow and mark it most-recently-used.
  /// May evict other flows to stay within capacity.
  PerFlowState& touch(std::uint64_t flow_key) {
    auto it = entries_.find(flow_key);
    if (it == entries_.end()) {
      lru_.push_front(flow_key);
      Entry e{factory_(flow_key), lru_.begin(), 0};
      e.bytes = size_of_(e.state);
      used_ += e.bytes;
      it = entries_.emplace(flow_key, std::move(e)).first;
      ++created_;
    } else {
      lru_.erase(it->second.lru_pos);
      lru_.push_front(flow_key);
      it->second.lru_pos = lru_.begin();
      // Re-account: state sizes grow as digests accumulate.
      const std::size_t now = size_of_(it->second.state);
      used_ += now - it->second.bytes;
      it->second.bytes = now;
    }
    enforce_capacity(flow_key);
    return it->second.state;
  }

  /// Read-only lookup without LRU effect.
  const PerFlowState* find(std::uint64_t flow_key) const {
    auto it = entries_.find(flow_key);
    return it == entries_.end() ? nullptr : &it->second.state;
  }

  bool erase(std::uint64_t flow_key) {
    auto it = entries_.find(flow_key);
    if (it == entries_.end()) return false;
    used_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    return true;
  }

  std::size_t flows() const { return entries_.size(); }
  std::size_t used_bytes() const { return used_; }
  std::size_t capacity_bytes() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t created() const { return created_; }

 private:
  struct Entry {
    PerFlowState state;
    std::list<std::uint64_t>::iterator lru_pos;
    std::size_t bytes;
  };

  void enforce_capacity(std::uint64_t protect) {
    if (capacity_ == 0) return;
    while (used_ > capacity_ && !lru_.empty()) {
      const std::uint64_t victim = lru_.back();
      if (victim == protect) break;  // never evict the flow being touched
      auto it = entries_.find(victim);
      used_ -= it->second.bytes;
      lru_.pop_back();
      entries_.erase(it);
      ++evictions_;
    }
  }

  std::size_t capacity_;
  Factory factory_;
  SizeFn size_of_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::size_t used_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t created_ = 0;
};

}  // namespace pint
