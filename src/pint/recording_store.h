/// \file
/// Recording Module storage manager (paper Sections 3.3-3.4).
///
/// The Recording Module sits off-switch and stores per-flow state (decoders,
/// sketches). Queries carry an optional per-flow space budget, and an
/// operator-level memory ceiling bounds the total. This manager owns the
/// per-flow entries, tracks an approximate byte accounting, and evicts the
/// least-recently-updated flows when over the ceiling — the paper's
/// observation that "oftentimes one mostly cares about tracing large flows"
/// makes LRU the natural policy: active (large) flows keep refreshing.
///
/// LRU is the default, but admission and eviction are pluggable
/// (pint/policy.h): `set_policy` installs a StorePolicy consulted on every
/// arrival (admit/reject for the `try_*` accessors) and on every eviction
/// candidate (evict/second-chance). With no policy installed the store runs
/// its original LRU code path byte-identically.
///
/// Accounting contract: `used_bytes()` is always the exact sum of the last
/// reported size of every resident entry (sizes may grow *or shrink* between
/// touches — a path decoder's candidate sets shrink as hops resolve). The
/// flow being touched is never evicted, so `used_bytes()` may transiently
/// exceed the capacity by at most one entry; `peak_used_bytes()` records the
/// high-water mark and `over_budget()` flags the only persistent overshoot
/// case (a sole protected entry larger than the whole ceiling).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "pint/policy.h"

namespace pint {

/// Footprint of a vector-valued store entry (the common application case:
/// a per-flow path), including the map-node overhead.
template <typename T>
std::size_t vector_entry_bytes(const std::vector<T>& v) {
  return sizeof(v) + v.capacity() * sizeof(T) + kMapNodeOverheadBytes;
}

template <typename PerFlowState>
class RecordingStore {
 public:
  using SizeFn = std::function<std::size_t(const PerFlowState&)>;
  using Factory = std::function<PerFlowState(std::uint64_t flow_key)>;

  /// `capacity_bytes` = 0 disables eviction. `size_of` reports a state's
  /// approximate footprint — re-evaluated on every touch while a capacity
  /// is set; an unbounded store sizes entries once at creation (and on
  /// put()) so the no-ceiling hot path never walks state it will not
  /// evict.
  ///
  /// By default the store's own nodes (hash-map entries, LRU links) come
  /// from a private SlabArena (common/arena.h): steady-state create/evict
  /// churn recycles pooled nodes instead of hitting the heap. `set_arena`
  /// (before first use) switches back to plain heap allocation — identical
  /// behavior and accounting, only the allocator differs.
  RecordingStore(std::size_t capacity_bytes, Factory factory, SizeFn size_of)
      : capacity_(capacity_bytes), factory_(std::move(factory)),
        size_of_(std::move(size_of)) {
    if (!factory_ || !size_of_) {
      throw std::invalid_argument("callbacks required");
    }
  }

  /// Factory-less store: every insertion must go through the
  /// `touch(flow_key, make)` overload (the framework builds decoders with
  /// call-site context — path length, seeds — that no stored factory can
  /// know up front).
  RecordingStore(std::size_t capacity_bytes, SizeFn size_of)
      : capacity_(capacity_bytes), size_of_(std::move(size_of)) {
    if (!size_of_) throw std::invalid_argument("size_of required");
  }

  /// Enables or disables the slab arena behind the store's containers.
  /// Only valid while the store is empty (the builder configures stores
  /// before any packet arrives); throws std::logic_error otherwise.
  void set_arena(bool enabled) {
    if (enabled == (arena_ != nullptr)) return;  // no-op, any time
    if (!entries_.empty()) {
      throw std::logic_error("RecordingStore: arena toggle on a live store");
    }
    if (enabled) {
      arena_ = std::make_unique<SlabArena>();
    }
    SlabArena* backing = enabled ? arena_.get() : nullptr;
    // Propagating move-assignments swap in the new allocator; both
    // containers are empty, so no elements move between arenas.
    entries_ = EntryMap(0, MapHash{}, MapEq{}, MapAlloc{backing});
    lru_ = LruList(ListAlloc{backing});
    if (!enabled) arena_.reset();
  }

  /// The store's slab arena, or nullptr when arena-backing is disabled.
  const SlabArena* arena() const { return arena_.get(); }

  /// Installs an admission/eviction policy (pint/policy.h); nullptr
  /// reverts to plain LRU — the store then runs its original code path
  /// byte-identically. Only valid while the store is empty (the builder
  /// configures stores before any packet arrives), like `set_arena`;
  /// throws std::logic_error otherwise.
  void set_policy(std::unique_ptr<StorePolicy> policy) {
    if (!entries_.empty()) {
      throw std::logic_error("RecordingStore: policy change on a live store");
    }
    policy_ = std::move(policy);
  }

  /// The installed policy, or nullptr when the store runs plain LRU.
  const StorePolicy* policy() const { return policy_.get(); }
  StorePolicyKind policy_kind() const {
    return policy_ == nullptr ? StorePolicyKind::kLru : policy_->kind();
  }

  /// Get or create the state for a flow and mark it most-recently-used.
  /// May evict other flows to stay within capacity. Creation is *forced*:
  /// an installed policy is trained on the arrival but cannot reject it
  /// (this accessor must return state) — admission-gated callers use
  /// `try_touch`.
  PerFlowState& touch(std::uint64_t flow_key) {
    if (!factory_) throw std::logic_error("store built without a factory");
    return touch(flow_key, [&] { return factory_(flow_key); });
  }

  /// Like `touch(flow_key)`, but builds a missing state with `make()` —
  /// used when construction needs per-call context.
  template <typename MakeFn>
  PerFlowState& touch(std::uint64_t flow_key, MakeFn&& make) {
    return *touch_impl(flow_key, std::forward<MakeFn>(make),
                       /*forced=*/true);
  }

  /// Admission-aware variant of `touch`: when the installed policy rejects
  /// a non-resident flow, no state is created and nullptr is returned (the
  /// rejection is counted in `admissions_rejected()`). Identical to
  /// `touch` when no policy is installed or the flow is already resident.
  [[nodiscard]] PerFlowState* try_touch(std::uint64_t flow_key) {
    if (!factory_) throw std::logic_error("store built without a factory");
    return try_touch(flow_key, [&] { return factory_(flow_key); });
  }

  /// Admission-aware `touch(flow_key, make)`; see `try_touch(flow_key)`.
  template <typename MakeFn>
  [[nodiscard]] PerFlowState* try_touch(std::uint64_t flow_key,
                                        MakeFn&& make) {
    return touch_impl(flow_key, std::forward<MakeFn>(make),
                      /*forced=*/false);
  }

  /// Insert or overwrite a flow's state in one accounted step and mark it
  /// most-recently-used. May evict other flows. Unlike touch(), the
  /// assigned state is re-sized even when unbounded (an overwrite replaces
  /// the entry wholesale, so its stale creation size would never heal).
  [[nodiscard]] PerFlowState& put(std::uint64_t flow_key,
                                  PerFlowState value) {
    auto it = entries_.find(flow_key);
    if (it == entries_.end()) {
      return touch(flow_key, [&] { return std::move(value); });
    }
    if (policy_ != nullptr) policy_->on_hit(flow_key);
    it->second.state = std::move(value);
    bump(it);
    if (capacity_ == 0) reaccount(it);
    enforce_capacity(flow_key);
    peak_used_ = std::max(peak_used_, used_);
    return it->second.state;
  }

  /// Admission-aware `put`: a non-resident flow the policy rejects is shed
  /// (the value is dropped, nullptr returned, the rejection counted); an
  /// overwrite of a resident flow is a hit and always succeeds. Identical
  /// to `put` when no policy is installed.
  [[nodiscard]] PerFlowState* try_put(std::uint64_t flow_key,
                                      PerFlowState value) {
    auto it = entries_.find(flow_key);
    if (it == entries_.end()) {
      return touch_impl(
          flow_key, [&] { return std::move(value); }, /*forced=*/false);
    }
    return &put(flow_key, std::move(value));
  }

  /// Mark an existing flow most-recently-used and re-account its size
  /// (while a capacity is set; like touch(), an unbounded store keeps
  /// creation-time sizes to stay off the hot path). Returns nullptr (and
  /// has no effect) if the flow is not resident. Unlike touch(), never
  /// creates state — for consumers that only want to refresh flows they
  /// already track (e.g. a sample landing on a stored path).
  [[nodiscard]] PerFlowState* refresh(std::uint64_t flow_key) {
    auto it = entries_.find(flow_key);
    if (it == entries_.end()) return nullptr;
    if (policy_ != nullptr) policy_->on_hit(flow_key);
    bump(it);
    enforce_capacity(flow_key);
    peak_used_ = std::max(peak_used_, used_);
    return &it->second.state;
  }

  /// Read-only lookup without LRU effect.
  [[nodiscard]] const PerFlowState* find(std::uint64_t flow_key) const {
    auto it = entries_.find(flow_key);
    return it == entries_.end() ? nullptr : &it->second.state;
  }

  bool erase(std::uint64_t flow_key) {
    auto it = entries_.find(flow_key);
    if (it == entries_.end()) return false;
    used_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    return true;
  }

  std::size_t flows() const { return entries_.size(); }
  std::size_t used_bytes() const { return used_; }
  std::size_t capacity_bytes() const { return capacity_; }

  /// Reset the ceiling (0 disables eviction). A lowered ceiling takes
  /// effect on the next touch — no immediate eviction sweep.
  void set_capacity_bytes(std::size_t capacity_bytes) {
    capacity_ = capacity_bytes;
  }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t created() const { return created_; }

  /// Non-resident arrivals the policy refused (try_touch/try_put returned
  /// nullptr). Exact: every admission-gated arrival lands in `created()`
  /// or here, never both. Always 0 without a policy.
  std::uint64_t admissions_rejected() const { return admissions_rejected_; }

  /// Eviction candidates the policy retained (second chances granted).
  std::uint64_t evict_retains() const { return evict_retains_; }

  /// Policy-internal counters (all-zeros without a policy): admissions
  /// granted because the doorkeeper knew the key, and evictions decided by
  /// a frequency comparison.
  std::uint64_t doorkeeper_hits() const {
    return policy_ == nullptr ? 0 : policy_->stats().doorkeeper_hits;
  }
  std::uint64_t frequency_evictions() const {
    return policy_ == nullptr ? 0 : policy_->stats().frequency_evictions;
  }

  /// High-water mark of used_bytes() as observable between operations
  /// (recorded after each touch's eviction pass, so the mid-touch
  /// transient of "new entry accounted, victims not yet evicted" is not
  /// counted); at most capacity_bytes() plus one entry — the protected
  /// flow of the touch that crossed the ceiling.
  std::size_t peak_used_bytes() const { return peak_used_; }

  /// Largest single-entry footprint ever accounted.
  std::size_t max_entry_bytes() const { return max_entry_bytes_; }

  /// True while the store cannot get back under its ceiling because the
  /// only remaining (touch-protected) entry alone exceeds it. The entry is
  /// deliberately kept — evicting the flow being updated would livelock the
  /// caller — and the flag lets operators see the budget is unsatisfiable.
  bool over_budget() const { return capacity_ != 0 && used_ > capacity_; }

 private:
  // Threading contract: no locks — a store belongs to exactly one
  // execution context. Framework-owned stores (Binding::decoders/
  // recorders) are only touched under at_sink()/at_sink_batch(), which the
  // framework already requires to be externally serialized; behind a
  // ShardedSink each shard worker owns its framework instance outright.
  // Reads (find) mutate nothing but also take no lock, so they must come
  // from that same context — this is not a reader-writer structure. The
  // LRU list + accounting make nearly every operation a write anyway, so
  // a mutex here would serialize everything; sharding (one store per
  // shard) is the supported way to scale, mirroring ShardedSink.
  using ListAlloc = ArenaAllocator<std::uint64_t>;
  using LruList = std::list<std::uint64_t, ListAlloc>;

  struct Entry {
    PerFlowState state;
    typename LruList::iterator lru_pos;
    std::size_t bytes;
  };

  using MapHash = std::hash<std::uint64_t>;
  using MapEq = std::equal_to<std::uint64_t>;
  using MapAlloc = ArenaAllocator<std::pair<const std::uint64_t, Entry>>;
  using EntryMap =
      std::unordered_map<std::uint64_t, Entry, MapHash, MapEq, MapAlloc>;

  // Shared engine behind touch/try_touch/try_put. `forced` callers must
  // receive state, so the policy is trained on the arrival but its verdict
  // is ignored; admission-gated callers get nullptr on rejection.
  template <typename MakeFn>
  PerFlowState* touch_impl(std::uint64_t flow_key, MakeFn&& make,
                           bool forced) {
    auto it = entries_.find(flow_key);
    if (it == entries_.end()) {
      if (policy_ != nullptr) {
        const AdmitVerdict verdict = policy_->on_admit(flow_key);
        if (!forced && verdict == AdmitVerdict::kReject) {
          ++admissions_rejected_;
          return nullptr;
        }
      }
      // Exception safety: user callbacks (factory, size fn) run before any
      // container mutation, and the map emplace lands before the LRU push
      // (rolled back if the push throws), so a failure at any point leaves
      // the store consistent — no orphaned LRU keys, no inflated used_.
      Entry e{make(), lru_.end(), 0};
      e.bytes = size_of_(e.state);
      it = entries_.emplace(flow_key, std::move(e)).first;
      try {
        lru_.push_front(flow_key);
      } catch (...) {
        entries_.erase(it);
        throw;
      }
      it->second.lru_pos = lru_.begin();
      used_ += it->second.bytes;
      ++created_;
      max_entry_bytes_ = std::max(max_entry_bytes_, it->second.bytes);
    } else {
      if (policy_ != nullptr) policy_->on_hit(flow_key);
      bump(it);
    }
    enforce_capacity(flow_key);
    peak_used_ = std::max(peak_used_, used_);
    return &it->second.state;
  }

  void bump(typename EntryMap::iterator it) {
    // Relink the existing node instead of erase+push: no allocator round
    // trip on the touch path, and lru_pos stays valid (splice moves the
    // node, invalidating nothing).
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    // Unbounded stores never evict, so walking the state for a fresh size
    // on every touch would only tax the decode hot path; entries keep
    // their creation-time size until a capacity is set.
    if (capacity_ != 0) reaccount(it);
  }

  void reaccount(typename EntryMap::iterator it) {
    // States grow as digests accumulate, but may also shrink (decoders
    // drop candidate sets as hops resolve), so both directions are
    // handled explicitly instead of leaning on unsigned wraparound.
    const std::size_t now = size_of_(it->second.state);
    const std::size_t before = it->second.bytes;
    if (now >= before) {
      used_ += now - before;
    } else {
      const std::size_t shrink = before - now;
      used_ = used_ >= shrink ? used_ - shrink : 0;
    }
    it->second.bytes = now;
    max_entry_bytes_ = std::max(max_entry_bytes_, now);
  }

  void enforce_capacity(std::uint64_t protect) {
    if (capacity_ == 0) return;
    if (policy_ == nullptr) {
      // Plain LRU: the store's original eviction loop, untouched, so the
      // default configuration stays byte-identical to the pre-policy code.
      while (used_ > capacity_ && !lru_.empty()) {
        const std::uint64_t victim = lru_.back();
        if (victim == protect) break;  // never evict the flow being touched
        auto it = entries_.find(victim);
        used_ -= it->second.bytes;
        lru_.pop_back();
        entries_.erase(it);
        ++evictions_;
      }
      return;
    }
    // Policy path: the LRU tail is only a *candidate* — the policy may
    // grant a second chance (candidate spliced back to the front), capped
    // at kMaxEvictRetains per pass so the ceiling still wins against a
    // policy that would retain everything. Termination: every iteration
    // evicts (entries shrink), retains (bounded), or rotates the protected
    // flow off the tail (bounded by the retains that pushed it there).
    std::size_t retains = 0;
    while (used_ > capacity_ && !lru_.empty()) {
      const std::uint64_t victim = lru_.back();
      if (victim == protect) {
        // Never evict the flow being touched. Alone it means the ceiling
        // is unsatisfiable (over_budget); otherwise it only reached the
        // tail because every other candidate was retained this pass —
        // rotate it to the front and keep enforcing.
        if (lru_.size() == 1) break;
        lru_.splice(lru_.begin(), lru_,
                    entries_.find(protect)->second.lru_pos);
        continue;
      }
      auto it = entries_.find(victim);
      if (retains < kMaxEvictRetains &&
          policy_->on_evict_candidate(victim, protect) ==
              EvictVerdict::kRetain) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        ++retains;
        ++evict_retains_;
        continue;
      }
      used_ -= it->second.bytes;
      lru_.pop_back();
      entries_.erase(it);
      ++evictions_;
    }
  }

  // Second chances granted per eviction pass before the policy is
  // overruled; bounds the work of one enforce_capacity call and guarantees
  // forward progress even against a policy that always retains.
  static constexpr std::size_t kMaxEvictRetains = 8;

  std::size_t capacity_;
  Factory factory_;
  SizeFn size_of_;
  std::unique_ptr<StorePolicy> policy_;  // nullptr = plain LRU
  // Declared before the containers so it is destroyed after them: nodes
  // must not outlive the slabs they live in.
  std::unique_ptr<SlabArena> arena_ = std::make_unique<SlabArena>();
  EntryMap entries_{0, MapHash{}, MapEq{}, MapAlloc{arena_.get()}};
  LruList lru_{ListAlloc{arena_.get()}};  // front = most recent
  std::size_t used_ = 0;
  std::size_t peak_used_ = 0;
  std::size_t max_entry_bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t created_ = 0;
  std::uint64_t admissions_rejected_ = 0;
  std::uint64_t evict_retains_ = 0;
};

}  // namespace pint
