#include "pint/wire_format.h"

#include <algorithm>

namespace pint {

namespace {

std::size_t checked_total_bits(std::span<const unsigned> widths) {
  std::size_t total_bits = 0;
  for (unsigned w : widths) {
    if (w == 0 || w > 64) throw std::invalid_argument("width in [1,64]");
    total_bits += w;
  }
  return total_bits;
}

}  // namespace

std::size_t pack_digests_into(std::span<const Digest> lanes,
                              std::span<const unsigned> widths,
                              std::span<std::uint8_t> out) {
  if (lanes.size() != widths.size())
    throw std::invalid_argument("lane/width count mismatch");
  const std::size_t total_bits = checked_total_bits(widths);
  const std::size_t bytes = (total_bits + 7) / 8;
  if (out.size() < bytes) throw std::invalid_argument("output too small");
  std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(bytes), 0);
  std::size_t bit_pos = 0;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const Digest value = lanes[i] & low_bits_mask(widths[i]);
    if (value != lanes[i])
      throw std::invalid_argument("lane value exceeds its width");
    for (unsigned b = 0; b < widths[i]; ++b, ++bit_pos) {
      if ((value >> b) & 1) {
        out[bit_pos >> 3] |= static_cast<std::uint8_t>(1u << (bit_pos & 7));
      }
    }
  }
  return bytes;
}

std::size_t unpack_digests_into(std::span<const std::uint8_t> bytes,
                                std::span<const unsigned> widths,
                                std::span<Digest> out) {
  const std::size_t total_bits = checked_total_bits(widths);
  if (bytes.size() < (total_bits + 7) / 8)
    throw std::invalid_argument("buffer too small for widths");
  if (out.size() < widths.size())
    throw std::invalid_argument("output too small");
  std::size_t bit_pos = 0;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    Digest v = 0;
    for (unsigned b = 0; b < widths[i]; ++b, ++bit_pos) {
      if ((bytes[bit_pos >> 3] >> (bit_pos & 7)) & 1) {
        v |= Digest{1} << b;
      }
    }
    out[i] = v;
  }
  return widths.size();
}

std::vector<std::uint8_t> pack_digests(std::span<const Digest> lanes,
                                       std::span<const unsigned> widths) {
  std::vector<std::uint8_t> out((checked_total_bits(widths) + 7) / 8, 0);
  pack_digests_into(lanes, widths, out);
  return out;
}

std::vector<Digest> unpack_digests(std::span<const std::uint8_t> bytes,
                                   std::span<const unsigned> widths) {
  std::vector<Digest> out(widths.size());
  unpack_digests_into(bytes, widths, out);
  return out;
}

}  // namespace pint
