#include "pint/wire_format.h"

namespace pint {

std::vector<std::uint8_t> pack_digests(std::span<const Digest> lanes,
                                       std::span<const unsigned> widths) {
  if (lanes.size() != widths.size())
    throw std::invalid_argument("lane/width count mismatch");
  std::size_t total_bits = 0;
  for (unsigned w : widths) {
    if (w == 0 || w > 64) throw std::invalid_argument("width in [1,64]");
    total_bits += w;
  }
  std::vector<std::uint8_t> out((total_bits + 7) / 8, 0);
  std::size_t bit_pos = 0;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const Digest value = lanes[i] & low_bits_mask(widths[i]);
    if (value != lanes[i])
      throw std::invalid_argument("lane value exceeds its width");
    for (unsigned b = 0; b < widths[i]; ++b, ++bit_pos) {
      if ((value >> b) & 1) {
        out[bit_pos >> 3] |= static_cast<std::uint8_t>(1u << (bit_pos & 7));
      }
    }
  }
  return out;
}

std::vector<Digest> unpack_digests(std::span<const std::uint8_t> bytes,
                                   std::span<const unsigned> widths) {
  std::size_t total_bits = 0;
  for (unsigned w : widths) {
    if (w == 0 || w > 64) throw std::invalid_argument("width in [1,64]");
    total_bits += w;
  }
  if (bytes.size() < (total_bits + 7) / 8)
    throw std::invalid_argument("buffer too small for widths");
  std::vector<Digest> out;
  out.reserve(widths.size());
  std::size_t bit_pos = 0;
  for (unsigned w : widths) {
    Digest v = 0;
    for (unsigned b = 0; b < w; ++b, ++bit_pos) {
      if ((bytes[bit_pos >> 3] >> (bit_pos & 7)) & 1) {
        v |= Digest{1} << b;
      }
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace pint
