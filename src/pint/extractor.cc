#include "pint/extractor.h"

#include <algorithm>

namespace pint {

ValueExtractorRegistry::ValueExtractorRegistry() {
  add(std::string(extractor::kSwitchId),
      [](const SwitchView& v) { return static_cast<double>(v.id); });
  add(std::string(extractor::kHopLatency),
      [](const SwitchView& v) { return v.get(metric::kHopLatencyNs); });
  add(std::string(extractor::kLinkUtilization),
      [](const SwitchView& v) { return v.get(metric::kLinkUtilization); });
  add(std::string(extractor::kQueueOccupancy),
      [](const SwitchView& v) { return v.get(metric::kQueueOccupancy); });
  add(std::string(extractor::kIngressTimestamp),
      [](const SwitchView& v) { return v.get(metric::kIngressTimestampNs); });
}

bool ValueExtractorRegistry::add(std::string name, ValueExtractor fn) {
  if (map_.find(name) != map_.end()) return false;
  map_.emplace(std::move(name), std::move(fn));
  return true;
}

const ValueExtractor* ValueExtractorRegistry::find(
    std::string_view name) const {
  auto it = map_.find(name);
  return it == map_.end() ? nullptr : &it->second;
}

std::vector<std::string> ValueExtractorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& kv : map_) out.push_back(kv.first);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pint
