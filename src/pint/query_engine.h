/// \file
/// PINT Query Engine (paper Section 3.4, Fig. 3).
///
/// The engine compiles concurrent queries and a global per-packet bit budget
/// into an *execution plan*: a probability distribution over query sets, each
/// set's cumulative bit budget within the global budget, and each query
/// appearing with total probability equal to its requested frequency. All
/// switches select the same set for a packet by hashing the packet id with
/// the global query-selection hash, so no coordination bits are added.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "hash/global_hash.h"
#include "pint/query.h"

namespace pint {

struct QuerySet {
  std::vector<std::size_t> query_indices;  // into the engine's query list
  double probability = 0.0;
};

struct ExecutionPlan {
  std::vector<QuerySet> sets;

  /// Total probability each query runs with (diagnostics).
  std::vector<double> query_coverage;
};

class QueryEngine {
 public:
  /// Throws std::invalid_argument if any single query exceeds the global
  /// budget or the mix is infeasible (sum of frequency-weighted bits exceeds
  /// the budget even with perfect packing is allowed to fail at compile()).
  QueryEngine(std::vector<Query> queries, unsigned global_bit_budget,
              std::uint64_t seed = 0x9E37C0DE);

  /// Greedy fractional packing: repeatedly form the set of queries with
  /// positive residual frequency that fits the budget (preferring higher
  /// residuals), assign it the largest probability that keeps every member
  /// within its residual, and subtract. Reproduces the Section 6.4 plan
  /// exactly for the paper's three-query workload.
  const ExecutionPlan& plan() const { return plan_; }

  /// The query set a given packet runs (same answer on every switch).
  const QuerySet& set_for_packet(PacketId packet) const;

  /// True iff query q runs on this packet.
  bool query_runs(std::size_t query_index, PacketId packet) const;

  const std::vector<Query>& queries() const { return queries_; }
  unsigned global_bit_budget() const { return global_budget_; }
  const GlobalHash& selection_hash() const { return selection_hash_; }

 private:
  void compile();

  std::vector<Query> queries_;
  unsigned global_budget_;
  GlobalHash selection_hash_;
  ExecutionPlan plan_;
  std::vector<double> cumulative_;  // prefix sums of set probabilities
};

}  // namespace pint
