/// \file
/// ValueExtractor registry: how a Query names the value it aggregates.
///
/// An extractor turns a SwitchView into the scalar v(p, s) a query encodes.
/// Queries reference extractors by name; the registry resolves names at
/// PintFramework::Builder::build() time, so an unknown name is a typed build
/// error instead of a silent misconfiguration. The Table-1 metrics are
/// pre-registered; applications add their own with register_extractor() and
/// never touch framework code.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pint/metric.h"

namespace pint {

using ValueExtractor = std::function<double(const SwitchView&)>;

namespace extractor {

/// Built-in extractor names (registered by every ValueExtractorRegistry).
inline constexpr std::string_view kSwitchId = "switch_id";
inline constexpr std::string_view kHopLatency = "hop_latency";
inline constexpr std::string_view kLinkUtilization = "link_utilization";
inline constexpr std::string_view kQueueOccupancy = "queue_occupancy";
inline constexpr std::string_view kIngressTimestamp = "ingress_timestamp";

}  // namespace extractor

class ValueExtractorRegistry {
 public:
  /// Starts with the built-ins registered.
  ValueExtractorRegistry();

  /// Returns false (and leaves the registry unchanged) if `name` is taken.
  bool add(std::string name, ValueExtractor fn);

  /// nullptr if unknown.
  const ValueExtractor* find(std::string_view name) const;

  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Registered names, sorted (diagnostics / error messages).
  std::vector<std::string> names() const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, ValueExtractor, StringHash, std::equal_to<>>
      map_;
};

}  // namespace pint
