// Minimal discrete-event engine: a time-ordered queue of closures.
// Ties break by insertion order so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace pint {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  void at(TimeNs t, Callback fn) {
    events_.push(Event{t, next_seq_++, std::move(fn)});
  }

  void after(TimeNs delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  TimeNs now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::uint64_t processed() const { return processed_; }

  // Run until the queue empties or simulated time would pass `t_end`.
  void run_until(TimeNs t_end) {
    while (!events_.empty() && events_.top().t <= t_end) {
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.t;
      ++processed_;
      ev.fn();
    }
    if (now_ < t_end) now_ = t_end;
  }

  void run() { run_until(INT64_MAX); }

 private:
  struct Event {
    TimeNs t;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace pint
