// Discrete-event network simulator (the paper's NS3 substitute; Sections 2
// and 6.1).
//
// Model:
//  * Topology nodes are hosts or switches; every undirected edge becomes two
//    directed links, each with bandwidth, propagation delay, and a tail-drop
//    FIFO egress queue with a byte buffer limit.
//  * Packets serialize at link rate *including* telemetry bytes — this is
//    the mechanism behind Figs. 1-2: INT's per-hop stack inflates every
//    packet, consuming capacity and queue space.
//  * Telemetry runs at switch egress dequeue (where HPCC's qlen/txBytes are
//    defined). INT mode appends a per-hop stack; PINT mode folds the EWMA
//    link utilization into a fixed-width digest via the per-packet
//    aggregation module; both can be off.
//  * Receivers send 60B cumulative ACKs carrying the telemetry feedback;
//    senders run a CongestionControl (HPCC or TCP Reno) per flow.
//  * Reliability: cumulative ACK + duplicate-ACK fast retransmit + timeout,
//    enough to survive tail drops in the Fig. 1/2 TCP runs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "pint/framework.h"
#include "pint/perpacket_aggregation.h"
#include "sim/event_queue.h"
#include "topology/graph.h"
#include "transport/cc_interface.h"
#include "transport/hpcc.h"
#include "transport/tcp_reno.h"

namespace pint {

enum class TelemetryMode : std::uint8_t { kNone, kInt, kPint };
enum class TransportKind : std::uint8_t { kTcpReno, kHpcc };

struct SimConfig {
  TelemetryMode telemetry = TelemetryMode::kNone;
  TransportKind transport = TransportKind::kTcpReno;

  // INT mode: values collected per hop (drives the byte overhead:
  // 8B header + 4B * values * hops).
  unsigned int_values_per_hop = 3;

  // PINT mode: global bit budget (rounded up to bytes on the wire) and the
  // fraction of packets carrying the congestion-control query (Fig. 8's p).
  unsigned pint_bit_budget = 8;
  double pint_frequency = 1.0;

  // Full-framework PINT (Section 6.4): run the complete three-query mix
  // (path tracing + latency quantiles + HPCC feedback) through the
  // PintFramework on every data packet, instead of only the CC query. The
  // framework's Query Engine packs the queries into `pint_bit_budget`.
  bool pint_full = false;

  // Full-framework mode: also hand every delivered data packet's telemetry
  // view (the PINT packet and its switch-hop count) to this callback, in
  // delivery order. This is the mirror point multi-sink fan-in pipelines
  // (sim/fanin.h) use to feed external ShardedSinks the exact stream the
  // in-simulator sink consumes.
  std::function<void(const Packet& packet, unsigned switch_hops)> sink_tap;

  // Full-framework mode: replaces Simulator::full_framework_builder as the
  // source of the PintFramework. Scenario runs use this to swap in a
  // different query mix (e.g. adding queue-occupancy and utilization
  // queries for the detection apps) and to attach observers before the
  // simulator builds. The callback must honor `config.pint_bit_budget` or
  // build_or_throw will reject the mix.
  std::function<PintFramework::Builder(
      const SimConfig& config, const Graph& topology,
      const std::vector<bool>& is_host)>
      framework_builder;

  // Fixed extra per-packet overhead in bytes (used by the Fig. 1/2 sweep
  // where overhead is the x-axis; applied when telemetry == kNone).
  Bytes extra_overhead_bytes = 0;

  Bytes mtu_payload = 1000;     // data bytes per packet (RDMA-like 1000B MTU)
  Bytes base_header = 40;       // IP + transport header
  Bytes ack_bytes = 60;

  double host_bandwidth_bps = 10e9;
  double fabric_bandwidth_bps = 40e9;  // switch-switch links
  TimeNs link_delay = 1 * kMicro;
  Bytes switch_buffer_bytes = 2 * 1024 * 1024;  // per egress queue

  HpccParams hpcc;
  TcpRenoParams tcp;
  TimeNs rto = 5 * kMilli;

  std::uint64_t seed = 42;
};

struct FlowStats {
  Bytes size = 0;
  TimeNs start = 0;
  TimeNs finish = -1;
  bool done = false;
  std::uint32_t path_hops = 0;  // switch count on the path
  std::uint64_t packets_sent = 0;
  std::uint64_t retransmits = 0;

  TimeNs fct() const { return done ? finish - start : -1; }
  double goodput_bps(TimeNs horizon) const {
    const TimeNs t = done ? finish - start : horizon - start;
    if (t <= 0) return 0.0;
    return static_cast<double>(size) * 8.0 / (static_cast<double>(t) / 1e9);
  }
};

struct SimCounters {
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_dropped = 0;      // tail drops (buffer overflow)
  std::uint64_t packets_lost_injected = 0;  // fault-injected link losses
  std::uint64_t acks_delivered = 0;
  std::uint64_t telemetry_bytes_total = 0;
};

class Simulator {
 public:
  // `is_host[n]` marks host nodes; all others are switches.
  Simulator(const Graph& topology, std::vector<bool> is_host,
            SimConfig config);

  // Register a flow; returns its id. Paths are ECMP shortest paths.
  std::uint32_t add_flow(NodeId src_host, NodeId dst_host, Bytes size,
                         TimeNs start);

  void run_until(TimeNs t_end);

  const std::vector<FlowStats>& flow_stats() const { return stats_; }
  const SimCounters& counters() const { return counters_; }
  TimeNs now() const { return queue_.now(); }

  // Telemetry introspection for tests: a link's current EWMA utilization.
  double link_utilization(NodeId from, NodeId to) const;

  // Scale factor applied to EWMA utilization before digest compression
  // (Section 4.3: maps the interesting range onto 8-bit codes). Public so
  // load-tracking consumers can convert digested values back to fractions.
  static constexpr double kUtilScale = 1e4;

  // --- Fault injection (scenario episodes) -------------------------------
  // All three take effect immediately for packets not yet serialized; call
  // them from scheduled events to script failures mid-run.

  // Degrades (or restores) the serialization rate of BOTH directions of the
  // (a, b) edge. factor = 1 restores full rate; a small factor (e.g. 0.02)
  // models a failing link: packets still trickle through, so egress
  // telemetry keeps sampling the huge standing queue. Throws if no such
  // edge or factor <= 0.
  void set_link_rate_factor(NodeId a, NodeId b, double factor);

  // Random drop probability at dequeue on the DIRECTED link from -> to
  // (0 disables). Injected losses count in packets_lost_injected, not in
  // packets_dropped.
  void set_link_loss(NodeId from, NodeId to, double probability);

  // Adds uniform random extra propagation delay in [0, max_jitter] per
  // packet on the DIRECTED link from -> to (0 disables), reordering
  // deliveries inside the window.
  void set_link_reorder(NodeId from, NodeId to, TimeNs max_jitter);

  // Full-framework mode: the Recording/Inference state accumulated by the
  // sink, and the framework flow key of a simulated flow.
  const PintFramework* framework() const { return framework_.get(); }
  std::uint64_t framework_flow_key(std::uint32_t flow_id) const;

  // The Builder the simulator uses for full-framework (Section 6.4) mode:
  // the three-query mix over `topology`'s switches. External sink pipelines
  // (ShardedSink, sim/fanin.h) build from the same configuration so their
  // replicas decode the simulator's digests bit-for-bit.
  static PintFramework::Builder full_framework_builder(
      const SimConfig& config, const Graph& topology,
      const std::vector<bool>& is_host);

 private:
  struct SimPacket {
    PacketId id = 0;
    std::uint32_t flow = 0;
    bool is_ack = false;
    std::uint64_t seq = 0;        // first payload byte carried
    Bytes payload = 0;
    std::uint64_t ack_bytes = 0;  // cumulative (ACK only)
    TimeNs data_sent_time = 0;    // echoed for RTT samples
    std::vector<NodeId> path;     // node sequence, src..dst
    std::uint32_t hop = 0;        // index of current node in path
    HopIndex switch_hops = 0;     // switches traversed so far

    // Telemetry state.
    std::vector<HpccHopInfo> int_stack;
    Digest pint_digest = 0;
    bool pint_has_cc = false;  // this packet carries the CC query

    // Full-framework mode: the PINT digest lanes + per-node arrival time
    // (for hop-latency measurement); ACKs echo the sink's decoded
    // bottleneck utilization.
    Packet pint_pkt;
    TimeNs node_arrival = 0;
    double ack_pint_util = -1.0;

    Bytes wire_bytes(const SimConfig& cfg) const;
  };

  struct DirectedLink {
    NodeId from = 0, to = 0;
    double bandwidth_bps = 0.0;
    TimeNs prop_delay = 0;
    Bytes buffer_limit = 0;
    Bytes queued_bytes = 0;
    bool transmitting = false;
    std::deque<SimPacket> queue;

    // Telemetry state (per egress link, as HPCC defines it).
    double ewma_util = 0.0;
    double tx_bytes = 0.0;       // cumulative
    TimeNs last_dequeue = 0;

    // Fault-injection state (scenario episodes).
    double rate_factor = 1.0;    // serialization-rate multiplier
    double loss_prob = 0.0;      // random drop probability at dequeue
    TimeNs reorder_jitter = 0;   // max extra propagation delay
  };

  struct FlowState {
    std::uint32_t id = 0;
    NodeId src = 0, dst = 0;
    Bytes size = 0;
    std::vector<NodeId> path;          // forward path
    std::vector<NodeId> reverse_path;  // for ACKs
    std::unique_ptr<CongestionControl> cc;

    std::uint64_t next_seq = 0;        // next byte to send (first time)
    std::uint64_t acked = 0;           // cumulative bytes acked
    std::uint64_t recv_cumulative = 0; // receiver's in-order byte count
    std::vector<std::pair<std::uint64_t, std::uint64_t>> ooo;  // recv gaps
    unsigned dup_acks = 0;
    std::uint64_t recover_seq = 0;     // fast-recovery guard
    std::optional<std::uint64_t> retransmit_seq;
    TimeNs last_activity = 0;
    std::uint64_t timeout_epoch = 0;
    bool done = false;
  };

  DirectedLink& link(NodeId a, NodeId b);
  const DirectedLink* find_link(NodeId a, NodeId b) const;

  void try_send(FlowState& flow);
  void send_packet(FlowState& flow, std::uint64_t seq, bool retransmit);
  void enqueue(SimPacket pkt);
  void start_transmission(DirectedLink& l);
  void on_dequeue(DirectedLink& l, SimPacket pkt);
  void deliver(SimPacket pkt);
  void handle_data_at_host(SimPacket pkt);
  void handle_ack_at_host(SimPacket pkt);
  void arm_timeout(std::uint32_t flow_id);
  void apply_switch_telemetry(DirectedLink& l, SimPacket& pkt, TimeNs tau);

  Graph topology_;
  std::vector<bool> is_host_;
  SimConfig config_;
  EventQueue queue_;
  Rng rng_;
  GlobalHash ecmp_hash_;
  GlobalHash pint_freq_hash_;
  std::optional<PerPacketQuery> pint_query_;
  std::unique_ptr<PintFramework> framework_;
  std::unordered_map<std::uint64_t, DirectedLink> links_;
  std::vector<FlowState> flows_;
  std::vector<FlowStats> stats_;
  SimCounters counters_;
  PacketId next_packet_id_ = 1;
};

}  // namespace pint
