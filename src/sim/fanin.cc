#include "sim/fanin.h"

#include <stdexcept>
#include <utility>

#include "hash/global_hash.h"

namespace pint {

bool FanInCollector::ingest(std::span<const std::uint8_t> bytes) {
  std::vector<StreamRecord> records;
  if (!decoder_.decode(bytes, records)) return false;
  dispatch(records, observers_);
  bytes_ingested_ += bytes.size();
  records_ingested_ += records.size();
  return true;
}

FanInPipeline::FanInPipeline(const PintFramework::Builder& builder,
                             FanInConfig config)
    : config_(config) {
  if (config_.num_sinks == 0) {
    throw std::invalid_argument("FanInPipeline needs at least one sink");
  }
  if (config_.batch_size == 0) config_.batch_size = 1;
  sinks_.reserve(config_.num_sinks);
  for (unsigned i = 0; i < config_.num_sinks; ++i) {
    auto node = std::make_unique<SinkNode>();
    node->sink =
        std::make_unique<ShardedSink>(builder, config_.shards_per_sink);
    node->tap = std::make_unique<EncodingObserver>(node->encoder);
    node->sink->add_observer(node->tap.get());
    sinks_.push_back(std::move(node));
  }
  // Splitting flows across sink hosts needs the same partition feasibility
  // as splitting across shards; ShardedSink only enforces it when it has
  // more than one shard, so re-check here for the multi-sink case.
  if (config_.num_sinks > 1 &&
      !common_flow_partition(sinks_[0]->sink->shard(0)).has_value()) {
    throw std::invalid_argument(
        "queries aggregate by both source and destination IP: no flow "
        "partition keeps both consistent across sinks");
  }
}

unsigned FanInPipeline::sink_of(const FiveTuple& tuple) const {
  // Same partition rule as the shards, one level up: flows (under the
  // coarsest common definition) are homed to exactly one sink host.
  const std::uint64_t key =
      flow_key(tuple, sinks_[0]->sink->partition_definition());
  // Salted so sink and shard selection stay independent: otherwise all of a
  // sink's flows would collapse onto a few of its shards.
  return static_cast<unsigned>(mix64(key ^ 0xFA41D) % sinks_.size());
}

void FanInPipeline::deliver(const Packet& packet, unsigned k) {
  SinkNode& node = *sinks_[sink_of(packet.tuple)];
  std::vector<Packet>& staged = node.staging[k];
  staged.push_back(packet);
  if (staged.size() >= config_.batch_size) submit_staged(node, k);
}

void FanInPipeline::submit_staged(SinkNode& node, unsigned k) {
  std::vector<Packet>& staged = node.staging[k];
  if (staged.empty()) return;
  // The submitted span must outlive the sink's flush(): park the batch on
  // the in-flight list until ship_epoch().
  node.in_flight.push_back(std::move(staged));
  staged.clear();
  node.sink->submit(node.in_flight.back(), k);
}

void FanInPipeline::ship_epoch() {
  for (auto& node : sinks_) {
    for (auto& [k, staged] : node->staging) {
      if (!staged.empty()) submit_staged(*node, k);
    }
    node->sink->flush();
    node->in_flight.clear();
    if (node->encoder.records() == 0) continue;
    const std::vector<std::uint8_t> bytes = node->encoder.finish();
    bytes_shipped_ += bytes.size();
    if (!collector_.ingest(bytes)) {
      throw std::runtime_error("fan-in collector rejected a sink stream");
    }
  }
}

}  // namespace pint
