#include "sim/fanin.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "hash/global_hash.h"
#include "transport/sender.h"

namespace pint {

// --- FanInCollector ---------------------------------------------------------

void FanInCollector::ingest_stream(std::uint32_t source,
                                   std::span<const std::uint8_t> bytes) {
  SourceState& state = sources_[source];
  if (state.status.ended) return;  // a finished source hears nothing more
  if (state.reassembler == nullptr) {
    state.reassembler = std::make_unique<FrameReassembler>();
  }
  state.reassembler->feed(bytes);
  bytes_ingested_ += bytes.size();
  process_events(state);
}

void FanInCollector::end_stream(std::uint32_t source) {
  SourceState& state = sources_[source];
  if (state.status.ended) return;
  if (state.reassembler != nullptr) {
    state.reassembler->finish();
    process_events(state);
  }
  if (state.status.epoch_open) {
    // The source died between an epoch-open and its close marker: partial
    // data, surfaced instead of silently merged.
    ++state.status.epochs_incomplete;
    state.status.epoch_open = false;
  }
  state.status.ended = true;
  // Epoch GC: the parse buffer and per-source sequence ledger are dead
  // weight now — free them so long-running fan-ins do not accumulate
  // state for every source that ever connected.
  state.reassembler.reset();
}

void FanInCollector::disconnect_stream(std::uint32_t source) {
  SourceState& state = sources_[source];
  if (state.status.ended) return;
  if (state.reassembler != nullptr) {
    // A frame torn by the disconnect surfaces as a typed truncation
    // error before the buffer is discarded.
    state.reassembler->finish();
    process_events(state);
  }
  if (state.status.epoch_open) {
    ++state.status.epochs_incomplete;
    state.status.epoch_open = false;
  }
  ++state.status.disconnects;
  // Fresh reassembler, fresh sequence baseline: the reconnected stream's
  // first frame establishes its own ledger entry, so resuming at the next
  // epoch boundary raises no false gap against the dead connection — and
  // the dead connection's torn tail can never splice onto the new bytes.
  state.reassembler = std::make_unique<FrameReassembler>();
}

std::size_t FanInCollector::live_sources() const {
  std::size_t live = 0;
  for (const auto& [source, state] : sources_) {
    if (state.reassembler != nullptr) ++live;
  }
  return live;
}

bool FanInCollector::ingest(std::span<const std::uint8_t> bytes) {
  std::vector<StreamRecord> records;
  if (!decoder_.decode(bytes, records)) return false;
  dispatch(records, observers_);
  bytes_ingested_ += bytes.size();
  records_ingested_ += records.size();
  return true;
}

const FanInCollector::SourceStatus* FanInCollector::source_status(
    std::uint32_t source) const {
  const auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : &it->second.status;
}

std::uint64_t FanInCollector::incomplete_epochs() const {
  std::uint64_t total = 0;
  for (const auto& [source, state] : sources_) {
    total += state.status.epochs_incomplete;
  }
  return total;
}

void FanInCollector::note_error(const FrameError& error) {
  ++errors_total_;
  if (errors_.size() < kMaxLoggedErrors) errors_.push_back(error);
}

void FanInCollector::process_events(SourceState& state) {
  while (auto event = state.reassembler->next_view()) {
    if (const auto* error = std::get_if<FrameError>(&*event)) {
      note_error(*error);
      if (error->code == FrameErrorCode::kSequenceGap) {
        state.status.frames_missed += error->detail;
      }
      continue;
    }
    handle_frame(state, std::get<FrameView>(*event));
  }
}

void FanInCollector::handle_frame(SourceState& state,
                                  const FrameView& frame) {
  ++frames_ingested_;
  switch (frame.type) {
    case FrameType::kEpochOpen:
      if (state.status.epoch_open) {
        // Two opens without a close: the previous epoch never finished.
        ++state.status.epochs_incomplete;
      }
      state.status.epoch_open = true;
      state.status.current_epoch = frame.epoch;
      state.payloads_this_epoch = 0;
      break;
    case FrameType::kPayload: {
      ++state.status.payload_frames;
      ++state.payloads_this_epoch;
      // Zero-copy: the payload view (into the reassembler buffer) goes
      // straight through the decoder's streaming dispatch — observers
      // fire with no intermediate record materialization, and the
      // decoder's scratch is reused across frames and sources.
      if (!decoder_.dispatch(frame.payload, observers_,
                             &records_ingested_)) {
        // The frame checksum passed but the codec rejected the buffer —
        // an encoder bug or a malicious stream; typed, not fatal.
        ++state.status.decode_failures;
        break;
      }
      break;
    }
    case FrameType::kEpochClose:
      if (!state.status.epoch_open) {
        ++state.status.epochs_incomplete;  // close without an open
        break;
      }
      state.status.epoch_open = false;
      // The close marker says how many payload frames were shipped; fewer
      // received means frames were lost in transit.
      if (state.payloads_this_epoch == frame.close_payload_count()) {
        ++state.status.epochs_completed;
      } else {
        ++state.status.epochs_incomplete;
      }
      break;
  }
}

// --- FanInSender ------------------------------------------------------------

namespace {

// Routes each observer event to its query's priority-class encoder, so an
// epoch's record stream is grouped by priority at encode time (no re-sort
// at ship time). With one class this is exactly EncodingObserver.
class PriorityRoutingObserver final : public SinkObserver {
 public:
  PriorityRoutingObserver(
      std::unordered_map<std::string_view, ReportEncoder*> routes,
      ReportEncoder* fallback)
      : routes_(std::move(routes)), fallback_(fallback) {}

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    route(query).add(ctx, query, obs);
  }

  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    route(query).add_path(ctx, query, path);
  }

 private:
  ReportEncoder& route(std::string_view query) const {
    const auto it = routes_.find(query);
    return it == routes_.end() ? *fallback_ : *it->second;
  }

  // Keys view the sink's shard-0 specs; events from any shard carry
  // equal-content views, and lookups hash by content.
  std::unordered_map<std::string_view, ReportEncoder*> routes_;
  ReportEncoder* fallback_;  // lowest class: unknown queries shed first
};

}  // namespace

FanInSender::FanInSender(const PintFramework::Builder& builder,
                         std::uint32_t source,
                         std::unique_ptr<ByteStream> stream, Config config)
    : config_(config), writer_(source), stream_(std::move(stream)) {
  if (stream_ == nullptr) {
    throw std::invalid_argument("FanInSender needs a stream");
  }
  if (config_.shards == 0) config_.shards = 1;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.max_frame_records == 0) config_.max_frame_records = 1;
  sink_ = std::make_unique<ShardedSink>(builder, config_.shards);
  // One encoder per distinct QuerySpec::priority, descending — the
  // epoch ship order. All-default priorities yield a single class.
  const PintFramework& fw0 = sink_->shard(0);
  std::vector<unsigned> priorities;
  for (std::string_view name : fw0.query_names()) {
    const unsigned p = fw0.spec(name)->priority;
    if (std::find(priorities.begin(), priorities.end(), p) ==
        priorities.end()) {
      priorities.push_back(p);
    }
  }
  std::sort(priorities.rbegin(), priorities.rend());
  classes_.resize(priorities.size());
  for (std::size_t c = 0; c < priorities.size(); ++c) {
    classes_[c].priority = priorities[c];
  }
  // The classes vector never resizes again, so encoder addresses are
  // stable for the routing tap's lifetime.
  std::unordered_map<std::string_view, ReportEncoder*> routes;
  for (std::string_view name : fw0.query_names()) {
    const unsigned p = fw0.spec(name)->priority;
    for (PriorityClass& cls : classes_) {
      if (cls.priority == p) {
        routes.emplace(name, &cls.encoder);
        break;
      }
    }
  }
  tap_ = std::make_unique<PriorityRoutingObserver>(std::move(routes),
                                                   &classes_.back().encoder);
  sink_->add_observer(tap_.get());
}

void FanInSender::deliver(const Packet& packet, unsigned k) {
  if (closed_) return;
  std::vector<Packet>& staged = staging_[k];
  staged.push_back(packet);
  if (staged.size() >= config_.batch_size) submit_staged(k);
}

void FanInSender::submit_staged(unsigned k) {
  std::vector<Packet>& staged = staging_[k];
  if (staged.empty()) return;
  // The submitted span must outlive the sink's flush(): park the batch on
  // the in-flight list until the epoch closes.
  in_flight_.push_back(std::move(staged));
  staged.clear();
  sink_->submit(in_flight_.back(), k);
}

void FanInSender::flush_sink() {
  for (auto& [k, staged] : staging_) {
    if (!staged.empty()) submit_staged(k);
  }
  sink_->flush();
  in_flight_.clear();
}

bool FanInSender::write_frame(std::span<const std::uint8_t> bytes,
                              bool droppable) {
  if (bytes.size() > stream_->capacity()) {
    // No retry loop could ever place this frame: it exceeds what an empty
    // pipe accepts. Reject at chunking time with the typed error the
    // streams themselves throw, before any backpressure policy runs.
    throw OversizedChunkError(bytes.size(), stream_->capacity());
  }
  for (;;) {
    if (stream_->try_write(bytes)) {
      bytes_shipped_ += bytes.size();
      return true;
    }
    if (droppable &&
        config_.backpressure == BackpressurePolicy::kDropNewest) {
      return false;
    }
    // kBlock: wait for the far end to drain. The embedding decides what
    // waiting means — the in-process pipeline pumps the collector, a
    // cross-process sender just yields while the daemon reads.
    ++blocked_waits_;
    if (on_block_) {
      on_block_();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void FanInSender::ship_epoch(bool send_close) {
  if (closed_) return;
  flush_sink();
  // Empty epochs still ship their bracket: a silent source and a dead one
  // must look different to the collector.
  write_frame(writer_.make_open(), /*droppable=*/false);
  // Classes ship highest priority first; only the last (lowest) class's
  // payloads are droppable, so under kDropNewest the stream sheds exactly
  // the query class declared least important. A single class (all-default
  // priorities) makes every payload droppable — the pre-priority behavior.
  for (PriorityClass& cls : classes_) {
    const bool droppable = &cls == &classes_.back();
    const std::vector<std::vector<std::uint8_t>> chunks =
        cls.encoder.finish_chunked(config_.max_frame_records);
    for (const std::vector<std::uint8_t>& chunk : chunks) {
      const std::vector<std::uint8_t> frame = writer_.make_payload(chunk);
      if (write_frame(frame, droppable)) {
        ++frames_shipped_;
      } else {
        writer_.payload_dropped();
      }
    }
  }
  if (send_close) {
    write_frame(writer_.make_close(), /*droppable=*/false);
  }
}

void FanInSender::close() {
  if (closed_) return;
  stream_->close_write();
  // Closed means closed: a later deliver()/ship_epoch() must not write
  // into the closed stream (a socket would refuse forever, the ring would
  // feed a source the collector already saw end).
  closed_ = true;
}

// --- FanInPipeline ----------------------------------------------------------

namespace {

std::string auto_unix_path() {
  static std::atomic<unsigned> counter{0};
  return "/tmp/pint-fanin-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

}  // namespace

FanInPipeline::FanInPipeline(const PintFramework::Builder& builder,
                             FanInConfig config)
    : config_(config) {
  if (config_.num_sinks == 0) {
    throw std::invalid_argument("FanInPipeline needs at least one sink");
  }
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.max_frame_records == 0) config_.max_frame_records = 1;
  const bool daemon = is_daemon_kind(config_.stream);
  if (daemon) {
    CollectorDaemonConfig dc;
    if (config_.stream == StreamKind::kDaemonUnix) {
      dc.unix_path = auto_unix_path();
    } else {
      dc.tcp = true;  // ephemeral port, read back below
    }
    // One connection per source per pipeline run: EOF ends the source,
    // which is what shutdown() waits on.
    dc.end_stream_on_disconnect = true;
    daemon_ = std::make_unique<CollectorDaemon>(collector_, std::move(dc));
  }
  FanInSender::Config sender_cfg;
  sender_cfg.shards = config_.shards_per_sink;
  sender_cfg.batch_size = config_.batch_size;
  sender_cfg.max_frame_records = config_.max_frame_records;
  sender_cfg.backpressure = config_.backpressure;
  senders_.reserve(config_.num_sinks);
  for (unsigned i = 0; i < config_.num_sinks; ++i) {
    std::unique_ptr<ByteStream> stream;
    switch (config_.stream) {
      case StreamKind::kSpscRing:
        stream = std::make_unique<SpscRingStream>(config_.stream_capacity_bytes);
        break;
      case StreamKind::kSocketPair:
        stream =
            std::make_unique<SocketPairStream>(config_.stream_capacity_bytes);
        break;
      case StreamKind::kDaemonUnix:
      case StreamKind::kDaemonTcp: {
        SocketSenderConfig sc;
        sc.unix_path = daemon_->unix_path();
        sc.tcp_port = daemon_->tcp_port();
        sc.source = source_id(i);
        sc.buffer_hint_bytes = config_.stream_capacity_bytes;
        auto sender = std::make_unique<SocketSenderStream>(std::move(sc));
        socket_senders_.push_back(sender.get());
        stream = std::move(sender);
        break;
      }
    }
    auto node = std::make_unique<FanInSender>(builder, source_id(i),
                                              std::move(stream), sender_cfg);
    senders_.push_back(std::move(node));
  }
  eof_reported_.assign(config_.num_sinks, false);
  for (unsigned i = 0; i < config_.num_sinks; ++i) {
    if (daemon) {
      // A blocked cross-process write just waits: the daemon thread
      // drains the socket on its own schedule.
      senders_[i]->set_on_block(
          [] { std::this_thread::sleep_for(std::chrono::microseconds(50)); });
    } else {
      // In-process: blocking means draining the collector side until the
      // pipe has room.
      senders_[i]->set_on_block([this, i] { pump_source(i); });
    }
  }
  // Splitting flows across sink hosts needs the same partition feasibility
  // as splitting across shards; ShardedSink only enforces it when it has
  // more than one shard, so re-check here for the multi-sink case.
  if (config_.num_sinks > 1 &&
      !common_flow_partition(senders_[0]->sink().shard(0)).has_value()) {
    throw std::invalid_argument(
        "queries aggregate by both source and destination IP: no flow "
        "partition keeps both consistent across sinks");
  }
  if (daemon) {
    // Started last: everything above may throw, and an unjoined thread
    // must never escape the constructor.
    daemon_thread_ = std::thread([this] { daemon_->run(); });
  }
}

FanInPipeline::~FanInPipeline() {
  if (daemon_thread_.joinable()) {
    daemon_->stop();
    daemon_thread_.join();
  }
}

unsigned FanInPipeline::route_sink(const FiveTuple& tuple,
                                   FlowDefinition partition,
                                   unsigned num_sinks) {
  // Same partition rule as the shards, one level up: flows (under the
  // coarsest common definition) are homed to exactly one sink host.
  // Salted so sink and shard selection stay independent: otherwise all of
  // a sink's flows would collapse onto a few of its shards.
  const std::uint64_t key = flow_key(tuple, partition);
  return static_cast<unsigned>(mix64(key ^ 0xFA41D) % num_sinks);
}

unsigned FanInPipeline::sink_of(const FiveTuple& tuple) const {
  return route_sink(tuple, senders_[0]->sink().partition_definition(),
                    num_sinks());
}

void FanInPipeline::deliver(const Packet& packet, unsigned k) {
  senders_[sink_of(packet.tuple)]->deliver(packet, k);
}

void FanInPipeline::pump_source(unsigned i) {
  FanInSender& sender = *senders_[i];
  std::array<std::uint8_t, 4096> buf;
  for (;;) {
    const std::size_t n = sender.stream().read(buf);
    if (n == 0) break;
    collector_.ingest_stream(sender.source(),
                             std::span<const std::uint8_t>(buf.data(), n));
  }
  if (sender.stream().eof() && !eof_reported_[i]) {
    collector_.end_stream(sender.source());
    eof_reported_[i] = true;
  }
}

void FanInPipeline::pump_all() {
  if (is_daemon_kind(config_.stream)) return;  // the daemon thread drains
  for (unsigned i = 0; i < senders_.size(); ++i) pump_source(i);
}

void FanInPipeline::ship_epoch() {
  for (auto& sender : senders_) {
    if (!sender->closed()) sender->ship_epoch(/*send_close=*/true);
  }
  pump_all();
}

void FanInPipeline::kill_source_mid_epoch(unsigned sink) {
  FanInSender& sender = *senders_[sink];
  if (sender.closed()) return;
  // The source gets its epoch open and its payloads out, then vanishes
  // before the close marker — the classic mid-epoch crash.
  sender.ship_epoch(/*send_close=*/false);
  sender.close();
  if (!is_daemon_kind(config_.stream)) pump_source(sink);
}

void FanInPipeline::shutdown() {
  for (auto& sender : senders_) {
    if (sender->closed()) continue;
    sender->ship_epoch(/*send_close=*/true);
    sender->close();
  }
  if (!is_daemon_kind(config_.stream)) {
    pump_all();
    return;
  }
  // Cross-process: wait for the daemon to see every source's EOF, then
  // join its thread. The join is the happens-before that makes the
  // collector's single-threaded state readable from this thread.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (daemon_->sources_ended() < senders_.size() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon_->stop();
  daemon_thread_.join();
}

TransportCounters FanInPipeline::transport_counters() const {
  TransportCounters t;
  t.active = true;
  for (const auto& sender : senders_) {
    t.frames_shipped += sender->frames_shipped();
    t.frames_dropped += sender->writer().frames_dropped();
    t.bytes_shipped += sender->bytes_shipped();
    t.blocked_waits += sender->blocked_waits();
    // Async observer-stage accounting (zero when the sinks deliver
    // synchronously) rides its own fields, so epoch_report() exposes the
    // whole pipeline's admission behavior with stream-writer and
    // observer-ring pressure separately attributable.
    const TransportCounters obs = sender->sink().observer_counters();
    t.observer_events += obs.observer_events;
    t.observer_drops += obs.observer_drops;
    t.observer_blocked_waits += obs.observer_blocked_waits;
  }
  for (const SocketSenderStream* s : socket_senders_) {
    t.sender_reconnects += s->reconnects();
    t.frames_resync_discarded += s->frames_resync_discarded();
  }
  return t;
}

SinkReport FanInPipeline::epoch_report() const {
  SinkReport report;
  report.transport = transport_counters();
  return report;
}

std::uint64_t FanInPipeline::bytes_shipped() const {
  std::uint64_t total = 0;
  for (const auto& sender : senders_) total += sender->bytes_shipped();
  return total;
}

}  // namespace pint
