#include "sim/fanin.h"

#include <array>
#include <stdexcept>
#include <utility>

#include "hash/global_hash.h"

namespace pint {

// --- FanInCollector ---------------------------------------------------------

void FanInCollector::ingest_stream(std::uint32_t source,
                                   std::span<const std::uint8_t> bytes) {
  SourceState& state = sources_[source];
  if (state.status.ended) return;  // a finished source hears nothing more
  if (state.reassembler == nullptr) {
    state.reassembler = std::make_unique<FrameReassembler>();
  }
  state.reassembler->feed(bytes);
  bytes_ingested_ += bytes.size();
  process_events(state);
}

void FanInCollector::end_stream(std::uint32_t source) {
  SourceState& state = sources_[source];
  if (state.status.ended) return;
  if (state.reassembler != nullptr) {
    state.reassembler->finish();
    process_events(state);
  }
  if (state.status.epoch_open) {
    // The source died between an epoch-open and its close marker: partial
    // data, surfaced instead of silently merged.
    ++state.status.epochs_incomplete;
    state.status.epoch_open = false;
  }
  state.status.ended = true;
  // Epoch GC: the parse buffer and per-source sequence ledger are dead
  // weight now — free them so long-running fan-ins do not accumulate
  // state for every source that ever connected.
  state.reassembler.reset();
}

std::size_t FanInCollector::live_sources() const {
  std::size_t live = 0;
  for (const auto& [source, state] : sources_) {
    if (state.reassembler != nullptr) ++live;
  }
  return live;
}

bool FanInCollector::ingest(std::span<const std::uint8_t> bytes) {
  std::vector<StreamRecord> records;
  if (!decoder_.decode(bytes, records)) return false;
  dispatch(records, observers_);
  bytes_ingested_ += bytes.size();
  records_ingested_ += records.size();
  return true;
}

const FanInCollector::SourceStatus* FanInCollector::source_status(
    std::uint32_t source) const {
  const auto it = sources_.find(source);
  return it == sources_.end() ? nullptr : &it->second.status;
}

std::uint64_t FanInCollector::incomplete_epochs() const {
  std::uint64_t total = 0;
  for (const auto& [source, state] : sources_) {
    total += state.status.epochs_incomplete;
  }
  return total;
}

void FanInCollector::note_error(const FrameError& error) {
  ++errors_total_;
  if (errors_.size() < kMaxLoggedErrors) errors_.push_back(error);
}

void FanInCollector::process_events(SourceState& state) {
  while (auto event = state.reassembler->next_view()) {
    if (const auto* error = std::get_if<FrameError>(&*event)) {
      note_error(*error);
      if (error->code == FrameErrorCode::kSequenceGap) {
        state.status.frames_missed += error->detail;
      }
      continue;
    }
    handle_frame(state, std::get<FrameView>(*event));
  }
}

void FanInCollector::handle_frame(SourceState& state,
                                  const FrameView& frame) {
  ++frames_ingested_;
  switch (frame.type) {
    case FrameType::kEpochOpen:
      if (state.status.epoch_open) {
        // Two opens without a close: the previous epoch never finished.
        ++state.status.epochs_incomplete;
      }
      state.status.epoch_open = true;
      state.status.current_epoch = frame.epoch;
      state.payloads_this_epoch = 0;
      break;
    case FrameType::kPayload: {
      ++state.status.payload_frames;
      ++state.payloads_this_epoch;
      // Zero-copy: the payload view (into the reassembler buffer) goes
      // straight through the decoder's streaming dispatch — observers
      // fire with no intermediate record materialization, and the
      // decoder's scratch is reused across frames and sources.
      if (!decoder_.dispatch(frame.payload, observers_,
                             &records_ingested_)) {
        // The frame checksum passed but the codec rejected the buffer —
        // an encoder bug or a malicious stream; typed, not fatal.
        ++state.status.decode_failures;
        break;
      }
      break;
    }
    case FrameType::kEpochClose:
      if (!state.status.epoch_open) {
        ++state.status.epochs_incomplete;  // close without an open
        break;
      }
      state.status.epoch_open = false;
      // The close marker says how many payload frames were shipped; fewer
      // received means frames were lost in transit.
      if (state.payloads_this_epoch == frame.close_payload_count()) {
        ++state.status.epochs_completed;
      } else {
        ++state.status.epochs_incomplete;
      }
      break;
  }
}

// --- FanInPipeline ----------------------------------------------------------

namespace {

std::unique_ptr<ByteStream> make_stream(const FanInConfig& config) {
  switch (config.stream) {
    case StreamKind::kSpscRing:
      return std::make_unique<SpscRingStream>(config.stream_capacity_bytes);
    case StreamKind::kSocketPair:
      return std::make_unique<SocketPairStream>(config.stream_capacity_bytes);
  }
  throw std::invalid_argument("unknown StreamKind");
}

// Routes each observer event to its query's priority-class encoder, so an
// epoch's record stream is grouped by priority at encode time (no re-sort
// at ship time). With one class this is exactly EncodingObserver.
class PriorityRoutingObserver final : public SinkObserver {
 public:
  PriorityRoutingObserver(
      std::unordered_map<std::string_view, ReportEncoder*> routes,
      ReportEncoder* fallback)
      : routes_(std::move(routes)), fallback_(fallback) {}

  void on_observation(const SinkContext& ctx, std::string_view query,
                      const Observation& obs) override {
    route(query).add(ctx, query, obs);
  }

  void on_path_decoded(const SinkContext& ctx, std::string_view query,
                       const std::vector<SwitchId>& path) override {
    route(query).add_path(ctx, query, path);
  }

 private:
  ReportEncoder& route(std::string_view query) const {
    const auto it = routes_.find(query);
    return it == routes_.end() ? *fallback_ : *it->second;
  }

  // Keys view the sink's shard-0 specs; events from any shard carry
  // equal-content views, and lookups hash by content.
  std::unordered_map<std::string_view, ReportEncoder*> routes_;
  ReportEncoder* fallback_;  // lowest class: unknown queries shed first
};

}  // namespace

FanInPipeline::FanInPipeline(const PintFramework::Builder& builder,
                             FanInConfig config)
    : config_(config) {
  if (config_.num_sinks == 0) {
    throw std::invalid_argument("FanInPipeline needs at least one sink");
  }
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.max_frame_records == 0) config_.max_frame_records = 1;
  sinks_.reserve(config_.num_sinks);
  for (unsigned i = 0; i < config_.num_sinks; ++i) {
    auto node = std::make_unique<SinkNode>(source_id(i));
    node->sink =
        std::make_unique<ShardedSink>(builder, config_.shards_per_sink);
    // One encoder per distinct QuerySpec::priority, descending — the
    // epoch ship order. All-default priorities yield a single class.
    const PintFramework& fw0 = node->sink->shard(0);
    std::vector<unsigned> priorities;
    for (std::string_view name : fw0.query_names()) {
      const unsigned p = fw0.spec(name)->priority;
      if (std::find(priorities.begin(), priorities.end(), p) ==
          priorities.end()) {
        priorities.push_back(p);
      }
    }
    std::sort(priorities.rbegin(), priorities.rend());
    node->classes.resize(priorities.size());
    for (std::size_t c = 0; c < priorities.size(); ++c) {
      node->classes[c].priority = priorities[c];
    }
    // The classes vector never resizes again, so encoder addresses are
    // stable for the routing tap's lifetime.
    std::unordered_map<std::string_view, ReportEncoder*> routes;
    for (std::string_view name : fw0.query_names()) {
      const unsigned p = fw0.spec(name)->priority;
      for (PriorityClass& cls : node->classes) {
        if (cls.priority == p) {
          routes.emplace(name, &cls.encoder);
          break;
        }
      }
    }
    node->tap = std::make_unique<PriorityRoutingObserver>(
        std::move(routes), &node->classes.back().encoder);
    node->sink->add_observer(node->tap.get());
    node->stream = make_stream(config_);
    sinks_.push_back(std::move(node));
  }
  // Splitting flows across sink hosts needs the same partition feasibility
  // as splitting across shards; ShardedSink only enforces it when it has
  // more than one shard, so re-check here for the multi-sink case.
  if (config_.num_sinks > 1 &&
      !common_flow_partition(sinks_[0]->sink->shard(0)).has_value()) {
    throw std::invalid_argument(
        "queries aggregate by both source and destination IP: no flow "
        "partition keeps both consistent across sinks");
  }
}

unsigned FanInPipeline::sink_of(const FiveTuple& tuple) const {
  // Same partition rule as the shards, one level up: flows (under the
  // coarsest common definition) are homed to exactly one sink host.
  const std::uint64_t key =
      flow_key(tuple, sinks_[0]->sink->partition_definition());
  // Salted so sink and shard selection stay independent: otherwise all of a
  // sink's flows would collapse onto a few of its shards.
  return static_cast<unsigned>(mix64(key ^ 0xFA41D) % sinks_.size());
}

void FanInPipeline::deliver(const Packet& packet, unsigned k) {
  SinkNode& node = *sinks_[sink_of(packet.tuple)];
  if (node.dead) return;  // a killed source hears nothing further
  std::vector<Packet>& staged = node.staging[k];
  staged.push_back(packet);
  if (staged.size() >= config_.batch_size) submit_staged(node, k);
}

void FanInPipeline::submit_staged(SinkNode& node, unsigned k) {
  std::vector<Packet>& staged = node.staging[k];
  if (staged.empty()) return;
  // The submitted span must outlive the sink's flush(): park the batch on
  // the in-flight list until the epoch closes.
  node.in_flight.push_back(std::move(staged));
  staged.clear();
  node.sink->submit(node.in_flight.back(), k);
}

void FanInPipeline::flush_sink(SinkNode& node) {
  for (auto& [k, staged] : node.staging) {
    if (!staged.empty()) submit_staged(node, k);
  }
  node.sink->flush();
  node.in_flight.clear();
}

bool FanInPipeline::write_frame(SinkNode& node,
                                std::span<const std::uint8_t> bytes,
                                bool droppable) {
  for (;;) {
    if (node.stream->try_write(bytes)) {
      node.bytes_shipped += bytes.size();
      return true;
    }
    if (droppable &&
        config_.backpressure == BackpressurePolicy::kDropNewest) {
      return false;
    }
    if (bytes.size() > node.stream->capacity()) {
      // kBlock can never succeed: the frame exceeds what an empty pipe
      // accepts. Fail loudly instead of spinning forever.
      throw std::runtime_error(
          "fan-in frame larger than the stream capacity; raise "
          "FanInConfig::stream_capacity_bytes or lower max_frame_records");
    }
    // kBlock: the "network" is in-process, so blocking means draining the
    // collector side until the pipe has room.
    ++node.blocked_waits;
    pump_source(node);
  }
}

void FanInPipeline::ship_epoch_frames(SinkNode& node, bool send_close) {
  flush_sink(node);
  // Empty epochs still ship their bracket: a silent source and a dead one
  // must look different to the collector.
  write_frame(node, node.writer.make_open(), /*droppable=*/false);
  // Classes ship highest priority first; only the last (lowest) class's
  // payloads are droppable, so under kDropNewest the stream sheds exactly
  // the query class declared least important. A single class (all-default
  // priorities) makes every payload droppable — the pre-priority behavior.
  for (PriorityClass& cls : node.classes) {
    const bool droppable = &cls == &node.classes.back();
    const std::vector<std::vector<std::uint8_t>> chunks =
        cls.encoder.finish_chunked(config_.max_frame_records);
    for (const std::vector<std::uint8_t>& chunk : chunks) {
      const std::vector<std::uint8_t> frame = node.writer.make_payload(chunk);
      if (write_frame(node, frame, droppable)) {
        ++node.frames_shipped;
      } else {
        node.writer.payload_dropped();
      }
    }
  }
  if (send_close) {
    write_frame(node, node.writer.make_close(), /*droppable=*/false);
  }
}

void FanInPipeline::pump_source(SinkNode& node) {
  std::array<std::uint8_t, 4096> buf;
  for (;;) {
    const std::size_t n = node.stream->read(buf);
    if (n == 0) break;
    collector_.ingest_stream(node.writer.source(),
                             std::span<const std::uint8_t>(buf.data(), n));
  }
  if (node.stream->eof() && !node.eof_reported) {
    collector_.end_stream(node.writer.source());
    node.eof_reported = true;
  }
}

void FanInPipeline::pump_all() {
  for (auto& node : sinks_) pump_source(*node);
}

void FanInPipeline::ship_epoch() {
  for (auto& node : sinks_) {
    if (!node->dead) ship_epoch_frames(*node, /*send_close=*/true);
  }
  pump_all();
}

void FanInPipeline::kill_source_mid_epoch(unsigned sink) {
  SinkNode& node = *sinks_[sink];
  if (node.dead) return;
  // The source gets its epoch open and its payloads out, then vanishes
  // before the close marker — the classic mid-epoch crash.
  ship_epoch_frames(node, /*send_close=*/false);
  node.stream->close_write();
  node.dead = true;
  pump_source(node);
}

void FanInPipeline::shutdown() {
  for (auto& node : sinks_) {
    if (node->dead) continue;
    ship_epoch_frames(*node, /*send_close=*/true);
    node->stream->close_write();
    // Closed means closed: a later deliver()/ship_epoch()/shutdown() must
    // not write into the closed stream (socketpair would refuse forever,
    // the ring would feed a source the collector already saw end).
    node->dead = true;
  }
  pump_all();
}

TransportCounters FanInPipeline::transport_counters() const {
  TransportCounters t;
  t.active = true;
  for (const auto& node : sinks_) {
    t.frames_shipped += node->frames_shipped;
    t.frames_dropped += node->writer.frames_dropped();
    t.bytes_shipped += node->bytes_shipped;
    t.blocked_waits += node->blocked_waits;
    // Async observer-stage accounting (zero when the sinks deliver
    // synchronously) rides its own fields, so epoch_report() exposes the
    // whole pipeline's admission behavior with stream-writer and
    // observer-ring pressure separately attributable.
    const TransportCounters obs = node->sink->observer_counters();
    t.observer_events += obs.observer_events;
    t.observer_drops += obs.observer_drops;
    t.observer_blocked_waits += obs.observer_blocked_waits;
  }
  return t;
}

SinkReport FanInPipeline::epoch_report() const {
  SinkReport report;
  report.transport = transport_counters();
  return report;
}

std::uint64_t FanInPipeline::bytes_shipped() const {
  std::uint64_t total = 0;
  for (const auto& node : sinks_) total += node->bytes_shipped;
  return total;
}

}  // namespace pint
