/// \file
/// Multi-sink fan-in: N sharded sinks feeding one Inference Module over a
/// real streaming transport.
///
/// The second scale-out axis after intra-sink sharding (pint/sharded_sink.h):
/// when one host cannot absorb the digest stream, the Recording Module is
/// split across several sink hosts, each homed to a disjoint set of flows
/// (in a datacenter fan-in topology, a collector per ToR/pod). Every sink
/// decodes locally, serializes its observer stream with the report codec
/// (pint/report_codec.h), and ships it through a byte stream
/// (transport/stream.h) under epoch/sequence framing (pint/frame.h):
///
///   sink 1: ShardedSink -> codec -> frames -> stream --+
///   sink 2: ShardedSink -> codec -> frames -> stream --+-> FanInCollector
///   sink N: ShardedSink -> codec -> frames -> stream --+   (Inference)
///
/// The sending half of one sink host is its own class, `FanInSender`, so
/// the same code runs in-process (FanInPipeline owns N of them) and
/// out-of-process (a forked sink process owns one, over a
/// `SocketSenderStream` to a `CollectorDaemon` — see
/// transport/collector_daemon.h). `FanInPipeline` wires either topology:
/// in-process stream kinds pump the collector inline; the daemon kinds
/// run a real listener on a background thread and the bytes cross a
/// kernel socket.
///
/// Each reporting interval is one *epoch*: an epoch-open marker, the
/// interval's payload frames (each a self-contained codec buffer), and an
/// epoch-close marker carrying the shipped-frame count, so the collector
/// can tell "all arrived" from "some lost" and report a source that died
/// mid-epoch instead of silently swallowing partial data.
///
/// The transport is bounded, so what happens when it fills is an explicit
/// BASEL-style policy, not an accident of queue growth:
///  * kBlock — the sink waits for the collector to drain (lossless);
///  * kDropNewest — the frame is dropped and counted; the receiver also
///    sees the sequence gap. Exact drop counts surface in
///    `FanInPipeline::epoch_report()` (a SinkReport with TransportCounters).
///    Only frames of the *lowest-priority* query class are droppable
///    (QuerySpec::priority): each epoch ships one self-contained record
///    stream per priority class, highest first, and higher classes always
///    take the blocking path. All-default priorities collapse to a single
///    class — the pre-priority frame stream, byte-identical.
///
/// Flows are routed to sinks by the same coarsest-common flow partition the
/// shards use, so every per-flow recorder lives at exactly one (sink, shard)
/// and — when no frames are dropped — merged results are byte-identical to
/// a single monolithic sink.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "packet/packet.h"
#include "pint/frame.h"
#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"
#include "transport/collector_daemon.h"
#include "transport/stream.h"

namespace pint {

class SocketSenderStream;

/// Which ByteStream implementation carries sink -> collector frames.
enum class StreamKind : std::uint8_t {
  kSpscRing,    ///< in-memory SPSC ring (tests/bench, shared-memory shape)
  kSocketPair,  ///< unix socketpair: a real kernel transport, one process
  kDaemonUnix,  ///< CollectorDaemon over a unix-domain socket
  kDaemonTcp,   ///< CollectorDaemon over localhost TCP
};

/// True for the kinds that run a CollectorDaemon listener (the bytes
/// cross a real socket; the collector is fed by the daemon's thread).
constexpr bool is_daemon_kind(StreamKind kind) {
  return kind == StreamKind::kDaemonUnix || kind == StreamKind::kDaemonTcp;
}

/// What a sink does when its stream cannot take the next payload frame.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,       ///< wait for the collector to drain (lossless)
  kDropNewest,  ///< drop the new frame, count it (bounded latency)
};

/// Sizing of the fan-in pipeline.
struct FanInConfig {
  unsigned num_sinks = 2;        ///< independent sink hosts
  unsigned shards_per_sink = 1;  ///< worker threads inside each sink
  /// Packets staged per (sink, path length) before a submit() is issued.
  std::size_t batch_size = 256;
  StreamKind stream = StreamKind::kSpscRing;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Per-sink stream capacity (ring size / socket buffer hint). Must
  /// comfortably hold one payload frame (~32 bytes per record plus paths)
  /// or kBlock shipping fails loudly.
  std::size_t stream_capacity_bytes = 1 << 18;
  /// Records per payload frame: an epoch's observer stream is split into
  /// self-contained codec buffers of at most this many records, so one
  /// dropped frame costs only its own records.
  std::size_t max_frame_records = 1024;
};

/// The central Inference-Module endpoint: reassembles framed streams from
/// any number of sources, tracks epoch integrity per source, decodes
/// payloads, and replays the records into registered observers.
/// Implements `StreamIngest`, so a `CollectorDaemon` can feed it from
/// real socket connections with identical semantics.
class FanInCollector final : public StreamIngest {
 public:
  /// Per-source receive-side accounting.
  struct SourceStatus {
    std::uint32_t current_epoch = 0;   ///< last epoch seen open
    bool epoch_open = false;           ///< inside an epoch right now
    bool ended = false;                ///< stream reached end-of-stream
    std::uint64_t epochs_completed = 0;   ///< closed with all frames present
    std::uint64_t epochs_incomplete = 0;  ///< died mid-epoch or frames lost
    std::uint64_t payload_frames = 0;
    std::uint64_t frames_missed = 0;   ///< summed sequence-gap sizes
    std::uint64_t decode_failures = 0;  ///< payloads the codec rejected
    std::uint64_t disconnects = 0;  ///< connection drops (source not ended)
  };

  /// Observers receive every record of every ingested stream, in stream
  /// order. Register before the first ingest. Callbacks replay out of the
  /// collector's reused decode scratch, so observers must not re-enter
  /// this collector (no ingest/end_stream from inside a callback) — the
  /// same no-reentry contract SinkObserver has toward the framework.
  void add_observer(SinkObserver* observer) { observers_.push_back(observer); }

  /// Feeds raw stream bytes from `source` through its reassembler and
  /// processes every complete frame — zero-copy: payloads go from the
  /// reassembler's parse buffer straight into the report decoder's
  /// dispatch, no intermediate frame or record materialization. Malformed
  /// bytes surface as typed FrameErrors in errors(), never as exceptions.
  /// Bytes for a source that already ended are ignored.
  void ingest_stream(std::uint32_t source,
                     std::span<const std::uint8_t> bytes) override;

  /// Signals end-of-stream for `source` (the transport hit EOF). An epoch
  /// still open at this point is counted incomplete — the source died
  /// mid-epoch. The source's reassembler (parse buffer, sequence ledger)
  /// is freed immediately — epoch-based GC, so a long-running collector's
  /// memory scales with *live* sources, not with every source that ever
  /// connected; the compact SourceStatus survives for reporting.
  void end_stream(std::uint32_t source) override;

  /// The source's connection dropped but the source is *not* done: an
  /// open epoch is counted incomplete (with any torn frame tail surfacing
  /// as a typed truncation error), and the reassembler is replaced with a
  /// fresh one so a reconnected stream resumes at a clean frame boundary
  /// with a fresh sequence baseline — the old connection's torn tail can
  /// never splice onto the new connection's bytes. Counted per source in
  /// SourceStatus::disconnects.
  void disconnect_stream(std::uint32_t source) override;

  /// Sources whose streams have not ended (each holds a live reassembler).
  std::size_t live_sources() const;

  /// Sources ever heard from, live or ended (compact status records).
  std::size_t sources_tracked() const { return sources_.size(); }

  /// Legacy unframed entry: decodes one self-contained codec buffer and
  /// dispatches its records. Returns false (and dispatches nothing) on
  /// malformed input. Bypasses epoch/sequence accounting.
  [[nodiscard]] bool ingest(std::span<const std::uint8_t> bytes);

  /// Receive-side accounting for one source (nullptr if never heard from).
  const SourceStatus* source_status(std::uint32_t source) const;

  /// Frame-layer errors observed so far, in arrival order (capped at
  /// kMaxLoggedErrors; `errors_total()` keeps counting past the cap).
  static constexpr std::size_t kMaxLoggedErrors = 1024;
  std::span<const FrameError> errors() const { return errors_; }
  std::uint64_t errors_total() const { return errors_total_; }

  /// Sources that ever ended a stream mid-epoch, summed.
  std::uint64_t incomplete_epochs() const;

  std::uint64_t bytes_ingested() const { return bytes_ingested_; }
  std::uint64_t records_ingested() const { return records_ingested_; }
  std::uint64_t frames_ingested() const { return frames_ingested_; }

 private:
  struct SourceState {
    // Null once the stream ended: the heavy reassembly state is dropped
    // (see end_stream), only the status summary stays.
    std::unique_ptr<FrameReassembler> reassembler;
    SourceStatus status;
    std::uint64_t payloads_this_epoch = 0;
  };

  void process_events(SourceState& state);
  void handle_frame(SourceState& state, const FrameView& frame);
  void note_error(const FrameError& error);

  // Threading contract: the collector is single-threaded by design — every
  // ledger below (per-source reassembly state, error log, byte/record
  // totals) is mutated only from the one thread that calls
  // ingest_stream()/end_stream()/disconnect_stream(). Concurrency lives
  // *upstream*: N sinks write framed bytes into their own ByteStreams (or
  // sockets) concurrently, and the streams — or the daemon's single event
  // loop — serialize delivery. Guarding these maps with a mutex would
  // synchronize nothing (one thread) while hiding misuse from TSAN; if a
  // concurrent collector is ever needed, shard it per-source like
  // ShardedSink rather than locking this one.
  ReportDecoder decoder_;
  std::vector<SinkObserver*> observers_;
  std::unordered_map<std::uint32_t, SourceState> sources_;
  std::vector<FrameError> errors_;
  std::uint64_t errors_total_ = 0;
  std::uint64_t bytes_ingested_ = 0;
  std::uint64_t records_ingested_ = 0;
  std::uint64_t frames_ingested_ = 0;
};

/// The sending half of one sink host: a ShardedSink, the priority-class
/// encoders, and the epoch/frame shipping state machine, writing into any
/// ByteStream. This is the piece a real deployment runs *in the sink
/// process* — the fork-based integration test (tests/daemon_test.cc) runs
/// exactly this class in child processes over a SocketSenderStream, so
/// the cross-process path exercises the same shipping code (priority
/// order, droppability, drop accounting) as the in-process pipeline.
class FanInSender {
 public:
  struct Config {
    unsigned shards = 1;  ///< worker threads inside the sink
    std::size_t batch_size = 256;
    std::size_t max_frame_records = 1024;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  };

  /// Builds the sink and takes ownership of the outbound stream. `source`
  /// must match the id the far end attributes this stream to (for a
  /// SocketSenderStream, its hello source id).
  FanInSender(const PintFramework::Builder& builder, std::uint32_t source,
              std::unique_ptr<ByteStream> stream, Config config);

  FanInSender(const FanInSender&) = delete;
  FanInSender& operator=(const FanInSender&) = delete;

  /// Called every time a kBlock (or non-droppable) write is refused —
  /// the embedding's chance to drain the far end (in-process: pump the
  /// collector) or just wait (cross-process: the daemon drains on its
  /// own). Default: a short sleep.
  void set_on_block(std::function<void()> on_block) {
    on_block_ = std::move(on_block);
  }

  /// Routes one delivered packet (with its switch-hop count `k`) into the
  /// sink's staging. No-op once closed.
  void deliver(const Packet& packet, unsigned k);

  /// Closes out one reporting epoch: flushes the sink, splits the pending
  /// observer stream into framed payload buffers per priority class, and
  /// ships them under an epoch-open/close bracket, applying the
  /// backpressure policy. `send_close=false` ships the open and payloads
  /// but no close marker — the mid-epoch-death half of fault injection.
  void ship_epoch(bool send_close = true);

  /// Closes the outbound stream; the far end sees end-of-stream. Further
  /// deliver()/ship_epoch() calls are ignored.
  void close();
  bool closed() const { return closed_; }

  std::uint32_t source() const { return writer_.source(); }
  ByteStream& stream() { return *stream_; }
  const ByteStream& stream() const { return *stream_; }
  ShardedSink& sink() { return *sink_; }
  const ShardedSink& sink() const { return *sink_; }
  const FrameWriter& writer() const { return writer_; }

  std::uint64_t frames_shipped() const { return frames_shipped_; }
  std::uint64_t bytes_shipped() const { return bytes_shipped_; }
  std::uint64_t blocked_waits() const { return blocked_waits_; }

 private:
  /// One priority class's pending observer stream. Classes ship in
  /// descending priority order inside each epoch, and only the lowest
  /// class's payload frames are droppable under kDropNewest — so under
  /// pressure the stream sheds exactly the traffic the queries declared
  /// least important. With all-default priorities there is a single class
  /// and the frame stream is byte-identical to the pre-priority layout.
  struct PriorityClass {
    unsigned priority = 1;
    ReportEncoder encoder;
  };

  void submit_staged(unsigned k);
  void flush_sink();
  /// Applies the backpressure policy; returns false if the frame was
  /// dropped (only possible for droppable frames under kDropNewest).
  bool write_frame(std::span<const std::uint8_t> bytes, bool droppable);

  Config config_;
  std::unique_ptr<ShardedSink> sink_;
  // Descending priority; addresses are stable after construction (the
  // routing tap holds pointers into it).
  std::vector<PriorityClass> classes_;
  std::unique_ptr<SinkObserver> tap_;
  FrameWriter writer_;
  std::unique_ptr<ByteStream> stream_;
  std::function<void()> on_block_;
  // Per path-length staging (submit spans must be homogeneous in k), and
  // the in-flight batches a pending flush() still references.
  std::unordered_map<unsigned, std::vector<Packet>> staging_;
  std::deque<std::vector<Packet>> in_flight_;
  // Writer-side transport counters for this stream.
  std::uint64_t frames_shipped_ = 0;
  std::uint64_t bytes_shipped_ = 0;
  std::uint64_t blocked_waits_ = 0;
  bool closed_ = false;
};

/// N sharded sink hosts plus the collector, wired through framed streams.
///
/// Single-producer: deliver(), ship_epoch(), and the fault hooks must come
/// from one thread (the simulator's delivery path). Packets are copied
/// into per-sink staging, so the caller's packet may be transient.
///
/// In-process stream kinds (ring, socketpair) pump their own streams —
/// the "network" is in-process, so the kBlock policy drains the collector
/// inline instead of deadlocking. Daemon kinds run a real
/// `CollectorDaemon` (unix-domain or localhost TCP) on a background
/// thread; every sink's bytes cross a kernel socket through a
/// `SocketSenderStream`, and the collector is fed only by the daemon
/// thread. Read the collector (and source_status) after `shutdown()` —
/// the daemon thread is joined there, which is the happens-before that
/// makes the collector's single-threaded state safe to read.
class FanInPipeline {
 public:
  /// Builds `config.num_sinks` sinks, each with `config.shards_per_sink`
  /// shards, from one Builder (all replicas decode identically). Daemon
  /// kinds bind their listener here (throws TransportError on failure)
  /// and start the daemon thread.
  FanInPipeline(const PintFramework::Builder& builder, FanInConfig config);

  /// Stops and joins the daemon thread if shutdown() was not called.
  ~FanInPipeline();

  /// Routes one delivered packet (with its switch-hop count `k`) to its
  /// owning sink. Suitable as a `SimConfig::sink_tap`.
  void deliver(const Packet& packet, unsigned k);

  /// Closes out one reporting epoch on every live sink (see
  /// FanInSender::ship_epoch) and, for in-process kinds, pumps the
  /// streams into the collector.
  void ship_epoch();

  /// Fault injection: sink `i` ships its next epoch's open marker and
  /// payload frames, then dies — no epoch-close marker, stream closed.
  /// The collector must report the epoch incomplete; other sources are
  /// unaffected. A dead sink ignores later deliver()/ship_epoch() work.
  void kill_source_mid_epoch(unsigned sink);

  /// Clean shutdown: ships a final epoch, closes every stream, and waits
  /// until the collector has seen every source's end-of-stream (daemon
  /// kinds: joins the daemon thread). After this the collector is safe to
  /// read from the calling thread.
  void shutdown();

  /// Which sink host owns flows with this tuple.
  unsigned sink_of(const FiveTuple& tuple) const;

  /// The routing rule behind sink_of, exposed so out-of-process senders
  /// (forked sink processes) can partition traffic identically.
  static unsigned route_sink(const FiveTuple& tuple, FlowDefinition partition,
                             unsigned num_sinks);

  unsigned num_sinks() const { return static_cast<unsigned>(senders_.size()); }
  const ShardedSink& sink(unsigned i) const { return senders_[i]->sink(); }
  FanInCollector& collector() { return collector_; }
  const FanInCollector& collector() const { return collector_; }

  /// The daemon listener, when running a daemon kind (else nullptr).
  const CollectorDaemon* daemon() const { return daemon_.get(); }

  /// Wire-level frame id of sink `i` (stable across the pipeline's life).
  std::uint32_t source_id(unsigned i) const { return i + 1; }

  /// Merged transport accounting across every sink's stream, including
  /// sender reconnect/resync counters for daemon kinds.
  TransportCounters transport_counters() const;

  /// A SinkReport carrying the merged TransportCounters (`active` set) —
  /// the fan-in's per-epoch operational report, shaped like every other
  /// sink report so observers and dashboards reuse their plumbing.
  SinkReport epoch_report() const;

  /// Total framed bytes shipped sink -> collector so far.
  std::uint64_t bytes_shipped() const;

 private:
  void pump_source(unsigned i);
  void pump_all();

  FanInConfig config_;
  std::vector<std::unique_ptr<FanInSender>> senders_;
  std::vector<bool> eof_reported_;
  FanInCollector collector_;
  // Daemon kinds only: the listener, its driving thread, and the raw
  // sender handles (the senders_ streams, downcast once at construction)
  // for reconnect/resync counters.
  std::unique_ptr<CollectorDaemon> daemon_;
  std::thread daemon_thread_;
  std::vector<SocketSenderStream*> socket_senders_;
};

}  // namespace pint
