/// \file
/// Multi-sink fan-in: N sharded sinks feeding one Inference Module over a
/// real streaming transport.
///
/// The second scale-out axis after intra-sink sharding (pint/sharded_sink.h):
/// when one host cannot absorb the digest stream, the Recording Module is
/// split across several sink hosts, each homed to a disjoint set of flows
/// (in a datacenter fan-in topology, a collector per ToR/pod). Every sink
/// decodes locally, serializes its observer stream with the report codec
/// (pint/report_codec.h), and ships it through a byte stream
/// (transport/stream.h) under epoch/sequence framing (pint/frame.h):
///
///   sink 1: ShardedSink -> codec -> frames -> stream --+
///   sink 2: ShardedSink -> codec -> frames -> stream --+-> FanInCollector
///   sink N: ShardedSink -> codec -> frames -> stream --+   (Inference)
///
/// Each reporting interval is one *epoch*: an epoch-open marker, the
/// interval's payload frames (each a self-contained codec buffer), and an
/// epoch-close marker carrying the shipped-frame count, so the collector
/// can tell "all arrived" from "some lost" and report a source that died
/// mid-epoch instead of silently swallowing partial data.
///
/// The transport is bounded, so what happens when it fills is an explicit
/// BASEL-style policy, not an accident of queue growth:
///  * kBlock — the sink waits for the collector to drain (lossless);
///  * kDropNewest — the frame is dropped and counted; the receiver also
///    sees the sequence gap. Exact drop counts surface in
///    `FanInPipeline::epoch_report()` (a SinkReport with TransportCounters).
///    Only frames of the *lowest-priority* query class are droppable
///    (QuerySpec::priority): each epoch ships one self-contained record
///    stream per priority class, highest first, and higher classes always
///    take the blocking path. All-default priorities collapse to a single
///    class — the pre-priority frame stream, byte-identical.
///
/// Flows are routed to sinks by the same coarsest-common flow partition the
/// shards use, so every per-flow recorder lives at exactly one (sink, shard)
/// and — when no frames are dropped — merged results are byte-identical to
/// a single monolithic sink.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "packet/packet.h"
#include "pint/frame.h"
#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"
#include "transport/stream.h"

namespace pint {

/// Which ByteStream implementation carries sink -> collector frames.
enum class StreamKind : std::uint8_t {
  kSpscRing,    ///< in-memory SPSC ring (tests/bench, shared-memory shape)
  kSocketPair,  ///< unix socketpair: a real kernel transport
};

/// What a sink does when its stream cannot take the next payload frame.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,       ///< wait for the collector to drain (lossless)
  kDropNewest,  ///< drop the new frame, count it (bounded latency)
};

/// Sizing of the fan-in pipeline.
struct FanInConfig {
  unsigned num_sinks = 2;        ///< independent sink hosts
  unsigned shards_per_sink = 1;  ///< worker threads inside each sink
  /// Packets staged per (sink, path length) before a submit() is issued.
  std::size_t batch_size = 256;
  StreamKind stream = StreamKind::kSpscRing;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Per-sink stream capacity (ring size / socket buffer hint). Must
  /// comfortably hold one payload frame (~32 bytes per record plus paths)
  /// or kBlock shipping fails loudly.
  std::size_t stream_capacity_bytes = 1 << 18;
  /// Records per payload frame: an epoch's observer stream is split into
  /// self-contained codec buffers of at most this many records, so one
  /// dropped frame costs only its own records.
  std::size_t max_frame_records = 1024;
};

/// The central Inference-Module endpoint: reassembles framed streams from
/// any number of sources, tracks epoch integrity per source, decodes
/// payloads, and replays the records into registered observers.
class FanInCollector {
 public:
  /// Per-source receive-side accounting.
  struct SourceStatus {
    std::uint32_t current_epoch = 0;   ///< last epoch seen open
    bool epoch_open = false;           ///< inside an epoch right now
    bool ended = false;                ///< stream reached end-of-stream
    std::uint64_t epochs_completed = 0;   ///< closed with all frames present
    std::uint64_t epochs_incomplete = 0;  ///< died mid-epoch or frames lost
    std::uint64_t payload_frames = 0;
    std::uint64_t frames_missed = 0;   ///< summed sequence-gap sizes
    std::uint64_t decode_failures = 0;  ///< payloads the codec rejected
  };

  /// Observers receive every record of every ingested stream, in stream
  /// order. Register before the first ingest. Callbacks replay out of the
  /// collector's reused decode scratch, so observers must not re-enter
  /// this collector (no ingest/end_stream from inside a callback) — the
  /// same no-reentry contract SinkObserver has toward the framework.
  void add_observer(SinkObserver* observer) { observers_.push_back(observer); }

  /// Feeds raw stream bytes from `source` through its reassembler and
  /// processes every complete frame — zero-copy: payloads go from the
  /// reassembler's parse buffer straight into the report decoder's
  /// dispatch, no intermediate frame or record materialization. Malformed
  /// bytes surface as typed FrameErrors in errors(), never as exceptions.
  /// Bytes for a source that already ended are ignored.
  void ingest_stream(std::uint32_t source,
                     std::span<const std::uint8_t> bytes);

  /// Signals end-of-stream for `source` (the transport hit EOF). An epoch
  /// still open at this point is counted incomplete — the source died
  /// mid-epoch. The source's reassembler (parse buffer, sequence ledger)
  /// is freed immediately — epoch-based GC, so a long-running collector's
  /// memory scales with *live* sources, not with every source that ever
  /// connected; the compact SourceStatus survives for reporting.
  void end_stream(std::uint32_t source);

  /// Sources whose streams have not ended (each holds a live reassembler).
  std::size_t live_sources() const;

  /// Sources ever heard from, live or ended (compact status records).
  std::size_t sources_tracked() const { return sources_.size(); }

  /// Legacy unframed entry: decodes one self-contained codec buffer and
  /// dispatches its records. Returns false (and dispatches nothing) on
  /// malformed input. Bypasses epoch/sequence accounting.
  [[nodiscard]] bool ingest(std::span<const std::uint8_t> bytes);

  /// Receive-side accounting for one source (nullptr if never heard from).
  const SourceStatus* source_status(std::uint32_t source) const;

  /// Frame-layer errors observed so far, in arrival order (capped at
  /// kMaxLoggedErrors; `errors_total()` keeps counting past the cap).
  static constexpr std::size_t kMaxLoggedErrors = 1024;
  std::span<const FrameError> errors() const { return errors_; }
  std::uint64_t errors_total() const { return errors_total_; }

  /// Sources that ever ended a stream mid-epoch, summed.
  std::uint64_t incomplete_epochs() const;

  std::uint64_t bytes_ingested() const { return bytes_ingested_; }
  std::uint64_t records_ingested() const { return records_ingested_; }
  std::uint64_t frames_ingested() const { return frames_ingested_; }

 private:
  struct SourceState {
    // Null once the stream ended: the heavy reassembly state is dropped
    // (see end_stream), only the status summary stays.
    std::unique_ptr<FrameReassembler> reassembler;
    SourceStatus status;
    std::uint64_t payloads_this_epoch = 0;
  };

  void process_events(SourceState& state);
  void handle_frame(SourceState& state, const FrameView& frame);
  void note_error(const FrameError& error);

  // Threading contract: the collector is single-threaded by design — every
  // ledger below (per-source reassembly state, error log, byte/record
  // totals) is mutated only from the one thread that calls
  // ingest_stream()/end_stream(). Concurrency lives *upstream*: N sinks
  // write framed bytes into their own ByteStreams concurrently, and the
  // streams serialize delivery. Guarding these maps with a mutex would
  // synchronize nothing (one thread) while hiding misuse from TSAN; if a
  // concurrent collector is ever needed, shard it per-source like
  // ShardedSink rather than locking this one.
  ReportDecoder decoder_;
  std::vector<SinkObserver*> observers_;
  std::unordered_map<std::uint32_t, SourceState> sources_;
  std::vector<FrameError> errors_;
  std::uint64_t errors_total_ = 0;
  std::uint64_t bytes_ingested_ = 0;
  std::uint64_t records_ingested_ = 0;
  std::uint64_t frames_ingested_ = 0;
};

/// N sharded sink hosts plus the collector, wired through framed streams.
///
/// Single-producer: deliver(), ship_epoch(), and the fault hooks must come
/// from one thread (the simulator's delivery path). Packets are copied
/// into per-sink staging, so the caller's packet may be transient. The
/// pipeline pumps its own streams (the "network" here is in-process), so
/// the kBlock policy drains the collector inline instead of deadlocking.
class FanInPipeline {
 public:
  /// Builds `config.num_sinks` sinks, each with `config.shards_per_sink`
  /// shards, from one Builder (all replicas decode identically).
  FanInPipeline(const PintFramework::Builder& builder, FanInConfig config);

  /// Routes one delivered packet (with its switch-hop count `k`) to its
  /// owning sink. Suitable as a `SimConfig::sink_tap`.
  void deliver(const Packet& packet, unsigned k);

  /// Closes out one reporting epoch: flushes every sink, splits each
  /// sink's pending observer stream into framed payload buffers, ships
  /// them under an epoch-open/close bracket (applying the backpressure
  /// policy), and pumps the streams into the collector.
  void ship_epoch();

  /// Fault injection: sink `i` ships its next epoch's open marker and
  /// payload frames, then dies — no epoch-close marker, stream closed.
  /// The collector must report the epoch incomplete; other sources are
  /// unaffected. A dead sink ignores later deliver()/ship_epoch() work.
  void kill_source_mid_epoch(unsigned sink);

  /// Clean shutdown: ships a final epoch, closes every stream, and pumps
  /// until the collector has seen every source's end-of-stream.
  void shutdown();

  /// Which sink host owns flows with this tuple.
  unsigned sink_of(const FiveTuple& tuple) const;

  unsigned num_sinks() const { return static_cast<unsigned>(sinks_.size()); }
  const ShardedSink& sink(unsigned i) const { return *sinks_[i]->sink; }
  FanInCollector& collector() { return collector_; }
  const FanInCollector& collector() const { return collector_; }

  /// Wire-level frame id of sink `i` (stable across the pipeline's life).
  std::uint32_t source_id(unsigned i) const { return i + 1; }

  /// Merged transport accounting across every sink's stream.
  TransportCounters transport_counters() const;

  /// A SinkReport carrying the merged TransportCounters (`active` set) —
  /// the fan-in's per-epoch operational report, shaped like every other
  /// sink report so observers and dashboards reuse their plumbing.
  SinkReport epoch_report() const;

  /// Total framed bytes shipped sink -> collector so far.
  std::uint64_t bytes_shipped() const;

 private:
  /// One priority class's pending observer stream. Classes ship in
  /// descending priority order inside each epoch, and only the lowest
  /// class's payload frames are droppable under kDropNewest — so under
  /// pressure the stream sheds exactly the traffic the queries declared
  /// least important. With all-default priorities there is a single class
  /// and the frame stream is byte-identical to the pre-priority layout.
  struct PriorityClass {
    unsigned priority = 1;
    ReportEncoder encoder;
  };

  struct SinkNode {
    explicit SinkNode(std::uint32_t source) : writer(source) {}

    std::unique_ptr<ShardedSink> sink;
    // Descending priority; addresses are stable after construction (the
    // routing tap holds pointers into it).
    std::vector<PriorityClass> classes;
    std::unique_ptr<SinkObserver> tap;
    FrameWriter writer;
    std::unique_ptr<ByteStream> stream;
    // Per path-length staging (submit spans must be homogeneous in k), and
    // the in-flight batches a pending flush() still references.
    std::unordered_map<unsigned, std::vector<Packet>> staging;
    std::deque<std::vector<Packet>> in_flight;
    // Writer-side transport counters for this stream.
    std::uint64_t frames_shipped = 0;
    std::uint64_t bytes_shipped = 0;
    std::uint64_t blocked_waits = 0;
    bool dead = false;       // killed by fault injection
    bool eof_reported = false;
  };

  void submit_staged(SinkNode& node, unsigned k);
  void flush_sink(SinkNode& node);
  /// Applies the backpressure policy; returns false if the frame was
  /// dropped (only possible for droppable frames under kDropNewest).
  bool write_frame(SinkNode& node, std::span<const std::uint8_t> bytes,
                   bool droppable);
  void ship_epoch_frames(SinkNode& node, bool send_close);
  void pump_source(SinkNode& node);
  void pump_all();

  FanInConfig config_;
  std::vector<std::unique_ptr<SinkNode>> sinks_;
  FanInCollector collector_;
};

}  // namespace pint
