/// \file
/// Multi-sink fan-in: N sharded sinks feeding one Inference Module.
///
/// The second scale-out axis after intra-sink sharding (pint/sharded_sink.h):
/// when one host cannot absorb the digest stream, the Recording Module is
/// split across several sink hosts, each homed to a disjoint set of flows
/// (in a datacenter fan-in topology, a collector per ToR/pod). Every sink
/// decodes locally and ships its observer stream — serialized with the
/// report codec (pint/report_codec.h) — to a central collector, which
/// replays the records into ordinary SinkObservers. The data path is:
///
///     switches -> sink host 1: ShardedSink -> bytes --+
///     switches -> sink host 2: ShardedSink -> bytes --+-> FanInCollector
///     switches -> sink host N: ShardedSink -> bytes --+     (Inference)
///
/// Flows are routed to sinks by the same coarsest-common flow partition the
/// shards use, so every per-flow recorder lives at exactly one (sink, shard)
/// and results match a single monolithic sink.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "packet/packet.h"
#include "pint/framework.h"
#include "pint/report_codec.h"
#include "pint/sharded_sink.h"

namespace pint {

/// Sizing of the fan-in pipeline.
struct FanInConfig {
  unsigned num_sinks = 2;        ///< independent sink hosts
  unsigned shards_per_sink = 1;  ///< worker threads inside each sink
  /// Packets staged per (sink, path length) before a submit() is issued.
  std::size_t batch_size = 256;
};

/// The central Inference-Module endpoint: ingests encoded streams from any
/// number of sinks and replays them into registered observers.
class FanInCollector {
 public:
  /// Observers receive every record of every ingested stream, in stream
  /// order. Register before the first ingest().
  void add_observer(SinkObserver* observer) { observers_.push_back(observer); }

  /// Decodes one buffer and dispatches its records. Returns false (and
  /// dispatches nothing) on malformed input.
  bool ingest(std::span<const std::uint8_t> bytes);

  std::uint64_t bytes_ingested() const { return bytes_ingested_; }
  std::uint64_t records_ingested() const { return records_ingested_; }

 private:
  ReportDecoder decoder_;
  std::vector<SinkObserver*> observers_;
  std::uint64_t bytes_ingested_ = 0;
  std::uint64_t records_ingested_ = 0;
};

/// N sharded sink hosts plus the collector, wired through the codec.
///
/// Single-producer: deliver() and ship_epoch() must come from one thread
/// (the simulator's delivery path). Packets are copied into per-sink
/// staging, so the caller's packet may be transient.
class FanInPipeline {
 public:
  /// Builds `config.num_sinks` sinks, each with `config.shards_per_sink`
  /// shards, from one Builder (all replicas decode identically).
  FanInPipeline(const PintFramework::Builder& builder, FanInConfig config);

  /// Routes one delivered packet (with its switch-hop count `k`) to its
  /// owning sink. Suitable as a `SimConfig::sink_tap`.
  void deliver(const Packet& packet, unsigned k);

  /// Flushes every sink, serializes each sink's pending observer stream,
  /// and ships the buffers to the collector. Call at epoch boundaries (or
  /// once, at end of run).
  void ship_epoch();

  /// Which sink host owns flows with this tuple.
  unsigned sink_of(const FiveTuple& tuple) const;

  unsigned num_sinks() const { return static_cast<unsigned>(sinks_.size()); }
  const ShardedSink& sink(unsigned i) const { return *sinks_[i]->sink; }
  FanInCollector& collector() { return collector_; }
  const FanInCollector& collector() const { return collector_; }

  /// Total encoded bytes shipped sink -> collector so far.
  std::uint64_t bytes_shipped() const { return bytes_shipped_; }

 private:
  struct SinkNode {
    std::unique_ptr<ShardedSink> sink;
    ReportEncoder encoder;
    std::unique_ptr<EncodingObserver> tap;
    // Per path-length staging (submit spans must be homogeneous in k), and
    // the in-flight batches a pending flush() still references.
    std::unordered_map<unsigned, std::vector<Packet>> staging;
    std::deque<std::vector<Packet>> in_flight;
  };

  void submit_staged(SinkNode& node, unsigned k);

  FanInConfig config_;
  std::vector<std::unique_ptr<SinkNode>> sinks_;
  FanInCollector collector_;
  std::uint64_t bytes_shipped_ = 0;
};

}  // namespace pint
