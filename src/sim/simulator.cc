#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>

#include "packet/headers.h"

namespace pint {

namespace {

constexpr double kUtilScale = Simulator::kUtilScale;
constexpr double kLineEncoding = 66.0 / 64.0;  // IEEE 802.3 64b/66b

std::uint64_t link_key(NodeId a, NodeId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Bytes Simulator::SimPacket::wire_bytes(const SimConfig& cfg) const {
  Bytes base = is_ack ? cfg.ack_bytes : cfg.base_header + payload;
  switch (cfg.telemetry) {
    case TelemetryMode::kInt: {
      if (!is_ack || !int_stack.empty()) {
        const IntHeaderSpec spec{cfg.int_values_per_hop};
        base += spec.overhead_bytes(static_cast<unsigned>(int_stack.size()));
      }
      break;
    }
    case TelemetryMode::kPint:
      base += (cfg.pint_bit_budget + 7) / 8;
      break;
    case TelemetryMode::kNone:
      if (!is_ack) base += cfg.extra_overhead_bytes;
      break;
  }
  return base;
}

Simulator::Simulator(const Graph& topology, std::vector<bool> is_host,
                     SimConfig config)
    : topology_(topology),
      is_host_(std::move(is_host)),
      config_(config),
      rng_(config.seed),
      ecmp_hash_(GlobalHash(config.seed).derive(0xEC3B)),
      pint_freq_hash_(GlobalHash(config.seed).derive(0xF4E0)) {
  if (is_host_.size() != topology.num_nodes())
    throw std::invalid_argument("is_host size mismatch");
  if (config_.telemetry == TelemetryMode::kPint && config_.pint_full) {
    framework_ =
        config_.framework_builder
            ? config_.framework_builder(config_, topology, is_host_)
                  .build_or_throw()
            : full_framework_builder(config_, topology, is_host_)
                  .build_or_throw();
  } else if (config_.telemetry == TelemetryMode::kPint) {
    PerPacketConfig pp;
    pp.bits = config_.pint_bit_budget;
    pp.eps = 0.025;
    pp.max_value = kUtilScale * 100.0;
    pp.op = PerPacketOp::kMax;
    pint_query_.emplace(pp, config_.seed ^ 0x1D);
  }
  // Materialize directed links for every edge.
  for (NodeId u = 0; u < topology.num_nodes(); ++u) {
    for (NodeId v : topology.neighbors(u)) {
      DirectedLink l;
      l.from = u;
      l.to = v;
      const bool host_side = is_host_[u] || is_host_[v];
      l.bandwidth_bps =
          host_side ? config_.host_bandwidth_bps : config_.fabric_bandwidth_bps;
      l.prop_delay = config_.link_delay;
      l.buffer_limit = config_.switch_buffer_bytes;
      links_.emplace(link_key(u, v), std::move(l));
    }
  }
}

PintFramework::Builder Simulator::full_framework_builder(
    const SimConfig& config, const Graph& topology,
    const std::vector<bool>& is_host) {
  // Section 6.4 combined mix through the real framework: path tracing on
  // every packet, latency on the rest, HPCC on a pint_frequency fraction.
  PathTracingConfig path_tuning;
  path_tuning.bits = 8;
  path_tuning.instances = 1;
  path_tuning.d = 5;
  DynamicAggregationConfig latency_tuning;
  latency_tuning.max_value = 1e8;  // hop latencies in ns
  PerPacketConfig cc_tuning;
  cc_tuning.eps = 0.025;
  cc_tuning.max_value = kUtilScale * 100.0;
  std::vector<std::uint64_t> universe;
  for (NodeId n = 0; n < topology.num_nodes(); ++n) {
    if (!is_host[n]) universe.push_back(n);
  }
  PintFramework::Builder builder;
  builder.global_bit_budget(config.pint_bit_budget)
      .seed(config.seed ^ 0x6040)
      .switch_universe(std::move(universe))
      .add_query(make_path_query("path", 8, 1.0, path_tuning))
      .add_query(make_dynamic_query("latency",
                                    std::string(extractor::kHopLatency), 8,
                                    1.0 - config.pint_frequency,
                                    latency_tuning))
      .add_query(make_perpacket_query(
          "hpcc", std::string(extractor::kLinkUtilization), 8,
          config.pint_frequency, cc_tuning));
  return builder;
}

Simulator::DirectedLink& Simulator::link(NodeId a, NodeId b) {
  auto it = links_.find(link_key(a, b));
  if (it == links_.end()) throw std::out_of_range("no such link");
  return it->second;
}

const Simulator::DirectedLink* Simulator::find_link(NodeId a, NodeId b) const {
  auto it = links_.find(link_key(a, b));
  return it == links_.end() ? nullptr : &it->second;
}

double Simulator::link_utilization(NodeId from, NodeId to) const {
  const DirectedLink* l = find_link(from, to);
  return l == nullptr ? 0.0 : l->ewma_util;
}

void Simulator::set_link_rate_factor(NodeId a, NodeId b, double factor) {
  if (factor <= 0.0) throw std::invalid_argument("rate factor must be > 0");
  link(a, b).rate_factor = factor;
  link(b, a).rate_factor = factor;
}

void Simulator::set_link_loss(NodeId from, NodeId to, double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("loss probability in [0,1]");
  }
  link(from, to).loss_prob = probability;
}

void Simulator::set_link_reorder(NodeId from, NodeId to, TimeNs max_jitter) {
  if (max_jitter < 0) throw std::invalid_argument("jitter must be >= 0");
  link(from, to).reorder_jitter = max_jitter;
}

std::uint64_t Simulator::framework_flow_key(std::uint32_t flow_id) const {
  const FlowState& flow = flows_.at(flow_id);
  FiveTuple tuple;
  tuple.src_ip = flow.src;
  tuple.dst_ip = flow.dst;
  tuple.src_port = static_cast<std::uint16_t>(flow.id & 0xFFFF);
  tuple.dst_port = static_cast<std::uint16_t>(flow.id >> 16);
  return flow_key(tuple, FlowDefinition::kFiveTuple);
}

std::uint32_t Simulator::add_flow(NodeId src_host, NodeId dst_host,
                                  Bytes size, TimeNs start) {
  if (!is_host_[src_host] || !is_host_[dst_host])
    throw std::invalid_argument("flows run host to host");
  FlowState flow;
  flow.id = static_cast<std::uint32_t>(flows_.size());
  flow.src = src_host;
  flow.dst = dst_host;
  flow.size = size;
  const std::uint64_t fkey = mix64(config_.seed ^ (flow.id * 0x9E3779B9ULL));
  auto path = topology_.ecmp_path(src_host, dst_host, fkey, ecmp_hash_);
  if (!path.has_value()) throw std::runtime_error("hosts disconnected");
  flow.path = *path;
  flow.reverse_path.assign(flow.path.rbegin(), flow.path.rend());

  if (config_.transport == TransportKind::kHpcc) {
    HpccParams hp = config_.hpcc;
    hp.nic_bandwidth_bps = config_.host_bandwidth_bps;
    flow.cc = std::make_unique<HpccSender>(hp);
  } else {
    TcpRenoParams tp = config_.tcp;
    tp.mss = config_.mtu_payload;
    flow.cc = std::make_unique<TcpRenoSender>(tp);
  }

  FlowStats st;
  st.size = size;
  st.start = start;
  st.path_hops = 0;
  for (NodeId n : flow.path) {
    if (!is_host_[n]) ++st.path_hops;
  }
  stats_.push_back(st);

  const std::uint32_t id = flow.id;
  flows_.push_back(std::move(flow));
  queue_.at(start, [this, id] {
    try_send(flows_[id]);
    arm_timeout(id);
  });
  return id;
}

void Simulator::try_send(FlowState& flow) {
  if (flow.done) return;
  // Pending fast retransmit goes out first, regardless of window.
  if (flow.retransmit_seq.has_value()) {
    const std::uint64_t seq = *flow.retransmit_seq;
    flow.retransmit_seq.reset();
    send_packet(flow, seq, /*retransmit=*/true);
  }
  const auto window = static_cast<std::uint64_t>(flow.cc->window_bytes());
  while (flow.next_seq < static_cast<std::uint64_t>(flow.size) &&
         flow.next_seq - flow.acked < window) {
    send_packet(flow, flow.next_seq, /*retransmit=*/false);
    flow.next_seq += std::min<std::uint64_t>(
        config_.mtu_payload,
        static_cast<std::uint64_t>(flow.size) - flow.next_seq);
  }
}

void Simulator::send_packet(FlowState& flow, std::uint64_t seq,
                            bool retransmit) {
  SimPacket pkt;
  pkt.id = next_packet_id_++;
  pkt.flow = flow.id;
  pkt.seq = seq;
  pkt.payload = std::min<Bytes>(
      config_.mtu_payload,
      flow.size - static_cast<Bytes>(seq));
  pkt.path = flow.path;
  pkt.hop = 0;
  pkt.data_sent_time = queue_.now();
  pkt.node_arrival = queue_.now();
  if (config_.telemetry == TelemetryMode::kPint) {
    if (config_.pint_full) {
      pkt.pint_pkt.id = pkt.id;
      pkt.pint_pkt.tuple.src_ip = flow.src;
      pkt.pint_pkt.tuple.dst_ip = flow.dst;
      pkt.pint_pkt.tuple.src_port =
          static_cast<std::uint16_t>(flow.id & 0xFFFF);
      pkt.pint_pkt.tuple.dst_port =
          static_cast<std::uint16_t>(flow.id >> 16);
    } else {
      pkt.pint_has_cc =
          pint_freq_hash_.below(pkt.id, config_.pint_frequency);
    }
  }
  ++stats_[flow.id].packets_sent;
  if (retransmit) ++stats_[flow.id].retransmits;
  enqueue(std::move(pkt));
}

void Simulator::enqueue(SimPacket pkt) {
  DirectedLink& l = link(pkt.path[pkt.hop], pkt.path[pkt.hop + 1]);
  const Bytes wire = pkt.wire_bytes(config_);
  if (l.queued_bytes + wire > l.buffer_limit) {
    ++counters_.packets_dropped;
    return;  // tail drop
  }
  l.queued_bytes += wire;
  l.queue.push_back(std::move(pkt));
  if (!l.transmitting) start_transmission(l);
}

void Simulator::start_transmission(DirectedLink& l) {
  if (l.queue.empty()) {
    l.transmitting = false;
    return;
  }
  l.transmitting = true;
  const Bytes wire = l.queue.front().wire_bytes(config_);
  const double ser_ns = static_cast<double>(wire) * 8.0 * kLineEncoding /
                        (l.bandwidth_bps * l.rate_factor) * 1e9;
  DirectedLink* lp = &l;  // stable: unordered_map never erases
  queue_.after(static_cast<TimeNs>(ser_ns), [this, lp] {
    SimPacket pkt = std::move(lp->queue.front());
    lp->queue.pop_front();
    on_dequeue(*lp, std::move(pkt));
    start_transmission(*lp);
  });
}

void Simulator::apply_switch_telemetry(DirectedLink& l, SimPacket& pkt,
                                       TimeNs tau) {
  // EWMA utilization per Appendix B:
  //   U = (T - tau)/T * U + qlen*tau/(B*T^2) + byte/(B*T)
  const double T = static_cast<double>(config_.hpcc.base_rtt) / 1e9;
  const double tau_s =
      std::min(static_cast<double>(tau) / 1e9, T);
  const double B = l.bandwidth_bps / 8.0;  // bytes/sec
  const double qlen = static_cast<double>(l.queued_bytes);
  const double byte = static_cast<double>(pkt.wire_bytes(config_));
  l.ewma_util = (T - tau_s) / T * l.ewma_util + qlen * tau_s / (B * T * T) +
                byte / (B * T);

  if (pkt.is_ack) return;
  ++pkt.switch_hops;
  switch (config_.telemetry) {
    case TelemetryMode::kInt: {
      HpccHopInfo info;
      info.tx_bytes = l.tx_bytes;
      info.qlen_bytes = qlen;
      info.timestamp = queue_.now();
      info.bandwidth_bps = l.bandwidth_bps;
      pkt.int_stack.push_back(info);
      counters_.telemetry_bytes_total += IntHeaderSpec::kBytesPerValue *
                                         config_.int_values_per_hop;
      break;
    }
    case TelemetryMode::kPint:
      if (config_.pint_full) {
        SwitchView view(static_cast<SwitchId>(l.from));
        view.set(metric::kHopLatencyNs,
                 static_cast<double>(queue_.now() - pkt.node_arrival))
            .set(metric::kLinkUtilization,
                 std::max(1.0, l.ewma_util * kUtilScale))
            .set(metric::kQueueOccupancy, qlen);
        framework_->at_switch(pkt.pint_pkt, pkt.switch_hops, view);
      } else if (pkt.pint_has_cc) {
        const double value = std::max(1.0, l.ewma_util * kUtilScale);
        pkt.pint_digest =
            pint_query_->encode_step(pkt.id, pkt.pint_digest, value);
      }
      break;
    case TelemetryMode::kNone:
      break;
  }
}

void Simulator::on_dequeue(DirectedLink& l, SimPacket pkt) {
  const Bytes wire = pkt.wire_bytes(config_);
  l.queued_bytes -= wire;
  const TimeNs tau = queue_.now() - l.last_dequeue;
  l.last_dequeue = queue_.now();
  if (!is_host_[l.from]) apply_switch_telemetry(l, pkt, tau);
  l.tx_bytes += static_cast<double>(wire);

  // Fault injection: lossy-link episodes drop at dequeue (after telemetry,
  // like a corrupted frame failing its FCS downstream of the egress pipe).
  if (l.loss_prob > 0.0 && rng_.uniform() < l.loss_prob) {
    ++counters_.packets_lost_injected;
    return;
  }

  // Propagation to the next node (+ reordering jitter when injected).
  TimeNs prop = l.prop_delay;
  if (l.reorder_jitter > 0) {
    prop += static_cast<TimeNs>(
        rng_.uniform_int(static_cast<std::uint64_t>(l.reorder_jitter) + 1));
  }
  queue_.after(prop, [this, p = std::move(pkt)]() mutable {
    ++p.hop;
    p.node_arrival = queue_.now();
    deliver(std::move(p));
  });
}

void Simulator::deliver(SimPacket pkt) {
  if (pkt.hop + 1 < pkt.path.size()) {
    enqueue(std::move(pkt));
    return;
  }
  if (pkt.is_ack) {
    ++counters_.acks_delivered;
    handle_ack_at_host(std::move(pkt));
  } else {
    ++counters_.packets_delivered;
    handle_data_at_host(std::move(pkt));
  }
}

void Simulator::handle_data_at_host(SimPacket pkt) {
  FlowState& flow = flows_[pkt.flow];
  const std::uint64_t lo = pkt.seq;
  const std::uint64_t hi = pkt.seq + static_cast<std::uint64_t>(pkt.payload);
  if (lo <= flow.recv_cumulative) {
    flow.recv_cumulative = std::max(flow.recv_cumulative, hi);
    // Absorb any out-of-order intervals now contiguous.
    bool merged = true;
    while (merged) {
      merged = false;
      for (auto it = flow.ooo.begin(); it != flow.ooo.end(); ++it) {
        if (it->first <= flow.recv_cumulative) {
          flow.recv_cumulative = std::max(flow.recv_cumulative, it->second);
          flow.ooo.erase(it);
          merged = true;
          break;
        }
      }
    }
  } else {
    // Record the gap; keep intervals disjoint (coarse merge is fine).
    flow.ooo.emplace_back(lo, hi);
  }

  SimPacket ack;
  ack.id = next_packet_id_++;
  ack.flow = pkt.flow;
  ack.is_ack = true;
  ack.ack_bytes = flow.recv_cumulative;
  ack.data_sent_time = pkt.data_sent_time;
  ack.path = flow.reverse_path;
  ack.hop = 0;
  ack.node_arrival = queue_.now();
  // Echo telemetry feedback to the sender. In full-framework mode the PINT
  // sink (this host) extracts the digest, feeds the Recording Module, and
  // echoes only the decoded bottleneck value.
  if (framework_ != nullptr) {
    if (config_.sink_tap) config_.sink_tap(pkt.pint_pkt, pkt.switch_hops);
    const SinkReport report =
        framework_->at_sink(pkt.pint_pkt, pkt.switch_hops);
    if (const auto util = report.aggregate_value("hpcc")) {
      ack.ack_pint_util = *util;
    }
  }
  ack.int_stack = std::move(pkt.int_stack);
  ack.pint_digest = pkt.pint_digest;
  ack.pint_has_cc = pkt.pint_has_cc;
  enqueue(std::move(ack));
}

void Simulator::handle_ack_at_host(SimPacket ack) {
  FlowState& flow = flows_[ack.flow];
  if (flow.done) return;

  AckFeedback fb;
  fb.acked_bytes = ack.ack_bytes;
  fb.ack_time = queue_.now();
  fb.rtt_sample_ns = queue_.now() - ack.data_sent_time;
  fb.int_hops = std::move(ack.int_stack);
  if (config_.telemetry == TelemetryMode::kPint) {
    if (config_.pint_full) {
      if (ack.ack_pint_util >= 0.0) {
        fb.pint_feedback =
            AggregateObservation{ack.ack_pint_util / kUtilScale};
      }
    } else if (ack.pint_has_cc) {
      fb.pint_feedback = AggregateObservation{
          pint_query_->decode(ack.pint_digest) / kUtilScale};
    }
  }
  flow.cc->on_ack(fb);

  if (ack.ack_bytes > flow.acked) {
    flow.acked = ack.ack_bytes;
    // A lost ACK plus go-back-N can leave next_seq behind the cumulative
    // ACK; clamp so the in-flight accounting never underflows.
    flow.next_seq = std::max(flow.next_seq, flow.acked);
    flow.dup_acks = 0;
    ++flow.timeout_epoch;
    flow.last_activity = queue_.now();
  } else if (flow.acked < static_cast<std::uint64_t>(flow.size)) {
    ++flow.dup_acks;
    if (flow.dup_acks == 3 && flow.acked >= flow.recover_seq) {
      flow.cc->on_loss(queue_.now(), /*timeout=*/false);
      flow.retransmit_seq = flow.acked;
      flow.recover_seq = flow.next_seq;
      flow.dup_acks = 0;
    }
  }

  if (flow.acked >= static_cast<std::uint64_t>(flow.size)) {
    flow.done = true;
    stats_[flow.id].done = true;
    stats_[flow.id].finish = queue_.now();
    return;
  }
  try_send(flow);
}

void Simulator::arm_timeout(std::uint32_t flow_id) {
  FlowState& flow = flows_[flow_id];
  if (flow.done) return;
  const std::uint64_t epoch = flow.timeout_epoch;
  queue_.after(config_.rto, [this, flow_id, epoch] {
    FlowState& f = flows_[flow_id];
    if (f.done) return;
    const bool inflight = f.next_seq > f.acked;
    if (f.timeout_epoch == epoch && inflight) {
      // Retransmission timeout: go-back-N from the last cumulative ACK.
      f.cc->on_loss(queue_.now(), /*timeout=*/true);
      f.next_seq = f.acked;
      f.dup_acks = 0;
      f.recover_seq = f.acked;
      ++f.timeout_epoch;
      try_send(f);
    }
    arm_timeout(flow_id);
  });
}

void Simulator::run_until(TimeNs t_end) { queue_.run_until(t_end); }

}  // namespace pint
